// Tests for the HBSPlib-like runtime: superstep message semantics,
// hierarchical barriers, heterogeneity enquiry, timing, error propagation —
// on both the virtual-time and the wall-clock engine.

#include "runtime/hbsplib.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>

#include "core/topology.hpp"
#include "sim/cluster_sim.hpp"

namespace hbsp::rt {
namespace {

const sim::SimParams kParams{};

MachineTree cluster() {
  return make_hbsp1_cluster(std::array{1.0, 2.0, 4.0});
}

class BothEngines : public ::testing::TestWithParam<EngineKind> {};

TEST_P(BothEngines, MessagesArriveInTheNextSuperstep) {
  std::atomic<int> deliveries{0};
  const Program program = [&](Hbsp& ctx) {
    if (ctx.pid() == 1) {
      const std::int32_t value = 77;
      ctx.send_items<std::int32_t>(0, std::span{&value, 1});
      // Not visible before the synchronisation...
      EXPECT_EQ(ctx.pending_messages(), 0u);
    }
    ctx.sync();
    if (ctx.pid() == 0) {
      auto messages = ctx.recv_all();
      ASSERT_EQ(messages.size(), 1u);
      EXPECT_EQ(messages[0].src_pid, 1);
      EXPECT_EQ(messages[0].items, 1u);
      const auto values = messages[0].unpack_all<std::int32_t>();
      ASSERT_EQ(values.size(), 1u);
      EXPECT_EQ(values[0], 77);
      ++deliveries;
    } else {
      EXPECT_TRUE(ctx.recv_all().empty());
    }
    ctx.sync();
  };
  (void)run_program(cluster(), kParams, program, GetParam());
  EXPECT_EQ(deliveries.load(), 1);
}

TEST_P(BothEngines, MessagesOrderedBySourcePid) {
  const Program program = [](Hbsp& ctx) {
    if (ctx.pid() != 0) {
      const auto value = static_cast<std::int32_t>(ctx.pid());
      ctx.send_items<std::int32_t>(0, std::span{&value, 1});
    }
    ctx.sync();
    if (ctx.pid() == 0) {
      const auto messages = ctx.recv_all();
      ASSERT_EQ(messages.size(), 2u);
      EXPECT_EQ(messages[0].src_pid, 1);
      EXPECT_EQ(messages[1].src_pid, 2);
    }
  };
  (void)run_program(cluster(), kParams, program, GetParam());
}

TEST_P(BothEngines, PerSenderIssueOrderPreserved) {
  const Program program = [](Hbsp& ctx) {
    if (ctx.pid() == 1) {
      for (std::int32_t i = 0; i < 5; ++i) {
        ctx.send_items<std::int32_t>(0, std::span{&i, 1}, /*tag=*/i);
      }
    }
    ctx.sync();
    if (ctx.pid() == 0) {
      const auto messages = ctx.recv_all();
      ASSERT_EQ(messages.size(), 5u);
      for (std::int32_t i = 0; i < 5; ++i) {
        EXPECT_EQ(messages[static_cast<std::size_t>(i)].tag, i);
      }
    }
  };
  (void)run_program(cluster(), kParams, program, GetParam());
}

TEST_P(BothEngines, SelfSendDelivered) {
  const Program program = [](Hbsp& ctx) {
    if (ctx.pid() == 2) {
      const std::int32_t value = 5;
      ctx.send_items<std::int32_t>(2, std::span{&value, 1});
    }
    ctx.sync();
    if (ctx.pid() == 2) {
      EXPECT_EQ(ctx.recv_all().size(), 1u);
    }
  };
  (void)run_program(cluster(), kParams, program, GetParam());
}

TEST_P(BothEngines, HierarchicalScopesRunConcurrently) {
  const MachineTree tree = make_figure1_cluster();
  const Program program = [](Hbsp& ctx) {
    const MachineTree& machine = ctx.machine();
    const MachineId mine = machine.processor(ctx.pid());
    // SMP members (pids 0..3) and LAN members (5..8) sync their own
    // clusters a different number of times; the SGI (pid 4) syncs neither.
    if (mine.level == 0) {
      const MachineId my_cluster = machine.ancestor_at(ctx.pid(), 1);
      ctx.sync_scope(my_cluster);
      ctx.sync_scope(my_cluster);
    }
    ctx.sync();  // whole machine
  };
  const RunResult result =
      run_program(tree, kParams, program, GetParam());
  // 2 SMP supersteps + 2 LAN supersteps + 1 global.
  EXPECT_EQ(result.supersteps, 5u);
}

TEST_P(BothEngines, EnquiryPrimitives) {
  const Program program = [](Hbsp& ctx) {
    EXPECT_EQ(ctx.nprocs(), 3);
    EXPECT_EQ(ctx.fastest_pid(), 0);
    EXPECT_EQ(ctx.slowest_pid(), 2);
    switch (ctx.pid()) {
      case 0:
        EXPECT_DOUBLE_EQ(ctx.speed(), 1.0);
        EXPECT_EQ(ctx.rank_by_speed(), 0);
        break;
      case 1:
        EXPECT_DOUBLE_EQ(ctx.speed(), 2.0);
        EXPECT_EQ(ctx.rank_by_speed(), 1);
        break;
      default:
        EXPECT_DOUBLE_EQ(ctx.speed(), 4.0);
        EXPECT_EQ(ctx.rank_by_speed(), 2);
        break;
    }
    const auto shares = ctx.balanced_shares(700);
    EXPECT_EQ(shares, (std::vector<std::size_t>{400, 200, 100}));
    EXPECT_EQ(ctx.my_balanced_share(700),
              shares[static_cast<std::size_t>(ctx.pid())]);
  };
  (void)run_program(cluster(), kParams, program, GetParam());
}

TEST_P(BothEngines, UserExceptionsPropagate) {
  const Program program = [](Hbsp& ctx) {
    if (ctx.pid() == 1) throw std::runtime_error{"boom on pid 1"};
    ctx.sync();  // peers must be released, not deadlock
  };
  try {
    (void)run_program(cluster(), kParams, program, GetParam());
    FAIL() << "expected the user exception to propagate";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "boom on pid 1");
  }
}

TEST_P(BothEngines, InvalidDestinationFailsTheRun) {
  const Program program = [](Hbsp& ctx) {
    if (ctx.pid() == 0) ctx.send(99, {}, 1);
    ctx.sync();
  };
  EXPECT_THROW((void)run_program(cluster(), kParams, program, GetParam()),
               std::invalid_argument);
}

TEST_P(BothEngines, SendOutsideScopeFails) {
  const MachineTree tree = make_figure1_cluster();
  const Program program = [](Hbsp& ctx) {
    const MachineTree& machine = ctx.machine();
    const MachineId mine = machine.processor(ctx.pid());
    if (mine.level == 0) {
      if (ctx.pid() == 0) {
        const std::int32_t v = 1;
        ctx.send_items<std::int32_t>(8, std::span{&v, 1});  // SMP -> LAN
      }
      ctx.sync_scope(machine.ancestor_at(ctx.pid(), 1));
    }
    ctx.sync();
  };
  EXPECT_THROW((void)run_program(tree, kParams, program, GetParam()),
               std::logic_error);
}

INSTANTIATE_TEST_SUITE_P(Engines, BothEngines,
                         ::testing::Values(EngineKind::kVirtualTime,
                                           EngineKind::kWallClock),
                         [](const auto& param_info) {
                           return std::string{to_string(param_info.param)} ==
                                          "virtual-time"
                                      ? "VirtualTime"
                                      : "WallClock";
                         });

// --- virtual-time specifics ----------------------------------------------------

TEST(VirtualTime, MatchesClusterSimForTheSameTraffic) {
  const MachineTree tree = cluster();
  // Program: P1 sends 1000 items to P0, then everyone syncs.
  const Program program = [](Hbsp& ctx) {
    if (ctx.pid() == 1) {
      ctx.send(0, std::vector<std::byte>(4000), 1000);
    }
    ctx.sync();
  };
  const RunResult run = run_program(tree, kParams, program);

  CommSchedule schedule;
  schedule.add_step("same", 1, tree.root()).transfers = {{1, 0, 1000}};
  sim::ClusterSim sim{tree, kParams};
  EXPECT_DOUBLE_EQ(run.makespan, sim.run(schedule).makespan);
}

TEST(VirtualTime, TimeAdvancesOnlyAtSync) {
  const Program program = [](Hbsp& ctx) {
    EXPECT_DOUBLE_EQ(ctx.time(), 0.0);
    ctx.charge_compute(1000.0);
    EXPECT_DOUBLE_EQ(ctx.time(), 0.0);  // charged at the barrier
    ctx.sync();
    EXPECT_GT(ctx.time(), 0.0);
  };
  (void)run_program(cluster(), kParams, program);
}

TEST(VirtualTime, ComputeChargesScaleWithSpeed) {
  std::vector<double> finish(3, 0.0);
  const Program program = [&](Hbsp& ctx) {
    ctx.charge_compute(1000.0);
    ctx.sync_scope(ctx.machine().processor(ctx.pid()));  // self-barrier
    finish[static_cast<std::size_t>(ctx.pid())] = ctx.time();
  };
  (void)run_program(cluster(), kParams, program);
  // Per-processor barriers: each pid pays only its own compute (L = 0 on
  // leaf scopes).
  EXPECT_NEAR(finish[1] / finish[0], 2.0, 1e-9);
  EXPECT_NEAR(finish[2] / finish[0], 4.0, 1e-9);
}

TEST(WallClock, TimeIsPositiveAndMonotonic) {
  const Program program = [](Hbsp& ctx) {
    const double before = ctx.time();
    ctx.sync();
    EXPECT_GE(ctx.time(), before);
  };
  const RunResult result =
      run_program(cluster(), kParams, program, EngineKind::kWallClock);
  EXPECT_GT(result.makespan, 0.0);
}


TEST(RunOptions, BarrierTimeoutDetectsMismatchedSyncs) {
  // pid 0 never syncs; everyone else waits at the barrier. With a short
  // timeout the run fails fast instead of deadlocking.
  const Program program = [](Hbsp& ctx) {
    if (ctx.pid() != 0) ctx.sync();
  };
  RunOptions options;
  options.barrier_timeout_seconds = 0.2;
  try {
    (void)run_program(cluster(), kParams, program, options);
    FAIL() << "expected a barrier timeout";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string{e.what()}.find("barrier timeout"), std::string::npos);
  }
}

TEST(RunOptions, DefaultsMatchEngineOverload) {
  const Program program = [](Hbsp& ctx) { ctx.sync(); };
  RunOptions options;  // virtual time, 60 s timeout
  const RunResult a = run_program(cluster(), kParams, program, options);
  const RunResult b = run_program(cluster(), kParams, program);
  EXPECT_DOUBLE_EQ(a.makespan, b.makespan);
}

TEST(RunResult, ReportsPerPidFinishTimesAndSupersteps) {
  const Program program = [](Hbsp& ctx) {
    ctx.sync();
    ctx.sync();
  };
  const RunResult result = run_program(cluster(), kParams, program);
  EXPECT_EQ(result.supersteps, 2u);
  ASSERT_EQ(result.finish_times.size(), 3u);
  for (const double t : result.finish_times) {
    EXPECT_DOUBLE_EQ(t, result.makespan);  // all exit the last barrier together
  }
}

}  // namespace
}  // namespace hbsp::rt
