// Unit tests for the statistics helpers.

#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <vector>

namespace hbsp::util {
namespace {

TEST(Summarize, Basics) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0};
  const Summary s = summarize(sample);
  EXPECT_EQ(s.count, 4u);
  EXPECT_DOUBLE_EQ(s.min, 1.0);
  EXPECT_DOUBLE_EQ(s.max, 4.0);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
}

TEST(Summarize, Empty) {
  const Summary s = summarize({});
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.mean, 0.0);
}

TEST(Summarize, SingleValue) {
  const std::vector<double> sample{7.5};
  const Summary s = summarize(sample);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(SummarizeNonempty, ThrowsOnEmptySample) {
  EXPECT_THROW((void)summarize_nonempty({}), std::invalid_argument);
}

TEST(SummarizeNonempty, SingleReplicaHasZeroStddev) {
  const std::vector<double> sample{3.25};
  const Summary s = summarize_nonempty(sample);
  EXPECT_EQ(s.count, 1u);
  EXPECT_DOUBLE_EQ(s.mean, 3.25);
  EXPECT_DOUBLE_EQ(s.min, 3.25);
  EXPECT_DOUBLE_EQ(s.max, 3.25);
  EXPECT_DOUBLE_EQ(s.stddev, 0.0);
}

TEST(SummarizeNonempty, MatchesSummarizeOnNonEmptySamples) {
  const std::vector<double> sample{1.0, 2.0, 3.0, 4.0};
  const Summary a = summarize(sample);
  const Summary b = summarize_nonempty(sample);
  EXPECT_EQ(a.count, b.count);
  EXPECT_DOUBLE_EQ(a.mean, b.mean);
  EXPECT_DOUBLE_EQ(a.stddev, b.stddev);
}

TEST(Mean, MatchesSummary) {
  const std::vector<double> sample{2.0, 4.0, 9.0};
  EXPECT_DOUBLE_EQ(mean(sample), 5.0);
}

TEST(GeometricMean, PowersOfTwo) {
  const std::vector<double> sample{2.0, 8.0};
  EXPECT_NEAR(geometric_mean(sample), 4.0, 1e-12);
}

TEST(GeometricMean, Empty) { EXPECT_EQ(geometric_mean({}), 0.0); }

TEST(Median, OddAndEven) {
  const std::vector<double> odd{3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(median(odd), 2.0);
  const std::vector<double> even{4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(median(even), 2.5);
}

TEST(Quantile, Interpolates) {
  const std::vector<double> sample{0.0, 10.0};
  EXPECT_DOUBLE_EQ(quantile(sample, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(quantile(sample, 1.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(sample, 0.25), 2.5);
}

TEST(Quantile, Empty) { EXPECT_EQ(quantile({}, 0.5), 0.0); }

TEST(Ci95, ZeroForTinySamples) {
  Summary s;
  s.count = 1;
  s.stddev = 5.0;
  EXPECT_EQ(ci95_halfwidth(s), 0.0);
}

TEST(Ci95, ShrinksWithSampleSize) {
  Summary small;
  small.count = 10;
  small.stddev = 2.0;
  Summary large = small;
  large.count = 1000;
  EXPECT_GT(ci95_halfwidth(small), ci95_halfwidth(large));
}

TEST(Accumulator, MatchesBatchSummary) {
  const std::vector<double> sample{5.0, -2.0, 7.25, 0.0, 3.5, 3.5};
  Accumulator acc;
  for (const double v : sample) acc.add(v);
  const Summary streaming = acc.summary();
  const Summary batch = summarize(sample);
  EXPECT_EQ(streaming.count, batch.count);
  EXPECT_DOUBLE_EQ(streaming.min, batch.min);
  EXPECT_DOUBLE_EQ(streaming.max, batch.max);
  EXPECT_NEAR(streaming.mean, batch.mean, 1e-12);
  EXPECT_NEAR(streaming.stddev, batch.stddev, 1e-12);
}

TEST(Accumulator, EmptySummaryIsZeroed) {
  const Summary s = Accumulator{}.summary();
  EXPECT_EQ(s.count, 0u);
  EXPECT_EQ(s.min, 0.0);
  EXPECT_EQ(s.max, 0.0);
}

}  // namespace
}  // namespace hbsp::util
