// Property tests of the model's order-theoretic invariants — the facts §4's
// arguments implicitly rely on, checked over randomised machines:
//
//  * costs are monotone in the problem size;
//  * with the fastest processor as root, balanced shares never lose to equal
//    shares for gather/scatter (the r_j·c_j < 1 argument);
//  * slowing any processor never makes a schedule cheaper;
//  * the broadcast crossover search is consistent with pointwise comparison;
//  * the simulator is monotone in message size.

#include <gtest/gtest.h>

#include "collectives/planners.hpp"
#include "core/analysis.hpp"
#include "core/cost_model.hpp"
#include "core/topology.hpp"
#include "sim/cluster_sim.hpp"
#include "util/rng.hpp"

namespace hbsp {
namespace {

std::vector<double> random_speeds(util::Rng& rng, std::size_t p) {
  std::vector<double> r;
  for (std::size_t i = 0; i < p; ++i) r.push_back(rng.uniform(1.0, 4.0));
  r[static_cast<std::size_t>(rng.uniform_u64(0, p - 1))] = 1.0;
  return r;
}

class ModelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ModelProperty, ClosedFormsMonotoneInN) {
  util::Rng rng{GetParam() + 31};
  const auto speeds = random_speeds(rng, 2 + GetParam() % 7);
  const MachineTree tree = make_hbsp1_cluster(speeds);
  const int root = tree.coordinator_pid(tree.root());

  double prev_gather = -1.0;
  double prev_two = -1.0;
  double prev_one = -1.0;
  for (const std::size_t n : {0u, 1u, 10u, 100u, 1000u, 10000u, 100000u}) {
    const double gather =
        analysis::hbsp1_gather(tree, tree.root(), root, n,
                               analysis::Shares::kBalanced)
            .total();
    const double two = analysis::hbsp1_broadcast_two_phase(
                           tree, tree.root(), root, n, analysis::Shares::kEqual)
                           .total();
    const double one =
        analysis::hbsp1_broadcast_one_phase(tree, tree.root(), root, n).total();
    EXPECT_GE(gather, prev_gather);
    EXPECT_GE(two, prev_two);
    EXPECT_GE(one, prev_one);
    prev_gather = gather;
    prev_two = two;
    prev_one = one;
  }
}

TEST_P(ModelProperty, BalancedNeverLosesForFastRootedGatherAndScatter) {
  util::Rng rng{GetParam() + 97};
  const auto speeds = random_speeds(rng, 2 + GetParam() % 8);
  const MachineTree tree = make_hbsp1_cluster(speeds);
  const int root = tree.coordinator_pid(tree.root());
  const auto n = static_cast<std::size_t>(rng.uniform_u64(1, 500000));

  const double gather_balanced =
      analysis::hbsp1_gather(tree, tree.root(), root, n,
                             analysis::Shares::kBalanced)
          .total();
  const double gather_equal =
      analysis::hbsp1_gather(tree, tree.root(), root, n, analysis::Shares::kEqual)
          .total();
  // Integer apportionment can shift a share by one item; allow that slack.
  const double slack = tree.g() * 4.0 * 2.0;
  EXPECT_LE(gather_balanced, gather_equal + slack);

  const double scatter_balanced =
      analysis::hbsp1_scatter(tree, tree.root(), root, n,
                              analysis::Shares::kBalanced)
          .total();
  const double scatter_equal = analysis::hbsp1_scatter(
                                   tree, tree.root(), root, n,
                                   analysis::Shares::kEqual)
                                   .total();
  EXPECT_LE(scatter_balanced, scatter_equal + slack);
}

TEST_P(ModelProperty, SlowingAProcessorNeverHelps) {
  util::Rng rng{GetParam() + 11};
  const std::size_t p = 3 + GetParam() % 6;
  auto speeds = random_speeds(rng, p);
  const MachineTree before = make_hbsp1_cluster(speeds);

  // Slow one non-fastest machine further.
  std::size_t victim = 0;
  for (std::size_t i = 0; i < p; ++i) {
    if (speeds[i] > 1.0) victim = i;
  }
  speeds[victim] += rng.uniform(0.5, 3.0);
  const MachineTree after = make_hbsp1_cluster(speeds);

  const std::size_t n = 10000;
  // Equal shares isolate the r change (balanced shares would also shift c).
  for (const int root_ordinal : {0, 1}) {
    const int before_root = root_ordinal == 0
                                ? before.coordinator_pid(before.root())
                                : before.slowest_pid(before.root());
    const int after_root = root_ordinal == 0
                               ? after.coordinator_pid(after.root())
                               : after.slowest_pid(after.root());
    EXPECT_GE(analysis::hbsp1_gather(after, after.root(), after_root, n,
                                     analysis::Shares::kEqual)
                  .total(),
              analysis::hbsp1_gather(before, before.root(), before_root, n,
                                     analysis::Shares::kEqual)
                  .total() -
                  1e-12);
  }
}

TEST_P(ModelProperty, CrossoverSearchConsistentWithPointwiseComparison) {
  util::Rng rng{GetParam() + 211};
  const auto speeds = random_speeds(rng, 4 + GetParam() % 6);
  const MachineTree tree = make_hbsp1_cluster(speeds);
  const int root = tree.coordinator_pid(tree.root());
  constexpr std::size_t kMax = 1 << 20;
  const auto crossover = analysis::broadcast_crossover_n(tree, tree.root(),
                                                         root, kMax);

  const auto two_wins = [&](std::size_t n) {
    return analysis::hbsp1_broadcast_two_phase(tree, tree.root(), root, n,
                                               analysis::Shares::kEqual)
               .total() <=
           analysis::hbsp1_broadcast_one_phase(tree, tree.root(), root, n)
               .total();
  };
  if (crossover) {
    EXPECT_TRUE(two_wins(*crossover));
    if (*crossover > 1) {
      EXPECT_FALSE(two_wins(*crossover - 1));
    }
    EXPECT_TRUE(two_wins(kMax));
  } else {
    EXPECT_FALSE(two_wins(kMax));
  }
}

TEST_P(ModelProperty, SimulatorMonotoneInMessageSize) {
  util::Rng rng{GetParam() + 401};
  const auto speeds = random_speeds(rng, 3 + GetParam() % 5);
  const MachineTree tree = make_hbsp1_cluster(speeds);
  sim::ClusterSim sim{tree, sim::SimParams{}};

  double prev = -1.0;
  for (const std::size_t items : {0u, 10u, 1000u, 100000u}) {
    CommSchedule schedule;
    schedule.add_step("one", 1, tree.root()).transfers = {
        {1, 0, items}};
    const double makespan = sim.run(schedule).makespan;
    EXPECT_GE(makespan, prev);
    prev = makespan;
  }
}

TEST_P(ModelProperty, PhaseMaxNeverExceedsSumOfPlans) {
  // Sanity on the PhaseCost algebra with random concurrent plans.
  util::Rng rng{GetParam() + 733};
  const MachineTree tree = make_figure1_cluster();
  const CostModel model{tree};
  CommSchedule schedule;
  Phase& phase = schedule.add_phase();
  SuperstepPlan smp;
  smp.label = "smp";
  smp.level = 1;
  smp.sync_scope = tree.child(tree.root(), 0);
  smp.transfers = {{1, 0, static_cast<std::size_t>(rng.uniform_u64(0, 9999))}};
  SuperstepPlan lan;
  lan.label = "lan";
  lan.level = 1;
  lan.sync_scope = tree.child(tree.root(), 2);
  lan.transfers = {{6, 5, static_cast<std::size_t>(rng.uniform_u64(0, 9999))}};
  phase.plans.push_back(smp);
  phase.plans.push_back(lan);

  const auto cost = model.cost(schedule);
  double sum = 0.0;
  double worst = 0.0;
  for (const auto& plan_cost : cost.phases[0].plans) {
    sum += plan_cost.total();
    worst = std::max(worst, plan_cost.total());
  }
  EXPECT_DOUBLE_EQ(cost.phases[0].total(), worst);
  EXPECT_LE(cost.phases[0].total(), sum);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ModelProperty,
                         ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace hbsp
