// Stress and longevity tests for the runtime: many supersteps, many
// messages, interleaved scopes, and repeated runs — the barrier machinery
// must neither deadlock nor leak state between supersteps.

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/topology.hpp"
#include "runtime/hbsplib.hpp"
#include "sim/cluster_sim.hpp"

namespace hbsp::rt {
namespace {

const sim::SimParams kParams{};

TEST(RuntimeStress, ManySuperstepsTokenRing) {
  // A token circulates the ring for 200 supersteps; every hop must arrive in
  // exactly the next superstep with the incremented value.
  const MachineTree tree = make_paper_testbed(5);
  constexpr int kSteps = 200;
  std::atomic<int> final_token{-1};

  const Program program = [&](Hbsp& ctx) {
    const int p = ctx.nprocs();
    for (int step = 0; step < kSteps; ++step) {
      const int holder = step % p;
      const int next = (step + 1) % p;
      if (ctx.pid() == holder) {
        std::int32_t token = 0;
        if (step == 0) {
          token = 100;
        } else {
          auto messages = ctx.recv_all();
          ASSERT_EQ(messages.size(), 1u);
          token = messages.front().unpack_all<std::int32_t>().front();
        }
        ++token;
        ctx.send_items<std::int32_t>(next, std::span{&token, 1});
      }
      ctx.sync();
    }
    if (ctx.pid() == kSteps % p) {
      const auto messages = ctx.recv_all();
      ASSERT_EQ(messages.size(), 1u);
      final_token = messages.front().unpack_all<std::int32_t>().front();
    }
  };
  const RunResult result = run_program(tree, kParams, program);
  EXPECT_EQ(final_token.load(), 100 + kSteps);
  EXPECT_EQ(result.supersteps, static_cast<std::size_t>(kSteps));
}

TEST(RuntimeStress, AllPairsEverySuperstepForManySteps) {
  const MachineTree tree = make_paper_testbed(6);
  constexpr int kSteps = 50;
  const Program program = [&](Hbsp& ctx) {
    for (int step = 0; step < kSteps; ++step) {
      for (int dst = 0; dst < ctx.nprocs(); ++dst) {
        if (dst == ctx.pid()) continue;
        const auto value = static_cast<std::int32_t>(step * 100 + ctx.pid());
        ctx.send_items<std::int32_t>(dst, std::span{&value, 1});
      }
      ctx.sync();
      const auto messages = ctx.recv_all();
      ASSERT_EQ(messages.size(), static_cast<std::size_t>(ctx.nprocs() - 1));
      for (const auto& message : messages) {
        EXPECT_EQ(message.unpack_all<std::int32_t>().front(),
                  step * 100 + message.src_pid);
      }
    }
  };
  (void)run_program(tree, kParams, program);
}

TEST(RuntimeStress, InterleavedClusterAndGlobalBarriers) {
  // Clusters alternate between local supersteps (different counts per
  // cluster!) and global ones; the per-scope generations must not confuse
  // each other.
  const MachineTree tree = make_figure1_cluster();
  const Program program = [&](Hbsp& ctx) {
    const MachineTree& machine = ctx.machine();
    const MachineId mine = machine.processor(ctx.pid());
    for (int round = 0; round < 20; ++round) {
      if (mine.level == 0) {
        const MachineId my_cluster = machine.ancestor_at(ctx.pid(), 1);
        // The SMP (cluster 0) syncs twice per round, the LAN once.
        ctx.sync_scope(my_cluster);
        if (my_cluster.index == 0) ctx.sync_scope(my_cluster);
      }
      ctx.sync();
    }
  };
  const RunResult result = run_program(tree, kParams, program);
  // Per round: 2 SMP + 1 LAN + 1 global = 4 supersteps.
  EXPECT_EQ(result.supersteps, 80u);
}

TEST(RuntimeStress, LargePayloadsSurviveRoundTrips) {
  const MachineTree tree = make_paper_testbed(3);
  const std::size_t n = 200000;  // 800 KB per message
  const auto payload = [] {
    std::vector<std::int32_t> values(200000);
    std::iota(values.begin(), values.end(), -1000);
    return values;
  }();

  const Program program = [&](Hbsp& ctx) {
    if (ctx.pid() == 1) ctx.send_items<std::int32_t>(0, payload);
    ctx.sync();
    if (ctx.pid() == 0) {
      auto messages = ctx.recv_all();
      ASSERT_EQ(messages.size(), 1u);
      EXPECT_EQ(messages.front().items, n);
      EXPECT_EQ(messages.front().unpack_all<std::int32_t>(), payload);
      // Bounce it back.
      ctx.send_items<std::int32_t>(1, payload);
    }
    ctx.sync();
    if (ctx.pid() == 1) {
      EXPECT_EQ(ctx.recv_all().front().unpack_all<std::int32_t>(), payload);
    }
  };
  (void)run_program(tree, kParams, program);
}

TEST(RuntimeStress, BackToBackRunsAreIndependent) {
  const MachineTree tree = make_paper_testbed(4);
  const Program program = [](Hbsp& ctx) {
    if (ctx.pid() == 1) {
      const std::int32_t v = 9;
      ctx.send_items<std::int32_t>(0, std::span{&v, 1});
    }
    ctx.sync();
    if (ctx.pid() == 0) {
      // Exactly one message: nothing leaked from a previous run.
      EXPECT_EQ(ctx.recv_all().size(), 1u);
    }
  };
  double first = 0.0;
  for (int run = 0; run < 5; ++run) {
    const RunResult result = run_program(tree, kParams, program);
    if (run == 0) {
      first = result.makespan;
    } else {
      EXPECT_DOUBLE_EQ(result.makespan, first);  // fully reproducible
    }
  }
}

TEST(RuntimeStress, WallClockEngineHandlesTheSamePrograms) {
  const MachineTree tree = make_paper_testbed(4);
  std::atomic<int> checks{0};
  const Program program = [&](Hbsp& ctx) {
    for (int step = 0; step < 25; ++step) {
      const int dst = (ctx.pid() + 1) % ctx.nprocs();
      const auto value = static_cast<std::int32_t>(step);
      ctx.send_items<std::int32_t>(dst, std::span{&value, 1});
      ctx.sync();
      const auto messages = ctx.recv_all();
      if (messages.size() == 1 &&
          messages.front().unpack_all<std::int32_t>().front() == step) {
        ++checks;
      }
    }
  };
  (void)run_program(tree, kParams, program, EngineKind::kWallClock);
  EXPECT_EQ(checks.load(), 4 * 25);
}

}  // namespace
}  // namespace hbsp::rt
