// Tests for the fault-injection subsystem: plan validation, the chaos-plan
// generator's determinism, the injector's identity-keyed decisions, and the
// simulator's fault semantics against hand-computed timelines. The key
// contract — the injection layer is cost-free when disabled — is checked as
// exact double equality, never EXPECT_NEAR.

#include "faults/injector.hpp"

#include <gtest/gtest.h>

#include <array>
#include <limits>
#include <string>

#include "core/topology.hpp"
#include "runtime/hbsplib.hpp"
#include "sim/cluster_sim.hpp"

namespace hbsp::faults {
namespace {

constexpr double kG = 1e-6;
constexpr double kL = 2e-3;

MachineTree cluster() {
  return make_hbsp1_cluster(std::array{1.0, 2.0, 4.0}, kG, kL);
}

/// Every artefact off except what a test enables: hand-computable timelines.
sim::SimParams bare_params() {
  sim::SimParams p;
  p.recv_ratio = 0.5;
  p.o_send = 0.0;
  p.o_recv = 0.0;
  p.model_wire_contention = false;
  p.latency_base = 0.0;
  return p;
}

CommSchedule single_step(const MachineTree& tree,
                         std::vector<Transfer> transfers,
                         std::vector<ComputeWork> compute = {}) {
  CommSchedule schedule;
  SuperstepPlan& plan = schedule.add_step("step", 1, tree.root());
  plan.transfers = std::move(transfers);
  plan.compute = std::move(compute);
  return schedule;
}

// --- plan validation ---------------------------------------------------------

TEST(FaultPlan, ValidateNamesTheOffendingField) {
  FaultPlan plan;
  plan.slowdowns.push_back({0, 2.0, 1.0, 2.0});  // inverted window
  try {
    plan.validate();
    FAIL() << "inverted window accepted";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("window"), std::string::npos);
  }

  plan = FaultPlan{};
  plan.slowdowns.push_back({0, 0.0, 1.0, 0.0});  // non-positive factor
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = FaultPlan{};
  plan.slowdowns.push_back({-1, 0.0, 1.0, 2.0});  // negative pid
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = FaultPlan{};
  plan.drops.push_back({0, -1.0});  // negative drop time
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  plan = FaultPlan{};
  plan.message_loss_probability = 1.5;
  EXPECT_THROW(plan.validate(), std::invalid_argument);

  EXPECT_NO_THROW(FaultPlan{}.validate());
  EXPECT_TRUE(FaultPlan{}.empty());
}

// --- chaos-plan generator ----------------------------------------------------

TEST(MakeChaosPlan, DeterministicAndValid) {
  ChaosOptions options;
  options.slowdown_rate = 2.0;
  options.drop_probability = 0.3;
  options.message_loss_probability = 0.05;
  const FaultPlan a = make_chaos_plan(6, options, 42);
  const FaultPlan b = make_chaos_plan(6, options, 42);
  EXPECT_NO_THROW(a.validate());
  ASSERT_EQ(a.slowdowns.size(), b.slowdowns.size());
  for (std::size_t i = 0; i < a.slowdowns.size(); ++i) {
    EXPECT_EQ(a.slowdowns[i].pid, b.slowdowns[i].pid);
    EXPECT_EQ(a.slowdowns[i].begin, b.slowdowns[i].begin);
    EXPECT_EQ(a.slowdowns[i].end, b.slowdowns[i].end);
    EXPECT_EQ(a.slowdowns[i].factor, b.slowdowns[i].factor);
  }
  ASSERT_EQ(a.drops.size(), b.drops.size());
  EXPECT_EQ(a.loss_seed, b.loss_seed);

  const FaultPlan c = make_chaos_plan(6, options, 43);
  EXPECT_NE(a.loss_seed, c.loss_seed);
}

TEST(MakeChaosPlan, PerPidStreamsAreStableAcrossMachineSizes) {
  ChaosOptions options;
  options.slowdown_rate = 1.5;
  const FaultPlan small = make_chaos_plan(4, options, 7);
  const FaultPlan large = make_chaos_plan(8, options, 7);
  // The plan for processor j must not change when the machine count does.
  std::vector<SlowdownWindow> large_low;
  for (const SlowdownWindow& w : large.slowdowns) {
    if (w.pid < 4) large_low.push_back(w);
  }
  ASSERT_EQ(small.slowdowns.size(), large_low.size());
  for (std::size_t i = 0; i < large_low.size(); ++i) {
    EXPECT_EQ(small.slowdowns[i].pid, large_low[i].pid);
    EXPECT_EQ(small.slowdowns[i].begin, large_low[i].begin);
    EXPECT_EQ(small.slowdowns[i].factor, large_low[i].factor);
  }
}

TEST(MakeChaosPlan, ZeroRatesGiveAnEmptyPlan) {
  const FaultPlan plan = make_chaos_plan(6, ChaosOptions{}, 1);
  EXPECT_TRUE(plan.slowdowns.empty());
  EXPECT_TRUE(plan.drops.empty());
  EXPECT_TRUE(plan.empty());
}

// --- injector ----------------------------------------------------------------

TEST(FaultInjector, SlowdownFactorsMultiplyAndAreExactlyOneOutside) {
  FaultPlan plan;
  plan.slowdowns.push_back({0, 1.0, 2.0, 2.0});
  plan.slowdowns.push_back({0, 1.5, 3.0, 3.0});
  const FaultInjector injector{plan};
  EXPECT_EQ(injector.slowdown_factor(0, 0.5), 1.0);  // exact: no window active
  EXPECT_DOUBLE_EQ(injector.slowdown_factor(0, 1.2), 2.0);
  EXPECT_DOUBLE_EQ(injector.slowdown_factor(0, 1.6), 6.0);  // overlap: product
  EXPECT_DOUBLE_EQ(injector.slowdown_factor(0, 2.5), 3.0);
  EXPECT_EQ(injector.slowdown_factor(0, 3.0), 1.0);  // end is exclusive
  EXPECT_EQ(injector.slowdown_factor(7, 1.2), 1.0);  // unknown pid is inert
}

TEST(FaultInjector, DropTimes) {
  FaultPlan plan;
  plan.drops.push_back({1, 0.25});
  const FaultInjector injector{plan};
  EXPECT_TRUE(injector.has_drops());
  EXPECT_EQ(injector.drop_time(1), 0.25);
  EXPECT_EQ(injector.drop_time(0), std::numeric_limits<double>::infinity());
  EXPECT_FALSE(injector.dropped_by(1, 0.2));
  EXPECT_TRUE(injector.dropped_by(1, 0.25));
  EXPECT_FALSE(injector.dropped_by(2, 1e9));
  EXPECT_FALSE(FaultInjector{FaultPlan{}}.has_drops());
}

TEST(FaultInjector, MessageLossIsAPureFunctionOfIdentity) {
  FaultPlan plan;
  plan.message_loss_probability = 0.3;
  plan.loss_seed = 99;
  const FaultInjector injector{plan};
  std::size_t lost = 0;
  for (std::uint64_t key = 0; key < 10000; ++key) {
    const bool first = injector.lose_message(key, 1);
    EXPECT_EQ(first, injector.lose_message(key, 1));  // replayable
    lost += first ? 1 : 0;
  }
  EXPECT_NEAR(static_cast<double>(lost) / 10000.0, 0.3, 0.03);

  plan.message_loss_probability = 0.0;
  EXPECT_FALSE(FaultInjector{plan}.lose_message(5, 1));
  plan.message_loss_probability = 1.0;
  EXPECT_TRUE(FaultInjector{plan}.lose_message(5, 1));
}

// --- simulator semantics -----------------------------------------------------

TEST(FaultSim, EmptyPlanIsBitIdenticalToNoInjector) {
  const MachineTree tree = cluster();
  const CommSchedule schedule = single_step(
      tree, {{1, 0, 1000}, {2, 0, 500}, {0, 2, 250}}, {{0, 2000.0}});
  // Full default params: every cost artefact on.
  sim::ClusterSim plain{tree, sim::SimParams{}};
  const sim::SimResult expected = plain.run(schedule);

  const FaultInjector empty{FaultPlan{}};
  sim::ClusterSim faulty{tree, sim::SimParams{}};
  faulty.set_fault_injector(&empty);
  const sim::SimResult actual = faulty.run(schedule);

  // Exact equality: with nothing injected, the fault layer may not move a
  // single bit of the timeline.
  EXPECT_EQ(actual.makespan, expected.makespan);
  ASSERT_EQ(actual.phase_completion, expected.phase_completion);
  EXPECT_TRUE(faulty.excluded_pids().empty());
  EXPECT_EQ(faulty.fault_stats().messages_lost, 0u);
}

TEST(FaultSim, SlowdownWindowStretchesBusyTime) {
  const MachineTree tree = cluster();
  FaultPlan plan;
  plan.slowdowns.push_back({1, 0.0, 10.0, 3.0});
  const FaultInjector injector{plan};
  sim::ClusterSim sim{tree, bare_params()};
  sim.set_fault_injector(&injector);
  // P1 (r=2) sends 1000 items to P0 inside a 3x window: send busy
  // 3·2·1000·g = 6 ms; P0's drain (no window) 0.5·1000·g = 0.5 ms.
  const sim::SimResult result = sim.run(single_step(tree, {{1, 0, 1000}}));
  EXPECT_NEAR(result.makespan, 6e-3 + 0.5e-3 + kL, 1e-12);
}

TEST(FaultSim, WindowAfterTheRunIsExactlyCostFree) {
  const MachineTree tree = cluster();
  const CommSchedule schedule = single_step(tree, {{1, 0, 1000}});
  sim::ClusterSim plain{tree, bare_params()};
  const double expected = plain.run(schedule).makespan;

  FaultPlan plan;
  plan.slowdowns.push_back({1, 5.0, 6.0, 4.0});  // long after the ~4.5 ms run
  const FaultInjector injector{plan};
  sim::ClusterSim faulty{tree, bare_params()};
  faulty.set_fault_injector(&injector);
  EXPECT_EQ(faulty.run(schedule).makespan, expected);
}

TEST(FaultSim, LostMessagesPayRetryTimeoutsWithBackoff) {
  const MachineTree tree = cluster();
  sim::SimParams params = bare_params();
  params.retry_timeout = 1e-3;
  params.retry_backoff = 2.0;
  params.max_send_attempts = 3;
  FaultPlan plan;
  plan.message_loss_probability = 1.0;  // every non-final attempt vanishes
  const FaultInjector injector{plan};
  sim::ClusterSim sim{tree, params, /*record_events=*/true};
  sim.set_fault_injector(&injector);
  // P1→P0, 1000 items, send busy 2 ms per attempt. Attempts 1 and 2 are
  // lost (+1 ms, then +2 ms timeouts); attempt 3 is final and delivers:
  // sender clock 2+1+2+2+2 = 9 ms, then P0 drains 0.5 ms.
  const sim::SimResult result = sim.run(single_step(tree, {{1, 0, 1000}}));
  EXPECT_NEAR(result.makespan, 9e-3 + 0.5e-3 + kL, 1e-12);
  EXPECT_EQ(sim.fault_stats().messages_lost, 2u);
  EXPECT_EQ(sim.fault_stats().retries, 2u);

  std::size_t lost_events = 0, retry_events = 0;
  for (const sim::TraceEvent& e : sim.trace().events()) {
    lost_events += e.kind == sim::EventKind::kMessageLost ? 1 : 0;
    retry_events += e.kind == sim::EventKind::kRetry ? 1 : 0;
  }
  EXPECT_EQ(lost_events, 2u);
  EXPECT_EQ(retry_events, 2u);
}

TEST(FaultSim, DroppedMachineStallsBarrierUntilDetectorExcludesIt) {
  const MachineTree tree = cluster();
  sim::SimParams params = bare_params();
  params.failure_detector_multiple = 4.0;
  FaultPlan plan;
  plan.drops.push_back({2, 0.0});  // P2 is dead from the start
  const FaultInjector injector{plan};
  sim::ClusterSim sim{tree, params, /*record_events=*/true};
  sim.set_fault_injector(&injector);
  // P1→P0 completes at 2.5 ms; the barrier then stalls on the corpse until
  // the detector fires at 4·(2.5 ms + L) = 18 ms.
  const sim::SimResult result = sim.run(single_step(tree, {{1, 0, 1000}}));
  EXPECT_NEAR(result.makespan, 4.0 * (2.5e-3 + kL), 1e-12);
  ASSERT_EQ(sim.excluded_pids(), std::vector<int>{2});
  EXPECT_EQ(sim.fault_stats().machines_excluded, 1u);
  EXPECT_EQ(sim.now(2), 0.0);  // the corpse's clock froze at its drop time

  bool drop_event = false;
  for (const sim::TraceEvent& e : sim.trace().events()) {
    drop_event |= e.kind == sim::EventKind::kMachineDrop && e.pid == 2;
  }
  EXPECT_TRUE(drop_event);
}

TEST(FaultSim, SenderGivesUpOnADeadReceiver) {
  const MachineTree tree = cluster();
  sim::SimParams params = bare_params();
  params.max_send_attempts = 2;
  FaultPlan plan;
  plan.drops.push_back({0, 0.0});
  const FaultInjector injector{plan};
  sim::ClusterSim sim{tree, params};
  sim.set_fault_injector(&injector);
  const sim::SimResult result = sim.run(single_step(tree, {{1, 0, 1000}}));
  // Both attempts vanish with the receiver; the detector then excludes P0.
  EXPECT_EQ(sim.fault_stats().messages_lost, 2u);
  EXPECT_EQ(sim.fault_stats().retries, 1u);
  ASSERT_EQ(sim.excluded_pids(), std::vector<int>{0});
  EXPECT_GT(result.makespan, 0.0);
}

TEST(FaultSim, SetInjectorResetsFaultStateForTheNextRun) {
  const MachineTree tree = cluster();
  FaultPlan plan;
  plan.drops.push_back({2, 0.0});
  const FaultInjector injector{plan};
  sim::ClusterSim sim{tree, bare_params()};
  sim.set_fault_injector(&injector);
  (void)sim.run(single_step(tree, {{1, 0, 1000}}));
  EXPECT_EQ(sim.fault_stats().machines_excluded, 1u);
  sim.set_fault_injector(nullptr);
  EXPECT_TRUE(sim.excluded_pids().empty());
  EXPECT_EQ(sim.fault_stats().machines_excluded, 0u);
}

// --- runtime composition -----------------------------------------------------

TEST(FaultRuntime, InjectorDegradesVirtualTimeButNotDelivery) {
  const MachineTree tree = make_hbsp1_cluster(std::array{1.0, 2.0}, kG, kL);
  const rt::Program program = [](rt::Hbsp& ctx) {
    if (ctx.pid() == 0) {
      ctx.send(1, std::vector<std::byte>(4000), 1000);
    }
    ctx.sync();
    if (ctx.pid() == 1) {
      const auto messages = ctx.recv_all();
      ASSERT_EQ(messages.size(), 1u);
      EXPECT_EQ(messages[0].items, 1000u);
    }
  };
  const rt::RunResult plain = rt::run_program(tree, sim::SimParams{}, program);

  FaultPlan plan;
  plan.slowdowns.push_back({0, 0.0, 10.0, 5.0});
  const FaultInjector injector{plan};
  rt::RunOptions options;
  options.fault_injector = &injector;
  const rt::RunResult faulty =
      rt::run_program(tree, sim::SimParams{}, program, options);
  // Payloads still arrive (asserted inside the program); time degrades.
  EXPECT_GT(faulty.makespan, plain.makespan);
  EXPECT_EQ(faulty.supersteps, plain.supersteps);
}

}  // namespace
}  // namespace hbsp::faults
