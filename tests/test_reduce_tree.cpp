// Tests for the HBSP^k hierarchical reduction: planner/closed-form
// agreement, flat-machine degeneration, executor correctness and timing
// agreement, on fixed and random machines.

#include <gtest/gtest.h>

#include <numeric>

#include "collectives/executors.hpp"
#include "collectives/planners.hpp"
#include "core/analysis.hpp"
#include "core/cost_model.hpp"
#include "core/topology.hpp"
#include "sim/cluster_sim.hpp"

namespace hbsp {
namespace {

const sim::SimParams kParams{};

TEST(ReduceTreePlanner, AgreesWithClosedForm) {
  for (const auto shares : {analysis::Shares::kEqual, analysis::Shares::kBalanced}) {
    for (const std::size_t n : {0u, 1u, 100u, 90000u}) {
      const MachineTree tree = make_figure1_cluster();
      const CostModel model{tree};
      const auto schedule =
          coll::plan_reduce_tree(tree, n, {.root_pid = -1, .shares = shares});
      validate_schedule(tree, schedule);
      const auto closed = analysis::hbspk_reduce(tree, n, shares);
      EXPECT_DOUBLE_EQ(model.cost(schedule).total(), closed.total())
          << "n=" << n;
    }
  }
}

TEST(ReduceTreePlanner, AgreesWithClosedFormOnRandomTrees) {
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    RandomTreeOptions options;
    options.levels = 1 + static_cast<int>(seed % 3);
    const MachineTree tree = make_random_tree(options, seed + 77);
    const CostModel model{tree};
    const auto schedule = coll::plan_reduce_tree(tree, 5000, {});
    validate_schedule(tree, schedule);
    EXPECT_DOUBLE_EQ(model.cost(schedule).total(),
                     analysis::hbspk_reduce(tree, 5000,
                                            analysis::Shares::kBalanced)
                         .total())
        << "seed=" << seed;
  }
}

TEST(ReduceTreePlanner, FlatMachineMatchesFlatReduceCost) {
  const MachineTree tree = make_paper_testbed(7);
  const CostModel model{tree};
  const auto flat = coll::plan_reduce(tree, 9000, {});
  const auto generic = coll::plan_reduce_tree(tree, 9000, {});
  EXPECT_DOUBLE_EQ(model.cost(generic).total(), model.cost(flat).total());
}

TEST(ReduceTreePlanner, HierarchyBeatsFlatFanInAcrossSlowLinks) {
  // The point of reducing through the tree: only m_1 partials cross the
  // campus network instead of p − 1. Compare against a hand-built flat
  // fan-in on the same HBSP^2 machine.
  const MachineTree tree = make_figure1_cluster();
  const int root = tree.coordinator_pid(tree.root());
  CommSchedule flat_fan_in;
  SuperstepPlan& up = flat_fan_in.add_step("flat partials", 2, tree.root());
  const auto shares = coll::leaf_shares(tree, 90000, coll::Shares::kBalanced);
  for (int pid = 0; pid < tree.num_processors(); ++pid) {
    const std::size_t share = shares[static_cast<std::size_t>(pid)];
    if (share > 0) {
      up.compute.push_back({pid, static_cast<double>(share) - 1.0});
    }
    if (pid != root) up.transfers.push_back({pid, root, 1});
  }
  SuperstepPlan& combine = flat_fan_in.add_step("flat combine", 2, tree.root());
  combine.compute.push_back({root, static_cast<double>(tree.num_processors() - 1)});

  sim::ClusterSim sim{tree, kParams};
  const double flat_time = sim.run(flat_fan_in).makespan;
  const double tree_time =
      sim.run(coll::plan_reduce_tree(tree, 90000, {})).makespan;
  // On this machine both cross the campus net; the tree version sends 2
  // cross-campus partials instead of 5 but pays two extra cluster barriers.
  // What must hold: the tree version's *campus* traffic is lower.
  sim.reset();
  (void)sim.run(coll::plan_reduce_tree(tree, 90000, {}));
  const auto tree_campus = sim.network().stats(tree.root()).messages_crossed;
  sim.reset();
  (void)sim.run(flat_fan_in);
  const auto flat_campus = sim.network().stats(tree.root()).messages_crossed;
  EXPECT_LT(tree_campus, flat_campus);
  EXPECT_GT(flat_time, 0.0);
  EXPECT_GT(tree_time, 0.0);
}

TEST(ReduceTreeExecutor, SumsCorrectlyOnHierarchy) {
  const MachineTree tree = make_figure1_cluster();
  const std::size_t n = 10000;
  const auto shares = coll::leaf_shares(tree, n, coll::Shares::kBalanced);
  const std::int64_t expected =
      static_cast<std::int64_t>(n) * (static_cast<std::int64_t>(n) - 1) / 2;
  const int root = tree.coordinator_pid(tree.root());

  const rt::Program program = [&](rt::Hbsp& ctx) {
    std::size_t offset = 0;
    for (int pid = 0; pid < ctx.pid(); ++pid) {
      offset += shares[static_cast<std::size_t>(pid)];
    }
    std::vector<std::int64_t> mine(shares[static_cast<std::size_t>(ctx.pid())]);
    std::iota(mine.begin(), mine.end(), static_cast<std::int64_t>(offset));
    const auto result = coll::reduce_tree<std::int64_t>(
        ctx, mine, n, [](std::int64_t a, std::int64_t b) { return a + b; },
        std::int64_t{0}, {});
    if (ctx.pid() == root) {
      ASSERT_TRUE(result.has_value());
      EXPECT_EQ(*result, expected);
    } else {
      EXPECT_FALSE(result.has_value());
    }
  };
  for (const auto engine :
       {rt::EngineKind::kVirtualTime, rt::EngineKind::kWallClock}) {
    (void)rt::run_program(tree, kParams, program, engine);
  }
}

TEST(ReduceTreeExecutor, TimingMatchesPlanner) {
  const MachineTree tree = make_figure1_cluster();
  const std::size_t n = 20000;
  const auto shares = coll::leaf_shares(tree, n, coll::Shares::kBalanced);
  sim::ClusterSim sim{tree, kParams};
  const double planned = sim.run(coll::plan_reduce_tree(tree, n, {})).makespan;

  const rt::Program program = [&](rt::Hbsp& ctx) {
    const std::vector<std::int64_t> mine(
        shares[static_cast<std::size_t>(ctx.pid())], 1);
    (void)coll::reduce_tree<std::int64_t>(
        ctx, mine, n, [](std::int64_t a, std::int64_t b) { return a + b; },
        std::int64_t{0}, {});
  };
  const double executed = rt::run_program(tree, kParams, program).makespan;
  EXPECT_NEAR(executed, planned, 1e-9 * planned);
}

TEST(ReduceTreeExecutor, WorksWithNonDefaultRoot) {
  const MachineTree tree = make_figure1_cluster();
  const std::size_t n = 999;
  const int root = tree.slowest_pid(tree.root());
  const auto shares = coll::leaf_shares(tree, n, coll::Shares::kEqual);
  const rt::Program program = [&](rt::Hbsp& ctx) {
    const std::vector<std::int64_t> mine(
        shares[static_cast<std::size_t>(ctx.pid())], 1);
    const auto result = coll::reduce_tree<std::int64_t>(
        ctx, mine, n, [](std::int64_t a, std::int64_t b) { return a + b; },
        std::int64_t{0},
        {.root_pid = root, .shares = coll::Shares::kEqual});
    if (ctx.pid() == root) {
      ASSERT_TRUE(result.has_value());
      EXPECT_EQ(*result, static_cast<std::int64_t>(n));
    }
  };
  (void)rt::run_program(tree, kParams, program);
}

TEST(ReduceTree, RejectsSingleProcessorMachines) {
  MachineSpec solo;
  solo.r = 1.0;
  const MachineTree tree = MachineTree::build(solo, 1e-6);
  EXPECT_THROW((void)coll::plan_reduce_tree(tree, 5, {}), std::invalid_argument);
  EXPECT_THROW((void)analysis::hbspk_reduce(tree, 5, analysis::Shares::kEqual),
               std::invalid_argument);
}

}  // namespace
}  // namespace hbsp
