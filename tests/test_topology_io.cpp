// Tests for the topology text format: parsing, validation errors, and
// round-trip fidelity (including over random trees).

#include "core/topology_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/topology.hpp"

namespace hbsp {
namespace {

constexpr const char* kFlatCluster = R"(
# a three-machine cluster
g 1e-6
machine cluster L=2e-3 {
  machine fast r=1
  machine mid r=1.5
  machine slow r=3 cr=2.5
}
)";

TEST(TopologyIo, ParsesFlatCluster) {
  const MachineTree tree = parse_topology(kFlatCluster);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.num_processors(), 3);
  EXPECT_DOUBLE_EQ(tree.g(), 1e-6);
  EXPECT_DOUBLE_EQ(tree.sync_L(tree.root()), 2e-3);
  EXPECT_DOUBLE_EQ(tree.processor_r(2), 3.0);
  EXPECT_DOUBLE_EQ(tree.processor_compute_r(2), 2.5);
  EXPECT_EQ(tree.node(tree.processor(0)).name, "fast");
}

TEST(TopologyIo, ParsesNestedClusters) {
  const MachineTree tree = parse_topology(R"(
g 2e-6
machine campus L=0.02 {
  machine smp L=1e-4 {
    machine c0 r=1
    machine c1 r=1
  }
  machine sgi r=1.4
  machine lan L=2e-3 {
    machine w0 r=2
    machine w1 r=3
  }
}
)");
  EXPECT_EQ(tree.height(), 2);
  EXPECT_EQ(tree.num_processors(), 5);
  EXPECT_TRUE(tree.is_processor(tree.child(tree.root(), 1)));
}

TEST(TopologyIo, ParsesExplicitShares) {
  const MachineTree tree = parse_topology(R"(
g 1e-6
machine cluster {
  machine a r=1 c=0.7
  machine b r=2 c=0.3
}
)");
  EXPECT_DOUBLE_EQ(tree.c(tree.processor(0)), 0.7);
  EXPECT_DOUBLE_EQ(tree.c(tree.processor(1)), 0.3);
}

TEST(TopologyIo, ErrorsCarryLineNumbers) {
  try {
    (void)parse_topology("g 1e-6\nmachine a r=1\nmachine b r=2\n");
    FAIL() << "expected parse failure (two top-level machines)";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string{e.what()}.find("line 3"), std::string::npos);
  }
}

TEST(TopologyIo, RejectsMissingG) {
  EXPECT_THROW((void)parse_topology("machine a r=1\n"), std::invalid_argument);
}

TEST(TopologyIo, RejectsMissingMachine) {
  EXPECT_THROW((void)parse_topology("g 1e-6\n"), std::invalid_argument);
}

TEST(TopologyIo, RejectsDuplicateG) {
  EXPECT_THROW((void)parse_topology("g 1\ng 2\nmachine a r=1\n"),
               std::invalid_argument);
}

TEST(TopologyIo, RejectsUnknownAttribute) {
  EXPECT_THROW((void)parse_topology("g 1\nmachine a r=1 bogus=2\n"),
               std::invalid_argument);
}

TEST(TopologyIo, RejectsMalformedNumber) {
  EXPECT_THROW((void)parse_topology("g 1\nmachine a r=fast\n"),
               std::invalid_argument);
}

TEST(TopologyIo, RejectsUnterminatedBrace) {
  EXPECT_THROW((void)parse_topology("g 1\nmachine a {\n machine b r=1\n"),
               std::invalid_argument);
}

TEST(TopologyIo, CommentsAndBlankLinesIgnored) {
  const MachineTree tree = parse_topology(
      "# header\n\ng 1e-6 # trailing\n\nmachine solo r=1 # leaf\n");
  EXPECT_EQ(tree.num_processors(), 1);
}

TEST(TopologyIo, RoundTripsFlatCluster) {
  const MachineTree original = parse_topology(kFlatCluster);
  const MachineTree reparsed = parse_topology(serialize_topology(original));
  EXPECT_EQ(serialize_topology(original), serialize_topology(reparsed));
}

TEST(TopologyIo, LoadTopologyReadsFiles) {
  const std::string path = testing::TempDir() + "hbspk_topo_test.txt";
  {
    std::ofstream out{path};
    out << kFlatCluster;
  }
  const MachineTree tree = load_topology(path);
  EXPECT_EQ(tree.num_processors(), 3);
  std::remove(path.c_str());
}

TEST(TopologyIo, LoadTopologyMissingFileThrows) {
  EXPECT_THROW((void)load_topology("/nonexistent/nope.txt"), std::runtime_error);
}

class RoundTripProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RoundTripProperty, SerializeParseIsIdentity) {
  RandomTreeOptions options;
  options.levels = 1 + static_cast<int>(GetParam() % 3);
  const MachineTree original = make_random_tree(options, GetParam() + 1000);
  const std::string text = serialize_topology(original);
  const MachineTree reparsed = parse_topology(text);

  ASSERT_EQ(reparsed.num_processors(), original.num_processors());
  ASSERT_EQ(reparsed.height(), original.height());
  EXPECT_DOUBLE_EQ(reparsed.g(), original.g());
  for (int pid = 0; pid < original.num_processors(); ++pid) {
    EXPECT_DOUBLE_EQ(reparsed.processor_r(pid), original.processor_r(pid));
    EXPECT_DOUBLE_EQ(reparsed.global_c(reparsed.processor(pid)),
                     original.global_c(original.processor(pid)));
  }
  EXPECT_EQ(serialize_topology(reparsed), text);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripProperty,
                         ::testing::Range<std::uint64_t>(0, 16));

}  // namespace
}  // namespace hbsp
