// Tests for the hierarchical all-gather composition (gather + broadcast).

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "collectives/executors.hpp"
#include "collectives/planners.hpp"
#include "core/cost_model.hpp"
#include "core/topology.hpp"
#include "sim/cluster_sim.hpp"

namespace hbsp::coll {
namespace {

const sim::SimParams kParams{};

TEST(AllgatherTreePlanner, CostIsGatherPlusBroadcast) {
  const MachineTree tree = make_figure1_cluster();
  const CostModel model{tree};
  const std::size_t n = 25000;
  const double composed = model.cost(plan_allgather_tree(tree, n)).total();
  const double up = model.cost(plan_gather(tree, n, {})).total();
  const double down = model.cost(plan_broadcast(tree, n, {})).total();
  EXPECT_DOUBLE_EQ(composed, up + down);
}

TEST(AllgatherTreePlanner, UpperNetworksCarryFarLessThanFlatExchange) {
  const MachineTree tree = make_wide_area_grid();
  const std::size_t n = 10000;

  // Flat total exchange (what plan_allgather would do if it allowed
  // hierarchies): every pair exchanges shares across the machine.
  CommSchedule flat;
  SuperstepPlan& plan = flat.add_step("flat exchange", 3, tree.root());
  const auto shares = leaf_shares(tree, n, Shares::kBalanced);
  for (int a = 0; a < tree.num_processors(); ++a) {
    for (int b = 0; b < tree.num_processors(); ++b) {
      if (a != b && shares[static_cast<std::size_t>(a)] > 0) {
        plan.transfers.push_back({a, b, shares[static_cast<std::size_t>(a)]});
      }
    }
  }

  sim::ClusterSim sim{tree, kParams};
  (void)sim.run(flat);
  const auto flat_wan = sim.network().stats(tree.root()).items_crossed;
  sim.reset();
  (void)sim.run(plan_allgather_tree(tree, n));
  const auto tree_wan = sim.network().stats(tree.root()).items_crossed;
  EXPECT_LT(tree_wan, flat_wan / 3);
}

TEST(AllgatherTreeExecutor, EveryoneAssemblesEverything) {
  for (const bool deep : {false, true}) {
    const MachineTree tree =
        deep ? make_figure1_cluster() : make_paper_testbed(5);
    const std::size_t n = 999;
    const auto shares = leaf_shares(tree, n, Shares::kBalanced);
    std::vector<std::int32_t> global(n);
    std::iota(global.begin(), global.end(), 7);
    std::atomic<int> confirmed{0};

    const rt::Program program = [&](rt::Hbsp& ctx) {
      std::size_t offset = 0;
      for (int pid = 0; pid < ctx.pid(); ++pid) {
        offset += shares[static_cast<std::size_t>(pid)];
      }
      const std::span<const std::int32_t> mine{
          global.data() + offset, shares[static_cast<std::size_t>(ctx.pid())]};
      const auto result =
          allgather_tree<std::int32_t>(ctx, mine, n, Shares::kBalanced);
      if (result == global) ++confirmed;
    };
    (void)rt::run_program(tree, kParams, program);
    EXPECT_EQ(confirmed.load(), tree.num_processors()) << "deep=" << deep;
  }
}

TEST(AllgatherTreeExecutor, TimingMatchesPlanner) {
  const MachineTree tree = make_figure1_cluster();
  const std::size_t n = 12000;
  sim::ClusterSim sim{tree, kParams};
  const double planned = sim.run(plan_allgather_tree(tree, n)).makespan;

  const auto shares = leaf_shares(tree, n, Shares::kBalanced);
  const rt::Program program = [&](rt::Hbsp& ctx) {
    const std::vector<std::int32_t> mine(
        shares[static_cast<std::size_t>(ctx.pid())], 1);
    (void)allgather_tree<std::int32_t>(ctx, mine, n, Shares::kBalanced);
  };
  const double executed = rt::run_program(tree, kParams, program).makespan;
  EXPECT_NEAR(executed, planned, 1e-9 * planned);
}

TEST(AllgatherTree, RejectsSingleProcessorMachines) {
  MachineSpec solo;
  solo.r = 1.0;
  const MachineTree tree = MachineTree::build(solo, 1e-6);
  EXPECT_THROW((void)plan_allgather_tree(tree, 5), std::invalid_argument);
}

}  // namespace
}  // namespace hbsp::coll
