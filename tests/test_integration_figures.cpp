// Integration tests asserting the paper's §5 experimental *shapes* hold on
// miniature versions of the Figure 3/4 sweeps. These are the regression
// gates for the headline reproduction claims (see EXPERIMENTS.md).

#include <gtest/gtest.h>

#include <algorithm>

#include "core/topology.hpp"
#include "experiments/figures.hpp"

namespace hbsp::exp {
namespace {

FigureConfig mini_config() {
  FigureConfig config;
  config.processors = {2, 3, 5, 7, 10};
  config.kbytes = {100, 500, 1000};
  return config;
}

TEST(Figure3a, SlowRootWinsAtP2) {
  // §5.2: "it is better for the root node to be the slowest workstation" at
  // p = 2 — the improvement factor T_s/T_f dips below 1.
  const ImprovementTable table = gather_root_experiment(mini_config());
  for (const double factor : table.factor[0]) EXPECT_LT(factor, 1.0);
}

TEST(Figure3a, ImprovementGrowsWithP) {
  const ImprovementTable table = gather_root_experiment(mini_config());
  for (std::size_t col = 0; col < table.kbytes.size(); ++col) {
    for (std::size_t row = 1; row < table.processors.size(); ++row) {
      EXPECT_GT(table.factor[row][col], table.factor[row - 1][col])
          << "p " << table.processors[row - 1] << " -> "
          << table.processors[row];
    }
    // A clear win by p = 10 (the paper's fast-root benefit).
    EXPECT_GT(table.factor.back()[col], 1.5);
  }
}

TEST(Figure3a, SteadyAcrossProblemSizes) {
  // "The improvement factor is steady across all problem sizes."
  const ImprovementTable table = gather_root_experiment(mini_config());
  for (std::size_t row = 0; row < table.processors.size(); ++row) {
    const auto [lo, hi] = std::minmax_element(table.factor[row].begin(),
                                              table.factor[row].end());
    EXPECT_LT(*hi - *lo, 0.15 * *hi);
  }
}

TEST(Figure3b, BalancingHelpsClearlyAtP2) {
  const ImprovementTable table = gather_balance_experiment(mini_config());
  for (const double factor : table.factor[0]) EXPECT_GT(factor, 1.3);
}

TEST(Figure3b, VirtuallyNoBenefitAtLargeP) {
  // §5.2: "there is virtually no benefit to distributing the workload based
  // on a processor's computational abilities, except at p = 2."
  const ImprovementTable table = gather_balance_experiment(mini_config());
  for (std::size_t row = 2; row < table.processors.size(); ++row) {
    for (const double factor : table.factor[row]) {
      EXPECT_LT(factor, 1.1) << "p=" << table.processors[row];
      EXPECT_GT(factor, 0.9) << "p=" << table.processors[row];
    }
  }
}

TEST(Figure4a, BroadcastImprovementIsSmall) {
  // §5.3: "negligible improvement in performance" from the fast root; far
  // smaller than gather's, and bounded across the sweep.
  const ImprovementTable bcast = broadcast_root_experiment(mini_config());
  const ImprovementTable gather = gather_root_experiment(mini_config());
  for (std::size_t row = 0; row < bcast.processors.size(); ++row) {
    for (std::size_t col = 0; col < bcast.kbytes.size(); ++col) {
      EXPECT_LT(bcast.factor[row][col], 1.35);
      EXPECT_GE(bcast.factor[row][col], 0.95);
    }
  }
  // Root choice matters for gather but not for broadcast at scale.
  EXPECT_GT(gather.factor.back()[0], bcast.factor.back()[0] + 0.5);
}

TEST(Figure4b, NoBenefitFromBalancedBroadcast) {
  // §5.3: every processor must receive all n items; at scale the factor sits
  // at 1 (small p retains a modest scatter-phase benefit under our
  // substrate — see EXPERIMENTS.md).
  const ImprovementTable table = broadcast_balance_experiment(mini_config());
  for (std::size_t row = 0; row < table.processors.size(); ++row) {
    for (const double factor : table.factor[row]) {
      EXPECT_LT(factor, 1.3);
      EXPECT_GT(factor, 0.9);
    }
  }
  // By p = 10 the factor is essentially 1.
  for (const double factor : table.factor.back()) {
    EXPECT_NEAR(factor, 1.0, 0.06);
  }
}

TEST(Figures, DeterministicAcrossRuns) {
  const ImprovementTable a = gather_root_experiment(mini_config());
  const ImprovementTable b = gather_root_experiment(mini_config());
  EXPECT_EQ(a.factor, b.factor);
}

TEST(Figures, TableRendering) {
  const ImprovementTable table = gather_root_experiment(mini_config());
  const util::Table rendered = table.to_table("check");
  EXPECT_EQ(rendered.rows(), table.processors.size());
  EXPECT_EQ(rendered.columns(), table.kbytes.size() + 1);
}

TEST(RankedTestbed, UsesTrueRAndEstimatedC) {
  FigureConfig config;
  const MachineTree ranked = make_ranked_testbed(5, config);
  const MachineTree truth = make_paper_testbed(5, config.g, config.L);
  for (int pid = 0; pid < 5; ++pid) {
    EXPECT_DOUBLE_EQ(ranked.processor_r(pid), truth.processor_r(pid));
    // Estimated c is near but (with noise) not exactly the ideal c.
    EXPECT_NEAR(ranked.c(ranked.processor(pid)), truth.c(truth.processor(pid)),
                0.1);
  }
}

}  // namespace
}  // namespace hbsp::exp
