// Property tests over random machines: the collectives must move data
// correctly and agree with their planned costs on *any* valid HBSP^k
// machine, not just the hand-picked presets — including the k = 3 wide-area
// grid (the paper's "one can generalize the approach given here for these
// systems").

#include <gtest/gtest.h>

#include <numeric>

#include <atomic>

#include "collectives/executors.hpp"
#include "collectives/plan_cache.hpp"
#include "collectives/planners.hpp"
#include "collectives/resilience.hpp"
#include "collectives/schedule_replay.hpp"
#include "core/cost_model.hpp"
#include "core/topology.hpp"
#include "experiments/chaos.hpp"
#include "experiments/figures.hpp"
#include "experiments/scenario_cache.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "sim/cluster_sim.hpp"
#include "util/rng.hpp"

namespace hbsp {
namespace {

const sim::SimParams kParams{};

std::vector<std::vector<std::int32_t>> slices_for(
    const std::vector<std::size_t>& shares) {
  std::vector<std::vector<std::int32_t>> slices;
  std::int32_t next = 0;
  for (const std::size_t count : shares) {
    std::vector<std::int32_t> slice(count);
    std::iota(slice.begin(), slice.end(), next);
    next += static_cast<std::int32_t>(count);
    slices.push_back(std::move(slice));
  }
  return slices;
}

class RandomMachineProperty : public ::testing::TestWithParam<std::uint64_t> {
 protected:
  [[nodiscard]] MachineTree machine() const {
    RandomTreeOptions options;
    options.levels = 1 + static_cast<int>(GetParam() % 3);
    options.min_fanout = 2;
    options.max_fanout = 3;
    return make_random_tree(options, GetParam() * 31 + 5);
  }
  [[nodiscard]] std::size_t n() const { return 101 + (GetParam() % 7) * 173; }
  [[nodiscard]] coll::Shares shares() const {
    return GetParam() % 2 == 0 ? coll::Shares::kBalanced : coll::Shares::kEqual;
  }
};

TEST_P(RandomMachineProperty, GatherRoundTripsAllData) {
  const MachineTree tree = machine();
  const auto leaf = coll::leaf_shares(tree, n(), shares());
  const auto slices = slices_for(leaf);
  const int root = tree.coordinator_pid(tree.root());
  const std::size_t total = n();
  const coll::Shares policy = shares();

  const rt::Program program = [&](rt::Hbsp& ctx) {
    const auto result = coll::gather<std::int32_t>(
        ctx, slices[static_cast<std::size_t>(ctx.pid())], total,
        {.root_pid = root, .shares = policy});
    if (ctx.pid() == root) {
      ASSERT_TRUE(result.has_value());
      ASSERT_EQ(result->size(), total);
      for (std::size_t i = 0; i < total; ++i) {
        EXPECT_EQ((*result)[i], static_cast<std::int32_t>(i));
      }
    }
  };
  (void)rt::run_program(tree, kParams, program);
}

TEST_P(RandomMachineProperty, ScatterThenGatherIsIdentity) {
  const MachineTree tree = machine();
  const int root = tree.coordinator_pid(tree.root());
  const std::size_t total = n();
  const coll::Shares policy = shares();
  std::vector<std::int32_t> input(total);
  std::iota(input.begin(), input.end(), 1000);

  const rt::Program program = [&](rt::Hbsp& ctx) {
    const auto mine = coll::scatter<std::int32_t>(
        ctx, ctx.pid() == root ? std::span<const std::int32_t>{input}
                               : std::span<const std::int32_t>{},
        total, {.root_pid = root, .shares = policy});
    const auto back = coll::gather<std::int32_t>(
        ctx, mine, total, {.root_pid = root, .shares = policy});
    if (ctx.pid() == root) {
      ASSERT_TRUE(back.has_value());
      EXPECT_EQ(*back, input);
    }
  };
  (void)rt::run_program(tree, kParams, program);
}

TEST_P(RandomMachineProperty, BroadcastDeliversEverywhere) {
  const MachineTree tree = machine();
  const int root = tree.coordinator_pid(tree.root());
  const std::size_t total = n();
  std::vector<std::int32_t> input(total);
  std::iota(input.begin(), input.end(), -50);
  std::atomic<int> confirmed{0};

  const rt::Program program = [&](rt::Hbsp& ctx) {
    const auto result = coll::broadcast<std::int32_t>(
        ctx, ctx.pid() == root ? std::span<const std::int32_t>{input}
                               : std::span<const std::int32_t>{},
        total,
        {.root_pid = root,
         .top_phase = GetParam() % 2 == 0 ? coll::TopPhase::kTwoPhase
                                          : coll::TopPhase::kOnePhase,
         .shares = coll::Shares::kEqual});
    if (result == input) ++confirmed;
  };
  (void)rt::run_program(tree, kParams, program);
  EXPECT_EQ(confirmed.load(), tree.num_processors());
}

TEST_P(RandomMachineProperty, ReduceTreeSums) {
  const MachineTree tree = machine();
  if (tree.num_children(tree.root()) == 0) GTEST_SKIP();
  const auto leaf = coll::leaf_shares(tree, n(), shares());
  const int root = tree.coordinator_pid(tree.root());
  const std::size_t total = n();
  const coll::Shares policy = shares();

  const rt::Program program = [&](rt::Hbsp& ctx) {
    const std::vector<std::int64_t> mine(
        leaf[static_cast<std::size_t>(ctx.pid())], 3);
    const auto result = coll::reduce_tree<std::int64_t>(
        ctx, mine, total, [](std::int64_t a, std::int64_t b) { return a + b; },
        std::int64_t{0}, {.root_pid = root, .shares = policy});
    if (ctx.pid() == root) {
      ASSERT_TRUE(result.has_value());
      EXPECT_EQ(*result, 3 * static_cast<std::int64_t>(total));
    }
  };
  (void)rt::run_program(tree, kParams, program);
}

TEST_P(RandomMachineProperty, GatherCostEqualsSimulatedReplay) {
  const MachineTree tree = machine();
  const auto schedule = coll::plan_gather(tree, n(), {.root_pid = -1,
                                                      .shares = shares()});
  validate_schedule(tree, schedule);
  sim::ClusterSim sim{tree, kParams};
  const double simulated = sim.run(schedule).makespan;
  const double replayed =
      rt::run_program(tree, kParams, coll::make_replay_program(tree, schedule))
          .makespan;
  EXPECT_NEAR(replayed, simulated, 1e-9 * simulated + 1e-15);
}

TEST_P(RandomMachineProperty, CachedScenarioIsBitIdenticalToDirectSimulation) {
  // Zero-fault half of the scenario-throughput soundness claim: a makespan
  // served through the plan + scenario caches equals the seed simulator's
  // exactly (==, not NEAR) — cold (first request simulates) and warm (the
  // memoized value) alike.
  const MachineTree tree = machine();
  const auto plan = coll::PlanCache::global().get(
      tree, {.kind = coll::CollectiveKind::kGather,
             .n = n(),
             .root_pid = tree.coordinator_pid(tree.root()),
             .shares = shares()});
  sim::ClusterSim direct{tree, kParams};
  const double want = direct.run(plan->schedule).makespan;
  const double cold = exp::simulate_makespan(tree, plan->schedule, kParams);
  const double warm = exp::simulate_makespan(tree, plan->schedule, kParams);
  EXPECT_EQ(cold, want);
  EXPECT_EQ(warm, want);
}

TEST_P(RandomMachineProperty, CachedFaultScenarioIsBitIdenticalToDirectSim) {
  // Same claim under a seeded disturbance: the scenario key folds in the
  // fault-plan fingerprint, so a faulted run memoizes separately and still
  // reproduces the direct simulation bit for bit.
  const MachineTree tree = machine();
  faults::ChaosOptions options;
  options.horizon = 0.5;
  options.slowdown_rate = 2.0;
  options.slowdown_max_factor = 4.0;
  options.slowdown_max_duration = 0.1;
  options.message_loss_probability = 0.05;
  const faults::FaultPlan plan = faults::make_chaos_plan(
      tree.num_processors(), options, GetParam() * 131 + 7);
  const faults::FaultInjector injector{plan};
  const CommSchedule schedule =
      coll::plan_gather(tree, n(), {.shares = shares()});

  sim::ClusterSim direct{tree, kParams};
  direct.set_fault_injector(&injector);
  const double want = direct.run(schedule).makespan;
  const double cold =
      exp::simulate_makespan_with_faults(tree, schedule, kParams, &injector);
  const double warm =
      exp::simulate_makespan_with_faults(tree, schedule, kParams, &injector);
  EXPECT_EQ(cold, want);
  EXPECT_EQ(warm, want);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomMachineProperty,
                         ::testing::Range<std::uint64_t>(0, 18));

// --- plan caching under degraded-mode re-planning --------------------------

TEST(ResilienceCaching, SurvivorTreeRequestsNeverAliasPreFailureKeys) {
  // Why run_with_replanning cannot be served a pre-failure plan after an
  // exclusion: the survivor machine re-fingerprints (renormalised r, pruned
  // nodes), and the fingerprint is part of every PlanKey, so post-failure
  // requests key into a disjoint part of the cache by construction.
  RandomTreeOptions options;
  options.levels = 2;
  options.min_fanout = 2;
  options.max_fanout = 3;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const MachineTree tree = make_random_tree(options, seed * 53 + 29);
    if (tree.num_processors() < 3) continue;
    const int dead = tree.num_processors() - 1;
    const auto survivor =
        coll::remove_processors(tree, std::array{dead});
    EXPECT_NE(survivor.tree.fingerprint(), tree.fingerprint()) << seed;
    const coll::PlanRequest request{
        .kind = coll::CollectiveKind::kGather, .n = 5000, .root_pid = 0};
    EXPECT_NE(coll::PlanCache::key_for(tree, request),
              coll::PlanCache::key_for(survivor.tree, request))
        << seed;
  }
}

TEST(ResilienceCaching, ReplanningIsIdenticalWithColdAndDirtyCaches) {
  // run_with_replanning plans through the advisor, which serves from the
  // global plan cache. Whatever the cache holds — empty, or "dirty" with
  // every plan of the previous (identical) run, including the full-tree
  // plans that are stale after the exclusion — the degraded run must come
  // out the same.
  const MachineTree tree = make_paper_testbed(5);
  faults::FaultPlan plan;
  plan.drops = {{4, 0.0}};  // dead from the start: exclusion is guaranteed
  plan.message_loss_probability = 0.02;
  plan.loss_seed = 17;

  coll::PlanCache::global().clear();
  exp::ScenarioCache::global().clear();
  const auto cold = coll::run_with_replanning(
      tree, coll::CollectiveKind::kGather, 50000, kParams, plan);
  ASSERT_GT(cold.replans, 0u);
  ASSERT_EQ(cold.excluded_pids, std::vector<int>{4});

  // The cold run warmed the cache with both pre- and post-failure plans.
  const auto dirty = coll::run_with_replanning(
      tree, coll::CollectiveKind::kGather, 50000, kParams, plan);
  EXPECT_EQ(dirty.fault_free_makespan, cold.fault_free_makespan);
  EXPECT_EQ(dirty.degraded_makespan, cold.degraded_makespan);
  EXPECT_EQ(dirty.excluded_pids, cold.excluded_pids);
  EXPECT_EQ(dirty.replans, cold.replans);
  EXPECT_EQ(dirty.messages_lost, cold.messages_lost);
  EXPECT_EQ(dirty.retries, cold.retries);
  EXPECT_EQ(dirty.completed, cold.completed);
}

// --- the k = 3 wide-area grid ----------------------------------------------------

TEST(WideAreaGrid, ShapeIsThreeLevels) {
  const MachineTree tree = make_wide_area_grid();
  EXPECT_EQ(tree.height(), 3);
  EXPECT_EQ(tree.num_processors(), 13);
  EXPECT_EQ(tree.machines_at(2), 2);  // two campuses
  // Campuses sit at level 2, so their children (labs and the standalone
  // server) are level-1 machines; the server is a degenerate processor there.
  bool found_server = false;
  for (const MachineId id : tree.level_ids(1)) {
    if (tree.node(id).name == "a-server") {
      EXPECT_TRUE(tree.is_processor(id));
      found_server = true;
    }
  }
  EXPECT_TRUE(found_server);
}

TEST(WideAreaGrid, CollectivesWorkAtKEquals3) {
  const MachineTree tree = make_wide_area_grid();
  const std::size_t n = 2600;
  const int root = tree.coordinator_pid(tree.root());
  const auto leaf = coll::leaf_shares(tree, n, coll::Shares::kBalanced);
  const auto slices = slices_for(leaf);

  const rt::Program program = [&](rt::Hbsp& ctx) {
    // gather, then broadcast the result back, then reduce a checksum.
    const auto gathered = coll::gather<std::int32_t>(
        ctx, slices[static_cast<std::size_t>(ctx.pid())], n, {});
    const auto everywhere = coll::broadcast<std::int32_t>(
        ctx,
        ctx.pid() == root ? std::span<const std::int32_t>{*gathered}
                          : std::span<const std::int32_t>{},
        n, {});
    ASSERT_EQ(everywhere.size(), n);
    const std::vector<std::int64_t> one(1, everywhere.front());
    const auto sum = coll::reduce_tree<std::int64_t>(
        ctx, one, static_cast<std::size_t>(ctx.nprocs()),
        [](std::int64_t a, std::int64_t b) { return a + b; }, std::int64_t{0},
        {.root_pid = root, .shares = coll::Shares::kEqual});
    if (ctx.pid() == root) {
      ASSERT_TRUE(sum.has_value());
      EXPECT_EQ(*sum, static_cast<std::int64_t>(ctx.nprocs()) *
                          everywhere.front());
    }
  };
  (void)rt::run_program(tree, kParams, program);
}

TEST(WideAreaGrid, GatherSchedulesHaveOnePhasePerLevel) {
  const MachineTree tree = make_wide_area_grid();
  const auto schedule = coll::plan_gather(tree, 10000, {});
  EXPECT_EQ(schedule.phases.size(), 3u);  // super^1, super^2, super^3
  // Level-1 phase: one plan per lab (4 labs).
  EXPECT_EQ(schedule.phases[0].plans.size(), 4u);
  // Level-2 phase: one plan per campus.
  EXPECT_EQ(schedule.phases[1].plans.size(), 2u);
  // Level-3 phase: the wide-area forwarding step.
  EXPECT_EQ(schedule.phases[2].plans.size(), 1u);
}

TEST(WideAreaGrid, HierarchicalGatherBeatsFlatFanInOnWideLinks) {
  // The reason to exploit hierarchy at k = 3: only one message crosses the
  // wide-area link per campus, instead of one per processor.
  const MachineTree tree = make_wide_area_grid();
  const std::size_t n = 100000;
  const int root = tree.coordinator_pid(tree.root());

  CommSchedule flat;
  SuperstepPlan& plan = flat.add_step("flat fan-in", 3, tree.root());
  const auto shares = coll::leaf_shares(tree, n, coll::Shares::kBalanced);
  for (int pid = 0; pid < tree.num_processors(); ++pid) {
    if (pid != root && shares[static_cast<std::size_t>(pid)] > 0) {
      plan.transfers.push_back({pid, root, shares[static_cast<std::size_t>(pid)]});
    }
  }

  sim::ClusterSim sim{tree, kParams};
  (void)sim.run(flat);
  const auto flat_wide = sim.network().stats(tree.root()).messages_crossed;
  sim.reset();
  (void)sim.run(coll::plan_gather(tree, n, {}));
  const auto tree_wide = sim.network().stats(tree.root()).messages_crossed;
  EXPECT_LT(tree_wide, flat_wide);
  EXPECT_EQ(tree_wide, 1u);  // one cross-wide-area message (campus-b -> root)
}

}  // namespace
}  // namespace hbsp
