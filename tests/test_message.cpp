// Tests for the PVM-style message pack/unpack buffers.

#include "runtime/message.hpp"

#include <gtest/gtest.h>

#include <cstdint>

namespace hbsp::rt {
namespace {

TEST(PackBuffer, TypedRoundTrip) {
  PackBuffer out;
  out.pack<std::int32_t>(-7);
  out.pack<double>(2.5);
  out.pack<std::uint8_t>(0xAB);

  UnpackBuffer in{out.bytes()};
  EXPECT_EQ(in.unpack<std::int32_t>(), -7);
  EXPECT_DOUBLE_EQ(in.unpack<double>(), 2.5);
  EXPECT_EQ(in.unpack<std::uint8_t>(), 0xAB);
  EXPECT_EQ(in.remaining(), 0u);
}

TEST(PackBuffer, SpanRoundTrip) {
  const std::vector<std::int64_t> values{1, -2, 3, -4};
  PackBuffer out;
  out.pack_span<std::int64_t>(values);
  EXPECT_EQ(out.size(), values.size() * sizeof(std::int64_t));

  UnpackBuffer in{out.bytes()};
  EXPECT_EQ(in.unpack_span<std::int64_t>(4), values);
}

TEST(PackBuffer, MixedScalarAndSpan) {
  PackBuffer out;
  out.pack<std::int32_t>(3);  // count prefix
  const std::vector<float> values{1.5f, 2.5f, 3.5f};
  out.pack_span<float>(values);

  UnpackBuffer in{out.bytes()};
  const auto count = in.unpack<std::int32_t>();
  EXPECT_EQ(in.unpack_span<float>(static_cast<std::size_t>(count)), values);
}

TEST(PackBuffer, TakeMovesAndClears) {
  PackBuffer out;
  out.pack<std::int32_t>(1);
  const auto bytes = out.take();
  EXPECT_EQ(bytes.size(), 4u);
  EXPECT_EQ(out.size(), 0u);
}

TEST(PackBuffer, ClearResets) {
  PackBuffer out;
  out.pack<double>(1.0);
  out.clear();
  EXPECT_EQ(out.size(), 0u);
}

TEST(UnpackBuffer, ReadPastEndThrows) {
  PackBuffer out;
  out.pack<std::int32_t>(5);
  UnpackBuffer in{out.bytes()};
  (void)in.unpack<std::int32_t>();
  EXPECT_THROW((void)in.unpack<std::int32_t>(), std::out_of_range);
}

TEST(UnpackBuffer, SpanPastEndThrows) {
  PackBuffer out;
  out.pack<std::int32_t>(5);
  UnpackBuffer in{out.bytes()};
  EXPECT_THROW((void)in.unpack_span<std::int32_t>(2), std::out_of_range);
}

TEST(UnpackBuffer, ZeroCountSpanIsFine) {
  UnpackBuffer in{std::span<const std::byte>{}};
  EXPECT_TRUE(in.unpack_span<std::int32_t>(0).empty());
  EXPECT_EQ(in.remaining(), 0u);
}

TEST(Message, UnpackAll) {
  const std::vector<std::int32_t> values{10, 20, 30};
  PackBuffer out;
  out.pack_span<std::int32_t>(values);
  Message message;
  message.payload = out.take();
  message.items = 3;
  EXPECT_EQ(message.unpack_all<std::int32_t>(), values);
}

TEST(Message, UnpackAllSizeMismatchThrows) {
  Message message;
  message.payload.resize(5);  // not a multiple of 4
  EXPECT_THROW((void)message.unpack_all<std::int32_t>(), std::length_error);
}

TEST(Message, UnpackAllEmptyPayload) {
  Message message;
  EXPECT_TRUE(message.unpack_all<std::int32_t>().empty());
}

}  // namespace
}  // namespace hbsp::rt
