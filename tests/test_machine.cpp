// Unit and property tests for the HBSP^k machine tree (paper §3.1/§3.3).

#include "core/machine.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "core/topology.hpp"

namespace hbsp {
namespace {

MachineSpec leaf(const std::string& name, double r) {
  MachineSpec spec;
  spec.name = name;
  spec.r = r;
  return spec;
}

TEST(MachineTree, SingleProcessorIsHbsp0) {
  const MachineTree tree = MachineTree::build(leaf("solo", 1.0), 1e-6);
  EXPECT_EQ(tree.height(), 0);
  EXPECT_EQ(tree.num_processors(), 1);
  EXPECT_TRUE(tree.is_processor(tree.root()));
  EXPECT_EQ(tree.coordinator_pid(tree.root()), 0);
}

TEST(MachineTree, FlatClusterShape) {
  const MachineTree tree = make_hbsp1_cluster(std::array{1.0, 2.0, 3.0});
  EXPECT_EQ(tree.height(), 1);
  EXPECT_EQ(tree.num_processors(), 3);
  EXPECT_EQ(tree.machines_at(0), 3);
  EXPECT_EQ(tree.machines_at(1), 1);
  EXPECT_EQ(tree.num_children(tree.root()), 3);
  for (int pid = 0; pid < 3; ++pid) {
    EXPECT_TRUE(tree.is_processor(tree.processor(pid)));
    EXPECT_EQ(tree.node(tree.processor(pid)).pid, pid);
  }
}

TEST(MachineTree, CoordinatorIsFastestAndClusterInheritsItsR) {
  const MachineTree tree = make_hbsp1_cluster(std::array{2.0, 1.0, 3.0});
  EXPECT_EQ(tree.coordinator_pid(tree.root()), 1);
  // The paper's r_{1,0} = 1: a cluster's r is its coordinator's.
  EXPECT_DOUBLE_EQ(tree.r(tree.root()), 1.0);
  EXPECT_EQ(tree.slowest_pid(tree.root()), 2);
}

TEST(MachineTree, CoordinatorTieBreaksToLowestPid) {
  const MachineTree tree = make_hbsp1_cluster(std::array{1.0, 1.0, 1.0});
  EXPECT_EQ(tree.coordinator_pid(tree.root()), 0);
  EXPECT_EQ(tree.slowest_pid(tree.root()), 0);
}

TEST(MachineTree, Figure1ClusterLevels) {
  // Fig. 2: the SMP's processors and the LAN's workstations sit at level 0,
  // the bare SGI workstation at level 1.
  const MachineTree tree = make_figure1_cluster();
  EXPECT_EQ(tree.height(), 2);
  EXPECT_EQ(tree.num_processors(), 9);
  EXPECT_EQ(tree.machines_at(1), 3);
  EXPECT_EQ(tree.machines_at(0), 8);
  const MachineId sgi = tree.child(tree.root(), 1);
  EXPECT_EQ(sgi.level, 1);
  EXPECT_TRUE(tree.is_processor(sgi));
  EXPECT_EQ(tree.node(sgi).name, "sgi");
}

TEST(MachineTree, ProcessorRangesAreContiguousSubtrees) {
  const MachineTree tree = make_figure1_cluster();
  const auto [smp_first, smp_last] = tree.processor_range(tree.child(tree.root(), 0));
  EXPECT_EQ(smp_first, 0);
  EXPECT_EQ(smp_last, 4);
  const auto [sgi_first, sgi_last] = tree.processor_range(tree.child(tree.root(), 1));
  EXPECT_EQ(sgi_first, 4);
  EXPECT_EQ(sgi_last, 5);
  const auto [lan_first, lan_last] = tree.processor_range(tree.child(tree.root(), 2));
  EXPECT_EQ(lan_first, 5);
  EXPECT_EQ(lan_last, 9);
  const auto [root_first, root_last] = tree.processor_range(tree.root());
  EXPECT_EQ(root_first, 0);
  EXPECT_EQ(root_last, 9);
}

TEST(MachineTree, LcaLevels) {
  const MachineTree tree = make_figure1_cluster();
  EXPECT_EQ(tree.lca_level(0, 0), 0);   // self
  EXPECT_EQ(tree.lca_level(0, 1), 1);   // within the SMP
  EXPECT_EQ(tree.lca_level(5, 8), 1);   // within the LAN
  EXPECT_EQ(tree.lca_level(0, 4), 2);   // SMP cpu <-> SGI crosses the campus net
  EXPECT_EQ(tree.lca_level(0, 5), 2);   // SMP cpu <-> LAN ws
}

TEST(MachineTree, AncestorAt) {
  const MachineTree tree = make_figure1_cluster();
  EXPECT_EQ(tree.ancestor_at(0, 1), (MachineId{1, 0}));
  EXPECT_EQ(tree.ancestor_at(0, 2), tree.root());
  EXPECT_EQ(tree.ancestor_at(4, 1), (MachineId{1, 1}));  // the SGI itself
  EXPECT_THROW((void)tree.ancestor_at(0, 3), std::invalid_argument);
}

TEST(MachineTree, ParentChildNavigation) {
  const MachineTree tree = make_figure1_cluster();
  const MachineId smp = tree.child(tree.root(), 0);
  EXPECT_EQ(*tree.parent(smp), tree.root());
  EXPECT_FALSE(tree.parent(tree.root()).has_value());
  EXPECT_EQ(tree.child(smp, 0).level, 0);
  EXPECT_THROW((void)tree.child(smp, 99), std::out_of_range);
}

TEST(MachineTree, DefaultSharesAreSpeedProportional) {
  const MachineTree tree = make_hbsp1_cluster(std::array{1.0, 2.0});
  // c_j ∝ 1/r_j: 2/3 and 1/3.
  EXPECT_NEAR(tree.c(tree.processor(0)), 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(tree.c(tree.processor(1)), 1.0 / 3.0, 1e-12);
  // The paper's efficiency condition r_j·c_j < 1 (§4.2).
  for (int pid = 0; pid < 2; ++pid) {
    const MachineId id = tree.processor(pid);
    EXPECT_LT(tree.r(id) * tree.c(id), 1.0 + 1e-12);
  }
}

TEST(MachineTree, ExplicitSharesAreRespected) {
  MachineSpec root;
  root.sync_L = 1e-3;
  auto a = leaf("a", 1.0);
  a.c = 0.75;
  auto b = leaf("b", 2.0);
  b.c = 0.25;
  root.children.push_back(a);
  root.children.push_back(b);
  const MachineTree tree = MachineTree::build(root, 1e-6);
  EXPECT_DOUBLE_EQ(tree.c(tree.processor(0)), 0.75);
  EXPECT_DOUBLE_EQ(tree.c(tree.processor(1)), 0.25);
}

TEST(MachineTree, GlobalCIsPathProduct) {
  const MachineTree tree = make_uniform_tree(2, 2, std::array{1.0, 1.0});
  // Symmetric: every leaf gets 1/4.
  for (int pid = 0; pid < tree.num_processors(); ++pid) {
    EXPECT_NEAR(tree.global_c(tree.processor(pid)), 0.25, 1e-12);
  }
  double total = 0.0;
  for (int pid = 0; pid < tree.num_processors(); ++pid) {
    total += tree.global_c(tree.processor(pid));
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

// --- validation ------------------------------------------------------------

TEST(MachineTreeValidation, RejectsRBelowOne) {
  EXPECT_THROW(MachineTree::build(leaf("x", 0.5), 1e-6), std::invalid_argument);
}

TEST(MachineTreeValidation, RejectsMissingFastestMachine) {
  MachineSpec root;
  root.children.push_back(leaf("a", 2.0));
  root.children.push_back(leaf("b", 3.0));
  EXPECT_THROW(MachineTree::build(root, 1e-6), std::invalid_argument);
}

TEST(MachineTreeValidation, RejectsNonPositiveG) {
  EXPECT_THROW(MachineTree::build(leaf("x", 1.0), 0.0), std::invalid_argument);
  EXPECT_THROW(MachineTree::build(leaf("x", 1.0), -1.0), std::invalid_argument);
}

TEST(MachineTreeValidation, RejectsNegativeL) {
  MachineSpec root;
  root.sync_L = -1.0;
  root.children.push_back(leaf("a", 1.0));
  EXPECT_THROW(MachineTree::build(root, 1e-6), std::invalid_argument);
}

TEST(MachineTreeValidation, RejectsBadShareSums) {
  MachineSpec root;
  auto a = leaf("a", 1.0);
  a.c = 0.6;
  auto b = leaf("b", 2.0);
  b.c = 0.6;
  root.children.push_back(a);
  root.children.push_back(b);
  EXPECT_THROW(MachineTree::build(root, 1e-6), std::invalid_argument);
}

TEST(MachineTreeValidation, RejectsMixedExplicitAndDefaultShares) {
  MachineSpec root;
  auto a = leaf("a", 1.0);
  a.c = 0.5;
  root.children.push_back(a);
  root.children.push_back(leaf("b", 2.0));
  EXPECT_THROW(MachineTree::build(root, 1e-6), std::invalid_argument);
}

TEST(MachineTreeValidation, RejectsOutOfRangeQueries) {
  const MachineTree tree = make_hbsp1_cluster(std::array{1.0, 2.0});
  EXPECT_THROW((void)tree.machines_at(5), std::out_of_range);
  EXPECT_THROW((void)tree.processor(9), std::out_of_range);
  EXPECT_THROW((void)tree.node(MachineId{0, 7}), std::out_of_range);
}

// --- property tests over random trees ---------------------------------------

class RandomTreeProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RandomTreeProperty, InvariantsHold) {
  RandomTreeOptions options;
  options.levels = 1 + static_cast<int>(GetParam() % 3);
  const MachineTree tree = make_random_tree(options, GetParam());

  // The fastest processor has r == 1 and is the root's coordinator target.
  double min_r = 1e18;
  for (int pid = 0; pid < tree.num_processors(); ++pid) {
    min_r = std::min(min_r, tree.processor_r(pid));
    EXPECT_GE(tree.processor_r(pid), 1.0);
  }
  EXPECT_NEAR(min_r, 1.0, 1e-9);
  EXPECT_NEAR(tree.processor_r(tree.coordinator_pid(tree.root())), 1.0, 1e-9);

  // Sibling shares sum to 1 everywhere; global shares sum to 1 over leaves.
  for (int level = 1; level < tree.num_levels(); ++level) {
    for (const MachineId id : tree.level_ids(level)) {
      if (tree.is_processor(id)) continue;
      double c_sum = 0.0;
      for (int j = 0; j < tree.num_children(id); ++j) {
        c_sum += tree.c(tree.child(id, j));
      }
      EXPECT_NEAR(c_sum, 1.0, 1e-9);
    }
  }
  double global = 0.0;
  for (int pid = 0; pid < tree.num_processors(); ++pid) {
    global += tree.global_c(tree.processor(pid));
  }
  EXPECT_NEAR(global, 1.0, 1e-9);

  // pid order is DFS order: every node's processor range is consistent with
  // its children's.
  for (int level = 1; level < tree.num_levels(); ++level) {
    for (const MachineId id : tree.level_ids(level)) {
      if (tree.is_processor(id)) continue;
      const auto [first, last] = tree.processor_range(id);
      int cursor = first;
      for (int j = 0; j < tree.num_children(id); ++j) {
        const auto [cf, cl] = tree.processor_range(tree.child(id, j));
        EXPECT_EQ(cf, cursor);
        cursor = cl;
      }
      EXPECT_EQ(cursor, last);
    }
  }

  // lca_level is symmetric and bounded by the height.
  for (int a = 0; a < tree.num_processors(); ++a) {
    for (int b = 0; b < tree.num_processors(); ++b) {
      const int lab = tree.lca_level(a, b);
      EXPECT_EQ(lab, tree.lca_level(b, a));
      EXPECT_LE(lab, tree.height());
      if (a == b) {
        EXPECT_EQ(lab, tree.processor(a).level);
      } else {
        EXPECT_GT(lab, 0);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomTreeProperty,
                         ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace hbsp
