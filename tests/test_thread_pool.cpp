// Tests for the work-stealing util::ThreadPool: exactly-once execution,
// stealing under skewed loads, exception propagation, reuse across loops,
// and the inline single-thread path.

#include "util/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

namespace hbsp::util {
namespace {

TEST(ThreadPool, ExecutesEveryIndexExactlyOnce) {
  for (const int threads : {1, 2, 3, 8}) {
    ThreadPool pool{threads};
    std::vector<std::atomic<int>> hits(101);
    for (auto& h : hits) h.store(0);
    pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
    for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(ThreadPool, ThreadsReportsExecutionWidth) {
  EXPECT_EQ(ThreadPool{1}.threads(), 1);
  EXPECT_EQ(ThreadPool{4}.threads(), 4);
  // < 1 selects the hardware width, which is at least 1.
  EXPECT_GE(ThreadPool{0}.threads(), 1);
  EXPECT_GE(ThreadPool{-3}.threads(), 1);
}

TEST(ThreadPool, ZeroCountIsANoop) {
  ThreadPool pool{4};
  bool ran = false;
  pool.parallel_for(0, [&](std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, MoreThreadsThanWork) {
  ThreadPool pool{8};
  std::vector<std::atomic<int>> hits(3);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ReusableAcrossManyLoops) {
  ThreadPool pool{4};
  std::atomic<long long> total{0};
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(20, [&](std::size_t i) {
      total += static_cast<long long>(i);
    });
  }
  EXPECT_EQ(total.load(), 50LL * (19 * 20 / 2));
}

TEST(ThreadPool, StealsFromSkewedShards) {
  // One pathological index takes far longer than the rest; with stealing the
  // loop still finishes well under the serial sum of all sleeps.
  ThreadPool pool{4};
  std::vector<std::atomic<int>> hits(64);
  for (auto& h : hits) h.store(0);
  pool.parallel_for(hits.size(), [&](std::size_t i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(i == 0 ? 30 : 1));
    ++hits[i];
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, RethrowsFirstBodyException) {
  for (const int threads : {1, 4}) {
    ThreadPool pool{threads};
    EXPECT_THROW(
        pool.parallel_for(10,
                          [](std::size_t i) {
                            if (i == 7) throw std::runtime_error{"cell 7"};
                          }),
        std::runtime_error);
    // The pool survives the exception and can run again.
    std::atomic<int> count{0};
    pool.parallel_for(5, [&](std::size_t) { ++count; });
    EXPECT_EQ(count.load(), 5);
  }
}

TEST(ThreadPool, DrainsEveryIndexEvenWhenOneThrows) {
  ThreadPool pool{4};
  std::atomic<int> executed{0};
  try {
    pool.parallel_for(40, [&](std::size_t i) {
      ++executed;
      if (i == 3) throw std::logic_error{"boom"};
    });
    FAIL() << "expected the body exception to propagate";
  } catch (const std::logic_error&) {
  }
  EXPECT_EQ(executed.load(), 40);
}

TEST(ThreadPool, HardwareThreadsIsPositive) {
  EXPECT_GE(ThreadPool::hardware_threads(), 1);
}

}  // namespace
}  // namespace hbsp::util
