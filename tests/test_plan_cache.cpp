// Differential suite for the plan cache: a memoized plan must be
// indistinguishable from a freshly built one — schedule value-identical
// (CommSchedule::operator==), predicted cost the exact CostModel price — on
// every collective and every machine shape, and the cache's bookkeeping
// (eviction order, params-hash collision rebuilds) must be deterministic.

#include "collectives/plan_cache.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/cost_model.hpp"
#include "core/topology.hpp"
#include "experiments/chaos.hpp"
#include "experiments/figures.hpp"
#include "experiments/scenario_cache.hpp"
#include "obs/metrics.hpp"

namespace hbsp::coll {
namespace {

/// Counter value from the global registry (tests diff before/after, since
/// the registry accumulates across the whole test binary).
std::uint64_t counter(const std::string& name) {
  return obs::Registry::global().snapshot().counter(name);
}

/// The machine basket the differential sweep covers: both presets the §5
/// experiments use, the k = 3 grid, and random trees of every depth the
/// model supports (k <= 3).
std::vector<std::pair<std::string, MachineTree>> machine_basket() {
  std::vector<std::pair<std::string, MachineTree>> basket;
  basket.emplace_back("testbed10", make_paper_testbed(10));
  basket.emplace_back("figure1_campus", make_figure1_cluster());
  basket.emplace_back("wide_area_grid", make_wide_area_grid());
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    RandomTreeOptions options;
    options.levels = static_cast<int>(seed);  // k = 1, 2, 3
    options.min_fanout = 2;
    options.max_fanout = 3;
    basket.emplace_back("random_k" + std::to_string(seed),
                        make_random_tree(options, seed * 97 + 11));
  }
  return basket;
}

/// Flat machines (every child of the root is a processor) are the only ones
/// the flat-only collectives accept.
bool is_flat(const MachineTree& tree) {
  for (int j = 0; j < tree.num_children(tree.root()); ++j) {
    if (!tree.is_processor(tree.child(tree.root(), j))) return false;
  }
  return true;
}

/// Every PlanRequest that is valid on `tree`: all collectives, both share
/// policies, both broadcast top phases.
std::vector<PlanRequest> request_basket(const MachineTree& tree) {
  const int root = tree.coordinator_pid(tree.root());
  std::vector<PlanRequest> requests;
  for (const Shares shares : {Shares::kBalanced, Shares::kEqual}) {
    for (const CollectiveKind kind :
         {CollectiveKind::kGather, CollectiveKind::kScatter,
          CollectiveKind::kReduce}) {
      requests.push_back(
          {.kind = kind, .n = 4096, .root_pid = root, .shares = shares});
    }
    for (const TopPhase top : {TopPhase::kTwoPhase, TopPhase::kOnePhase}) {
      requests.push_back({.kind = CollectiveKind::kBroadcast,
                          .n = 4096,
                          .root_pid = root,
                          .shares = shares,
                          .top_phase = top});
    }
    requests.push_back(
        {.kind = CollectiveKind::kAllgather, .n = 4096, .shares = shares});
    if (is_flat(tree)) {
      requests.push_back(
          {.kind = CollectiveKind::kScan, .n = 4096, .shares = shares});
      requests.push_back(
          {.kind = CollectiveKind::kAlltoall, .n = 4096, .shares = shares});
    }
  }
  return requests;
}

TEST(PlanCacheDifferential, CachedPlanEqualsFreshBuildEverywhere) {
  for (const auto& [name, tree] : machine_basket()) {
    PlanCache cache;
    for (const PlanRequest& request : request_basket(tree)) {
      const auto cached = cache.get(tree, request);
      ASSERT_NE(cached, nullptr);
      // Schedule value-identical to a cache-free build, cost the exact
      // CostModel price of that schedule.
      const CommSchedule fresh = build_plan(tree, request);
      EXPECT_EQ(cached->schedule, fresh) << name;
      EXPECT_EQ(cached->predicted_cost, CostModel{tree}.cost(fresh).total())
          << name;
      EXPECT_EQ(cached->request, request) << name;
      // The warm request returns the identical object, not a rebuild.
      EXPECT_EQ(cache.get(tree, request), cached) << name;
    }
  }
}

TEST(PlanCacheDifferential, DistinctRequestsGetDistinctKeys) {
  // No two requests in the basket may alias a key on the same machine, and
  // the same request must key differently on different machines.
  std::map<PlanKey, std::string> seen;
  for (const auto& [name, tree] : machine_basket()) {
    for (const PlanRequest& request : request_basket(tree)) {
      const PlanKey key = PlanCache::key_for(tree, request);
      const auto [it, inserted] = seen.emplace(key, name);
      EXPECT_TRUE(inserted) << name << " aliases " << it->second;
    }
  }
}

TEST(PlanCacheDifferential, ColdAndWarmSweepCsvsAreByteIdentical) {
  // The throughput layer's core soundness claim at the table level: a sweep
  // served entirely from warm caches renders the same CSV text as a cold one.
  exp::FigureConfig config;
  config.processors = {2, 3, 4};
  config.kbytes = {100, 300};

  PlanCache::global().clear();
  exp::ScenarioCache::global().clear();
  const std::string cold =
      exp::improvement_csv(exp::gather_root_experiment(config));
  const std::string warm =
      exp::improvement_csv(exp::gather_root_experiment(config));
  EXPECT_EQ(cold, warm);

  exp::ChaosConfig chaos;
  chaos.fault_rates = {0.0, 2.0};
  chaos.loss_probs = {0.0, 0.05};
  chaos.p = 4;
  chaos.kbytes = 200;
  PlanCache::global().clear();
  exp::ScenarioCache::global().clear();
  const std::string chaos_cold = exp::chaos_csv(exp::chaos_sweep(chaos));
  const std::string chaos_warm = exp::chaos_csv(exp::chaos_sweep(chaos));
  EXPECT_EQ(chaos_cold, chaos_warm);
}

TEST(PlanCacheEviction, LeastRecentlyUsedIsTheDeterministicVictim) {
  const MachineTree tree = make_paper_testbed(6);
  const int root = tree.coordinator_pid(tree.root());
  const auto request = [&](std::size_t n) {
    return PlanRequest{
        .kind = CollectiveKind::kGather, .n = n, .root_pid = root};
  };

  PlanCache cache{2};
  const std::uint64_t evictions_before = counter("plancache.evictions");
  const auto a = cache.get(tree, request(1000));
  const auto b = cache.get(tree, request(2000));
  EXPECT_EQ(cache.size(), 2u);

  // Touch A so B becomes the least recently used, then insert C: B must be
  // the victim — A and C survive (same pointers), B rebuilds.
  EXPECT_EQ(cache.get(tree, request(1000)), a);
  const auto c = cache.get(tree, request(3000));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(counter("plancache.evictions"), evictions_before + 1);
  EXPECT_EQ(cache.get(tree, request(1000)), a);
  EXPECT_EQ(cache.get(tree, request(3000)), c);
  const auto b2 = cache.get(tree, request(2000));
  EXPECT_NE(b2, b);
  EXPECT_EQ(b2->schedule, b->schedule);  // rebuild, same value
}

TEST(PlanCacheCollision, ForgedKeyCollisionRebuildsDeterministically) {
  // lookup() is the test seam for the one hash-degeneracy the key allows:
  // root_pid/top_phase live in params_hash, so two different requests could
  // in principle share a key. Forge that case and check the contract: the
  // stored plan is never served to the wrong request — the entry is rebuilt
  // for the incoming request, counted as a collision, and stabilises.
  const MachineTree tree = make_paper_testbed(6);
  const PlanRequest first{
      .kind = CollectiveKind::kGather, .n = 4096, .root_pid = 0};
  const PlanRequest second{
      .kind = CollectiveKind::kGather, .n = 4096, .root_pid = 1};
  const PlanKey key = PlanCache::key_for(tree, first);

  PlanCache cache;
  const std::uint64_t collisions_before = counter("plancache.collisions");
  const auto for_first = cache.lookup(key, tree, first);
  EXPECT_EQ(for_first->request, first);

  const auto for_second = cache.lookup(key, tree, second);
  EXPECT_EQ(for_second->request, second);
  EXPECT_EQ(for_second->schedule, build_plan(tree, second));
  EXPECT_EQ(counter("plancache.collisions"), collisions_before + 1);
  EXPECT_EQ(cache.size(), 1u);  // latest wins, never both

  // Same incoming request again: now a plain hit on the replaced entry.
  EXPECT_EQ(cache.lookup(key, tree, second), for_second);
  EXPECT_EQ(counter("plancache.collisions"), collisions_before + 1);

  // And flipping back collides again — the rebuild sequence is a pure
  // function of the request sequence.
  const auto first_again = cache.lookup(key, tree, first);
  EXPECT_EQ(first_again->request, first);
  EXPECT_EQ(first_again->schedule, for_first->schedule);
  EXPECT_EQ(counter("plancache.collisions"), collisions_before + 2);
}

TEST(PlanCacheLifetime, PlansSurviveClear) {
  const MachineTree tree = make_paper_testbed(4);
  PlanCache cache;
  const auto plan = cache.get(
      tree, {.kind = CollectiveKind::kGather, .n = 512, .root_pid = 0});
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  // The shared_ptr keeps the plan alive; a re-request rebuilds to the same
  // value.
  EXPECT_FALSE(plan->schedule.phases.empty());
  const auto rebuilt = cache.get(
      tree, {.kind = CollectiveKind::kGather, .n = 512, .root_pid = 0});
  EXPECT_NE(rebuilt, plan);
  EXPECT_EQ(rebuilt->schedule, plan->schedule);
}

TEST(PlanCacheErrors, PlannerRejectionLeavesNoPlaceholder) {
  // A flat-only collective on a hierarchy throws out of build_plan; the
  // cache must surface the error and stay clean so later requests work.
  const MachineTree tree = make_figure1_cluster();
  PlanCache cache;
  EXPECT_THROW((void)cache.get(tree, {.kind = CollectiveKind::kAlltoall,
                                      .n = 100}),
               std::invalid_argument);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_NE(cache.get(tree, {.kind = CollectiveKind::kGather,
                             .n = 100,
                             .root_pid = tree.coordinator_pid(tree.root())}),
            nullptr);
}

}  // namespace
}  // namespace hbsp::coll
