// Tests for the discrete-event cluster simulator: each cost mechanism is
// checked against hand-computed timelines, plus determinism and statistics.

#include "sim/cluster_sim.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <tuple>
#include <vector>

#include "collectives/planners.hpp"
#include "core/topology.hpp"
#include "sim/event_queue.hpp"

namespace hbsp::sim {
namespace {

constexpr double kG = 1e-6;
constexpr double kL = 2e-3;

/// A parameter set with every artefact switched off except what a test
/// enables, so timelines stay hand-computable.
SimParams bare_params() {
  SimParams p;
  p.recv_ratio = 0.5;
  p.o_send = 0.0;
  p.o_recv = 0.0;
  p.model_wire_contention = false;
  p.latency_base = 0.0;
  return p;
}

MachineTree cluster() {
  return make_hbsp1_cluster(std::array{1.0, 2.0, 4.0}, kG, kL);
}

CommSchedule single_step(const MachineTree& tree,
                         std::vector<Transfer> transfers,
                         std::vector<ComputeWork> compute = {}) {
  CommSchedule schedule;
  SuperstepPlan& plan = schedule.add_step("step", 1, tree.root());
  plan.transfers = std::move(transfers);
  plan.compute = std::move(compute);
  return schedule;
}

TEST(ClusterSim, SingleMessageTimeline) {
  const MachineTree tree = cluster();
  ClusterSim sim{tree, bare_params()};
  // P1 (r=2) sends 1000 items to P0 (r=1): send busy 2·1000·g = 2ms;
  // receive busy 0.5·1·1000·g = 0.5ms; barrier exit = 2.5ms + L.
  const SimResult result = sim.run(single_step(tree, {{1, 0, 1000}}));
  EXPECT_NEAR(result.makespan, 2e-3 + 0.5e-3 + kL, 1e-12);
}

TEST(ClusterSim, PerMessageOverheadsScaleWithR) {
  const MachineTree tree = cluster();
  SimParams params = bare_params();
  params.o_send = 1e-4;
  params.o_recv = 2e-4;
  ClusterSim sim{tree, params};
  // P2 (r=4) sends 0-cost... 1 item to P0 (r=1): send 4·(1e-4 + g);
  // recv 1·(2e-4 + 0.5g).
  const SimResult result = sim.run(single_step(tree, {{2, 0, 1}}));
  EXPECT_NEAR(result.makespan, 4 * (1e-4 + kG) + (2e-4 + 0.5 * kG) + kL, 1e-12);
}

TEST(ClusterSim, LatencyDelaysArrivalButNotSender) {
  const MachineTree tree = cluster();
  SimParams params = bare_params();
  params.latency_base = 5e-3;
  ClusterSim sim{tree, params};
  const SimResult result = sim.run(single_step(tree, {{1, 0, 1000}}));
  // Arrival at 2ms + 5ms; drain 0.5ms after that.
  EXPECT_NEAR(result.makespan, 2e-3 + 5e-3 + 0.5e-3 + kL, 1e-12);
}

TEST(ClusterSim, SendsSerialisePerSenderInIssueOrder) {
  const MachineTree tree = cluster();
  ClusterSim sim{tree, bare_params()};
  // P0 sends 1000 to P1 then 1000 to P2. Second send starts after the first:
  // send end times 1ms and 2ms. P2's drain: 0.5·4·1000g = 2ms → ends 4ms.
  const SimResult result =
      sim.run(single_step(tree, {{0, 1, 1000}, {0, 2, 1000}}));
  EXPECT_NEAR(result.makespan, 2e-3 + 2e-3 + kL, 1e-12);
}

TEST(ClusterSim, ReceiverDrainsArrivalsInOrder) {
  const MachineTree tree = cluster();
  ClusterSim sim{tree, bare_params()};
  // P1 (send ends 2ms) and P2 (send ends 4ms) both send 1000 to P0.
  // P0 drains: first at [2, 2.5], second at [4, 4.5].
  const SimResult result =
      sim.run(single_step(tree, {{1, 0, 1000}, {2, 0, 1000}}));
  EXPECT_NEAR(result.makespan, 4e-3 + 0.5e-3 + kL, 1e-12);
}

TEST(ClusterSim, ReceiverQueuesWhenArrivalsCluster) {
  const MachineTree tree =
      make_hbsp1_cluster(std::array{1.0, 1.0, 1.0, 1.0}, kG, kL);
  ClusterSim sim{tree, bare_params()};
  // Three senders finish at 1ms each; P0 drains 3 × 0.5ms sequentially.
  const SimResult result = sim.run(
      single_step(tree, {{1, 0, 1000}, {2, 0, 1000}, {3, 0, 1000}}));
  EXPECT_NEAR(result.makespan, 1e-3 + 3 * 0.5e-3 + kL, 1e-12);
}

TEST(ClusterSim, ComputeChargesAtComputeRate) {
  const MachineTree tree = cluster();
  ClusterSim sim{tree, bare_params()};
  // 1000 ops on P2 (compute_r = 4) at g seconds/op → 4ms; no comm.
  const SimResult result = sim.run(single_step(tree, {}, {{2, 1000.0}}));
  EXPECT_NEAR(result.makespan, 4e-3 + kL, 1e-12);
}

TEST(ClusterSim, SelfSendsAreFree) {
  const MachineTree tree = cluster();
  ClusterSim sim{tree, bare_params()};
  const SimResult result = sim.run(single_step(tree, {{2, 2, 1000000}}));
  EXPECT_NEAR(result.makespan, kL, 1e-12);
}

TEST(ClusterSim, WireContentionBoundsThePhase) {
  const MachineTree tree = cluster();
  SimParams params = bare_params();
  params.model_wire_contention = true;
  params.wire_factor_base = 10.0;  // exaggerate so the wire clearly binds
  ClusterSim sim{tree, params};
  // Endpoint work: send 2ms + drain 0.5ms = 2.5ms; wire: 1000·10·g = 10ms.
  const SimResult result = sim.run(single_step(tree, {{1, 0, 1000}}));
  EXPECT_NEAR(result.makespan, 10e-3 + kL, 1e-12);
}

TEST(ClusterSim, BarrierCostUsesScopeL) {
  const MachineTree tree = make_figure1_cluster(kG, 0.05);
  ClusterSim sim{tree, bare_params()};
  CommSchedule schedule;
  schedule.add_step("root barrier", 2, tree.root());
  const SimResult result = sim.run(schedule);
  EXPECT_NEAR(result.makespan, 0.05, 1e-12);
}

TEST(ClusterSim, ConcurrentScopesAdvanceIndependently) {
  const MachineTree tree = make_figure1_cluster(kG, 0.05);
  ClusterSim sim{tree, bare_params()};
  CommSchedule schedule;
  Phase& phase = schedule.add_phase();
  SuperstepPlan smp;
  smp.label = "smp";
  smp.level = 1;
  smp.sync_scope = tree.child(tree.root(), 0);  // L = kDefaultL1/20
  smp.transfers = {{1, 0, 1000}};
  SuperstepPlan lan;
  lan.label = "lan";
  lan.level = 1;
  lan.sync_scope = tree.child(tree.root(), 2);  // L = kDefaultL1
  lan.transfers = {{6, 5, 1000}};               // r=2.2 sender, r=1.6 receiver
  phase.plans.push_back(smp);
  phase.plans.push_back(lan);
  const SimResult result = sim.run(schedule);

  ASSERT_EQ(result.plan_timings.size(), 1u);
  ASSERT_EQ(result.plan_timings[0].size(), 2u);
  const double smp_exit = result.plan_timings[0][0].barrier_exit;
  const double lan_exit = result.plan_timings[0][1].barrier_exit;
  EXPECT_NEAR(smp_exit, 1e-3 + 0.5e-3 + kDefaultL1 / 20, 1e-12);
  EXPECT_NEAR(lan_exit, 2.2e-3 + 0.5 * 1.6e-3 + kDefaultL1, 1e-12);
  // The SGI (pid 4) took part in neither plan and sits at time 0.
  EXPECT_DOUBLE_EQ(sim.now(4), 0.0);
  EXPECT_DOUBLE_EQ(result.makespan, std::max(smp_exit, lan_exit));
}

TEST(ClusterSim, PhasesChainClockForward) {
  const MachineTree tree = cluster();
  ClusterSim sim{tree, bare_params()};
  CommSchedule schedule;
  schedule.add_step("first", 1, tree.root()).transfers = {{1, 0, 1000}};
  schedule.add_step("second", 1, tree.root()).transfers = {{1, 0, 1000}};
  const SimResult result = sim.run(schedule);
  ASSERT_EQ(result.phase_completion.size(), 2u);
  EXPECT_NEAR(result.phase_completion[0], 2.5e-3 + kL, 1e-12);
  EXPECT_NEAR(result.phase_completion[1], 2 * (2.5e-3 + kL), 1e-12);
}

TEST(ClusterSim, DeterministicAcrossRuns) {
  const MachineTree tree = make_paper_testbed(10);
  SimParams params;  // full default mechanics
  ClusterSim a{tree, params};
  ClusterSim b{tree, params};
  CommSchedule schedule;
  SuperstepPlan& plan = schedule.add_step("mix", 1, tree.root());
  for (int pid = 1; pid < 10; ++pid) {
    plan.transfers.push_back({pid, 0, static_cast<std::size_t>(100 * pid)});
  }
  EXPECT_DOUBLE_EQ(a.run(schedule).makespan, b.run(schedule).makespan);
}

TEST(ClusterSim, ResetRestoresTimeZero) {
  const MachineTree tree = cluster();
  ClusterSim sim{tree, bare_params()};
  (void)sim.run(single_step(tree, {{1, 0, 1000}}));
  EXPECT_GT(sim.makespan(), 0.0);
  sim.reset();
  EXPECT_DOUBLE_EQ(sim.makespan(), 0.0);
  for (int pid = 0; pid < 3; ++pid) EXPECT_DOUBLE_EQ(sim.now(pid), 0.0);
}

TEST(ClusterSim, StatsAccumulate) {
  const MachineTree tree = cluster();
  ClusterSim sim{tree, bare_params()};
  (void)sim.run(single_step(tree, {{1, 0, 1000}, {2, 0, 500}}));
  const Trace& trace = sim.trace();
  EXPECT_EQ(trace.pid_stats(1).messages_sent, 1u);
  EXPECT_EQ(trace.pid_stats(1).items_sent, 1000u);
  EXPECT_EQ(trace.pid_stats(0).messages_received, 2u);
  EXPECT_EQ(trace.pid_stats(0).items_received, 1500u);
  EXPECT_GT(trace.pid_stats(0).recv_seconds, 0.0);
  EXPECT_GT(trace.pid_stats(2).send_seconds, 0.0);
  EXPECT_DOUBLE_EQ(trace.pid_stats(0).send_seconds, 0.0);
}

TEST(ClusterSim, EventTraceRecordsLifecycle) {
  const MachineTree tree = cluster();
  ClusterSim sim{tree, bare_params(), /*record_events=*/true};
  (void)sim.run(single_step(tree, {{1, 0, 1000}}));
  const auto& events = sim.trace().events();
  ASSERT_FALSE(events.empty());
  int sends = 0, recvs = 0, barriers = 0;
  for (const auto& e : events) {
    if (e.kind == EventKind::kSendEnd) ++sends;
    if (e.kind == EventKind::kRecvEnd) ++recvs;
    if (e.kind == EventKind::kBarrierExit) ++barriers;
  }
  EXPECT_EQ(sends, 1);
  EXPECT_EQ(recvs, 1);
  EXPECT_EQ(barriers, 3);  // one per processor in scope
}

TEST(ClusterSim, NetworkStatsCountCrossings) {
  const MachineTree tree = make_figure1_cluster();
  ClusterSim sim{tree, bare_params()};
  CommSchedule schedule;
  SuperstepPlan& plan = schedule.add_step("cross", 2, tree.root());
  plan.transfers = {{0, 8, 100}};  // SMP cpu -> LAN ws: smp, campus, lan nets
  (void)sim.run(schedule);
  EXPECT_EQ(sim.network().stats(tree.child(tree.root(), 0)).items_crossed, 100u);
  EXPECT_EQ(sim.network().stats(tree.root()).items_crossed, 100u);
  EXPECT_EQ(sim.network().stats(tree.child(tree.root(), 2)).items_crossed, 100u);
  EXPECT_EQ(sim.network().stats(tree.child(tree.root(), 1)).items_crossed, 0u);
}

TEST(ClusterSim, HigherLevelLatencyScales) {
  const MachineTree tree = make_figure1_cluster();
  SimParams params = bare_params();
  params.latency_base = 1e-3;
  params.latency_level_scale = 10.0;
  Network network{tree, params};
  EXPECT_DOUBLE_EQ(network.latency(1), 1e-3);
  EXPECT_DOUBLE_EQ(network.latency(2), 1e-2);
  EXPECT_DOUBLE_EQ(network.latency(0), 0.0);
}

TEST(EventQueue, PopsInKeyOrderForEveryPushOrder) {
  // The hot-path heap replaced an ordered map; the determinism contract is
  // that the pop sequence is the sorted key order no matter how pushes were
  // interleaved. Exhaust every permutation of a key set with duplicates on
  // the primary component (distinct seq keeps the order strict, as Arrival
  // does).
  struct Item {
    int key;
    int seq;
    bool operator<(const Item& other) const {
      return std::tie(key, seq) < std::tie(other.key, other.seq);
    }
    bool operator==(const Item& other) const {
      return key == other.key && seq == other.seq;
    }
  };
  const std::vector<Item> items = {{3, 0}, {1, 1}, {2, 2},
                                   {1, 0}, {3, 1}, {0, 0}};
  std::vector<Item> expected = items;
  std::sort(expected.begin(), expected.end());

  std::vector<std::size_t> order(items.size());
  std::iota(order.begin(), order.end(), 0u);
  EventQueue<Item> queue;
  do {
    queue.clear();
    for (const std::size_t i : order) queue.push(items[i]);
    ASSERT_EQ(queue.size(), items.size());
    std::vector<Item> popped;
    while (!queue.empty()) popped.push_back(queue.pop());
    ASSERT_EQ(popped, expected);
  } while (std::next_permutation(order.begin(), order.end()));
  EXPECT_TRUE(queue.empty());
}

TEST(ClusterSim, ReusedPooledStorageReplaysIdenticalEventTrace) {
  // Stress the pooled hot path: a simulator whose internal storage (arrival
  // heap, touched-network list, trace buffers) has been warmed by prior runs
  // of *different* schedules must replay a recorded trace exactly — same
  // EventKind sequence, bit-identical virtual times.
  const MachineTree tree = make_figure1_cluster();
  const SimParams params;  // full default mechanics
  const CommSchedule gather = coll::plan_gather(tree, 50000, {});
  const CommSchedule broadcast = coll::plan_broadcast(tree, 80000, {});

  ClusterSim fresh{tree, params, /*record_events=*/true};
  const SimResult want = fresh.run(gather);
  const std::vector<TraceEvent> recorded = fresh.trace().events();
  ASSERT_FALSE(recorded.empty());

  ClusterSim warm{tree, params, /*record_events=*/true};
  for (int round = 0; round < 5; ++round) {
    (void)warm.run(broadcast);  // different shape: pools stretch and shrink
    (void)warm.run(gather);
  }
  const SimResult got = warm.run(gather);

  EXPECT_EQ(got.makespan, want.makespan);
  const std::vector<TraceEvent>& replayed = warm.trace().events();
  ASSERT_EQ(replayed.size(), recorded.size());
  for (std::size_t i = 0; i < recorded.size(); ++i) {
    EXPECT_EQ(replayed[i].kind, recorded[i].kind) << "event " << i;
    EXPECT_EQ(replayed[i].time, recorded[i].time) << "event " << i;
    EXPECT_EQ(replayed[i].pid, recorded[i].pid) << "event " << i;
    EXPECT_EQ(replayed[i].peer, recorded[i].peer) << "event " << i;
    EXPECT_EQ(replayed[i].items, recorded[i].items) << "event " << i;
  }
}

TEST(SimParams, ValidateRejectsBadValues) {
  SimParams p;
  p.recv_ratio = -0.1;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SimParams{};
  p.o_send = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SimParams{};
  p.wire_level_scale = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SimParams{};
  p.latency_base = -1.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  EXPECT_NO_THROW(SimParams{}.validate());
}

TEST(SimParams, ValidateRejectsBadFaultTransportValues) {
  SimParams p;
  p.retry_timeout = 0.0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SimParams{};
  p.retry_backoff = 0.5;  // must not shrink: timeouts would vanish
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SimParams{};
  p.max_send_attempts = 0;
  EXPECT_THROW(p.validate(), std::invalid_argument);
  p = SimParams{};
  p.failure_detector_multiple = 0.9;  // would fire before the barrier itself
  EXPECT_THROW(p.validate(), std::invalid_argument);
}

}  // namespace
}  // namespace hbsp::sim
