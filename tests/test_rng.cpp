// Unit tests for the deterministic RNG.

#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

namespace hbsp::util {
namespace {

TEST(Rng, SameSeedSameSequence) {
  Rng a{42};
  Rng b{42};
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a{1};
  Rng b{2};
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(Rng, KnownFirstValueIsStableAcrossRuns) {
  // Pins the output sequence: a change here silently breaks every recorded
  // experiment, so it must be deliberate.
  Rng rng{0};
  const auto first = rng();
  Rng again{0};
  EXPECT_EQ(first, again());
}

TEST(Rng, Uniform01InRange) {
  Rng rng{7};
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformU64RespectsBounds) {
  Rng rng{3};
  for (int i = 0; i < 10000; ++i) {
    const auto v = rng.uniform_u64(10, 20);
    EXPECT_GE(v, 10u);
    EXPECT_LE(v, 20u);
  }
}

TEST(Rng, UniformU64HitsAllValuesOfSmallRange) {
  Rng rng{11};
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_u64(0, 4));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformU64DegenerateRange) {
  Rng rng{5};
  EXPECT_EQ(rng.uniform_u64(9, 9), 9u);
}

TEST(Rng, UniformI64HandlesNegativeRanges) {
  Rng rng{13};
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_i64(-50, -40);
    EXPECT_GE(v, -50);
    EXPECT_LE(v, -40);
  }
}

TEST(Rng, UniformDoubleRange) {
  Rng rng{17};
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(Rng, NormalHasRoughlyZeroMeanUnitVariance) {
  Rng rng{19};
  double sum = 0.0;
  double sq = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) {
    const double v = rng.normal();
    sum += v;
    sq += v * v;
  }
  const double mean = sum / kSamples;
  const double var = sq / kSamples - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, NormalScalesMeanAndStddev) {
  Rng rng{23};
  double sum = 0.0;
  constexpr int kSamples = 20000;
  for (int i = 0; i < kSamples; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / kSamples, 10.0, 0.1);
}

TEST(Rng, ShuffleIsAPermutation) {
  Rng rng{29};
  std::vector<int> values;
  for (int i = 0; i < 100; ++i) values.push_back(i);
  auto shuffled = values;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::is_sorted(shuffled.begin(), shuffled.end()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, values);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent{31};
  Rng child = parent.split();
  // The child stream must differ from the parent's continuation.
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent() == child()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(UniformIntWorkload, SizeAndDeterminism) {
  const auto a = uniform_int_workload(1000, 99);
  const auto b = uniform_int_workload(1000, 99);
  EXPECT_EQ(a.size(), 1000u);
  EXPECT_EQ(a, b);
  const auto c = uniform_int_workload(1000, 100);
  EXPECT_NE(a, c);
}

TEST(UniformIntWorkload, Empty) {
  EXPECT_TRUE(uniform_int_workload(0, 1).empty());
}

}  // namespace
}  // namespace hbsp::util
