// Tests of the §4 closed forms against the paper's formulas, hand-computed
// on small machines.

#include "core/analysis.hpp"

#include <gtest/gtest.h>

#include "core/topology.hpp"
#include "core/workload.hpp"

namespace hbsp::analysis {
namespace {

constexpr double kG = 1e-6;
constexpr double kL = 2e-3;

MachineTree cluster3() {
  return make_hbsp1_cluster(std::array{1.0, 2.0, 4.0}, kG, kL);
}

// --- §4.2 HBSP^1 gather ------------------------------------------------------

TEST(Hbsp1Gather, BalancedCostIsGnPlusL) {
  // "Thus, the HBSP^1 gather cost is gn + L_{1,0}": with c_j ∝ 1/r_j every
  // sender's r_j·x_j < n and the coordinator's receive n − x_f dominates...
  // scaled by r_f = 1 it is at most n, so cost <= gn + L with equality as
  // n → ∞ of the root share fraction. The exact form is
  // g·max{max_j r_j x_j, n − x_root} + L; verify against that.
  const MachineTree tree = cluster3();
  const std::size_t n = 7000;
  const auto shares = balanced_partition(std::array{1.0, 2.0, 4.0}, n);
  const AlgoCost cost = hbsp1_gather(tree, tree.root(), 0, n, Shares::kBalanced);
  const double expected_h =
      std::max({2.0 * static_cast<double>(shares[1]),
                4.0 * static_cast<double>(shares[2]),
                1.0 * static_cast<double>(n - shares[0])});
  ASSERT_EQ(cost.steps.size(), 1u);
  EXPECT_DOUBLE_EQ(cost.total(), kG * expected_h + kL);
  // And the paper's simplification bounds it: cost <= gn + L.
  EXPECT_LE(cost.total(), kG * static_cast<double>(n) + kL + 1e-15);
}

TEST(Hbsp1Gather, EqualSharesSlowSenderDominates) {
  // With equal n/m shares the slowest sender's r_s·(n/m) can exceed the
  // root's receive volume: r_s·c_s = 4/3 > 1 here (the paper's "problem size
  // too large" case).
  const MachineTree tree = cluster3();
  const std::size_t n = 9000;
  const AlgoCost cost = hbsp1_gather(tree, tree.root(), 0, n, Shares::kEqual);
  EXPECT_DOUBLE_EQ(cost.total(), kG * (4.0 * 3000.0) + kL);
}

TEST(Hbsp1Gather, SlowRootPaysItsReceiveRate) {
  const MachineTree tree = cluster3();
  const std::size_t n = 9000;
  // Root = P2 (r=4): receives 6000 items at rate 4.
  const AlgoCost cost = hbsp1_gather(tree, tree.root(), 2, n, Shares::kEqual);
  EXPECT_DOUBLE_EQ(cost.total(), kG * (4.0 * 6000.0) + kL);
}

// --- §4.3 HBSP^2 gather --------------------------------------------------------

TEST(Hbsp2Gather, DecomposesIntoSuper1AndSuper2) {
  const MachineTree tree = make_figure1_cluster(kG, 10 * kL);
  const std::size_t n = 90000;
  const AlgoCost cost = hbsp2_gather(tree, n, Shares::kBalanced);
  ASSERT_EQ(cost.steps.size(), 2u);

  // super^1 is the max over the SMP and LAN internal gathers (the SGI is
  // degenerate and contributes nothing).
  const auto top = cluster_members(tree, tree.root(), n, Shares::kBalanced);
  const AlgoCost smp = hbsp1_gather(
      tree, top.children[0], tree.coordinator_pid(top.children[0]),
      top.shares[0], Shares::kBalanced);
  const AlgoCost lan = hbsp1_gather(
      tree, top.children[2], tree.coordinator_pid(top.children[2]),
      top.shares[2], Shares::kBalanced);
  EXPECT_DOUBLE_EQ(cost.steps[0].cost, std::max(smp.total(), lan.total()));

  // super^2: g·max{r_{1,j}·x_{1,j}, r_{2,0}·(n − x_root-cluster)} + L_{2,0}.
  const double h2 = std::max(
      {tree.processor_r(top.pids[1]) * static_cast<double>(top.shares[1]),
       tree.processor_r(top.pids[2]) * static_cast<double>(top.shares[2]),
       1.0 * static_cast<double>(n - top.shares[0])});
  EXPECT_DOUBLE_EQ(cost.steps[1].cost, kG * h2 + 10 * kL);
}

TEST(Hbsp2Gather, RejectsSingleProcessor) {
  MachineSpec solo;
  solo.r = 1.0;
  const MachineTree tree = MachineTree::build(solo, kG);
  EXPECT_THROW((void)hbsp2_gather(tree, 10, Shares::kEqual),
               std::invalid_argument);
}

// --- §4.4 HBSP^1 broadcast -----------------------------------------------------

TEST(Hbsp1Broadcast, TwoPhaseMatchesPaperFormula) {
  // gn(1 + r_{0,s}) + 2L with equal pieces, fastest root, when the root's
  // fan-out (n − n/m) and the slow receiver (r_s·(n − n/m)) dominate their
  // phases. Exact form: phase1 g·max{r_f·(n−x_f), max_j r_j x_j} + L;
  // phase2 g·max_j r_j·max{x_j(m−1), n−x_j} + L.
  const MachineTree tree = cluster3();
  const std::size_t n = 9000;
  const AlgoCost cost =
      hbsp1_broadcast_two_phase(tree, tree.root(), 0, n, Shares::kEqual);
  ASSERT_EQ(cost.steps.size(), 2u);
  const double phase1 = kG * std::max({1.0 * 6000.0, 2.0 * 3000.0, 4.0 * 3000.0}) + kL;
  const double phase2 = kG * std::max({1.0 * 6000.0, 2.0 * 6000.0, 4.0 * 6000.0}) + kL;
  EXPECT_DOUBLE_EQ(cost.steps[0].cost, phase1);
  EXPECT_DOUBLE_EQ(cost.steps[1].cost, phase2);
  // Against the paper's simplified form gn(1 + r_s) + 2L: here phase 1 is
  // r_s·n/m-bound (12000 > 6000), so the exact cost exceeds the simplified
  // form by exactly that difference; both agree on phase 2 = g·r_s·(n−n/m).
}

TEST(Hbsp1Broadcast, OnePhaseMatchesPaperFormula) {
  // g·max{r_root·n(m−1), r_j·n} + L — "gnm + L" in the paper's shorthand.
  const MachineTree tree = cluster3();
  const std::size_t n = 9000;
  const AlgoCost cost = hbsp1_broadcast_one_phase(tree, tree.root(), 0, n);
  ASSERT_EQ(cost.steps.size(), 1u);
  EXPECT_DOUBLE_EQ(cost.total(),
                   kG * std::max(1.0 * 9000.0 * 2, 4.0 * 9000.0) + kL);
}

TEST(Hbsp1Broadcast, TwoPhaseBeatsOnePhaseForLargeN) {
  // Two-phase wins when the slow receiver does not already dominate the
  // one-phase step, i.e. r_s < m − 1 (§4.4's "reasonable values of r_{0,s}").
  // The stand-in testbed at p = 8 has r_s = 2.5 < 7.
  const MachineTree tree = make_paper_testbed(8);
  const int root = tree.coordinator_pid(tree.root());
  const std::size_t n = 100000;
  EXPECT_LT(
      hbsp1_broadcast_two_phase(tree, tree.root(), root, n, Shares::kEqual)
          .total(),
      hbsp1_broadcast_one_phase(tree, tree.root(), root, n).total());
}

TEST(Hbsp1Broadcast, OnePhaseMatchesTwoPhaseCommWhenSlowReceiverDominates) {
  // With r_s >= m − 1 the slow receiver pays r_s·n in either algorithm, so
  // one-phase (one fewer barrier) is never worse — the paper's "it may be
  // more appropriate not to include that machine" regime.
  const MachineTree tree = cluster3();  // r_s = 4 >= m − 1 = 2
  for (const std::size_t n : {100u, 10000u, 1000000u}) {
    EXPECT_LE(hbsp1_broadcast_one_phase(tree, tree.root(), 0, n).total(),
              hbsp1_broadcast_two_phase(tree, tree.root(), 0, n, Shares::kEqual)
                  .total());
  }
}

TEST(Hbsp1Broadcast, OnePhaseWinsForTinyN) {
  // The extra barrier makes two-phase lose when n is small.
  const MachineTree tree = cluster3();
  const std::size_t n = 10;
  EXPECT_GT(hbsp1_broadcast_two_phase(tree, tree.root(), 0, n, Shares::kEqual)
                .total(),
            hbsp1_broadcast_one_phase(tree, tree.root(), 0, n).total());
}

TEST(BroadcastCrossover, FindsTheSwitchPoint) {
  const MachineTree tree = make_paper_testbed(8);
  const int root = tree.coordinator_pid(tree.root());
  const auto crossover = broadcast_crossover_n(tree, tree.root(), root, 1000000);
  ASSERT_TRUE(crossover.has_value());
  EXPECT_GT(*crossover, 1u);
  // The predicate flips exactly at the returned n.
  const auto at = [&](std::size_t n) {
    return hbsp1_broadcast_two_phase(tree, tree.root(), root, n, Shares::kEqual)
               .total() <=
           hbsp1_broadcast_one_phase(tree, tree.root(), root, n).total();
  };
  EXPECT_TRUE(at(*crossover));
  EXPECT_FALSE(at(*crossover - 1));
}

TEST(BroadcastCrossover, NulloptWhenOnePhaseAlwaysWins) {
  // r_s >= m − 1: one-phase wins at every n (see above), and the tiny n_max
  // keeps the barrier penalty decisive anyway.
  const MachineTree tree = cluster3();
  EXPECT_FALSE(broadcast_crossover_n(tree, tree.root(), 0, 2).has_value());
}

// --- §4.4 HBSP^2 broadcast ------------------------------------------------------

TEST(Hbsp2Broadcast, OnePhaseTopStructure) {
  const MachineTree tree = make_figure1_cluster(kG, 10 * kL);
  const std::size_t n = 60000;
  const AlgoCost cost = hbsp2_broadcast(tree, n, TopPhase::kOnePhase);
  ASSERT_EQ(cost.steps.size(), 3u);  // super^2 + two super^1 steps
  // super^2 = one-phase among the three level-1 coordinators.
  const AlgoCost top = hbsp1_broadcast_one_phase(
      tree, tree.root(), tree.coordinator_pid(tree.root()), n);
  EXPECT_DOUBLE_EQ(cost.steps[0].cost, top.total());
}

TEST(Hbsp2Broadcast, TwoPhaseTopStructure) {
  const MachineTree tree = make_figure1_cluster(kG, 10 * kL);
  const std::size_t n = 60000;
  const AlgoCost cost = hbsp2_broadcast(tree, n, TopPhase::kTwoPhase);
  ASSERT_EQ(cost.steps.size(), 4u);  // super^2 scatter+exchange, super^1 x2
  const AlgoCost top = hbsp1_broadcast_two_phase(
      tree, tree.root(), tree.coordinator_pid(tree.root()), n, Shares::kEqual);
  EXPECT_DOUBLE_EQ(cost.steps[0].cost + cost.steps[1].cost, top.total());
}

TEST(Hbsp2Broadcast, TwoPhaseTopWinsForLargeN) {
  const MachineTree tree = make_figure1_cluster(kG, 10 * kL);
  const std::size_t big = 1000000;
  EXPECT_LE(hbsp2_broadcast(tree, big, TopPhase::kTwoPhase).total(),
            hbsp2_broadcast(tree, big, TopPhase::kOnePhase).total());
  const auto crossover = hbsp2_broadcast_crossover_n(tree, big);
  ASSERT_TRUE(crossover.has_value());
}

// --- member helpers -------------------------------------------------------------

TEST(MemberShares, EqualSplitsPerProcessor) {
  const MachineTree tree = make_figure1_cluster();
  // 9 processors: SMP has 4, SGI 1, LAN 4 → shares 4:1:4 of 90.
  const auto shares = member_shares(tree, tree.root(), 90, Shares::kEqual);
  EXPECT_EQ(shares, (std::vector<std::size_t>{40, 10, 40}));
}

TEST(MemberShares, BalancedUsesC) {
  const MachineTree tree = cluster3();
  EXPECT_EQ(member_shares(tree, tree.root(), 700, Shares::kBalanced),
            balanced_partition(std::array{1.0, 2.0, 4.0}, 700));
}

TEST(MemberOfPid, FindsOwningChild) {
  const MachineTree tree = make_figure1_cluster();
  EXPECT_EQ(member_of_pid(tree, tree.root(), 0), 0);
  EXPECT_EQ(member_of_pid(tree, tree.root(), 4), 1);
  EXPECT_EQ(member_of_pid(tree, tree.root(), 8), 2);
  EXPECT_THROW((void)member_of_pid(tree, tree.child(tree.root(), 0), 7),
               std::invalid_argument);
}

TEST(ClusterMembers, RejectsProcessors) {
  const MachineTree tree = cluster3();
  EXPECT_THROW((void)cluster_members(tree, tree.processor(0), 10, Shares::kEqual),
               std::invalid_argument);
}

}  // namespace
}  // namespace hbsp::analysis
