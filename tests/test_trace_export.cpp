// Tests for the Chrome-tracing export of simulator traces.

#include "sim/trace_export.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "collectives/planners.hpp"
#include "core/topology.hpp"
#include "faults/injector.hpp"
#include "sim/cluster_sim.hpp"

namespace hbsp::sim {
namespace {

Trace recorded_trace() {
  const MachineTree tree = make_paper_testbed(3);
  ClusterSim sim{tree, SimParams{}, /*record_events=*/true};
  (void)sim.run(coll::plan_gather(tree, 1000, {}));
  return sim.trace();
}

std::size_t count_occurrences(const std::string& text, const std::string& what) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(what); pos != std::string::npos;
       pos = text.find(what, pos + what.size())) {
    ++count;
  }
  return count;
}

TEST(TraceExport, EmitsBalancedBeginEndPairs) {
  const Trace trace = recorded_trace();
  std::ostringstream out;
  export_chrome_trace(trace, out);
  const std::string json = out.str();
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
  EXPECT_GT(count_occurrences(json, "\"ph\":\"B\""), 0u);
}

TEST(TraceExport, NamesEveryProcessorTrack) {
  const Trace trace = recorded_trace();
  std::ostringstream out;
  export_chrome_trace(trace, out);
  const std::string json = out.str();
  for (std::size_t pid = 0; pid < trace.num_pids(); ++pid) {
    EXPECT_NE(json.find("\"name\":\"P" + std::to_string(pid) + "\""),
              std::string::npos);
  }
}

TEST(TraceExport, ContainsSendRecvAndBarrierEvents) {
  const Trace trace = recorded_trace();
  std::ostringstream out;
  export_chrome_trace(trace, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("\"name\":\"send P0\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"recv"), std::string::npos);
  EXPECT_NE(json.find("barrier-exit"), std::string::npos);
  // Superstep labels travel into args.
  EXPECT_NE(json.find("gather L1"), std::string::npos);
}

TEST(TraceExport, JsonShapeIsWellFormedEnough) {
  const Trace trace = recorded_trace();
  std::ostringstream out;
  export_chrome_trace(trace, out);
  const std::string json = out.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_EQ(count_occurrences(json, "{"), count_occurrences(json, "}"));
  EXPECT_EQ(count_occurrences(json, "["), count_occurrences(json, "]"));
}

TEST(TraceExport, WritesFile) {
  const Trace trace = recorded_trace();
  const std::string path = testing::TempDir() + "hbspk_trace_test.json";
  export_chrome_trace(trace, path);
  std::ifstream in{path};
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("traceEvents"), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceExport, UnwritablePathThrows) {
  const Trace trace = recorded_trace();
  EXPECT_THROW(export_chrome_trace(trace, "/nonexistent/dir/trace.json"),
               std::runtime_error);
}

TEST(TraceExport, FaultEventKindsHaveNames) {
  EXPECT_STREQ(to_string(EventKind::kSlowdownStart), "slowdown-start");
  EXPECT_STREQ(to_string(EventKind::kSlowdownEnd), "slowdown-end");
  EXPECT_STREQ(to_string(EventKind::kMachineDrop), "machine-drop");
  EXPECT_STREQ(to_string(EventKind::kMessageLost), "message-lost");
  EXPECT_STREQ(to_string(EventKind::kRetry), "retry");
}

TEST(TraceExport, FaultEventsRoundTripIntoChromeTrace) {
  const MachineTree tree = make_paper_testbed(3);
  faults::FaultPlan fault_plan;
  fault_plan.slowdowns.push_back({1, 0.0, 1.0, 2.0});
  fault_plan.drops.push_back({2, 1e-4});
  fault_plan.message_loss_probability = 1.0;  // every non-final attempt lost
  const faults::FaultInjector injector{fault_plan};
  ClusterSim sim{tree, SimParams{}, /*record_events=*/true};
  sim.set_fault_injector(&injector);
  (void)sim.run(coll::plan_gather(tree, 1000, {}));

  std::ostringstream out;
  export_chrome_trace(sim.trace(), out);
  const std::string json = out.str();
  // The slowdown window exports as a duration slice, the rest as instants.
  EXPECT_NE(json.find("\"name\":\"slowdown\""), std::string::npos);
  EXPECT_NE(json.find("machine-drop"), std::string::npos);
  EXPECT_NE(json.find("message-lost"), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"retry\""), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "\"ph\":\"B\""),
            count_occurrences(json, "\"ph\":\"E\""));
}

TEST(TraceExport, EmptyTraceExportsEmptyEventArrayPlusMetadata) {
  const Trace trace{4, true};
  std::ostringstream out;
  export_chrome_trace(trace, out);
  const std::string json = out.str();
  EXPECT_NE(json.find("traceEvents"), std::string::npos);
  EXPECT_EQ(count_occurrences(json, "thread_name"), 4u);
}

}  // namespace
}  // namespace hbsp::sim
