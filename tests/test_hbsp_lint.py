#!/usr/bin/env python3
"""ctest tier1 suite for tools/hbsp_lint (stdlib unittest, no gtest).

Covers, against the fixture tree in tests/lint_fixtures/:
  * every determinism rule flags its known-bad fixture at the right line
  * layering back-edges and undeclared edges are both flagged
  * clean fixture files produce no findings
  * the allow() escape hatch suppresses + is counted; missing justification
    and unused pragmas are themselves findings
  * exit codes (0 clean, 1 findings, 2 bad config/usage) and the JSON report
  * the real repository lints clean with its committed layers.toml
"""

import json
import os
import pathlib
import subprocess
import sys
import tempfile
import unittest

REPO = pathlib.Path(
    os.environ.get("HBSPK_SOURCE_DIR", pathlib.Path(__file__).parents[1])
).resolve()
LINTER = REPO / "tools" / "hbsp_lint" / "hbsp_lint.py"
FIXTURES = REPO / "tests" / "lint_fixtures"


def run_lint(*extra, root=FIXTURES, config=FIXTURES / "layers.toml"):
    cmd = [sys.executable, str(LINTER), "--root", str(root)]
    if config is not None:
        cmd += ["--config", str(config)]
    cmd += list(extra)
    return subprocess.run(cmd, capture_output=True, text=True, check=False)


def report_from(*extra, **kwargs):
    with tempfile.TemporaryDirectory() as tmp:
        out = pathlib.Path(tmp) / "report.json"
        proc = run_lint("--json", str(out), "--quiet", *extra, **kwargs)
        return proc, json.loads(out.read_text())


class FixtureFindings(unittest.TestCase):
    @classmethod
    def setUpClass(cls):
        cls.proc, cls.report = report_from()
        cls.findings = cls.report["findings"]

    def by_rule(self, rule):
        return [f for f in self.findings if f["rule"] == rule]

    def expect(self, rule, filename, line):
        hits = [f for f in self.by_rule(rule)
                if f["file"].endswith(filename) and f["line"] == line]
        self.assertEqual(
            len(hits), 1,
            f"expected one {rule} finding at {filename}:{line}, got "
            f"{self.by_rule(rule)}")

    def test_exit_code_is_one_on_findings(self):
        self.assertEqual(self.proc.returncode, 1)

    def test_layering_back_edge(self):
        self.expect("layering", "src/util/back_edge.cpp", 2)
        back = [f for f in self.by_rule("layering")
                if "back_edge.cpp" in f["file"]]
        self.assertIn("back-edge", back[0]["message"])

    def test_layering_undeclared_edge(self):
        self.expect("layering", "src/sim/undeclared_edge.cpp", 4)
        edge = [f for f in self.by_rule("layering")
                if "undeclared_edge.cpp" in f["file"]]
        self.assertIn("undeclared edge", edge[0]["message"])

    def test_random_device(self):
        self.expect("random-device", "src/sim/random_device.cpp", 5)

    def test_c_rand(self):
        self.expect("c-rand", "src/sim/c_rand.cpp", 5)
        self.expect("c-rand", "src/sim/c_rand.cpp", 6)

    def test_wall_clock(self):
        for line in (11, 12, 13):
            self.expect("wall-clock", "src/sim/wall_clock.cpp", line)
        # Member calls / time-containing identifiers never flagged.
        self.assertEqual(
            [f["line"] for f in self.by_rule("wall-clock")
             if "wall_clock.cpp" in f["file"]], [11, 12, 13])

    def test_unordered_container(self):
        lines = sorted(f["line"] for f in self.by_rule("unordered-container"))
        self.assertEqual(lines, [4, 5, 8, 9])

    def test_pointer_ordering(self):
        self.expect("pointer-ordering", "src/sim/pointer_ordering.cpp", 11)
        self.expect("pointer-ordering", "src/sim/pointer_ordering.cpp", 14)

    def test_float_narrowing(self):
        self.expect("float-narrowing", "src/core/float_narrowing.cpp", 4)

    def test_clean_files_have_no_findings(self):
        for f in self.findings:
            self.assertNotIn("clean.", f["file"],
                             f"clean fixture flagged: {f}")

    def test_allow_is_counted_not_flagged(self):
        flagged = [f for f in self.findings if "allowed.cpp" in f["file"]]
        self.assertEqual(flagged, [])
        allowed = [a for a in self.report["allowed"]
                   if "allowed.cpp" in a["file"]]
        self.assertEqual(len(allowed), 1)
        self.assertEqual(allowed[0]["rule"], "wall-clock")
        self.assertTrue(allowed[0]["justification"])

    def test_allow_missing_justification(self):
        self.expect("allow-missing-justification",
                    "src/sim/allow_missing_justification.cpp", 6)
        # ...and the violation it failed to cover is still flagged.
        self.expect("random-device",
                    "src/sim/allow_missing_justification.cpp", 7)

    def test_allow_unused(self):
        self.expect("allow-unused", "src/sim/allow_unused.cpp", 4)

    def test_summary_consistent(self):
        summary = self.report["summary"]
        self.assertEqual(summary["findings"], len(self.findings))
        self.assertEqual(summary["allowed"], len(self.report["allowed"]))
        self.assertGreaterEqual(summary["files_scanned"], 10)


class RuleSelection(unittest.TestCase):
    def test_layering_only(self):
        _, report = report_from("--rules", "layering")
        rules = {f["rule"] for f in report["findings"]}
        self.assertEqual(rules, {"layering"})

    def test_single_determinism_rule(self):
        _, report = report_from("--rules", "random-device")
        rules = {f["rule"] for f in report["findings"]}
        # Pragma hygiene (allow-*) is checked whenever the determinism
        # scanner runs; no other determinism rule may fire.
        self.assertIn("random-device", rules)
        self.assertLessEqual(
            rules, {"random-device", "allow-missing-justification",
                    "allow-unused", "allow-unknown-rule"})

    def test_unknown_rule_is_usage_error(self):
        proc = run_lint("--rules", "no-such-rule")
        self.assertEqual(proc.returncode, 2)


class ExitCodes(unittest.TestCase):
    def test_clean_tree_exits_zero(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            (root / "src" / "util").mkdir(parents=True)
            (root / "src" / "util" / "ok.cpp").write_text(
                "int ok() { return 1; }\n")
            proc = run_lint(root=root, config=FIXTURES / "layers.toml")
            self.assertEqual(proc.returncode, 0)

    def test_cyclic_config_is_config_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            (root / "src" / "a").mkdir(parents=True)
            bad = root / "layers.toml"
            bad.write_text('[modules]\na = ["b"]\nb = ["a"]\n')
            proc = run_lint(root=root, config=bad)
            self.assertEqual(proc.returncode, 2)
            self.assertIn("cycle", proc.stderr)

    def test_missing_src_is_usage_error(self):
        with tempfile.TemporaryDirectory() as tmp:
            proc = run_lint(root=pathlib.Path(tmp))
            self.assertEqual(proc.returncode, 2)


class RealRepository(unittest.TestCase):
    def test_repo_lints_clean_with_committed_config(self):
        proc, report = report_from(root=REPO, config=None)
        self.assertEqual(
            proc.returncode, 0,
            "committed tree must lint clean:\n" + proc.stderr)
        self.assertEqual(report["summary"]["findings"], 0)
        # The one sanctioned allow: SweepRunner's cell timer.
        allowed_files = {pathlib.Path(a["file"]).name
                         for a in report["allowed"]}
        self.assertIn("sweep.cpp", allowed_files)

    def test_seeded_violation_fails(self):
        """The acceptance criterion: a back-edge include or random_device
        planted in src/sim must fail the lint with file:line output. Runs
        on a temp copy of src/ so the working tree is never touched."""
        import shutil
        with tempfile.TemporaryDirectory() as tmp:
            root = pathlib.Path(tmp)
            shutil.copytree(REPO / "src", root / "src")
            victim = root / "src" / "sim" / "network.cpp"
            victim.write_text(
                victim.read_text() + '\n#include "experiments/sweep.hpp"\n'
                "static unsigned seeded() { std::random_device rd; "
                "return rd(); }\n")
            proc = run_lint(
                root=root,
                config=REPO / "tools" / "hbsp_lint" / "layers.toml")
            self.assertEqual(proc.returncode, 1)
            self.assertIn("network.cpp", proc.stderr)
            self.assertIn("back-edge", proc.stderr)
            self.assertIn("random_device", proc.stderr)


if __name__ == "__main__":
    unittest.main(verbosity=2)
