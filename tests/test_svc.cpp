// Differential and behavioural suite for the embedded scenario-advisory
// service (src/svc).
//
// The core claim under test is the serving layer's determinism contract: a
// Response body is a pure function of request content — byte-identical to
// what direct advisor / planner / simulator calls produce, at any executor
// thread count, shard count, or cache warmth. On top of that, the admission
// mechanics: N identical concurrent requests coalesce into exactly one
// compute (one plancache.misses increment), a full queue sheds explicitly
// and deterministically, and expired deadlines are rejected without ever
// executing.

#include "svc/service.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "collectives/advisor.hpp"
#include "collectives/plan_cache.hpp"
#include "core/topology.hpp"
#include "experiments/chaos.hpp"
#include "experiments/figures.hpp"
#include "experiments/scenario_cache.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "obs/metrics.hpp"

namespace hbsp::svc {
namespace {

std::uint64_t counter(const std::string& name) {
  return obs::Registry::global().snapshot().counter(name);
}

/// The ISSUE's acceptance machines: every differential case runs on all
/// three.
std::vector<std::pair<std::string, std::shared_ptr<const MachineTree>>>
machine_basket() {
  return {
      {"testbed10",
       std::make_shared<const MachineTree>(make_paper_testbed(10))},
      {"figure1_campus",
       std::make_shared<const MachineTree>(make_figure1_cluster())},
      {"wide_area_grid",
       std::make_shared<const MachineTree>(make_wide_area_grid())},
  };
}

bool is_flat(const MachineTree& tree) {
  for (int j = 0; j < tree.num_children(tree.root()); ++j) {
    if (!tree.is_processor(tree.child(tree.root(), j))) return false;
  }
  return true;
}

/// Collectives the advisor accepts on `tree` (scan/alltoall are flat-only).
std::vector<coll::CollectiveKind> advisable(const MachineTree& tree) {
  std::vector<coll::CollectiveKind> kinds = {
      coll::CollectiveKind::kGather,    coll::CollectiveKind::kBroadcast,
      coll::CollectiveKind::kScatter,   coll::CollectiveKind::kReduce,
      coll::CollectiveKind::kAllgather,
  };
  if (is_flat(tree)) {
    kinds.push_back(coll::CollectiveKind::kScan);
    kinds.push_back(coll::CollectiveKind::kAlltoall);
  }
  return kinds;
}

Response served(Service& service, AdviseRequest request) {
  Ticket ticket = service.submit(std::move(request));
  service.pump();
  return ticket.response.get();
}

TEST(SvcDifferential, AdviseMatchesDirectCallsEverywhere) {
  // Every collective on every machine, at 1 and 4 executor threads, cold
  // and warm: the served response must carry exactly the advisor's choice,
  // the cache's plan, and the scenario cache's makespan.
  constexpr std::size_t n = 4096;
  const sim::SimParams params;
  std::map<std::string, std::uint64_t> fingerprints_at_1;

  for (const int threads : {1, 4}) {
    coll::PlanCache::global().clear();
    exp::ScenarioCache::global().clear();
    Service service{ServiceConfig{threads, 2, 0}};
    for (const auto& [name, tree] : machine_basket()) {
      for (const coll::CollectiveKind kind : advisable(*tree)) {
        const std::string label =
            name + "/" + coll::to_string(kind) + "/t" + std::to_string(threads);

        const coll::CollectiveAdvice advice = coll::advise(*tree, kind, n);
        const coll::PlanRequest spec = advice.request(n);
        const auto direct_plan = coll::PlanCache::global().get(*tree, spec);
        const double direct_makespan =
            exp::simulate_makespan(*tree, direct_plan->schedule, params);

        const Response cold = served(
            service, AdviseRequest{tree, kind, n, params});
        ASSERT_EQ(cold.outcome, Outcome::kCompleted) << label;
        EXPECT_EQ(cold.body.spec, spec) << label;
        EXPECT_EQ(cold.body.plan->schedule, direct_plan->schedule) << label;
        EXPECT_EQ(cold.body.plan->predicted_cost, direct_plan->predicted_cost)
            << label;
        EXPECT_TRUE(cold.body.simulated) << label;
        EXPECT_EQ(cold.body.simulated_makespan, direct_makespan) << label;
        EXPECT_EQ(cold.body.rationale, advice.rationale) << label;

        // Warm pass: identical content, not merely similar.
        const Response warm = served(
            service, AdviseRequest{tree, kind, n, params});
        EXPECT_EQ(warm.body.content_fingerprint(),
                  cold.body.content_fingerprint())
            << label;

        // And the fingerprint must agree across thread counts.
        const std::string key = name + "/" + coll::to_string(kind);
        if (threads == 1) {
          fingerprints_at_1[key] = cold.body.content_fingerprint();
        } else {
          EXPECT_EQ(cold.body.content_fingerprint(), fingerprints_at_1[key])
              << label;
        }
      }
    }
  }
}

TEST(SvcDifferential, PlanAndSimulateMatchDirectCalls) {
  const auto basket = machine_basket();
  for (const auto& [name, tree] : basket) {
    Service service{ServiceConfig{2, 2, 0}};
    coll::PlanRequest spec;
    spec.kind = coll::CollectiveKind::kGather;
    spec.n = 2048;
    spec.root_pid = tree->coordinator_pid(tree->root());

    Ticket plan_ticket = service.submit(PlanRequest{tree, spec});
    service.pump();
    const Response planned = plan_ticket.response.get();
    ASSERT_EQ(planned.outcome, Outcome::kCompleted) << name;
    const auto direct = coll::PlanCache::global().get(*tree, spec);
    EXPECT_EQ(planned.body.spec, spec) << name;
    EXPECT_EQ(planned.body.plan->schedule, direct->schedule) << name;
    EXPECT_FALSE(planned.body.simulated) << name;

    const sim::SimParams params;
    Ticket sim_ticket =
        service.submit(SimulateRequest{tree, spec, params, nullptr});
    service.pump();
    const Response simulated = sim_ticket.response.get();
    ASSERT_EQ(simulated.outcome, Outcome::kCompleted) << name;
    EXPECT_EQ(simulated.body.simulated_makespan,
              exp::simulate_makespan(*tree, direct->schedule, params))
        << name;

    // Fault-injected simulation differs from fault-free and matches the
    // direct injected call exactly.
    auto fault_plan = std::make_shared<const faults::FaultPlan>([&] {
      faults::FaultPlan fp;
      fp.slowdowns.push_back(
          {.pid = tree->coordinator_pid(tree->root()),
           .begin = 0.0,
           .end = 1.0,
           .factor = 3.0});
      return fp;
    }());
    Ticket fault_ticket =
        service.submit(SimulateRequest{tree, spec, params, fault_plan});
    service.pump();
    const Response faulted = fault_ticket.response.get();
    ASSERT_EQ(faulted.outcome, Outcome::kCompleted) << name;
    const faults::FaultInjector injector{*fault_plan};
    EXPECT_EQ(faulted.body.simulated_makespan,
              exp::simulate_makespan_with_faults(*tree, direct->schedule,
                                                 params, &injector))
        << name;
    EXPECT_NE(faulted.body.content_fingerprint(),
              simulated.body.content_fingerprint())
        << name;
  }
}

TEST(SvcCoalescing, IdenticalConcurrentRequestsComputeOnce) {
  // The ISSUE's coalescing criterion: N identical requests submitted while
  // none has executed yet trigger exactly one plan build (one
  // plancache.misses increment) and N identical responses.
  coll::PlanCache::global().clear();
  exp::ScenarioCache::global().clear();
  const auto tree = std::make_shared<const MachineTree>(make_paper_testbed(7));
  coll::PlanRequest spec;
  spec.kind = coll::CollectiveKind::kBroadcast;
  spec.n = 7777;  // unique to this test: nothing else builds this key
  spec.root_pid = 0;

  Service service{ServiceConfig{4, 2, 0}};
  const std::uint64_t misses_before = counter("plancache.misses");
  const std::uint64_t coalesced_before = counter("svc.coalesced");

  constexpr std::uint64_t kTwins = 8;
  std::vector<Ticket> tickets;
  for (std::uint64_t i = 0; i < kTwins; ++i) {
    tickets.push_back(
        service.submit(SimulateRequest{tree, spec, sim::SimParams{}, nullptr}));
  }
  EXPECT_FALSE(tickets.front().coalesced);
  for (std::uint64_t i = 1; i < kTwins; ++i) {
    EXPECT_TRUE(tickets[i].coalesced) << i;
    EXPECT_EQ(tickets[i].key, tickets.front().key) << i;
  }
  EXPECT_EQ(service.queue_depth(), 1u);  // one job serves all twins

  service.pump();
  const Response first = tickets.front().response.get();
  ASSERT_EQ(first.outcome, Outcome::kCompleted);
  EXPECT_EQ(first.provenance.served, kTwins);
  for (const Ticket& ticket : tickets) {
    const Response& response = ticket.response.get();
    EXPECT_EQ(response.body.content_fingerprint(),
              first.body.content_fingerprint());
  }
  EXPECT_EQ(counter("plancache.misses"), misses_before + 1);
  EXPECT_EQ(counter("svc.coalesced"), coalesced_before + kTwins - 1);
}

TEST(SvcAdmission, FullQueueShedsDeterministically) {
  // Single-threaded, single-shard, capacity 3: of six *distinct* requests
  // the first three are admitted, the last three rejected immediately with
  // an explicit queue-full outcome — same result on every run.
  const auto tree = std::make_shared<const MachineTree>(make_paper_testbed(6));
  Service service{ServiceConfig{1, 1, 3}};
  const std::uint64_t shed_before = counter("svc.shed.queue_full");

  std::vector<Ticket> tickets;
  for (std::size_t i = 0; i < 6; ++i) {
    coll::PlanRequest spec;
    spec.kind = coll::CollectiveKind::kGather;
    spec.n = 1000 + i;  // distinct keys: no coalescing interference
    spec.root_pid = 0;
    tickets.push_back(service.submit(PlanRequest{tree, spec}));
  }
  EXPECT_EQ(service.queue_depth(), 3u);
  for (std::size_t i = 3; i < 6; ++i) {
    const Response& rejected = tickets[i].response.get();  // already ready
    EXPECT_EQ(rejected.outcome, Outcome::kRejectedQueueFull) << i;
  }
  EXPECT_EQ(counter("svc.shed.queue_full"), shed_before + 3);

  service.pump();
  EXPECT_EQ(service.queue_depth(), 0u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(tickets[i].response.get().outcome, Outcome::kCompleted) << i;
  }

  // A coalescing twin of an admitted request does not consume a slot: after
  // the drain, capacity 3 admits 3 distinct plus any number of twins.
  coll::PlanRequest spec;
  spec.kind = coll::CollectiveKind::kGather;
  spec.n = 1000;
  spec.root_pid = 0;
  (void)service.submit(PlanRequest{tree, spec});
  Ticket twin = service.submit(PlanRequest{tree, spec});
  EXPECT_TRUE(twin.coalesced);
  EXPECT_EQ(service.queue_depth(), 1u);
  service.pump();
}

TEST(SvcDeadlines, ExpiredRequestsNeverExecute) {
  coll::PlanCache::global().clear();
  exp::ScenarioCache::global().clear();
  const auto tree = std::make_shared<const MachineTree>(make_paper_testbed(5));
  Service service{ServiceConfig{1, 1, 8}};
  coll::PlanRequest spec;
  spec.kind = coll::CollectiveKind::kScatter;
  spec.n = 5555;
  spec.root_pid = 0;

  const std::uint64_t misses_before = counter("plancache.misses");
  const std::uint64_t shed_before = counter("svc.shed.deadline");
  Ticket ticket =
      service.submit(PlanRequest{tree, spec}, Deadline::expired());
  EXPECT_FALSE(ticket.coalesced);
  EXPECT_EQ(service.queue_depth(), 0u);  // rejected at submit, never queued
  EXPECT_EQ(ticket.response.get().outcome,
            Outcome::kRejectedDeadlineExceeded);
  EXPECT_EQ(counter("svc.shed.deadline"), shed_before + 1);
  EXPECT_EQ(counter("plancache.misses"), misses_before);  // nothing built

  // An expired request whose twin is live coalesces instead of shedding:
  // the compute is already paid for, so the late member shares it.
  Ticket live = service.submit(PlanRequest{tree, spec});
  Ticket rescued =
      service.submit(PlanRequest{tree, spec}, Deadline::expired());
  EXPECT_TRUE(rescued.coalesced);
  service.pump();
  EXPECT_EQ(live.response.get().outcome, Outcome::kCompleted);
  EXPECT_EQ(rescued.response.get().outcome, Outcome::kCompleted);
  EXPECT_EQ(counter("svc.shed.deadline"), shed_before + 1);  // unchanged
}

TEST(SvcDeadlines, DeadlinePassingInQueueShedsAtDispatch) {
  const auto tree = std::make_shared<const MachineTree>(make_paper_testbed(5));
  Service service{ServiceConfig{1, 1, 8}};
  coll::PlanRequest spec;
  spec.kind = coll::CollectiveKind::kReduce;
  spec.n = 5556;
  spec.root_pid = 0;

  // Admitted with a quarter-second budget, then deliberately left to expire
  // before the pump: the dispatch-time re-check must shed it.
  Ticket ticket =
      service.submit(PlanRequest{tree, spec}, Deadline::after(0.25));
  ASSERT_EQ(service.queue_depth(), 1u);
  const double expire_at = now_seconds() + 0.3;
  while (now_seconds() < expire_at) {
    std::this_thread::yield();
  }
  service.pump();
  EXPECT_EQ(ticket.response.get().outcome,
            Outcome::kRejectedDeadlineExceeded);
}

TEST(SvcErrors, NullTreeThrowsAndPlannerErrorsSurfaceThroughFuture) {
  Service service{ServiceConfig{1, 1, 0}};
  EXPECT_THROW((void)service.submit(
                   PlanRequest{nullptr, coll::PlanRequest{}}),
               std::invalid_argument);

  // A flat-only collective on a hierarchy fails inside the planner; the
  // error must come out of the future, not kill the executor.
  const auto tree =
      std::make_shared<const MachineTree>(make_figure1_cluster());
  coll::PlanRequest spec;
  spec.kind = coll::CollectiveKind::kAlltoall;
  spec.n = 128;
  Ticket ticket = service.submit(PlanRequest{tree, spec});
  service.pump();
  EXPECT_THROW((void)ticket.response.get(), std::invalid_argument);

  // The service keeps serving afterwards.
  coll::PlanRequest ok;
  ok.kind = coll::CollectiveKind::kGather;
  ok.n = 128;
  ok.root_pid = tree->coordinator_pid(tree->root());
  Ticket after = service.submit(PlanRequest{tree, ok});
  service.pump();
  EXPECT_EQ(after.response.get().outcome, Outcome::kCompleted);
}

TEST(SvcSharding, OutcomesAndContentInvariantAcrossShardsAndThreads) {
  // One fixed submit sequence against services of every (threads, shards)
  // shape: per-ticket outcome, coalesced flag, and content fingerprint must
  // be identical everywhere.
  const auto basket = machine_basket();
  struct Observed {
    Outcome outcome;
    bool coalesced;
    std::uint64_t fingerprint;
  };
  std::vector<Observed> reference;

  for (const auto& [threads, shards] :
       std::vector<std::pair<int, int>>{{1, 1}, {1, 3}, {4, 1}, {4, 8}}) {
    Service service{ServiceConfig{threads, shards, 5}};
    std::vector<Ticket> tickets;
    for (std::size_t i = 0; i < 12; ++i) {
      const auto& tree = basket[i % basket.size()].second;
      coll::PlanRequest spec;
      spec.kind = coll::CollectiveKind::kGather;
      spec.n = 3000 + (i % 4);  // duplicates by construction
      spec.root_pid = tree->coordinator_pid(tree->root());
      const Deadline deadline =
          i % 6 == 5 ? Deadline::expired() : Deadline::never();
      tickets.push_back(service.submit(
          SimulateRequest{tree, spec, sim::SimParams{}, nullptr}, deadline));
    }
    service.pump();

    std::vector<Observed> observed;
    for (Ticket& ticket : tickets) {
      const Response& response = ticket.response.get();
      observed.push_back({response.outcome, ticket.coalesced,
                          response.outcome == Outcome::kCompleted
                              ? response.body.content_fingerprint()
                              : 0});
    }
    if (reference.empty()) {
      reference = observed;
      continue;
    }
    for (std::size_t i = 0; i < observed.size(); ++i) {
      EXPECT_EQ(observed[i].outcome, reference[i].outcome)
          << threads << "x" << shards << " request " << i;
      EXPECT_EQ(observed[i].coalesced, reference[i].coalesced)
          << threads << "x" << shards << " request " << i;
      EXPECT_EQ(observed[i].fingerprint, reference[i].fingerprint)
          << threads << "x" << shards << " request " << i;
    }
  }
}

TEST(SvcBackground, StartStopServesSubmissionsFromWorkerThreads) {
  // Background mode: workers park on the admission queue and serve as
  // requests arrive. Content equals the pump-mode content; pump() itself is
  // refused while running.
  const auto tree = std::make_shared<const MachineTree>(make_paper_testbed(8));
  Service service{ServiceConfig{4, 2, 0}};
  service.start();
  EXPECT_TRUE(service.running());
  EXPECT_THROW(service.pump(), std::logic_error);

  std::vector<Ticket> tickets;
  for (std::size_t i = 0; i < 16; ++i) {
    coll::PlanRequest spec;
    spec.kind = coll::CollectiveKind::kGather;
    spec.n = 4000 + (i % 5);
    spec.root_pid = 0;
    tickets.push_back(
        service.submit(SimulateRequest{tree, spec, sim::SimParams{}, nullptr}));
  }
  for (Ticket& ticket : tickets) {
    EXPECT_EQ(ticket.response.get().outcome, Outcome::kCompleted);
  }
  service.stop();
  EXPECT_FALSE(service.running());

  // Identical request served by a fresh pump-mode service: same content.
  Service reference{ServiceConfig{1, 1, 0}};
  coll::PlanRequest spec;
  spec.kind = coll::CollectiveKind::kGather;
  spec.n = 4000;
  spec.root_pid = 0;
  Ticket again = reference.submit(
      SimulateRequest{tree, spec, sim::SimParams{}, nullptr});
  reference.pump();
  EXPECT_EQ(again.response.get().body.content_fingerprint(),
            tickets.front().response.get().body.content_fingerprint());
}

TEST(SvcObservability, CountersAndQueueDepthGaugeAreRecorded) {
  const auto tree = std::make_shared<const MachineTree>(make_paper_testbed(4));
  const std::uint64_t requests_before = counter("svc.requests");
  const std::uint64_t completed_before = counter("svc.completed");

  Service service{ServiceConfig{1, 1, 0}};
  coll::PlanRequest spec;
  spec.kind = coll::CollectiveKind::kGather;
  spec.n = 6000;
  spec.root_pid = 0;
  Ticket a = service.submit(PlanRequest{tree, spec});
  Ticket b = service.submit(PlanRequest{tree, spec});  // coalesces
  service.pump();
  (void)a.response.get();
  (void)b.response.get();

  EXPECT_EQ(counter("svc.requests"), requests_before + 2);
  EXPECT_EQ(counter("svc.completed"), completed_before + 2);

  const obs::MetricsSnapshot snapshot = obs::Registry::global().snapshot();
  const obs::GaugeValue* depth = snapshot.gauge("svc.queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_GE(depth->value, 1.0);
  const obs::HistogramValue* latency =
      snapshot.histogram("svc.latency_seconds");
  ASSERT_NE(latency, nullptr);
  EXPECT_GE(latency->count, 2u);
}

}  // namespace
}  // namespace hbsp::svc
