// Tests for the non-dedicated-cluster load model (per-superstep log-normal
// slowdowns, §5.1's "non-dedicated heterogeneous cluster").

#include <gtest/gtest.h>

#include "collectives/planners.hpp"
#include "core/topology.hpp"
#include "sim/cluster_sim.hpp"

namespace hbsp::sim {
namespace {

double gather_makespan(const SimParams& params, std::size_t n = 25000) {
  const MachineTree tree = make_paper_testbed(6);
  ClusterSim sim{tree, params};
  return sim.run(coll::plan_gather(tree, n, {})).makespan;
}

TEST(LoadModel, OffByDefault) {
  SimParams a;
  SimParams b;
  b.load_seed = 999;  // seed is irrelevant while stddev == 0
  EXPECT_DOUBLE_EQ(gather_makespan(a), gather_makespan(b));
}

TEST(LoadModel, DeterministicPerSeed) {
  SimParams params;
  params.load_stddev = 0.3;
  params.load_seed = 7;
  EXPECT_DOUBLE_EQ(gather_makespan(params), gather_makespan(params));
}

TEST(LoadModel, DifferentSeedsDiffer) {
  SimParams a;
  a.load_stddev = 0.3;
  a.load_seed = 7;
  SimParams b = a;
  b.load_seed = 8;
  EXPECT_NE(gather_makespan(a), gather_makespan(b));
}

TEST(LoadModel, PerturbsAroundTheUnloadedTime) {
  const double clean = gather_makespan(SimParams{});
  double total = 0.0;
  constexpr int kSeeds = 24;
  for (int seed = 1; seed <= kSeeds; ++seed) {
    SimParams params;
    params.load_stddev = 0.1;
    params.load_seed = static_cast<std::uint64_t>(seed);
    const double loaded = gather_makespan(params);
    // Individual runs stay within a sane band at sigma = 0.1...
    EXPECT_GT(loaded, 0.6 * clean);
    EXPECT_LT(loaded, 1.8 * clean);
    total += loaded;
  }
  // ...and the mean sits near (slightly above, max-of-lognormals) clean time.
  const double mean = total / kSeeds;
  EXPECT_GT(mean, 0.9 * clean);
  EXPECT_LT(mean, 1.4 * clean);
}

TEST(LoadModel, SlowdownGrowsWithSigma) {
  // With heavy load noise the expected makespan rises: a superstep ends when
  // its slowest participant does, and the max of log-normals grows with
  // sigma.
  double mild_total = 0.0;
  double heavy_total = 0.0;
  for (int seed = 1; seed <= 16; ++seed) {
    SimParams mild;
    mild.load_stddev = 0.05;
    mild.load_seed = static_cast<std::uint64_t>(seed);
    SimParams heavy;
    heavy.load_stddev = 0.6;
    heavy.load_seed = static_cast<std::uint64_t>(seed);
    mild_total += gather_makespan(mild);
    heavy_total += gather_makespan(heavy);
  }
  EXPECT_GT(heavy_total, mild_total);
}

TEST(LoadModel, ValidatesSigma) {
  SimParams params;
  params.load_stddev = -0.1;
  EXPECT_THROW(params.validate(), std::invalid_argument);
}

TEST(LoadModel, ResetReplaysTheSameLoadSequence) {
  const MachineTree tree = make_paper_testbed(5);
  SimParams params;
  params.load_stddev = 0.2;
  ClusterSim sim{tree, params};
  const auto schedule = coll::plan_gather(tree, 10000, {});
  const double first = sim.run(schedule).makespan;
  const double second = sim.run(schedule).makespan;  // run() resets
  EXPECT_DOUBLE_EQ(first, second);
}

}  // namespace
}  // namespace hbsp::sim
