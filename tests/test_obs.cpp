// Tests for the obs metrics layer: registry semantics, the order-independent
// shard merge that makes counters safe to CI-gate across thread counts, and
// the reconciliation between the simulator's counters and the schedule's own
// message accounting.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "collectives/plan_cache.hpp"
#include "collectives/planners.hpp"
#include "collectives/schedule_replay.hpp"
#include "core/topology.hpp"
#include "experiments/chaos.hpp"
#include "experiments/scenario_cache.hpp"
#include "faults/injector.hpp"
#include "obs/export.hpp"
#include "obs/metrics.hpp"
#include "runtime/hbsplib.hpp"
#include "sim/cluster_sim.hpp"

namespace hbsp {
namespace {

using obs::MetricsSnapshot;
using obs::Registry;

/// The chaos config every thread-count test shares: small but non-trivial,
/// with both slowdowns and message loss active.
exp::ChaosConfig small_chaos(int threads) {
  exp::ChaosConfig config;
  config.fault_rates = {0.0, 2.0};
  config.loss_probs = {0.0, 0.05};
  config.p = 4;
  config.kbytes = 200;
  config.threads = threads;
  return config;
}

/// Counters of a snapshot as a name -> value map, for exact comparison.
std::map<std::string, std::uint64_t> counter_map(const MetricsSnapshot& snap) {
  std::map<std::string, std::uint64_t> map;
  for (const obs::CounterValue& c : snap.counters) map[c.name] = c.value;
  return map;
}

TEST(ObsRegistry, CounterAccumulatesAcrossHandles) {
  Registry registry;
  registry.counter("events").add(3);
  registry.counter("events").increment();
  auto handle = registry.counter("events");
  handle.add(6);
  EXPECT_EQ(registry.snapshot().counter("events"), 10u);
}

TEST(ObsRegistry, SnapshotIsSortedByName) {
  Registry registry;
  registry.counter("zeta").increment();
  registry.counter("alpha").increment();
  registry.counter("mid").increment();
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 3u);
  EXPECT_TRUE(std::is_sorted(
      snap.counters.begin(), snap.counters.end(),
      [](const auto& a, const auto& b) { return a.name < b.name; }));
}

TEST(ObsRegistry, GaugeMergesByMax) {
  Registry registry;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back(
        [&registry, t] { registry.gauge("width").set(static_cast<double>(t)); });
  }
  for (std::thread& t : threads) t.join();
  const MetricsSnapshot snap = registry.snapshot();
  ASSERT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.gauges[0].value, 3.0);
}

TEST(ObsRegistry, CounterTotalsAreThreadCountInvariant) {
  // 4 threads x 1000 increments must merge to exactly 4000, and the shard
  // count must reflect that each writer got its own slice.
  Registry registry;
  constexpr int kThreads = 4;
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      auto counter = registry.counter("hits");
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.increment();
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(registry.snapshot().counter("hits"), kThreads * kPerThread);
  EXPECT_GE(registry.shard_count(), static_cast<std::size_t>(kThreads));
}

TEST(ObsRegistry, ResetZeroesEveryCell) {
  Registry registry;
  registry.counter("n").add(7);
  registry.gauge("g").set(2.5);
  registry.histogram("h").record(0.125);
  registry.reset();
  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(snap.counter("n"), 0u);
  // Empty histograms are omitted from snapshots entirely.
  EXPECT_EQ(snap.histogram("h"), nullptr);
  EXPECT_TRUE(snap.gauges.empty());
}

TEST(ObsHistogram, BucketBoundsAreExponential) {
  EXPECT_EQ(obs::bucket_lower_bound(0), 0.0);
  EXPECT_DOUBLE_EQ(obs::bucket_lower_bound(1), 1e-9);
  EXPECT_DOUBLE_EQ(obs::bucket_lower_bound(2), 4e-9);
  EXPECT_EQ(obs::bucket_index(0.0), 0u);
  EXPECT_EQ(obs::bucket_index(5e-10), 0u);
  EXPECT_EQ(obs::bucket_index(2e-9), 1u);
  EXPECT_EQ(obs::bucket_index(1e30), obs::kHistogramBuckets - 1);
}

TEST(ObsHistogram, RecordTracksCountSumMinMax) {
  Registry registry;
  auto h = registry.histogram("t");
  h.record(0.5);
  h.record(0.25);
  h.record(2.0);
  const MetricsSnapshot snap = registry.snapshot();
  const obs::HistogramValue* value = snap.histogram("t");
  ASSERT_NE(value, nullptr);
  EXPECT_EQ(value->count, 3u);
  EXPECT_DOUBLE_EQ(value->sum, 2.75);
  EXPECT_DOUBLE_EQ(value->min, 0.25);
  EXPECT_DOUBLE_EQ(value->max, 2.0);
  EXPECT_NEAR(value->mean(), 2.75 / 3.0, 1e-15);
}

TEST(ObsHistogram, MergeIsOrderIndependent) {
  // Double addition does not commute, so a naive shard-order sum would make
  // histogram sums depend on thread scheduling. merge_histograms must be a
  // pure function of the *set* of shards: any permutation, bit-identical
  // result.
  std::mt19937_64 rng{2024};
  std::uniform_real_distribution<double> value(1e-8, 10.0);
  std::vector<obs::detail::HistogramCell> parts(7);
  for (auto& part : parts) {
    const int n = static_cast<int>(rng() % 40) + 1;
    for (int i = 0; i < n; ++i) part.record(value(rng));
  }

  const obs::HistogramValue reference = obs::merge_histograms("m", parts);
  std::vector<obs::detail::HistogramCell> shuffled = parts;
  for (int trial = 0; trial < 20; ++trial) {
    std::shuffle(shuffled.begin(), shuffled.end(), rng);
    const obs::HistogramValue merged = obs::merge_histograms("m", shuffled);
    EXPECT_EQ(merged.count, reference.count);
    EXPECT_EQ(merged.sum, reference.sum);  // bit-identical, not just close
    EXPECT_EQ(merged.min, reference.min);
    EXPECT_EQ(merged.max, reference.max);
    EXPECT_EQ(merged.buckets, reference.buckets);
  }
}

TEST(ObsSim, CountersReconcileWithScheduleFaultFree) {
  // Without faults every planned message is attempted exactly once and
  // delivered: the sim.* counters must agree with the schedule's own count.
  auto& registry = Registry::global();
  registry.reset();

  const MachineTree tree = make_paper_testbed(6);
  const CommSchedule schedule = coll::plan_gather(tree, 100000, {});
  sim::ClusterSim sim{tree, sim::SimParams{}};
  (void)sim.run(schedule);

  const MetricsSnapshot snap = registry.snapshot();
  const std::uint64_t planned = schedule.total_messages();
  EXPECT_EQ(snap.counter("sim.send_attempts"), planned);
  EXPECT_EQ(snap.counter("sim.messages_delivered"), planned);
  EXPECT_EQ(snap.counter("sim.messages_lost"), 0u);
  EXPECT_EQ(snap.counter("sim.retries"), 0u);
  EXPECT_EQ(snap.counter("sim.runs"), 1u);
}

TEST(ObsSim, CountersReconcileUnderMessageLoss) {
  // With loss, every attempt either delivers or is lost, and every loss that
  // was retried shows up in sim.retries. The run completes (the retry
  // transport re-sends until delivery), so deliveries still equal the plan.
  auto& registry = Registry::global();
  registry.reset();

  const MachineTree tree = make_paper_testbed(6);
  const CommSchedule schedule = coll::plan_gather(tree, 100000, {});
  faults::FaultPlan plan;
  plan.message_loss_probability = 0.2;
  plan.loss_seed = 99;
  const faults::FaultInjector injector{plan};
  sim::ClusterSim sim{tree, sim::SimParams{}};
  sim.set_fault_injector(&injector);
  (void)sim.run(schedule);

  const MetricsSnapshot snap = registry.snapshot();
  const std::uint64_t planned = schedule.total_messages();
  const std::uint64_t attempts = snap.counter("sim.send_attempts");
  const std::uint64_t delivered = snap.counter("sim.messages_delivered");
  const std::uint64_t lost = snap.counter("sim.messages_lost");
  EXPECT_EQ(delivered, planned);
  EXPECT_EQ(attempts, delivered + lost);
  EXPECT_EQ(snap.counter("sim.retries"), lost);
  EXPECT_GT(lost, 0u) << "seed 99 at 20% loss should lose something";
}

TEST(ObsRuntime, ReplayPoolTalliesReconcileWithScheduleAndSim) {
  // Three independent accountings of the same schedule must agree: the
  // schedule's own message count, the sim.* tallies perf_snapshot publishes
  // (the runtime's virtual clock runs on the cluster simulator, so one
  // replay produces both families), and the replay's buffer-pool counters
  // (one acquire per send).
  auto& registry = Registry::global();
  registry.reset();

  const MachineTree tree = make_figure1_cluster();
  const CommSchedule schedule = coll::plan_gather(tree, 100000, {});
  std::uint64_t sendable = 0;
  for (const auto& phase : schedule.phases) {
    for (const auto& plan : phase.plans) {
      for (const auto& t : plan.transfers) {
        if (t.src_pid != t.dst_pid && t.items > 0) ++sendable;
      }
    }
  }

  (void)rt::run_program(tree, sim::SimParams{},
                        coll::make_replay_program(tree, schedule));

  const MetricsSnapshot snap = registry.snapshot();
  EXPECT_EQ(sendable, schedule.total_messages());
  EXPECT_EQ(snap.counter("rt.pool.acquires"), sendable);
  EXPECT_EQ(snap.counter("sim.send_attempts"), sendable);
  EXPECT_EQ(snap.counter("sim.messages_delivered"), sendable);
  // The gather is multi-level, so buffers recycled after the leaf superstep
  // feed the forwarding supersteps: the pool must actually reuse.
  EXPECT_GT(snap.counter("rt.pool.reuses"), 0u);
  EXPECT_LE(snap.counter("rt.pool.reuses"), snap.counter("rt.pool.acquires"));
}

TEST(ObsSweep, ChaosCountersAreThreadCountInvariant) {
  // The CI gate's core claim, in-process: the merged counter totals of a
  // chaos sweep are identical at 1 and 4 threads — names and values both.
  auto& registry = Registry::global();

  // Both sweeps must start cache-cold, exactly as two separate processes
  // would: a warm plan/scenario cache shifts misses to hits between sweeps,
  // which is the one legitimate way their counters may differ.
  registry.reset();
  coll::PlanCache::global().clear();
  exp::ScenarioCache::global().clear();
  exp::SweepRunner serial{1};
  (void)exp::chaos_sweep(small_chaos(1), serial);
  const auto counters_t1 = counter_map(registry.snapshot());

  registry.reset();
  coll::PlanCache::global().clear();
  exp::ScenarioCache::global().clear();
  exp::SweepRunner parallel{4};
  (void)exp::chaos_sweep(small_chaos(4), parallel);
  const auto counters_t4 = counter_map(registry.snapshot());

  EXPECT_EQ(counters_t1, counters_t4);
  EXPECT_GT(counters_t1.at("sim.send_attempts"), 0u);
  EXPECT_EQ(counters_t1.at("chaos.cells"), 4u);
}

TEST(ObsExport, JsonEscaping) {
  EXPECT_EQ(obs::json_escape("plain"), "plain");
  EXPECT_EQ(obs::json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(obs::json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::json_escape("line\nbreak"), "line\\nbreak");
  EXPECT_EQ(obs::json_escape(std::string{"\x01"}), "\\u0001");
}

TEST(ObsExport, JsonNumberIsRoundTrippable) {
  EXPECT_EQ(obs::json_number(0.0), "0");
  EXPECT_EQ(obs::json_number(0.1), "0.1");  // shortest round-trip form
  const double value = 31.259891750000005;
  EXPECT_EQ(std::stod(obs::json_number(value)), value);
}

TEST(ObsExport, EqualSnapshotsSerializeByteIdentically) {
  Registry a;
  Registry b;
  for (Registry* r : {&a, &b}) {
    r->counter("sim.runs").add(5);
    r->gauge("sweep.threads").set(4.0);
    r->histogram("sim.makespan").record(0.125);
    r->histogram("sim.makespan").record(0.5);
  }
  EXPECT_EQ(obs::snapshot_json(a.snapshot()), obs::snapshot_json(b.snapshot()));
}

}  // namespace
}  // namespace hbsp
