// Tests for the §6 destination-cost extension: the DestinationCosts matrix,
// the weighted h-relation, the simulator weighting, the destination-aware
// closed form, and the substrate calibration probe.

#include "core/dest_costs.hpp"

#include <gtest/gtest.h>

#include "collectives/planners.hpp"
#include "core/analysis.hpp"
#include "core/cost_model.hpp"
#include "core/topology.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/dest_calibration.hpp"

namespace hbsp {
namespace {

constexpr double kG = 1e-6;

TEST(DestinationCosts, UniformIsIdentity) {
  const MachineTree tree = make_figure1_cluster();
  const auto costs = DestinationCosts::uniform(tree);
  EXPECT_TRUE(costs.is_uniform());
  for (int a = 0; a < tree.num_processors(); ++a) {
    for (int b = 0; b < tree.num_processors(); ++b) {
      EXPECT_DOUBLE_EQ(costs.factor(a, b), 1.0);
    }
  }
}

TEST(DestinationCosts, ByLevelFollowsLca) {
  const MachineTree tree = make_figure1_cluster();
  const std::array factors{1.0, 6.0};
  const auto costs = DestinationCosts::by_level(tree, factors);
  EXPECT_FALSE(costs.is_uniform());
  EXPECT_DOUBLE_EQ(costs.factor(0, 1), 1.0);  // intra-SMP
  EXPECT_DOUBLE_EQ(costs.factor(5, 8), 1.0);  // intra-LAN
  EXPECT_DOUBLE_EQ(costs.factor(0, 4), 6.0);  // SMP -> SGI via campus
  EXPECT_DOUBLE_EQ(costs.factor(0, 8), 6.0);  // SMP -> LAN via campus
  EXPECT_DOUBLE_EQ(costs.factor(8, 0), 6.0);  // symmetric here
  EXPECT_DOUBLE_EQ(costs.factor(3, 3), 1.0);  // self
}

TEST(DestinationCosts, ByLevelValidation) {
  const MachineTree tree = make_figure1_cluster();
  const std::array wrong_size{1.0};
  EXPECT_THROW((void)DestinationCosts::by_level(tree, wrong_size),
               std::invalid_argument);
  const std::array below_one{0.5, 2.0};
  EXPECT_THROW((void)DestinationCosts::by_level(tree, below_one),
               std::invalid_argument);
  const std::array decreasing{3.0, 2.0};
  EXPECT_THROW((void)DestinationCosts::by_level(tree, decreasing),
               std::invalid_argument);
}

TEST(DestinationCosts, FromMatrixValidation) {
  EXPECT_THROW((void)DestinationCosts::from_matrix({{1.0, 2.0}}),
               std::invalid_argument);  // not square
  EXPECT_THROW((void)DestinationCosts::from_matrix({{1.0, 0.5}, {1.0, 1.0}}),
               std::invalid_argument);  // entry < 1
  const auto ok = DestinationCosts::from_matrix({{1.0, 3.0}, {2.0, 1.0}});
  EXPECT_DOUBLE_EQ(ok.factor(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(ok.factor(1, 0), 2.0);  // asymmetry allowed
  EXPECT_THROW((void)ok.factor(0, 5), std::out_of_range);
}

TEST(CostModelExtension, UniformCostsChangeNothing) {
  const MachineTree tree = make_figure1_cluster();
  const auto uniform = DestinationCosts::uniform(tree);
  CostModel base{tree};
  CostModel extended{tree};
  extended.set_destination_costs(&uniform);
  const auto schedule = coll::plan_gather(tree, 10000, {});
  EXPECT_DOUBLE_EQ(extended.cost(schedule).total(), base.cost(schedule).total());
}

TEST(CostModelExtension, WeightsCrossLevelTraffic) {
  const MachineTree tree = make_figure1_cluster();
  const std::array factors{1.0, 5.0};
  const auto costs = DestinationCosts::by_level(tree, factors);
  CostModel model{tree};

  SuperstepPlan cross;
  cross.sync_scope = tree.root();
  cross.level = 2;
  cross.transfers = {{0, 8, 1000}};  // SMP -> LAN, r_8 = 3.6
  const double base_h = model.h_relation(cross);
  model.set_destination_costs(&costs);
  EXPECT_DOUBLE_EQ(model.h_relation(cross), 5.0 * base_h);

  SuperstepPlan local;
  local.sync_scope = tree.child(tree.root(), 0);
  local.level = 1;
  local.transfers = {{0, 1, 1000}};
  model.set_destination_costs(nullptr);
  const double local_base = model.h_relation(local);
  model.set_destination_costs(&costs);
  EXPECT_DOUBLE_EQ(model.h_relation(local), local_base);  // λ = 1 inside SMP
}

TEST(CostModelExtension, ClosedFormMatchesWeightedPlanner) {
  // Agreement contract extends to §6: the destination-weighted gather closed
  // form equals the weighted CostModel on the planner's schedule — on a flat
  // machine where gather is a single superstep.
  const MachineTree tree = make_paper_testbed(6);
  const auto matrix = [&] {
    std::vector<std::vector<double>> m(
        6, std::vector<double>(6, 1.0));
    // Processor 3 is behind a slow link to everyone.
    for (int other = 0; other < 6; ++other) {
      if (other != 3) {
        m[3][static_cast<std::size_t>(other)] = 4.0;
        m[static_cast<std::size_t>(other)][3] = 4.0;
      }
    }
    return DestinationCosts::from_matrix(m);
  }();

  for (const auto shares : {analysis::Shares::kEqual, analysis::Shares::kBalanced}) {
    const int root = tree.coordinator_pid(tree.root());
    const auto schedule =
        coll::plan_gather(tree, 9000, {.root_pid = root, .shares = shares});
    CostModel model{tree};
    model.set_destination_costs(&matrix);
    const auto closed = analysis::hbsp1_gather_dest(tree, tree.root(), root,
                                                    9000, shares, matrix);
    EXPECT_DOUBLE_EQ(model.cost(schedule).total(), closed.total());
  }
}

TEST(SimExtension, UniformCostsChangeNothing) {
  const MachineTree tree = make_figure1_cluster();
  const auto uniform = DestinationCosts::uniform(tree);
  const auto schedule = coll::plan_gather(tree, 10000, {});
  sim::ClusterSim base{tree, sim::SimParams{}};
  sim::ClusterSim extended{tree, sim::SimParams{}};
  extended.set_destination_costs(&uniform);
  EXPECT_DOUBLE_EQ(extended.run(schedule).makespan, base.run(schedule).makespan);
}

TEST(SimExtension, ScalesSendAndReceivePerItemCosts) {
  const MachineTree tree = make_hbsp1_cluster(std::array{1.0, 2.0}, kG, 2e-3);
  const auto costs = DestinationCosts::from_matrix({{1.0, 3.0}, {3.0, 1.0}});
  sim::SimParams params;
  params.o_send = 0.0;
  params.o_recv = 0.0;
  params.latency_base = 0.0;
  params.model_wire_contention = false;
  params.recv_ratio = 0.5;

  CommSchedule schedule;
  schedule.add_step("x", 1, tree.root()).transfers = {{1, 0, 1000}};
  sim::ClusterSim sim{tree, params};
  sim.set_destination_costs(&costs);
  // send: 2·3·1000·g = 6ms; drain: 0.5·1·3·1000·g = 1.5ms; + L.
  EXPECT_NEAR(sim.run(schedule).makespan, 6e-3 + 1.5e-3 + 2e-3, 1e-12);
}

TEST(Calibration, RecoversLevelStructure) {
  const MachineTree tree = make_figure1_cluster();
  const auto probes = sim::probe_levels(tree, sim::SimParams{});
  ASSERT_EQ(probes.size(), 2u);
  EXPECT_TRUE(probes[0].measured);
  EXPECT_TRUE(probes[1].measured);
  EXPECT_DOUBLE_EQ(probes[0].factor, 1.0);
  // Crossing the campus network must look clearly more expensive per item.
  EXPECT_GT(probes[1].factor, 1.5);

  const auto costs = sim::calibrate_destination_costs(tree, sim::SimParams{});
  EXPECT_GT(costs.factor(0, 8), costs.factor(0, 1));
}

TEST(Calibration, FlatMachineIsUniform) {
  const MachineTree tree = make_paper_testbed(4);
  const auto costs = sim::calibrate_destination_costs(tree, sim::SimParams{});
  EXPECT_DOUBLE_EQ(costs.factor(0, 3), 1.0);
}

TEST(Calibration, ExtendedModelPredictsCrossTrafficBetter) {
  // The headline of the §6 extension: for a schedule with cross-campus
  // traffic, the destination-weighted model is closer to the substrate than
  // the base model.
  const MachineTree tree = make_figure1_cluster();
  const auto costs = sim::calibrate_destination_costs(tree, sim::SimParams{});

  CommSchedule schedule;
  SuperstepPlan& plan = schedule.add_step("cross", 2, tree.root());
  plan.transfers = {{0, 8, 100000}, {1, 7, 100000}};

  sim::ClusterSim sim{tree, sim::SimParams{}};
  const double actual = sim.run(schedule).makespan;
  CostModel model{tree};
  const double base_prediction = model.cost(schedule).total();
  model.set_destination_costs(&costs);
  const double extended_prediction = model.cost(schedule).total();

  EXPECT_LT(std::abs(extended_prediction - actual),
            std::abs(base_prediction - actual));
}

}  // namespace
}  // namespace hbsp
