// Agreement between the two execution paths (DESIGN.md §2): simulating a
// CommSchedule directly with ClusterSim must give the same virtual makespan
// as replaying that schedule as an SPMD program on the runtime's
// virtual-time engine — for the planned collectives and for random
// schedules. Also checks the executors produce the planner's timing.

#include <gtest/gtest.h>

#include "collectives/executors.hpp"
#include "collectives/planners.hpp"
#include "collectives/schedule_replay.hpp"
#include "core/topology.hpp"
#include "sim/cluster_sim.hpp"
#include "util/rng.hpp"

namespace hbsp {
namespace {

const sim::SimParams kParams{};

double simulate(const MachineTree& tree, const CommSchedule& schedule) {
  sim::ClusterSim sim{tree, kParams};
  return sim.run(schedule).makespan;
}

double replay(const MachineTree& tree, const CommSchedule& schedule) {
  return rt::run_program(tree, kParams,
                         coll::make_replay_program(tree, schedule))
      .makespan;
}

TEST(SimRuntimeAgreement, PlannedCollectivesMatch) {
  const MachineTree flat = make_paper_testbed(6);
  const MachineTree deep = make_figure1_cluster();
  const std::size_t n = 25000;
  const std::vector<std::pair<const MachineTree*, CommSchedule>> cases = {
      {&flat, coll::plan_gather(flat, n, {})},
      {&flat, coll::plan_gather(flat, n,
                                {.root_pid = flat.slowest_pid(flat.root()),
                                 .shares = coll::Shares::kEqual})},
      {&flat, coll::plan_broadcast(flat, n, {})},
      {&flat, coll::plan_scatter(flat, n, {})},
      {&flat, coll::plan_allgather(flat, n)},
      {&flat, coll::plan_reduce(flat, n, {})},
      {&flat, coll::plan_scan(flat, n)},
      {&flat, coll::plan_alltoall(flat, n)},
      {&deep, coll::plan_gather(deep, n, {})},
      {&deep, coll::plan_broadcast(deep, n, {})},
      {&deep, coll::plan_scatter(deep, n, {})},
  };
  for (const auto& [tree, schedule] : cases) {
    const double simulated = simulate(*tree, schedule);
    const double replayed = replay(*tree, schedule);
    EXPECT_NEAR(replayed, simulated, 1e-9 * simulated + 1e-15)
        << schedule.name;
  }
}

/// Random single-phase schedules over random flat clusters.
class RandomScheduleAgreement : public ::testing::TestWithParam<std::uint64_t> {
};

TEST_P(RandomScheduleAgreement, MakespansMatch) {
  util::Rng rng{GetParam() * 7919 + 13};
  RandomTreeOptions options;
  options.levels = 1 + static_cast<int>(rng.uniform_u64(0, 1));
  options.min_fanout = 2;
  options.max_fanout = 3;
  const MachineTree tree = make_random_tree(options, GetParam() + 555);

  CommSchedule schedule;
  schedule.name = "random";
  const auto steps = rng.uniform_u64(1, 4);
  for (std::uint64_t s = 0; s < steps; ++s) {
    SuperstepPlan& plan = schedule.add_step(
        "s" + std::to_string(s), tree.height(), tree.root());
    const auto messages = rng.uniform_u64(0, 12);
    for (std::uint64_t m = 0; m < messages; ++m) {
      const int src = static_cast<int>(rng.uniform_u64(
          0, static_cast<std::uint64_t>(tree.num_processors() - 1)));
      const int dst = static_cast<int>(rng.uniform_u64(
          0, static_cast<std::uint64_t>(tree.num_processors() - 1)));
      plan.transfers.push_back(
          {src, dst, static_cast<std::size_t>(rng.uniform_u64(0, 5000))});
    }
    const auto workers = rng.uniform_u64(0, 3);
    for (std::uint64_t w = 0; w < workers; ++w) {
      plan.compute.push_back(
          {static_cast<int>(rng.uniform_u64(
               0, static_cast<std::uint64_t>(tree.num_processors() - 1))),
           static_cast<double>(rng.uniform_u64(0, 10000))});
    }
  }

  const double simulated = simulate(tree, schedule);
  const double replayed = replay(tree, schedule);
  EXPECT_NEAR(replayed, simulated, 1e-9 * simulated + 1e-15);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomScheduleAgreement,
                         ::testing::Range<std::uint64_t>(0, 20));

/// Executors must realise exactly the schedules their planners emit: the SPMD
/// gather/broadcast virtual makespan equals the simulated planner makespan.
TEST(ExecutorTimingAgreement, GatherMatchesPlanner) {
  const MachineTree tree = make_paper_testbed(5);
  const std::size_t n = 10000;
  for (const auto shares : {coll::Shares::kEqual, coll::Shares::kBalanced}) {
    for (const int root :
         {tree.coordinator_pid(tree.root()), tree.slowest_pid(tree.root())}) {
      const auto schedule =
          coll::plan_gather(tree, n, {.root_pid = root, .shares = shares});
      const double planned = simulate(tree, schedule);

      const auto leaf_counts = coll::leaf_shares(tree, n, shares);
      const rt::Program program = [&](rt::Hbsp& ctx) {
        const std::vector<std::int32_t> mine(
            leaf_counts[static_cast<std::size_t>(ctx.pid())], 7);
        (void)coll::gather<std::int32_t>(ctx, mine, n,
                                         {.root_pid = root, .shares = shares});
      };
      const double executed = rt::run_program(tree, kParams, program).makespan;
      EXPECT_NEAR(executed, planned, 1e-9 * planned) << "root=" << root;
    }
  }
}

TEST(ExecutorTimingAgreement, BroadcastMatchesPlanner) {
  const MachineTree tree = make_figure1_cluster();
  const std::size_t n = 10000;
  for (const auto top : {coll::TopPhase::kOnePhase, coll::TopPhase::kTwoPhase}) {
    const coll::BroadcastOptions options{
        .root_pid = -1, .top_phase = top, .shares = coll::Shares::kEqual};
    const double planned = simulate(tree, coll::plan_broadcast(tree, n, options));
    const std::vector<std::int32_t> input(n, 3);
    const rt::Program program = [&](rt::Hbsp& ctx) {
      const std::span<const std::int32_t> mine =
          ctx.pid() == tree.coordinator_pid(tree.root())
              ? std::span<const std::int32_t>{input}
              : std::span<const std::int32_t>{};
      (void)coll::broadcast<std::int32_t>(ctx, mine, n, options);
    };
    const double executed = rt::run_program(tree, kParams, program).makespan;
    EXPECT_NEAR(executed, planned, 1e-9 * planned);
  }
}

}  // namespace
}  // namespace hbsp
