// Determinism and golden-pin tests for the chaos sweep: the fault grid must
// be bit-identical at any thread count, a zero-fault plan must reproduce the
// fault-free figure sweeps exactly, and the default-config chaos table is
// pinned against a checked-in CSV (regenerate with
// `bench/chaos_sweep --csv tests/golden/chaos_sweep.csv` or
// ci/regen_goldens.sh — see EXPERIMENTS.md).

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "experiments/chaos.hpp"
#include "experiments/figures.hpp"

namespace hbsp::exp {
namespace {

ChaosConfig small_config() {
  ChaosConfig config;
  config.fault_rates = {0.0, 2.0};
  config.loss_probs = {0.0, 0.05};
  config.p = 4;
  config.kbytes = 100;
  return config;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(ChaosSweep, BitIdenticalAcrossThreadCounts) {
  const ChaosConfig config = small_config();
  SweepRunner serial{1};
  const ChaosTable reference = chaos_sweep(config, serial);
  for (const int threads : {2, 8}) {
    SweepRunner runner{threads};
    const ChaosTable parallel = chaos_sweep(config, runner);
    // Exact double equality — the chaos grid promises bit-identical
    // results at any thread count, like every other sweep.
    ASSERT_EQ(reference.gather_factor, parallel.gather_factor)
        << "gather grid diverged at " << threads << " threads";
    ASSERT_EQ(reference.broadcast_factor, parallel.broadcast_factor)
        << "broadcast grid diverged at " << threads << " threads";
  }
}

TEST(ChaosSweep, ZeroFaultRowEqualsTheFaultFreeFactor) {
  // The rate-0/loss-0 cell runs the same experiment as Fig 3(a)/4(a) at
  // (p, kbytes): with nothing injected the factors must agree exactly.
  const ChaosConfig config = small_config();
  SweepRunner runner{2};
  const ChaosTable table = chaos_sweep(config, runner);

  FigureConfig figure;
  figure.processors = {config.p};
  figure.kbytes = {config.kbytes};
  const double gather = gather_root_experiment(figure, runner).factor[0][0];
  const double broadcast =
      broadcast_root_experiment(figure, runner).factor[0][0];
  EXPECT_EQ(table.gather_factor[0][0], gather);
  EXPECT_EQ(table.broadcast_factor[0][0], broadcast);
}

TEST(ChaosSweep, EmptyPlanReproducesTheFigureSweepsExactly) {
  // The full with-faults experiment entry points, driven with an empty
  // FaultPlan, must equal the fault-free sweeps bit for bit: the injection
  // layer is cost-free when disabled.
  FigureConfig config;
  config.processors = {2, 4, 7, 10};
  config.kbytes = {100, 500, 1000};
  SweepRunner runner{4};
  EXPECT_EQ(
      gather_root_experiment_with_faults(config, faults::FaultPlan{}, runner)
          .factor,
      gather_root_experiment(config, runner).factor);
  EXPECT_EQ(broadcast_root_experiment_with_faults(config, faults::FaultPlan{},
                                                  runner)
                .factor,
            broadcast_root_experiment(config, runner).factor);
}

TEST(ChaosSweep, FaultsActuallyPerturbTheGrid) {
  const ChaosConfig config = small_config();
  SweepRunner runner{2};
  const ChaosTable table = chaos_sweep(config, runner);
  // At rate 2 with the tuned horizon, at least one cell must differ from the
  // undisturbed factor — otherwise the injector is not being exercised.
  bool perturbed = false;
  for (std::size_t col = 0; col < table.loss_probs.size(); ++col) {
    perturbed |= table.gather_factor[1][col] != table.gather_factor[0][0];
    perturbed |= table.broadcast_factor[1][col] != table.broadcast_factor[0][0];
  }
  EXPECT_TRUE(perturbed);
}

TEST(ChaosSweep, InversionCountsMatchTheMatrices) {
  const ChaosConfig config = small_config();
  SweepRunner runner{2};
  const ChaosTable table = chaos_sweep(config, runner);
  std::size_t gather = 0, broadcast = 0;
  for (const auto& row : table.gather_factor) {
    for (const double f : row) gather += f < 1.0 ? 1 : 0;
  }
  for (const auto& row : table.broadcast_factor) {
    for (const double f : row) broadcast += f < 1.0 ? 1 : 0;
  }
  EXPECT_EQ(table.gather_inversions(), gather);
  EXPECT_EQ(table.broadcast_inversions(), broadcast);
}

TEST(ChaosSweep, CsvShape) {
  const ChaosConfig config = small_config();
  SweepRunner runner{2};
  const std::string csv = chaos_csv(chaos_sweep(config, runner));
  std::istringstream lines{csv};
  std::string line;
  ASSERT_TRUE(std::getline(lines, line));
  EXPECT_EQ(line, "collective,fault_rate,0.0000,0.0500");
  std::size_t rows = 0;
  while (std::getline(lines, line)) ++rows;
  // One row per (collective, fault rate).
  EXPECT_EQ(rows, 2u * config.fault_rates.size());
}

TEST(ChaosGolden, DefaultSweepMatchesCheckedInCsv) {
  SweepRunner runner{8};
  const ChaosTable table = chaos_sweep(ChaosConfig{}, runner);
  EXPECT_EQ(chaos_csv(table),
            read_file(std::string{HBSPK_SOURCE_DIR} +
                      "/tests/golden/chaos_sweep.csv"));
}

}  // namespace
}  // namespace hbsp::exp
