// Tests for degraded-mode re-planning: survivor-tree construction keeps the
// model invariants (fastest survivor renormalised to r = 1 with absolute
// costs preserved), fault plans remap onto restarted runs, and the
// abort-and-restart loop completes collectives across machine drops.

#include "collectives/resilience.hpp"

#include <gtest/gtest.h>

#include <array>

#include "core/topology.hpp"

namespace hbsp::coll {
namespace {

constexpr double kG = 1e-6;
constexpr double kL = 2e-3;

/// A two-level machine: cluster A = {r=1, r=2}, cluster B = {r=2, r=4}.
MachineTree two_clusters() {
  MachineSpec root;
  root.name = "campus";
  root.sync_L = 4e-3;
  MachineSpec a;
  a.name = "A";
  a.sync_L = kL;
  for (const double r : {1.0, 2.0}) {
    MachineSpec leaf;
    leaf.name = "a" + std::to_string(static_cast<int>(r));
    leaf.r = r;
    a.children.push_back(std::move(leaf));
  }
  MachineSpec b;
  b.name = "B";
  b.sync_L = kL;
  for (const double r : {2.0, 4.0}) {
    MachineSpec leaf;
    leaf.name = "b" + std::to_string(static_cast<int>(r));
    leaf.r = r;
    b.children.push_back(std::move(leaf));
  }
  root.children.push_back(std::move(a));
  root.children.push_back(std::move(b));
  return MachineTree::build(root, kG);
}

TEST(RemoveProcessors, RenormalisesSpeedsAndPreservesAbsoluteCosts) {
  const MachineTree tree = make_paper_testbed(6, kG, kL);
  const int fastest = tree.coordinator_pid(tree.root());
  const std::array dead{fastest};
  const SurvivorTree survivors = remove_processors(tree, dead);

  ASSERT_EQ(survivors.tree.num_processors(), 5);
  ASSERT_EQ(survivors.to_original.size(), 5u);
  // The mapping skips the dead pid and stays in ascending pid order.
  for (std::size_t i = 0; i + 1 < survivors.to_original.size(); ++i) {
    EXPECT_LT(survivors.to_original[i], survivors.to_original[i + 1]);
  }
  for (const int original : survivors.to_original) {
    EXPECT_NE(original, fastest);
  }

  // The fastest survivor is exactly 1 (x/x is exact in IEEE), and every
  // survivor's absolute communication cost r·g is unchanged.
  const MachineTree& st = survivors.tree;
  EXPECT_EQ(st.processor_r(st.coordinator_pid(st.root())), 1.0);
  for (int pid = 0; pid < st.num_processors(); ++pid) {
    const int original = survivors.to_original[static_cast<std::size_t>(pid)];
    EXPECT_DOUBLE_EQ(st.processor_r(pid) * st.g(),
                     tree.processor_r(original) * tree.g());
    EXPECT_DOUBLE_EQ(st.processor_compute_r(pid) * st.g(),
                     tree.processor_compute_r(original) * tree.g());
  }
}

TEST(RemoveProcessors, PrunesClustersLeftWithoutProcessors) {
  const MachineTree tree = two_clusters();
  // Kill all of cluster B (pids 2 and 3).
  const std::array dead{2, 3};
  const SurvivorTree survivors = remove_processors(tree, dead);
  EXPECT_EQ(survivors.tree.num_processors(), 2);
  EXPECT_EQ(survivors.tree.height(), 2);
  EXPECT_EQ(survivors.tree.machines_at(1), 1);  // cluster B is gone
  EXPECT_EQ(survivors.to_original, (std::vector<int>{0, 1}));
}

TEST(RemoveProcessors, RejectsTotalLossAndUnknownPids) {
  const MachineTree tree = two_clusters();
  const std::array all{0, 1, 2, 3};
  EXPECT_THROW((void)remove_processors(tree, all), std::invalid_argument);
  const std::array unknown{7};
  EXPECT_THROW((void)remove_processors(tree, unknown), std::invalid_argument);
}

TEST(RemapFaultPlan, ShiftsClampsAndRenumbers) {
  faults::FaultPlan plan;
  plan.slowdowns.push_back({0, 1.0, 3.0, 2.0});  // straddles the restart
  plan.slowdowns.push_back({2, 0.0, 1.5, 4.0});  // entirely in the past
  plan.slowdowns.push_back({1, 2.5, 4.0, 3.0});  // pid 1 is dead: vanishes
  plan.drops.push_back({2, 1.0});                // already due: fires at 0
  plan.drops.push_back({0, 5.0});
  plan.message_loss_probability = 0.1;
  plan.loss_seed = 77;

  // Survivors 0 and 2 (pid 1 removed) restarting 2 seconds in.
  const std::array to_original{0, 2};
  const faults::FaultPlan tail = remap_fault_plan(plan, 2.0, to_original);

  ASSERT_EQ(tail.slowdowns.size(), 1u);
  EXPECT_EQ(tail.slowdowns[0].pid, 0);
  EXPECT_EQ(tail.slowdowns[0].begin, 0.0);  // clamped
  EXPECT_EQ(tail.slowdowns[0].end, 1.0);
  ASSERT_EQ(tail.drops.size(), 2u);
  EXPECT_EQ(tail.drops[0].pid, 1);  // old pid 2 renumbered
  EXPECT_EQ(tail.drops[0].time, 0.0);
  EXPECT_EQ(tail.drops[1].pid, 0);
  EXPECT_EQ(tail.drops[1].time, 3.0);
  EXPECT_EQ(tail.message_loss_probability, 0.1);
  // Fresh loss stream: the restart must not replay consumed decisions.
  EXPECT_NE(tail.loss_seed, plan.loss_seed);
  EXPECT_NO_THROW(tail.validate());
}

TEST(RunWithReplanning, EmptyPlanMatchesFaultFreeExactly) {
  const MachineTree tree = make_paper_testbed(5, kG, kL);
  const ResilienceReport report = run_with_replanning(
      tree, CollectiveKind::kGather, 50000, sim::SimParams{}, {});
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.replans, 0u);
  EXPECT_TRUE(report.excluded_pids.empty());
  // Bit-identical, not merely close: the injection layer is cost-free when
  // the plan is empty.
  EXPECT_EQ(report.degraded_makespan, report.fault_free_makespan);
  EXPECT_DOUBLE_EQ(report.inflation(), 1.0);
}

TEST(RunWithReplanning, DropTriggersExclusionReplanAndInflation) {
  const MachineTree tree = make_paper_testbed(6, kG, kL);
  const int fastest = tree.coordinator_pid(tree.root());
  faults::FaultPlan plan;
  plan.drops.push_back({fastest, 5e-3});
  const ResilienceReport report = run_with_replanning(
      tree, CollectiveKind::kGather, 125000, sim::SimParams{}, plan);
  EXPECT_TRUE(report.completed);
  EXPECT_GE(report.replans, 1u);
  ASSERT_FALSE(report.excluded_pids.empty());
  EXPECT_EQ(report.excluded_pids[0], fastest);  // reported in original ids
  EXPECT_GT(report.degraded_makespan, report.fault_free_makespan);
  EXPECT_GT(report.inflation(), 1.0);

  const util::Table table = report.to_table("report");
  EXPECT_EQ(table.columns(), 2u);
  EXPECT_GT(table.rows(), 0u);
}

TEST(RunWithReplanning, CollectiveOnTwoMachinesCannotSurviveADrop) {
  const MachineTree tree = make_hbsp1_cluster(std::array{1.0, 2.0}, kG, kL);
  faults::FaultPlan plan;
  plan.drops.push_back({1, 0.0});
  const ResilienceReport report = run_with_replanning(
      tree, CollectiveKind::kBroadcast, 10000, sim::SimParams{}, plan);
  EXPECT_FALSE(report.completed);
  EXPECT_EQ(report.excluded_pids, (std::vector<int>{1}));
  EXPECT_GT(report.fault_free_makespan, 0.0);
}

TEST(RunWithReplanning, SurvivesCascadingDrops) {
  const MachineTree tree = make_paper_testbed(6, kG, kL);
  faults::FaultPlan plan;
  plan.drops.push_back({0, 4e-3});
  plan.drops.push_back({3, 6e-3});
  const ResilienceReport report = run_with_replanning(
      tree, CollectiveKind::kGather, 125000, sim::SimParams{}, plan);
  EXPECT_TRUE(report.completed);
  EXPECT_EQ(report.excluded_pids.size(), 2u);
  EXPECT_GE(report.replans, 1u);
}

}  // namespace
}  // namespace hbsp::coll
