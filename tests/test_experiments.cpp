// Tests for the shared §5 experiment protocol (src/experiments): sweep
// structure, determinism, configurability, and the substrate hooks the
// benches rely on.

#include "experiments/figures.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "sim/cluster_sim.hpp"

#include "collectives/planners.hpp"
#include "core/topology.hpp"

namespace hbsp::exp {
namespace {

FigureConfig tiny() {
  FigureConfig config;
  config.processors = {2, 4};
  config.kbytes = {100, 200};
  return config;
}

TEST(Sweep, TableShapeFollowsConfig) {
  const auto table = gather_root_experiment(tiny());
  ASSERT_EQ(table.processors, (std::vector<int>{2, 4}));
  ASSERT_EQ(table.kbytes, (std::vector<std::size_t>{100, 200}));
  ASSERT_EQ(table.factor.size(), 2u);
  for (const auto& row : table.factor) {
    ASSERT_EQ(row.size(), 2u);
    for (const double f : row) EXPECT_GT(f, 0.0);
  }
}

TEST(Sweep, AllFourExperimentsProduceFiniteFactors) {
  const FigureConfig config = tiny();
  for (const auto& table :
       {gather_root_experiment(config), gather_balance_experiment(config),
        broadcast_root_experiment(config),
        broadcast_balance_experiment(config)}) {
    for (const auto& row : table.factor) {
      for (const double f : row) {
        EXPECT_TRUE(std::isfinite(f));
        EXPECT_GT(f, 0.1);
        EXPECT_LT(f, 10.0);
      }
    }
  }
}

TEST(Sweep, SimParamsPropagate) {
  FigureConfig fast = tiny();
  FigureConfig slow = tiny();
  slow.sim.recv_ratio = 0.95;  // changes the balance of send/receive costs
  EXPECT_NE(gather_root_experiment(fast).factor,
            gather_root_experiment(slow).factor);
}

TEST(Sweep, NoiseSeedChangesOnlyBalanceExperiments) {
  FigureConfig a = tiny();
  FigureConfig b = tiny();
  b.noise.seed = a.noise.seed + 1;
  // Root-choice experiments never consult BYTEmark.
  EXPECT_EQ(gather_root_experiment(a).factor, gather_root_experiment(b).factor);
  // Balance experiments use the estimated c, which depends on the seed.
  EXPECT_NE(gather_balance_experiment(a).factor,
            gather_balance_experiment(b).factor);
}

TEST(SimulateMakespan, MatchesDirectSimulatorUse) {
  const MachineTree tree = make_paper_testbed(4);
  const auto schedule = coll::plan_gather(tree, 10000, {});
  sim::ClusterSim direct{tree, sim::SimParams{}};
  EXPECT_DOUBLE_EQ(simulate_makespan(tree, schedule, sim::SimParams{}),
                   direct.run(schedule).makespan);
}

TEST(RankedTestbed, SharesSumToOne) {
  const FigureConfig config;
  for (const int p : {2, 5, 10}) {
    const MachineTree tree = make_ranked_testbed(p, config);
    double total = 0.0;
    for (int pid = 0; pid < p; ++pid) {
      total += tree.c(tree.processor(pid));
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(RankedTestbed, ZeroNoiseReproducesIdealShares) {
  FigureConfig config;
  config.noise.stddev = 0.0;
  const MachineTree ranked = make_ranked_testbed(6, config);
  const MachineTree ideal = make_paper_testbed(6, config.g, config.L);
  for (int pid = 0; pid < 6; ++pid) {
    EXPECT_NEAR(ranked.c(ranked.processor(pid)), ideal.c(ideal.processor(pid)),
                1e-9);
  }
}

TEST(ImprovementTable, RendersWithUnits) {
  const auto table = gather_root_experiment(tiny());
  const util::Table rendered = table.to_table("t");
  EXPECT_EQ(rendered.rows(), 2u);
  EXPECT_EQ(rendered.columns(), 3u);  // "p" + two sizes
}

}  // namespace
}  // namespace hbsp::exp
