// Determinism suite for the obs span-tracing layer (src/obs/trace*).
//
// The claims under test, in order of importance:
//   1. the exported *virtual-time* trace of a sweep is byte-identical at any
//      worker thread count, and of the serving layer at any shard count —
//      the property the CI trace gate pins against committed goldens;
//   2. span counts reconcile exactly against the sim.* / svc.* counters
//      (count(kSuperstep) == sim.plans, Σ"attempts" == sim.send_attempts,
//      count(kRequest) == svc.requests at 1-in-1 sampling, ...);
//   3. seeded 1-in-N sampling is reproducible and mutes unsampled requests
//      completely;
//   4. tracing compiled in but disabled records nothing and leaves every
//      counter untouched.
//
// Comparative runs clear coll::PlanCache and exp::ScenarioCache first: a
// scenario served from cache replays its metrics but (by design) emits no
// spans, so only cache-cold runs produce comparable traces.

#include "obs/trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "collectives/plan_cache.hpp"
#include "collectives/planners.hpp"
#include "core/topology.hpp"
#include "experiments/figures.hpp"
#include "experiments/scenario_cache.hpp"
#include "obs/metrics.hpp"
#include "obs/trace_export.hpp"
#include "sim/cluster_sim.hpp"
#include "svc/service.hpp"

namespace hbsp {
namespace {

void clear_caches() {
  coll::PlanCache::global().clear();
  exp::ScenarioCache::global().clear();
}

/// The trace goldens' grid: full span-kind coverage at committed-file size.
exp::FigureConfig small_grid(int threads) {
  exp::FigureConfig config;
  config.processors = {2, 6, 10};
  config.kbytes = {100, 500, 1000};
  config.threads = threads;
  return config;
}

/// Cache-cold fig3a small-grid sweep under the global recorder; returns the
/// virtual-only export.
std::string traced_fig3a_json(int threads) {
  clear_caches();
  auto& recorder = obs::TraceRecorder::global();
  recorder.clear();
  recorder.set_enabled(true);
  exp::SweepRunner runner{threads};
  (void)exp::gather_root_experiment(small_grid(threads), runner);
  recorder.set_enabled(false);
  return obs::chrome_trace_json(recorder.snapshot(),
                                obs::TraceFilter::kVirtualOnly);
}

std::string traced_fig4a_json(int threads) {
  clear_caches();
  auto& recorder = obs::TraceRecorder::global();
  recorder.clear();
  recorder.set_enabled(true);
  exp::SweepRunner runner{threads};
  (void)exp::broadcast_root_experiment(small_grid(threads), runner);
  recorder.set_enabled(false);
  return obs::chrome_trace_json(recorder.snapshot(),
                                obs::TraceFilter::kVirtualOnly);
}

std::string read_golden(const std::string& name) {
  const std::string path =
      std::string{HBSPK_SOURCE_DIR} + "/tests/golden/" + name;
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream contents;
  contents << in.rdbuf();
  return contents.str();
}

svc::SimulateRequest simulate_request(
    const std::shared_ptr<const MachineTree>& tree, std::size_t n) {
  coll::PlanRequest spec;
  spec.kind = coll::CollectiveKind::kGather;
  spec.n = n;
  spec.root_pid = 0;
  return svc::SimulateRequest{tree, spec, sim::SimParams{}, nullptr};
}

TEST(TraceRecorder, ParentLinksAndCanonicalOrder) {
  obs::TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.begin_span("t", "outer", obs::SpanKind::kOther,
                      obs::Timebase::kVirtual, 0.0);
  recorder.record_span("t", "child_a", obs::SpanKind::kOther,
                       obs::Timebase::kVirtual, 1.0, 2.0, {{"x", 7}});
  recorder.record_span("t", "child_b", obs::SpanKind::kOther,
                       obs::Timebase::kVirtual, 2.0, 3.0);
  recorder.end_span(4.0);

  const obs::TraceSnapshot snap = recorder.snapshot();
  ASSERT_EQ(snap.spans.size(), 3u);
  // Canonical order sorts by (timebase, track, begin, ...): outer first.
  EXPECT_EQ(snap.spans[0].name, "outer");
  EXPECT_EQ(snap.spans[0].parent, -1);
  EXPECT_EQ(snap.spans[1].name, "child_a");
  EXPECT_EQ(snap.spans[1].parent, 0);
  EXPECT_EQ(snap.spans[2].name, "child_b");
  EXPECT_EQ(snap.spans[2].parent, 0);
  ASSERT_EQ(snap.tracks.size(), 1u);
  EXPECT_EQ(snap.spans[0].duration(), 4.0);
  EXPECT_EQ(snap.arg_total(obs::SpanKind::kOther, "x"), 7);
}

TEST(TraceRecorder, OpenSpansAreExcludedFromSnapshots) {
  obs::TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.begin_span("t", "never_closed", obs::SpanKind::kOther,
                      obs::Timebase::kVirtual, 0.0);
  recorder.record_span("t", "complete", obs::SpanKind::kOther,
                       obs::Timebase::kVirtual, 1.0, 2.0);
  const obs::TraceSnapshot snap = recorder.snapshot();
  ASSERT_EQ(snap.spans.size(), 1u);
  EXPECT_EQ(snap.spans[0].name, "complete");
  // The open parent cannot be referenced: the link resolves to -1.
  EXPECT_EQ(snap.spans[0].parent, -1);
  EXPECT_EQ(recorder.span_count(), 1u);
}

TEST(TraceRecorder, MergeIsThreadOrderIndependent) {
  // Two threads, two tracks, interleaved recording: the snapshot must sort
  // purely by content, so it is identical whichever thread ran first.
  const auto run = [](bool swap) {
    obs::TraceRecorder recorder;
    recorder.set_enabled(true);
    const auto record = [&recorder](const std::string& track) {
      const double offset = track == "alpha" ? 0.0 : 100.0;
      for (int i = 0; i < 50; ++i) {
        recorder.record_span(track, "s" + std::to_string(i),
                             obs::SpanKind::kOther, obs::Timebase::kVirtual,
                             offset + i, offset + i + 1);
      }
    };
    std::thread a{[&] { record(swap ? "beta" : "alpha"); }};
    std::thread b{[&] { record(swap ? "alpha" : "beta"); }};
    a.join();
    b.join();
    return obs::chrome_trace_json(recorder.snapshot());
  };
  // Identical span content, tracks assigned to opposite threads: the merge
  // must serialise byte-identically.
  EXPECT_EQ(run(false), run(true));
}

TEST(TraceRecorder, SampledIsSeededAndReproducible) {
  // every <= 1 always samples.
  for (std::uint64_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(obs::TraceRecorder::sampled(42, i, 1));
  }
  // Same (seed, ordinal, every) -> same decision, and a fixed seed gives a
  // stable subset across calls.
  std::vector<bool> first;
  std::size_t hits = 0;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    first.push_back(obs::TraceRecorder::sampled(2001, i, 8));
    if (first.back()) ++hits;
  }
  for (std::uint64_t i = 0; i < 4096; ++i) {
    EXPECT_EQ(obs::TraceRecorder::sampled(2001, i, 8), first[i]);
  }
  // Roughly 1-in-8 over many ordinals (loose 2x bounds).
  EXPECT_GT(hits, 4096u / 16);
  EXPECT_LT(hits, 4096u / 4);
  // A different seed selects a different subset.
  std::size_t differs = 0;
  for (std::uint64_t i = 0; i < 4096; ++i) {
    if (obs::TraceRecorder::sampled(7, i, 8) != first[i]) ++differs;
  }
  EXPECT_GT(differs, 0u);
}

TEST(TraceDeterminism, VirtualSweepTraceIsByteIdenticalAcrossThreadCounts) {
  const std::string one = traced_fig3a_json(1);
  const std::string four = traced_fig3a_json(4);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, four);
}

// The goldens were regenerated at --threads 8 (ci/regen_goldens.sh); byte
// identity at any thread count means a 2-thread in-process run must still
// match them exactly. A mismatch means sim behaviour (or the exporter's
// serialisation) changed without re-pinning.
TEST(TraceDeterminism, Fig3aVirtualTraceMatchesCommittedGolden) {
  EXPECT_EQ(traced_fig3a_json(2), read_golden("fig3a_trace.json"));
}

TEST(TraceDeterminism, Fig4aVirtualTraceMatchesCommittedGolden) {
  EXPECT_EQ(traced_fig4a_json(2), read_golden("fig4a_trace.json"));
}

TEST(TraceDeterminism, SimSpanCountsReconcileWithCounters) {
  clear_caches();
  auto& registry = obs::Registry::global();
  auto& recorder = obs::TraceRecorder::global();
  registry.reset();
  recorder.clear();
  recorder.set_enabled(true);
  exp::SweepRunner runner{2};
  (void)exp::gather_root_experiment(small_grid(2), runner);
  recorder.set_enabled(false);

  const obs::TraceSnapshot trace = recorder.snapshot();
  const obs::MetricsSnapshot counters = registry.snapshot();
  EXPECT_EQ(trace.count(obs::SpanKind::kSuperstep),
            counters.counter("sim.plans"));
  EXPECT_EQ(trace.count(obs::SpanKind::kPhase), counters.counter("sim.phases"));
  EXPECT_EQ(trace.count(obs::SpanKind::kBarrier),
            counters.counter("sim.barriers"));
  EXPECT_EQ(
      static_cast<std::uint64_t>(
          trace.arg_total(obs::SpanKind::kMessageBatch, "attempts")),
      counters.counter("sim.send_attempts"));
  EXPECT_EQ(
      static_cast<std::uint64_t>(
          trace.arg_total(obs::SpanKind::kMessageBatch, "retries")),
      counters.counter("sim.retries"));
  EXPECT_EQ(trace.count(obs::SpanKind::kCell), counters.counter("sweep.cells"));
}

TEST(TraceDeterminism, DirectSimReconcilesIncludingDeliveries) {
  clear_caches();
  auto& registry = obs::Registry::global();
  auto& recorder = obs::TraceRecorder::global();
  registry.reset();
  recorder.clear();
  recorder.set_enabled(true);
  const MachineTree tree = make_paper_testbed(6);
  const CommSchedule schedule = coll::plan_gather(tree, 50000, {});
  sim::ClusterSim sim{tree, sim::SimParams{}};
  (void)sim.run(schedule);
  recorder.set_enabled(false);

  const obs::TraceSnapshot trace = recorder.snapshot();
  const obs::MetricsSnapshot counters = registry.snapshot();
  EXPECT_GT(trace.spans.size(), 0u);
  EXPECT_EQ(trace.count(obs::SpanKind::kSuperstep),
            counters.counter("sim.plans"));
  EXPECT_EQ(trace.count(obs::SpanKind::kPhase), counters.counter("sim.phases"));
  EXPECT_EQ(trace.count(obs::SpanKind::kBarrier),
            counters.counter("sim.barriers"));
  EXPECT_EQ(
      static_cast<std::uint64_t>(
          trace.arg_total(obs::SpanKind::kMessageBatch, "attempts")),
      counters.counter("sim.send_attempts"));
  EXPECT_EQ(
      static_cast<std::uint64_t>(
          trace.arg_total(obs::SpanKind::kMessageBatch, "delivered")),
      2 * counters.counter("sim.messages_delivered"));  // send + receive batch
}

TEST(TraceDeterminism, SvcRequestSpansReconcileWithCounters) {
  clear_caches();
  auto& registry = obs::Registry::global();
  auto& recorder = obs::TraceRecorder::global();
  registry.reset();
  recorder.clear();
  recorder.set_enabled(true);

  const auto tree =
      std::make_shared<const MachineTree>(make_paper_testbed(6));
  {
    svc::Service service{svc::ServiceConfig{2, 2, 4}};
    std::vector<svc::Ticket> tickets;
    // Distinct computes, a coalesced twin, an expired deadline, and enough
    // backlog to shed on capacity: every svc.requests increment must yield
    // exactly one kRequest span.
    for (std::size_t i = 0; i < 4; ++i) {
      tickets.push_back(service.submit(simulate_request(tree, 3000 + i)));
    }
    tickets.push_back(service.submit(simulate_request(tree, 3000)));
    tickets.push_back(
        service.submit(simulate_request(tree, 9999), svc::Deadline::expired()));
    tickets.push_back(service.submit(simulate_request(tree, 8888)));
    service.pump();
    for (auto& ticket : tickets) (void)ticket.response.get();
  }
  recorder.set_enabled(false);

  const obs::TraceSnapshot trace = recorder.snapshot();
  const obs::MetricsSnapshot counters = registry.snapshot();
  EXPECT_EQ(trace.count(obs::SpanKind::kRequest),
            counters.counter("svc.requests"));
  EXPECT_EQ(counters.counter("svc.requests"), 7u);
}

TEST(TraceDeterminism, SvcVirtualTraceIsByteIdenticalAcrossShardCounts) {
  const auto run = [](int threads, int shards) {
    clear_caches();
    auto& recorder = obs::TraceRecorder::global();
    recorder.clear();
    recorder.set_enabled(true);
    const auto tree =
        std::make_shared<const MachineTree>(make_paper_testbed(8));
    {
      svc::Service service{svc::ServiceConfig{threads, shards, 64}};
      std::vector<svc::Ticket> tickets;
      // Distinct scenarios: a shared one would simulate under whichever
      // request ran first and hit cache in the other — order-dependent.
      for (std::size_t i = 0; i < 6; ++i) {
        tickets.push_back(service.submit(simulate_request(tree, 4000 + 7 * i)));
      }
      service.pump();
      for (auto& ticket : tickets) (void)ticket.response.get();
    }
    recorder.set_enabled(false);
    return obs::chrome_trace_json(recorder.snapshot(),
                                  obs::TraceFilter::kVirtualOnly);
  };
  const std::string one = run(1, 1);
  const std::string eight = run(4, 8);
  EXPECT_FALSE(one.empty());
  EXPECT_EQ(one, eight);
}

TEST(TraceSampling, UnsampledRequestsAreFullyMuted) {
  const auto traced_requests = [](std::uint64_t every, std::uint64_t seed) {
    clear_caches();
    auto& recorder = obs::TraceRecorder::global();
    recorder.clear();
    recorder.set_enabled(true);
    const auto tree =
        std::make_shared<const MachineTree>(make_paper_testbed(6));
    {
      svc::ServiceConfig config{2, 2, 64};
      config.trace_sample_every = every;
      config.trace_seed = seed;
      svc::Service service{config};
      std::vector<svc::Ticket> tickets;
      for (std::size_t i = 0; i < 12; ++i) {
        tickets.push_back(service.submit(simulate_request(tree, 5000 + i)));
      }
      service.pump();
      for (auto& ticket : tickets) (void)ticket.response.get();
    }
    recorder.set_enabled(false);
    return recorder.snapshot();
  };

  const obs::TraceSnapshot sampled = traced_requests(4, 11);
  std::size_t expected = 0;
  for (std::uint64_t i = 0; i < 12; ++i) {
    if (obs::TraceRecorder::sampled(11, i, 4)) ++expected;
  }
  EXPECT_EQ(sampled.count(obs::SpanKind::kRequest), expected);
  // Every span (request roots, stages, nested sim spans) belongs to a
  // sampled ordinal's track: unsampled computes leak nothing.
  for (const obs::SpanView& span : sampled.spans) {
    ASSERT_GE(span.track.size(), 9u) << span.track;
    const std::uint64_t ordinal =
        std::stoull(span.track.substr(3, 6));
    EXPECT_TRUE(obs::TraceRecorder::sampled(11, ordinal, 4)) << span.track;
  }
  // Same seed -> the same subset; the run is reproducible.
  const obs::TraceSnapshot again = traced_requests(4, 11);
  EXPECT_EQ(again.count(obs::SpanKind::kRequest), expected);
  EXPECT_EQ(obs::chrome_trace_json(again, obs::TraceFilter::kVirtualOnly),
            obs::chrome_trace_json(sampled, obs::TraceFilter::kVirtualOnly));
}

TEST(TraceDisabled, RecordsNothingAndLeavesCountersUntouched) {
  auto& registry = obs::Registry::global();
  auto& recorder = obs::TraceRecorder::global();

  const auto run = [&](bool tracing) {
    clear_caches();
    registry.reset();
    recorder.clear();
    recorder.set_enabled(tracing);
    exp::SweepRunner runner{2};
    (void)exp::gather_root_experiment(small_grid(2), runner);
    recorder.set_enabled(false);
    return registry.snapshot();
  };

  const obs::MetricsSnapshot with = run(true);
  const std::size_t traced_spans = recorder.span_count();
  const obs::MetricsSnapshot without = run(false);
  EXPECT_GT(traced_spans, 0u);
  EXPECT_EQ(recorder.span_count(), 0u);

  // Tracing must not perturb a single counter (the BENCH byte-identity
  // guarantee); wall-time gauges/histograms are exempt by design.
  ASSERT_EQ(with.counters.size(), without.counters.size());
  for (std::size_t i = 0; i < with.counters.size(); ++i) {
    EXPECT_EQ(with.counters[i].name, without.counters[i].name);
    EXPECT_EQ(with.counters[i].value, without.counters[i].value)
        << with.counters[i].name;
  }
}

TEST(TraceExport, ChromeJsonShapeAndFiltering) {
  obs::TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.begin_span("wallside", "request", obs::SpanKind::kRequest,
                      obs::Timebase::kWall, 10.0);
  recorder.record_span("virtside", "phase", obs::SpanKind::kPhase,
                       obs::Timebase::kVirtual, 0.5, 1.25, {{"plans", 3}});
  recorder.end_span(11.0);

  const obs::TraceSnapshot snap = recorder.snapshot();
  const std::string all = obs::chrome_trace_json(snap);
  EXPECT_NE(all.find("\"displayTimeUnit\": \"ms\""), std::string::npos);
  EXPECT_NE(all.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(all.find("\"name\": \"thread_name\""), std::string::npos);
  EXPECT_NE(all.find("\"cat\": \"virtual\""), std::string::npos);
  EXPECT_NE(all.find("\"cat\": \"wall\""), std::string::npos);
  EXPECT_NE(all.find("\"plans\": 3"), std::string::npos);
  // The virtual phase is a child of the wall request in the full export...
  EXPECT_NE(all.find("\"parent\": "), std::string::npos);

  const std::string virt =
      obs::chrome_trace_json(snap, obs::TraceFilter::kVirtualOnly);
  // ...but with the wall parent filtered out, the link is omitted, and no
  // wall span or track leaks into the golden-comparable export.
  EXPECT_EQ(virt.find("\"parent\": "), std::string::npos);
  EXPECT_EQ(virt.find("wallside"), std::string::npos);
  EXPECT_EQ(virt.find("\"cat\": \"wall\""), std::string::npos);
  EXPECT_NE(virt.find("\"cat\": \"virtual\""), std::string::npos);

  // Byte stability: the same snapshot serialises identically every time.
  EXPECT_EQ(all, obs::chrome_trace_json(snap));
}

TEST(TraceExport, SelfTimeSubtractsSameTimebaseChildrenOnly) {
  obs::TraceRecorder recorder;
  recorder.set_enabled(true);
  recorder.begin_span("t", "outer", obs::SpanKind::kOther,
                      obs::Timebase::kVirtual, 0.0);
  recorder.record_span("t", "inner", obs::SpanKind::kOther,
                       obs::Timebase::kVirtual, 1.0, 4.0);
  recorder.record_span("t", "wall_child", obs::SpanKind::kOther,
                       obs::Timebase::kWall, 0.0, 100.0);
  recorder.end_span(10.0);

  const util::Table table = obs::self_time_table(recorder.snapshot(), 10);
  // outer: total 10, self 10 - 3 (inner) = 7; the wall child measures a
  // different clock and must not subtract.
  std::ostringstream stream;
  table.render(stream);
  const std::string text = stream.str();
  EXPECT_NE(text.find("outer"), std::string::npos);
  EXPECT_NE(text.find("7.000000"), std::string::npos);
}

}  // namespace
}  // namespace hbsp
