// Tests for the seeded load-test harness (src/svc/load_harness). The
// deterministic half of a LoadReport — outcome tally and content checksum —
// must be a pure function of (seed, qps, duration, mode, expired_fraction),
// invariant under executor threads and shard count. The measured half
// (wall time, throughput, latency percentiles) is only sanity-checked.

#include "svc/load_harness.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace hbsp::svc {
namespace {

struct Tally {
  std::uint64_t submitted;
  std::uint64_t completed;
  std::uint64_t coalesced;
  std::uint64_t shed_queue_full;
  std::uint64_t shed_deadline;
  std::uint64_t failed;
  std::uint64_t content_checksum;

  bool operator==(const Tally&) const = default;
};

Tally tally_of(const LoadReport& report) {
  return {report.submitted,       report.completed,    report.coalesced,
          report.shed_queue_full, report.shed_deadline, report.failed,
          report.content_checksum};
}

LoadConfig base_config(LoadMode mode) {
  LoadConfig config;
  config.mode = mode;
  config.qps = 200.0;
  config.duration = 0.5;
  config.queue_capacity = 12;
  config.expired_fraction = 0.125;
  return config;
}

TEST(LoadGen, TallyInvariantAcrossThreadsAndShards) {
  for (const LoadMode mode : {LoadMode::kOpenLoop, LoadMode::kClosedLoop}) {
    LoadConfig reference_config = base_config(mode);
    reference_config.threads = 1;
    reference_config.shards = 1;
    const Tally reference = tally_of(run_load(reference_config));
    EXPECT_GT(reference.submitted, 0u) << to_string(mode);

    LoadConfig wide = base_config(mode);
    wide.threads = 4;
    wide.shards = 8;
    EXPECT_EQ(tally_of(run_load(wide)), reference) << to_string(mode);
  }
}

TEST(LoadGen, SeedChangesChecksum) {
  LoadConfig config = base_config(LoadMode::kOpenLoop);
  const LoadReport a = run_load(config);
  config.seed ^= 0x9e3779b97f4a7c15ULL;
  const LoadReport b = run_load(config);
  EXPECT_NE(a.content_checksum, b.content_checksum);
}

TEST(LoadGen, OutcomesPartitionSubmissions) {
  const LoadReport report = run_load(base_config(LoadMode::kOpenLoop));
  EXPECT_EQ(report.completed + report.shed_queue_full + report.shed_deadline +
                report.failed,
            report.submitted);
}

TEST(LoadGen, ExpiredFractionProducesDeadlineSheds) {
  LoadConfig config = base_config(LoadMode::kOpenLoop);
  EXPECT_GT(run_load(config).shed_deadline, 0u);
  config.expired_fraction = 0.0;
  EXPECT_EQ(run_load(config).shed_deadline, 0u);
}

TEST(LoadGen, TightQueueShedsOpenLoopBursts) {
  // 400 qps over 0.05 s ticks = 20 arrivals per burst against a 12-slot
  // queue: deterministic queue-full sheds every round.
  LoadConfig config = base_config(LoadMode::kOpenLoop);
  config.qps = 400.0;
  config.expired_fraction = 0.0;
  EXPECT_GT(run_load(config).shed_queue_full, 0u);
}

TEST(LoadGen, PercentilesAreOrderedAndMeasuredFieldsSane) {
  const LoadReport report = run_load(base_config(LoadMode::kClosedLoop));
  ASSERT_GT(report.completed, 0u);
  EXPECT_LE(report.latency_p50, report.latency_p95);
  EXPECT_LE(report.latency_p95, report.latency_p99);
  EXPECT_GE(report.latency_p50, 0.0);
  EXPECT_GT(report.wall_seconds, 0.0);
  EXPECT_GT(report.throughput_rps, 0.0);
}

TEST(LoadGen, RejectsInvalidConfigs) {
  LoadConfig bad = base_config(LoadMode::kOpenLoop);
  bad.qps = 0.0;
  EXPECT_THROW((void)run_load(bad), std::invalid_argument);

  bad = base_config(LoadMode::kOpenLoop);
  bad.duration = -1.0;
  EXPECT_THROW((void)run_load(bad), std::invalid_argument);

  bad = base_config(LoadMode::kClosedLoop);
  bad.clients = 0;
  EXPECT_THROW((void)run_load(bad), std::invalid_argument);

  bad = base_config(LoadMode::kOpenLoop);
  bad.expired_fraction = 1.5;
  EXPECT_THROW((void)run_load(bad), std::invalid_argument);

  bad = base_config(LoadMode::kOpenLoop);
  bad.threads = 0;
  EXPECT_THROW((void)run_load(bad), std::invalid_argument);
}

}  // namespace
}  // namespace hbsp::svc
