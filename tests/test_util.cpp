// Unit tests for Table, CsvWriter, Cli and unit formatting.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "util/cli.hpp"
#include "util/csv.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace hbsp::util {
namespace {

TEST(Table, RendersAlignedColumns) {
  Table table{"demo"};
  table.set_header({"name", "value"});
  table.add_row({"alpha", "1"});
  table.add_row({"b", "22222"});
  std::ostringstream out;
  table.render(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("demo"), std::string::npos);
  EXPECT_NE(text.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(text.find("| b     | 22222 |"), std::string::npos);
}

TEST(Table, RejectsMismatchedRowWidth) {
  Table table{"t"};
  table.set_header({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), std::invalid_argument);
}

TEST(Table, RejectsEmptyHeader) {
  Table table{"t"};
  EXPECT_THROW(table.set_header({}), std::invalid_argument);
}

TEST(Table, RejectsHeaderAfterRows) {
  Table table{"t"};
  table.set_header({"a"});
  table.add_row({"1"});
  EXPECT_THROW(table.set_header({"b"}), std::logic_error);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(static_cast<long long>(-42)), "-42");
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(csv_escape("plain"), "plain");
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_escape("line\nbreak"), "\"line\nbreak\"");
}

TEST(Csv, WritesRowsToFile) {
  const std::string path = testing::TempDir() + "hbspk_csv_test.csv";
  {
    CsvWriter csv{path};
    csv.write_row({"a", "b,c"});
    csv.write_row({"1", "2"});
  }
  std::ifstream in{path};
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), "a,\"b,c\"\n1,2\n");
  std::remove(path.c_str());
}

TEST(Cli, ParsesAllFlagForms) {
  // --gamma is trailing, so it is a bare boolean; "pos" right after --beta's
  // value is positional.
  const char* argv[] = {"prog", "--alpha=1", "--beta", "2", "pos", "--gamma"};
  Cli cli{6, argv};
  cli.allow("alpha").allow("beta").allow("gamma");
  cli.validate();
  EXPECT_EQ(cli.get_int("alpha", 0), 1);
  EXPECT_EQ(cli.get("beta", ""), "2");
  EXPECT_TRUE(cli.get_bool("gamma", false));
  ASSERT_EQ(cli.positional().size(), 1u);
  EXPECT_EQ(cli.positional()[0], "pos");
}

TEST(Cli, RejectsUnknownFlags) {
  const char* argv[] = {"prog", "--oops=1"};
  Cli cli{2, argv};
  cli.allow("fine");
  EXPECT_THROW(cli.validate(), std::invalid_argument);
}

TEST(Cli, PositiveIntAcceptsThreadsValues) {
  const char* argv[] = {"prog", "--threads=4", "--big", "123456"};
  Cli cli{4, argv};
  EXPECT_EQ(cli.get_positive_int("threads", 1), 4);
  EXPECT_EQ(cli.get_positive_int("big", 1), 123456);
  EXPECT_EQ(cli.get_positive_int("absent", 3), 3);  // fallback when missing
}

TEST(Cli, PositiveIntRejectsZero) {
  const char* argv[] = {"prog", "--threads=0"};
  Cli cli{2, argv};
  EXPECT_THROW((void)cli.get_positive_int("threads", 1), std::invalid_argument);
}

TEST(Cli, PositiveIntRejectsNegatives) {
  const char* argv[] = {"prog", "--threads=-2"};
  Cli cli{2, argv};
  EXPECT_THROW((void)cli.get_positive_int("threads", 1), std::invalid_argument);
}

TEST(Cli, PositiveIntRejectsNonNumeric) {
  for (const char* bad : {"--threads=four", "--threads=4x", "--threads=",
                          "--threads= 4", "--threads=4.5"}) {
    const char* argv[] = {"prog", bad};
    Cli cli{2, argv};
    EXPECT_THROW((void)cli.get_positive_int("threads", 1),
                 std::invalid_argument)
        << bad;
  }
}

TEST(Cli, PositiveIntRejectsBareBooleanForm) {
  // A trailing `--threads` parses as the boolean "true", which is not a
  // thread count.
  const char* argv[] = {"prog", "--threads"};
  Cli cli{2, argv};
  EXPECT_THROW((void)cli.get_positive_int("threads", 1), std::invalid_argument);
}

TEST(Cli, PositiveIntRejectsOverflow) {
  const char* argv[] = {"prog", "--threads=99999999999999999999999999"};
  Cli cli{2, argv};
  EXPECT_THROW((void)cli.get_positive_int("threads", 1), std::invalid_argument);
}

TEST(Cli, PositiveDoubleAcceptsRates) {
  const char* argv[] = {"prog", "--qps=250.5", "--duration", "0.25"};
  Cli cli{4, argv};
  EXPECT_DOUBLE_EQ(cli.get_positive_double("qps", 1.0), 250.5);
  EXPECT_DOUBLE_EQ(cli.get_positive_double("duration", 1.0), 0.25);
  EXPECT_DOUBLE_EQ(cli.get_positive_double("absent", 3.5), 3.5);
}

TEST(Cli, PositiveDoubleRejectsNonPositiveAndJunk) {
  for (const char* bad : {"--qps=0", "--qps=-1.5", "--qps=fast", "--qps=2x",
                          "--qps=", "--qps=nan", "--qps=inf"}) {
    const char* argv[] = {"prog", bad};
    Cli cli{2, argv};
    EXPECT_THROW((void)cli.get_positive_double("qps", 1.0),
                 std::invalid_argument)
        << bad;
  }
}

TEST(Cli, PositiveDoubleRejectsBareBooleanForm) {
  const char* argv[] = {"prog", "--qps"};
  Cli cli{2, argv};
  EXPECT_THROW((void)cli.get_positive_double("qps", 1.0),
               std::invalid_argument);
}

TEST(Cli, DefaultsApplyWhenMissing) {
  const char* argv[] = {"prog"};
  Cli cli{1, argv};
  EXPECT_EQ(cli.get_int("absent", 7), 7);
  EXPECT_DOUBLE_EQ(cli.get_double("absent", 2.5), 2.5);
  EXPECT_FALSE(cli.get_bool("absent", false));
  EXPECT_FALSE(cli.has("absent"));
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(999), "999 B");
  EXPECT_EQ(format_bytes(1500), "1.5 KB");
  EXPECT_EQ(format_bytes(2'000'000), "2.0 MB");
  EXPECT_EQ(format_bytes(3'100'000'000ULL), "3.1 GB");
}

TEST(Units, FormatTimePicksScale) {
  EXPECT_EQ(format_time(2.0), "2.000 s");
  EXPECT_EQ(format_time(0.0025), "2.500 ms");
  EXPECT_EQ(format_time(2.5e-6), "2.500 us");
  EXPECT_EQ(format_time(5e-9), "5.0 ns");
}

TEST(Units, IntsInKbytes) {
  // The paper's problem size: 100 KB of 4-byte integers.
  EXPECT_EQ(ints_in_kbytes(100), 25000u);
  EXPECT_EQ(ints_in_kbytes(1000), 250000u);
}

}  // namespace
}  // namespace hbsp::util
