// The planner/cost-model/closed-form agreement contract (DESIGN.md §2):
// for every collective, pricing the planner's CommSchedule with CostModel
// must equal the independent closed form in core/analysis — exactly, since
// both sides use the same integer shares and the same max() structure.

#include <gtest/gtest.h>

#include "collectives/baselines.hpp"
#include "collectives/planners.hpp"
#include "core/analysis.hpp"
#include "core/cost_model.hpp"
#include "core/topology.hpp"

namespace hbsp {
namespace {

using analysis::Shares;
using analysis::TopPhase;

struct Case {
  const char* name;
  std::size_t n;
  Shares shares;
};

class FlatAgreement : public ::testing::TestWithParam<std::tuple<int, Case>> {
 protected:
  [[nodiscard]] MachineTree tree() const {
    return make_paper_testbed(std::get<0>(GetParam()));
  }
  [[nodiscard]] std::size_t n() const { return std::get<1>(GetParam()).n; }
  [[nodiscard]] Shares shares() const { return std::get<1>(GetParam()).shares; }
};

TEST_P(FlatAgreement, Gather) {
  const MachineTree t = tree();
  const CostModel model{t};
  for (const int root : {t.coordinator_pid(t.root()), t.slowest_pid(t.root())}) {
    const auto schedule =
        coll::plan_gather(t, n(), {.root_pid = root, .shares = shares()});
    validate_schedule(t, schedule);
    const auto closed = analysis::hbsp1_gather(t, t.root(), root, n(), shares());
    EXPECT_DOUBLE_EQ(model.cost(schedule).total(), closed.total())
        << "root=" << root;
  }
}

TEST_P(FlatAgreement, BroadcastTwoPhase) {
  const MachineTree t = tree();
  const CostModel model{t};
  for (const int root : {t.coordinator_pid(t.root()), t.slowest_pid(t.root())}) {
    const auto schedule = coll::plan_broadcast(
        t, n(),
        {.root_pid = root, .top_phase = TopPhase::kTwoPhase, .shares = shares()});
    validate_schedule(t, schedule);
    const auto closed =
        analysis::hbsp1_broadcast_two_phase(t, t.root(), root, n(), shares());
    EXPECT_DOUBLE_EQ(model.cost(schedule).total(), closed.total())
        << "root=" << root;
  }
}

TEST_P(FlatAgreement, BroadcastOnePhase) {
  const MachineTree t = tree();
  const CostModel model{t};
  const int root = t.coordinator_pid(t.root());
  const auto schedule = coll::plan_broadcast(
      t, n(),
      {.root_pid = root, .top_phase = TopPhase::kOnePhase, .shares = shares()});
  validate_schedule(t, schedule);
  const auto closed = analysis::hbsp1_broadcast_one_phase(t, t.root(), root, n());
  EXPECT_DOUBLE_EQ(model.cost(schedule).total(), closed.total());
}

TEST_P(FlatAgreement, Scatter) {
  const MachineTree t = tree();
  const CostModel model{t};
  for (const int root : {t.coordinator_pid(t.root()), t.slowest_pid(t.root())}) {
    const auto schedule =
        coll::plan_scatter(t, n(), {.root_pid = root, .shares = shares()});
    validate_schedule(t, schedule);
    const auto closed = analysis::hbsp1_scatter(t, t.root(), root, n(), shares());
    EXPECT_DOUBLE_EQ(model.cost(schedule).total(), closed.total())
        << "root=" << root;
  }
}

TEST_P(FlatAgreement, Allgather) {
  const MachineTree t = tree();
  const CostModel model{t};
  const auto schedule = coll::plan_allgather(t, n(), shares());
  validate_schedule(t, schedule);
  EXPECT_DOUBLE_EQ(model.cost(schedule).total(),
                   analysis::hbsp1_allgather(t, t.root(), n(), shares()).total());
}

TEST_P(FlatAgreement, Reduce) {
  const MachineTree t = tree();
  const CostModel model{t};
  const int root = t.coordinator_pid(t.root());
  const auto schedule =
      coll::plan_reduce(t, n(), {.root_pid = root, .shares = shares()});
  validate_schedule(t, schedule);
  EXPECT_DOUBLE_EQ(
      model.cost(schedule).total(),
      analysis::hbsp1_reduce(t, t.root(), root, n(), shares()).total());
}

TEST_P(FlatAgreement, Scan) {
  const MachineTree t = tree();
  const CostModel model{t};
  const auto schedule = coll::plan_scan(t, n(), shares());
  validate_schedule(t, schedule);
  EXPECT_DOUBLE_EQ(model.cost(schedule).total(),
                   analysis::hbsp1_scan(t, t.root(), n(), shares()).total());
}

TEST_P(FlatAgreement, Alltoall) {
  const MachineTree t = tree();
  const CostModel model{t};
  const auto schedule = coll::plan_alltoall(t, n(), shares());
  validate_schedule(t, schedule);
  EXPECT_DOUBLE_EQ(model.cost(schedule).total(),
                   analysis::hbsp1_alltoall(t, t.root(), n(), shares()).total());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, FlatAgreement,
    ::testing::Combine(
        ::testing::Values(2, 3, 5, 10),
        ::testing::Values(Case{"tiny_equal", 7, Shares::kEqual},
                          Case{"tiny_balanced", 7, Shares::kBalanced},
                          Case{"mid_equal", 25000, Shares::kEqual},
                          Case{"mid_balanced", 25000, Shares::kBalanced},
                          Case{"big_balanced", 250000, Shares::kBalanced},
                          Case{"zero", 0, Shares::kEqual})),
    [](const auto& param_info) {
      return "p" + std::to_string(std::get<0>(param_info.param)) + "_" +
             std::get<1>(param_info.param).name;
    });

// --- HBSP^2 agreement on the Figure 1 machine ---------------------------------

class Hbsp2Agreement : public ::testing::TestWithParam<std::size_t> {};

TEST_P(Hbsp2Agreement, Gather) {
  const MachineTree t = make_figure1_cluster();
  const CostModel model{t};
  for (const Shares shares : {Shares::kEqual, Shares::kBalanced}) {
    const auto schedule = coll::plan_gather(
        t, GetParam(), {.root_pid = -1, .shares = shares});
    validate_schedule(t, schedule);
    const auto closed = analysis::hbsp2_gather(t, GetParam(), shares);
    EXPECT_DOUBLE_EQ(model.cost(schedule).total(), closed.total());
  }
}

TEST_P(Hbsp2Agreement, BroadcastBothTopPhases) {
  const MachineTree t = make_figure1_cluster();
  const CostModel model{t};
  for (const TopPhase top : {TopPhase::kOnePhase, TopPhase::kTwoPhase}) {
    const auto schedule = coll::plan_broadcast(
        t, GetParam(),
        {.root_pid = -1, .top_phase = top, .shares = Shares::kEqual});
    validate_schedule(t, schedule);
    const auto closed = analysis::hbsp2_broadcast(t, GetParam(), top);
    EXPECT_DOUBLE_EQ(model.cost(schedule).total(), closed.total());
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, Hbsp2Agreement,
                         ::testing::Values(0, 1, 9, 1000, 90000, 250000));

// --- baselines are just parameterisations --------------------------------------

TEST(Baselines, MatchExplicitOptions) {
  const MachineTree t = make_paper_testbed(5);
  const CostModel model{t};
  EXPECT_DOUBLE_EQ(
      model.cost(coll::bsp::plan_gather(t, 1000)).total(),
      model
          .cost(coll::plan_gather(t, 1000,
                                  {.root_pid = 0, .shares = Shares::kEqual}))
          .total());
  EXPECT_DOUBLE_EQ(
      model.cost(coll::bsp::plan_broadcast(t, 1000)).total(),
      model
          .cost(coll::plan_broadcast(t, 1000,
                                     {.root_pid = 0,
                                      .top_phase = TopPhase::kTwoPhase,
                                      .shares = Shares::kEqual}))
          .total());
}

}  // namespace
}  // namespace hbsp
