// Tests for the HBSP^k applications: correctness against serial references,
// the balanced-workload advantage, and robustness on odd shapes.

#include <gtest/gtest.h>

#include <numeric>

#include "apps/histogram.hpp"
#include "apps/matvec.hpp"
#include "apps/sample_sort.hpp"
#include "core/topology.hpp"
#include "util/rng.hpp"

namespace hbsp::apps {
namespace {

// --- sample sort ---------------------------------------------------------------

class SampleSortCase
    : public ::testing::TestWithParam<std::tuple<int, std::size_t>> {};

TEST_P(SampleSortCase, SortsCorrectly) {
  const auto [p, n] = GetParam();
  const MachineTree machine = make_paper_testbed(p);
  const auto input = util::uniform_int_workload(n, 42 + n);
  const SortRun run =
      run_sample_sort(machine, input, coll::Shares::kBalanced);
  EXPECT_TRUE(run.valid);
  EXPECT_GT(run.virtual_seconds, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SampleSortCase,
    ::testing::Combine(::testing::Values(2, 5, 10),
                       ::testing::Values<std::size_t>(0, 1, 13, 5000)),
    [](const auto& param_info) {
      return "p" + std::to_string(std::get<0>(param_info.param)) + "_n" +
             std::to_string(std::get<1>(param_info.param));
    });

TEST(SampleSort, HandlesDuplicateHeavyInput) {
  const MachineTree machine = make_paper_testbed(6);
  std::vector<std::int32_t> input(4000, 7);
  for (std::size_t i = 0; i < input.size(); i += 3) {
    input[i] = static_cast<std::int32_t>(i % 5);
  }
  EXPECT_TRUE(run_sample_sort(machine, input, coll::Shares::kBalanced).valid);
}

TEST(SampleSort, BalancedBeatsEqualOnVirtualTime) {
  const MachineTree machine = make_paper_testbed(8);
  const auto input = util::uniform_int_workload(40000, 9);
  const SortRun balanced =
      run_sample_sort(machine, input, coll::Shares::kBalanced);
  const SortRun equal = run_sample_sort(machine, input, coll::Shares::kEqual);
  ASSERT_TRUE(balanced.valid);
  ASSERT_TRUE(equal.valid);
  EXPECT_LT(balanced.virtual_seconds, equal.virtual_seconds);
}

TEST(SampleSort, WorksOnHierarchicalMachines) {
  const MachineTree machine = make_figure1_cluster();
  const auto input = util::uniform_int_workload(3000, 17);
  EXPECT_TRUE(run_sample_sort(machine, input, coll::Shares::kBalanced).valid);
}

// --- histogram -------------------------------------------------------------------

TEST(Histogram, MatchesSerialReference) {
  const MachineTree machine = make_paper_testbed(7);
  util::Rng rng{5};
  std::vector<double> samples;
  for (int i = 0; i < 10000; ++i) samples.push_back(rng.uniform(0.0, 1.0));
  const HistogramSpec spec{.bins = 32, .lo = 0.0, .hi = 1.0};
  const HistogramRun run =
      run_histogram(machine, samples, spec, coll::Shares::kBalanced);
  ASSERT_TRUE(run.valid);
  EXPECT_EQ(run.counts, histogram_serial(samples, spec));
}

TEST(Histogram, ClampsOutOfRangeSamples) {
  const MachineTree machine = make_paper_testbed(3);
  const std::vector<double> samples{-5.0, 0.5, 99.0, 0.25, 1.0};
  const HistogramSpec spec{.bins = 4, .lo = 0.0, .hi = 1.0};
  const HistogramRun run =
      run_histogram(machine, samples, spec, coll::Shares::kEqual);
  ASSERT_TRUE(run.valid);
  EXPECT_EQ(run.counts, histogram_serial(samples, spec));
  EXPECT_EQ(run.counts[0], 1u);  // -5 clamps low
  EXPECT_EQ(run.counts[3], 2u);  // 99 and 1.0 clamp high
}

TEST(Histogram, EmptyInput) {
  const MachineTree machine = make_paper_testbed(4);
  const HistogramSpec spec{.bins = 8, .lo = 0.0, .hi = 1.0};
  const HistogramRun run =
      run_histogram(machine, {}, spec, coll::Shares::kBalanced);
  ASSERT_TRUE(run.valid);
  for (const auto count : run.counts) EXPECT_EQ(count, 0u);
}

TEST(Histogram, BalancedBeatsEqual) {
  const MachineTree machine = make_paper_testbed(9);
  util::Rng rng{11};
  std::vector<double> samples;
  for (int i = 0; i < 100000; ++i) samples.push_back(rng.uniform01());
  const HistogramSpec spec{.bins = 64, .lo = 0.0, .hi = 1.0};
  const double balanced =
      run_histogram(machine, samples, spec, coll::Shares::kBalanced)
          .virtual_seconds;
  const double equal =
      run_histogram(machine, samples, spec, coll::Shares::kEqual)
          .virtual_seconds;
  EXPECT_LT(balanced, equal);
}

// --- matvec ----------------------------------------------------------------------

DenseMatrix random_matrix(std::size_t rows, std::size_t cols,
                          std::uint64_t seed) {
  DenseMatrix a;
  a.rows = rows;
  a.cols = cols;
  a.values.resize(rows * cols);
  util::Rng rng{seed};
  for (auto& value : a.values) value = rng.uniform(-1.0, 1.0);
  return a;
}

TEST(Matvec, MatchesSerialReference) {
  const MachineTree machine = make_paper_testbed(6);
  const DenseMatrix a = random_matrix(120, 80, 3);
  std::vector<double> x(80);
  util::Rng rng{4};
  for (auto& value : x) value = rng.uniform(-2.0, 2.0);
  const MatvecRun run = run_matvec(machine, a, x, coll::Shares::kBalanced);
  EXPECT_TRUE(run.valid);
}

TEST(Matvec, FewerRowsThanProcessors) {
  const MachineTree machine = make_paper_testbed(10);
  const DenseMatrix a = random_matrix(3, 16, 7);
  std::vector<double> x(16, 1.0);
  const MatvecRun run = run_matvec(machine, a, x, coll::Shares::kEqual);
  EXPECT_TRUE(run.valid);
}

TEST(Matvec, EmptyMatrix) {
  const MachineTree machine = make_paper_testbed(3);
  DenseMatrix a;
  a.rows = 0;
  a.cols = 8;
  std::vector<double> x(8, 1.0);
  const MatvecRun run = run_matvec(machine, a, x, coll::Shares::kBalanced);
  EXPECT_TRUE(run.valid);
  EXPECT_TRUE(run.y.empty());
}

TEST(Matvec, ShapeMismatchThrows) {
  EXPECT_THROW((void)matvec_serial(random_matrix(4, 4, 1),
                                   std::vector<double>(3, 1.0)),
               std::invalid_argument);
}

TEST(Matvec, BalancedBeatsEqualWhenComputeDominates) {
  const MachineTree machine = make_paper_testbed(8);
  const DenseMatrix a = random_matrix(400, 200, 13);
  std::vector<double> x(200, 0.5);
  const double balanced =
      run_matvec(machine, a, x, coll::Shares::kBalanced).virtual_seconds;
  const double equal =
      run_matvec(machine, a, x, coll::Shares::kEqual).virtual_seconds;
  EXPECT_LT(balanced, equal);
}

TEST(Matvec, WorksOnHierarchicalMachines) {
  const MachineTree machine = make_figure1_cluster();
  const DenseMatrix a = random_matrix(90, 40, 21);
  std::vector<double> x(40, 1.0);
  EXPECT_TRUE(run_matvec(machine, a, x, coll::Shares::kBalanced).valid);
}

}  // namespace
}  // namespace hbsp::apps
