// Determinism regression tests for the parallel sweep engine: every figure
// sweep must produce bit-identical tables (exact double equality) at 1, 2,
// and 8 threads, and the Fig 3(a)/4(a) improvement factors are pinned
// against golden CSVs checked in under tests/golden/ (regenerate with
// `bench/fig3a_gather_root --csv tests/golden/fig3a.csv` — see
// EXPERIMENTS.md).

#include <gtest/gtest.h>

#include <fstream>
#include <functional>
#include <sstream>
#include <string>
#include <vector>

#include "experiments/figures.hpp"
#include "experiments/sweep.hpp"

namespace hbsp::exp {
namespace {

using Experiment =
    std::function<ImprovementTable(const FigureConfig&, SweepRunner&)>;

struct NamedExperiment {
  const char* name;
  Experiment run;
};

const std::vector<NamedExperiment>& experiments() {
  static const std::vector<NamedExperiment> all = {
      {"gather_root",
       [](const FigureConfig& c, SweepRunner& r) {
         return gather_root_experiment(c, r);
       }},
      {"gather_balance",
       [](const FigureConfig& c, SweepRunner& r) {
         return gather_balance_experiment(c, r);
       }},
      {"broadcast_root",
       [](const FigureConfig& c, SweepRunner& r) {
         return broadcast_root_experiment(c, r);
       }},
      {"broadcast_balance",
       [](const FigureConfig& c, SweepRunner& r) {
         return broadcast_balance_experiment(c, r);
       }},
  };
  return all;
}

FigureConfig small_config() {
  FigureConfig config;
  config.processors = {2, 4, 7, 10};
  config.kbytes = {100, 500, 1000};
  return config;
}

std::string read_file(const std::string& path) {
  std::ifstream in{path, std::ios::binary};
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(SweepDeterminism, BitIdenticalAcrossThreadCounts) {
  const FigureConfig config = small_config();
  for (const auto& experiment : experiments()) {
    SweepRunner serial{1};
    const ImprovementTable reference = experiment.run(config, serial);
    for (const int threads : {2, 8}) {
      SweepRunner runner{threads};
      const ImprovementTable parallel = experiment.run(config, runner);
      ASSERT_EQ(reference.processors, parallel.processors);
      ASSERT_EQ(reference.kbytes, parallel.kbytes);
      // Exact double equality, element by element — not EXPECT_NEAR. The
      // engine promises bit-identical results, not close ones.
      ASSERT_EQ(reference.factor, parallel.factor)
          << experiment.name << " diverged at " << threads << " threads";
    }
  }
}

TEST(SweepDeterminism, RepeatedRunsOnOneRunnerAreIdentical) {
  const FigureConfig config = small_config();
  SweepRunner runner{4};
  const ImprovementTable first = gather_balance_experiment(config, runner);
  const ImprovementTable second = gather_balance_experiment(config, runner);
  EXPECT_EQ(first.factor, second.factor);
}

TEST(SweepDeterminism, OneShotFormMatchesRunnerForm) {
  FigureConfig config = small_config();
  config.threads = 8;
  SweepRunner runner{3};
  EXPECT_EQ(gather_root_experiment(config).factor,
            gather_root_experiment(config, runner).factor);
}

TEST(SweepDeterminism, CountersObserveTheSweep) {
  const FigureConfig config = small_config();
  SweepRunner runner{2};
  (void)gather_root_experiment(config, runner);
  const SweepCounters& counters = runner.counters();
  EXPECT_EQ(counters.cells, 12u);
  EXPECT_EQ(counters.threads, 2);
  EXPECT_GT(counters.wall_seconds, 0.0);
  EXPECT_GT(counters.cells_per_second, 0.0);
  EXPECT_EQ(counters.cell_seconds.count, 12u);
  EXPECT_GE(counters.cell_seconds.max, counters.cell_seconds.mean);
}

// Golden pins: the full default-config Fig 3(a)/4(a) sweeps, rendered in the
// benches' CSV format, must match the checked-in files byte for byte. These
// catch any drift in the simulator, the planners, or the seed-splitting
// scheme — all of which are part of the reproduction claim.

TEST(SweepGolden, Fig3aMatchesCheckedInCsv) {
  SweepRunner runner{8};
  const ImprovementTable table =
      gather_root_experiment(FigureConfig{}, runner);
  EXPECT_EQ(improvement_csv(table),
            read_file(std::string{HBSPK_SOURCE_DIR} + "/tests/golden/fig3a.csv"));
}

TEST(SweepGolden, Fig4aMatchesCheckedInCsv) {
  SweepRunner runner{8};
  const ImprovementTable table =
      broadcast_root_experiment(FigureConfig{}, runner);
  EXPECT_EQ(improvement_csv(table),
            read_file(std::string{HBSPK_SOURCE_DIR} + "/tests/golden/fig4a.csv"));
}

}  // namespace
}  // namespace hbsp::exp
