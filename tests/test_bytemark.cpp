// Tests for the BYTEmark-substitute kernels and the parameter derivation.

#include <gtest/gtest.h>

#include "bytemark/kernels.hpp"
#include "bytemark/ranking.hpp"
#include "core/topology.hpp"

namespace hbsp::bytemark {
namespace {

KernelConfig fast_config() {
  KernelConfig config;
  config.min_iterations = 2;
  config.min_seconds = 0.001;
  config.numeric_sort_size = 256;
  config.string_sort_size = 64;
  config.bitfield_ops = 2000;
  config.fourier_terms = 8;
  config.lu_matrix_order = 8;
  return config;
}

TEST(Kernels, AllProducePositiveScores) {
  const KernelConfig config = fast_config();
  for (const auto& result :
       {run_numeric_sort(config), run_string_sort(config), run_bitfield(config),
        run_fp_fourier(config), run_lu_decomposition(config)}) {
    EXPECT_GT(result.iterations_per_second, 0.0) << result.name;
    EXPECT_FALSE(result.name.empty());
  }
}

TEST(Kernels, SuiteAggregatesAllFive) {
  const SuiteResult suite = run_suite(fast_config());
  EXPECT_EQ(suite.kernels.size(), 5u);
  EXPECT_GT(suite.composite, 0.0);
}

TEST(Ranking, DerivedFromScores) {
  const std::array scores{100.0, 400.0, 200.0};
  const Ranking ranking = ranking_from_scores(scores);
  EXPECT_EQ(ranking.rank, (std::vector<int>{2, 0, 1}));
  EXPECT_EQ(ranking.fastest_pid(), 1);
  EXPECT_EQ(ranking.slowest_pid(), 0);
  EXPECT_DOUBLE_EQ(ranking.estimated_r[0], 4.0);
  EXPECT_DOUBLE_EQ(ranking.estimated_r[1], 1.0);
  EXPECT_DOUBLE_EQ(ranking.estimated_r[2], 2.0);
  EXPECT_NEAR(ranking.fractions[0] + ranking.fractions[1] + ranking.fractions[2],
              1.0, 1e-12);
  EXPECT_NEAR(ranking.fractions[1], 4.0 / 7.0, 1e-12);
}

TEST(Ranking, TiesBreakByPid) {
  const std::array scores{5.0, 5.0};
  const Ranking ranking = ranking_from_scores(scores);
  EXPECT_EQ(ranking.rank, (std::vector<int>{0, 1}));
}

TEST(Ranking, RejectsBadScores) {
  EXPECT_THROW((void)ranking_from_scores({}), std::invalid_argument);
  const std::array bad{1.0, 0.0};
  EXPECT_THROW((void)ranking_from_scores(bad), std::invalid_argument);
}

TEST(SimulatedRanking, NoiselessRecoversTrueOrder) {
  const MachineTree tree = make_paper_testbed(10);
  const Ranking ranking = rank_simulated(tree, {.stddev = 0.0, .seed = 1});
  EXPECT_EQ(ranking.fastest_pid(), 0);  // inventory puts r=1 first
  EXPECT_EQ(ranking.slowest_pid(), 1);  // and r=2.5 second
  for (int pid = 0; pid < 10; ++pid) {
    EXPECT_NEAR(ranking.estimated_r[static_cast<std::size_t>(pid)],
                tree.processor_r(pid), 1e-9);
  }
}

TEST(SimulatedRanking, DeterministicPerSeed) {
  const MachineTree tree = make_paper_testbed(5);
  const Ranking a = rank_simulated(tree, {.stddev = 0.1, .seed = 42});
  const Ranking b = rank_simulated(tree, {.stddev = 0.1, .seed = 42});
  EXPECT_EQ(a.scores, b.scores);
  const Ranking c = rank_simulated(tree, {.stddev = 0.1, .seed = 43});
  EXPECT_NE(a.scores, c.scores);
}

TEST(SimulatedRanking, NoisePerturbsEstimates) {
  const MachineTree tree = make_paper_testbed(10);
  const Ranking noisy = rank_simulated(tree, {.stddev = 0.2, .seed = 7});
  double total_error = 0.0;
  for (int pid = 0; pid < 10; ++pid) {
    total_error += std::abs(noisy.estimated_r[static_cast<std::size_t>(pid)] -
                            tree.processor_r(pid));
  }
  EXPECT_GT(total_error, 0.01);
}

TEST(ClusterSpecFromRanking, BuildsAValidMachine) {
  const MachineTree truth = make_paper_testbed(6);
  const Ranking ranking = rank_simulated(truth, {.stddev = 0.1, .seed = 3});
  const MachineSpec spec = cluster_spec_from_ranking(ranking, 2e-3);
  const MachineTree estimated = MachineTree::build(spec, 1e-6);
  EXPECT_EQ(estimated.num_processors(), 6);
  // Normalisation held even under noise.
  double min_r = 1e9;
  for (int pid = 0; pid < 6; ++pid) {
    min_r = std::min(min_r, estimated.processor_r(pid));
  }
  EXPECT_DOUBLE_EQ(min_r, 1.0);
}

TEST(ClusterSpecFromRanking, RejectsEmpty) {
  EXPECT_THROW((void)cluster_spec_from_ranking(Ranking{}, 1e-3),
               std::invalid_argument);
}

}  // namespace
}  // namespace hbsp::bytemark
