// Tests for the hierarchical network model: message routing across the
// tree, per-level latency and wire rates, and network statistics.

#include "sim/network.hpp"

#include <gtest/gtest.h>

#include "core/topology.hpp"

namespace hbsp::sim {
namespace {

std::vector<std::string> route_names(const MachineTree& tree, int src,
                                     int dst) {
  const SimParams params;
  const Network network{tree, params};
  std::vector<MachineId> route;
  network.route(src, dst, route);
  std::vector<std::string> names;
  for (const MachineId id : route) names.push_back(tree.node(id).name);
  return names;
}

TEST(NetworkRoute, IntraClusterCrossesOnlyThatNetwork) {
  const MachineTree tree = make_figure1_cluster();
  EXPECT_EQ(route_names(tree, 0, 1), (std::vector<std::string>{"smp"}));
  EXPECT_EQ(route_names(tree, 5, 8), (std::vector<std::string>{"lan"}));
}

TEST(NetworkRoute, CrossClusterCrossesBothEndNetworksAndTheBackbone) {
  const MachineTree tree = make_figure1_cluster();
  EXPECT_EQ(route_names(tree, 0, 8),
            (std::vector<std::string>{"smp", "campus", "lan"}));
  // The SGI hangs directly off the campus network: one hop fewer.
  EXPECT_EQ(route_names(tree, 4, 0),
            (std::vector<std::string>{"campus", "smp"}));
  EXPECT_EQ(route_names(tree, 0, 4),
            (std::vector<std::string>{"smp", "campus"}));
}

TEST(NetworkRoute, SelfRouteIsEmpty) {
  const MachineTree tree = make_figure1_cluster();
  EXPECT_TRUE(route_names(tree, 3, 3).empty());
}

TEST(NetworkRoute, ThreeLevelRoute) {
  const MachineTree tree = make_wide_area_grid();
  // a-lab0 ws (pid 0) to b-lab1 ws: up through a-lab0, campus-a, wide-area,
  // down through campus-b, b-lab1.
  const auto [bf, bl] =
      tree.processor_range(tree.child(tree.child(tree.root(), 1), 1));
  // Source-side networks come first (leaf upward to the LCA), then the
  // destination side's, also leaf upward; the *set* of crossed networks is
  // what the simulator charges.
  const auto names = route_names(tree, 0, bf);
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], "a-lab0");
  EXPECT_EQ(names[1], "campus-a");
  EXPECT_EQ(names[2], "wide-area");
  EXPECT_EQ(names[3], "b-lab1");
  EXPECT_EQ(names[4], "campus-b");
  (void)bl;
}

TEST(NetworkLatency, ScalesByLevel) {
  const MachineTree tree = make_wide_area_grid();
  SimParams params;
  params.latency_base = 2e-4;
  params.latency_level_scale = 10.0;
  const Network network{tree, params};
  EXPECT_DOUBLE_EQ(network.latency(1), 2e-4);
  EXPECT_DOUBLE_EQ(network.latency(2), 2e-3);
  EXPECT_DOUBLE_EQ(network.latency(3), 2e-2);
}

TEST(NetworkWire, RateScalesByLevelAndCanBeDisabled) {
  const MachineTree tree = make_wide_area_grid();
  SimParams params;
  params.wire_factor_base = 0.5;
  params.wire_level_scale = 4.0;
  {
    const Network network{tree, params};
    EXPECT_DOUBLE_EQ(network.wire_per_item(1), tree.g() * 0.5);
    EXPECT_DOUBLE_EQ(network.wire_per_item(2), tree.g() * 2.0);
    EXPECT_DOUBLE_EQ(network.wire_per_item(3), tree.g() * 8.0);
  }
  params.model_wire_contention = false;
  {
    const Network network{tree, params};
    EXPECT_DOUBLE_EQ(network.wire_per_item(2), 0.0);
  }
}

TEST(NetworkStats, AccumulateAndReset) {
  const MachineTree tree = make_figure1_cluster();
  const SimParams params;
  Network network{tree, params};
  auto& campus = network.stats(tree.root());
  campus.items_crossed += 100;
  campus.messages_crossed += 2;
  EXPECT_EQ(network.stats(tree.root()).items_crossed, 100u);
  network.reset();
  EXPECT_EQ(network.stats(tree.root()).items_crossed, 0u);
  EXPECT_EQ(network.stats(tree.root()).messages_crossed, 0u);
}

TEST(NetworkStats, BadIdThrows) {
  const MachineTree tree = make_figure1_cluster();
  const SimParams params;
  const Network network{tree, params};
  EXPECT_THROW((void)network.stats(MachineId{9, 0}), std::out_of_range);
}

}  // namespace
}  // namespace hbsp::sim
