// Property tests for the sweep engine's seed splitting (util::split_seed +
// SweepCell::rng): per-cell streams derived from one master seed must be
// pairwise distinct (no collisions anywhere in their first 64 outputs),
// stable across re-derivation, and tied to grid position rather than
// execution order.

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "experiments/figures.hpp"
#include "experiments/sweep.hpp"
#include "util/rng.hpp"

namespace hbsp::exp {
namespace {

constexpr int kOutputs = 64;

std::vector<std::uint64_t> first_outputs(std::uint64_t seed) {
  util::Rng rng{seed};
  std::vector<std::uint64_t> outputs(kOutputs);
  for (auto& value : outputs) value = rng();
  return outputs;
}

TEST(SeedSplit, DistinctStreamsForDistinctCells) {
  for (const std::uint64_t master : {0ULL, 42ULL, 2001ULL, ~0ULL}) {
    std::unordered_set<std::uint64_t> seeds;
    for (std::uint64_t cell = 0; cell < 4096; ++cell) {
      seeds.insert(util::split_seed(master, cell));
    }
    // Injective in the cell index: 4096 cells, 4096 distinct seeds.
    EXPECT_EQ(seeds.size(), 4096u) << "master " << master;
  }
}

TEST(SeedSplit, FirstOutputsNeverCollideAcrossCells) {
  // Stronger than distinct seeds: pool the first 64 outputs of every derived
  // stream for a realistic sweep size and demand global uniqueness — no two
  // cells may share any value anywhere in their warm-up window.
  for (const std::uint64_t master : {2001ULL, 7ULL}) {
    std::unordered_set<std::uint64_t> pooled;
    const std::size_t cells = 256;  // > the default 9x10 grid, with margin
    for (std::uint64_t cell = 0; cell < cells; ++cell) {
      for (const std::uint64_t value :
           first_outputs(util::split_seed(master, cell))) {
        EXPECT_TRUE(pooled.insert(value).second)
            << "master " << master << " cell " << cell;
      }
    }
    EXPECT_EQ(pooled.size(), cells * kOutputs);
  }
}

TEST(SeedSplit, RederivationIsStable) {
  for (std::uint64_t cell = 0; cell < 100; ++cell) {
    const std::uint64_t once = util::split_seed(2001, cell);
    const std::uint64_t again = util::split_seed(2001, cell);
    ASSERT_EQ(once, again);
    ASSERT_EQ(first_outputs(once), first_outputs(again));
  }
}

TEST(SeedSplit, MasterSeedSelectsDifferentStreamFamilies) {
  std::unordered_set<std::uint64_t> seeds;
  for (const std::uint64_t master : {1ULL, 2ULL, 3ULL, 2001ULL}) {
    for (std::uint64_t cell = 0; cell < 64; ++cell) {
      seeds.insert(util::split_seed(master, cell));
    }
  }
  EXPECT_EQ(seeds.size(), 4u * 64u);
}

TEST(SeedSplit, IsCompileTimeEvaluable) {
  static_assert(util::split_seed(1, 0) != util::split_seed(1, 1));
  static_assert(util::split_seed(1, 0) == util::split_seed(1, 0));
  SUCCEED();
}

TEST(SweepCell, SeedDependsOnGridPositionNotExecutionOrder) {
  // Two runners with different thread counts present identical SweepCells.
  FigureConfig config;
  config.processors = {2, 5, 10};
  config.kbytes = {100, 500};

  const auto collect = [&](int threads) {
    SweepRunner runner{threads};
    std::vector<std::uint64_t> seeds(6);
    (void)runner.run({config.processors, config.kbytes, config.noise.seed},
                     [&](const SweepCell& cell) {
                       seeds[cell.index] = cell.seed;
                       return 1.0;
                     });
    return seeds;
  };
  const auto serial = collect(1);
  const auto parallel = collect(8);
  EXPECT_EQ(serial, parallel);
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(serial[i], util::split_seed(config.noise.seed, i));
  }
}

TEST(SweepCell, RngIsTheStreamForTheSeed) {
  SweepCell cell;
  cell.seed = util::split_seed(2001, 17);
  util::Rng direct{cell.seed};
  util::Rng stream = cell.rng();
  for (int i = 0; i < 16; ++i) EXPECT_EQ(stream(), direct());
}

}  // namespace
}  // namespace hbsp::exp
