// Correctness tests for the SPMD collective executors: data results are
// verified against directly computed expectations on flat and hierarchical
// machines, on both engines.

#include "collectives/executors.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>

#include "core/topology.hpp"
#include "util/rng.hpp"

namespace hbsp::coll {
namespace {

const sim::SimParams kParams{};

/// Distributed input: the global array 0..n-1 split by `shares`, so pid j's
/// slice is the contiguous range starting at the prefix sum.
std::vector<std::vector<std::int32_t>> slice_by_shares(
    const std::vector<std::size_t>& shares) {
  std::vector<std::vector<std::int32_t>> slices;
  std::int32_t next = 0;
  for (const std::size_t count : shares) {
    std::vector<std::int32_t> slice(count);
    std::iota(slice.begin(), slice.end(), next);
    next += static_cast<std::int32_t>(count);
    slices.push_back(std::move(slice));
  }
  return slices;
}

std::vector<std::int32_t> iota_vector(std::size_t n) {
  std::vector<std::int32_t> values(n);
  std::iota(values.begin(), values.end(), 0);
  return values;
}

struct ExecCase {
  const char* name;
  bool hierarchical;
  std::size_t n;
  Shares shares;
  rt::EngineKind engine;
};

class ExecutorCase : public ::testing::TestWithParam<ExecCase> {
 protected:
  [[nodiscard]] MachineTree tree() const {
    return GetParam().hierarchical ? make_figure1_cluster()
                                   : make_paper_testbed(5);
  }
};

TEST_P(ExecutorCase, GatherAssemblesAtRoot) {
  const MachineTree t = tree();
  const auto& param = GetParam();
  const auto shares = leaf_shares(t, param.n, param.shares);
  const auto slices = slice_by_shares(shares);
  const int root = t.coordinator_pid(t.root());
  std::atomic<int> roots_with_data{0};

  const rt::Program program = [&](rt::Hbsp& ctx) {
    const auto& mine = slices[static_cast<std::size_t>(ctx.pid())];
    const auto result = gather<std::int32_t>(
        ctx, mine, param.n, {.root_pid = root, .shares = param.shares});
    if (ctx.pid() == root) {
      ASSERT_TRUE(result.has_value());
      EXPECT_EQ(*result, iota_vector(param.n));
      ++roots_with_data;
    } else {
      EXPECT_FALSE(result.has_value());
    }
  };
  (void)rt::run_program(t, kParams, program, param.engine);
  EXPECT_EQ(roots_with_data.load(), 1);
}

TEST_P(ExecutorCase, GatherToSlowestRoot) {
  const MachineTree t = tree();
  const auto& param = GetParam();
  const auto shares = leaf_shares(t, param.n, param.shares);
  const auto slices = slice_by_shares(shares);
  const int root = t.slowest_pid(t.root());

  const rt::Program program = [&](rt::Hbsp& ctx) {
    const auto& mine = slices[static_cast<std::size_t>(ctx.pid())];
    const auto result = gather<std::int32_t>(
        ctx, mine, param.n, {.root_pid = root, .shares = param.shares});
    if (ctx.pid() == root) {
      ASSERT_TRUE(result.has_value());
      EXPECT_EQ(*result, iota_vector(param.n));
    }
  };
  (void)rt::run_program(t, kParams, program, param.engine);
}

TEST_P(ExecutorCase, ScatterDistributesShares) {
  const MachineTree t = tree();
  const auto& param = GetParam();
  const auto shares = leaf_shares(t, param.n, param.shares);
  const auto expected = slice_by_shares(shares);
  const int root = t.coordinator_pid(t.root());
  const auto input = iota_vector(param.n);

  const rt::Program program = [&](rt::Hbsp& ctx) {
    const std::span<const std::int32_t> mine =
        ctx.pid() == root ? std::span<const std::int32_t>{input}
                          : std::span<const std::int32_t>{};
    const auto result = scatter<std::int32_t>(
        ctx, mine, param.n, {.root_pid = root, .shares = param.shares});
    EXPECT_EQ(result, expected[static_cast<std::size_t>(ctx.pid())]);
  };
  (void)rt::run_program(t, kParams, program, param.engine);
}

TEST_P(ExecutorCase, BroadcastTwoPhaseReachesEveryone) {
  const MachineTree t = tree();
  const auto& param = GetParam();
  const int root = t.coordinator_pid(t.root());
  const auto input = iota_vector(param.n);
  std::atomic<int> receivers{0};

  const rt::Program program = [&](rt::Hbsp& ctx) {
    const std::span<const std::int32_t> mine =
        ctx.pid() == root ? std::span<const std::int32_t>{input}
                          : std::span<const std::int32_t>{};
    const auto result = broadcast<std::int32_t>(
        ctx, mine, param.n,
        {.root_pid = root, .top_phase = TopPhase::kTwoPhase,
         .shares = param.shares});
    EXPECT_EQ(result, input);
    ++receivers;
  };
  (void)rt::run_program(t, kParams, program, param.engine);
  EXPECT_EQ(receivers.load(), t.num_processors());
}

TEST_P(ExecutorCase, BroadcastOnePhaseReachesEveryone) {
  const MachineTree t = tree();
  const auto& param = GetParam();
  const int root = t.slowest_pid(t.root());
  const auto input = iota_vector(param.n);

  const rt::Program program = [&](rt::Hbsp& ctx) {
    const std::span<const std::int32_t> mine =
        ctx.pid() == root ? std::span<const std::int32_t>{input}
                          : std::span<const std::int32_t>{};
    const auto result = broadcast<std::int32_t>(
        ctx, mine, param.n,
        {.root_pid = root, .top_phase = TopPhase::kOnePhase,
         .shares = param.shares});
    EXPECT_EQ(result, input);
  };
  (void)rt::run_program(t, kParams, program, param.engine);
}

INSTANTIATE_TEST_SUITE_P(
    Cases, ExecutorCase,
    ::testing::Values(
        ExecCase{"flat_equal", false, 1000, Shares::kEqual,
                 rt::EngineKind::kVirtualTime},
        ExecCase{"flat_balanced", false, 1000, Shares::kBalanced,
                 rt::EngineKind::kVirtualTime},
        ExecCase{"flat_tiny", false, 3, Shares::kEqual,
                 rt::EngineKind::kVirtualTime},
        ExecCase{"flat_wall", false, 500, Shares::kBalanced,
                 rt::EngineKind::kWallClock},
        ExecCase{"tree_equal", true, 1000, Shares::kEqual,
                 rt::EngineKind::kVirtualTime},
        ExecCase{"tree_balanced", true, 999, Shares::kBalanced,
                 rt::EngineKind::kVirtualTime},
        ExecCase{"tree_wall", true, 777, Shares::kEqual,
                 rt::EngineKind::kWallClock}),
    [](const auto& param_info) { return param_info.param.name; });

// --- flat-only collectives -------------------------------------------------------

TEST(Allgather, EveryoneAssemblesAll) {
  const MachineTree t = make_paper_testbed(4);
  const std::size_t n = 100;
  const auto shares = leaf_shares(t, n, Shares::kBalanced);
  const auto slices = slice_by_shares(shares);
  const rt::Program program = [&](rt::Hbsp& ctx) {
    const auto result = allgather<std::int32_t>(
        ctx, slices[static_cast<std::size_t>(ctx.pid())], n, Shares::kBalanced);
    EXPECT_EQ(result, iota_vector(n));
  };
  (void)rt::run_program(t, kParams, program);
}

TEST(Reduce, SumsAtRoot) {
  const MachineTree t = make_paper_testbed(6);
  const std::size_t n = 1000;
  const auto shares = leaf_shares(t, n, Shares::kBalanced);
  const auto slices = slice_by_shares(shares);
  const std::int64_t expected =
      static_cast<std::int64_t>(n) * (static_cast<std::int64_t>(n) - 1) / 2;
  const int root = t.coordinator_pid(t.root());

  const rt::Program program = [&](rt::Hbsp& ctx) {
    std::vector<std::int64_t> wide(
        slices[static_cast<std::size_t>(ctx.pid())].begin(),
        slices[static_cast<std::size_t>(ctx.pid())].end());
    const auto result = reduce<std::int64_t>(
        ctx, wide, n, [](std::int64_t a, std::int64_t b) { return a + b; },
        std::int64_t{0}, {.root_pid = root, .shares = Shares::kBalanced});
    if (ctx.pid() == root) {
      ASSERT_TRUE(result.has_value());
      EXPECT_EQ(*result, expected);
    } else {
      EXPECT_FALSE(result.has_value());
    }
  };
  (void)rt::run_program(t, kParams, program);
}

TEST(Scan, GlobalInclusivePrefix) {
  const MachineTree t = make_paper_testbed(5);
  const std::size_t n = 50;
  const auto shares = leaf_shares(t, n, Shares::kEqual);

  // Global input: value at index i is i+1; inclusive prefix is the
  // triangular numbers.
  std::vector<std::int64_t> global(n);
  std::iota(global.begin(), global.end(), 1);
  std::vector<std::vector<std::int64_t>> slices;
  std::size_t offset = 0;
  for (const std::size_t count : shares) {
    slices.emplace_back(global.begin() + static_cast<std::ptrdiff_t>(offset),
                        global.begin() + static_cast<std::ptrdiff_t>(offset + count));
    offset += count;
  }

  const rt::Program program = [&](rt::Hbsp& ctx) {
    const auto result = scan<std::int64_t>(
        ctx, slices[static_cast<std::size_t>(ctx.pid())], n,
        [](std::int64_t a, std::int64_t b) { return a + b; }, std::int64_t{0},
        Shares::kEqual);
    // The global prefix at position i is (i+1)(i+2)/2.
    std::size_t base = 0;
    for (int pid = 0; pid < ctx.pid(); ++pid) {
      base += shares[static_cast<std::size_t>(pid)];
    }
    for (std::size_t k = 0; k < result.size(); ++k) {
      const auto i = static_cast<std::int64_t>(base + k);
      EXPECT_EQ(result[k], (i + 1) * (i + 2) / 2);
    }
  };
  (void)rt::run_program(t, kParams, program);
}

TEST(Alltoall, BlocksLandBySource) {
  const MachineTree t = make_paper_testbed(3);
  const std::size_t n = 99;
  const auto shares = leaf_shares(t, n, Shares::kEqual);
  const auto slices = slice_by_shares(shares);

  // Expected: pid d receives, from each source s in order, s's d-th block.
  std::vector<std::vector<std::int32_t>> expected(3);
  {
    std::vector<std::vector<std::vector<std::int32_t>>> blocks(3);
    for (std::size_t s = 0; s < 3; ++s) {
      const auto counts = equal_partition(shares[s], 3);
      std::size_t offset = 0;
      for (std::size_t d = 0; d < 3; ++d) {
        blocks[s].emplace_back(
            slices[s].begin() + static_cast<std::ptrdiff_t>(offset),
            slices[s].begin() + static_cast<std::ptrdiff_t>(offset + counts[d]));
        offset += counts[d];
      }
    }
    for (std::size_t d = 0; d < 3; ++d) {
      for (std::size_t s = 0; s < 3; ++s) {
        expected[d].insert(expected[d].end(), blocks[s][d].begin(),
                           blocks[s][d].end());
      }
    }
  }

  const rt::Program program = [&](rt::Hbsp& ctx) {
    const auto result = alltoall<std::int32_t>(
        ctx, slices[static_cast<std::size_t>(ctx.pid())], n, Shares::kEqual);
    EXPECT_EQ(result, expected[static_cast<std::size_t>(ctx.pid())]);
  };
  (void)rt::run_program(t, kParams, program);
}

TEST(Executors, RejectMismatchedLocalData) {
  const MachineTree t = make_paper_testbed(3);
  const rt::Program program = [&](rt::Hbsp& ctx) {
    const std::vector<std::int32_t> wrong_size(999);
    (void)gather<std::int32_t>(ctx, wrong_size, 10,
                               {.root_pid = 0, .shares = Shares::kEqual});
  };
  EXPECT_THROW((void)rt::run_program(t, kParams, program),
               std::invalid_argument);
}

TEST(Executors, FlatOnlyCollectivesRejectHierarchies) {
  const MachineTree t = make_figure1_cluster();
  const rt::Program program = [&](rt::Hbsp& ctx) {
    (void)allgather<std::int32_t>(ctx, {}, 0, Shares::kEqual);
  };
  EXPECT_THROW((void)rt::run_program(t, kParams, program),
               std::invalid_argument);
}

}  // namespace
}  // namespace hbsp::coll
