// Tests for the algorithm advisor: it must follow the paper's §4 guidance
// mechanically — fastest root, balanced shares where they help, one-phase
// broadcast for tiny messages or crawler-dominated clusters, two-phase
// otherwise — and its chosen plan must actually be the cheapest candidate.

#include "collectives/advisor.hpp"

#include <gtest/gtest.h>

#include "core/cost_model.hpp"
#include "core/topology.hpp"

namespace hbsp::coll {
namespace {

TEST(Advisor, GatherPicksFastestRootAndBalancedShares) {
  const MachineTree tree = make_paper_testbed(8);
  const auto advice = advise(tree, CollectiveKind::kGather, 100000);
  EXPECT_EQ(advice.root_pid, tree.coordinator_pid(tree.root()));
  EXPECT_EQ(advice.shares, Shares::kBalanced);
  EXPECT_EQ(advice.options.size(), 4u);  // 2 roots x 2 share policies
  EXPECT_FALSE(advice.rationale.empty());
}

TEST(Advisor, BroadcastPicksOnePhaseForTinyMessages) {
  const MachineTree tree = make_paper_testbed(8);
  const auto advice = advise(tree, CollectiveKind::kBroadcast, 10);
  EXPECT_EQ(advice.top_phase, TopPhase::kOnePhase);
}

TEST(Advisor, BroadcastPicksTwoPhaseForLargeMessages) {
  const MachineTree tree = make_paper_testbed(8);
  const auto advice = advise(tree, CollectiveKind::kBroadcast, 250000);
  EXPECT_EQ(advice.top_phase, TopPhase::kTwoPhase);
}

TEST(Advisor, BroadcastPicksOnePhaseWhenCrawlerDominates) {
  // r_s = 4 >= m-1 = 2: one-phase never loses (§4.4).
  const MachineTree tree = make_hbsp1_cluster(std::array{1.0, 2.0, 4.0});
  for (const std::size_t n : {10u, 100000u}) {
    const auto advice = advise(tree, CollectiveKind::kBroadcast, n);
    EXPECT_EQ(advice.top_phase, TopPhase::kOnePhase) << "n=" << n;
  }
  EXPECT_NE(advise(tree, CollectiveKind::kBroadcast, 100000)
                .rationale.find("r_s"),
            std::string::npos);
}

TEST(Advisor, ChoiceIsTheCheapestEvaluatedOption) {
  const MachineTree tree = make_figure1_cluster();
  for (const auto kind :
       {CollectiveKind::kGather, CollectiveKind::kBroadcast,
        CollectiveKind::kScatter, CollectiveKind::kReduce}) {
    const auto advice = advise(tree, kind, 50000);
    double cheapest = advice.options.front().predicted_cost;
    for (const auto& option : advice.options) {
      cheapest = std::min(cheapest, option.predicted_cost);
    }
    EXPECT_DOUBLE_EQ(advice.predicted_cost, cheapest) << to_string(kind);
  }
}

TEST(Advisor, PlanRealisesTheAdvice) {
  const MachineTree tree = make_figure1_cluster();
  const CostModel model{tree};
  for (const auto kind :
       {CollectiveKind::kGather, CollectiveKind::kBroadcast,
        CollectiveKind::kScatter, CollectiveKind::kReduce}) {
    const auto advice = advise(tree, kind, 50000);
    const auto schedule = advice.plan(tree, 50000);
    validate_schedule(tree, schedule);
    EXPECT_DOUBLE_EQ(model.cost(schedule).total(), advice.predicted_cost)
        << to_string(kind);
  }
}

TEST(Advisor, FlatOnlyCollectivesWorkOnFlatMachines) {
  const MachineTree tree = make_paper_testbed(5);
  for (const auto kind : {CollectiveKind::kAllgather, CollectiveKind::kScan,
                          CollectiveKind::kAlltoall}) {
    const auto advice = advise(tree, kind, 10000);
    EXPECT_EQ(advice.root_pid, -1) << to_string(kind);
    EXPECT_GT(advice.predicted_cost, 0.0) << to_string(kind);
    EXPECT_EQ(advice.options.size(), 2u);
  }
}


TEST(Advisor, AllgatherSwitchesToHierarchicalCompositionOnDeepMachines) {
  const MachineTree tree = make_figure1_cluster();
  const auto advice = advise(tree, CollectiveKind::kAllgather, 20000);
  const auto schedule = advice.plan(tree, 20000);
  validate_schedule(tree, schedule);
  // gather phases (2 levels) + broadcast phases (2 per level x 2 levels).
  EXPECT_GT(schedule.phases.size(), 2u);
  const CostModel model{tree};
  EXPECT_DOUBLE_EQ(model.cost(schedule).total(), advice.predicted_cost);
}

TEST(Advisor, FlatOnlyCollectivesRejectHierarchies) {
  const MachineTree tree = make_figure1_cluster();
  EXPECT_THROW((void)advise(tree, CollectiveKind::kAlltoall, 100),
               std::invalid_argument);
}

TEST(Advisor, RejectsSingleProcessorMachines) {
  MachineSpec solo;
  solo.r = 1.0;
  const MachineTree tree = MachineTree::build(solo, 1e-6);
  EXPECT_THROW((void)advise(tree, CollectiveKind::kGather, 100),
               std::invalid_argument);
}

TEST(Advisor, HomogeneousClusterIsShareAgnosticForGather) {
  // With identical processors, balanced == equal; the advisor must not
  // invent a difference and must still prefer the (tie-broken) balanced
  // policy with the coordinator root.
  const MachineTree tree = make_hbsp1_cluster(std::array{1.0, 1.0, 1.0, 1.0});
  const auto advice = advise(tree, CollectiveKind::kGather, 10000);
  EXPECT_EQ(advice.root_pid, 0);
  const double a = advice.options[0].predicted_cost;
  for (const auto& option : advice.options) {
    if (option.description.find("ws0") != std::string::npos) {
      EXPECT_DOUBLE_EQ(option.predicted_cost, a);
    }
  }
}

}  // namespace
}  // namespace hbsp::coll
