// Tests for the §3.4 cost model: h-relations, superstep pricing, schedule
// totals, all against hand-computed values.

#include "core/cost_model.hpp"

#include <gtest/gtest.h>

#include "core/topology.hpp"

namespace hbsp {
namespace {

constexpr double kG = 1e-6;
constexpr double kL = 2e-3;

MachineTree cluster() {
  return make_hbsp1_cluster(std::array{1.0, 2.0, 4.0}, kG, kL);
}

TEST(CostModel, HRelationIsMaxOfRWeightedTraffic) {
  const MachineTree tree = cluster();
  const CostModel model{tree};
  SuperstepPlan plan;
  plan.sync_scope = tree.root();
  // P1 (r=2) sends 100 to P0 (r=1); P2 (r=4) sends 50 to P0.
  plan.transfers = {{1, 0, 100}, {2, 0, 50}};
  // h_0 = 150 received (r=1 → 150); h_1 = 100 sent (r=2 → 200);
  // h_2 = 50 sent (r=4 → 200).
  EXPECT_DOUBLE_EQ(model.h_relation(plan), 200.0);
}

TEST(CostModel, HRelationCountsMaxOfInAndOutPerProcessor) {
  const MachineTree tree = cluster();
  const CostModel model{tree};
  SuperstepPlan plan;
  plan.sync_scope = tree.root();
  // P0 sends 300 and receives 100: h_0 = max(300, 100)·1 = 300.
  // P1 receives 300 and sends 100: h_1 = max(100, 300)·2 = 600.
  plan.transfers = {{0, 1, 300}, {1, 0, 100}};
  EXPECT_DOUBLE_EQ(model.h_relation(plan), 600.0);
}

TEST(CostModel, SelfSendsCostNothing) {
  const MachineTree tree = cluster();
  const CostModel model{tree};
  SuperstepPlan plan;
  plan.sync_scope = tree.root();
  plan.transfers = {{2, 2, 1000000}};
  EXPECT_DOUBLE_EQ(model.h_relation(plan), 0.0);
}

TEST(CostModel, SuperstepCostIsWPlusGhPlusL) {
  const MachineTree tree = cluster();
  const CostModel model{tree};
  SuperstepPlan plan;
  plan.sync_scope = tree.root();
  plan.transfers = {{1, 0, 100}};
  plan.compute = {{0, 500.0}};  // 500 ops on the fastest machine
  const SuperstepCost cost = model.cost(plan);
  EXPECT_DOUBLE_EQ(cost.h, 200.0);           // r_1·100
  EXPECT_DOUBLE_EQ(cost.gh, kG * 200.0);
  EXPECT_DOUBLE_EQ(cost.w, 500.0 * 1.0 * kG);  // seconds_per_op defaults to g
  EXPECT_DOUBLE_EQ(cost.L, kL);
  EXPECT_DOUBLE_EQ(cost.total(), cost.w + cost.gh + cost.L);
}

TEST(CostModel, ComputeTermTakesTheSlowestWeightedWorker) {
  const MachineTree tree = cluster();
  const CostModel model{tree};
  SuperstepPlan plan;
  plan.sync_scope = tree.root();
  plan.compute = {{0, 1000.0}, {2, 300.0}};  // r=1·1000 vs r=4·300
  EXPECT_DOUBLE_EQ(model.cost(plan).w, 1200.0 * kG);
}

TEST(CostModel, CustomSecondsPerOp) {
  const MachineTree tree = cluster();
  const CostModel model{tree, 5e-9};
  SuperstepPlan plan;
  plan.sync_scope = tree.root();
  plan.compute = {{1, 100.0}};
  EXPECT_DOUBLE_EQ(model.cost(plan).w, 100.0 * 2.0 * 5e-9);
}

TEST(CostModel, ScheduleSumsPhasesAndPhasesTakeMax) {
  const MachineTree tree = make_figure1_cluster(kG, 10 * kL);
  const CostModel model{tree};
  CommSchedule schedule;
  schedule.name = "two-cluster step";
  // One phase: the SMP (scope child 0) and the LAN (child 2) each run a
  // superstep concurrently; the phase costs the max of the two.
  Phase& phase = schedule.add_phase();
  SuperstepPlan smp;
  smp.label = "smp";
  smp.level = 1;
  smp.sync_scope = tree.child(tree.root(), 0);
  smp.transfers = {{1, 0, 100}};
  SuperstepPlan lan;
  lan.label = "lan";
  lan.level = 1;
  lan.sync_scope = tree.child(tree.root(), 2);
  lan.transfers = {{6, 5, 100}};
  phase.plans.push_back(smp);
  phase.plans.push_back(lan);

  const ScheduleCost cost = model.cost(schedule);
  ASSERT_EQ(cost.phases.size(), 1u);
  ASSERT_EQ(cost.phases[0].plans.size(), 2u);
  const double smp_total = cost.phases[0].plans[0].total();
  const double lan_total = cost.phases[0].plans[1].total();
  EXPECT_DOUBLE_EQ(cost.phases[0].total(), std::max(smp_total, lan_total));
  EXPECT_DOUBLE_EQ(cost.total(), cost.phases[0].total());
  EXPECT_GT(lan_total, smp_total);  // LAN: slower sender and bigger barrier
}

TEST(CostModel, EmptySchedule) {
  const MachineTree tree = cluster();
  const CostModel model{tree};
  EXPECT_DOUBLE_EQ(model.cost(CommSchedule{}).total(), 0.0);
}

TEST(ValidateSchedule, AcceptsPlannedShapes) {
  const MachineTree tree = cluster();
  CommSchedule schedule;
  SuperstepPlan& plan = schedule.add_step("ok", 1, tree.root());
  plan.transfers = {{0, 1, 5}};
  EXPECT_NO_THROW(validate_schedule(tree, schedule));
}

TEST(ValidateSchedule, RejectsEscapedScope) {
  const MachineTree tree = make_figure1_cluster();
  CommSchedule schedule;
  SuperstepPlan& plan =
      schedule.add_step("bad", 1, tree.child(tree.root(), 0));  // SMP scope
  plan.transfers = {{0, 8, 5}};  // destination in the LAN
  EXPECT_THROW(validate_schedule(tree, schedule), std::invalid_argument);
}

TEST(ValidateSchedule, RejectsOverlappingScopesInOnePhase) {
  const MachineTree tree = make_figure1_cluster();
  CommSchedule schedule;
  Phase& phase = schedule.add_phase();
  SuperstepPlan a;
  a.label = "whole";
  a.level = 2;
  a.sync_scope = tree.root();
  SuperstepPlan b;
  b.label = "smp";
  b.level = 1;
  b.sync_scope = tree.child(tree.root(), 0);
  phase.plans.push_back(a);
  phase.plans.push_back(b);
  EXPECT_THROW(validate_schedule(tree, schedule), std::invalid_argument);
}

TEST(ValidateSchedule, RejectsBadPidsAndNegativeCompute) {
  const MachineTree tree = cluster();
  CommSchedule schedule;
  SuperstepPlan& plan = schedule.add_step("bad pid", 1, tree.root());
  plan.transfers = {{0, 42, 5}};
  EXPECT_THROW(validate_schedule(tree, schedule), std::invalid_argument);

  CommSchedule schedule2;
  SuperstepPlan& plan2 = schedule2.add_step("bad ops", 1, tree.root());
  plan2.compute = {{0, -1.0}};
  EXPECT_THROW(validate_schedule(tree, schedule2), std::invalid_argument);
}

TEST(ScheduleAccounting, ItemAndMessageTotals) {
  const MachineTree tree = cluster();
  CommSchedule schedule;
  SuperstepPlan& plan = schedule.add_step("s", 1, tree.root());
  plan.transfers = {{0, 1, 10}, {1, 2, 20}, {2, 2, 99}};  // last is a self-send
  EXPECT_EQ(schedule.total_items(), 30u);
  EXPECT_EQ(schedule.total_messages(), 2u);
}

}  // namespace
}  // namespace hbsp
