// Tests for workload partitioning (§3.3's c_{i,j}, §4.1's balanced shares).

#include "core/workload.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "core/topology.hpp"
#include "util/rng.hpp"

namespace hbsp {
namespace {

TEST(BalancedFractions, ProportionalToInverseR) {
  const std::array r{1.0, 2.0, 4.0};
  const auto f = balanced_fractions(r);
  EXPECT_NEAR(f[0], 4.0 / 7.0, 1e-12);
  EXPECT_NEAR(f[1], 2.0 / 7.0, 1e-12);
  EXPECT_NEAR(f[2], 1.0 / 7.0, 1e-12);
}

TEST(BalancedFractions, RejectsEmptyAndNonPositive) {
  EXPECT_THROW((void)balanced_fractions({}), std::invalid_argument);
  const std::array bad{1.0, 0.0};
  EXPECT_THROW((void)balanced_fractions(bad), std::invalid_argument);
}

TEST(Apportion, ExactTotalAndFlooring) {
  const std::array f{0.5, 0.3, 0.2};
  const auto shares = apportion(f, 10);
  EXPECT_EQ(shares, (std::vector<std::size_t>{5, 3, 2}));
}

TEST(Apportion, LargestRemainderGetsLeftovers) {
  const std::array f{1.0 / 3, 1.0 / 3, 1.0 / 3};
  const auto shares = apportion(f, 10);
  EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), std::size_t{0}), 10u);
  // 3.33 each; the first (tie-break by index) gets the extra.
  EXPECT_EQ(shares[0], 4u);
  EXPECT_EQ(shares[1], 3u);
  EXPECT_EQ(shares[2], 3u);
}

TEST(Apportion, ZeroItems) {
  const std::array f{0.6, 0.4};
  const auto shares = apportion(f, 0);
  EXPECT_EQ(shares, (std::vector<std::size_t>{0, 0}));
}

TEST(Apportion, RejectsBadFractions) {
  EXPECT_THROW((void)apportion({}, 5), std::invalid_argument);
  const std::array negative{1.2, -0.2};
  EXPECT_THROW((void)apportion(negative, 5), std::invalid_argument);
  const std::array short_sum{0.4, 0.4};
  EXPECT_THROW((void)apportion(short_sum, 5), std::invalid_argument);
}

TEST(EqualPartition, RemainderToFirst) {
  EXPECT_EQ(equal_partition(11, 4), (std::vector<std::size_t>{3, 3, 3, 2}));
  EXPECT_EQ(equal_partition(8, 4), (std::vector<std::size_t>{2, 2, 2, 2}));
  EXPECT_THROW((void)equal_partition(5, 0), std::invalid_argument);
}

TEST(BalancedPartition, FasterMachinesGetMore) {
  const std::array r{1.0, 2.0, 4.0};
  const auto shares = balanced_partition(r, 700);
  EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), std::size_t{0}), 700u);
  EXPECT_GT(shares[0], shares[1]);
  EXPECT_GT(shares[1], shares[2]);
  EXPECT_EQ(shares[0], 400u);
  EXPECT_EQ(shares[1], 200u);
  EXPECT_EQ(shares[2], 100u);
}

TEST(BalancedPartition, SatisfiesPaperEfficiencyCondition) {
  // §4.2: with c_j ∝ 1/r_j, r_j·c_j < 1 for every j (so the coordinator's
  // receive volume dominates the h-relation).
  const std::array r{1.0, 1.3, 2.1, 3.7, 5.0};
  const auto f = balanced_fractions(r);
  for (std::size_t j = 0; j < r.size(); ++j) {
    EXPECT_LT(r[j] * f[j], 1.0);
  }
}

TEST(TreePartition, FlatMatchesBalancedPartition) {
  const std::array r{1.0, 2.0, 4.0};
  const MachineTree tree = make_hbsp1_cluster(r);
  EXPECT_EQ(tree_partition(tree, 700), balanced_partition(r, 700));
}

TEST(TreePartition, SumsToNOnHierarchies) {
  const MachineTree tree = make_figure1_cluster();
  const auto shares = tree_partition(tree, 12345);
  EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), std::size_t{0}),
            12345u);
  // The SMP's identical cpus share equally among themselves.
  EXPECT_EQ(shares[0], shares[1]);
  EXPECT_EQ(shares[1], shares[2]);
}

TEST(SubtreePartition, CoversSubtreeExactly) {
  const MachineTree tree = make_figure1_cluster();
  const MachineId lan = tree.child(tree.root(), 2);
  const auto shares = subtree_partition(tree, lan, 1000);
  const auto [first, last] = tree.processor_range(lan);
  EXPECT_EQ(shares.size(), static_cast<std::size_t>(last - first));
  EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), std::size_t{0}),
            1000u);
  // Faster LAN members receive more.
  for (std::size_t i = 1; i < shares.size(); ++i) {
    EXPECT_GE(shares[i - 1], shares[i]);
  }
}

class ApportionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ApportionProperty, AlwaysSumsToNAndStaysNearExact) {
  util::Rng rng{GetParam()};
  const auto p = static_cast<std::size_t>(rng.uniform_u64(1, 12));
  std::vector<double> r;
  for (std::size_t i = 0; i < p; ++i) r.push_back(rng.uniform(1.0, 8.0));
  r[static_cast<std::size_t>(rng.uniform_u64(0, p - 1))] = 1.0;
  const auto n = static_cast<std::size_t>(rng.uniform_u64(0, 100000));

  const auto fractions = balanced_fractions(r);
  const auto shares = apportion(fractions, n);
  EXPECT_EQ(std::accumulate(shares.begin(), shares.end(), std::size_t{0}), n);
  for (std::size_t i = 0; i < p; ++i) {
    const double exact = fractions[i] * static_cast<double>(n);
    // Largest-remainder keeps every share within one item of exact.
    EXPECT_NEAR(static_cast<double>(shares[i]), exact, 1.0 + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ApportionProperty,
                         ::testing::Range<std::uint64_t>(0, 32));

}  // namespace
}  // namespace hbsp
