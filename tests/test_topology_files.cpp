// Keeps the shipped topology files (topologies/*.txt) loadable and
// equivalent to the programmatic presets they document.

#include <gtest/gtest.h>

#include "core/topology.hpp"
#include "core/topology_io.hpp"

namespace hbsp {
namespace {

// CMake passes the source directory so the test runs from any build dir.
#ifndef HBSPK_SOURCE_DIR
#define HBSPK_SOURCE_DIR "."
#endif

std::string topology_path(const char* name) {
  return std::string{HBSPK_SOURCE_DIR} + "/topologies/" + name;
}

TEST(TopologyFiles, Testbed10MatchesPreset) {
  const MachineTree file = load_topology(topology_path("testbed10.txt"));
  const MachineTree preset = make_paper_testbed(10);
  ASSERT_EQ(file.num_processors(), preset.num_processors());
  EXPECT_EQ(file.height(), preset.height());
  for (int pid = 0; pid < 10; ++pid) {
    EXPECT_DOUBLE_EQ(file.processor_r(pid), preset.processor_r(pid)) << pid;
  }
  EXPECT_DOUBLE_EQ(file.g(), preset.g());
  EXPECT_DOUBLE_EQ(file.sync_L(file.root()), preset.sync_L(preset.root()));
}

TEST(TopologyFiles, Figure1MatchesPreset) {
  const MachineTree file = load_topology(topology_path("figure1_campus.txt"));
  const MachineTree preset = make_figure1_cluster();
  ASSERT_EQ(file.num_processors(), preset.num_processors());
  EXPECT_EQ(file.height(), preset.height());
  for (int pid = 0; pid < preset.num_processors(); ++pid) {
    EXPECT_DOUBLE_EQ(file.processor_r(pid), preset.processor_r(pid)) << pid;
  }
  EXPECT_EQ(file.coordinator_pid(file.root()),
            preset.coordinator_pid(preset.root()));
}

TEST(TopologyFiles, WideAreaGridMatchesPreset) {
  const MachineTree file = load_topology(topology_path("wide_area_grid.txt"));
  const MachineTree preset = make_wide_area_grid();
  ASSERT_EQ(file.num_processors(), preset.num_processors());
  EXPECT_EQ(file.height(), 3);
  for (int pid = 0; pid < preset.num_processors(); ++pid) {
    EXPECT_DOUBLE_EQ(file.processor_r(pid), preset.processor_r(pid)) << pid;
  }
}

TEST(TopologyFiles, AllRoundTripThroughSerialisation) {
  for (const char* name :
       {"testbed10.txt", "figure1_campus.txt", "wide_area_grid.txt"}) {
    const MachineTree file = load_topology(topology_path(name));
    const MachineTree reparsed = parse_topology(serialize_topology(file));
    EXPECT_EQ(serialize_topology(reparsed), serialize_topology(file)) << name;
  }
}

}  // namespace
}  // namespace hbsp
