#pragma once
// Fixture: clean leaf-layer header.
namespace fixture {
inline int identity(int x) { return x; }
}  // namespace fixture
