// Fixture: the leaf layer reaching up into sim — a layering back-edge.
#include "sim/clean.hpp"  // expect: layering (back-edge)

int fixture_back_edge() { return 0; }
