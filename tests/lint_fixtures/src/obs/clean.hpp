#pragma once
// Fixture: clean obs-layer header (target of sim's undeclared edge).
#include "util/clean.hpp"
