// Fixture: wall-clock reads inside a deterministic zone. Member calls
// (ctx.time()) and identifiers merely containing "time" (drop_time,
// time_since_epoch) must NOT be flagged — only free calls to ::time() and
// the std::chrono clocks. (Fixtures are linted, never compiled.)
#include <chrono>
#include <ctime>

struct Ctx;

double fixture_wall_clock(const Ctx& ctx) {
  auto t0 = std::chrono::steady_clock::now();   // expect: wall-clock
  auto t1 = std::chrono::system_clock::now();   // expect: wall-clock
  std::time_t raw = time(nullptr);              // expect: wall-clock
  // No finding on any of these: member access and time-containing names.
  double ok = ctx.time() + ctx->drop_time(3) + t0.time_since_epoch().count();
  (void)t1;
  return ok + static_cast<double>(raw);
}
