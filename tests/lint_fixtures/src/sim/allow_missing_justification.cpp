// Fixture: an allow pragma with no justification is itself a finding, and
// the violation it fails to cover is still flagged.
#include <random>

unsigned fixture_unjustified() {
  // hbsp-lint: allow(random-device)
  std::random_device rd;  // expect: allow-missing-justification + random-device
  return rd();
}
