// Fixture: sim includes obs, which exists but is not a declared dep of sim
// — an undeclared layering edge (not a back-edge: obs does not depend on
// sim).
#include "obs/clean.hpp"  // expect: layering (undeclared edge)

int fixture_undeclared_edge() { return 0; }
