// Fixture: ordering by pointer value in a deterministic zone — the order
// depends on the allocator, so plans built from it differ run to run.
#include <cstdint>
#include <map>

struct Node {
  int id;
};

std::size_t fixture_pointer_ordering(Node* a, Node* b) {
  std::map<Node*, int> rank;                    // expect: pointer-ordering
  rank[a] = 0;
  rank[b] = 1;
  auto key = reinterpret_cast<std::uintptr_t>(a);  // expect: pointer-ordering
  return rank.size() + static_cast<std::size_t>(key % 2);
}
