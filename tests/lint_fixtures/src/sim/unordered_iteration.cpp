// Fixture: unordered-container use in a deterministic zone — iteration
// order depends on hashing and address layout.
#include <string>
#include <unordered_map>
#include <unordered_set>

double fixture_unordered() {
  std::unordered_map<std::string, double> costs;  // expect: unordered-container
  std::unordered_set<int> seen;                   // expect: unordered-container
  costs["a"] = 1.0;
  seen.insert(1);
  double total = 0.0;
  for (const auto& [key, value] : costs) {
    (void)key;
    total += value;
  }
  return total + static_cast<double>(seen.size());
}
