#pragma once
// Fixture: a clean deterministic-zone header — no finding expected.
#include <map>
#include <vector>

#include "core/clean.hpp"
#include "util/clean.hpp"

namespace fixture {

inline double accumulate_cost(const std::vector<double>& costs) {
  double total = 0.0;
  for (const double c : costs) total += c;
  return total;
}

}  // namespace fixture
