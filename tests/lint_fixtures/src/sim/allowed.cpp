// Fixture: a justified allow pragma — the wall-clock read below must be
// counted as allowed, not flagged.
#include <chrono>

double fixture_allowed_instrumentation() {
  // hbsp-lint: allow(wall-clock) fixture: cell timer feeding a gauge that
  // is reported but never compared
  auto t0 = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(t0.time_since_epoch()).count();
}
