// Fixture: C global-state RNG inside a deterministic zone.
#include <cstdlib>

int fixture_c_rand() {
  srand(42);          // expect: c-rand
  return rand() % 7;  // expect: c-rand
}
