// Fixture: nondeterministic seeding inside a deterministic zone.
#include <random>

unsigned fixture_random_device() {
  std::random_device rd;  // expect: random-device
  return rd();
}
