// Fixture: an allow pragma that suppresses nothing must be reported, so
// stale escapes cannot accumulate.
int fixture_allow_unused() {
  // hbsp-lint: allow(c-rand) fixture: stale justification, nothing below
  int x = 7;  // expect: allow-unused (reported at the pragma line)
  return x;
}
