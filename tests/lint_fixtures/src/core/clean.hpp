#pragma once
// Fixture: clean core-layer header.
#include "util/clean.hpp"

namespace fixture {
inline double double_cost(double c) { return 2.0 * c; }
}  // namespace fixture
