// Fixture: float in cost arithmetic inside a deterministic zone — costs
// stay in double end to end.
double fixture_float_narrowing(double g, double latency) {
  float narrowed = static_cast<float>(g * latency);  // expect: float-narrowing
  return static_cast<double>(narrowed);
}
