// Heterogeneity report: the §5.1 workflow end to end.
//
//  1. Run the BYTEmark-substitute kernel suite natively on this host (the
//     paper ran BYTEmark on each workstation);
//  2. combine the host's score with the supplied (or default) scores of the
//     other cluster members;
//  3. derive the HBSP^1 parameters (ranking, r_j, c_j) from the scores;
//  4. build the machine and predict + simulate the collective costs a user
//     of this cluster should expect.
//
//   ./build/examples/heterogeneity_report [--peers 900,750,420]
//                                         [--kbytes 500] [--quick]

#include <cstdio>
#include <string>
#include <vector>

#include "bytemark/kernels.hpp"
#include "bytemark/ranking.hpp"
#include "collectives/planners.hpp"
#include "core/analysis.hpp"
#include "core/cost_model.hpp"
#include "core/topology_io.hpp"
#include "experiments/figures.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace hbsp;

std::vector<double> parse_peer_scores(const std::string& csv) {
  std::vector<double> scores;
  std::size_t start = 0;
  while (start < csv.size()) {
    const auto comma = csv.find(',', start);
    const std::string cell =
        csv.substr(start, comma == std::string::npos ? csv.npos : comma - start);
    scores.push_back(std::stod(cell));
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return scores;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{argc, argv};
  cli.allow("peers", "comma-separated composite scores of the other machines")
      .allow("kbytes", "collective problem size in KB (default 500)")
      .allow("quick", "shrink kernel workloads (for CI)");
  cli.validate();

  // 1. Benchmark this host.
  bytemark::KernelConfig config;
  if (cli.get_bool("quick", false)) {
    config.min_iterations = 2;
    config.min_seconds = 0.01;
  }
  std::puts("Running the BYTEmark-substitute suite on this host...");
  const bytemark::SuiteResult suite = bytemark::run_suite(config);
  util::Table kernels{"Host kernel scores"};
  kernels.set_header({"kernel", "iterations/s"});
  for (const auto& kernel : suite.kernels) {
    kernels.add_row({kernel.name, util::Table::num(kernel.iterations_per_second, 1)});
  }
  kernels.print();
  std::printf("composite score (geometric mean): %.1f\n\n", suite.composite);

  // 2. This host + its peers. Default peers: a plausible mixed lab, scaled
  //    off the host's own score.
  std::vector<double> scores{suite.composite};
  if (cli.has("peers")) {
    for (const double s : parse_peer_scores(cli.get("peers", ""))) {
      scores.push_back(s);
    }
  } else {
    for (const double factor : {0.85, 0.7, 0.55, 0.4}) {
      scores.push_back(suite.composite * factor);
    }
  }

  // 3. Scores -> ranking -> r_j, c_j.
  const bytemark::Ranking ranking = bytemark::ranking_from_scores(scores);
  util::Table params{"Derived HBSP^1 parameters"};
  params.set_header({"machine", "score", "speed rank", "r_j", "c_j"});
  for (std::size_t pid = 0; pid < scores.size(); ++pid) {
    params.add_row({pid == 0 ? "this host" : "peer " + std::to_string(pid),
                    util::Table::num(ranking.scores[pid], 1),
                    std::to_string(ranking.rank[pid]),
                    util::Table::num(ranking.estimated_r[pid], 3),
                    util::Table::num(ranking.fractions[pid], 3)});
  }
  params.print();

  // 4. Build the machine and report expected collective costs.
  const MachineSpec spec = bytemark::cluster_spec_from_ranking(ranking, 2e-3);
  const MachineTree machine = MachineTree::build(spec, 1e-6);
  const CostModel model{machine};
  const auto n =
      util::ints_in_kbytes(static_cast<std::size_t>(cli.get_int("kbytes", 500)));

  util::Table costs{"Expected collective costs for " + std::to_string(n) +
                    " items (" + util::format_bytes(n * 4) + ")"};
  costs.set_header({"collective", "model", "simulated"});
  const auto add = [&](const char* name, const CommSchedule& schedule) {
    costs.add_row({name, util::format_time(model.cost(schedule).total()),
                   util::format_time(exp::simulate_makespan(machine, schedule,
                                                            sim::SimParams{}))});
  };
  add("gather (balanced)", coll::plan_gather(machine, n, {}));
  add("scatter (balanced)", coll::plan_scatter(machine, n, {}));
  add("broadcast (two-phase)", coll::plan_broadcast(machine, n, {}));
  add("allgather", coll::plan_allgather(machine, n));
  add("reduce", coll::plan_reduce(machine, n, {}));
  add("scan", coll::plan_scan(machine, n));
  add("all-to-all", coll::plan_alltoall(machine, n));
  costs.print();

  std::puts(
      "\nFeed the derived description into your own programs with\n"
      "MachineTree::build(...) or save it as a topology file:");
  std::fputs(serialize_topology(machine).c_str(), stdout);
  return 0;
}
