// HBSP^2 strategy planning for a campus grid: given a machine description
// (file or the built-in Figure 1 cluster), print its Table 1 parameters and
// use the cost model to answer the questions §4 raises — which processor
// should coordinate, one- or two-phase broadcast, and how large a problem
// must be before the hierarchy's extra level pays for itself.
//
//   ./build/examples/campus_grid_planner [--topology my_cluster.txt]
//                                        [--n-items 250000]

#include <cstdio>

#include "collectives/planners.hpp"
#include "core/analysis.hpp"
#include "core/cost_model.hpp"
#include "core/topology.hpp"
#include "core/topology_io.hpp"
#include "experiments/figures.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace hbsp;

void describe(const MachineTree& machine) {
  util::Table table{"Machine parameters (Table 1)"};
  table.set_header({"node", "name", "level", "children", "r", "L", "c",
                    "coordinator"});
  for (int level = machine.height(); level >= 0; --level) {
    for (const MachineId id : machine.level_ids(level)) {
      const auto& node = machine.node(id);
      table.add_row(
          {"M_{" + std::to_string(id.level) + "," + std::to_string(id.index) +
               "}",
           node.name, std::to_string(id.level),
           std::to_string(machine.num_children(id)), util::Table::num(node.r, 2),
           util::Table::num(node.sync_L, 4), util::Table::num(node.c, 3),
           machine.node(machine.processor(machine.coordinator_pid(id))).name});
    }
  }
  table.print();
}

void advise_gather(const MachineTree& machine, std::size_t n) {
  const CostModel model{machine};
  util::Table table{"Gather: who should collect the " + std::to_string(n) +
                    " items?"};
  table.set_header({"root", "r", "model cost", "simulated"});
  const int fast = machine.coordinator_pid(machine.root());
  const int slow = machine.slowest_pid(machine.root());
  for (const int root : {fast, slow}) {
    const auto schedule = coll::plan_gather(
        machine, n, {.root_pid = root, .shares = coll::Shares::kBalanced});
    table.add_row({machine.node(machine.processor(root)).name,
                   util::Table::num(machine.processor_r(root), 2),
                   util::format_time(model.cost(schedule).total()),
                   util::format_time(exp::simulate_makespan(machine, schedule,
                                                            sim::SimParams{}))});
  }
  table.print();
  std::printf("-> coordinate at '%s' (the fastest machine), per §4.1.\n",
              machine.node(machine.processor(fast)).name.c_str());
}

void advise_broadcast(const MachineTree& machine, std::size_t n) {
  const CostModel model{machine};
  util::Table table{"Broadcast: one- or two-phase top level?"};
  table.set_header({"strategy", "model cost", "simulated"});
  double best = 0.0;
  const char* winner = "";
  for (const auto top :
       {analysis::TopPhase::kOnePhase, analysis::TopPhase::kTwoPhase}) {
    const auto schedule = coll::plan_broadcast(
        machine, n,
        {.root_pid = -1, .top_phase = top, .shares = coll::Shares::kEqual});
    const double cost = model.cost(schedule).total();
    const char* name =
        top == analysis::TopPhase::kOnePhase ? "one-phase" : "two-phase";
    if (best == 0.0 || cost < best) {
      best = cost;
      winner = name;
    }
    table.add_row({name, util::format_time(cost),
                   util::format_time(exp::simulate_makespan(machine, schedule,
                                                            sim::SimParams{}))});
  }
  table.print();
  std::printf("-> use the %s top level at this problem size.\n", winner);

  if (machine.height() >= 2) {
    const auto crossover = analysis::hbsp2_broadcast_crossover_n(machine, 1 << 26);
    if (crossover) {
      std::printf(
          "   (two-phase starts winning at n = %zu items = %s of payload)\n",
          *crossover, util::format_bytes(*crossover * 4).c_str());
    } else {
      std::puts("   (one-phase wins at every size on this machine)");
    }
  }
}

void hierarchy_overhead(const MachineTree& machine) {
  if (machine.height() < 2) return;
  util::Table table{
      "Hierarchy overhead: problem size vs extra-level cost share (gather)"};
  table.set_header({"n (items)", "super^1 share", "super^2 share", "total"});
  for (const std::size_t n : {100u, 1000u, 10000u, 100000u, 1000000u}) {
    const auto cost = analysis::hbsp2_gather(machine, n, analysis::Shares::kBalanced);
    const double total = cost.total();
    table.add_row({std::to_string(n),
                   util::Table::num(100.0 * cost.steps[0].cost / total, 1) + "%",
                   util::Table::num(100.0 * cost.steps[1].cost / total, 1) + "%",
                   util::format_time(total)});
  }
  table.print();
  std::puts(
      "-> below the knee, the campus link and L_{2,0} dominate: \"the problem\n"
      "   size must outweigh the cost of the extra level\" (§4.3).");
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{argc, argv};
  cli.allow("topology", "topology file (default: the built-in Figure 1 machine)")
      .allow("n-items", "problem size in items (default 250000)");
  cli.validate();

  const MachineTree machine = cli.has("topology")
                                  ? load_topology(cli.get("topology", ""))
                                  : make_figure1_cluster();
  const auto n = static_cast<std::size_t>(cli.get_int("n-items", 250000));

  std::printf("Planning for a %d-level machine with %d processors.\n\n",
              machine.height(), machine.num_processors());
  describe(machine);
  advise_gather(machine, n);
  advise_broadcast(machine, n);
  hierarchy_overhead(machine);
  return 0;
}
