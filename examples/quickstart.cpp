// Quickstart: describe a heterogeneous cluster, gather data to the fastest
// machine on the HBSPlib-like runtime, and compare the measured virtual time
// with the HBSP^k model's prediction.
//
// Build & run:   cmake -B build -G Ninja && cmake --build build
//                ./build/examples/quickstart

#include <cstdio>
#include <numeric>

#include "collectives/executors.hpp"
#include "core/analysis.hpp"
#include "core/topology_io.hpp"
#include "util/units.hpp"

int main() {
  using namespace hbsp;

  // 1. An HBSP^1 machine: four workstations, the fastest has r = 1 (§3.3).
  //    The same description can live in a file (core/topology_io.hpp).
  const MachineTree machine = parse_topology(R"(
    g 1e-6
    machine cluster L=2e-3 {
      machine fast    r=1
      machine medium  r=1.5
      machine slow    r=2.2
      machine slowest r=3.0
    }
  )");

  // 2. Every processor holds a balanced share of n items: faster machines
  //    hold more (c_j ∝ 1/r_j, the paper's load-balancing rule).
  const std::size_t n = 100000;
  const auto shares = coll::leaf_shares(machine, n, coll::Shares::kBalanced);
  std::puts("Balanced shares (items per processor):");
  for (int pid = 0; pid < machine.num_processors(); ++pid) {
    std::printf("  %-8s r=%.1f  ->  %zu items\n",
                machine.node(machine.processor(pid)).name.c_str(),
                machine.processor_r(pid), shares[static_cast<std::size_t>(pid)]);
  }

  // 3. Run the HBSP^1 gather on the runtime (virtual-time engine): an SPMD
  //    program, one instance per processor.
  double measured = 0.0;
  std::size_t checksum = 0;
  const rt::Program program = [&](rt::Hbsp& ctx) {
    std::vector<std::int32_t> mine(
        shares[static_cast<std::size_t>(ctx.pid())],
        static_cast<std::int32_t>(ctx.pid()));
    const auto gathered = coll::gather<std::int32_t>(ctx, mine, n, {});
    if (gathered) {
      checksum = gathered->size();
      measured = ctx.time();
    }
  };
  (void)rt::run_program(machine, sim::SimParams{}, program);

  // 4. Compare with the closed-form model cost: gn + L for balanced gather.
  const auto predicted = analysis::hbsp1_gather(
      machine, machine.root(), machine.coordinator_pid(machine.root()), n,
      analysis::Shares::kBalanced);
  std::printf("\nGathered %zu items to '%s'.\n", checksum,
              machine.node(machine.processor(0)).name.c_str());
  std::printf("model cost  T = gh + L = %s\n",
              util::format_time(predicted.total()).c_str());
  std::printf("virtual time on the simulated cluster = %s\n",
              util::format_time(measured).c_str());
  std::puts("\nNext: examples/sample_sort (a full application),");
  std::puts("      examples/campus_grid_planner (HBSP^2 strategy planning),");
  std::puts("      examples/heterogeneity_report (rank this host's hardware).");
  return 0;
}
