// Trace explorer: run any collective on any built-in machine with full event
// tracing, print a per-processor utilisation breakdown, and export a Chrome
// tracing file (open it at chrome://tracing or https://ui.perfetto.dev to
// see sender serialisation, the root's receive queue and barrier waits).
//
//   ./build/examples/trace_explorer --collective gather --machine campus
//                                   --kbytes 200 --out trace.json

#include <cstdio>
#include <stdexcept>
#include <string>

#include "collectives/advisor.hpp"
#include "core/topology.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/trace_export.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace hbsp;

MachineTree pick_machine(const std::string& name) {
  if (name == "testbed") return make_paper_testbed(10);
  if (name == "campus") return make_figure1_cluster();
  if (name == "wan") return make_wide_area_grid();
  throw std::invalid_argument{"unknown machine '" + name +
                              "' (testbed|campus|wan)"};
}

coll::CollectiveKind pick_collective(const std::string& name) {
  if (name == "gather") return coll::CollectiveKind::kGather;
  if (name == "broadcast") return coll::CollectiveKind::kBroadcast;
  if (name == "scatter") return coll::CollectiveKind::kScatter;
  if (name == "reduce") return coll::CollectiveKind::kReduce;
  throw std::invalid_argument{"unknown collective '" + name +
                              "' (gather|broadcast|scatter|reduce)"};
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{argc, argv};
  cli.allow("collective", "gather|broadcast|scatter|reduce (default gather)")
      .allow("machine", "testbed|campus|wan (default campus)")
      .allow("kbytes", "problem size in KB (default 200)")
      .allow("out", "Chrome trace output path (default hbspk_trace.json)");
  cli.validate();

  const MachineTree machine = pick_machine(cli.get("machine", "campus"));
  const auto kind = pick_collective(cli.get("collective", "gather"));
  const auto n =
      hbsp::util::ints_in_kbytes(static_cast<std::size_t>(cli.get_int("kbytes", 200)));

  // Let the advisor pick the configuration, then trace its schedule.
  const auto advice = coll::advise(machine, kind, n);
  std::printf("advisor: %s with %s -> predicted %s (%s)\n",
              coll::to_string(kind), advice.options.empty()
                                         ? "?"
                                         : advice.options.front().description.c_str(),
              util::format_time(advice.predicted_cost).c_str(),
              advice.rationale.c_str());
  const auto schedule = advice.plan(machine, n);

  sim::ClusterSim sim{machine, sim::SimParams{}, /*record_events=*/true};
  const auto result = sim.run(schedule);
  std::printf("simulated makespan: %s over %zu phase(s)\n\n",
              util::format_time(result.makespan).c_str(),
              result.phase_completion.size());

  util::Table table{"Per-processor utilisation"};
  table.set_header({"pid", "name", "r", "send", "recv", "compute", "busy",
                    "utilisation"});
  for (int pid = 0; pid < machine.num_processors(); ++pid) {
    const auto& stats = sim.trace().pid_stats(pid);
    table.add_row(
        {std::to_string(pid), machine.node(machine.processor(pid)).name,
         util::Table::num(machine.processor_r(pid), 2),
         util::format_time(stats.send_seconds),
         util::format_time(stats.recv_seconds),
         util::format_time(stats.compute_seconds),
         util::format_time(stats.busy_seconds),
         util::Table::num(100.0 * stats.busy_seconds / result.makespan, 1) +
             "%"});
  }
  table.print();

  const std::string out = cli.get("out", "hbspk_trace.json");
  sim::export_chrome_trace(sim.trace(), out);
  std::printf(
      "\nWrote %zu trace events to %s - open in chrome://tracing or\n"
      "https://ui.perfetto.dev to inspect the timeline.\n",
      sim.trace().events().size(), out.c_str());
  return 0;
}
