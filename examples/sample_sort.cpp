// A complete HBSP^1/HBSP^2 application: heterogeneous parallel sample sort
// (library implementation in src/apps/sample_sort.hpp).
//
// This is the kind of program the paper's conclusion calls for ("designing
// HBSP^k applications that can take advantage of our efficient heterogeneous
// communication algorithms"): scatter in c_j-proportional shares, local sort,
// splitter allgather, routing with speed-weighted bucket widths, local sort,
// gather. Running it with equal shares gives the textbook BSP sample sort on
// the same machine — the baseline the improvement factor compares against.

#include <cstdio>

#include "apps/sample_sort.hpp"
#include "core/topology.hpp"
#include "util/cli.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace hbsp;
  util::Cli cli{argc, argv};
  cli.allow("n", "number of integers to sort (default 200000)")
      .allow("p", "number of testbed workstations, 2..10 (default 8)")
      .allow("hierarchical", "use the Figure 1 campus machine instead")
      .allow("compare", "also run the equal-shares BSP version (default true)");
  cli.validate();

  const auto n = static_cast<std::size_t>(cli.get_int("n", 200000));
  const int p = static_cast<int>(cli.get_int("p", 8));
  const MachineTree machine = cli.get_bool("hierarchical", false)
                                  ? make_figure1_cluster()
                                  : make_paper_testbed(p);
  const auto input = util::uniform_int_workload(n, 2001);

  std::printf("Sorting %zu uniform integers on a %d-processor machine...\n", n,
              machine.num_processors());
  const apps::SortRun balanced =
      apps::run_sample_sort(machine, input, coll::Shares::kBalanced);
  std::printf("balanced sample sort: %s, %s (%s of data)\n",
              balanced.valid ? "SORTED" : "FAILED",
              util::format_time(balanced.virtual_seconds).c_str(),
              util::format_bytes(n * 4).c_str());

  if (cli.get_bool("compare", true)) {
    const apps::SortRun equal =
        apps::run_sample_sort(machine, input, coll::Shares::kEqual);
    std::printf("equal-shares (BSP)  : %s, %s\n",
                equal.valid ? "SORTED" : "FAILED",
                util::format_time(equal.virtual_seconds).c_str());
    std::printf("improvement factor T_bsp/T_hbsp = %.3f\n",
                equal.virtual_seconds / balanced.virtual_seconds);
  }
  return balanced.valid ? 0 : 1;
}
