#include "faults/fault_plan.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

#include "obs/metrics.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace hbsp::faults {
namespace {

/// Stream tag mixed into the per-pid seed so the slowdown, drop, and loss
/// draws of one processor are mutually independent.
enum : std::uint64_t { kSlowdownStream = 1, kDropStream = 2, kLossStream = 3 };

}  // namespace

bool FaultPlan::empty() const noexcept {
  return slowdowns.empty() && drops.empty() && message_loss_probability <= 0.0;
}

std::uint64_t FaultPlan::fingerprint() const {
  util::Hash64 hash;
  hash.add(slowdowns.size());
  for (const SlowdownWindow& w : slowdowns) {
    hash.add_int(w.pid);
    hash.add_double(w.begin);
    hash.add_double(w.end);
    hash.add_double(w.factor);
  }
  hash.add(drops.size());
  for (const MachineDrop& d : drops) {
    hash.add_int(d.pid);
    hash.add_double(d.time);
  }
  hash.add_double(message_loss_probability);
  hash.add(loss_seed);
  return hash.digest();
}

void FaultPlan::validate() const {
  for (const SlowdownWindow& w : slowdowns) {
    if (w.pid < 0) {
      throw std::invalid_argument{"FaultPlan: slowdown pid " +
                                  std::to_string(w.pid) + " is negative"};
    }
    if (!(w.begin >= 0.0) || !(w.end > w.begin)) {
      throw std::invalid_argument{
          "FaultPlan: slowdown window must satisfy 0 <= begin < end, got [" +
          std::to_string(w.begin) + ", " + std::to_string(w.end) + ")"};
    }
    if (!(w.factor > 0.0)) {
      throw std::invalid_argument{"FaultPlan: slowdown factor must be > 0, got " +
                                  std::to_string(w.factor)};
    }
  }
  for (const MachineDrop& d : drops) {
    if (d.pid < 0) {
      throw std::invalid_argument{"FaultPlan: drop pid " +
                                  std::to_string(d.pid) + " is negative"};
    }
    if (!(d.time >= 0.0)) {
      throw std::invalid_argument{"FaultPlan: drop time must be >= 0, got " +
                                  std::to_string(d.time)};
    }
  }
  if (!(message_loss_probability >= 0.0) || !(message_loss_probability <= 1.0)) {
    throw std::invalid_argument{
        "FaultPlan: message_loss_probability must be in [0, 1], got " +
        std::to_string(message_loss_probability)};
  }
}

FaultPlan make_chaos_plan(int num_processors, const ChaosOptions& options,
                          std::uint64_t seed) {
  if (num_processors < 1) {
    throw std::invalid_argument{"make_chaos_plan: need at least one processor"};
  }
  obs::Registry::global().counter("faults.chaos_plans").increment();
  if (options.horizon <= 0.0 || options.slowdown_rate < 0.0 ||
      options.slowdown_max_factor <= 1.0 ||
      options.slowdown_max_duration <= 0.0 || options.drop_probability < 0.0 ||
      options.drop_probability > 1.0) {
    throw std::invalid_argument{"make_chaos_plan: bad ChaosOptions"};
  }

  FaultPlan plan;
  plan.message_loss_probability = options.message_loss_probability;
  plan.loss_seed = util::split_seed(seed, kLossStream);

  for (int pid = 0; pid < num_processors; ++pid) {
    const auto stream = static_cast<std::uint64_t>(pid);

    // Window count: floor(rate) certain windows plus one more with the
    // fractional probability, so the expectation is exactly the rate.
    util::Rng slow_rng{util::split_seed(util::split_seed(seed, stream),
                                        kSlowdownStream)};
    const double rate = options.slowdown_rate;
    auto windows = static_cast<int>(std::floor(rate));
    if (slow_rng.uniform01() < rate - std::floor(rate)) ++windows;
    for (int w = 0; w < windows; ++w) {
      SlowdownWindow window;
      window.pid = pid;
      window.begin = slow_rng.uniform(0.0, options.horizon);
      window.end = window.begin +
                   slow_rng.uniform01() * options.slowdown_max_duration +
                   1e-9;
      window.factor =
          1.0 + slow_rng.uniform01() * (options.slowdown_max_factor - 1.0);
      plan.slowdowns.push_back(window);
    }

    util::Rng drop_rng{util::split_seed(util::split_seed(seed, stream),
                                        kDropStream)};
    if (drop_rng.uniform01() < options.drop_probability) {
      plan.drops.push_back({pid, drop_rng.uniform(0.0, options.horizon)});
    }
  }
  plan.validate();
  return plan;
}

}  // namespace hbsp::faults
