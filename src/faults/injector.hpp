#pragma once
// The FaultInjector answers the cluster simulator's three questions — "how
// slow is this processor right now?", "is this machine still alive?", and
// "did this send attempt survive the wire?" — as pure functions of a
// validated FaultPlan. It holds no mutable state, so one injector can be
// shared by any number of simulators and every answer is independent of the
// order in which questions are asked (the determinism contract the sweep
// engine relies on).

#include <cstdint>
#include <vector>

#include "faults/fault_plan.hpp"

namespace hbsp::faults {

class FaultInjector {
 public:
  /// Validates and takes ownership of the plan.
  explicit FaultInjector(FaultPlan plan);

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }

  /// Product of the factors of all slowdown windows of `pid` containing
  /// `at`; exactly 1.0 when none do, so an empty plan perturbs nothing.
  [[nodiscard]] double slowdown_factor(int pid, double at) const noexcept;

  /// Virtual time at which `pid` drops out, +infinity if it never does.
  /// Multiple drops of one pid collapse to the earliest.
  [[nodiscard]] double drop_time(int pid) const noexcept;

  /// True when `pid` has dropped out by time `at`.
  [[nodiscard]] bool dropped_by(int pid, double at) const noexcept {
    return drop_time(pid) <= at;
  }

  /// True when the plan schedules at least one dropout.
  [[nodiscard]] bool has_drops() const noexcept { return !plan_.drops.empty(); }

  /// Whether send attempt `attempt` (1-based) of the message identified by
  /// `message_key` is lost. A pure function of (loss_seed, key, attempt):
  /// stable across runs, platforms, and call order.
  [[nodiscard]] bool lose_message(std::uint64_t message_key,
                                  int attempt) const noexcept;

 private:
  FaultPlan plan_;
  std::vector<std::vector<SlowdownWindow>> windows_by_pid_;
  std::vector<double> drop_time_by_pid_;
};

}  // namespace hbsp::faults
