#pragma once
// Fault plans: declarative, seeded descriptions of a misbehaving cluster.
//
// The paper's testbed was ten *non-dedicated* workstations (§5.1): machines
// slow down when other users log in, segments drop packets, and a box can
// disappear mid-run. A FaultPlan captures those disturbances as data —
// timed per-processor slowdown windows, permanent machine drops, and a
// per-message loss probability — so a simulation under faults is exactly as
// reproducible as a fault-free one. Every random decision is keyed by the
// *identity* of the thing it perturbs (pid, message id, attempt), never by
// execution order, so any (plan, seed) pair replays bit-identically at any
// sweep thread count.
//
// The plan is consumed by faults::FaultInjector (injector.hpp), which the
// cluster simulator queries; this header is deliberately free of simulator
// types so the subsystem layers below sim.

#include <cstdint>
#include <vector>

namespace hbsp::faults {

/// A transient per-processor slowdown: while the processor's virtual clock is
/// inside [begin, end) its busy times are multiplied by `factor` — the
/// time-varying analogue of the machine's static r ("someone started a build
/// on ws3 between t=2s and t=5s").
struct SlowdownWindow {
  int pid = 0;
  double begin = 0.0;
  double end = 0.0;
  double factor = 1.0;  ///< > 0; overlapping windows multiply
};

/// A permanent machine dropout: from `time` on, the processor does no
/// compute, sends nothing, and receives nothing. Its barrier scopes stall
/// until the failure detector excludes it (see SimParams).
struct MachineDrop {
  int pid = 0;
  double time = 0.0;
};

/// A full disturbance script for one run.
struct FaultPlan {
  std::vector<SlowdownWindow> slowdowns;
  std::vector<MachineDrop> drops;

  /// Probability that any single send attempt vanishes on the wire. The
  /// decision for (message, attempt) is a pure function of `loss_seed` and
  /// those identities — deterministic and order-independent.
  double message_loss_probability = 0.0;
  std::uint64_t loss_seed = 1;

  /// True when the plan perturbs nothing (the injector is then a no-op and
  /// the simulation is bit-identical to a fault-free run).
  [[nodiscard]] bool empty() const noexcept;

  /// Throws std::invalid_argument with a field-naming message when any
  /// window is inverted or non-positive, any pid is negative, any drop time
  /// is negative, or the loss probability is outside [0, 1].
  void validate() const;

  /// Stable hash of the whole disturbance script (windows, drops, loss
  /// probability and seed, all by bit pattern). Plans with equal
  /// fingerprints perturb a simulation identically; the scenario cache keys
  /// on it. The empty plan hashes like any other value — callers who want
  /// "no injector" distinct from "empty plan" must encode that themselves.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

/// Knobs of the deterministic chaos-plan generator used by the chaos sweeps.
/// All durations are virtual seconds; `horizon` bounds when disturbances
/// start.
struct ChaosOptions {
  double horizon = 1.0;                ///< disturbances begin in [0, horizon)
  double slowdown_rate = 0.0;          ///< expected windows per processor
  double slowdown_max_factor = 4.0;    ///< factors drawn from (1, max]
  double slowdown_max_duration = 0.2;  ///< durations drawn from (0, max]
  double drop_probability = 0.0;       ///< per-processor chance of a dropout
  double message_loss_probability = 0.0;
};

/// Draws a FaultPlan for `num_processors` machines from `seed`. Each
/// processor's disturbances come from a private stream split from the seed
/// by pid, so the plan for processor j does not change when the machine
/// count does. The returned plan always validates.
[[nodiscard]] FaultPlan make_chaos_plan(int num_processors,
                                        const ChaosOptions& options,
                                        std::uint64_t seed);

}  // namespace hbsp::faults
