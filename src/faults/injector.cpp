#include "faults/injector.hpp"

#include <algorithm>
#include <limits>

#include "obs/metrics.hpp"
#include "util/rng.hpp"

namespace hbsp::faults {
namespace {

constexpr double kNever = std::numeric_limits<double>::infinity();

}  // namespace

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  plan_.validate();
  // The injector's queries are pure and noexcept, so the faults path is
  // tallied here: disturbances armed, not disturbances hit (the simulator
  // counts hits — sim.slowdown_hits, sim.machines_excluded).
  auto& registry = obs::Registry::global();
  registry.counter("faults.injectors").increment();
  registry.counter("faults.slowdown_windows").add(plan_.slowdowns.size());
  registry.counter("faults.drops_scheduled").add(plan_.drops.size());
  int max_pid = -1;
  for (const SlowdownWindow& w : plan_.slowdowns) max_pid = std::max(max_pid, w.pid);
  for (const MachineDrop& d : plan_.drops) max_pid = std::max(max_pid, d.pid);
  windows_by_pid_.resize(static_cast<std::size_t>(max_pid + 1));
  drop_time_by_pid_.assign(static_cast<std::size_t>(max_pid + 1), kNever);
  for (const SlowdownWindow& w : plan_.slowdowns) {
    windows_by_pid_[static_cast<std::size_t>(w.pid)].push_back(w);
  }
  for (const MachineDrop& d : plan_.drops) {
    auto& at = drop_time_by_pid_[static_cast<std::size_t>(d.pid)];
    at = std::min(at, d.time);
  }
}

double FaultInjector::slowdown_factor(int pid, double at) const noexcept {
  if (pid < 0 || static_cast<std::size_t>(pid) >= windows_by_pid_.size()) {
    return 1.0;
  }
  double factor = 1.0;
  for (const SlowdownWindow& w : windows_by_pid_[static_cast<std::size_t>(pid)]) {
    if (w.begin <= at && at < w.end) factor *= w.factor;
  }
  return factor;
}

double FaultInjector::drop_time(int pid) const noexcept {
  if (pid < 0 || static_cast<std::size_t>(pid) >= drop_time_by_pid_.size()) {
    return kNever;
  }
  return drop_time_by_pid_[static_cast<std::size_t>(pid)];
}

bool FaultInjector::lose_message(std::uint64_t message_key,
                                 int attempt) const noexcept {
  const double p = plan_.message_loss_probability;
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  // Two split_seed hops key the draw by identity, not by call order.
  const std::uint64_t stream = util::split_seed(
      util::split_seed(plan_.loss_seed, message_key),
      static_cast<std::uint64_t>(attempt));
  util::Rng rng{stream};
  return rng.uniform01() < p;
}

}  // namespace hbsp::faults
