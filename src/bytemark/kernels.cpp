#include "bytemark/kernels.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hbsp::bytemark {
namespace {

using Clock = std::chrono::steady_clock;

/// Runs `work` (returning a checksum contribution) until both the iteration
/// floor and the time floor are met; reports iterations per second.
template <typename Work>
KernelResult timed(const char* name, const KernelConfig& config, Work&& work) {
  KernelResult result;
  result.name = name;
  const auto start = Clock::now();
  int iterations = 0;
  double elapsed = 0.0;
  do {
    result.checksum ^= work();
    ++iterations;
    elapsed = std::chrono::duration<double>(Clock::now() - start).count();
  } while (iterations < config.min_iterations || elapsed < config.min_seconds);
  result.iterations_per_second = static_cast<double>(iterations) / elapsed;
  return result;
}

}  // namespace

KernelResult run_numeric_sort(const KernelConfig& config) {
  util::Rng rng{config.seed};
  std::vector<std::int32_t> base(config.numeric_sort_size);
  for (auto& v : base) {
    v = static_cast<std::int32_t>(rng.uniform_i64(-1000000, 1000000));
  }
  return timed("numeric-sort", config, [&] {
    auto data = base;
    // Heap sort, as in BYTEmark's numeric sort test.
    std::make_heap(data.begin(), data.end());
    std::sort_heap(data.begin(), data.end());
    return static_cast<std::uint64_t>(data.front()) ^
           static_cast<std::uint64_t>(data.back());
  });
}

KernelResult run_string_sort(const KernelConfig& config) {
  util::Rng rng{config.seed + 1};
  std::vector<std::string> base(config.string_sort_size);
  for (auto& s : base) {
    const auto length = static_cast<std::size_t>(rng.uniform_u64(4, 30));
    s.resize(length);
    for (auto& ch : s) {
      ch = static_cast<char>('a' + rng.uniform_u64(0, 25));
    }
  }
  return timed("string-sort", config, [&] {
    auto data = base;
    std::sort(data.begin(), data.end());
    return static_cast<std::uint64_t>(data.front().size()) ^
           static_cast<std::uint64_t>(data.back().size());
  });
}

KernelResult run_bitfield(const KernelConfig& config) {
  return timed("bitfield", config, [&] {
    std::uint64_t field[64] = {};
    std::uint64_t x = config.seed | 1;
    for (std::size_t i = 0; i < config.bitfield_ops; ++i) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      const auto word = (x >> 32) & 63;
      const auto bit = x & 63;
      switch ((x >> 8) & 3) {
        case 0: field[word] |= (1ULL << bit); break;
        case 1: field[word] &= ~(1ULL << bit); break;
        case 2: field[word] ^= (1ULL << bit); break;
        default: field[word] = (field[word] << 1) | (field[word] >> 63); break;
      }
    }
    std::uint64_t sum = 0;
    for (const auto w : field) sum ^= w;
    return sum;
  });
}

KernelResult run_fp_fourier(const KernelConfig& config) {
  return timed("fp-fourier", config, [&] {
    // Fourier coefficients of f(x) = (x+1)^x on [0, 2] by trapezoid rule,
    // echoing BYTEmark's FP emulation/Fourier mix.
    double sum = 0.0;
    constexpr int kSamples = 100;
    for (std::size_t term = 1; term <= config.fourier_terms; ++term) {
      double a = 0.0;
      double b = 0.0;
      for (int s = 0; s <= kSamples; ++s) {
        const double x = 2.0 * s / kSamples;
        const double fx = std::pow(x + 1.0, x);
        const double weight = (s == 0 || s == kSamples) ? 0.5 : 1.0;
        a += weight * fx * std::cos(static_cast<double>(term) * x);
        b += weight * fx * std::sin(static_cast<double>(term) * x);
      }
      sum += a / static_cast<double>(kSamples) + b / static_cast<double>(kSamples);
    }
    return static_cast<std::uint64_t>(std::fabs(sum) * 1e6);
  });
}

KernelResult run_lu_decomposition(const KernelConfig& config) {
  util::Rng rng{config.seed + 2};
  const std::size_t order = config.lu_matrix_order;
  std::vector<double> base(order * order);
  for (auto& v : base) v = rng.uniform(-1.0, 1.0);
  // Diagonal dominance keeps the factorisation stable without pivoting.
  for (std::size_t i = 0; i < order; ++i) {
    base[i * order + i] += static_cast<double>(order);
  }
  return timed("lu-decomposition", config, [&] {
    auto a = base;
    for (std::size_t k = 0; k < order; ++k) {
      for (std::size_t i = k + 1; i < order; ++i) {
        const double factor = a[i * order + k] / a[k * order + k];
        a[i * order + k] = factor;
        for (std::size_t j = k + 1; j < order; ++j) {
          a[i * order + j] -= factor * a[k * order + j];
        }
      }
    }
    double trace = 0.0;
    for (std::size_t i = 0; i < order; ++i) trace += a[i * order + i];
    return static_cast<std::uint64_t>(std::fabs(trace) * 1e3);
  });
}

SuiteResult run_suite(const KernelConfig& config) {
  SuiteResult suite;
  suite.kernels.push_back(run_numeric_sort(config));
  suite.kernels.push_back(run_string_sort(config));
  suite.kernels.push_back(run_bitfield(config));
  suite.kernels.push_back(run_fp_fourier(config));
  suite.kernels.push_back(run_lu_decomposition(config));
  std::vector<double> scores;
  scores.reserve(suite.kernels.size());
  for (const auto& k : suite.kernels) scores.push_back(k.iterations_per_second);
  suite.composite = util::geometric_mean(scores);
  return suite;
}

}  // namespace hbsp::bytemark
