#pragma once
// Synthetic processor benchmark kernels (the reproduction's stand-in for the
// BYTEmark suite the paper uses to rank workstations, §5.1).
//
// BYTEmark "consists of tests such as sorting, floating-point manipulation,
// and numerical analysis"; the kernels here mirror that mix: integer heap
// sort, string sort, bit-field manipulation, a floating-point Fourier-series
// evaluation, and LU decomposition. Each runs a fixed workload repeatedly and
// reports iterations per second measured on the host. Kernel outputs feed a
// checksum so the optimiser cannot elide the work.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace hbsp::bytemark {

/// Score of one kernel: higher is faster.
struct KernelResult {
  std::string name;
  double iterations_per_second = 0.0;
  std::uint64_t checksum = 0;  ///< defeats dead-code elimination; ignore
};

/// Workload sizing; the defaults finish in well under a second per kernel.
struct KernelConfig {
  std::size_t numeric_sort_size = 2000;
  std::size_t string_sort_size = 400;
  std::size_t bitfield_ops = 20000;
  std::size_t fourier_terms = 64;
  std::size_t lu_matrix_order = 24;
  int min_iterations = 8;
  double min_seconds = 0.05;  ///< keep iterating until this much time passed
  std::uint64_t seed = 0x6272696768746DULL;
};

[[nodiscard]] KernelResult run_numeric_sort(const KernelConfig& config);
[[nodiscard]] KernelResult run_string_sort(const KernelConfig& config);
[[nodiscard]] KernelResult run_bitfield(const KernelConfig& config);
[[nodiscard]] KernelResult run_fp_fourier(const KernelConfig& config);
[[nodiscard]] KernelResult run_lu_decomposition(const KernelConfig& config);

/// All kernels plus the composite score (geometric mean of kernel scores),
/// which is the figure used to rank machines.
struct SuiteResult {
  std::vector<KernelResult> kernels;
  double composite = 0.0;
};

[[nodiscard]] SuiteResult run_suite(const KernelConfig& config = {});

}  // namespace hbsp::bytemark
