#include "bytemark/ranking.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace hbsp::bytemark {

int Ranking::fastest_pid() const {
  for (std::size_t pid = 0; pid < rank.size(); ++pid) {
    if (rank[pid] == 0) return static_cast<int>(pid);
  }
  throw std::logic_error{"Ranking: empty"};
}

int Ranking::slowest_pid() const {
  const int last = static_cast<int>(rank.size()) - 1;
  for (std::size_t pid = 0; pid < rank.size(); ++pid) {
    if (rank[pid] == last) return static_cast<int>(pid);
  }
  throw std::logic_error{"Ranking: empty"};
}

Ranking ranking_from_scores(std::span<const double> scores) {
  if (scores.empty()) {
    throw std::invalid_argument{"ranking_from_scores: no scores"};
  }
  Ranking ranking;
  ranking.scores.assign(scores.begin(), scores.end());
  double best = 0.0;
  double total = 0.0;
  for (const double s : scores) {
    if (s <= 0.0) {
      throw std::invalid_argument{"ranking_from_scores: non-positive score"};
    }
    best = std::max(best, s);
    total += s;
  }

  const auto p = scores.size();
  std::vector<int> order(p);
  for (std::size_t i = 0; i < p; ++i) order[i] = static_cast<int>(i);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    const double sa = scores[static_cast<std::size_t>(a)];
    const double sb = scores[static_cast<std::size_t>(b)];
    return sa != sb ? sa > sb : a < b;
  });
  ranking.rank.resize(p);
  for (std::size_t i = 0; i < p; ++i) {
    ranking.rank[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
  }

  ranking.estimated_r.reserve(p);
  ranking.fractions.reserve(p);
  for (const double s : scores) {
    ranking.estimated_r.push_back(best / s);
    ranking.fractions.push_back(s / total);
  }
  return ranking;
}

Ranking rank_simulated(const MachineTree& tree, const NoiseOptions& noise) {
  util::Rng rng{noise.seed};
  constexpr double kBaseScore = 1000.0;
  std::vector<double> scores;
  scores.reserve(static_cast<std::size_t>(tree.num_processors()));
  for (int pid = 0; pid < tree.num_processors(); ++pid) {
    double score = kBaseScore / tree.processor_compute_r(pid);
    if (noise.stddev > 0.0) {
      score *= std::exp(rng.normal(0.0, noise.stddev));
    }
    scores.push_back(score);
  }
  return ranking_from_scores(scores);
}

MachineSpec cluster_spec_from_ranking(const Ranking& ranking, double L) {
  if (ranking.estimated_r.empty()) {
    throw std::invalid_argument{"cluster_spec_from_ranking: empty ranking"};
  }
  MachineSpec root;
  root.name = "ranked-cluster";
  root.sync_L = L;
  const double min_r =
      *std::min_element(ranking.estimated_r.begin(), ranking.estimated_r.end());
  for (std::size_t pid = 0; pid < ranking.estimated_r.size(); ++pid) {
    MachineSpec leaf;
    leaf.name = "ws" + std::to_string(pid);
    // Renormalise so the fastest machine is exactly 1 even under noise.
    leaf.r = std::max(1.0, ranking.estimated_r[pid] / min_r);
    root.children.push_back(std::move(leaf));
  }
  // Guard against floating-point drift leaving no exact 1.
  auto fastest = std::min_element(
      root.children.begin(), root.children.end(),
      [](const MachineSpec& a, const MachineSpec& b) { return a.r < b.r; });
  fastest->r = 1.0;
  return root;
}

}  // namespace hbsp::bytemark
