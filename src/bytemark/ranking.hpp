#pragma once
// Deriving HBSP^k model parameters from benchmark scores (§5.1: "The ranking
// of processors is determined by the BYTEmark benchmark" and "c_i is computed
// using the BYTEmark results").
//
// Two sources feed the same derivation:
//  * measured scores from kernels.hpp run on real hosts, or
//  * simulated scores for the virtual cluster: a processor with slowness r
//    yields score base/r perturbed by log-normal measurement noise. The noise
//    models benchmarking a *non-dedicated* cluster (§5.1) and reproduces the
//    paper's observation that a mis-estimated c_j for the second-fastest
//    machine can spoil balanced gather (§5.2).

#include <cstdint>
#include <span>
#include <vector>

#include "core/machine.hpp"

namespace hbsp::bytemark {

/// Model parameters estimated from scores. All vectors are indexed by pid.
struct Ranking {
  std::vector<double> scores;       ///< raw composite scores (higher = faster)
  std::vector<int> rank;            ///< 0 = fastest, ties by pid
  std::vector<double> estimated_r;  ///< best_score / score (fastest == 1)
  std::vector<double> fractions;    ///< c_j ∝ score, normalised to sum to 1

  [[nodiscard]] int fastest_pid() const;
  [[nodiscard]] int slowest_pid() const;
};

/// Derives ranking/r/c from raw scores; throws std::invalid_argument when
/// empty or non-positive.
[[nodiscard]] Ranking ranking_from_scores(std::span<const double> scores);

/// Noise applied to simulated measurements.
struct NoiseOptions {
  double stddev = 0.05;  ///< log-normal sigma; 0 disables noise
  std::uint64_t seed = 1;
};

/// Simulated BYTEmark run over the machine's processors: score_j =
/// base / true_r_j, perturbed per NoiseOptions.
[[nodiscard]] Ranking rank_simulated(const MachineTree& tree,
                                     const NoiseOptions& noise = {});

/// Builds a flat HBSP^1 MachineSpec from estimated r values (fastest pinned
/// to exactly 1, as the model requires).
[[nodiscard]] MachineSpec cluster_spec_from_ranking(const Ranking& ranking,
                                                    double L);

}  // namespace hbsp::bytemark
