#pragma once
// Collective-communication planners (§4).
//
// A planner turns (machine, n, options) into a CommSchedule following the
// paper's two design rules: the fastest machines coordinate, and machines
// receive data in proportion to their abilities. The schedules are priced by
// CostModel (matching the closed forms in core/analysis exactly) and executed
// either by the cluster simulator directly or by the SPMD executors in
// executors.hpp.
//
// gather, broadcast and scatter generalise to any k by recursing over the
// machine tree (the paper gives k <= 2 and notes "one can generalize the
// approach given here"); the remaining collectives ([20]) are single-cluster
// (HBSP^1) algorithms.

#include <cstddef>
#include <vector>

#include "core/analysis.hpp"
#include "core/machine.hpp"
#include "core/schedule.hpp"

namespace hbsp::coll {

using analysis::Shares;
using analysis::TopPhase;

/// Options shared by the rooted collectives. root_pid < 0 selects the
/// machine's coordinator (its fastest processor), the paper's default.
struct RootedOptions {
  int root_pid = -1;
  Shares shares = Shares::kBalanced;
};

/// Options for broadcast: the top-level strategy is one- or two-phase
/// (§4.4); lower levels always run the two-phase algorithm. `shares` controls
/// the two-phase scatter split (§5.3: the analysis also holds for c_j·n).
struct BroadcastOptions {
  int root_pid = -1;
  TopPhase top_phase = TopPhase::kTwoPhase;
  Shares shares = Shares::kEqual;
};

/// Per-processor shares of n items under a policy, computed by recursive
/// member_shares splits from the root down (so any cluster's aggregate share
/// equals its member share at the parent). Indexed by pid; sums to n.
[[nodiscard]] std::vector<std::size_t> leaf_shares(const MachineTree& tree,
                                                   std::size_t n, Shares shares);

/// Where a cluster's gathered/broadcast data lives: `root_pid` when it is
/// inside the cluster, otherwise the cluster's coordinator.
[[nodiscard]] int cluster_target(const MachineTree& tree, MachineId cluster,
                                 int root_pid);

/// Gather n items (distributed per `shares`) to the root processor. One
/// phase per tree level, bottom-up; clusters gather concurrently (§4.2/4.3).
[[nodiscard]] CommSchedule plan_gather(const MachineTree& tree, std::size_t n,
                                       const RootedOptions& options = {});

/// Broadcast n items from the root processor to every processor. Top-level
/// one- or two-phase super^k-step(s), then two-phase within every cluster,
/// top-down (§4.4).
[[nodiscard]] CommSchedule plan_broadcast(const MachineTree& tree, std::size_t n,
                                          const BroadcastOptions& options = {});

/// Scatter n items from the root processor: each processor ends with its
/// share (mirror of gather, top-down).
[[nodiscard]] CommSchedule plan_scatter(const MachineTree& tree, std::size_t n,
                                        const RootedOptions& options = {});

/// HBSP^1 all-gather (total exchange of shares) within a flat machine.
[[nodiscard]] CommSchedule plan_allgather(const MachineTree& tree, std::size_t n,
                                          Shares shares = Shares::kBalanced);


/// HBSP^k all-gather: a gather to the machine's coordinator followed by a
/// broadcast back out (the standard hierarchical composition — a flat total
/// exchange would flood the upper networks with p·(p−1) messages, this sends
/// one stream up and one down per cluster). `shares` governs the gather
/// split; the broadcast runs two-phase with equal pieces.
[[nodiscard]] CommSchedule plan_allgather_tree(const MachineTree& tree,
                                               std::size_t n,
                                               Shares shares = Shares::kBalanced);

/// HBSP^1 reduction to the root: local combine, 1-item partials to the root,
/// root combine.
[[nodiscard]] CommSchedule plan_reduce(const MachineTree& tree, std::size_t n,
                                       const RootedOptions& options = {});

/// HBSP^k reduction: local combines, then 1-item partials flow up the tree
/// one level per phase (each cluster combining concurrently under its own
/// barrier), ending with the root target's final combine. On a flat machine
/// this degenerates to plan_reduce's two supersteps. A processor's local
/// combine is charged in the first phase its cluster participates in; a
/// coordinator's combine of its cluster's partials is charged in the next
/// phase up (it can only fold what the barrier delivered).
[[nodiscard]] CommSchedule plan_reduce_tree(const MachineTree& tree,
                                            std::size_t n,
                                            const RootedOptions& options = {});

/// HBSP^1 scan (prefix sums): local prefix, partials to the coordinator,
/// offsets back, local apply.
[[nodiscard]] CommSchedule plan_scan(const MachineTree& tree, std::size_t n,
                                     Shares shares = Shares::kBalanced);

/// HBSP^1 all-to-all personalised exchange: each processor splits its share
/// into m blocks and sends block i to member i.
[[nodiscard]] CommSchedule plan_alltoall(const MachineTree& tree, std::size_t n,
                                         Shares shares = Shares::kBalanced);

namespace detail {
/// Throws std::invalid_argument unless the tree is flat (every child of the
/// root is a processor) — the HBSP^1 shape the single-cluster planners need.
void require_flat(const MachineTree& tree, const char* who);
}  // namespace detail

}  // namespace hbsp::coll
