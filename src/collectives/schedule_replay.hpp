#pragma once
// Replays an arbitrary CommSchedule as an SPMD program on the runtime.
//
// Used by tests and examples to demonstrate that the runtime's virtual time
// agrees with the cluster simulator for *any* schedule (including randomly
// generated ones), not just the hand-written collectives.

#include "core/machine.hpp"
#include "core/schedule.hpp"
#include "runtime/hbsplib.hpp"

namespace hbsp::coll {

/// Builds a Program where each processor performs its transfers (synthetic
/// payloads of 4 bytes per item) and compute charges from `schedule`, phase
/// by phase, synchronising each plan's scope. The schedule must be valid for
/// `tree` (validate_schedule is called).
[[nodiscard]] rt::Program make_replay_program(const MachineTree& tree,
                                              const CommSchedule& schedule);

}  // namespace hbsp::coll
