#include "collectives/schedule_replay.hpp"

#include <cstddef>
#include <vector>

namespace hbsp::coll {

rt::Program make_replay_program(const MachineTree& tree,
                                const CommSchedule& schedule) {
  validate_schedule(tree, schedule);
  // The program captures the schedule by value so callers may discard theirs.
  return [schedule](rt::Hbsp& ctx) {
    for (const auto& phase : schedule.phases) {
      for (const auto& plan : phase.plans) {
        const auto [first, last] = ctx.machine().processor_range(plan.sync_scope);
        if (ctx.pid() < first || ctx.pid() >= last) continue;
        double ops = 0.0;
        for (const auto& work : plan.compute) {
          if (work.pid == ctx.pid()) ops += work.ops;
        }
        if (ops > 0.0) ctx.charge_compute(ops);
        for (const auto& transfer : plan.transfers) {
          if (transfer.src_pid != ctx.pid() || transfer.dst_pid == ctx.pid() ||
              transfer.items == 0) {
            continue;
          }
          ctx.send(transfer.dst_pid,
                   std::vector<std::byte>(transfer.items * 4, std::byte{0}),
                   transfer.items);
        }
        ctx.sync_scope(plan.sync_scope);
        (void)ctx.recv_all();  // drain so later supersteps start clean
      }
    }
  };
}

}  // namespace hbsp::coll
