#include "collectives/schedule_replay.hpp"

#include <cstddef>
#include <vector>

#include "obs/metrics.hpp"
#include "runtime/message.hpp"

namespace hbsp::coll {

rt::Program make_replay_program(const MachineTree& tree,
                                const CommSchedule& schedule) {
  validate_schedule(tree, schedule);
  // The program captures the schedule by value so callers may discard theirs.
  return [schedule](rt::Hbsp& ctx) {
    // One pool per invocation: the runtime calls this lambda from every pid
    // thread, and BufferPool is deliberately not thread-safe. Payloads
    // received in superstep s become the send buffers of superstep s+1.
    rt::BufferPool pool;
    for (const auto& phase : schedule.phases) {
      for (const auto& plan : phase.plans) {
        const auto [first, last] = ctx.machine().processor_range(plan.sync_scope);
        if (ctx.pid() < first || ctx.pid() >= last) continue;
        double ops = 0.0;
        for (const auto& work : plan.compute) {
          if (work.pid == ctx.pid()) ops += work.ops;
        }
        if (ops > 0.0) ctx.charge_compute(ops);
        for (const auto& transfer : plan.transfers) {
          if (transfer.src_pid != ctx.pid() || transfer.dst_pid == ctx.pid() ||
              transfer.items == 0) {
            continue;
          }
          ctx.send(transfer.dst_pid, pool.acquire(transfer.items * 4),
                   transfer.items);
        }
        ctx.sync_scope(plan.sync_scope);
        pool.recycle(ctx.recv_all());  // drain so later supersteps start clean
      }
    }
    // Counters, not gauges: the per-pid totals are a pure function of the
    // schedule, so the summed values are deterministic at any thread count
    // (a "buffers pooled right now" gauge would be last-writer-wins).
    auto& registry = obs::Registry::global();
    registry.counter("rt.pool.acquires").add(pool.acquires());
    registry.counter("rt.pool.reuses").add(pool.reuses());
  };
}

}  // namespace hbsp::coll
