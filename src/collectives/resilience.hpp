#pragma once
// Degraded-mode re-planning: what the advisor does when machines die.
//
// The paper's §4 decision procedure assumes a fixed machine; on the
// non-dedicated clusters of §5.1 the machine can shrink mid-run. This layer
// closes the loop with the fault subsystem: a collective runs under a
// FaultPlan, and when the simulator's failure detector excludes a dropped
// machine, the run aborts, the surviving tree is re-ranked (r renormalised
// so the fastest survivor is 1, shares re-derived from speeds), the advisor
// re-roots and re-plans the collective on the survivors, and execution
// restarts with the elapsed time carried forward. Abort-and-restart is the
// honest semantic for the rooted collectives: data held by the corpse is
// gone, so the degraded run must redo the exchange in the smaller scope.
//
// The ResilienceReport quantifies what the disturbance cost: degraded vs.
// fault-free makespan, exclusions, losses, and retries.

#include <cstddef>
#include <span>
#include <vector>

#include "collectives/advisor.hpp"
#include "faults/fault_plan.hpp"
#include "sim/sim_params.hpp"
#include "util/table.hpp"

namespace hbsp::coll {

/// The machine that remains after removing processors, plus the pid
/// renumbering (survivor pids are contiguous again).
struct SurvivorTree {
  MachineTree tree;
  std::vector<int> to_original;  ///< new pid -> pid in the source tree
};

/// Rebuilds `tree` without the processors in `dead`. Survivor r values are
/// renormalised so the fastest survivor is exactly 1 and g is rescaled by
/// the same factor, so every survivor's absolute communication cost r·g —
/// and, under the default seconds_per_op < 0, its absolute compute cost —
/// is unchanged. compute_r is rescaled identically. Clusters left without
/// any processor are pruned; explicit c shares are discarded in favour of
/// the speed-proportional defaults (the advisor re-ranks the survivors).
/// Throws std::invalid_argument when no processor survives or `dead` names
/// an unknown pid.
[[nodiscard]] SurvivorTree remove_processors(const MachineTree& tree,
                                             std::span<const int> dead);

/// The tail of `plan` as seen by a run restarting `elapsed` seconds in, on a
/// survivor tree: slowdown windows and drops shift earlier by `elapsed`
/// (clamped at zero — a drop already due fires immediately), entries for
/// removed processors vanish, and the loss stream is re-split so the restart
/// draws fresh, independent loss decisions. `to_original` is the survivor
/// mapping returned by remove_processors.
[[nodiscard]] faults::FaultPlan remap_fault_plan(
    const faults::FaultPlan& plan, double elapsed,
    std::span<const int> to_original);

/// Outcome of one degraded collective run.
struct ResilienceReport {
  double fault_free_makespan = 0.0;
  double degraded_makespan = 0.0;
  std::vector<int> excluded_pids;  ///< original pids, in exclusion order
  std::size_t replans = 0;         ///< advisor re-plan rounds after exclusions
  std::size_t messages_lost = 0;
  std::size_t retries = 0;
  /// False when fewer than two processors survived — the collective cannot
  /// be completed and degraded_makespan covers only the time until the run
  /// was abandoned.
  bool completed = true;

  /// Makespan inflation versus the fault-free run (1 = unscathed).
  [[nodiscard]] double inflation() const noexcept {
    return fault_free_makespan > 0.0 ? degraded_makespan / fault_free_makespan
                                     : 0.0;
  }

  [[nodiscard]] util::Table to_table(const std::string& title) const;
};

/// Runs `kind` moving n items on `tree` under `plan`, re-planning on the
/// surviving machine every time the failure detector excludes a member, and
/// returns the accounting. The fault-free baseline uses the same advisor
/// configuration with no injector attached.
[[nodiscard]] ResilienceReport run_with_replanning(
    const MachineTree& tree, CollectiveKind kind, std::size_t n,
    const sim::SimParams& params, const faults::FaultPlan& plan);

}  // namespace hbsp::coll
