#include "collectives/plan_cache.hpp"

#include <iterator>
#include <stdexcept>
#include <utility>

#include "collectives/planners.hpp"
#include "core/cost_model.hpp"
#include "obs/metrics.hpp"
#include "util/hash.hpp"

namespace hbsp::coll {

CommSchedule build_plan(const MachineTree& tree, const PlanRequest& request) {
  switch (request.kind) {
    case CollectiveKind::kGather:
      return plan_gather(
          tree, request.n,
          {.root_pid = request.root_pid, .shares = request.shares});
    case CollectiveKind::kBroadcast:
      return plan_broadcast(tree, request.n,
                            {.root_pid = request.root_pid,
                             .top_phase = request.top_phase,
                             .shares = request.shares});
    case CollectiveKind::kScatter:
      return plan_scatter(
          tree, request.n,
          {.root_pid = request.root_pid, .shares = request.shares});
    case CollectiveKind::kReduce:
      return plan_reduce_tree(
          tree, request.n,
          {.root_pid = request.root_pid, .shares = request.shares});
    case CollectiveKind::kAllgather: {
      for (int j = 0; j < tree.num_children(tree.root()); ++j) {
        if (!tree.is_processor(tree.child(tree.root(), j))) {
          return plan_allgather_tree(tree, request.n, request.shares);
        }
      }
      return plan_allgather(tree, request.n, request.shares);
    }
    case CollectiveKind::kScan:
      return plan_scan(tree, request.n, request.shares);
    case CollectiveKind::kAlltoall:
      return plan_alltoall(tree, request.n, request.shares);
  }
  throw std::logic_error{"build_plan: bad kind"};
}

std::uint64_t plan_request_fingerprint(const PlanRequest& request) noexcept {
  util::Hash64 hash;
  hash.add(static_cast<std::uint64_t>(request.kind));
  hash.add(request.n);
  hash.add_int(request.root_pid);
  hash.add(static_cast<std::uint64_t>(request.shares));
  hash.add(static_cast<std::uint64_t>(request.top_phase));
  return hash.digest();
}

PlanCache& PlanCache::global() {
  static PlanCache cache;
  return cache;
}

PlanKey PlanCache::key_for(const MachineTree& tree,
                           const PlanRequest& request) {
  util::Hash64 params;
  params.add_int(request.root_pid);
  params.add(static_cast<std::uint64_t>(request.top_phase));
  return PlanKey{
      .tree_fingerprint = tree.fingerprint(),
      .kind = static_cast<std::uint8_t>(request.kind),
      .shares = static_cast<std::uint8_t>(request.shares),
      .n = request.n,
      .params_hash = params.digest(),
  };
}

std::shared_ptr<const CachedPlan> PlanCache::get(const MachineTree& tree,
                                                 const PlanRequest& request) {
  return lookup(key_for(tree, request), tree, request);
}

std::shared_ptr<const CachedPlan> PlanCache::lookup(
    const PlanKey& key, const MachineTree& tree, const PlanRequest& request) {
  auto& registry = obs::Registry::global();
  bool collision = false;

  std::unique_lock lock{mutex_};
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;  // absent: this thread builds
    if (!(it->second.request == request)) {
      if (it->second.plan == nullptr) {
        // The colliding key is mid-build; wait for the builder to finish
        // (erasing its placeholder would strand it), then replace.
        ready_.wait(lock);
        continue;
      }
      // params-hash collision: two requests share a key. Deterministically
      // rebuild for the incoming request (latest wins) — never serve the
      // stored plan to the wrong request.
      collision = true;
      entries_.erase(it);
      break;
    }
    if (it->second.plan != nullptr) {
      it->second.stamp = ++next_stamp_;
      lock.unlock();
      registry.counter("plancache.hits").increment();
      return it->second.plan;
    }
    // Another thread is building this key: compute-once blocking keeps the
    // miss count a pure function of the distinct keys requested.
    ready_.wait(lock);
  }

  entries_[key] = Entry{request, nullptr, ++next_stamp_};
  lock.unlock();
  registry.counter(collision ? "plancache.collisions" : "plancache.misses")
      .increment();

  std::shared_ptr<const CachedPlan> plan;
  try {
    auto built = std::make_shared<CachedPlan>();
    built->request = request;
    built->schedule = build_plan(tree, request);
    built->predicted_cost = CostModel{tree}.cost(built->schedule).total();
    plan = std::move(built);
  } catch (...) {
    // Planner rejected the request (e.g. flat-only collective on a
    // hierarchy): remove the placeholder so waiters retry instead of
    // hanging, and let the caller see the planner's error.
    lock.lock();
    entries_.erase(key);
    ready_.notify_all();
    throw;
  }

  lock.lock();
  Entry& entry = entries_[key];
  entry.plan = plan;
  entry.stamp = ++next_stamp_;
  evict_locked();
  registry.gauge("plancache.size").set(static_cast<double>(entries_.size()));
  ready_.notify_all();
  return plan;
}

void PlanCache::evict_locked() {
  if (max_entries_ == 0) return;
  while (entries_.size() > max_entries_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.plan == nullptr) continue;  // build in flight
      if (victim == entries_.end() || it->second.stamp < victim->second.stamp) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything is being built
    entries_.erase(victim);
    obs::Registry::global().counter("plancache.evictions").increment();
  }
}

void PlanCache::clear() {
  std::lock_guard lock{mutex_};
  for (auto it = entries_.begin(); it != entries_.end();) {
    it = it->second.plan != nullptr ? entries_.erase(it) : std::next(it);
  }
}

std::size_t PlanCache::size() const {
  std::lock_guard lock{mutex_};
  return entries_.size();
}

}  // namespace hbsp::coll
