#include "collectives/resilience.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>
#include <utility>

#include "obs/metrics.hpp"
#include "sim/cluster_sim.hpp"
#include "util/rng.hpp"

namespace hbsp::coll {
namespace {

/// Stream tag distinguishing a restarted run's loss decisions from the
/// aborted run's (re-splitting keeps replays deterministic without ever
/// reusing a consumed stream).
constexpr std::uint64_t kRestartStream = 0x5245504C414EULL;  // "REPLAN"

/// old pid -> new pid (-1 when removed), inverted from `to_original`.
std::vector<int> invert_mapping(std::span<const int> to_original) {
  int max_old = -1;
  for (const int old : to_original) max_old = std::max(max_old, old);
  std::vector<int> old_to_new(static_cast<std::size_t>(max_old + 1), -1);
  for (std::size_t i = 0; i < to_original.size(); ++i) {
    old_to_new[static_cast<std::size_t>(to_original[i])] = static_cast<int>(i);
  }
  return old_to_new;
}

/// Rebuilds the spec of `id`'s subtree without dead processors, scaling leaf
/// r/compute_r by 1/m. Returns false (and leaves `out` untouched) when the
/// subtree has no survivor. Appends survivor pids to `to_original` in pid
/// order (recursion visits leaves exactly in pid order).
bool rebuild_subtree(const MachineTree& tree, MachineId id,
                     const std::vector<char>& dead, double m,
                     MachineSpec& out, std::vector<int>& to_original) {
  const MachineTree::Node& node = tree.node(id);
  if (node.pid >= 0) {  // physical processor
    if (dead[static_cast<std::size_t>(node.pid)]) return false;
    out.name = node.name;
    out.r = node.r / m;
    out.compute_r = node.compute_r / m;
    out.sync_L = node.sync_L;
    to_original.push_back(node.pid);
    return true;
  }
  MachineSpec spec;
  spec.name = node.name;
  spec.sync_L = node.sync_L;
  for (int nth = 0; nth < tree.num_children(id); ++nth) {
    MachineSpec child;
    if (rebuild_subtree(tree, tree.child(id, nth), dead, m, child,
                        to_original)) {
      spec.children.push_back(std::move(child));
    }
  }
  if (spec.children.empty()) return false;  // cluster wiped out: prune
  out = std::move(spec);
  return true;
}

}  // namespace

SurvivorTree remove_processors(const MachineTree& tree,
                               std::span<const int> dead) {
  const int p = tree.num_processors();
  std::vector<char> is_dead(static_cast<std::size_t>(p), 0);
  for (const int pid : dead) {
    if (pid < 0 || pid >= p) {
      throw std::invalid_argument{"remove_processors: unknown pid " +
                                  std::to_string(pid)};
    }
    is_dead[static_cast<std::size_t>(pid)] = 1;
  }

  // Fastest survivor: its r becomes the new unit (r/m == 1.0 exactly).
  double m = std::numeric_limits<double>::infinity();
  for (int pid = 0; pid < p; ++pid) {
    if (!is_dead[static_cast<std::size_t>(pid)]) {
      m = std::min(m, tree.processor_r(pid));
    }
  }
  if (!std::isfinite(m)) {
    throw std::invalid_argument{
        "remove_processors: no processor survives the removal"};
  }

  MachineSpec root;
  std::vector<int> to_original;
  if (!rebuild_subtree(tree, tree.root(), is_dead, m, root, to_original)) {
    throw std::invalid_argument{
        "remove_processors: no processor survives the removal"};
  }
  // Scaling g by m keeps every survivor's absolute wire cost r·g unchanged.
  return SurvivorTree{MachineTree::build(root, tree.g() * m),
                      std::move(to_original)};
}

faults::FaultPlan remap_fault_plan(const faults::FaultPlan& plan,
                                   double elapsed,
                                   std::span<const int> to_original) {
  const std::vector<int> old_to_new = invert_mapping(to_original);
  const auto remap = [&old_to_new](int old_pid) {
    return old_pid >= 0 &&
                   old_pid < static_cast<int>(old_to_new.size())
               ? old_to_new[static_cast<std::size_t>(old_pid)]
               : -1;
  };

  faults::FaultPlan tail;
  for (const faults::SlowdownWindow& w : plan.slowdowns) {
    const int pid = remap(w.pid);
    if (pid < 0 || w.end <= elapsed) continue;
    tail.slowdowns.push_back(
        {pid, std::max(0.0, w.begin - elapsed), w.end - elapsed, w.factor});
  }
  for (const faults::MachineDrop& d : plan.drops) {
    const int pid = remap(d.pid);
    if (pid < 0) continue;
    // A drop already due fires at time zero of the restarted run.
    tail.drops.push_back({pid, std::max(0.0, d.time - elapsed)});
  }
  tail.message_loss_probability = plan.message_loss_probability;
  tail.loss_seed = util::split_seed(plan.loss_seed, kRestartStream);
  return tail;
}

util::Table ResilienceReport::to_table(const std::string& title) const {
  util::Table table{title};
  table.set_header({"metric", "value"});
  table.add_row({"fault-free makespan (s)",
                 util::Table::num(fault_free_makespan, 6)});
  table.add_row(
      {"degraded makespan (s)", util::Table::num(degraded_makespan, 6)});
  table.add_row({"inflation", util::Table::num(inflation(), 3)});
  std::string pids;
  for (const int pid : excluded_pids) {
    if (!pids.empty()) pids += ' ';
    pids += std::to_string(pid);
  }
  table.add_row({"excluded pids", pids.empty() ? "-" : pids});
  table.add_row({"re-plans", util::Table::num(
                                 static_cast<long long>(replans))});
  table.add_row({"messages lost", util::Table::num(static_cast<long long>(
                                      messages_lost))});
  table.add_row(
      {"retries", util::Table::num(static_cast<long long>(retries))});
  table.add_row({"completed", completed ? "yes" : "no"});
  return table;
}

ResilienceReport run_with_replanning(const MachineTree& tree,
                                     CollectiveKind kind, std::size_t n,
                                     const sim::SimParams& params,
                                     const faults::FaultPlan& plan) {
  plan.validate();
  obs::Registry::global().counter("coll.resilience_runs").increment();

  ResilienceReport report;
  {
    const CollectiveAdvice advice = advise(tree, kind, n);
    sim::ClusterSim sim{tree, params};
    report.fault_free_makespan = sim.run(advice.plan(tree, n)).makespan;
  }

  // Abort-and-restart loop: run on the current survivor machine until the
  // detector excludes someone, then carry the elapsed time forward, shift the
  // fault plan, re-rank the survivors and restart the collective. Each round
  // removes at least one processor, so at most p rounds run.
  MachineTree current = tree;
  std::vector<int> to_original(static_cast<std::size_t>(tree.num_processors()));
  for (std::size_t i = 0; i < to_original.size(); ++i) {
    to_original[i] = static_cast<int>(i);
  }
  faults::FaultPlan remaining = plan;
  double elapsed = 0.0;

  for (;;) {
    if (current.num_processors() < 2) {
      // The advisor needs at least two processors; the collective cannot be
      // completed on what is left.
      report.completed = false;
      report.degraded_makespan = elapsed;
      return report;
    }

    const CollectiveAdvice advice = advise(current, kind, n);
    const CommSchedule schedule = advice.plan(current, n);
    const faults::FaultInjector injector{remaining};
    sim::ClusterSim sim{current, params};
    sim.set_fault_injector(&injector);

    bool aborted = false;
    for (const Phase& phase : schedule.phases) {
      sim.execute_phase(phase);
      if (!sim.excluded_pids().empty()) {
        aborted = true;
        break;
      }
    }
    report.messages_lost += sim.fault_stats().messages_lost;
    report.retries += sim.fault_stats().retries;

    if (!aborted) {
      report.degraded_makespan = elapsed + sim.makespan();
      report.completed = true;
      return report;
    }

    // Detection time: the latest survivor clock after the stalled barrier.
    const double detected = sim.makespan();
    elapsed += detected;
    ++report.replans;
    obs::Registry::global().counter("coll.replans").increment();
    const std::vector<int> dead = sim.excluded_pids();
    for (const int pid : dead) {
      report.excluded_pids.push_back(
          to_original[static_cast<std::size_t>(pid)]);
    }
    if (static_cast<int>(dead.size()) >= current.num_processors()) {
      report.completed = false;
      report.degraded_makespan = elapsed;
      return report;
    }

    SurvivorTree survivors = remove_processors(current, dead);
    remaining = remap_fault_plan(remaining, detected, survivors.to_original);
    std::vector<int> next(survivors.to_original.size());
    for (std::size_t i = 0; i < next.size(); ++i) {
      next[i] = to_original[static_cast<std::size_t>(
          survivors.to_original[i])];
    }
    to_original = std::move(next);
    current = std::move(survivors.tree);
  }
}

}  // namespace hbsp::coll
