#pragma once
// BSP-style baselines: the homogeneous-model algorithms the paper's
// heterogeneity-aware collectives are measured against (§5's T_s and T_u
// configurations, and classic BSP defaults).
//
// A BSP program assumes identical processors: data splits equally and the
// root is arbitrary (processor 0 here). On a heterogeneous machine this is
// exactly the paper's "unbalanced workload" configuration.

#include <cstddef>

#include "collectives/planners.hpp"

namespace hbsp::coll::bsp {

/// Gather with equal shares to processor 0.
[[nodiscard]] inline CommSchedule plan_gather(const MachineTree& tree,
                                              std::size_t n) {
  return coll::plan_gather(tree, n, {.root_pid = 0, .shares = Shares::kEqual});
}

/// Two-phase broadcast from processor 0 with equal pieces.
[[nodiscard]] inline CommSchedule plan_broadcast(const MachineTree& tree,
                                                 std::size_t n) {
  return coll::plan_broadcast(tree, n,
                              {.root_pid = 0,
                               .top_phase = TopPhase::kTwoPhase,
                               .shares = Shares::kEqual});
}

/// Scatter with equal shares from processor 0.
[[nodiscard]] inline CommSchedule plan_scatter(const MachineTree& tree,
                                               std::size_t n) {
  return coll::plan_scatter(tree, n, {.root_pid = 0, .shares = Shares::kEqual});
}

/// All-gather with equal shares.
[[nodiscard]] inline CommSchedule plan_allgather(const MachineTree& tree,
                                                 std::size_t n) {
  return coll::plan_allgather(tree, n, Shares::kEqual);
}

/// Reduction to processor 0 with equal shares.
[[nodiscard]] inline CommSchedule plan_reduce(const MachineTree& tree,
                                              std::size_t n) {
  return coll::plan_reduce(tree, n, {.root_pid = 0, .shares = Shares::kEqual});
}

}  // namespace hbsp::coll::bsp
