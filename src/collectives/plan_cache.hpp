#pragma once
// Memoized collective planning: the planner half of the scenario-throughput
// layer.
//
// Sweeps re-derive the same CommSchedule thousands of times — every fig3a
// cell with the same (p, n, root) pair, every chaos cell (whose 16 cells
// share one machine and four plans), every warm perf_snapshot repetition.
// PlanCache memoizes (machine fingerprint, collective, n, shares, params) →
// (schedule, predicted cost) with compute-once semantics: the first
// requester builds while concurrent requesters for the same key block until
// the entry is ready. That blocking discipline is what keeps the obs
// counters deterministic — misses equal the number of *distinct* keys
// requested, never a function of thread scheduling — so the perf gate can
// keep exact-matching every counter across thread counts.
//
// Determinism contract:
//   - plancache.misses  == distinct keys built (absent-key builds)
//   - plancache.hits    == requests served from an existing entry (including
//                          requests that waited for a concurrent build)
//   - plancache.collisions == rebuilds forced by a params-hash collision
//                          (the stored request differs from the incoming one
//                          under an equal key); the entry is deterministically
//                          replaced, never served wrong
//   - eviction (max_entries > 0) removes the least-recently-used completed
//     entry; with single-threaded access the victim sequence is a pure
//     function of the request sequence. The global() instance is unbounded
//     so gated perf runs never evict.

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <map>
#include <memory>
#include <mutex>

#include "collectives/advisor.hpp"
#include "core/machine.hpp"
#include "core/schedule.hpp"

namespace hbsp::coll {

/// Everything that parameterises a planner call, independent of the machine.
/// `root_pid` is -1 for rootless collectives; `top_phase` only matters for
/// broadcast but participates in every key (it is defaulted elsewhere).
struct PlanRequest {
  CollectiveKind kind = CollectiveKind::kGather;
  std::size_t n = 0;
  int root_pid = -1;
  Shares shares = Shares::kBalanced;
  TopPhase top_phase = TopPhase::kTwoPhase;

  friend bool operator==(const PlanRequest&, const PlanRequest&) = default;
};

/// The planner dispatch behind CollectiveAdvice::plan, cache-free: builds
/// the schedule realising `request` on `tree` (allgather picks the flat or
/// hierarchical form by the tree's shape, as the advisor does).
[[nodiscard]] CommSchedule build_plan(const MachineTree& tree,
                                      const PlanRequest& request);

/// Stable content fingerprint of a planner request: folds every field (kind,
/// n, root, shares, top phase) through util::Hash64, so two requests hash
/// equal iff they are operator== equal up to hash collisions. The svc
/// coalescing keys and response fingerprints build on it; PlanKey keeps its
/// own (deliberately lossy) params_hash unchanged.
[[nodiscard]] std::uint64_t plan_request_fingerprint(
    const PlanRequest& request) noexcept;

/// Cache key: the ISSUE's (collective, machine-tree fingerprint, shares, n,
/// params-hash) tuple. kind/shares/n are kept verbatim; root_pid and
/// top_phase fold into params_hash, which is why collisions are possible and
/// detected via the stored PlanRequest.
struct PlanKey {
  std::uint64_t tree_fingerprint = 0;
  std::uint8_t kind = 0;
  std::uint8_t shares = 0;
  std::size_t n = 0;
  std::uint64_t params_hash = 0;

  friend auto operator<=>(const PlanKey&, const PlanKey&) = default;
};

/// A memoized plan: the schedule plus its CostModel price on the machine it
/// was built for (the §3.4 predicted cost the advisor would compute).
struct CachedPlan {
  PlanRequest request;
  CommSchedule schedule;
  double predicted_cost = 0.0;
};

class PlanCache {
 public:
  /// `max_entries` == 0 means unbounded (no eviction ever).
  explicit PlanCache(std::size_t max_entries = 0)
      : max_entries_(max_entries) {}

  /// The process-wide cache the experiments layer and the advisor share.
  /// Unbounded; clear() it at workload boundaries when cold timings matter.
  static PlanCache& global();

  /// The key `get` derives for a request — exposed so the differential tests
  /// can forge key collisions via lookup().
  [[nodiscard]] static PlanKey key_for(const MachineTree& tree,
                                       const PlanRequest& request);

  /// Returns the memoized plan for `request` on `tree`, building it on first
  /// use. Concurrent requests for the same key block until the builder
  /// finishes. The returned pointer is immutable and safe to hold after
  /// clear()/eviction.
  std::shared_ptr<const CachedPlan> get(const MachineTree& tree,
                                        const PlanRequest& request);

  /// get() with a caller-supplied key. Only differential tests should call
  /// this directly: it exists so a params-hash collision (same key, different
  /// request) can be forged and its deterministic rebuild asserted.
  std::shared_ptr<const CachedPlan> lookup(const PlanKey& key,
                                           const MachineTree& tree,
                                           const PlanRequest& request);

  /// Drops every completed entry (builds in flight finish normally).
  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }

 private:
  struct Entry {
    PlanRequest request;
    std::shared_ptr<const CachedPlan> plan;  ///< null while being built
    std::uint64_t stamp = 0;                 ///< last access, monotone
  };

  /// Must hold mutex_. Evicts least-recently-used completed entries until
  /// the size bound holds; in-flight builds are never victims.
  void evict_locked();

  std::size_t max_entries_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::map<PlanKey, Entry> entries_;
  std::uint64_t next_stamp_ = 0;
};

}  // namespace hbsp::coll
