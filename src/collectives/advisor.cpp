#include "collectives/advisor.hpp"

#include <algorithm>
#include <limits>
#include <memory>
#include <stdexcept>

#include "collectives/plan_cache.hpp"
#include "obs/metrics.hpp"

namespace hbsp::coll {
namespace {

struct Candidate {
  std::string description;
  int root_pid = -1;
  Shares shares = Shares::kBalanced;
  TopPhase top_phase = TopPhase::kTwoPhase;
  int supersteps = 1;  ///< tie-break: simpler structures first
  std::shared_ptr<const CachedPlan> plan;
};

const char* shares_name(Shares shares) {
  return shares == Shares::kBalanced ? "balanced" : "equal";
}

std::string root_name(const MachineTree& tree, int pid) {
  const auto& name = tree.node(tree.processor(pid)).name;
  return name.empty() ? "P" + std::to_string(pid) : name;
}

int count_supersteps(const CommSchedule& schedule) {
  int count = 0;
  for (const auto& phase : schedule.phases) count += static_cast<int>(!phase.plans.empty());
  return count;
}

}  // namespace

const char* to_string(CollectiveKind kind) noexcept {
  switch (kind) {
    case CollectiveKind::kGather: return "gather";
    case CollectiveKind::kBroadcast: return "broadcast";
    case CollectiveKind::kScatter: return "scatter";
    case CollectiveKind::kReduce: return "reduce";
    case CollectiveKind::kAllgather: return "allgather";
    case CollectiveKind::kScan: return "scan";
    case CollectiveKind::kAlltoall: return "alltoall";
  }
  return "?";
}

PlanRequest CollectiveAdvice::request(std::size_t n) const {
  return PlanRequest{.kind = kind,
                     .n = n,
                     .root_pid = root_pid,
                     .shares = shares,
                     .top_phase = top_phase};
}

CommSchedule CollectiveAdvice::plan(const MachineTree& tree,
                                    std::size_t n) const {
  // Served through the shared cache: re-planning the advice the advisor just
  // priced (the common follow-up call) is a lookup, not a rebuild.
  return PlanCache::global().get(tree, request(n))->schedule;
}

CollectiveAdvice advise(const MachineTree& tree, CollectiveKind kind,
                        std::size_t n) {
  if (tree.num_children(tree.root()) == 0) {
    throw std::invalid_argument{"advise: single-processor machine"};
  }
  const int fast = tree.coordinator_pid(tree.root());
  const int slow = tree.slowest_pid(tree.root());

  // Candidates come through the shared plan cache: the schedule and its
  // CostModel price are built once per distinct configuration, and the
  // follow-up advice.plan() call is a lookup. build_plan dispatches
  // allgather's flat/hierarchical split, so the cache sees the same schedule
  // the direct planner calls used to produce.
  std::vector<Candidate> candidates;
  const auto add = [&](Candidate candidate, const PlanRequest& request) {
    candidate.plan = PlanCache::global().get(tree, request);
    candidate.supersteps = count_supersteps(candidate.plan->schedule);
    candidates.push_back(std::move(candidate));
  };

  switch (kind) {
    case CollectiveKind::kGather:
    case CollectiveKind::kScatter:
    case CollectiveKind::kReduce: {
      for (const int root : {fast, slow}) {
        for (const Shares shares : {Shares::kBalanced, Shares::kEqual}) {
          Candidate candidate;
          candidate.description = "root=" + root_name(tree, root) + ", " +
                                  shares_name(shares) + " shares";
          candidate.root_pid = root;
          candidate.shares = shares;
          add(std::move(candidate),
              {.kind = kind, .n = n, .root_pid = root, .shares = shares});
        }
        if (slow == fast) break;
      }
      break;
    }
    case CollectiveKind::kBroadcast: {
      for (const TopPhase top : {TopPhase::kOnePhase, TopPhase::kTwoPhase}) {
        Candidate candidate;
        candidate.description = std::string{top == TopPhase::kOnePhase
                                                ? "one-phase"
                                                : "two-phase"} +
                                " from " + root_name(tree, fast);
        candidate.root_pid = fast;
        candidate.shares = Shares::kEqual;
        candidate.top_phase = top;
        add(std::move(candidate), {.kind = kind,
                                   .n = n,
                                   .root_pid = fast,
                                   .shares = Shares::kEqual,
                                   .top_phase = top});
      }
      break;
    }
    case CollectiveKind::kAllgather:
    case CollectiveKind::kScan:
    case CollectiveKind::kAlltoall: {
      for (const Shares shares : {Shares::kBalanced, Shares::kEqual}) {
        Candidate candidate;
        candidate.description = std::string{shares_name(shares)} + " shares";
        candidate.shares = shares;
        add(std::move(candidate), {.kind = kind, .n = n, .shares = shares});
      }
      break;
    }
  }

  {
    auto& registry = obs::Registry::global();
    registry.counter("coll.advise_calls").increment();
    registry.counter("coll.candidates_evaluated").add(candidates.size());
  }

  CollectiveAdvice advice;
  advice.kind = kind;
  double best = std::numeric_limits<double>::infinity();
  int best_steps = std::numeric_limits<int>::max();
  bool best_balanced = false;
  for (const auto& candidate : candidates) {
    const double cost = candidate.plan->predicted_cost;
    advice.options.push_back({candidate.description, cost});
    const bool balanced = candidate.shares == Shares::kBalanced;
    const bool better =
        cost < best - 1e-15 ||
        (cost < best + 1e-15 &&
         (candidate.supersteps < best_steps ||
          (candidate.supersteps == best_steps && balanced && !best_balanced)));
    if (better) {
      best = cost;
      best_steps = candidate.supersteps;
      best_balanced = balanced;
      advice.root_pid = candidate.root_pid;
      advice.shares = candidate.shares;
      advice.top_phase = candidate.top_phase;
      advice.predicted_cost = cost;
    }
  }

  // Rationale, in the paper's own terms.
  if (kind == CollectiveKind::kBroadcast) {
    double r_s = 0.0;
    for (int j = 0; j < tree.num_children(tree.root()); ++j) {
      r_s = std::max(r_s, tree.r(tree.child(tree.root(), j)));
    }
    const double fan_out = static_cast<double>(tree.num_children(tree.root()) - 1);
    advice.rationale =
        advice.top_phase == TopPhase::kOnePhase
            ? (r_s >= fan_out
                   ? "slowest member's r >= m-1: it pays r_s*n either way, so "
                     "the extra barrier never pays off (SS4.4)"
                   : "problem too small: the second barrier costs more than "
                     "the bandwidth it saves")
            : "large enough that halving the root's fan-out volume beats the "
              "extra barrier (SS4.4)";
  } else if (advice.root_pid >= 0) {
    advice.rationale = "fastest machine coordinates and shares track 1/r_j "
                       "(the two SS4.1 design rules)";
  } else {
    advice.rationale = "symmetric collective: only the share policy matters";
  }
  return advice;
}

}  // namespace hbsp::coll
