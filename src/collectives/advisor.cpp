#include "collectives/advisor.hpp"

#include <limits>
#include <stdexcept>

#include "core/cost_model.hpp"
#include "obs/metrics.hpp"

namespace hbsp::coll {
namespace {

struct Candidate {
  std::string description;
  int root_pid = -1;
  Shares shares = Shares::kBalanced;
  TopPhase top_phase = TopPhase::kTwoPhase;
  int supersteps = 1;  ///< tie-break: simpler structures first
  CommSchedule schedule;
};

const char* shares_name(Shares shares) {
  return shares == Shares::kBalanced ? "balanced" : "equal";
}

std::string root_name(const MachineTree& tree, int pid) {
  const auto& name = tree.node(tree.processor(pid)).name;
  return name.empty() ? "P" + std::to_string(pid) : name;
}

int count_supersteps(const CommSchedule& schedule) {
  int count = 0;
  for (const auto& phase : schedule.phases) count += static_cast<int>(!phase.plans.empty());
  return count;
}

}  // namespace

const char* to_string(CollectiveKind kind) noexcept {
  switch (kind) {
    case CollectiveKind::kGather: return "gather";
    case CollectiveKind::kBroadcast: return "broadcast";
    case CollectiveKind::kScatter: return "scatter";
    case CollectiveKind::kReduce: return "reduce";
    case CollectiveKind::kAllgather: return "allgather";
    case CollectiveKind::kScan: return "scan";
    case CollectiveKind::kAlltoall: return "alltoall";
  }
  return "?";
}

CommSchedule CollectiveAdvice::plan(const MachineTree& tree,
                                    std::size_t n) const {
  switch (kind) {
    case CollectiveKind::kGather:
      return plan_gather(tree, n, {.root_pid = root_pid, .shares = shares});
    case CollectiveKind::kBroadcast:
      return plan_broadcast(
          tree, n,
          {.root_pid = root_pid, .top_phase = top_phase, .shares = shares});
    case CollectiveKind::kScatter:
      return plan_scatter(tree, n, {.root_pid = root_pid, .shares = shares});
    case CollectiveKind::kReduce:
      return plan_reduce_tree(tree, n,
                              {.root_pid = root_pid, .shares = shares});
    case CollectiveKind::kAllgather: {
      for (int j = 0; j < tree.num_children(tree.root()); ++j) {
        if (!tree.is_processor(tree.child(tree.root(), j))) {
          return plan_allgather_tree(tree, n, shares);
        }
      }
      return plan_allgather(tree, n, shares);
    }
    case CollectiveKind::kScan:
      return plan_scan(tree, n, shares);
    case CollectiveKind::kAlltoall:
      return plan_alltoall(tree, n, shares);
  }
  throw std::logic_error{"CollectiveAdvice::plan: bad kind"};
}

CollectiveAdvice advise(const MachineTree& tree, CollectiveKind kind,
                        std::size_t n) {
  if (tree.num_children(tree.root()) == 0) {
    throw std::invalid_argument{"advise: single-processor machine"};
  }
  const CostModel model{tree};
  const int fast = tree.coordinator_pid(tree.root());
  const int slow = tree.slowest_pid(tree.root());

  std::vector<Candidate> candidates;
  const auto add = [&](Candidate candidate) {
    candidate.supersteps = count_supersteps(candidate.schedule);
    candidates.push_back(std::move(candidate));
  };

  switch (kind) {
    case CollectiveKind::kGather:
    case CollectiveKind::kScatter:
    case CollectiveKind::kReduce: {
      const auto make = [&](int root, Shares shares) {
        const RootedOptions options{.root_pid = root, .shares = shares};
        switch (kind) {
          case CollectiveKind::kGather: return plan_gather(tree, n, options);
          case CollectiveKind::kScatter: return plan_scatter(tree, n, options);
          default: return plan_reduce_tree(tree, n, options);
        }
      };
      for (const int root : {fast, slow}) {
        for (const Shares shares : {Shares::kBalanced, Shares::kEqual}) {
          Candidate candidate;
          candidate.description = "root=" + root_name(tree, root) + ", " +
                                  shares_name(shares) + " shares";
          candidate.root_pid = root;
          candidate.shares = shares;
          candidate.schedule = make(root, shares);
          add(std::move(candidate));
        }
        if (slow == fast) break;
      }
      break;
    }
    case CollectiveKind::kBroadcast: {
      for (const TopPhase top : {TopPhase::kOnePhase, TopPhase::kTwoPhase}) {
        Candidate candidate;
        candidate.description = std::string{top == TopPhase::kOnePhase
                                                ? "one-phase"
                                                : "two-phase"} +
                                " from " + root_name(tree, fast);
        candidate.root_pid = fast;
        candidate.shares = Shares::kEqual;
        candidate.top_phase = top;
        candidate.schedule = plan_broadcast(
            tree, n,
            {.root_pid = fast, .top_phase = top, .shares = Shares::kEqual});
        add(std::move(candidate));
      }
      break;
    }
    case CollectiveKind::kAllgather:
    case CollectiveKind::kScan:
    case CollectiveKind::kAlltoall: {
      for (const Shares shares : {Shares::kBalanced, Shares::kEqual}) {
        Candidate candidate;
        candidate.description = std::string{shares_name(shares)} + " shares";
        candidate.shares = shares;
        const bool flat = [&] {
          for (int j = 0; j < tree.num_children(tree.root()); ++j) {
            if (!tree.is_processor(tree.child(tree.root(), j))) return false;
          }
          return true;
        }();
        switch (kind) {
          case CollectiveKind::kAllgather:
            // On hierarchies the flat total exchange would flood the upper
            // networks; use the gather+broadcast composition there.
            candidate.schedule = flat ? plan_allgather(tree, n, shares)
                                      : plan_allgather_tree(tree, n, shares);
            break;
          case CollectiveKind::kScan:
            candidate.schedule = plan_scan(tree, n, shares);
            break;
          default:
            candidate.schedule = plan_alltoall(tree, n, shares);
            break;
        }
        add(std::move(candidate));
      }
      break;
    }
  }

  {
    auto& registry = obs::Registry::global();
    registry.counter("coll.advise_calls").increment();
    registry.counter("coll.candidates_evaluated").add(candidates.size());
  }

  CollectiveAdvice advice;
  advice.kind = kind;
  double best = std::numeric_limits<double>::infinity();
  int best_steps = std::numeric_limits<int>::max();
  bool best_balanced = false;
  for (const auto& candidate : candidates) {
    const double cost = model.cost(candidate.schedule).total();
    advice.options.push_back({candidate.description, cost});
    const bool balanced = candidate.shares == Shares::kBalanced;
    const bool better =
        cost < best - 1e-15 ||
        (cost < best + 1e-15 &&
         (candidate.supersteps < best_steps ||
          (candidate.supersteps == best_steps && balanced && !best_balanced)));
    if (better) {
      best = cost;
      best_steps = candidate.supersteps;
      best_balanced = balanced;
      advice.root_pid = candidate.root_pid;
      advice.shares = candidate.shares;
      advice.top_phase = candidate.top_phase;
      advice.predicted_cost = cost;
    }
  }

  // Rationale, in the paper's own terms.
  if (kind == CollectiveKind::kBroadcast) {
    double r_s = 0.0;
    for (int j = 0; j < tree.num_children(tree.root()); ++j) {
      r_s = std::max(r_s, tree.r(tree.child(tree.root(), j)));
    }
    const double fan_out = static_cast<double>(tree.num_children(tree.root()) - 1);
    advice.rationale =
        advice.top_phase == TopPhase::kOnePhase
            ? (r_s >= fan_out
                   ? "slowest member's r >= m-1: it pays r_s*n either way, so "
                     "the extra barrier never pays off (SS4.4)"
                   : "problem too small: the second barrier costs more than "
                     "the bandwidth it saves")
            : "large enough that halving the root's fan-out volume beats the "
              "extra barrier (SS4.4)";
  } else if (advice.root_pid >= 0) {
    advice.rationale = "fastest machine coordinates and shares track 1/r_j "
                       "(the two SS4.1 design rules)";
  } else {
    advice.rationale = "symmetric collective: only the share policy matters";
  }
  return advice;
}

}  // namespace hbsp::coll
