#include "collectives/planners.hpp"

#include <map>
#include <stdexcept>
#include <string>

#include "core/workload.hpp"
#include "obs/metrics.hpp"

namespace hbsp::coll {
namespace {

/// Counts one planner invocation in the `coll.*` metric family (composed
/// planners like allgather-tree also count their nested gather/broadcast —
/// plans_built tallies planner calls, not emitted schedules).
void note_plan(const std::string& kind) {
  auto& registry = obs::Registry::global();
  registry.counter("coll.plans_built").increment();
  registry.counter("coll.plan." + kind).increment();
}

/// Per-node shares of n items, [level][index], computed by recursive
/// member_shares splits from the root down.
std::vector<std::vector<std::size_t>> node_shares(const MachineTree& tree,
                                                  std::size_t n, Shares shares) {
  std::vector<std::vector<std::size_t>> result(
      static_cast<std::size_t>(tree.num_levels()));
  for (int level = 0; level < tree.num_levels(); ++level) {
    result[static_cast<std::size_t>(level)].resize(
        static_cast<std::size_t>(tree.machines_at(level)), 0);
  }
  result[static_cast<std::size_t>(tree.height())][0] = n;
  for (int level = tree.height(); level >= 1; --level) {
    for (int j = 0; j < tree.machines_at(level); ++j) {
      const MachineId id{level, j};
      if (tree.is_processor(id)) continue;
      const std::size_t my_share =
          result[static_cast<std::size_t>(level)][static_cast<std::size_t>(j)];
      const auto split = analysis::member_shares(tree, id, my_share, shares);
      for (int child = 0; child < tree.num_children(id); ++child) {
        const MachineId cid = tree.child(id, child);
        result[static_cast<std::size_t>(cid.level)]
              [static_cast<std::size_t>(cid.index)] =
                  split[static_cast<std::size_t>(child)];
      }
    }
  }
  return result;
}

int normalize_root(const MachineTree& tree, int root_pid) {
  if (root_pid < 0) return tree.coordinator_pid(tree.root());
  if (root_pid >= tree.num_processors()) {
    throw std::invalid_argument{"bad root pid " + std::to_string(root_pid)};
  }
  return root_pid;
}

/// Data location of node `id` for a rooted collective: the processor itself,
/// or the cluster's target.
int data_site(const MachineTree& tree, MachineId id, int root_pid) {
  if (tree.is_processor(id)) return tree.node(id).pid;
  return cluster_target(tree, id, root_pid);
}

/// Adds the two-phase broadcast of `n` items from `cluster`'s data site to
/// every child's data site: a scatter plan into `scatter_phase` and a total
/// exchange plan into `exchange_phase`.
void add_two_phase_broadcast(const MachineTree& tree, MachineId cluster,
                             int root_pid, std::size_t n, Shares shares,
                             int level, Phase& scatter_phase,
                             Phase& exchange_phase) {
  const int src = cluster_target(tree, cluster, root_pid);
  const auto split = analysis::broadcast_pieces(tree, cluster, n, shares);
  const int m = tree.num_children(cluster);

  SuperstepPlan& scatter = scatter_phase.plans.emplace_back();
  scatter.label = "bcast scatter L" + std::to_string(level);
  scatter.level = level;
  scatter.sync_scope = cluster;
  std::vector<int> sites(static_cast<std::size_t>(m));
  for (int j = 0; j < m; ++j) {
    sites[static_cast<std::size_t>(j)] = data_site(tree, tree.child(cluster, j),
                                                   root_pid);
    if (sites[static_cast<std::size_t>(j)] != src &&
        split[static_cast<std::size_t>(j)] > 0) {
      scatter.transfers.push_back(
          {src, sites[static_cast<std::size_t>(j)], split[static_cast<std::size_t>(j)]});
    }
  }

  SuperstepPlan& exchange = exchange_phase.plans.emplace_back();
  exchange.label = "bcast exchange L" + std::to_string(level);
  exchange.level = level;
  exchange.sync_scope = cluster;
  for (int j = 0; j < m; ++j) {
    for (int i = 0; i < m; ++i) {
      if (i == j || split[static_cast<std::size_t>(j)] == 0) continue;
      if (sites[static_cast<std::size_t>(j)] == sites[static_cast<std::size_t>(i)]) {
        continue;
      }
      exchange.transfers.push_back({sites[static_cast<std::size_t>(j)],
                                    sites[static_cast<std::size_t>(i)],
                                    split[static_cast<std::size_t>(j)]});
    }
  }
}

}  // namespace

namespace detail {
void require_flat(const MachineTree& tree, const char* who) {
  const MachineId root = tree.root();
  for (int j = 0; j < tree.num_children(root); ++j) {
    if (!tree.is_processor(tree.child(root, j))) {
      throw std::invalid_argument{std::string{who} +
                                  ": requires a flat (HBSP^1) machine"};
    }
  }
  if (tree.num_children(root) == 0) {
    throw std::invalid_argument{std::string{who} +
                                ": machine has a single processor"};
  }
}
}  // namespace detail

std::vector<std::size_t> leaf_shares(const MachineTree& tree, std::size_t n,
                                     Shares shares) {
  const auto per_node = node_shares(tree, n, shares);
  std::vector<std::size_t> result(static_cast<std::size_t>(tree.num_processors()));
  for (int pid = 0; pid < tree.num_processors(); ++pid) {
    const MachineId id = tree.processor(pid);
    result[static_cast<std::size_t>(pid)] =
        per_node[static_cast<std::size_t>(id.level)]
                [static_cast<std::size_t>(id.index)];
  }
  return result;
}

int cluster_target(const MachineTree& tree, MachineId cluster, int root_pid) {
  if (root_pid >= 0) {
    const auto [first, last] = tree.processor_range(cluster);
    if (root_pid >= first && root_pid < last) return root_pid;
  }
  return tree.coordinator_pid(cluster);
}

CommSchedule plan_gather(const MachineTree& tree, std::size_t n,
                         const RootedOptions& options) {
  note_plan("gather");
  const int root_pid = normalize_root(tree, options.root_pid);
  const auto shares = node_shares(tree, n, options.shares);

  CommSchedule schedule;
  schedule.name = "gather";
  for (int level = 1; level <= tree.height(); ++level) {
    Phase phase;
    for (int j = 0; j < tree.machines_at(level); ++j) {
      const MachineId cluster{level, j};
      if (tree.is_processor(cluster)) continue;
      SuperstepPlan& plan = phase.plans.emplace_back();
      plan.label = "gather L" + std::to_string(level);
      plan.level = level;
      plan.sync_scope = cluster;
      const int target = cluster_target(tree, cluster, root_pid);
      for (int child = 0; child < tree.num_children(cluster); ++child) {
        const MachineId cid = tree.child(cluster, child);
        const int site = data_site(tree, cid, root_pid);
        const std::size_t share = shares[static_cast<std::size_t>(cid.level)]
                                        [static_cast<std::size_t>(cid.index)];
        if (site != target && share > 0) {
          plan.transfers.push_back({site, target, share});
        }
      }
    }
    if (!phase.plans.empty()) schedule.phases.push_back(std::move(phase));
  }
  return schedule;
}

CommSchedule plan_scatter(const MachineTree& tree, std::size_t n,
                          const RootedOptions& options) {
  note_plan("scatter");
  const int root_pid = normalize_root(tree, options.root_pid);
  const auto shares = node_shares(tree, n, options.shares);

  CommSchedule schedule;
  schedule.name = "scatter";
  for (int level = tree.height(); level >= 1; --level) {
    Phase phase;
    for (int j = 0; j < tree.machines_at(level); ++j) {
      const MachineId cluster{level, j};
      if (tree.is_processor(cluster)) continue;
      SuperstepPlan& plan = phase.plans.emplace_back();
      plan.label = "scatter L" + std::to_string(level);
      plan.level = level;
      plan.sync_scope = cluster;
      const int source = cluster_target(tree, cluster, root_pid);
      for (int child = 0; child < tree.num_children(cluster); ++child) {
        const MachineId cid = tree.child(cluster, child);
        const int site = data_site(tree, cid, root_pid);
        const std::size_t share = shares[static_cast<std::size_t>(cid.level)]
                                        [static_cast<std::size_t>(cid.index)];
        if (site != source && share > 0) {
          plan.transfers.push_back({source, site, share});
        }
      }
    }
    if (!phase.plans.empty()) schedule.phases.push_back(std::move(phase));
  }
  return schedule;
}

CommSchedule plan_broadcast(const MachineTree& tree, std::size_t n,
                            const BroadcastOptions& options) {
  note_plan("broadcast");
  const int root_pid = normalize_root(tree, options.root_pid);

  CommSchedule schedule;
  schedule.name = "broadcast";
  for (int level = tree.height(); level >= 1; --level) {
    const bool top = level == tree.height();
    if (top && options.top_phase == TopPhase::kOnePhase) {
      Phase phase;
      for (int j = 0; j < tree.machines_at(level); ++j) {
        const MachineId cluster{level, j};
        if (tree.is_processor(cluster)) continue;
        SuperstepPlan& plan = phase.plans.emplace_back();
        plan.label = "bcast one-phase L" + std::to_string(level);
        plan.level = level;
        plan.sync_scope = cluster;
        const int src = cluster_target(tree, cluster, root_pid);
        for (int child = 0; child < tree.num_children(cluster); ++child) {
          const int site = data_site(tree, tree.child(cluster, child), root_pid);
          if (site != src) plan.transfers.push_back({src, site, n});
        }
      }
      if (!phase.plans.empty()) schedule.phases.push_back(std::move(phase));
      continue;
    }

    Phase scatter_phase;
    Phase exchange_phase;
    for (int j = 0; j < tree.machines_at(level); ++j) {
      const MachineId cluster{level, j};
      if (tree.is_processor(cluster)) continue;
      add_two_phase_broadcast(tree, cluster, root_pid, n, options.shares, level,
                              scatter_phase, exchange_phase);
    }
    if (!scatter_phase.plans.empty()) {
      schedule.phases.push_back(std::move(scatter_phase));
      schedule.phases.push_back(std::move(exchange_phase));
    }
  }
  return schedule;
}

CommSchedule plan_allgather(const MachineTree& tree, std::size_t n,
                            Shares shares) {
  note_plan("allgather");
  detail::require_flat(tree, "plan_allgather");
  const analysis::Members members =
      analysis::cluster_members(tree, tree.root(), n, shares);
  const std::size_t m = members.pids.size();

  CommSchedule schedule;
  schedule.name = "allgather";
  SuperstepPlan& plan = schedule.add_step("allgather", 1, tree.root());
  for (std::size_t j = 0; j < m; ++j) {
    if (members.shares[j] == 0) continue;
    for (std::size_t i = 0; i < m; ++i) {
      if (i == j) continue;
      plan.transfers.push_back(
          {members.pids[j], members.pids[i], members.shares[j]});
    }
  }
  return schedule;
}

CommSchedule plan_reduce(const MachineTree& tree, std::size_t n,
                         const RootedOptions& options) {
  note_plan("reduce");
  detail::require_flat(tree, "plan_reduce");
  const int root_pid = normalize_root(tree, options.root_pid);
  const analysis::Members members =
      analysis::cluster_members(tree, tree.root(), n, options.shares);
  const std::size_t m = members.pids.size();

  CommSchedule schedule;
  schedule.name = "reduce";
  SuperstepPlan& combine = schedule.add_step("combine + send partials", 1,
                                             tree.root());
  for (std::size_t j = 0; j < m; ++j) {
    const double ops =
        members.shares[j] > 0 ? static_cast<double>(members.shares[j]) - 1.0 : 0.0;
    if (ops > 0.0) combine.compute.push_back({members.pids[j], ops});
    if (members.pids[j] != root_pid) {
      combine.transfers.push_back({members.pids[j], root_pid, 1});
    }
  }
  SuperstepPlan& final_step = schedule.add_step("root combine", 1, tree.root());
  final_step.compute.push_back({root_pid, static_cast<double>(m) - 1.0});
  return schedule;
}



CommSchedule plan_allgather_tree(const MachineTree& tree, std::size_t n,
                                 Shares shares) {
  note_plan("allgather_tree");
  if (tree.num_children(tree.root()) == 0) {
    throw std::invalid_argument{"plan_allgather_tree: single-processor machine"};
  }
  CommSchedule schedule;
  schedule.name = "allgather-tree";
  CommSchedule up = plan_gather(tree, n, {.root_pid = -1, .shares = shares});
  CommSchedule down = plan_broadcast(
      tree, n,
      {.root_pid = -1, .top_phase = TopPhase::kTwoPhase, .shares = Shares::kEqual});
  for (auto& phase : up.phases) schedule.phases.push_back(std::move(phase));
  for (auto& phase : down.phases) schedule.phases.push_back(std::move(phase));
  return schedule;
}

CommSchedule plan_reduce_tree(const MachineTree& tree, std::size_t n,
                              const RootedOptions& options) {
  note_plan("reduce_tree");
  const int root_pid = normalize_root(tree, options.root_pid);
  if (tree.num_children(tree.root()) == 0) {
    throw std::invalid_argument{"plan_reduce_tree: single-processor machine"};
  }
  const auto shares = leaf_shares(tree, n, options.shares);

  // Ops owed by each data site, charged in the next phase it takes part in:
  // initially every processor owes its local combine.
  std::map<int, double> pending;
  for (int pid = 0; pid < tree.num_processors(); ++pid) {
    const std::size_t share = shares[static_cast<std::size_t>(pid)];
    pending[pid] = share > 0 ? static_cast<double>(share) - 1.0 : 0.0;
  }

  CommSchedule schedule;
  schedule.name = "reduce-tree";
  for (int level = 1; level <= tree.height(); ++level) {
    Phase phase;
    for (int j = 0; j < tree.machines_at(level); ++j) {
      const MachineId cluster{level, j};
      if (tree.is_processor(cluster)) continue;
      SuperstepPlan& plan = phase.plans.emplace_back();
      plan.label = "reduce L" + std::to_string(level);
      plan.level = level;
      plan.sync_scope = cluster;
      const int target = cluster_target(tree, cluster, root_pid);
      std::size_t partials_received = 0;
      for (int child = 0; child < tree.num_children(cluster); ++child) {
        const int site = data_site(tree, tree.child(cluster, child), root_pid);
        if (const auto owed = pending.find(site);
            owed != pending.end() && owed->second > 0.0) {
          plan.compute.push_back({site, owed->second});
          owed->second = 0.0;
        }
        if (site != target) {
          plan.transfers.push_back({site, target, 1});
          ++partials_received;
        }
      }
      // The target folds the delivered partials next phase.
      pending[target] += static_cast<double>(partials_received);
    }
    if (!phase.plans.empty()) schedule.phases.push_back(std::move(phase));
  }

  SuperstepPlan& final_step =
      schedule.add_step("root combine", tree.height(), tree.root());
  const int root_target = cluster_target(tree, tree.root(), root_pid);
  if (pending[root_target] > 0.0) {
    final_step.compute.push_back({root_target, pending[root_target]});
  }
  return schedule;
}

CommSchedule plan_scan(const MachineTree& tree, std::size_t n, Shares shares) {
  note_plan("scan");
  detail::require_flat(tree, "plan_scan");
  const analysis::Members members =
      analysis::cluster_members(tree, tree.root(), n, shares);
  const std::size_t m = members.pids.size();
  const int root_pid = tree.coordinator_pid(tree.root());

  CommSchedule schedule;
  schedule.name = "scan";
  SuperstepPlan& up = schedule.add_step("local prefix + partials", 1,
                                        tree.root());
  for (std::size_t j = 0; j < m; ++j) {
    if (members.shares[j] > 0) {
      up.compute.push_back({members.pids[j],
                            static_cast<double>(members.shares[j])});
    }
    if (members.pids[j] != root_pid) {
      up.transfers.push_back({members.pids[j], root_pid, 1});
    }
  }
  SuperstepPlan& down = schedule.add_step("offsets back", 1, tree.root());
  down.compute.push_back({root_pid, static_cast<double>(m)});
  for (std::size_t j = 0; j < m; ++j) {
    if (members.pids[j] != root_pid) {
      down.transfers.push_back({root_pid, members.pids[j], 1});
    }
  }
  SuperstepPlan& apply = schedule.add_step("apply offsets", 1, tree.root());
  for (std::size_t j = 0; j < m; ++j) {
    if (members.shares[j] > 0) {
      apply.compute.push_back({members.pids[j],
                               static_cast<double>(members.shares[j])});
    }
  }
  return schedule;
}

CommSchedule plan_alltoall(const MachineTree& tree, std::size_t n,
                           Shares shares) {
  note_plan("alltoall");
  detail::require_flat(tree, "plan_alltoall");
  const analysis::Members members =
      analysis::cluster_members(tree, tree.root(), n, shares);
  const std::size_t m = members.pids.size();

  CommSchedule schedule;
  schedule.name = "alltoall";
  SuperstepPlan& plan = schedule.add_step("all-to-all", 1, tree.root());
  for (std::size_t j = 0; j < m; ++j) {
    const auto blocks = equal_partition(members.shares[j], m);
    for (std::size_t i = 0; i < m; ++i) {
      if (i == j || blocks[i] == 0) continue;
      plan.transfers.push_back({members.pids[j], members.pids[i], blocks[i]});
    }
  }
  return schedule;
}

}  // namespace hbsp::coll
