#pragma once
// Algorithm advisor: §4's decision procedure as an API.
//
// Given a machine and a problem size, recommends — per collective — the
// root, the share policy, and (for broadcast) the phase structure, with the
// model costs of every alternative considered and a one-line rationale. This
// is the "architecture-independent guidance" the model promises (§3.4): the
// same call picks sensible strategies on a flat workstation pool and on a
// campus hierarchy. Candidates are the planners' schedules priced by
// CostModel, so advice is consistent with what executing the planner's
// schedule would cost.

#include <cstddef>
#include <string>
#include <vector>

#include "collectives/planners.hpp"

namespace hbsp::coll {

/// The collectives the advisor knows how to plan. Scan and alltoall require
/// a flat (HBSP^1) machine, like their planners; allgather switches to the
/// hierarchical gather+broadcast composition on deeper machines.
enum class CollectiveKind {
  kGather,
  kBroadcast,
  kScatter,
  kReduce,
  kAllgather,
  kScan,
  kAlltoall,
};

[[nodiscard]] const char* to_string(CollectiveKind kind) noexcept;

/// One evaluated configuration.
struct AdviceOption {
  std::string description;
  double predicted_cost = 0.0;
};

struct PlanRequest;  // plan_cache.hpp

/// The advisor's output: the chosen configuration plus everything it
/// compared against and why it chose.
struct CollectiveAdvice {
  CollectiveKind kind = CollectiveKind::kGather;
  int root_pid = -1;                ///< -1 when the collective is rootless
  Shares shares = Shares::kBalanced;
  TopPhase top_phase = TopPhase::kTwoPhase;  ///< meaningful for broadcast
  double predicted_cost = 0.0;
  std::vector<AdviceOption> options;  ///< every configuration evaluated
  std::string rationale;

  /// The PlanCache request equivalent to this advice at problem size n —
  /// what plan() asks the cache for.
  [[nodiscard]] PlanRequest request(std::size_t n) const;

  /// The planner schedule realising this advice, served through
  /// PlanCache::global() (a lookup when the advisor already built it).
  [[nodiscard]] CommSchedule plan(const MachineTree& tree, std::size_t n) const;
};

/// Recommends a configuration for `kind` moving n items on `tree`. All
/// candidates are priced with CostModel over the planners' schedules; the
/// cheapest wins (ties break toward fewer supersteps, then balanced shares).
/// Throws std::invalid_argument for single-processor machines and for
/// flat-only collectives on hierarchies.
[[nodiscard]] CollectiveAdvice advise(const MachineTree& tree,
                                      CollectiveKind kind, std::size_t n);

}  // namespace hbsp::coll
