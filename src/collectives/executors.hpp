#pragma once
// SPMD executors of the collective operations on the HBSPlib-like runtime.
//
// Each executor is the runnable counterpart of a planner in planners.hpp: it
// moves real data with exactly the transfers (endpoints, item counts,
// superstep structure) the planner schedules, so the virtual-time makespan of
// an executor run equals the cluster simulator's makespan for the planned
// schedule. Tests rely on that agreement.
//
// All executors are collectives in the MPI sense: every processor of the
// machine must call the same executor with consistent arguments, and the
// data a processor contributes must match its planned share
// (`leaf_shares(machine, n, shares)`).

#include <algorithm>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <stdexcept>
#include <vector>

#include "collectives/planners.hpp"
#include "core/workload.hpp"
#include "runtime/hbsplib.hpp"

namespace hbsp::coll {

namespace detail {

/// Packs (origin_pid, count, values...) segments into one message payload.
template <typename T>
rt::PackBuffer pack_segments(const std::map<int, std::vector<T>>& segments) {
  rt::PackBuffer buffer;
  for (const auto& [origin, values] : segments) {
    buffer.pack<std::int32_t>(origin);
    buffer.pack<std::uint64_t>(values.size());
    buffer.pack_span<T>(values);
  }
  return buffer;
}

/// Unpacks segments appended by pack_segments into `segments`.
template <typename T>
void unpack_segments(const rt::Message& message,
                     std::map<int, std::vector<T>>& segments) {
  rt::UnpackBuffer reader{message};
  while (reader.remaining() > 0) {
    const auto origin = reader.unpack<std::int32_t>();
    const auto count = reader.unpack<std::uint64_t>();
    auto values = reader.unpack_span<T>(count);
    auto [it, inserted] = segments.emplace(origin, std::move(values));
    if (!inserted) {
      throw std::logic_error{"duplicate segment for origin pid " +
                             std::to_string(origin)};
    }
  }
}

template <typename T>
std::size_t segment_items(const std::map<int, std::vector<T>>& segments) {
  std::size_t total = 0;
  for (const auto& [origin, values] : segments) total += values.size();
  return total;
}

/// The cluster of `pid`'s ancestors at `level`, or nullopt when the
/// processor itself sits at or above that level (degenerate machines take no
/// part in lower-level supersteps).
inline std::optional<MachineId> participating_cluster(const MachineTree& tree,
                                                      int pid, int level) {
  if (tree.processor(pid).level >= level) return std::nullopt;
  return tree.ancestor_at(pid, level);
}

/// The node whose data site `pid` would be within `cluster` at `level`: the
/// child of `cluster` on `pid`'s root path.
inline MachineId member_node(const MachineTree& tree, int pid, int level) {
  const MachineId me = tree.processor(pid);
  return me.level == level - 1 ? me : tree.ancestor_at(pid, level - 1);
}

}  // namespace detail

/// Gathers the distributed items (shares per `leaf_shares`) to the root
/// processor, bottom-up through the hierarchy (§4.2/4.3). Returns the items
/// in pid order at the root; nullopt elsewhere. `mine.size()` must equal the
/// caller's planned share.
template <typename T>
std::optional<std::vector<T>> gather(rt::Hbsp& ctx, std::span<const T> mine,
                                     std::size_t n,
                                     const RootedOptions& options = {}) {
  const MachineTree& tree = ctx.machine();
  const int root_pid = options.root_pid < 0
                           ? tree.coordinator_pid(tree.root())
                           : options.root_pid;
  const auto shares = leaf_shares(tree, n, options.shares);
  if (mine.size() != shares[static_cast<std::size_t>(ctx.pid())]) {
    throw std::invalid_argument{"gather: local data does not match the plan"};
  }

  std::map<int, std::vector<T>> segments;
  if (!mine.empty()) {
    segments.emplace(ctx.pid(), std::vector<T>(mine.begin(), mine.end()));
  }

  for (int level = 1; level <= tree.height(); ++level) {
    const auto cluster = detail::participating_cluster(tree, ctx.pid(), level);
    if (!cluster) continue;
    const int target = cluster_target(tree, *cluster, root_pid);
    const MachineId member = detail::member_node(tree, ctx.pid(), level);
    const int site = tree.is_processor(member)
                         ? ctx.pid()
                         : cluster_target(tree, member, root_pid);
    if (ctx.pid() == site && ctx.pid() != target && !segments.empty()) {
      auto buffer = detail::pack_segments(segments);
      const std::size_t items = detail::segment_items(segments);
      ctx.send(target, buffer.take(), items);
      segments.clear();
    }
    ctx.sync_scope(*cluster);
    if (ctx.pid() == target) {
      for (const auto& message : ctx.recv_all()) {
        detail::unpack_segments<T>(message, segments);
      }
    }
  }

  if (ctx.pid() != root_pid) return std::nullopt;
  std::vector<T> result;
  result.reserve(n);
  for (const auto& [origin, values] : segments) {
    result.insert(result.end(), values.begin(), values.end());
  }
  if (result.size() != n) {
    throw std::logic_error{"gather: assembled " + std::to_string(result.size()) +
                           " of " + std::to_string(n) + " items"};
  }
  return result;
}

/// Scatters `input` (held by the root, in pid order) so every processor ends
/// with its `leaf_shares` share, top-down. Only the root's `input` is read.
template <typename T>
std::vector<T> scatter(rt::Hbsp& ctx, std::span<const T> input, std::size_t n,
                       const RootedOptions& options = {}) {
  const MachineTree& tree = ctx.machine();
  const int root_pid = options.root_pid < 0
                           ? tree.coordinator_pid(tree.root())
                           : options.root_pid;
  const auto shares = leaf_shares(tree, n, options.shares);

  // Prefix offsets: items of pid `p` live at [offset[p], offset[p+1]).
  std::vector<std::size_t> offsets(shares.size() + 1, 0);
  for (std::size_t i = 0; i < shares.size(); ++i) {
    offsets[i + 1] = offsets[i] + shares[i];
  }

  std::vector<T> buffer;
  int buffer_first = 0;  // pid range my buffer covers: [buffer_first, buffer_last)
  int buffer_last = 0;
  if (ctx.pid() == root_pid) {
    if (input.size() != n) {
      throw std::invalid_argument{"scatter: root input must hold all n items"};
    }
    buffer.assign(input.begin(), input.end());
    buffer_first = 0;
    buffer_last = tree.num_processors();
  }

  for (int level = tree.height(); level >= 1; --level) {
    const auto cluster = detail::participating_cluster(tree, ctx.pid(), level);
    if (!cluster) continue;
    const int source = cluster_target(tree, *cluster, root_pid);
    if (ctx.pid() == source) {
      for (int child = 0; child < tree.num_children(*cluster); ++child) {
        const MachineId cid = tree.child(*cluster, child);
        const auto [first, last] = tree.processor_range(cid);
        const int site = tree.is_processor(cid)
                             ? tree.node(cid).pid
                             : cluster_target(tree, cid, root_pid);
        const std::size_t count = offsets[static_cast<std::size_t>(last)] -
                                  offsets[static_cast<std::size_t>(first)];
        if (site == source || count == 0) continue;
        const std::size_t begin =
            offsets[static_cast<std::size_t>(first)] -
            offsets[static_cast<std::size_t>(buffer_first)];
        rt::PackBuffer out;
        out.pack_span<T>(std::span<const T>{buffer.data() + begin, count});
        ctx.send(site, out.take(), count);
      }
    }
    ctx.sync_scope(*cluster);
    const MachineId member = detail::member_node(tree, ctx.pid(), level);
    const int my_site = tree.is_processor(member)
                            ? ctx.pid()
                            : cluster_target(tree, member, root_pid);
    if (ctx.pid() == my_site && ctx.pid() != source) {
      auto messages = ctx.recv_all();
      if (!messages.empty()) {
        rt::UnpackBuffer reader{messages.front()};
        const auto [first, last] = tree.processor_range(member);
        buffer = reader.unpack_span<T>(offsets[static_cast<std::size_t>(last)] -
                                       offsets[static_cast<std::size_t>(first)]);
        buffer_first = first;
        buffer_last = last;
      }
    } else if (ctx.pid() == source) {
      // Trim my buffer to my own member subtree for the next level.
      const MachineId member_of_source = detail::member_node(tree, ctx.pid(), level);
      const auto [first, last] = tree.processor_range(member_of_source);
      const std::size_t begin = offsets[static_cast<std::size_t>(first)] -
                                offsets[static_cast<std::size_t>(buffer_first)];
      const std::size_t count = offsets[static_cast<std::size_t>(last)] -
                                offsets[static_cast<std::size_t>(first)];
      buffer = std::vector<T>(buffer.begin() + static_cast<std::ptrdiff_t>(begin),
                              buffer.begin() +
                                  static_cast<std::ptrdiff_t>(begin + count));
      buffer_first = first;
      buffer_last = last;
    }
  }
  (void)buffer_last;
  return buffer;
}

/// Broadcasts `input` (held by the root) to every processor (§4.4): one- or
/// two-phase at the top level, two-phase within every cluster below. Returns
/// the full n items on every processor.
template <typename T>
std::vector<T> broadcast(rt::Hbsp& ctx, std::span<const T> input, std::size_t n,
                         const BroadcastOptions& options = {}) {
  const MachineTree& tree = ctx.machine();
  const int root_pid = options.root_pid < 0
                           ? tree.coordinator_pid(tree.root())
                           : options.root_pid;

  std::vector<T> full;
  if (ctx.pid() == root_pid) {
    if (input.size() != n) {
      throw std::invalid_argument{"broadcast: root input must hold all n items"};
    }
    full.assign(input.begin(), input.end());
  }

  for (int level = tree.height(); level >= 1; --level) {
    const auto cluster = detail::participating_cluster(tree, ctx.pid(), level);
    if (!cluster) continue;
    const int src = cluster_target(tree, *cluster, root_pid);
    const int m = tree.num_children(*cluster);
    const MachineId member = detail::member_node(tree, ctx.pid(), level);
    const int my_ordinal = analysis::member_of_pid(tree, *cluster, ctx.pid());
    const int my_site = tree.is_processor(member)
                            ? ctx.pid()
                            : cluster_target(tree, member, root_pid);
    std::vector<int> sites(static_cast<std::size_t>(m));
    for (int j = 0; j < m; ++j) {
      const MachineId cid = tree.child(*cluster, j);
      sites[static_cast<std::size_t>(j)] =
          tree.is_processor(cid) ? tree.node(cid).pid
                                 : cluster_target(tree, cid, root_pid);
    }

    const bool top = level == tree.height();
    if (top && options.top_phase == TopPhase::kOnePhase) {
      if (ctx.pid() == src) {
        for (int j = 0; j < m; ++j) {
          const int site = sites[static_cast<std::size_t>(j)];
          if (site == src) continue;
          rt::PackBuffer out;
          out.pack_span<T>(std::span<const T>{full});
          ctx.send(site, out.take(), n);
        }
      }
      ctx.sync_scope(*cluster);
      if (ctx.pid() == my_site && ctx.pid() != src) {
        auto messages = ctx.recv_all();
        if (messages.size() != 1) {
          throw std::logic_error{"broadcast: expected exactly one message"};
        }
        rt::UnpackBuffer reader{messages.front()};
        full = reader.unpack_span<T>(n);
      }
      continue;
    }

    // Two-phase. Phase A: scatter member pieces of the full array.
    const auto split = analysis::broadcast_pieces(tree, *cluster, n, options.shares);
    std::vector<std::size_t> piece_offset(split.size() + 1, 0);
    for (std::size_t j = 0; j < split.size(); ++j) {
      piece_offset[j + 1] = piece_offset[j] + split[j];
    }
    if (ctx.pid() == src) {
      for (int j = 0; j < m; ++j) {
        const int site = sites[static_cast<std::size_t>(j)];
        const std::size_t count = split[static_cast<std::size_t>(j)];
        if (site == src || count == 0) continue;
        rt::PackBuffer out;
        out.pack_span<T>(std::span<const T>{
            full.data() + piece_offset[static_cast<std::size_t>(j)], count});
        ctx.send(site, out.take(), count);
      }
    }
    ctx.sync_scope(*cluster);
    std::vector<T> piece;
    if (ctx.pid() == my_site) {
      const std::size_t my_count = split[static_cast<std::size_t>(my_ordinal)];
      if (ctx.pid() == src) {
        piece.assign(
            full.begin() +
                static_cast<std::ptrdiff_t>(
                    piece_offset[static_cast<std::size_t>(my_ordinal)]),
            full.begin() +
                static_cast<std::ptrdiff_t>(
                    piece_offset[static_cast<std::size_t>(my_ordinal)] + my_count));
      } else {
        auto messages = ctx.recv_all();
        if (my_count > 0) {
          if (messages.size() != 1) {
            throw std::logic_error{"broadcast: expected one scatter message"};
          }
          rt::UnpackBuffer reader{messages.front()};
          piece = reader.unpack_span<T>(my_count);
        }
      }
    }

    // Phase B: total exchange of pieces among the member sites.
    if (ctx.pid() == my_site && !piece.empty()) {
      for (int i = 0; i < m; ++i) {
        const int site = sites[static_cast<std::size_t>(i)];
        if (i == my_ordinal || site == ctx.pid()) continue;
        rt::PackBuffer out;
        out.pack<std::int32_t>(my_ordinal);
        out.pack_span<T>(std::span<const T>{piece});
        ctx.send(site, out.take(), piece.size());
      }
    }
    ctx.sync_scope(*cluster);
    if (ctx.pid() == my_site) {
      std::vector<std::vector<T>> pieces(static_cast<std::size_t>(m));
      pieces[static_cast<std::size_t>(my_ordinal)] = std::move(piece);
      for (const auto& message : ctx.recv_all()) {
        rt::UnpackBuffer reader{message};
        const auto ordinal = reader.unpack<std::int32_t>();
        pieces[static_cast<std::size_t>(ordinal)] =
            reader.unpack_span<T>(split[static_cast<std::size_t>(ordinal)]);
      }
      full.clear();
      full.reserve(n);
      for (auto& p : pieces) full.insert(full.end(), p.begin(), p.end());
      if (full.size() != n) {
        throw std::logic_error{"broadcast: exchange assembled wrong size"};
      }
    }
  }
  return full;
}

/// HBSP^1 all-gather: every processor contributes its share and ends with
/// the full n items in pid order.
template <typename T>
std::vector<T> allgather(rt::Hbsp& ctx, std::span<const T> mine, std::size_t n,
                         Shares shares = Shares::kBalanced) {
  const MachineTree& tree = ctx.machine();
  detail::require_flat(tree, "allgather");
  const auto split = leaf_shares(tree, n, shares);
  if (mine.size() != split[static_cast<std::size_t>(ctx.pid())]) {
    throw std::invalid_argument{"allgather: local data does not match the plan"};
  }
  if (!mine.empty()) {
    for (int dst = 0; dst < ctx.nprocs(); ++dst) {
      if (dst == ctx.pid()) continue;
      rt::PackBuffer out;
      out.pack_span<T>(mine);
      ctx.send(dst, out.take(), mine.size());
    }
  }
  ctx.sync_scope(tree.root());
  std::vector<std::vector<T>> pieces(static_cast<std::size_t>(ctx.nprocs()));
  pieces[static_cast<std::size_t>(ctx.pid())] =
      std::vector<T>(mine.begin(), mine.end());
  for (const auto& message : ctx.recv_all()) {
    rt::UnpackBuffer reader{message};
    pieces[static_cast<std::size_t>(message.src_pid)] = reader.unpack_span<T>(
        split[static_cast<std::size_t>(message.src_pid)]);
  }
  std::vector<T> full;
  full.reserve(n);
  for (auto& p : pieces) full.insert(full.end(), p.begin(), p.end());
  if (full.size() != n) {
    throw std::logic_error{"allgather: assembled wrong size"};
  }
  return full;
}

/// HBSP^1 reduction with a binary operation; returns the result at the root,
/// nullopt elsewhere. `identity` seeds empty shares.
template <typename T, typename Op>
std::optional<T> reduce(rt::Hbsp& ctx, std::span<const T> mine, std::size_t n,
                        Op op, T identity, const RootedOptions& options = {}) {
  const MachineTree& tree = ctx.machine();
  detail::require_flat(tree, "reduce");
  const int root_pid = options.root_pid < 0
                           ? tree.coordinator_pid(tree.root())
                           : options.root_pid;
  const auto split = leaf_shares(tree, n, options.shares);
  if (mine.size() != split[static_cast<std::size_t>(ctx.pid())]) {
    throw std::invalid_argument{"reduce: local data does not match the plan"};
  }

  T partial = identity;
  for (const T& value : mine) partial = op(partial, value);
  if (!mine.empty()) {
    ctx.charge_compute(static_cast<double>(mine.size()) - 1.0);
  }
  if (ctx.pid() != root_pid) {
    rt::PackBuffer out;
    out.pack<T>(partial);
    ctx.send(root_pid, out.take(), 1);
  }
  ctx.sync_scope(tree.root());

  if (ctx.pid() != root_pid) {
    ctx.sync_scope(tree.root());  // pair the root's combine superstep
    return std::nullopt;
  }
  std::vector<T> partials(static_cast<std::size_t>(ctx.nprocs()), identity);
  partials[static_cast<std::size_t>(ctx.pid())] = partial;
  for (const auto& message : ctx.recv_all()) {
    rt::UnpackBuffer reader{message};
    partials[static_cast<std::size_t>(message.src_pid)] = reader.unpack<T>();
  }
  T result = identity;
  for (const T& value : partials) result = op(result, value);
  ctx.charge_compute(static_cast<double>(ctx.nprocs()) - 1.0);
  ctx.sync_scope(tree.root());
  return result;
}

/// HBSP^k all-gather: gather to the machine's coordinator, then broadcast
/// back out (the runnable counterpart of plan_allgather_tree). Every
/// processor returns the full n items in pid order.
template <typename T>
std::vector<T> allgather_tree(rt::Hbsp& ctx, std::span<const T> mine,
                              std::size_t n, Shares shares = Shares::kBalanced) {
  const MachineTree& tree = ctx.machine();
  if (tree.num_children(tree.root()) == 0) {
    throw std::invalid_argument{"allgather_tree: single-processor machine"};
  }
  const int root = tree.coordinator_pid(tree.root());
  const auto at_root =
      gather<T>(ctx, mine, n, {.root_pid = root, .shares = shares});
  return broadcast<T>(
      ctx,
      at_root ? std::span<const T>{*at_root} : std::span<const T>{}, n,
      {.root_pid = root, .top_phase = TopPhase::kTwoPhase,
       .shares = Shares::kEqual});
}

/// HBSP^k reduction with a binary operation: partials flow up the tree one
/// level per superstep, each cluster folding concurrently under its own
/// barrier (the runnable counterpart of plan_reduce_tree). Returns the
/// result at the root processor, nullopt elsewhere.
template <typename T, typename Op>
std::optional<T> reduce_tree(rt::Hbsp& ctx, std::span<const T> mine,
                             std::size_t n, Op op, T identity,
                             const RootedOptions& options = {}) {
  const MachineTree& tree = ctx.machine();
  if (tree.num_children(tree.root()) == 0) {
    throw std::invalid_argument{"reduce_tree: single-processor machine"};
  }
  const int root_pid = options.root_pid < 0
                           ? tree.coordinator_pid(tree.root())
                           : options.root_pid;
  const auto shares = leaf_shares(tree, n, options.shares);
  if (mine.size() != shares[static_cast<std::size_t>(ctx.pid())]) {
    throw std::invalid_argument{"reduce_tree: local data does not match the plan"};
  }

  T partial = identity;
  for (const T& value : mine) partial = op(partial, value);
  // Ops owed to the virtual clock, charged in the next participating phase
  // (mirrors plan_reduce_tree's accounting exactly).
  double pending_ops = mine.empty() ? 0.0 : static_cast<double>(mine.size()) - 1.0;

  for (int level = 1; level <= tree.height(); ++level) {
    const auto cluster = detail::participating_cluster(tree, ctx.pid(), level);
    if (!cluster) continue;
    const int target = cluster_target(tree, *cluster, root_pid);
    const MachineId member = detail::member_node(tree, ctx.pid(), level);
    const int my_site = tree.is_processor(member)
                            ? ctx.pid()
                            : cluster_target(tree, member, root_pid);
    if (ctx.pid() == my_site) {
      if (pending_ops > 0.0) {
        ctx.charge_compute(pending_ops);
        pending_ops = 0.0;
      }
      if (ctx.pid() != target) {
        rt::PackBuffer out;
        out.pack<T>(partial);
        ctx.send(target, out.take(), 1);
      }
    }
    ctx.sync_scope(*cluster);
    if (ctx.pid() == target) {
      for (const auto& message : ctx.recv_all()) {
        rt::UnpackBuffer reader{message};
        partial = op(partial, reader.unpack<T>());
        pending_ops += 1.0;
      }
    }
  }

  // Final superstep: the root target folds what the last barrier delivered.
  if (ctx.pid() == root_pid && pending_ops > 0.0) {
    ctx.charge_compute(pending_ops);
  }
  ctx.sync_scope(tree.root());
  if (ctx.pid() != root_pid) return std::nullopt;
  return partial;
}

namespace detail {
/// The coordinator's own exclusive offset, remembered across the superstep
/// boundary without a self-send (§5.2: no self-sends). One slot per thread is
/// safe: each processor runs on its own thread and scans don't nest.
template <typename T>
inline thread_local T scan_offset_stash{};
}  // namespace detail

/// HBSP^1 inclusive scan over the global pid-ordered sequence: returns this
/// processor's items replaced by their global running totals.
template <typename T, typename Op>
std::vector<T> scan(rt::Hbsp& ctx, std::span<const T> mine, std::size_t n,
                    Op op, T identity, Shares shares = Shares::kBalanced) {
  const MachineTree& tree = ctx.machine();
  detail::require_flat(tree, "scan");
  const int root_pid = tree.coordinator_pid(tree.root());
  const auto split = leaf_shares(tree, n, shares);
  if (mine.size() != split[static_cast<std::size_t>(ctx.pid())]) {
    throw std::invalid_argument{"scan: local data does not match the plan"};
  }

  // Superstep 1: local inclusive prefix; totals to the coordinator.
  std::vector<T> local(mine.begin(), mine.end());
  T running = identity;
  for (T& value : local) {
    running = op(running, value);
    value = running;
  }
  if (!local.empty()) ctx.charge_compute(static_cast<double>(local.size()));
  if (ctx.pid() != root_pid) {
    rt::PackBuffer out;
    out.pack<T>(running);
    ctx.send(root_pid, out.take(), 1);
  }
  ctx.sync_scope(tree.root());

  // Superstep 2: the coordinator prefixes the totals and returns offsets.
  if (ctx.pid() == root_pid) {
    std::vector<T> totals(static_cast<std::size_t>(ctx.nprocs()), identity);
    totals[static_cast<std::size_t>(ctx.pid())] = running;
    for (const auto& message : ctx.recv_all()) {
      rt::UnpackBuffer reader{message};
      totals[static_cast<std::size_t>(message.src_pid)] = reader.unpack<T>();
    }
    T prefix = identity;
    ctx.charge_compute(static_cast<double>(ctx.nprocs()));
    for (int pid = 0; pid < ctx.nprocs(); ++pid) {
      if (pid != root_pid) {
        rt::PackBuffer out;
        out.pack<T>(prefix);  // exclusive offset for pid
        ctx.send(pid, out.take(), 1);
      } else {
        detail::scan_offset_stash<T> = prefix;
      }
      prefix = op(prefix, totals[static_cast<std::size_t>(pid)]);
    }
  }
  ctx.sync_scope(tree.root());

  // Superstep 3: apply the offset locally.
  T offset = identity;
  if (ctx.pid() == root_pid) {
    offset = detail::scan_offset_stash<T>;
  } else {
    auto messages = ctx.recv_all();
    if (messages.size() != 1) {
      throw std::logic_error{"scan: expected exactly one offset message"};
    }
    rt::UnpackBuffer reader{messages.front()};
    offset = reader.unpack<T>();
  }
  for (T& value : local) value = op(offset, value);
  if (!local.empty()) ctx.charge_compute(static_cast<double>(local.size()));
  ctx.sync_scope(tree.root());
  return local;
}

/// HBSP^1 all-to-all personalised exchange: each processor splits its share
/// into nprocs blocks (equal split, largest-first remainder) and sends block
/// i to processor i. Returns the received blocks concatenated in source pid
/// order (own block included).
template <typename T>
std::vector<T> alltoall(rt::Hbsp& ctx, std::span<const T> mine, std::size_t n,
                        Shares shares = Shares::kBalanced) {
  const MachineTree& tree = ctx.machine();
  detail::require_flat(tree, "alltoall");
  const auto split = leaf_shares(tree, n, shares);
  if (mine.size() != split[static_cast<std::size_t>(ctx.pid())]) {
    throw std::invalid_argument{"alltoall: local data does not match the plan"};
  }
  const auto p = static_cast<std::size_t>(ctx.nprocs());
  const auto blocks = equal_partition(mine.size(), p);
  std::vector<std::size_t> offsets(p + 1, 0);
  for (std::size_t i = 0; i < p; ++i) offsets[i + 1] = offsets[i] + blocks[i];

  for (std::size_t i = 0; i < p; ++i) {
    if (static_cast<int>(i) == ctx.pid() || blocks[i] == 0) continue;
    rt::PackBuffer out;
    out.pack_span<T>(std::span<const T>{mine.data() + offsets[i], blocks[i]});
    ctx.send(static_cast<int>(i), out.take(), blocks[i]);
  }
  ctx.sync_scope(tree.root());

  std::vector<std::vector<T>> received(p);
  received[static_cast<std::size_t>(ctx.pid())] = std::vector<T>(
      mine.begin() + static_cast<std::ptrdiff_t>(
                         offsets[static_cast<std::size_t>(ctx.pid())]),
      mine.begin() + static_cast<std::ptrdiff_t>(
                         offsets[static_cast<std::size_t>(ctx.pid())] +
                         blocks[static_cast<std::size_t>(ctx.pid())]));
  for (const auto& message : ctx.recv_all()) {
    rt::UnpackBuffer reader{message};
    received[static_cast<std::size_t>(message.src_pid)] =
        reader.unpack_span<T>(message.items);
  }
  std::vector<T> result;
  for (auto& block : received) {
    result.insert(result.end(), block.begin(), block.end());
  }
  return result;
}

}  // namespace hbsp::coll
