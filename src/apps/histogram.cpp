#include "apps/histogram.hpp"

#include <algorithm>
#include <stdexcept>

#include "collectives/executors.hpp"

namespace hbsp::apps {
namespace {

std::size_t bin_of(double value, const HistogramSpec& spec) {
  if (spec.hi <= spec.lo) throw std::invalid_argument{"HistogramSpec: hi <= lo"};
  const double t = (value - spec.lo) / (spec.hi - spec.lo);
  const auto raw = static_cast<std::ptrdiff_t>(t * static_cast<double>(spec.bins));
  const auto clamped =
      std::clamp<std::ptrdiff_t>(raw, 0,
                                 static_cast<std::ptrdiff_t>(spec.bins) - 1);
  return static_cast<std::size_t>(clamped);
}

}  // namespace

std::vector<std::uint64_t> histogram_serial(std::span<const double> samples,
                                            const HistogramSpec& spec) {
  std::vector<std::uint64_t> counts(spec.bins, 0);
  for (const double value : samples) ++counts[bin_of(value, spec)];
  return counts;
}

std::vector<std::uint64_t> histogram_spmd(rt::Hbsp& ctx,
                                          std::span<const double> samples,
                                          std::size_t n,
                                          const HistogramSpec& spec,
                                          coll::Shares shares) {
  const int root = ctx.fastest_pid();

  // 1. Scatter the samples in planned shares.
  const std::vector<double> mine = coll::scatter<double>(
      ctx, ctx.pid() == root ? samples : std::span<const double>{}, n,
      {.root_pid = root, .shares = shares});

  // 2. Local binning: one op per sample.
  std::vector<std::uint64_t> local(spec.bins, 0);
  for (const double value : mine) ++local[bin_of(value, spec)];
  if (!mine.empty()) ctx.charge_compute(static_cast<double>(mine.size()));

  // 3. Vector partials to the root (`bins` items each), then combine there:
  //    reduce's gather-of-partials superstep with vector payloads.
  if (ctx.pid() != root) {
    ctx.send_items<std::uint64_t>(root, local);
  }
  ctx.sync();
  if (ctx.pid() != root) {
    ctx.sync();  // pair the root's combine superstep
    return {};
  }
  for (const auto& message : ctx.recv_all()) {
    const auto partial = message.unpack_all<std::uint64_t>();
    if (partial.size() != spec.bins) {
      throw std::logic_error{"histogram: partial size mismatch"};
    }
    for (std::size_t b = 0; b < spec.bins; ++b) local[b] += partial[b];
  }
  ctx.charge_compute(static_cast<double>(spec.bins) *
                     static_cast<double>(ctx.nprocs() - 1));
  ctx.sync();
  return local;
}

HistogramRun run_histogram(const MachineTree& machine,
                           std::span<const double> samples,
                           const HistogramSpec& spec, coll::Shares shares,
                           const sim::SimParams& params) {
  HistogramRun run;
  const rt::Program program = [&](rt::Hbsp& ctx) {
    auto counts = histogram_spmd(ctx, samples, samples.size(), spec, shares);
    if (ctx.pid() == ctx.fastest_pid()) {
      run.counts = std::move(counts);
      run.virtual_seconds = ctx.time();
    }
  };
  (void)rt::run_program(machine, params, program);

  std::uint64_t total = 0;
  for (const auto count : run.counts) total += count;
  run.valid = run.counts.size() == spec.bins && total == samples.size();
  return run;
}

}  // namespace hbsp::apps
