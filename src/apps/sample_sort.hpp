#pragma once
// Heterogeneous parallel sample sort — the flagship HBSP^k application
// (paper §6: "designing HBSP^k applications that can take advantage of our
// efficient heterogeneous communication algorithms").
//
// Pipeline: scatter (shares ∝ 1/r) → local sort → splitter allgather →
// value routing with *speed-weighted bucket widths* → local sort → gather.
// With Shares::kEqual the same code degenerates to textbook BSP sample sort,
// which is the baseline the benchmarks compare against.

#include <cstdint>
#include <span>
#include <vector>

#include "collectives/planners.hpp"
#include "core/machine.hpp"
#include "runtime/hbsplib.hpp"
#include "sim/sim_params.hpp"

namespace hbsp::apps {

/// SPMD body: every processor calls this with the same `input` view (only
/// the root's is read) and receives nothing or the sorted data:
/// returns the fully sorted sequence at the fastest processor, empty
/// elsewhere. Charges sorting work to the virtual clock.
[[nodiscard]] std::vector<std::int32_t> sample_sort_spmd(
    rt::Hbsp& ctx, std::span<const std::int32_t> input, std::size_t n,
    coll::Shares shares);

/// Outcome of a driver run.
struct SortRun {
  std::vector<std::int32_t> sorted;  ///< the root's output
  double virtual_seconds = 0.0;      ///< completion time at the root
  bool valid = false;                ///< sorted, complete permutation
};

/// Convenience driver: runs the SPMD program on `machine` over the
/// virtual-time engine and validates the result.
[[nodiscard]] SortRun run_sample_sort(const MachineTree& machine,
                                      std::span<const std::int32_t> input,
                                      coll::Shares shares,
                                      const sim::SimParams& params = {});

}  // namespace hbsp::apps
