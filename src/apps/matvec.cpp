#include "apps/matvec.hpp"

#include <cmath>
#include <stdexcept>

#include "collectives/executors.hpp"

namespace hbsp::apps {

std::vector<double> matvec_serial(const DenseMatrix& a,
                                  std::span<const double> x) {
  if (x.size() != a.cols) throw std::invalid_argument{"matvec: shape mismatch"};
  std::vector<double> y(a.rows, 0.0);
  for (std::size_t r = 0; r < a.rows; ++r) {
    const auto row = a.row(r);
    double sum = 0.0;
    for (std::size_t c = 0; c < a.cols; ++c) sum += row[c] * x[c];
    y[r] = sum;
  }
  return y;
}

std::vector<double> matvec_spmd(rt::Hbsp& ctx, const DenseMatrix& a,
                                std::span<const double> x,
                                coll::Shares shares) {
  const int root = ctx.fastest_pid();

  // 1. Scatter rows: shares are apportioned in *rows* so no row straddles a
  //    processor, then the root sends each processor its block of rows in
  //    one superstep (items counted in matrix values so the h-relation stays
  //    honest about the actual volume).
  const auto row_shares = coll::leaf_shares(ctx.machine(), a.rows, shares);
  std::vector<std::size_t> row_offset(row_shares.size() + 1, 0);
  for (std::size_t i = 0; i < row_shares.size(); ++i) {
    row_offset[i + 1] = row_offset[i] + row_shares[i];
  }
  if (ctx.pid() == root) {
    if (a.values.size() != a.rows * a.cols) {
      throw std::invalid_argument{"matvec: malformed matrix"};
    }
    for (int dst = 0; dst < ctx.nprocs(); ++dst) {
      const std::size_t count = row_shares[static_cast<std::size_t>(dst)];
      if (dst == ctx.pid() || count == 0) continue;
      const std::span<const double> block{
          a.values.data() + row_offset[static_cast<std::size_t>(dst)] * a.cols,
          count * a.cols};
      ctx.send_items<double>(dst, block);
    }
  }
  ctx.sync();
  std::vector<double> my_values;
  if (ctx.pid() == root) {
    const std::size_t count = row_shares[static_cast<std::size_t>(root)];
    my_values.assign(
        a.values.begin() +
            static_cast<std::ptrdiff_t>(
                row_offset[static_cast<std::size_t>(root)] * a.cols),
        a.values.begin() +
            static_cast<std::ptrdiff_t>(
                (row_offset[static_cast<std::size_t>(root)] + count) * a.cols));
  } else {
    auto messages = ctx.recv_all();
    if (!messages.empty()) my_values = messages.front().unpack_all<double>();
  }
  const std::size_t my_rows = my_values.size() / std::max<std::size_t>(a.cols, 1);

  // 2. Broadcast x (two-phase).
  const std::vector<double> x_local = coll::broadcast<double>(
      ctx, ctx.pid() == root ? x : std::span<const double>{}, a.cols,
      {.root_pid = root, .top_phase = coll::TopPhase::kTwoPhase,
       .shares = coll::Shares::kEqual});

  // 3. Local dot products: 2·cols ops per row.
  std::vector<double> my_y(my_rows, 0.0);
  for (std::size_t r = 0; r < my_rows; ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < a.cols; ++c) {
      sum += my_values[r * a.cols + c] * x_local[c];
    }
    my_y[r] = sum;
  }
  if (my_rows > 0) {
    ctx.charge_compute(2.0 * static_cast<double>(my_rows) *
                       static_cast<double>(a.cols));
  }

  // 4. Gather y at the root (one superstep, data-sized pieces in pid order).
  if (ctx.pid() != root && !my_y.empty()) {
    ctx.send_items<double>(root, my_y);
  }
  ctx.sync();
  if (ctx.pid() != root) return {};
  std::vector<std::vector<double>> parts(
      static_cast<std::size_t>(ctx.nprocs()));
  parts[static_cast<std::size_t>(root)] = std::move(my_y);
  for (const auto& message : ctx.recv_all()) {
    parts[static_cast<std::size_t>(message.src_pid)] =
        message.unpack_all<double>();
  }
  std::vector<double> y;
  y.reserve(a.rows);
  for (auto& part : parts) y.insert(y.end(), part.begin(), part.end());
  return y;
}

MatvecRun run_matvec(const MachineTree& machine, const DenseMatrix& a,
                     std::span<const double> x, coll::Shares shares,
                     const sim::SimParams& params) {
  MatvecRun run;
  const rt::Program program = [&](rt::Hbsp& ctx) {
    auto y = matvec_spmd(ctx, a, x, shares);
    if (ctx.pid() == ctx.fastest_pid()) {
      run.y = std::move(y);
      run.virtual_seconds = ctx.time();
    }
  };
  (void)rt::run_program(machine, params, program);

  const auto reference = matvec_serial(a, x);
  run.valid = run.y.size() == reference.size();
  if (run.valid) {
    for (std::size_t i = 0; i < reference.size(); ++i) {
      if (std::abs(run.y[i] - reference[i]) > 1e-9 * (1.0 + std::abs(reference[i]))) {
        run.valid = false;
        break;
      }
    }
  }
  return run;
}

}  // namespace hbsp::apps
