#pragma once
// Distributed histogram — a reduction-shaped HBSP^k application.
//
// Each processor receives a balanced share of the samples, bins locally
// (compute ∝ share, so the balanced split is exactly what §4.1 prescribes),
// then the per-processor histograms combine at the fastest machine: one
// message of `bins` items per processor — the gather-of-partials pattern of
// the reduce collective, with vector-valued partials.

#include <cstdint>
#include <span>
#include <vector>

#include "collectives/planners.hpp"
#include "core/machine.hpp"
#include "runtime/hbsplib.hpp"
#include "sim/sim_params.hpp"

namespace hbsp::apps {

/// Histogram configuration: `bins` equal-width buckets over [lo, hi);
/// samples outside the range clamp to the edge bins.
struct HistogramSpec {
  std::size_t bins = 64;
  double lo = 0.0;
  double hi = 1.0;
};

/// SPMD body: bins the root's `samples` across the machine; returns the full
/// counts vector at the fastest processor, empty elsewhere.
[[nodiscard]] std::vector<std::uint64_t> histogram_spmd(
    rt::Hbsp& ctx, std::span<const double> samples, std::size_t n,
    const HistogramSpec& spec, coll::Shares shares);

/// Outcome of a driver run.
struct HistogramRun {
  std::vector<std::uint64_t> counts;
  double virtual_seconds = 0.0;
  bool valid = false;  ///< counts sum to the sample count
};

/// Runs the SPMD histogram on the virtual-time engine.
[[nodiscard]] HistogramRun run_histogram(const MachineTree& machine,
                                         std::span<const double> samples,
                                         const HistogramSpec& spec,
                                         coll::Shares shares,
                                         const sim::SimParams& params = {});

/// Serial reference for validation.
[[nodiscard]] std::vector<std::uint64_t> histogram_serial(
    std::span<const double> samples, const HistogramSpec& spec);

}  // namespace hbsp::apps
