#include "apps/sample_sort.hpp"

#include <algorithm>
#include <cmath>

#include "collectives/executors.hpp"

namespace hbsp::apps {
namespace {

void charge_sort(rt::Hbsp& ctx, std::size_t count) {
  if (count > 0) {
    ctx.charge_compute(static_cast<double>(count) *
                       std::log2(static_cast<double>(count) + 1));
  }
}

}  // namespace

std::vector<std::int32_t> sample_sort_spmd(rt::Hbsp& ctx,
                                           std::span<const std::int32_t> input,
                                           std::size_t n, coll::Shares shares) {
  const int root = ctx.fastest_pid();
  const auto p = static_cast<std::size_t>(ctx.nprocs());

  // 1. Scatter the unsorted input in planned shares.
  std::vector<std::int32_t> mine = coll::scatter<std::int32_t>(
      ctx,
      ctx.pid() == root ? input : std::span<const std::int32_t>{},
      n, {.root_pid = root, .shares = shares});

  // 2. Local sort.
  std::sort(mine.begin(), mine.end());
  charge_sort(ctx, mine.size());

  // 3. Every processor contributes p−1 splitter candidates; gather them to
  //    the root, which picks the splitters and broadcasts them back (works
  //    on hierarchical machines too, where a flat allgather would not).
  std::vector<std::int32_t> candidates;
  for (std::size_t k = 1; k < p; ++k) {
    candidates.push_back(mine.empty() ? 0 : mine[k * mine.size() / p]);
  }
  const std::size_t sample_total = (p - 1) * p;
  const auto all_candidates = coll::gather<std::int32_t>(
      ctx, candidates, sample_total,
      {.root_pid = root, .shares = coll::Shares::kEqual});

  std::vector<std::int32_t> splitters;
  if (ctx.pid() == root) {
    auto sorted = *all_candidates;
    std::sort(sorted.begin(), sorted.end());
    charge_sort(ctx, sorted.size());
    // Speed-weighted splitters: bucket j's quantile width tracks c_j so fast
    // machines own wide buckets (falls back to equal-width for kEqual).
    const auto quota = ctx.balanced_shares(sample_total);
    std::size_t cursor = 0;
    for (std::size_t j = 0; j + 1 < p; ++j) {
      cursor +=
          shares == coll::Shares::kBalanced ? quota[j] : sample_total / p;
      splitters.push_back(sorted[std::min(cursor, sorted.size() - 1)]);
    }
  }
  splitters = coll::broadcast<std::int32_t>(
      ctx, splitters, p - 1,
      {.root_pid = root, .top_phase = coll::TopPhase::kTwoPhase,
       .shares = coll::Shares::kEqual});

  // 4. Route items to their bucket owners (per-pair sizes are data
  //    dependent, so this superstep uses the runtime directly).
  std::vector<std::vector<std::int32_t>> outgoing(p);
  for (const std::int32_t value : mine) {
    const auto bucket = static_cast<std::size_t>(
        std::upper_bound(splitters.begin(), splitters.end(), value) -
        splitters.begin());
    outgoing[bucket].push_back(value);
  }
  for (std::size_t dst = 0; dst < p; ++dst) {
    if (static_cast<int>(dst) == ctx.pid() || outgoing[dst].empty()) continue;
    ctx.send_items<std::int32_t>(static_cast<int>(dst), outgoing[dst]);
  }
  ctx.sync();
  std::vector<std::int32_t> bucket =
      std::move(outgoing[static_cast<std::size_t>(ctx.pid())]);
  for (const auto& message : ctx.recv_all()) {
    const auto values = message.unpack_all<std::int32_t>();
    bucket.insert(bucket.end(), values.begin(), values.end());
  }

  // 5. Sort the bucket.
  std::sort(bucket.begin(), bucket.end());
  charge_sort(ctx, bucket.size());

  // 6. Final gather: buckets are data-sized, one superstep to the root.
  if (ctx.pid() != root && !bucket.empty()) {
    ctx.send_items<std::int32_t>(root, bucket);
  }
  ctx.sync();
  if (ctx.pid() != root) return {};
  std::vector<std::vector<std::int32_t>> parts(p);
  parts[static_cast<std::size_t>(root)] = std::move(bucket);
  for (const auto& message : ctx.recv_all()) {
    parts[static_cast<std::size_t>(message.src_pid)] =
        message.unpack_all<std::int32_t>();
  }
  std::vector<std::int32_t> result;
  result.reserve(n);
  for (auto& part : parts) {
    result.insert(result.end(), part.begin(), part.end());
  }
  return result;
}

SortRun run_sample_sort(const MachineTree& machine,
                        std::span<const std::int32_t> input,
                        coll::Shares shares, const sim::SimParams& params) {
  SortRun run;
  const rt::Program program = [&](rt::Hbsp& ctx) {
    auto sorted = sample_sort_spmd(ctx, input, input.size(), shares);
    if (ctx.pid() == ctx.fastest_pid()) {
      run.sorted = std::move(sorted);
      run.virtual_seconds = ctx.time();
    }
  };
  (void)rt::run_program(machine, params, program);

  run.valid = run.sorted.size() == input.size() &&
              std::is_sorted(run.sorted.begin(), run.sorted.end());
  if (run.valid) {
    // Same multiset as the input?
    std::vector<std::int32_t> reference(input.begin(), input.end());
    std::sort(reference.begin(), reference.end());
    run.valid = reference == run.sorted;
  }
  return run;
}

}  // namespace hbsp::apps
