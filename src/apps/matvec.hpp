#pragma once
// Dense matrix–vector multiply y = A·x — a broadcast-plus-gather HBSP^k
// application with quadratic compute, the classic BSP kernel.
//
// Rows of A distribute in balanced shares (compute per row is uniform, so
// rows ∝ 1/r_j equalises finish times); x broadcasts to everyone with the
// two-phase algorithm; local dot products; y gathers at the root in row
// order. The broadcast's cost is insensitive to heterogeneity (§4.4) but the
// compute phase is exactly where balanced shares pay.

#include <cstddef>
#include <span>
#include <vector>

#include "collectives/planners.hpp"
#include "core/machine.hpp"
#include "runtime/hbsplib.hpp"
#include "sim/sim_params.hpp"

namespace hbsp::apps {

/// Row-major dense matrix.
struct DenseMatrix {
  std::size_t rows = 0;
  std::size_t cols = 0;
  std::vector<double> values;  ///< rows * cols, row-major

  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    return {values.data() + r * cols, cols};
  }
};

/// SPMD body: multiplies the root's matrix by the root's x; returns y at the
/// fastest processor, empty elsewhere. Rows split per `shares`.
[[nodiscard]] std::vector<double> matvec_spmd(rt::Hbsp& ctx,
                                              const DenseMatrix& a,
                                              std::span<const double> x,
                                              coll::Shares shares);

/// Outcome of a driver run.
struct MatvecRun {
  std::vector<double> y;
  double virtual_seconds = 0.0;
  bool valid = false;  ///< matches the serial product within 1e-9
};

/// Runs the SPMD multiply on the virtual-time engine and validates against
/// the serial product.
[[nodiscard]] MatvecRun run_matvec(const MachineTree& machine,
                                   const DenseMatrix& a,
                                   std::span<const double> x,
                                   coll::Shares shares,
                                   const sim::SimParams& params = {});

/// Serial reference.
[[nodiscard]] std::vector<double> matvec_serial(const DenseMatrix& a,
                                                std::span<const double> x);

}  // namespace hbsp::apps
