#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace hbsp::util {

Summary summarize(std::span<const double> sample) noexcept {
  Accumulator acc;
  for (const double v : sample) acc.add(v);
  return acc.summary();
}

Summary summarize_nonempty(std::span<const double> sample) {
  if (sample.empty()) {
    throw std::invalid_argument{
        "summarize_nonempty: empty sample (expected at least one measurement)"};
  }
  return summarize(sample);
}

double mean(std::span<const double> sample) noexcept {
  if (sample.empty()) return 0.0;
  double sum = 0.0;
  for (const double v : sample) sum += v;
  return sum / static_cast<double>(sample.size());
}

double geometric_mean(std::span<const double> sample) noexcept {
  if (sample.empty()) return 0.0;
  double log_sum = 0.0;
  for (const double v : sample) log_sum += std::log(v);
  return std::exp(log_sum / static_cast<double>(sample.size()));
}

double median(std::span<const double> sample) { return quantile(sample, 0.5); }

double quantile(std::span<const double> sample, double q) {
  if (sample.empty()) return 0.0;
  std::vector<double> sorted(sample.begin(), sample.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

double ci95_halfwidth(const Summary& s) noexcept {
  if (s.count < 2) return 0.0;
  return 1.96 * s.stddev / std::sqrt(static_cast<double>(s.count));
}

void Accumulator::add(double value) noexcept {
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

Summary Accumulator::summary() const noexcept {
  Summary s;
  s.count = count_;
  if (count_ == 0) return s;
  s.min = min_;
  s.max = max_;
  s.mean = mean_;
  s.stddev =
      count_ > 1 ? std::sqrt(m2_ / static_cast<double>(count_ - 1)) : 0.0;
  return s;
}

}  // namespace hbsp::util
