#pragma once
// Small descriptive-statistics helpers used by benchmarks and tests.

#include <cstddef>
#include <span>
#include <vector>

namespace hbsp::util {

/// Summary of a sample: count, extrema, mean, sample standard deviation.
struct Summary {
  std::size_t count = 0;
  double min = 0.0;
  double max = 0.0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample (n-1) standard deviation; 0 for n < 2
};

/// Computes a Summary over the sample; returns a zeroed Summary when empty.
[[nodiscard]] Summary summarize(std::span<const double> sample) noexcept;

/// As summarize, but an empty sample is a caller bug: throws
/// std::invalid_argument instead of silently returning zeros (a zeroed
/// Summary is indistinguishable from a real all-zero sample). Use when the
/// sample is supposed to be measurements that actually happened.
[[nodiscard]] Summary summarize_nonempty(std::span<const double> sample);

/// Arithmetic mean; 0 when empty.
[[nodiscard]] double mean(std::span<const double> sample) noexcept;

/// Geometric mean; requires strictly positive values, 0 when empty.
[[nodiscard]] double geometric_mean(std::span<const double> sample) noexcept;

/// Median (interpolated for even sizes); 0 when empty.
[[nodiscard]] double median(std::span<const double> sample);

/// Linear-interpolated quantile, q in [0, 1]; 0 when empty.
[[nodiscard]] double quantile(std::span<const double> sample, double q);

/// Half-width of a normal-approximation 95% confidence interval of the mean.
[[nodiscard]] double ci95_halfwidth(const Summary& s) noexcept;

/// Online accumulator (Welford) for streaming summaries.
class Accumulator {
 public:
  void add(double value) noexcept;
  [[nodiscard]] Summary summary() const noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return count_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace hbsp::util
