#pragma once
// Tiny command-line flag parser for the bench and example binaries.
//
// Supports `--name=value`, `--name value`, and bare boolean `--name`.
// Unknown flags are an error so typos in sweep scripts fail loudly.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace hbsp::util {

/// Parsed flags plus positional arguments.
class Cli {
 public:
  /// Parses argv; throws std::invalid_argument on malformed input.
  Cli(int argc, const char* const* argv);

  /// Registers a flag so it is considered known; returns *this for chaining.
  Cli& allow(const std::string& name, const std::string& help = "");

  /// Rejects any parsed flag that was never allow()ed.
  void validate() const;

  [[nodiscard]] bool has(const std::string& name) const;
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::int64_t get_int(const std::string& name,
                                     std::int64_t fallback) const;

  /// Strict variant for flags like --threads: the value must be a fully
  /// numeric, strictly positive integer; anything else (0, negatives,
  /// non-numeric text, a bare boolean flag) throws std::invalid_argument.
  [[nodiscard]] std::int64_t get_positive_int(const std::string& name,
                                              std::int64_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name,
                                  double fallback) const;

  /// Strict variant for flags like --qps: the value must be fully numeric
  /// and strictly positive; anything else (0, negatives, non-numeric text,
  /// a bare boolean flag, trailing junk) throws std::invalid_argument with
  /// the same friendly message shape as get_positive_int.
  [[nodiscard]] double get_positive_double(const std::string& name,
                                           double fallback) const;
  [[nodiscard]] bool get_bool(const std::string& name, bool fallback) const;

  [[nodiscard]] const std::vector<std::string>& positional() const noexcept {
    return positional_;
  }

  [[nodiscard]] const std::string& program() const noexcept { return program_; }

  /// Renders the registered flags as a help string.
  [[nodiscard]] std::string help() const;

 private:
  std::string program_;
  std::map<std::string, std::string> flags_;
  std::map<std::string, std::string> known_;
  std::vector<std::string> positional_;
};

}  // namespace hbsp::util
