#pragma once
// Minimal CSV emission so benchmark sweeps can be re-plotted externally.

#include <fstream>
#include <string>
#include <vector>

namespace hbsp::util {

/// Writes rows of already-formatted cells as RFC-4180-quoted CSV.
class CsvWriter {
 public:
  /// Opens (truncates) `path`; throws std::runtime_error on failure.
  explicit CsvWriter(const std::string& path);

  /// Writes one row, quoting cells that contain commas, quotes or newlines.
  void write_row(const std::vector<std::string>& cells);

  /// Flushes and closes; called by the destructor as well.
  void close();

  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

 private:
  std::ofstream out_;
};

/// Quotes a single CSV cell if needed.
[[nodiscard]] std::string csv_escape(const std::string& cell);

}  // namespace hbsp::util
