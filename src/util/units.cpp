#include "util/units.hpp"

#include <cstdio>

namespace hbsp::util {

std::string format_bytes(std::uint64_t bytes) {
  char buffer[64];
  if (bytes >= 1000ULL * 1000 * 1000) {
    std::snprintf(buffer, sizeof buffer, "%.1f GB",
                  static_cast<double>(bytes) / 1e9);
  } else if (bytes >= 1000ULL * 1000) {
    std::snprintf(buffer, sizeof buffer, "%.1f MB",
                  static_cast<double>(bytes) / 1e6);
  } else if (bytes >= 1000ULL) {
    std::snprintf(buffer, sizeof buffer, "%.1f KB",
                  static_cast<double>(bytes) / 1e3);
  } else {
    std::snprintf(buffer, sizeof buffer, "%llu B",
                  static_cast<unsigned long long>(bytes));
  }
  return buffer;
}

std::string format_time(double seconds) {
  char buffer[64];
  if (seconds >= 1.0) {
    std::snprintf(buffer, sizeof buffer, "%.3f s", seconds);
  } else if (seconds >= 1e-3) {
    std::snprintf(buffer, sizeof buffer, "%.3f ms", seconds * 1e3);
  } else if (seconds >= 1e-6) {
    std::snprintf(buffer, sizeof buffer, "%.3f us", seconds * 1e6);
  } else {
    std::snprintf(buffer, sizeof buffer, "%.1f ns", seconds * 1e9);
  }
  return buffer;
}

}  // namespace hbsp::util
