#pragma once
// Minimal work-stealing thread pool for sharding embarrassingly parallel
// loops — the sweep engine's grid cells, the benches' independent cases.
//
// Design:
//  * persistent workers, parked on a condition variable between loops;
//  * parallel_for splits [0, count) into one contiguous shard per worker;
//    a worker drains its own shard through an atomic cursor and then steals
//    from the other shards, so uneven item costs (larger p simulates more
//    messages) cannot leave a worker idle while another is behind;
//  * the first exception thrown by the body is captured and rethrown on the
//    calling thread once the loop has fully drained.
//
// Determinism contract: the body receives the *global* index i and must
// write only to slot i's state. Scheduling order is unspecified, so any
// result that depends on execution order (shared accumulators, appends) is
// a bug in the caller — derive per-index state (e.g. util::split_seed) and
// assemble ordered output after the loop.
//
// parallel_for is not reentrant and must not be called from the body.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace hbsp::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers; values < 1 use hardware_threads().
  explicit ThreadPool(int threads = 1);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Execution width: the worker count, or 1 for the inline serial pool.
  [[nodiscard]] int threads() const noexcept {
    return workers_.empty() ? 1 : static_cast<int>(workers_.size());
  }

  /// The hardware's concurrency, at least 1.
  [[nodiscard]] static int hardware_threads() noexcept;

  /// Runs body(i) for every i in [0, count); blocks until all indices have
  /// completed, then rethrows the first exception the body threw (if any).
  void parallel_for(std::size_t count,
                    const std::function<void(std::size_t)>& body);

  /// Indices of the most recent parallel_for that were executed by a worker
  /// other than the one whose shard owned them — the work-stealing traffic.
  /// 0 for the inline serial pool. Nondeterministic by nature (scheduling
  /// decides who steals), so report it as a gauge, never gate on it.
  [[nodiscard]] std::size_t last_steals() const noexcept {
    return last_steals_.load(std::memory_order_relaxed);
  }

 private:
  /// One contiguous index range per worker; `next` is shared with thieves.
  struct alignas(64) Shard {
    std::atomic<std::size_t> next{0};
    std::size_t end = 0;
  };

  void worker_loop(std::size_t self);
  void run_shards(std::size_t self);

  std::vector<Shard> shards_;
  std::atomic<std::size_t> last_steals_{0};
  std::mutex submit_mutex_;  ///< serialises concurrent parallel_for callers
  std::mutex mutex_;
  std::condition_variable work_cv_;  ///< workers wait here for a new epoch
  std::condition_variable done_cv_;  ///< the caller waits here for the drain
  std::function<void(std::size_t)> body_;
  std::exception_ptr first_error_;
  std::uint64_t epoch_ = 0;
  std::size_t working_ = 0;  ///< workers still inside the current epoch
  bool stop_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace hbsp::util
