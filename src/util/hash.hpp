#pragma once
// Stable 64-bit structural hashing for cache keys and fingerprints.
//
// Hash64 folds a stream of integers, doubles and strings into one 64-bit
// digest with the splitmix64 finalizer (the same mixer util::rng uses for
// seed splitting). Digests are a pure function of the value stream — no
// pointers, no addresses, no iteration order of unordered containers — so a
// fingerprint is identical across runs, thread counts and platforms with the
// same double representation. That is the property coll::PlanCache and
// exp::ScenarioCache key on.
//
// Not cryptographic: distinct streams can collide in principle, so a cache
// keyed on a digest must keep enough of the original request to detect a
// collision and rebuild deterministically instead of serving a wrong entry.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <cstring>
#include <string_view>

namespace hbsp::util {

class Hash64 {
 public:
  Hash64& add(std::uint64_t value) noexcept {
    state_ = mix(state_ ^ mix(value + 0x9e3779b97f4a7c15ULL));
    return *this;
  }

  Hash64& add_int(std::int64_t value) noexcept {
    return add(static_cast<std::uint64_t>(value));
  }

  /// Hashes the IEEE-754 bit pattern. +0.0 and -0.0 therefore differ, and
  /// two NaNs with equal payloads agree — exactly the "bit-identical"
  /// equality the determinism contract uses everywhere else.
  Hash64& add_double(double value) noexcept {
    return add(std::bit_cast<std::uint64_t>(value));
  }

  Hash64& add_string(std::string_view text) noexcept {
    add(text.size());
    std::size_t offset = 0;
    while (offset < text.size()) {
      const std::size_t chunk = std::min<std::size_t>(8, text.size() - offset);
      std::uint64_t word = 0;
      std::memcpy(&word, text.data() + offset, chunk);
      add(word);
      offset += chunk;
    }
    return *this;
  }

  [[nodiscard]] std::uint64_t digest() const noexcept { return mix(state_); }

 private:
  static constexpr std::uint64_t mix(std::uint64_t x) noexcept {
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }

  std::uint64_t state_ = 0x243f6a8885a308d3ULL;
};

}  // namespace hbsp::util
