#include "util/csv.hpp"

#include <stdexcept>

namespace hbsp::util {

std::string csv_escape(const std::string& cell) {
  const bool needs_quotes =
      cell.find_first_of(",\"\n\r") != std::string::npos;
  if (!needs_quotes) return cell;
  std::string quoted = "\"";
  for (const char ch : cell) {
    if (ch == '"') quoted += '"';
    quoted += ch;
  }
  quoted += '"';
  return quoted;
}

CsvWriter::CsvWriter(const std::string& path) : out_(path) {
  if (!out_) throw std::runtime_error{"CsvWriter: cannot open " + path};
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i != 0) out_ << ',';
    out_ << csv_escape(cells[i]);
  }
  out_ << '\n';
}

void CsvWriter::close() {
  if (out_.is_open()) out_.close();
}

CsvWriter::~CsvWriter() { close(); }

}  // namespace hbsp::util
