#pragma once
// Unit formatting/parsing helpers shared by benches and examples.

#include <cstdint>
#include <string>

namespace hbsp::util {

/// "1.5 KB" / "3.2 MB" style byte formatting (powers of 1000, as in the paper).
[[nodiscard]] std::string format_bytes(std::uint64_t bytes);

/// Virtual-time formatting: picks ns/us/ms/s based on magnitude.
[[nodiscard]] std::string format_time(double seconds);

/// Number of 4-byte integers in `kbytes` KBytes (paper workload sizing).
[[nodiscard]] constexpr std::size_t ints_in_kbytes(std::size_t kbytes) noexcept {
  return kbytes * 1000 / sizeof(std::int32_t);
}

}  // namespace hbsp::util
