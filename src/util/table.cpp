#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <iostream>
#include <ostream>
#include <stdexcept>

namespace hbsp::util {

void Table::set_header(std::vector<std::string> header) {
  if (header.empty()) throw std::invalid_argument{"Table header must be non-empty"};
  if (!rows_.empty()) throw std::logic_error{"Table header must be set before rows"};
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument{"Table row width does not match header"};
  }
  rows_.push_back(std::move(row));
}

std::string Table::num(double value, int precision) {
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "%.*f", precision, value);
  return buffer;
}

std::string Table::num(long long value) {
  char buffer[32];
  std::snprintf(buffer, sizeof buffer, "%lld", value);
  return buffer;
}

void Table::render(std::ostream& out) const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  const auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << ' ' << row[c];
      out << std::string(widths[c] - row[c].size(), ' ') << " |";
    }
    out << '\n';
  };

  std::size_t total = 1;
  for (const std::size_t w : widths) total += w + 3;

  out << '\n' << title_ << '\n' << std::string(total, '-') << '\n';
  emit_row(header_);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit_row(row);
  out << std::string(total, '-') << '\n';
}

void Table::print() const { render(std::cout); }

}  // namespace hbsp::util
