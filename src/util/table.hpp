#pragma once
// Console table rendering for benchmark output.
//
// Every bench binary prints the rows/series of one paper table or figure; a
// shared renderer keeps the output uniform and easy to diff across runs.

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

namespace hbsp::util {

/// Column alignment within a rendered table.
enum class Align { kLeft, kRight };

/// An aligned, monospace table with a title, headers, and string cells.
///
/// Numeric helpers format with fixed precision so columns line up. Rendering
/// pads to the widest cell per column; no wrapping is performed.
class Table {
 public:
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row; column count is fixed by this call.
  void set_header(std::vector<std::string> header);

  /// Appends a row; must match the header's column count.
  void add_row(std::vector<std::string> row);

  /// Formats a double with `precision` digits after the point.
  [[nodiscard]] static std::string num(double value, int precision = 3);

  /// Formats an integer.
  [[nodiscard]] static std::string num(long long value);

  /// Renders to the stream with a title rule and column separators.
  void render(std::ostream& out) const;

  /// Renders to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }
  [[nodiscard]] std::size_t columns() const noexcept { return header_.size(); }

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace hbsp::util
