#include "util/thread_pool.hpp"

#include <algorithm>
#include <utility>

namespace hbsp::util {

ThreadPool::ThreadPool(int threads) {
  const int count = threads >= 1 ? threads : hardware_threads();
  // A single-thread pool runs loops inline on the caller: no workers, no
  // wakeups — `--threads 1` is a true serial path (and serial sweeps nested
  // inside a pooled outer loop cost nothing).
  if (count == 1) return;
  shards_ = std::vector<Shard>(static_cast<std::size_t>(count));
  workers_.reserve(static_cast<std::size_t>(count));
  for (int w = 0; w < count; ++w) {
    workers_.emplace_back(
        [this, w] { worker_loop(static_cast<std::size_t>(w)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock{mutex_};
    stop_ = true;
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) worker.join();
}

int ThreadPool::hardware_threads() noexcept {
  return std::max(1, static_cast<int>(std::thread::hardware_concurrency()));
}

void ThreadPool::parallel_for(std::size_t count,
                              const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (workers_.empty()) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  std::lock_guard submit{submit_mutex_};
  std::unique_lock lock{mutex_};

  // Publish the loop: body, one contiguous shard per worker, new epoch. Safe
  // to mutate shards here because every worker is parked (working_ == 0).
  body_ = body;
  first_error_ = nullptr;
  last_steals_.store(0, std::memory_order_relaxed);
  const std::size_t shard_count = shards_.size();
  const std::size_t base = count / shard_count;
  const std::size_t extra = count % shard_count;
  std::size_t begin = 0;
  for (std::size_t w = 0; w < shard_count; ++w) {
    const std::size_t length = base + (w < extra ? 1 : 0);
    shards_[w].next.store(begin, std::memory_order_relaxed);
    shards_[w].end = begin + length;
    begin += length;
  }
  working_ = workers_.size();
  ++epoch_;
  work_cv_.notify_all();

  // Every worker leaves run_shards only once all indices have been claimed,
  // and executes each claimed index before leaving — so working_ == 0 means
  // the loop has fully drained.
  done_cv_.wait(lock, [&] { return working_ == 0; });
  const std::exception_ptr error = std::exchange(first_error_, nullptr);
  body_ = nullptr;
  lock.unlock();
  if (error) std::rethrow_exception(error);
}

void ThreadPool::worker_loop(std::size_t self) {
  std::uint64_t seen = 0;
  for (;;) {
    {
      std::unique_lock lock{mutex_};
      work_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
      if (stop_) return;
      seen = epoch_;
    }
    run_shards(self);
    {
      std::lock_guard lock{mutex_};
      if (--working_ == 0) done_cv_.notify_all();
    }
  }
}

void ThreadPool::run_shards(std::size_t self) {
  const std::size_t shard_count = shards_.size();
  std::size_t stolen = 0;
  // Drain our own shard first, then sweep the others as a thief.
  for (std::size_t offset = 0; offset < shard_count; ++offset) {
    Shard& shard = shards_[(self + offset) % shard_count];
    for (;;) {
      const std::size_t i = shard.next.fetch_add(1, std::memory_order_relaxed);
      if (i >= shard.end) break;
      if (offset != 0) ++stolen;
      try {
        body_(i);
      } catch (...) {
        std::lock_guard lock{mutex_};
        if (!first_error_) first_error_ = std::current_exception();
      }
    }
  }
  if (stolen > 0) last_steals_.fetch_add(stolen, std::memory_order_relaxed);
}

}  // namespace hbsp::util
