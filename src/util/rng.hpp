#pragma once
// Deterministic pseudo-random number generation for simulations and tests.
//
// The simulator and all benchmarks must be exactly reproducible across runs
// and platforms, so we avoid std::default_random_engine (unspecified) and the
// distribution objects in <random> (implementation-defined sequences).
// Xoshiro256** (Blackman & Vigna) seeded through SplitMix64 gives a fast,
// well-tested generator with a portable, fully specified output sequence.

#include <array>
#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

namespace hbsp::util {

/// SplitMix64 step; used to expand a single 64-bit seed into generator state.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** generator. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the full 256-bit state from a single 64-bit seed via SplitMix64.
  explicit constexpr Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] (inclusive), bias-free via rejection.
  [[nodiscard]] std::uint64_t uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept;

  /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
  [[nodiscard]] std::int64_t uniform_i64(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1) with 53 bits of randomness.
  [[nodiscard]] constexpr double uniform01() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept;

  /// Standard normal variate (Marsaglia polar method).
  [[nodiscard]] double normal() noexcept;

  /// Normal variate with the given mean and standard deviation.
  [[nodiscard]] double normal(double mean, double stddev) noexcept;

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& values) noexcept {
    for (std::size_t i = values.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(uniform_u64(0, i - 1));
      using std::swap;
      swap(values[i - 1], values[j]);
    }
  }

  /// Derives an independent child generator (for per-entity streams).
  [[nodiscard]] Rng split() noexcept { return Rng{operator()()}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::array<std::uint64_t, 4> state_{};
};

/// Derives the seed of stream `stream` from a master seed, via two SplitMix64
/// steps: one mixes the master, one mixes the stream id into it. For a fixed
/// master the map is injective in `stream` (xor/add by constants compose with
/// the SplitMix64 bijection), so distinct streams always get distinct,
/// decorrelated generator seeds — the sweep engine uses this to hand every
/// grid cell an independent Rng that is stable across runs, platforms, and
/// thread counts.
[[nodiscard]] constexpr std::uint64_t split_seed(std::uint64_t master,
                                                 std::uint64_t stream) noexcept {
  std::uint64_t state = master;
  const std::uint64_t mixed = splitmix64(state);
  state = mixed ^ (stream + 0x9E3779B97F4A7C15ULL);
  return splitmix64(state);
}

/// The paper's workload: `count` uniformly distributed integers.
[[nodiscard]] std::vector<std::int32_t> uniform_int_workload(std::size_t count,
                                                             std::uint64_t seed);

}  // namespace hbsp::util
