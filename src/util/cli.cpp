#include "util/cli.hpp"

#include <cerrno>
#include <cstdlib>
#include <limits>
#include <stdexcept>

namespace hbsp::util {

Cli::Cli(int argc, const char* const* argv) {
  if (argc > 0) program_ = argv[0];
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    if (body.empty()) throw std::invalid_argument{"bare '--' is not a flag"};
    const auto eq = body.find('=');
    if (eq != std::string::npos) {
      flags_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string{argv[i + 1]}.rfind("--", 0) != 0) {
      flags_[body] = argv[++i];
    } else {
      flags_[body] = "true";
    }
  }
}

Cli& Cli::allow(const std::string& name, const std::string& help) {
  known_[name] = help;
  return *this;
}

void Cli::validate() const {
  for (const auto& [name, value] : flags_) {
    if (!known_.contains(name)) {
      throw std::invalid_argument{"unknown flag --" + name + "\n" + help()};
    }
  }
}

bool Cli::has(const std::string& name) const { return flags_.contains(name); }

std::string Cli::get(const std::string& name,
                     const std::string& fallback) const {
  const auto it = flags_.find(name);
  return it == flags_.end() ? fallback : it->second;
}

std::int64_t Cli::get_int(const std::string& name, std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

std::int64_t Cli::get_positive_int(const std::string& name,
                                   std::int64_t fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& text = it->second;
  // Digits only: no sign, whitespace, suffix, or the bare-flag "true".
  const bool digits_only =
      !text.empty() &&
      text.find_first_not_of("0123456789") == std::string::npos;
  errno = 0;
  const long long value = digits_only ? std::strtoll(text.c_str(), nullptr, 10) : 0;
  if (!digits_only || errno == ERANGE || value <= 0) {
    throw std::invalid_argument{"--" + name +
                                " expects a positive integer, got '" + text +
                                "'"};
  }
  return value;
}

double Cli::get_double(const std::string& name, double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return std::strtod(it->second.c_str(), nullptr);
}

double Cli::get_positive_double(const std::string& name,
                                double fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  const std::string& text = it->second;
  char* end = nullptr;
  errno = 0;
  const double value = std::strtod(text.c_str(), &end);
  // The whole token must parse (no suffix, no bare-flag "true") and the
  // value must be a strictly positive finite number.
  const bool parsed = end != nullptr && *end == '\0' && !text.empty();
  if (!parsed || errno == ERANGE || !(value > 0.0) ||
      value > std::numeric_limits<double>::max()) {
    throw std::invalid_argument{"--" + name +
                                " expects a positive number, got '" + text +
                                "'"};
  }
  return value;
}

bool Cli::get_bool(const std::string& name, bool fallback) const {
  const auto it = flags_.find(name);
  if (it == flags_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

std::string Cli::help() const {
  std::string text = "flags:\n";
  for (const auto& [name, description] : known_) {
    text += "  --" + name;
    if (!description.empty()) text += "  " + description;
    text += '\n';
  }
  return text;
}

}  // namespace hbsp::util
