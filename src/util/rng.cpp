#include "util/rng.hpp"

#include <cmath>

namespace hbsp::util {

std::uint64_t Rng::uniform_u64(std::uint64_t lo, std::uint64_t hi) noexcept {
  const std::uint64_t span = hi - lo;  // inclusive range width - 1
  if (span == std::numeric_limits<std::uint64_t>::max()) return operator()();
  const std::uint64_t bound = span + 1;
  // Lemire-style rejection: draw until the value falls in the unbiased zone.
  const std::uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    const std::uint64_t r = operator()();
    // 128-bit multiply-shift maps r into [0, bound) with at most one retry zone.
    __extension__ using u128 = unsigned __int128;
    const auto wide = static_cast<u128>(r) * bound;
    const auto low = static_cast<std::uint64_t>(wide);
    if (low >= threshold) return lo + static_cast<std::uint64_t>(wide >> 64);
  }
}

std::int64_t Rng::uniform_i64(std::int64_t lo, std::int64_t hi) noexcept {
  const auto width =
      static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo);
  return static_cast<std::int64_t>(static_cast<std::uint64_t>(lo) +
                                   uniform_u64(0, width));
}

double Rng::uniform(double lo, double hi) noexcept {
  return lo + (hi - lo) * uniform01();
}

double Rng::normal() noexcept {
  // Marsaglia polar method; caches nothing so calls stay independent of order.
  for (;;) {
    const double u = 2.0 * uniform01() - 1.0;
    const double v = 2.0 * uniform01() - 1.0;
    const double s = u * u + v * v;
    if (s > 0.0 && s < 1.0) return u * std::sqrt(-2.0 * std::log(s) / s);
  }
}

double Rng::normal(double mean, double stddev) noexcept {
  return mean + stddev * normal();
}

std::vector<std::int32_t> uniform_int_workload(std::size_t count,
                                               std::uint64_t seed) {
  Rng rng{seed};
  std::vector<std::int32_t> data;
  data.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    data.push_back(static_cast<std::int32_t>(
        rng.uniform_i64(std::numeric_limits<std::int32_t>::min(),
                        std::numeric_limits<std::int32_t>::max())));
  }
  return data;
}

}  // namespace hbsp::util
