#pragma once
// Chrome-tracing export of simulator event traces.
//
// Writes the Trace Event Format (the JSON consumed by chrome://tracing and
// https://ui.perfetto.dev), one track per processor, so a simulated
// collective can be inspected visually: sender serialisation, the root's
// receive queue, barrier waits, and the slow machines' long slices are all
// immediately visible.

#include <iosfwd>
#include <string>

#include "sim/trace.hpp"

namespace hbsp::sim {

/// Serialises a recorded event trace (ClusterSim constructed with
/// record_events = true) as Trace Event Format JSON. Durations are derived
/// by pairing start/end events per processor; instantaneous events (arrival,
/// barrier enter/exit) become instant events. Virtual seconds map to
/// microseconds in the output (the format's native unit).
void export_chrome_trace(const Trace& trace, std::ostream& out);

/// Convenience: export to a file; throws std::runtime_error if unwritable.
void export_chrome_trace(const Trace& trace, const std::string& path);

}  // namespace hbsp::sim
