#pragma once
// Deterministic discrete-event simulation of an HBSP^k machine.
//
// This is the repository's substitute for the paper's physical testbed. It
// advances a virtual clock per processor through the phases of a
// CommSchedule:
//
//   1. local computation:      ops · compute_r · seconds_per_op
//   2. sends, in issue order:  (o_send + g·items) · r_src each, serialised at
//                              the sender; arrival = send end + latency(LCA)
//   3. receives, arrival order: (o_recv + recv_ratio·g·items) · r_dst each,
//                              serialised at the receiver after its own work
//   4. shared-medium bound:    each crossed network adds wire_per_item·items;
//                              the plan cannot complete before its start plus
//                              any network's total occupancy
//   5. barrier:                all scope processors jump to
//                              max(completions, wire bounds) + L_scope
//
// Self-sends cost nothing (§5.2: "a processor does not send data to itself").
// Everything is deterministic: ties in arrival order break by send issue
// sequence.

// When a faults::FaultInjector is attached (set_fault_injector), three
// disturbance classes perturb the run — transient slowdown windows multiply
// busy times like a time-varying r; lost send attempts are re-sent after an
// exponential-backoff timeout, each retry re-paying the sender overhead and
// wire occupancy; dropped machines stop computing and stall their barrier
// scope until the failure detector excludes them. With no injector (or an
// empty plan) every timing is bit-identical to the fault-free simulator.

#include <cstdint>
#include <vector>

#include "core/dest_costs.hpp"
#include "core/machine.hpp"
#include "core/schedule.hpp"
#include "faults/injector.hpp"
#include "sim/event_queue.hpp"
#include "sim/network.hpp"
#include "sim/sim_params.hpp"
#include "sim/trace.hpp"

namespace hbsp::sim {

/// Timing of one executed plan within a phase.
struct PlanTiming {
  double start = 0.0;       ///< earliest participant clock at entry
  double work_end = 0.0;    ///< latest endpoint completion (pre-barrier)
  double wire_end = 0.0;    ///< latest shared-medium bound
  double barrier_exit = 0.0;
};

/// Result of running a whole schedule.
struct SimResult {
  double makespan = 0.0;                     ///< latest clock over all pids
  std::vector<double> phase_completion;      ///< per phase, max barrier exit
  std::vector<std::vector<PlanTiming>> plan_timings;  ///< [phase][plan]
};

/// Aggregate fault-injection outcomes of a run (all zero without faults).
struct FaultStats {
  std::size_t messages_lost = 0;  ///< send attempts that vanished on the wire
  std::size_t retries = 0;        ///< re-sends after a loss timeout
  std::size_t machines_excluded = 0;  ///< dropouts the detector excluded
};

/// Everything a run contributed to the global obs registry (the `sim.*`
/// counter and histogram family), captured alongside the SimResult so a
/// scenario-cache hit can replay the identical contribution without
/// re-simulating. Counter fields are deltas; the histogram fields hold the
/// recorded values verbatim, so replaying preserves bucket counts, sums, and
/// min/max bit-exactly.
struct RunMetrics {
  std::size_t runs = 0;
  std::size_t phases = 0;
  std::size_t plans = 0;
  std::size_t ghost_plans = 0;
  std::size_t send_attempts = 0;
  std::size_t messages_delivered = 0;
  std::size_t messages_lost = 0;
  std::size_t retries = 0;
  std::size_t machines_excluded = 0;
  std::size_t barriers = 0;
  std::size_t barrier_stalls = 0;
  std::size_t slowdown_hits = 0;
  std::size_t events = 0;
  std::vector<double> plan_wire_seconds;
  std::vector<double> plan_span_seconds;
  std::vector<double> run_makespan_seconds;
};

/// Adds `metrics` to obs::Registry::global() exactly as the run that
/// captured them did: same counters, same histogram samples, same values.
/// Registry totals are therefore a pure function of which runs (fresh or
/// replayed) contributed, not of which were cache hits.
void replay_run_metrics(const RunMetrics& metrics);

class ClusterSim {
 public:
  /// Validates `params`; `record_events` enables the full event trace.
  ClusterSim(const MachineTree& tree, SimParams params,
             bool record_events = false);

  /// Enables the §6 destination-cost extension in the substrate: per-item
  /// send and receive costs are scaled by λ(src,dst). The object must
  /// outlive the simulator; nullptr restores the base behaviour.
  void set_destination_costs(const DestinationCosts* costs) noexcept {
    destination_costs_ = costs;
  }

  /// Attaches a fault injector (see the class comment). The object must
  /// outlive the simulator; nullptr restores the fault-free behaviour.
  /// Resets fault state (exclusions, stats) for the next run.
  void set_fault_injector(const faults::FaultInjector* injector);

  /// Runs a validated schedule from time zero (resets state first).
  SimResult run(const CommSchedule& schedule);

  /// Incremental mode for the runtime engine: executes one phase against the
  /// current clocks and returns its timings.
  std::vector<PlanTiming> execute_phase(const Phase& phase);

  /// Zeroes all clocks, statistics and traces.
  void reset();

  /// Current virtual time of one processor.
  [[nodiscard]] double now(int pid) const;

  /// Latest virtual time over all processors.
  [[nodiscard]] double makespan() const;

  [[nodiscard]] const Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] const Network& network() const noexcept { return network_; }
  [[nodiscard]] const MachineTree& tree() const noexcept { return *tree_; }
  [[nodiscard]] const SimParams& params() const noexcept { return params_; }

  /// Processors the failure detector has excluded so far, in exclusion
  /// order. Cleared by reset(); empty without an injector.
  [[nodiscard]] const std::vector<int>& excluded_pids() const noexcept {
    return excluded_pids_;
  }

  /// Loss/retry/exclusion counters since the last reset().
  [[nodiscard]] const FaultStats& fault_stats() const noexcept {
    return fault_stats_;
  }

  /// The `sim.*` registry contribution accumulated since the last reset()
  /// (i.e. of the last run()). Feed to replay_run_metrics to repeat it.
  [[nodiscard]] const RunMetrics& run_metrics() const noexcept {
    return run_metrics_;
  }

 private:
  PlanTiming execute_plan(const SuperstepPlan& plan);

  /// One delivered (or pending) message in flight to a receiver. Keyed
  /// (dst, time, issue seq): popping the arrival heap in that order is
  /// exactly the old per-receiver drain — receivers in pid order, each
  /// receiver's messages in (arrival time, issue order). seq is unique per
  /// transfer within a plan, so the order is strict and the heap's pop
  /// sequence is push-order independent.
  struct Arrival {
    int dst;
    double time;
    std::size_t seq;
    int src;
    std::size_t items;
    double lambda;  ///< §6 destination-cost weight of this message
    bool operator<(const Arrival& other) const {
      if (dst != other.dst) return dst < other.dst;
      if (time != other.time) return time < other.time;
      return seq < other.seq;
    }
  };

  /// Instrumentation accumulated while executing plans, flushed into
  /// obs::Registry::global() once per phase (the `sim.*` counter family).
  /// Local accumulation keeps the per-message hot path free of registry
  /// lookups and binds the flush to whichever thread runs the phase — each
  /// sweep worker writes its own shard, merged deterministically later.
  struct MetricsTally {
    std::size_t plans = 0;
    std::size_t ghost_plans = 0;       ///< scopes where every member had died
    std::size_t send_attempts = 0;     ///< includes every retry
    std::size_t messages_delivered = 0;
    std::size_t messages_lost = 0;
    std::size_t retries = 0;
    std::size_t machines_excluded = 0;
    std::size_t barriers = 0;
    std::size_t barrier_stalls = 0;    ///< barriers stretched by the detector
    std::size_t slowdown_hits = 0;     ///< busy periods inside a fault window
    std::size_t events_seen = 0;       ///< trace events already flushed
    std::vector<double> plan_wire_seconds;  ///< wire occupancy per plan
    std::vector<double> plan_span_seconds;  ///< start -> barrier exit per plan
  };

  void flush_metrics();

  /// Whether `pid` has dropped out by virtual time `at`.
  [[nodiscard]] bool dead_at(int pid, double at) const {
    return faults_ != nullptr && faults_->dropped_by(pid, at);
  }

  /// Fault slowdown multiplier of `pid` at time `at` (1.0 without faults).
  [[nodiscard]] double fault_slow(int pid, double at) const {
    return faults_ != nullptr ? faults_->slowdown_factor(pid, at) : 1.0;
  }

  /// Background-load slowdown of `pid` during the current superstep
  /// (log-normal, deterministic per load_seed/pid/superstep; 1.0 when the
  /// load model is off).
  [[nodiscard]] double load_factor(int pid) const;

  const MachineTree* tree_;
  SimParams params_;
  double seconds_per_op_;
  Network network_;
  Trace trace_;
  std::vector<double> clock_;
  std::vector<MachineId> route_scratch_;
  const DestinationCosts* destination_costs_ = nullptr;
  const faults::FaultInjector* faults_ = nullptr;
  std::size_t plan_counter_ = 0;
  std::vector<char> excluded_;    ///< per pid: detector has excluded it
  std::vector<int> excluded_pids_;
  FaultStats fault_stats_;
  MetricsTally tally_;
  RunMetrics run_metrics_;
  /// Reused across plans (capacity survives); always drained empty.
  EventQueue<Arrival> arrivals_;
  /// Dense per-network wire occupancy of the current plan, indexed by
  /// Network::slot; `net_touched_` lists the slots to reset afterwards.
  std::vector<double> net_busy_;
  std::vector<std::size_t> net_touched_;
};

}  // namespace hbsp::sim
