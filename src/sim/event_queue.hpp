#pragma once
// A flat binary min-heap for the simulator's hot loops.
//
// std::map-based event storage allocates a node per entry; draining a sweep's
// arrival queues that way costs one malloc/free per message. EventQueue keeps
// everything in one contiguous vector whose capacity survives clear(), so a
// ClusterSim reused across plans pushes and pops events with no allocation at
// all once the high-water mark is reached.
//
// Determinism: pop() returns the minimum under T's operator< each call. When
// keys are strictly totally ordered (the simulator keys arrivals by
// (dst, time, issue seq), and seq is unique within a plan) the pop sequence
// is the unique sorted order — independent of push order and of the heap's
// internal layout.

#include <cstddef>
#include <utility>
#include <vector>

namespace hbsp::sim {

template <typename T>
class EventQueue {
 public:
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Drops all entries but keeps the underlying capacity.
  void clear() noexcept { heap_.clear(); }

  void push(T value) {
    heap_.push_back(std::move(value));
    std::size_t child = heap_.size() - 1;
    while (child > 0) {
      const std::size_t parent = (child - 1) / 2;
      if (!(heap_[child] < heap_[parent])) break;
      std::swap(heap_[child], heap_[parent]);
      child = parent;
    }
  }

  /// Removes and returns the minimum element. Precondition: !empty().
  T pop() {
    T out = std::move(heap_.front());
    heap_.front() = std::move(heap_.back());
    heap_.pop_back();
    std::size_t parent = 0;
    const std::size_t n = heap_.size();
    for (;;) {
      const std::size_t left = 2 * parent + 1;
      if (left >= n) break;
      const std::size_t right = left + 1;
      std::size_t least = left;
      if (right < n && heap_[right] < heap_[left]) least = right;
      if (!(heap_[least] < heap_[parent])) break;
      std::swap(heap_[parent], heap_[least]);
      parent = least;
    }
    return out;
  }

 private:
  std::vector<T> heap_;
};

}  // namespace hbsp::sim
