#include "sim/cluster_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <stdexcept>

#include "util/rng.hpp"

namespace hbsp::sim {

ClusterSim::ClusterSim(const MachineTree& tree, SimParams params,
                       bool record_events)
    : tree_(&tree),
      params_(params),
      seconds_per_op_(params.seconds_per_op < 0.0 ? tree.g()
                                                  : params.seconds_per_op),
      network_(tree, params_),
      trace_(tree.num_processors(), record_events),
      clock_(static_cast<std::size_t>(tree.num_processors()), 0.0) {
  params_.validate();
}

void ClusterSim::reset() {
  std::fill(clock_.begin(), clock_.end(), 0.0);
  trace_.clear();
  network_.reset();
  plan_counter_ = 0;
}

double ClusterSim::load_factor(int pid) const {
  if (params_.load_stddev <= 0.0) return 1.0;
  // One draw per (seed, superstep, pid): seed a tiny generator from the
  // mixed key so factors are independent and reproducible.
  std::uint64_t key = params_.load_seed;
  key = util::splitmix64(key) ^ (plan_counter_ * 0x9e3779b97f4a7c15ULL);
  key = util::splitmix64(key) ^ (static_cast<std::uint64_t>(pid) + 1);
  util::Rng rng{util::splitmix64(key)};
  return std::exp(rng.normal(0.0, params_.load_stddev));
}

double ClusterSim::now(int pid) const {
  return clock_.at(static_cast<std::size_t>(pid));
}

double ClusterSim::makespan() const {
  return *std::max_element(clock_.begin(), clock_.end());
}

SimResult ClusterSim::run(const CommSchedule& schedule) {
  validate_schedule(*tree_, schedule);
  reset();
  SimResult result;
  result.phase_completion.reserve(schedule.phases.size());
  for (const auto& phase : schedule.phases) {
    auto timings = execute_phase(phase);
    double completion = 0.0;
    for (const auto& t : timings) completion = std::max(completion, t.barrier_exit);
    result.phase_completion.push_back(completion);
    result.plan_timings.push_back(std::move(timings));
  }
  result.makespan = makespan();
  return result;
}

std::vector<PlanTiming> ClusterSim::execute_phase(const Phase& phase) {
  std::vector<PlanTiming> timings;
  timings.reserve(phase.plans.size());
  // Plans within a phase act on disjoint subtrees, so sequential processing
  // of the plan list is still concurrent execution in virtual time.
  for (const auto& plan : phase.plans) timings.push_back(execute_plan(plan));
  return timings;
}

PlanTiming ClusterSim::execute_plan(const SuperstepPlan& plan) {
  ++plan_counter_;
  const auto [first, last] = tree_->processor_range(plan.sync_scope);
  PlanTiming timing;
  timing.start = std::numeric_limits<double>::infinity();
  for (int pid = first; pid < last; ++pid) {
    timing.start = std::min(timing.start, clock_[static_cast<std::size_t>(pid)]);
  }
  if (first >= last) throw std::logic_error{"execute_plan: empty scope"};

  // 1. Local computation.
  for (const auto& work : plan.compute) {
    const auto slot = static_cast<std::size_t>(work.pid);
    const double seconds = work.ops * tree_->processor_compute_r(work.pid) *
                           seconds_per_op_ * load_factor(work.pid);
    trace_.record({clock_[slot], EventKind::kComputeStart, work.pid, -1,
                   static_cast<std::size_t>(work.ops), plan.label});
    clock_[slot] += seconds;
    trace_.note_compute(work.pid, seconds);
    trace_.record({clock_[slot], EventKind::kComputeEnd, work.pid, -1,
                   static_cast<std::size_t>(work.ops), plan.label});
  }

  // 2. Sends, serialised per sender in issue order. Arrival times land in
  //    per-receiver queues keyed by (time, issue sequence) for determinism.
  struct Arrival {
    double time;
    std::size_t seq;
    int src;
    std::size_t items;
    double lambda;  ///< §6 destination-cost weight of this message
    bool operator<(const Arrival& other) const {
      return time != other.time ? time < other.time : seq < other.seq;
    }
  };
  std::map<int, std::vector<Arrival>> inbox;
  std::size_t seq = 0;
  for (const auto& t : plan.transfers) {
    ++seq;
    if (t.src_pid == t.dst_pid || t.items == 0) continue;
    const auto slot = static_cast<std::size_t>(t.src_pid);
    const double r = tree_->processor_r(t.src_pid);
    const double lambda =
        destination_costs_ ? destination_costs_->factor(t.src_pid, t.dst_pid)
                           : 1.0;
    const double busy = (params_.o_send * r +
                         tree_->g() * r * lambda * static_cast<double>(t.items)) *
                        load_factor(t.src_pid);
    trace_.record({clock_[slot], EventKind::kSendStart, t.src_pid, t.dst_pid,
                   t.items, plan.label});
    clock_[slot] += busy;
    trace_.note_send(t.src_pid, t.items, busy);
    trace_.record({clock_[slot], EventKind::kSendEnd, t.src_pid, t.dst_pid,
                   t.items, plan.label});

    const int lca = tree_->lca_level(t.src_pid, t.dst_pid);
    const double arrival = clock_[slot] + network_.latency(lca);
    trace_.record({arrival, EventKind::kArrival, t.dst_pid, t.src_pid, t.items,
                   plan.label});
    inbox[t.dst_pid].push_back({arrival, seq, t.src_pid, t.items, lambda});

    // Charge shared-medium occupancy on every crossed network.
    route_scratch_.clear();
    network_.route(t.src_pid, t.dst_pid, route_scratch_);
    for (const MachineId net : route_scratch_) {
      auto& stats = network_.stats(net);
      stats.items_crossed += t.items;
      ++stats.messages_crossed;
      stats.wire_seconds +=
          network_.wire_per_item(net.level) * static_cast<double>(t.items);
    }
  }

  // 3. Receives: each receiver drains its inbox in arrival order after
  //    finishing its own compute and sends.
  for (auto& [dst, arrivals] : inbox) {
    std::sort(arrivals.begin(), arrivals.end());
    const auto slot = static_cast<std::size_t>(dst);
    const double r = tree_->processor_r(dst);
    for (const Arrival& a : arrivals) {
      const double start = std::max(clock_[slot], a.time);
      const double busy =
          (params_.o_recv * r + params_.recv_ratio * tree_->g() * r * a.lambda *
                                    static_cast<double>(a.items)) *
          load_factor(dst);
      trace_.record({start, EventKind::kRecvStart, dst, a.src, a.items,
                     plan.label});
      clock_[slot] = start + busy;
      trace_.note_recv(dst, a.items, busy);
      trace_.record({clock_[slot], EventKind::kRecvEnd, dst, a.src, a.items,
                     plan.label});
    }
  }

  // 4. Shared-medium throughput bound per crossed network, measured from the
  //    plan's start. (Networks touched by this plan are inside its scope, so
  //    the per-plan sum within this phase is the right aggregate.)
  timing.work_end = 0.0;
  for (int pid = first; pid < last; ++pid) {
    timing.work_end =
        std::max(timing.work_end, clock_[static_cast<std::size_t>(pid)]);
  }
  timing.wire_end = timing.start;
  if (params_.model_wire_contention) {
    // Re-walk the plan's transfers to sum occupancy per network this step.
    std::map<std::size_t, double> busy_per_network;
    for (const auto& t : plan.transfers) {
      if (t.src_pid == t.dst_pid || t.items == 0) continue;
      route_scratch_.clear();
      network_.route(t.src_pid, t.dst_pid, route_scratch_);
      for (const MachineId net : route_scratch_) {
        const auto key = static_cast<std::size_t>(net.level) * 100000u +
                         static_cast<std::size_t>(net.index);
        busy_per_network[key] +=
            network_.wire_per_item(net.level) * static_cast<double>(t.items);
      }
    }
    for (const auto& [key, busy] : busy_per_network) {
      timing.wire_end = std::max(timing.wire_end, timing.start + busy);
    }
  }

  // 5. Barrier: everyone in scope jumps to the common exit time.
  const double barrier_enter = std::max(timing.work_end, timing.wire_end);
  timing.barrier_exit = barrier_enter + tree_->sync_L(plan.sync_scope);
  for (int pid = first; pid < last; ++pid) {
    trace_.record({clock_[static_cast<std::size_t>(pid)],
                   EventKind::kBarrierEnter, pid, -1, 0, plan.label});
    clock_[static_cast<std::size_t>(pid)] = timing.barrier_exit;
    trace_.record({timing.barrier_exit, EventKind::kBarrierExit, pid, -1, 0,
                   plan.label});
  }
  return timing;
}

}  // namespace hbsp::sim
