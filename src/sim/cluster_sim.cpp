#include "sim/cluster_sim.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/rng.hpp"

namespace hbsp::sim {

namespace {

/// Track names compose the driver-supplied TraceContext prefix (cell index,
/// request ordinal, workload name) with a machine id, so the virtual trace is
/// deterministic no matter which thread or layer drives the simulation.
std::string span_track(const obs::TraceRecorder& recorder,
                       const MachineId& scope) {
  std::string track = recorder.context();
  if (!track.empty()) track += '/';
  track += 'm';
  track += std::to_string(scope.level);
  track += '.';
  track += std::to_string(scope.index);
  return track;
}

std::string phase_track(const obs::TraceRecorder& recorder) {
  std::string track = recorder.context();
  if (!track.empty()) track += '/';
  track += "sim";
  return track;
}

}  // namespace

ClusterSim::ClusterSim(const MachineTree& tree, SimParams params,
                       bool record_events)
    : tree_(&tree),
      params_(params),
      seconds_per_op_(params.seconds_per_op < 0.0 ? tree.g()
                                                  : params.seconds_per_op),
      network_(tree, params_),
      trace_(tree.num_processors(), record_events),
      clock_(static_cast<std::size_t>(tree.num_processors()), 0.0),
      excluded_(static_cast<std::size_t>(tree.num_processors()), 0),
      net_busy_(network_.num_slots(), 0.0) {
  params_.validate();
}

void ClusterSim::set_fault_injector(const faults::FaultInjector* injector) {
  faults_ = injector;
  std::fill(excluded_.begin(), excluded_.end(), 0);
  excluded_pids_.clear();
  fault_stats_ = FaultStats{};
}

void ClusterSim::reset() {
  std::fill(clock_.begin(), clock_.end(), 0.0);
  trace_.clear();
  network_.reset();
  plan_counter_ = 0;
  tally_ = MetricsTally{};
  std::fill(excluded_.begin(), excluded_.end(), 0);
  excluded_pids_.clear();
  fault_stats_ = FaultStats{};
  run_metrics_ = RunMetrics{};
  arrivals_.clear();
  for (const std::size_t s : net_touched_) net_busy_[s] = 0.0;
  net_touched_.clear();
  if (faults_ != nullptr && trace_.recording_events()) {
    // Make the planned slowdown windows visible in the event trace up front;
    // drops/losses/retries are recorded when the run encounters them.
    for (const auto& w : faults_->plan().slowdowns) {
      if (w.pid >= tree_->num_processors()) continue;
      const auto milli = static_cast<std::size_t>(w.factor * 1000.0);
      trace_.record({w.begin, EventKind::kSlowdownStart, w.pid, -1, milli,
                     "fault plan"});
      trace_.record({w.end, EventKind::kSlowdownEnd, w.pid, -1, milli,
                     "fault plan"});
    }
  }
}

double ClusterSim::load_factor(int pid) const {
  if (params_.load_stddev <= 0.0) return 1.0;
  // One draw per (seed, superstep, pid): seed a tiny generator from the
  // mixed key so factors are independent and reproducible.
  std::uint64_t key = params_.load_seed;
  key = util::splitmix64(key) ^ (plan_counter_ * 0x9e3779b97f4a7c15ULL);
  key = util::splitmix64(key) ^ (static_cast<std::uint64_t>(pid) + 1);
  util::Rng rng{util::splitmix64(key)};
  return std::exp(rng.normal(0.0, params_.load_stddev));
}

double ClusterSim::now(int pid) const {
  return clock_.at(static_cast<std::size_t>(pid));
}

double ClusterSim::makespan() const {
  return *std::max_element(clock_.begin(), clock_.end());
}

SimResult ClusterSim::run(const CommSchedule& schedule) {
  validate_schedule(*tree_, schedule);
  reset();
  SimResult result;
  result.phase_completion.reserve(schedule.phases.size());
  for (const auto& phase : schedule.phases) {
    auto timings = execute_phase(phase);
    double completion = 0.0;
    for (const auto& t : timings) completion = std::max(completion, t.barrier_exit);
    result.phase_completion.push_back(completion);
    result.plan_timings.push_back(std::move(timings));
  }
  result.makespan = makespan();
  auto& registry = obs::Registry::global();
  registry.counter("sim.runs").increment();
  registry.histogram("sim.run_makespan_seconds").record(result.makespan);
  ++run_metrics_.runs;
  run_metrics_.run_makespan_seconds.push_back(result.makespan);
  return result;
}

void replay_run_metrics(const RunMetrics& metrics) {
  auto& registry = obs::Registry::global();
  registry.counter("sim.runs").add(metrics.runs);
  registry.counter("sim.phases").add(metrics.phases);
  registry.counter("sim.plans").add(metrics.plans);
  registry.counter("sim.ghost_plans").add(metrics.ghost_plans);
  registry.counter("sim.send_attempts").add(metrics.send_attempts);
  registry.counter("sim.messages_delivered").add(metrics.messages_delivered);
  registry.counter("sim.messages_lost").add(metrics.messages_lost);
  registry.counter("sim.retries").add(metrics.retries);
  registry.counter("sim.machines_excluded").add(metrics.machines_excluded);
  registry.counter("sim.barriers").add(metrics.barriers);
  registry.counter("sim.barrier_stalls").add(metrics.barrier_stalls);
  registry.counter("sim.slowdown_hits").add(metrics.slowdown_hits);
  registry.counter("sim.events").add(metrics.events);
  obs::Histogram wire = registry.histogram("sim.plan_wire_seconds");
  for (const double s : metrics.plan_wire_seconds) wire.record(s);
  obs::Histogram span = registry.histogram("sim.plan_span_seconds");
  for (const double s : metrics.plan_span_seconds) span.record(s);
  obs::Histogram makespan = registry.histogram("sim.run_makespan_seconds");
  for (const double s : metrics.run_makespan_seconds) makespan.record(s);
}

std::vector<PlanTiming> ClusterSim::execute_phase(const Phase& phase) {
  auto& recorder = obs::TraceRecorder::global();
  const bool tracing = recorder.enabled();
  if (tracing) {
    recorder.begin_span(phase_track(recorder), "phase", obs::SpanKind::kPhase,
                        obs::Timebase::kVirtual,
                        *std::min_element(clock_.begin(), clock_.end()));
  }
  std::vector<PlanTiming> timings;
  timings.reserve(phase.plans.size());
  // Plans within a phase act on disjoint subtrees, so sequential processing
  // of the plan list is still concurrent execution in virtual time.
  for (const auto& plan : phase.plans) timings.push_back(execute_plan(plan));
  if (tracing) {
    double completion = 0.0;
    for (const auto& t : timings) {
      completion = std::max(completion, t.barrier_exit);
    }
    recorder.end_span(
        completion,
        {{"plans", static_cast<std::int64_t>(phase.plans.size())}});
  }
  flush_metrics();
  return timings;
}

void ClusterSim::flush_metrics() {
  auto& registry = obs::Registry::global();
  registry.counter("sim.phases").increment();
  registry.counter("sim.plans").add(tally_.plans);
  registry.counter("sim.ghost_plans").add(tally_.ghost_plans);
  registry.counter("sim.send_attempts").add(tally_.send_attempts);
  registry.counter("sim.messages_delivered").add(tally_.messages_delivered);
  registry.counter("sim.messages_lost").add(tally_.messages_lost);
  registry.counter("sim.retries").add(tally_.retries);
  registry.counter("sim.machines_excluded").add(tally_.machines_excluded);
  registry.counter("sim.barriers").add(tally_.barriers);
  registry.counter("sim.barrier_stalls").add(tally_.barrier_stalls);
  registry.counter("sim.slowdown_hits").add(tally_.slowdown_hits);
  const std::size_t events = trace_.events_recorded();
  registry.counter("sim.events").add(events - tally_.events_seen);
  obs::Histogram wire = registry.histogram("sim.plan_wire_seconds");
  for (const double s : tally_.plan_wire_seconds) wire.record(s);
  obs::Histogram span = registry.histogram("sim.plan_span_seconds");
  for (const double s : tally_.plan_span_seconds) span.record(s);
  // Mirror the whole flush into the run capture so replay_run_metrics can
  // repeat this run's registry contribution verbatim.
  ++run_metrics_.phases;
  run_metrics_.plans += tally_.plans;
  run_metrics_.ghost_plans += tally_.ghost_plans;
  run_metrics_.send_attempts += tally_.send_attempts;
  run_metrics_.messages_delivered += tally_.messages_delivered;
  run_metrics_.messages_lost += tally_.messages_lost;
  run_metrics_.retries += tally_.retries;
  run_metrics_.machines_excluded += tally_.machines_excluded;
  run_metrics_.barriers += tally_.barriers;
  run_metrics_.barrier_stalls += tally_.barrier_stalls;
  run_metrics_.slowdown_hits += tally_.slowdown_hits;
  run_metrics_.events += events - tally_.events_seen;
  run_metrics_.plan_wire_seconds.insert(run_metrics_.plan_wire_seconds.end(),
                                        tally_.plan_wire_seconds.begin(),
                                        tally_.plan_wire_seconds.end());
  run_metrics_.plan_span_seconds.insert(run_metrics_.plan_span_seconds.end(),
                                        tally_.plan_span_seconds.begin(),
                                        tally_.plan_span_seconds.end());
  tally_ = MetricsTally{};
  tally_.events_seen = events;
}

PlanTiming ClusterSim::execute_plan(const SuperstepPlan& plan) {
  ++plan_counter_;
  ++tally_.plans;
  const auto [first, last] = tree_->processor_range(plan.sync_scope);
  if (first >= last) throw std::logic_error{"execute_plan: empty scope"};

  PlanTiming timing;
  timing.start = std::numeric_limits<double>::infinity();
  bool any_live = false;
  for (int pid = first; pid < last; ++pid) {
    const auto slot = static_cast<std::size_t>(pid);
    if (dead_at(pid, clock_[slot])) continue;
    any_live = true;
    timing.start = std::min(timing.start, clock_[slot]);
  }
  auto& recorder = obs::TraceRecorder::global();
  const bool tracing = recorder.enabled();
  const std::string span_track_name =
      tracing ? span_track(recorder, plan.sync_scope) : std::string{};
  if (!any_live) {
    // Every scope member has dropped: the plan is a ghost. Nothing runs, no
    // barrier closes; the detector still flags the unreported corpses so the
    // re-planning layer learns about fully-dead clusters.
    ++tally_.ghost_plans;
    double frozen = 0.0;
    for (int pid = first; pid < last; ++pid) {
      frozen = std::max(frozen, clock_[static_cast<std::size_t>(pid)]);
      const auto slot = static_cast<std::size_t>(pid);
      if (excluded_[slot]) continue;
      excluded_[slot] = 1;
      excluded_pids_.push_back(pid);
      ++fault_stats_.machines_excluded;
      ++tally_.machines_excluded;
      trace_.record(clock_[slot], EventKind::kMachineDrop, pid, -1, 0,
                     plan.label);
    }
    timing.start = timing.work_end = timing.wire_end = timing.barrier_exit =
        frozen;
    if (tracing) {
      // Zero-length superstep span so count(kSuperstep) == sim.plans holds
      // exactly even when a whole scope has died.
      recorder.record_span(span_track_name, plan.label,
                           obs::SpanKind::kSuperstep, obs::Timebase::kVirtual,
                           frozen, frozen, {{"ghost", 1}});
    }
    return timing;
  }

  if (tracing) {
    recorder.begin_span(span_track_name, plan.label,
                        obs::SpanKind::kSuperstep, obs::Timebase::kVirtual,
                        timing.start);
  }
  const auto scope_clock_max = [&] {
    double latest = timing.start;
    for (int pid = first; pid < last; ++pid) {
      const auto slot = static_cast<std::size_t>(pid);
      if (dead_at(pid, clock_[slot])) continue;
      latest = std::max(latest, clock_[slot]);
    }
    return latest;
  };
  const std::size_t attempts_before = tally_.send_attempts;
  const std::size_t retries_before = tally_.retries;
  const std::size_t delivered_before = tally_.messages_delivered;
  const std::size_t lost_before = tally_.messages_lost;
  const std::size_t stalls_before = tally_.barrier_stalls;

  // 1. Local computation. A dropped processor does no further work; a
  //    slowdown window stretches busy time like a time-varying r.
  for (const auto& work : plan.compute) {
    const auto slot = static_cast<std::size_t>(work.pid);
    if (dead_at(work.pid, clock_[slot])) continue;
    const double slow = fault_slow(work.pid, clock_[slot]);
    if (slow != 1.0) ++tally_.slowdown_hits;
    const double seconds = work.ops * tree_->processor_compute_r(work.pid) *
                           seconds_per_op_ * load_factor(work.pid) * slow;
    trace_.record(clock_[slot], EventKind::kComputeStart, work.pid, -1,
                   static_cast<std::size_t>(work.ops), plan.label);
    clock_[slot] += seconds;
    trace_.note_compute(work.pid, seconds);
    trace_.record(clock_[slot], EventKind::kComputeEnd, work.pid, -1,
                   static_cast<std::size_t>(work.ops), plan.label);
  }
  const double compute_end = tracing ? scope_clock_max() : 0.0;

  // 2. Sends, serialised per sender in issue order. Arrivals land in the
  //    pooled heap keyed (dst, time, issue sequence) for determinism; the
  //    per-network shared-medium occupancy accumulates into the dense
  //    net_busy_ scratch (both reused across plans, no allocation on the
  //    steady state). Under faults a lost attempt is re-sent after an
  //    exponential-backoff timeout; every attempt re-pays the sender
  //    overhead and the wire occupancy of each crossed network, so
  //    resilience is never free.
  double plan_wire_seconds = 0.0;
  std::size_t seq = 0;
  for (const auto& t : plan.transfers) {
    ++seq;
    if (t.src_pid == t.dst_pid || t.items == 0) continue;
    const auto slot = static_cast<std::size_t>(t.src_pid);
    if (dead_at(t.src_pid, clock_[slot])) continue;  // message never leaves
    const double r = tree_->processor_r(t.src_pid);
    const double lambda =
        destination_costs_ ? destination_costs_->factor(t.src_pid, t.dst_pid)
                           : 1.0;
    const int lca = tree_->lca_level(t.src_pid, t.dst_pid);
    // Message identity: stable across runs and thread counts, so the loss
    // draw for (message, attempt) replays bit-identically.
    const std::uint64_t message_key =
        (static_cast<std::uint64_t>(plan_counter_) << 32) ^ seq;
    int attempt = 1;
    double timeout = params_.retry_timeout;
    for (;;) {
      ++tally_.send_attempts;
      if (attempt > 1) {
        ++fault_stats_.retries;
        ++tally_.retries;
        trace_.record(clock_[slot], EventKind::kRetry, t.src_pid, t.dst_pid,
                       t.items, plan.label);
      }
      const double send_slow = fault_slow(t.src_pid, clock_[slot]);
      if (send_slow != 1.0) ++tally_.slowdown_hits;
      const double busy =
          (params_.o_send * r +
           tree_->g() * r * lambda * static_cast<double>(t.items)) *
          load_factor(t.src_pid) * send_slow;
      trace_.record(clock_[slot], EventKind::kSendStart, t.src_pid, t.dst_pid,
                     t.items, plan.label);
      clock_[slot] += busy;
      trace_.note_send(t.src_pid, t.items, busy);
      trace_.record(clock_[slot], EventKind::kSendEnd, t.src_pid, t.dst_pid,
                     t.items, plan.label);

      // Charge shared-medium occupancy on every crossed network.
      route_scratch_.clear();
      network_.route(t.src_pid, t.dst_pid, route_scratch_);
      for (const MachineId net : route_scratch_) {
        auto& stats = network_.stats(net);
        stats.items_crossed += t.items;
        ++stats.messages_crossed;
        const double wire =
            network_.wire_per_item(net.level) * static_cast<double>(t.items);
        stats.wire_seconds += wire;
        plan_wire_seconds += wire;
        if (params_.model_wire_contention) {
          const std::size_t net_slot = network_.slot(net);
          if (net_busy_[net_slot] == 0.0) net_touched_.push_back(net_slot);
          net_busy_[net_slot] += wire;
        }
      }

      const double arrival = clock_[slot] + network_.latency(lca);
      const bool dst_dead =
          faults_ != nullptr && faults_->dropped_by(t.dst_pid, arrival);
      const bool final_attempt = attempt >= params_.max_send_attempts;
      const bool lost =
          faults_ != nullptr &&
          (dst_dead ||
           (!final_attempt && faults_->lose_message(message_key, attempt)));
      if (!lost) {
        trace_.record(arrival, EventKind::kArrival, t.dst_pid, t.src_pid,
                      t.items, plan.label);
        arrivals_.push({t.dst_pid, arrival, seq, t.src_pid, t.items, lambda});
        ++tally_.messages_delivered;
        break;
      }
      ++fault_stats_.messages_lost;
      ++tally_.messages_lost;
      trace_.record(arrival, EventKind::kMessageLost, t.dst_pid, t.src_pid,
                     t.items, plan.label);
      if (final_attempt) break;  // the receiver is gone; the sender gives up
      clock_[slot] += timeout;   // wait out the acknowledgement that never comes
      timeout *= params_.retry_backoff;
      ++attempt;
    }
  }
  const double sends_end = tracing ? scope_clock_max() : 0.0;
  if (tracing) {
    // One send batch per superstep; "attempts" sums to sim.send_attempts
    // across all batches, which the reconciliation suite checks exactly.
    recorder.record_span(
        span_track_name, "sends", obs::SpanKind::kMessageBatch,
        obs::Timebase::kVirtual, compute_end, sends_end,
        {{"attempts",
          static_cast<std::int64_t>(tally_.send_attempts - attempts_before)},
         {"retries",
          static_cast<std::int64_t>(tally_.retries - retries_before)},
         {"delivered", static_cast<std::int64_t>(tally_.messages_delivered -
                                                 delivered_before)},
         {"lost",
          static_cast<std::int64_t>(tally_.messages_lost - lost_before)}});
  }

  // 3. Receives: popping the (dst, time, seq)-keyed heap visits receivers in
  //    pid order and each receiver's messages in arrival order — the same
  //    sequence the per-receiver sorted queues produced — after each has
  //    finished its own compute and sends.
  while (!arrivals_.empty()) {
    const Arrival a = arrivals_.pop();
    const auto slot = static_cast<std::size_t>(a.dst);
    const double start = std::max(clock_[slot], a.time);
    if (dead_at(a.dst, start)) {
      // The receiver died between the wire and the drain: the payload is
      // lost with the machine.
      ++fault_stats_.messages_lost;
      ++tally_.messages_lost;
      trace_.record(start, EventKind::kMessageLost, a.dst, a.src, a.items,
                    plan.label);
      continue;
    }
    const double r = tree_->processor_r(a.dst);
    const double recv_slow = fault_slow(a.dst, start);
    if (recv_slow != 1.0) ++tally_.slowdown_hits;
    const double busy =
        (params_.o_recv * r + params_.recv_ratio * tree_->g() * r * a.lambda *
                                  static_cast<double>(a.items)) *
        load_factor(a.dst) * recv_slow;
    trace_.record(start, EventKind::kRecvStart, a.dst, a.src, a.items,
                  plan.label);
    clock_[slot] = start + busy;
    trace_.note_recv(a.dst, a.items, busy);
    trace_.record(clock_[slot], EventKind::kRecvEnd, a.dst, a.src, a.items,
                  plan.label);
  }
  if (tracing) {
    recorder.record_span(
        span_track_name, "receives", obs::SpanKind::kMessageBatch,
        obs::Timebase::kVirtual, sends_end, scope_clock_max(),
        {{"delivered", static_cast<std::int64_t>(tally_.messages_delivered -
                                                 delivered_before)}});
  }

  // 4. Shared-medium throughput bound per crossed network, measured from the
  //    plan's start, over the occupancy accumulated in step 2 (including
  //    every retry). Networks touched by this plan are inside its scope, so
  //    the per-plan sum within this phase is the right aggregate.
  timing.work_end = 0.0;
  for (int pid = first; pid < last; ++pid) {
    const auto slot = static_cast<std::size_t>(pid);
    if (dead_at(pid, clock_[slot])) continue;
    timing.work_end = std::max(timing.work_end, clock_[slot]);
  }
  timing.wire_end = timing.start;
  for (const std::size_t net_slot : net_touched_) {
    timing.wire_end =
        std::max(timing.wire_end, timing.start + net_busy_[net_slot]);
    net_busy_[net_slot] = 0.0;  // leave the scratch clean for the next plan
  }
  net_touched_.clear();

  // 5. Barrier: everyone in scope jumps to the common exit time. A dropped,
  //    not-yet-excluded member stalls the scope: survivors wait the failure
  //    detector's timeout (a multiple of the expected superstep span) before
  //    excluding the corpse and moving on.
  const double barrier_enter = std::max(timing.work_end, timing.wire_end);
  const double L = tree_->sync_L(plan.sync_scope);
  timing.barrier_exit = barrier_enter + L;
  ++tally_.barriers;
  if (faults_ != nullptr && faults_->has_drops()) {
    bool newly_dropped = false;
    for (int pid = first; pid < last; ++pid) {
      if (excluded_[static_cast<std::size_t>(pid)]) continue;
      if (faults_->drop_time(pid) <= barrier_enter) newly_dropped = true;
    }
    if (newly_dropped) {
      ++tally_.barrier_stalls;
      timing.barrier_exit =
          timing.start + params_.failure_detector_multiple *
                             (barrier_enter - timing.start + L);
      for (int pid = first; pid < last; ++pid) {
        const auto slot = static_cast<std::size_t>(pid);
        if (excluded_[slot] || faults_->drop_time(pid) > barrier_enter) {
          continue;
        }
        excluded_[slot] = 1;
        excluded_pids_.push_back(pid);
        ++fault_stats_.machines_excluded;
        ++tally_.machines_excluded;
        trace_.record(timing.barrier_exit, EventKind::kMachineDrop, pid, -1,
                       0, plan.label);
        // The corpse's clock freezes at its last sign of life.
        clock_[slot] = std::min(clock_[slot], faults_->drop_time(pid));
      }
    }
  }
  for (int pid = first; pid < last; ++pid) {
    const auto slot = static_cast<std::size_t>(pid);
    if (dead_at(pid, clock_[slot])) continue;  // the dead do not synchronise
    trace_.record(clock_[slot], EventKind::kBarrierEnter, pid, -1, 0,
                   plan.label);
    clock_[slot] = timing.barrier_exit;
    trace_.record(timing.barrier_exit, EventKind::kBarrierExit, pid, -1, 0,
                   plan.label);
  }
  if (tracing) {
    recorder.record_span(
        span_track_name, "barrier", obs::SpanKind::kBarrier,
        obs::Timebase::kVirtual, barrier_enter, timing.barrier_exit,
        {{"stalled", tally_.barrier_stalls > stalls_before ? 1 : 0}});
    recorder.end_span(timing.barrier_exit, {{"ghost", 0}});
  }
  tally_.plan_wire_seconds.push_back(plan_wire_seconds);
  tally_.plan_span_seconds.push_back(timing.barrier_exit - timing.start);
  return timing;
}

}  // namespace hbsp::sim
