#include "sim/dest_calibration.hpp"

#include <algorithm>
#include <optional>

#include "sim/cluster_sim.hpp"

namespace hbsp::sim {
namespace {

/// A pid pair whose LCA sits exactly at `level`, if any.
std::optional<std::pair<int, int>> pair_at_level(const MachineTree& tree,
                                                 int level) {
  for (int a = 0; a < tree.num_processors(); ++a) {
    for (int b = a + 1; b < tree.num_processors(); ++b) {
      if (tree.lca_level(a, b) == level) return std::make_pair(a, b);
    }
  }
  return std::nullopt;
}

/// Marginal per-item time of one src->dst message: simulate at two sizes and
/// difference out the fixed costs (overheads, latency, barrier).
double marginal_cost(const MachineTree& tree, const SimParams& params, int src,
                     int dst, std::size_t items) {
  const auto one_run = [&](std::size_t size) {
    CommSchedule schedule;
    SuperstepPlan& plan =
        schedule.add_step("probe", std::max(1, tree.height()), tree.root());
    plan.transfers.push_back({src, dst, size});
    ClusterSim sim{tree, params};
    return sim.run(schedule).makespan;
  };
  const double t_full = one_run(items);
  const double t_half = one_run(items / 2);
  return (t_full - t_half) / (static_cast<double>(items) / 2.0);
}

}  // namespace

std::vector<LevelProbe> probe_levels(const MachineTree& tree,
                                     const SimParams& params,
                                     std::size_t probe_items) {
  std::vector<LevelProbe> probes;
  double base = 0.0;
  double last_factor = 1.0;
  for (int level = 1; level <= tree.height(); ++level) {
    LevelProbe probe;
    probe.level = level;
    const auto pair = pair_at_level(tree, level);
    if (pair) {
      // Probe in the fast->fast direction where possible so r factors cancel
      // against the level-1 baseline; using the same pair ordering for the
      // baseline keeps this exact when level 1 shares an endpoint. In
      // general the r of the probed endpoints also enters, so normalise by
      // the endpoints' own r product.
      const auto [a, b] = *pair;
      const double raw = marginal_cost(tree, params, a, b, probe_items);
      const double endpoint_r =
          tree.processor_r(a) + params.recv_ratio * tree.processor_r(b);
      probe.measured = true;
      probe.seconds_per_item = raw;
      const double normalised = raw / endpoint_r;
      if (level == 1) {
        base = normalised;
        probe.factor = 1.0;
      } else {
        probe.factor = base > 0.0 ? normalised / base : 1.0;
      }
    } else {
      probe.factor = last_factor;
    }
    // The extension requires factors >= 1 and non-decreasing.
    probe.factor = std::max({probe.factor, last_factor, 1.0});
    last_factor = probe.factor;
    probes.push_back(probe);
  }
  return probes;
}

DestinationCosts calibrate_destination_costs(const MachineTree& tree,
                                             const SimParams& params,
                                             std::size_t probe_items) {
  const auto probes = probe_levels(tree, params, probe_items);
  std::vector<double> factors;
  factors.reserve(probes.size());
  for (const auto& probe : probes) factors.push_back(probe.factor);
  return DestinationCosts::by_level(tree, factors);
}

}  // namespace hbsp::sim
