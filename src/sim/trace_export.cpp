#include "sim/trace_export.hpp"

#include <fstream>
#include <map>
#include <ostream>
#include <stdexcept>

namespace hbsp::sim {
namespace {

/// Escapes a string for JSON embedding.
std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char ch : text) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += ch; break;
    }
  }
  return out;
}

/// Phase name of the duration event an EventKind opens, if any.
const char* duration_name(EventKind kind) {
  switch (kind) {
    case EventKind::kComputeStart: return "compute";
    case EventKind::kSendStart: return "send";
    case EventKind::kRecvStart: return "recv";
    case EventKind::kSlowdownStart: return "slowdown";
    default: return nullptr;
  }
}

bool is_duration_end(EventKind kind) {
  return kind == EventKind::kComputeEnd || kind == EventKind::kSendEnd ||
         kind == EventKind::kRecvEnd || kind == EventKind::kSlowdownEnd;
}

}  // namespace

void export_chrome_trace(const Trace& trace, std::ostream& out) {
  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  const auto emit = [&](const std::string& event_json) {
    if (!first) out << ',';
    first = false;
    out << '\n' << event_json;
  };

  // Track metadata: one "thread" per processor.
  for (std::size_t pid = 0; pid < trace.num_pids(); ++pid) {
    emit("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":" +
         std::to_string(pid) + ",\"args\":{\"name\":\"P" + std::to_string(pid) +
         "\"}}");
  }

  // Pair start/end events per processor (they nest trivially: the simulator
  // serialises each processor's work).
  std::map<int, TraceEvent> open;  // pid -> pending start event
  for (const auto& event : trace.events()) {
    const double us = event.time * 1e6;
    if (const char* name = duration_name(event.kind)) {
      open[event.pid] = event;
      std::string json = "{\"name\":\"" + std::string{name};
      if (event.peer >= 0) json += " P" + std::to_string(event.peer);
      json += "\",\"ph\":\"B\",\"pid\":1,\"tid\":" + std::to_string(event.pid) +
              ",\"ts\":" + std::to_string(us) + ",\"args\":{\"items\":" +
              std::to_string(event.items) + ",\"step\":\"" +
              json_escape(event.label) + "\"}}";
      emit(json);
    } else if (is_duration_end(event.kind)) {
      emit("{\"ph\":\"E\",\"pid\":1,\"tid\":" + std::to_string(event.pid) +
           ",\"ts\":" + std::to_string(us) + "}");
      open.erase(event.pid);
    } else if (event.kind == EventKind::kBarrierExit ||
               event.kind == EventKind::kArrival ||
               event.kind == EventKind::kMachineDrop ||
               event.kind == EventKind::kMessageLost ||
               event.kind == EventKind::kRetry) {
      emit("{\"name\":\"" + std::string{to_string(event.kind)} +
           "\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,\"tid\":" +
           std::to_string(event.pid) + ",\"ts\":" + std::to_string(us) + "}");
    }
  }
  out << "\n]}\n";
}

void export_chrome_trace(const Trace& trace, const std::string& path) {
  std::ofstream out{path};
  if (!out) {
    throw std::runtime_error{"export_chrome_trace: cannot open " + path};
  }
  export_chrome_trace(trace, out);
}

}  // namespace hbsp::sim
