#pragma once
// Empirical calibration of the §6 destination-cost extension.
//
// The base HBSP^k model cannot see that a cross-campus message costs more
// per item than an intra-SMP one; the substrate can. This probe measures, on
// the simulator, the per-item cost of a large single-message transfer whose
// endpoints meet at each network level, normalises by the level-1 cost, and
// returns DestinationCosts::by_level factors — the λ values a practitioner
// would measure with ping-pong microbenchmarks on a real hierarchy.

#include "core/dest_costs.hpp"
#include "core/machine.hpp"
#include "sim/sim_params.hpp"

namespace hbsp::sim {

/// Result of probing one level.
struct LevelProbe {
  int level = 0;
  bool measured = false;        ///< false when no pid pair meets at this level
  double seconds_per_item = 0;  ///< marginal per-item cost at this level
  double factor = 1.0;          ///< normalised to level 1
};

/// Probes every network level of `tree` under `params`. Levels without a
/// probe-able pid pair inherit the previous level's factor. `probe_items`
/// amortises fixed costs (overheads, latency, barriers).
[[nodiscard]] std::vector<LevelProbe> probe_levels(const MachineTree& tree,
                                                   const SimParams& params,
                                                   std::size_t probe_items = 1u
                                                                             << 20);

/// Calibrated destination costs for `tree`: by_level with the probed factors
/// (clamped to be >= 1 and non-decreasing, as the extension requires).
[[nodiscard]] DestinationCosts calibrate_destination_costs(
    const MachineTree& tree, const SimParams& params,
    std::size_t probe_items = 1u << 20);

}  // namespace hbsp::sim
