#pragma once
// Event tracing and per-entity statistics for the cluster simulator.

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "core/machine.hpp"

namespace hbsp::sim {

/// Kinds of simulator events worth recording.
enum class EventKind : std::uint8_t {
  kComputeStart,
  kComputeEnd,
  kSendStart,
  kSendEnd,
  kArrival,
  kRecvStart,
  kRecvEnd,
  kBarrierEnter,
  kBarrierExit,
  // Fault-injection events (faults::FaultInjector attached to the sim).
  kSlowdownStart,  ///< a transient slowdown window opens; items = factor*1000
  kSlowdownEnd,    ///< the window closes
  kMachineDrop,    ///< the failure detector excluded `pid`
  kMessageLost,    ///< a send attempt pid->peer vanished on the wire
  kRetry,          ///< `pid` re-sends to `peer` after a loss timeout
};

[[nodiscard]] const char* to_string(EventKind kind) noexcept;

/// One trace record. `peer` is the other endpoint for message events, -1
/// otherwise; `items` is the message size or compute ops.
struct TraceEvent {
  double time = 0.0;
  EventKind kind = EventKind::kComputeStart;
  int pid = -1;
  int peer = -1;
  std::size_t items = 0;
  std::string label;
};

/// Per-processor aggregates over a simulation run.
struct PidStats {
  double busy_seconds = 0.0;     ///< compute + send + receive occupancy
  double compute_seconds = 0.0;
  double send_seconds = 0.0;
  double recv_seconds = 0.0;
  std::size_t messages_sent = 0;
  std::size_t messages_received = 0;
  std::size_t items_sent = 0;
  std::size_t items_received = 0;
};

/// Per-network (interior tree node) aggregates.
struct NetworkStats {
  std::size_t items_crossed = 0;
  std::size_t messages_crossed = 0;
  double wire_seconds = 0.0;  ///< shared-medium occupancy charged
};

/// Collects events and aggregates. Event recording can be disabled (stats are
/// always kept) to keep long sweeps cheap.
class Trace {
 public:
  explicit Trace(int num_pids, bool record_events = false)
      : record_events_(record_events),
        pid_stats_(static_cast<std::size_t>(num_pids)) {}

  void record(TraceEvent event);

  /// Hot-path form: counts the event but only materialises the TraceEvent
  /// (and copies `label`) when event recording is on. The simulator calls
  /// this several times per message; with recording off it is a counter
  /// increment, not a std::string construction.
  void record(double time, EventKind kind, int pid, int peer,
              std::size_t items, const std::string& label) {
    ++events_recorded_;
    if (record_events_) {
      events_.push_back({time, kind, pid, peer, items, label});
    }
  }

  void note_send(int pid, std::size_t items, double seconds);
  void note_recv(int pid, std::size_t items, double seconds);
  void note_compute(int pid, double seconds);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept {
    return events_;
  }
  /// Total record() calls since the last clear() — the number of simulator
  /// events processed, counted whether or not the event list is kept.
  [[nodiscard]] std::size_t events_recorded() const noexcept {
    return events_recorded_;
  }
  [[nodiscard]] const PidStats& pid_stats(int pid) const {
    return pid_stats_.at(static_cast<std::size_t>(pid));
  }
  [[nodiscard]] std::size_t num_pids() const noexcept { return pid_stats_.size(); }
  [[nodiscard]] bool recording_events() const noexcept { return record_events_; }

  /// Renders events as one line each ("t=0.00123  P3 send-end -> P0 (250 items)").
  void dump(std::ostream& out) const;

  void clear();

 private:
  bool record_events_;
  std::size_t events_recorded_ = 0;
  std::vector<TraceEvent> events_;
  std::vector<PidStats> pid_stats_;
};

}  // namespace hbsp::sim
