#pragma once
// The hierarchical network of a simulated HBSP^k machine.
//
// Every interior tree node owns a network (an SMP bus, a LAN segment, a
// campus backbone, ...) connecting its children. A message between two
// processors crosses the networks of all ancestors of either endpoint up to
// and including their lowest common ancestor. Each network is a shared
// medium: the simulator charges its per-item wire time as a throughput bound
// at the closing barrier, and its level sets the per-message latency.

#include <vector>

#include "core/machine.hpp"
#include "sim/sim_params.hpp"
#include "sim/trace.hpp"

namespace hbsp::sim {

class Network {
 public:
  Network(const MachineTree& tree, const SimParams& params);

  /// One-way message latency given the endpoints' LCA level (>= 1).
  [[nodiscard]] double latency(int lca_level) const;

  /// Shared-medium seconds one item occupies a level-`level` network.
  [[nodiscard]] double wire_per_item(int level) const;

  /// Appends the interior nodes whose networks a src->dst message crosses.
  void route(int src_pid, int dst_pid, std::vector<MachineId>& out) const;

  /// Cumulative statistics of one network (zeroed by reset()).
  [[nodiscard]] const NetworkStats& stats(MachineId id) const;
  [[nodiscard]] NetworkStats& stats(MachineId id);

  /// Dense index of `id` in [0, num_slots()): flat (level, index) numbering,
  /// exposed so the simulator can keep per-network occupancy in a plain
  /// vector instead of a map.
  [[nodiscard]] std::size_t slot(MachineId id) const;
  [[nodiscard]] std::size_t num_slots() const noexcept { return stats_.size(); }

  void reset();

 private:
  const MachineTree* tree_;
  const SimParams* params_;
  std::vector<std::size_t> level_offsets_;  ///< flat indexing of (level, index)
  std::vector<NetworkStats> stats_;
};

}  // namespace hbsp::sim
