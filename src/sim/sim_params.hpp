#pragma once
// Tunable mechanics of the simulated heterogeneous cluster.
//
// The simulator stands in for the paper's physical testbed (ten non-dedicated
// SUN/SGI workstations on 100 Mbit/s Ethernet, PVM 3). Its cost mechanics are
// the cost classes the HBSP^k model names — per-item injection scaled by r,
// barrier costs L — plus the three PVM/Ethernet artefacts the paper's §5
// discussion appeals to:
//
//  1. sender-side packing dominates receive processing (recv_ratio < 1) — the
//     source of the paper's p = 2 gather anomaly where the *slow* root wins;
//  2. per-message fixed overheads at both ends (PVM daemon hops);
//  3. each cluster network is a shared medium: the items crossing it serialise
//     at the wire rate, which is why broadcast's total-exchange phase
//     dominates and the root's speed barely matters (Fig. 4).
//
// None of the figure shapes are special-cased; they all emerge from these
// mechanisms. `ablation_substrate` sweeps them to show the shapes are robust.

#include <cstdint>

namespace hbsp::sim {

struct SimParams {
  /// Receiver drain cost per item, as a fraction of the sender's per-item
  /// injection cost g. PVM receives (daemon hand-off + unpack) were cheaper
  /// than sends (pack + XDR + daemon). Must be >= 0.
  double recv_ratio = 0.7;

  /// Fixed per-message cost at the sender, seconds at r = 1. Scaled by the
  /// sender's r.
  double o_send = 20e-6;

  /// Fixed per-message cost at the receiver, seconds at r = 1. Scaled by the
  /// receiver's r.
  double o_recv = 30e-6;

  /// Shared-medium per-item wire time of a level-1 network, as a fraction of
  /// g. Every item whose route crosses a network occupies that network for
  /// g·wire_factor_base·wire_level_scale^(level-1) seconds (a throughput
  /// bound applied at the closing barrier). Set model_wire_contention=false
  /// to disable (pure endpoint model).
  double wire_factor_base = 0.6;
  double wire_level_scale = 8.0;
  bool model_wire_contention = true;

  /// Per-message one-way latency when the lowest common ancestor of the two
  /// endpoints is at level 1; multiplied by latency_level_scale per extra
  /// level (campus/wide-area links are order-of-magnitude slower, §1).
  double latency_base = 0.5e-3;
  double latency_level_scale = 10.0;

  /// Seconds per abstract compute op for the fastest machine; a negative
  /// value means "use the machine's g" (same default as CostModel).
  double seconds_per_op = -1.0;

  /// Non-dedicated-cluster load model (§5.1: the paper's testbed was "a
  /// non-dedicated heterogeneous cluster"). When load_stddev > 0, every
  /// (processor, superstep) pair draws an independent log-normal slowdown
  /// with sigma = load_stddev applied to that processor's busy time in that
  /// superstep. Deterministic per load_seed; 0 disables the model.
  double load_stddev = 0.0;
  std::uint64_t load_seed = 1;

  // --- fault-tolerant transport -------------------------------------------
  // Active only when a faults::FaultInjector is attached to the simulator;
  // without one, none of these fields are read and the injection layer is
  // cost-free.

  /// Seconds a sender waits for the acknowledgement of a lost message before
  /// its first re-send. Each retry re-pays the sender's o_send + g·items
  /// serialisation and the wire occupancy of every crossed network, so
  /// resilience carries an honest model cost.
  double retry_timeout = 5e-3;

  /// Timeout multiplier applied per additional re-send (exponential backoff).
  double retry_backoff = 2.0;

  /// Send attempts per message before the sender gives up. The final attempt
  /// to a *live* receiver always succeeds (loss probability below 1 makes
  /// eventual delivery certain; the cap keeps simulations finite), so only
  /// messages to dropped machines are ever abandoned.
  int max_send_attempts = 8;

  /// The failure detector excludes a dropped machine once its barrier scope
  /// has stalled this multiple of the expected superstep span (work + L,
  /// measured from the plan's start).
  double failure_detector_multiple = 4.0;

  /// Throws std::invalid_argument naming the offending field if any value is
  /// out of range; called by ClusterSim on construction so an invalid params
  /// struct fails loudly instead of producing nonsense timings.
  void validate() const;

  /// Stable hash of every field (bit patterns of the doubles). Two params
  /// with equal fingerprints drive the simulator identically; the scenario
  /// cache keys on it.
  [[nodiscard]] std::uint64_t fingerprint() const;
};

}  // namespace hbsp::sim
