#include "sim/network.hpp"

#include <cmath>
#include <stdexcept>

namespace hbsp::sim {

Network::Network(const MachineTree& tree, const SimParams& params)
    : tree_(&tree), params_(&params) {
  level_offsets_.reserve(static_cast<std::size_t>(tree.num_levels()) + 1);
  std::size_t total = 0;
  for (int level = 0; level < tree.num_levels(); ++level) {
    level_offsets_.push_back(total);
    total += static_cast<std::size_t>(tree.machines_at(level));
  }
  level_offsets_.push_back(total);
  stats_.resize(total);
}

double Network::latency(int lca_level) const {
  if (lca_level < 1) return 0.0;
  return params_->latency_base *
         std::pow(params_->latency_level_scale, lca_level - 1);
}

double Network::wire_per_item(int level) const {
  if (!params_->model_wire_contention) return 0.0;
  return tree_->g() * params_->wire_factor_base *
         std::pow(params_->wire_level_scale, level - 1);
}

void Network::route(int src_pid, int dst_pid, std::vector<MachineId>& out) const {
  if (src_pid == dst_pid) return;
  const int lca = tree_->lca_level(src_pid, dst_pid);
  // Up from the source to (and including) the LCA...
  for (int level = tree_->processor(src_pid).level + 1; level <= lca; ++level) {
    out.push_back(tree_->ancestor_at(src_pid, level));
  }
  // ...and down to the destination, excluding the LCA already added.
  for (int level = tree_->processor(dst_pid).level + 1; level < lca; ++level) {
    out.push_back(tree_->ancestor_at(dst_pid, level));
  }
}

std::size_t Network::slot(MachineId id) const {
  if (id.level < 0 || id.level >= tree_->num_levels()) {
    throw std::out_of_range{"Network::slot: bad level"};
  }
  return level_offsets_[static_cast<std::size_t>(id.level)] +
         static_cast<std::size_t>(id.index);
}

const NetworkStats& Network::stats(MachineId id) const {
  return stats_[slot(id)];
}

NetworkStats& Network::stats(MachineId id) { return stats_[slot(id)]; }

void Network::reset() {
  for (auto& s : stats_) s = NetworkStats{};
}

}  // namespace hbsp::sim
