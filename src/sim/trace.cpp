#include "sim/trace.hpp"

#include <ostream>

namespace hbsp::sim {

const char* to_string(EventKind kind) noexcept {
  switch (kind) {
    case EventKind::kComputeStart: return "compute-start";
    case EventKind::kComputeEnd: return "compute-end";
    case EventKind::kSendStart: return "send-start";
    case EventKind::kSendEnd: return "send-end";
    case EventKind::kArrival: return "arrival";
    case EventKind::kRecvStart: return "recv-start";
    case EventKind::kRecvEnd: return "recv-end";
    case EventKind::kBarrierEnter: return "barrier-enter";
    case EventKind::kBarrierExit: return "barrier-exit";
    case EventKind::kSlowdownStart: return "slowdown-start";
    case EventKind::kSlowdownEnd: return "slowdown-end";
    case EventKind::kMachineDrop: return "machine-drop";
    case EventKind::kMessageLost: return "message-lost";
    case EventKind::kRetry: return "retry";
  }
  return "?";
}

void Trace::record(TraceEvent event) {
  ++events_recorded_;
  if (record_events_) events_.push_back(std::move(event));
}

void Trace::note_send(int pid, std::size_t items, double seconds) {
  auto& s = pid_stats_.at(static_cast<std::size_t>(pid));
  ++s.messages_sent;
  s.items_sent += items;
  s.send_seconds += seconds;
  s.busy_seconds += seconds;
}

void Trace::note_recv(int pid, std::size_t items, double seconds) {
  auto& s = pid_stats_.at(static_cast<std::size_t>(pid));
  ++s.messages_received;
  s.items_received += items;
  s.recv_seconds += seconds;
  s.busy_seconds += seconds;
}

void Trace::note_compute(int pid, double seconds) {
  auto& s = pid_stats_.at(static_cast<std::size_t>(pid));
  s.compute_seconds += seconds;
  s.busy_seconds += seconds;
}

void Trace::dump(std::ostream& out) const {
  for (const auto& e : events_) {
    out << "t=" << e.time << "  P" << e.pid << ' ' << to_string(e.kind);
    if (e.peer >= 0) out << " <-> P" << e.peer;
    if (e.items > 0) out << " (" << e.items << " items)";
    if (!e.label.empty()) out << "  [" << e.label << ']';
    out << '\n';
  }
}

void Trace::clear() {
  events_.clear();
  events_recorded_ = 0;
  for (auto& s : pid_stats_) s = PidStats{};
}

}  // namespace hbsp::sim
