#include "sim/sim_params.hpp"

#include <stdexcept>

#include "util/hash.hpp"

namespace hbsp::sim {

std::uint64_t SimParams::fingerprint() const {
  util::Hash64 hash;
  hash.add_double(recv_ratio);
  hash.add_double(o_send);
  hash.add_double(o_recv);
  hash.add_double(wire_factor_base);
  hash.add_double(wire_level_scale);
  hash.add(model_wire_contention ? 1u : 0u);
  hash.add_double(latency_base);
  hash.add_double(latency_level_scale);
  hash.add_double(seconds_per_op);
  hash.add_double(load_stddev);
  hash.add(load_seed);
  hash.add_double(retry_timeout);
  hash.add_double(retry_backoff);
  hash.add_int(max_send_attempts);
  hash.add_double(failure_detector_multiple);
  return hash.digest();
}

void SimParams::validate() const {
  if (recv_ratio < 0.0) throw std::invalid_argument{"SimParams: recv_ratio < 0"};
  if (o_send < 0.0 || o_recv < 0.0) {
    throw std::invalid_argument{"SimParams: negative per-message overhead"};
  }
  if (wire_factor_base < 0.0 || wire_level_scale <= 0.0) {
    throw std::invalid_argument{"SimParams: bad wire contention parameters"};
  }
  if (latency_base < 0.0 || latency_level_scale <= 0.0) {
    throw std::invalid_argument{"SimParams: bad latency parameters"};
  }
  if (load_stddev < 0.0) {
    throw std::invalid_argument{"SimParams: load_stddev < 0"};
  }
  if (!(retry_timeout > 0.0)) {
    throw std::invalid_argument{
        "SimParams: retry_timeout must be > 0 (a zero timeout would re-send "
        "lost messages instantly, for free)"};
  }
  if (!(retry_backoff >= 1.0)) {
    throw std::invalid_argument{
        "SimParams: retry_backoff must be >= 1 (timeouts may not shrink)"};
  }
  if (max_send_attempts < 1) {
    throw std::invalid_argument{
        "SimParams: max_send_attempts must be >= 1 (a message needs at least "
        "one attempt)"};
  }
  if (!(failure_detector_multiple >= 1.0)) {
    throw std::invalid_argument{
        "SimParams: failure_detector_multiple must be >= 1 (the detector "
        "cannot fire before the expected barrier exit)"};
  }
}

}  // namespace hbsp::sim
