#include "sim/sim_params.hpp"

#include <stdexcept>

namespace hbsp::sim {

void SimParams::validate() const {
  if (recv_ratio < 0.0) throw std::invalid_argument{"SimParams: recv_ratio < 0"};
  if (o_send < 0.0 || o_recv < 0.0) {
    throw std::invalid_argument{"SimParams: negative per-message overhead"};
  }
  if (wire_factor_base < 0.0 || wire_level_scale <= 0.0) {
    throw std::invalid_argument{"SimParams: bad wire contention parameters"};
  }
  if (latency_base < 0.0 || latency_level_scale <= 0.0) {
    throw std::invalid_argument{"SimParams: bad latency parameters"};
  }
  if (load_stddev < 0.0) {
    throw std::invalid_argument{"SimParams: load_stddev < 0"};
  }
  if (!(retry_timeout > 0.0)) {
    throw std::invalid_argument{
        "SimParams: retry_timeout must be > 0 (a zero timeout would re-send "
        "lost messages instantly, for free)"};
  }
  if (!(retry_backoff >= 1.0)) {
    throw std::invalid_argument{
        "SimParams: retry_backoff must be >= 1 (timeouts may not shrink)"};
  }
  if (max_send_attempts < 1) {
    throw std::invalid_argument{
        "SimParams: max_send_attempts must be >= 1 (a message needs at least "
        "one attempt)"};
  }
  if (!(failure_detector_multiple >= 1.0)) {
    throw std::invalid_argument{
        "SimParams: failure_detector_multiple must be >= 1 (the detector "
        "cannot fire before the expected barrier exit)"};
  }
}

}  // namespace hbsp::sim
