#include "sim/sim_params.hpp"

#include <stdexcept>

namespace hbsp::sim {

void SimParams::validate() const {
  if (recv_ratio < 0.0) throw std::invalid_argument{"SimParams: recv_ratio < 0"};
  if (o_send < 0.0 || o_recv < 0.0) {
    throw std::invalid_argument{"SimParams: negative per-message overhead"};
  }
  if (wire_factor_base < 0.0 || wire_level_scale <= 0.0) {
    throw std::invalid_argument{"SimParams: bad wire contention parameters"};
  }
  if (latency_base < 0.0 || latency_level_scale <= 0.0) {
    throw std::invalid_argument{"SimParams: bad latency parameters"};
  }
  if (load_stddev < 0.0) {
    throw std::invalid_argument{"SimParams: load_stddev < 0"};
  }
}

}  // namespace hbsp::sim
