#pragma once
// Messages and typed pack/unpack buffers for the HBSPlib-like runtime.
//
// The paper's HBSPlib sits on PVM, whose programs pack typed data into a
// send buffer and unpack on receipt. PackBuffer/UnpackBuffer reproduce that
// programming surface; Message is the delivered unit. A message carries an
// explicit `items` count for the cost model (the paper counts abstract
// packets — its experiments use 4-byte integers), decoupled from payload
// bytes.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <span>
#include <stdexcept>
#include <type_traits>
#include <vector>

namespace hbsp::rt {

/// A delivered message: available from the superstep after it was sent.
struct Message {
  int src_pid = -1;
  int tag = 0;
  std::size_t items = 0;  ///< model packets, for cost accounting
  std::vector<std::byte> payload;

  /// Reinterprets the payload as trivially-copyable T values; throws
  /// std::length_error if the payload size is not a multiple of sizeof(T).
  template <typename T>
  [[nodiscard]] std::vector<T> unpack_all() const {
    static_assert(std::is_trivially_copyable_v<T>);
    if (payload.size() % sizeof(T) != 0) {
      throw std::length_error{"Message::unpack_all: size mismatch"};
    }
    std::vector<T> values(payload.size() / sizeof(T));
    if (!values.empty()) {
      std::memcpy(values.data(), payload.data(), payload.size());
    }
    return values;
  }
};

/// Append-only typed send buffer (PVM pvm_pk* style).
class PackBuffer {
 public:
  template <typename T>
  void pack(const T& value) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* bytes = reinterpret_cast<const std::byte*>(&value);
    bytes_.insert(bytes_.end(), bytes, bytes + sizeof(T));
  }

  template <typename T>
  void pack_span(std::span<const T> values) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* bytes = reinterpret_cast<const std::byte*>(values.data());
    bytes_.insert(bytes_.end(), bytes, bytes + values.size_bytes());
  }

  [[nodiscard]] const std::vector<std::byte>& bytes() const noexcept {
    return bytes_;
  }
  [[nodiscard]] std::vector<std::byte> take() noexcept { return std::move(bytes_); }
  [[nodiscard]] std::size_t size() const noexcept { return bytes_.size(); }
  void clear() noexcept { bytes_.clear(); }

 private:
  std::vector<std::byte> bytes_;
};

/// Recycles payload vectors between supersteps so a replay-style program
/// stops paying one allocation per message.
///
/// Hbsp::send takes ownership of its payload vector and recv_all hands the
/// delivered payloads back, so the natural lifecycle is: acquire() a buffer
/// per send, then recycle() everything recv_all returned once the superstep's
/// messages are consumed. acquire() zero-fills, so a recycled buffer is
/// indistinguishable from a fresh one.
///
/// NOT thread-safe by design: the runtime invokes the same Program from every
/// pid thread, so each invocation keeps its own pool as a local (per-thread)
/// variable. acquires()/reuses() let callers publish deterministic totals —
/// the per-pid counts are a pure function of the program, independent of
/// thread scheduling.
class BufferPool {
 public:
  /// A zero-filled buffer of `bytes` bytes, reusing pooled capacity when any
  /// is available.
  [[nodiscard]] std::vector<std::byte> acquire(std::size_t bytes) {
    ++acquires_;
    if (free_.empty()) return std::vector<std::byte>(bytes, std::byte{0});
    ++reuses_;
    std::vector<std::byte> buffer = std::move(free_.back());
    free_.pop_back();
    buffer.assign(bytes, std::byte{0});
    return buffer;
  }

  /// Returns one buffer's storage to the pool.
  void release(std::vector<std::byte>&& buffer) {
    free_.push_back(std::move(buffer));
  }

  /// Strips the payloads off delivered messages and pools their storage.
  void recycle(std::vector<Message>&& messages) {
    for (Message& message : messages) {
      free_.push_back(std::move(message.payload));
    }
  }

  [[nodiscard]] std::size_t pooled() const noexcept { return free_.size(); }
  [[nodiscard]] std::size_t acquires() const noexcept { return acquires_; }
  [[nodiscard]] std::size_t reuses() const noexcept { return reuses_; }

 private:
  std::vector<std::vector<std::byte>> free_;
  std::size_t acquires_ = 0;
  std::size_t reuses_ = 0;
};

/// Sequential typed reader over a message payload (PVM pvm_upk* style).
class UnpackBuffer {
 public:
  explicit UnpackBuffer(std::span<const std::byte> bytes) : bytes_(bytes) {}
  explicit UnpackBuffer(const Message& message) : bytes_(message.payload) {}

  template <typename T>
  [[nodiscard]] T unpack() {
    static_assert(std::is_trivially_copyable_v<T>);
    if (offset_ + sizeof(T) > bytes_.size()) {
      throw std::out_of_range{"UnpackBuffer: read past end"};
    }
    T value;
    std::memcpy(&value, bytes_.data() + offset_, sizeof(T));
    offset_ += sizeof(T);
    return value;
  }

  template <typename T>
  [[nodiscard]] std::vector<T> unpack_span(std::size_t count) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (offset_ + count * sizeof(T) > bytes_.size()) {
      throw std::out_of_range{"UnpackBuffer: read past end"};
    }
    std::vector<T> values(count);
    if (count > 0) {
      std::memcpy(values.data(), bytes_.data() + offset_, count * sizeof(T));
    }
    offset_ += count * sizeof(T);
    return values;
  }

  [[nodiscard]] std::size_t remaining() const noexcept {
    return bytes_.size() - offset_;
  }

 private:
  std::span<const std::byte> bytes_;
  std::size_t offset_ = 0;
};

}  // namespace hbsp::rt
