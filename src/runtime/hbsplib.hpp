#pragma once
// The HBSPlib-like programming interface (paper §5.1).
//
// Programs are SPMD: one `Program` callable runs per processor against an
// `Hbsp` context providing message passing, hierarchical synchronisation,
// and the heterogeneity enquiry primitives the paper describes ("functions
// [that] return the rank of a processor as well as guide the programmer
// toward balanced workloads").
//
// Execution semantics follow §3.2: within a super^i-step a processor
// computes locally and sends messages; a message sent in one superstep is
// available at the destination at the beginning of the next; every superstep
// ends with a barrier over the synchronised subtree. `sync()` synchronises
// the whole machine; `sync_scope(cluster)` runs the cluster-local barrier of
// a super^i-step (concurrent across disjoint clusters).
//
// Two engines execute the same program:
//   kVirtualTime  — processors are real threads, but time is the cluster
//                   simulator's deterministic virtual clock (the default; the
//                   reproduction's measurements all use this engine);
//   kWallClock    — pure std::thread execution with real barriers; used to
//                   cross-check payload semantics against the simulator.

#include <cstddef>
#include <functional>
#include <memory>
#include <span>
#include <string_view>
#include <vector>

#include "core/machine.hpp"
#include "runtime/message.hpp"
#include "sim/sim_params.hpp"

namespace hbsp::faults {
class FaultInjector;
}  // namespace hbsp::faults

namespace hbsp::rt {

enum class EngineKind { kVirtualTime, kWallClock };

[[nodiscard]] std::string_view to_string(EngineKind kind) noexcept;

class Runtime;  // internal coordinator

/// Per-processor SPMD context. Not copyable; valid only for the duration of
/// the program run. All methods are called from the owning processor's
/// thread only.
class Hbsp {
 public:
  // --- identity & machine enquiry -----------------------------------------
  [[nodiscard]] int pid() const noexcept { return pid_; }
  [[nodiscard]] int nprocs() const noexcept;
  [[nodiscard]] const MachineTree& machine() const noexcept;

  // --- heterogeneity enquiry (HBSPlib extensions) --------------------------
  /// This processor's relative slowness r (1 = fastest machine).
  [[nodiscard]] double speed() const;
  /// Rank by speed: 0 is the fastest processor (ties broken by pid).
  [[nodiscard]] int rank_by_speed() const;
  [[nodiscard]] int fastest_pid() const;
  [[nodiscard]] int slowest_pid() const;
  /// Balanced shares of n items over all processors (c_j·n, summing to n).
  [[nodiscard]] std::vector<std::size_t> balanced_shares(std::size_t n) const;
  /// This processor's balanced share of n items.
  [[nodiscard]] std::size_t my_balanced_share(std::size_t n) const;

  // --- message passing ------------------------------------------------------
  /// Queues `payload` to `dst`; delivered at the start of the next superstep.
  /// `items` is the model-packet count for cost accounting (defaults to
  /// payload bytes / 4, the paper's integer packets). Self-sends are
  /// delivered but cost nothing (§5.2).
  void send(int dst, std::vector<std::byte> payload, std::size_t items = SIZE_MAX,
            int tag = 0);

  /// Convenience: sends a span of trivially-copyable values; items = count.
  template <typename T>
  void send_items(int dst, std::span<const T> values, int tag = 0) {
    static_assert(std::is_trivially_copyable_v<T>);
    const auto* bytes = reinterpret_cast<const std::byte*>(values.data());
    send(dst, std::vector<std::byte>(bytes, bytes + values.size_bytes()),
         values.size(), tag);
  }

  /// Moves out all messages delivered at the last synchronisation, ordered by
  /// (sending superstep, src pid, per-sender issue order).
  [[nodiscard]] std::vector<Message> recv_all();

  /// Messages waiting from the last synchronisation without consuming them.
  [[nodiscard]] std::size_t pending_messages() const;

  // --- computation & synchronisation ---------------------------------------
  /// Accrues `ops` abstract operations of local work, charged to this
  /// processor's virtual clock at the next synchronisation.
  void charge_compute(double ops);

  /// Whole-machine barrier: ends the current superstep at the root scope.
  void sync();

  /// Cluster barrier: ends a super^i-step over `scope`'s subtree. Every
  /// processor in the subtree must call it (with the same scope) before any
  /// participant proceeds; sends issued this superstep must stay inside the
  /// scope.
  void sync_scope(MachineId scope);

  /// Current time of this processor: virtual seconds (kVirtualTime) or wall
  /// seconds since the run started (kWallClock).
  [[nodiscard]] double time() const;

  [[nodiscard]] EngineKind engine() const noexcept;

  Hbsp(const Hbsp&) = delete;
  Hbsp& operator=(const Hbsp&) = delete;

 private:
  friend class Runtime;
  Hbsp(Runtime& runtime, int pid) : runtime_(&runtime), pid_(pid) {}

  Runtime* runtime_;
  int pid_;
};

using Program = std::function<void(Hbsp&)>;

/// Outcome of a program run.
struct RunResult {
  double makespan = 0.0;             ///< latest processor finish time
  std::vector<double> finish_times;  ///< per pid
  std::size_t supersteps = 0;        ///< barrier phases executed (any scope)
};

/// Tunables for a program run.
struct RunOptions {
  EngineKind engine = EngineKind::kVirtualTime;
  /// Wall-clock seconds a processor may wait at a barrier before the run is
  /// failed with "barrier timeout" — the guard against mismatched sync_scope
  /// calls deadlocking a program forever.
  double barrier_timeout_seconds = 60.0;

  /// Optional fault injector for the virtual-time engine: slowdown windows,
  /// message loss (re-sent with timeout/backoff), and machine drops perturb
  /// the *virtual clock* exactly as in ClusterSim. Payload delivery between
  /// program instances is unaffected — the simulated transport re-sends
  /// until delivery — so program semantics stay intact while timings
  /// degrade honestly. Must outlive the run; ignored by kWallClock.
  const faults::FaultInjector* fault_injector = nullptr;
};

/// Runs `program` SPMD on every processor of `tree` and blocks until all
/// finish. Exceptions thrown by any instance are rethrown here (first one
/// wins) after all threads have been joined.
RunResult run_program(const MachineTree& tree, const sim::SimParams& params,
                      const Program& program,
                      EngineKind engine = EngineKind::kVirtualTime);

/// As above with explicit options.
RunResult run_program(const MachineTree& tree, const sim::SimParams& params,
                      const Program& program, const RunOptions& options);

}  // namespace hbsp::rt
