// Superstep coordinator behind the Hbsp context: one std::thread per
// processor, per-scope barriers, and timing from either the cluster
// simulator (virtual time) or the wall clock.

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <exception>
#include <map>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/workload.hpp"
#include "runtime/hbsplib.hpp"
#include "sim/cluster_sim.hpp"

namespace hbsp::rt {
namespace {

/// Raised in peers when some processor failed; swallowed by run_program so
/// the original error is what callers see.
struct PeerFailure : std::exception {
  [[nodiscard]] const char* what() const noexcept override {
    return "peer processor failed";
  }
};

}  // namespace

std::string_view to_string(EngineKind kind) noexcept {
  return kind == EngineKind::kVirtualTime ? "virtual-time" : "wall-clock";
}

class Runtime {
 public:
  Runtime(const MachineTree& tree, const sim::SimParams& params,
          const RunOptions& options)
      : tree_(tree),
        engine_(options.engine),
        barrier_timeout_(std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::duration<double>(options.barrier_timeout_seconds))) {
    if (engine_ == EngineKind::kVirtualTime) {
      sim_ = std::make_unique<sim::ClusterSim>(tree_, params);
      if (options.fault_injector != nullptr) {
        sim_->set_fault_injector(options.fault_injector);
      }
    }
    const auto p = static_cast<std::size_t>(tree_.num_processors());
    states_.resize(p);
    // Speed ranks: 0 = fastest, ties by pid.
    std::vector<int> order(p);
    for (std::size_t i = 0; i < p; ++i) order[i] = static_cast<int>(i);
    std::sort(order.begin(), order.end(), [&](int a, int b) {
      const double ra = tree_.processor_r(a), rb = tree_.processor_r(b);
      return ra != rb ? ra < rb : a < b;
    });
    rank_of_.resize(p);
    for (std::size_t i = 0; i < p; ++i) {
      rank_of_[static_cast<std::size_t>(order[i])] = static_cast<int>(i);
    }
  }

  RunResult run(const Program& program) {
    start_ = std::chrono::steady_clock::now();
    const int p = tree_.num_processors();
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(p));
    for (int pid = 0; pid < p; ++pid) {
      threads.emplace_back([this, pid, &program] {
        Hbsp ctx{*this, pid};
        try {
          program(ctx);
          std::lock_guard lock{mutex_};
          states_[static_cast<std::size_t>(pid)].finish_time = time_locked(pid);
        } catch (const PeerFailure&) {
          // Another processor owns the root cause.
        } catch (...) {
          std::lock_guard lock{mutex_};
          if (!error_) error_ = std::current_exception();
          failed_ = true;
          cv_.notify_all();
        }
      });
    }
    for (auto& t : threads) t.join();
    if (error_) std::rethrow_exception(error_);

    RunResult result;
    result.finish_times.reserve(static_cast<std::size_t>(p));
    for (int pid = 0; pid < p; ++pid) {
      result.finish_times.push_back(
          states_[static_cast<std::size_t>(pid)].finish_time);
    }
    result.makespan = *std::max_element(result.finish_times.begin(),
                                        result.finish_times.end());
    result.supersteps = supersteps_;
    return result;
  }

  // --- Hbsp backends --------------------------------------------------------

  [[nodiscard]] const MachineTree& tree() const noexcept { return tree_; }
  [[nodiscard]] EngineKind engine() const noexcept { return engine_; }
  [[nodiscard]] int rank_of(int pid) const {
    return rank_of_[static_cast<std::size_t>(pid)];
  }

  void send(int src, int dst, std::vector<std::byte> payload, std::size_t items,
            int tag) {
    if (dst < 0 || dst >= tree_.num_processors()) {
      throw std::invalid_argument{"send: bad destination pid " +
                                  std::to_string(dst)};
    }
    if (items == SIZE_MAX) items = (payload.size() + 3) / 4;
    std::lock_guard lock{mutex_};
    auto& st = states_[static_cast<std::size_t>(src)];
    Message msg;
    msg.src_pid = src;
    msg.tag = tag;
    msg.items = items;
    msg.payload = std::move(payload);
    st.pending.push_back({dst, std::move(msg)});
  }

  std::vector<Message> recv_all(int pid) {
    std::lock_guard lock{mutex_};
    return std::exchange(states_[static_cast<std::size_t>(pid)].inbox, {});
  }

  std::size_t pending_messages(int pid) {
    std::lock_guard lock{mutex_};
    return states_[static_cast<std::size_t>(pid)].inbox.size();
  }

  void charge_compute(int pid, double ops) {
    if (ops < 0.0) throw std::invalid_argument{"charge_compute: negative ops"};
    std::lock_guard lock{mutex_};
    states_[static_cast<std::size_t>(pid)].compute_ops += ops;
  }

  double time(int pid) {
    std::lock_guard lock{mutex_};
    return time_locked(pid);
  }

  void sync_scope(int pid, MachineId scope) {
    std::unique_lock lock{mutex_};
    if (failed_) throw PeerFailure{};
    const auto [first, last] = tree_.processor_range(scope);
    if (pid < first || pid >= last) {
      record_error(std::make_exception_ptr(std::logic_error{
          "sync_scope: pid " + std::to_string(pid) + " outside scope"}));
      throw PeerFailure{};
    }

    auto& barrier = scopes_[scope_key(scope)];
    auto& st = states_[static_cast<std::size_t>(pid)];
    // Stage this processor's superstep contributions.
    barrier.staged_sends.emplace_back(pid, std::exchange(st.pending, {}));
    if (st.compute_ops > 0.0) {
      barrier.staged_compute.push_back({pid, std::exchange(st.compute_ops, 0.0)});
    }

    if (++barrier.arrived < last - first) {
      const std::uint64_t generation = barrier.generation;
      const bool woke = cv_.wait_for(lock, barrier_timeout_, [&] {
        return barrier.generation != generation || failed_;
      });
      if (failed_) throw PeerFailure{};
      if (!woke) {
        record_error(std::make_exception_ptr(std::runtime_error{
            "sync_scope: barrier timeout (mismatched sync calls?)"}));
        throw PeerFailure{};
      }
      return;
    }

    // Last arriver closes the superstep.
    try {
      complete_superstep_locked(scope, barrier);
    } catch (...) {
      record_error(std::current_exception());
      barrier.arrived = 0;
      barrier.staged_sends.clear();
      barrier.staged_compute.clear();
      ++barrier.generation;
      throw PeerFailure{};
    }
    barrier.arrived = 0;
    ++barrier.generation;
    ++supersteps_;
    cv_.notify_all();
  }

 private:
  struct PendingSend {
    int dst;
    Message msg;
  };
  struct PidState {
    std::vector<PendingSend> pending;
    double compute_ops = 0.0;
    std::vector<Message> inbox;
    double finish_time = 0.0;
  };
  struct ScopeBarrier {
    int arrived = 0;
    std::uint64_t generation = 0;
    std::vector<std::pair<int, std::vector<PendingSend>>> staged_sends;
    std::vector<ComputeWork> staged_compute;
  };

  [[nodiscard]] static std::uint64_t scope_key(MachineId id) noexcept {
    return (static_cast<std::uint64_t>(static_cast<std::uint32_t>(id.level))
            << 32) |
           static_cast<std::uint32_t>(id.index);
  }

  [[nodiscard]] double time_locked(int pid) const {
    if (engine_ == EngineKind::kVirtualTime) return sim_->now(pid);
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start_)
        .count();
  }

  void record_error(std::exception_ptr error) {
    if (!error_) error_ = std::move(error);
    failed_ = true;
    cv_.notify_all();
  }

  /// Builds the superstep's plan, advances virtual time, delivers payloads.
  /// Caller holds the mutex.
  void complete_superstep_locked(MachineId scope, ScopeBarrier& barrier) {
    const auto [first, last] = tree_.processor_range(scope);

    SuperstepPlan plan;
    plan.label = "runtime superstep";
    plan.level = std::max(1, scope.level);
    plan.sync_scope = scope;
    plan.compute = std::move(barrier.staged_compute);
    barrier.staged_compute = {};

    // Deterministic transfer order: by src pid, then per-sender issue order.
    std::sort(barrier.staged_sends.begin(), barrier.staged_sends.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [src, sends] : barrier.staged_sends) {
      for (auto& ps : sends) {
        if (ps.dst < first || ps.dst >= last) {
          throw std::logic_error{
              "superstep send from pid " + std::to_string(src) + " to pid " +
              std::to_string(ps.dst) + " leaves the synchronised scope"};
        }
        plan.transfers.push_back({src, ps.dst, ps.msg.items});
      }
    }

    if (engine_ == EngineKind::kVirtualTime) {
      Phase phase;
      phase.plans.push_back(plan);
      sim_->execute_phase(phase);
    }

    // Deliver payloads: available from the next superstep (§3.2).
    for (auto& [src, sends] : barrier.staged_sends) {
      for (auto& ps : sends) {
        states_[static_cast<std::size_t>(ps.dst)].inbox.push_back(
            std::move(ps.msg));
      }
    }
    barrier.staged_sends.clear();
  }

  const MachineTree& tree_;
  EngineKind engine_;
  std::unique_ptr<sim::ClusterSim> sim_;
  std::vector<PidState> states_;
  std::vector<int> rank_of_;

  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<std::uint64_t, ScopeBarrier> scopes_;
  std::chrono::milliseconds barrier_timeout_{60000};
  std::exception_ptr error_;
  bool failed_ = false;
  std::size_t supersteps_ = 0;
  std::chrono::steady_clock::time_point start_;
};

// --- Hbsp forwarding ---------------------------------------------------------

int Hbsp::nprocs() const noexcept { return runtime_->tree().num_processors(); }
const MachineTree& Hbsp::machine() const noexcept { return runtime_->tree(); }

double Hbsp::speed() const { return runtime_->tree().processor_r(pid_); }
int Hbsp::rank_by_speed() const { return runtime_->rank_of(pid_); }
int Hbsp::fastest_pid() const {
  return runtime_->tree().coordinator_pid(runtime_->tree().root());
}
int Hbsp::slowest_pid() const {
  return runtime_->tree().slowest_pid(runtime_->tree().root());
}

std::vector<std::size_t> Hbsp::balanced_shares(std::size_t n) const {
  return tree_partition(runtime_->tree(), n);
}

std::size_t Hbsp::my_balanced_share(std::size_t n) const {
  return balanced_shares(n)[static_cast<std::size_t>(pid_)];
}

void Hbsp::send(int dst, std::vector<std::byte> payload, std::size_t items,
                int tag) {
  runtime_->send(pid_, dst, std::move(payload), items, tag);
}

std::vector<Message> Hbsp::recv_all() { return runtime_->recv_all(pid_); }

std::size_t Hbsp::pending_messages() const {
  return runtime_->pending_messages(pid_);
}

void Hbsp::charge_compute(double ops) { runtime_->charge_compute(pid_, ops); }

void Hbsp::sync() { runtime_->sync_scope(pid_, runtime_->tree().root()); }

void Hbsp::sync_scope(MachineId scope) { runtime_->sync_scope(pid_, scope); }

double Hbsp::time() const { return runtime_->time(pid_); }

EngineKind Hbsp::engine() const noexcept { return runtime_->engine(); }

RunResult run_program(const MachineTree& tree, const sim::SimParams& params,
                      const Program& program, EngineKind engine) {
  RunOptions options;
  options.engine = engine;
  return run_program(tree, params, program, options);
}

RunResult run_program(const MachineTree& tree, const sim::SimParams& params,
                      const Program& program, const RunOptions& options) {
  Runtime runtime{tree, params, options};
  return runtime.run(program);
}

}  // namespace hbsp::rt
