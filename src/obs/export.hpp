#pragma once
// Exporters for metrics snapshots: a human-readable console table and a
// machine-readable JSON encoding (the payload of the BENCH_<pr>.json files
// the CI perf gate diffs across PRs).
//
// JSON conventions:
//  * keys appear in sorted order (snapshots are already name-sorted), so
//    two snapshots with equal contents serialise to byte-identical text —
//    the property the perf gate's exact-match on counters relies on;
//  * doubles use the shortest round-trip representation (std::to_chars);
//  * no external JSON dependency: the format is a closed, known shape.

#include <string>

#include "obs/metrics.hpp"
#include "util/table.hpp"

namespace hbsp::obs {

/// Escapes a string for embedding in a JSON string literal (quotes not
/// included).
[[nodiscard]] std::string json_escape(const std::string& text);

/// Shortest round-trip decimal for a double ("1e-06", "0.25"); "null" for
/// non-finite values, which JSON cannot represent.
[[nodiscard]] std::string json_number(double value);

/// One table over all three metric kinds: counters print their value,
/// gauges their reading, histograms count/mean/min/max.
[[nodiscard]] util::Table metrics_table(const MetricsSnapshot& snapshot,
                                        const std::string& title);

/// The snapshot as a JSON object:
///   {"counters": {name: value, ...},
///    "gauges": {name: value, ...},
///    "histograms": {name: {"count": n, "sum": s, "min": lo, "max": hi,
///                          "mean": m, "buckets": [..]}, ...}}
/// `indent` spaces of base indentation are applied to every line (the
/// object opens inline), so snapshots nest cleanly into larger documents.
[[nodiscard]] std::string snapshot_json(const MetricsSnapshot& snapshot,
                                        int indent = 0);

/// Writes snapshot_json (plus a trailing newline) to `path`; throws
/// std::runtime_error when the file cannot be written.
void write_snapshot_json(const MetricsSnapshot& snapshot,
                         const std::string& path);

}  // namespace hbsp::obs
