#include "obs/trace_export.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <stdexcept>
#include <vector>

#include "obs/export.hpp"

namespace hbsp::obs {

namespace {

bool included(const SpanView& span, TraceFilter filter) {
  switch (filter) {
    case TraceFilter::kAll:
      return true;
    case TraceFilter::kVirtualOnly:
      return span.timebase == Timebase::kVirtual;
    case TraceFilter::kWallOnly:
      return span.timebase == Timebase::kWall;
  }
  return true;
}

}  // namespace

std::string chrome_trace_json(const TraceSnapshot& snapshot,
                              TraceFilter filter) {
  // Filtered view: included spans keep their snapshot order (already
  // canonical); ids are positions within the filtered event list so the
  // text is self-contained and byte-stable under filtering.
  std::vector<std::size_t> events;  // snapshot indices
  std::vector<std::int64_t> filtered_id(snapshot.spans.size(), -1);
  for (std::size_t i = 0; i < snapshot.spans.size(); ++i) {
    if (!included(snapshot.spans[i], filter)) continue;
    filtered_id[i] = static_cast<std::int64_t>(events.size());
    events.push_back(i);
  }

  // Tracks that survive the filter, sorted; tid = index in this list.
  std::vector<std::string> tracks;
  for (const std::size_t i : events) {
    tracks.push_back(snapshot.spans[i].track);
  }
  std::sort(tracks.begin(), tracks.end());
  tracks.erase(std::unique(tracks.begin(), tracks.end()), tracks.end());
  std::map<std::string, std::size_t> tid;
  for (std::size_t t = 0; t < tracks.size(); ++t) tid[tracks[t]] = t;

  std::string json = "{\n";
  json += "  \"displayTimeUnit\": \"ms\",\n";
  json += "  \"traceEvents\": [\n";
  json +=
      "    {\"ph\": \"M\", \"pid\": 0, \"tid\": 0, \"name\": "
      "\"process_name\", \"args\": {\"name\": \"hbspk\"}}";
  for (std::size_t t = 0; t < tracks.size(); ++t) {
    json += ",\n    {\"ph\": \"M\", \"pid\": 0, \"tid\": " +
            std::to_string(t) +
            ", \"name\": \"thread_name\", \"args\": {\"name\": \"" +
            json_escape(tracks[t]) + "\"}}";
  }
  for (std::size_t e = 0; e < events.size(); ++e) {
    const SpanView& span = snapshot.spans[events[e]];
    json += ",\n    {\"ph\": \"X\", \"pid\": 0, \"tid\": " +
            std::to_string(tid[span.track]) +
            ", \"ts\": " + json_number(span.begin * 1e6) +
            ", \"dur\": " + json_number(span.duration() * 1e6) +
            ", \"name\": \"" + json_escape(span.name) +
            "\", \"cat\": \"" + to_string(span.timebase) +
            "\", \"args\": {\"id\": " + std::to_string(e);
    if (span.parent >= 0 &&
        filtered_id[static_cast<std::size_t>(span.parent)] >= 0) {
      json += ", \"parent\": " +
              std::to_string(
                  filtered_id[static_cast<std::size_t>(span.parent)]);
    }
    json += std::string{", \"kind\": \""} + to_string(span.kind) + "\"";
    for (const SpanArg& arg : span.args) {
      json += ", \"" + json_escape(arg.name) +
              "\": " + std::to_string(arg.value);
    }
    json += "}}";
  }
  json += "\n  ]\n}\n";
  return json;
}

void write_chrome_trace(const TraceSnapshot& snapshot, const std::string& path,
                        TraceFilter filter) {
  std::ofstream out{path};
  if (!out) {
    throw std::runtime_error{"write_chrome_trace: cannot open " + path};
  }
  out << chrome_trace_json(snapshot, filter);
  if (!out) {
    throw std::runtime_error{"write_chrome_trace: write failed for " + path};
  }
}

util::Table self_time_table(const TraceSnapshot& snapshot, std::size_t top_n) {
  // Self time per span = duration minus same-timebase child durations
  // (children on a different timebase measure different seconds, so they
  // never subtract). Spans are visited in canonical order, so the sums are
  // deterministic.
  std::vector<double> self(snapshot.spans.size());
  for (std::size_t i = 0; i < snapshot.spans.size(); ++i) {
    self[i] = snapshot.spans[i].duration();
  }
  for (std::size_t i = 0; i < snapshot.spans.size(); ++i) {
    const SpanView& span = snapshot.spans[i];
    if (span.parent < 0) continue;
    const auto parent = static_cast<std::size_t>(span.parent);
    if (snapshot.spans[parent].timebase == span.timebase) {
      self[parent] -= span.duration();
    }
  }

  struct Row {
    std::size_t count = 0;
    double total = 0.0;
    double self = 0.0;
  };
  std::map<std::pair<int, std::string>, Row> rows;
  for (std::size_t i = 0; i < snapshot.spans.size(); ++i) {
    const SpanView& span = snapshot.spans[i];
    Row& row = rows[{static_cast<int>(span.timebase), span.name}];
    ++row.count;
    row.total += span.duration();
    row.self += self[i];
  }

  struct Named {
    int timebase;
    std::string name;
    Row row;
  };
  std::vector<Named> sorted;
  sorted.reserve(rows.size());
  for (const auto& [key, row] : rows) {
    sorted.push_back({key.first, key.second, row});
  }
  std::sort(sorted.begin(), sorted.end(), [](const Named& a, const Named& b) {
    if (a.row.self != b.row.self) return a.row.self > b.row.self;
    if (a.timebase != b.timebase) return a.timebase < b.timebase;
    return a.name < b.name;
  });
  if (sorted.size() > top_n) sorted.resize(top_n);

  util::Table table{"span self time (top " + std::to_string(top_n) + ")"};
  table.set_header({"timebase", "name", "count", "total s", "self s"});
  for (const Named& entry : sorted) {
    table.add_row({to_string(static_cast<Timebase>(entry.timebase)),
                   entry.name, std::to_string(entry.row.count),
                   util::Table::num(entry.row.total, 6),
                   util::Table::num(entry.row.self, 6)});
  }
  return table;
}

}  // namespace hbsp::obs
