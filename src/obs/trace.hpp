#pragma once
// Deterministic span tracing: the per-phase cost decomposition the metrics
// registry cannot give. Counters (obs/metrics.hpp) say *how many* sends and
// barriers a run performed; spans say *where* each virtual or wall second
// went — which superstep, which machine, which svc request stage — in a form
// Perfetto can render (obs/trace_export.hpp).
//
// Two timebases, one recorder:
//
//   kVirtual   simulated seconds. Emitted by the DES per phase, superstep,
//              message batch and barrier, under one track per (context,
//              machine/level). Virtual spans carry no wall time at all, so
//              the exported virtual trace is *byte-identical* at any thread
//              or shard count — the property the CI trace gate pins against
//              committed goldens, exactly like the sweep CSVs.
//
//   kWall      monotonic wall seconds on whichever sanctioned clock the
//              emitting layer already owns (svc routes through
//              svc::now_seconds(); sweeps use their cell timer; WallScope
//              reads the obs clock, which the determinism zones exclude).
//              Wall spans are for profiling — reported, never compared.
//
// Sharding mirrors obs::Registry: each recording thread owns a private shard
// it alone appends to, so the hot path is a vector push with no cross-thread
// traffic. snapshot() merges shards into one canonically sorted span list:
//
//   sort key   (timebase, track, begin, end, kind, name, args,
//               within-shard order)
//
// which is content-only, so the merged order never depends on which thread
// recorded what. The contract that makes ties deterministic: *a track is
// written by at most one thread at a time* (tracks embed the cell index /
// request ordinal / machine id, which already implies this everywhere the
// repo records).
//
// Parent links: begin_span pushes onto the recording thread's open-span
// stack; spans recorded while it is open become its children. end_span pops.
// Links are resolved to canonical snapshot indices at merge time; a parent
// still open at snapshot() (or recorded on another thread) resolves to -1.
//
// Off by default: when the recorder is disabled every instrumentation site
// skips span construction entirely, so tracing compiled in but disabled
// leaves counters, goldens and BENCH snapshots byte-identical.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hbsp::obs {

/// Which clock a span's begin/end seconds are on.
enum class Timebase : std::uint8_t { kVirtual, kWall };

/// What a span describes; kinds are what the reconciliation suite counts
/// against the sim.* / svc.* counters.
enum class SpanKind : std::uint8_t {
  kPhase,         ///< one CommSchedule phase (count == sim.phases)
  kSuperstep,     ///< one SuperstepPlan, ghosts included (count == sim.plans)
  kMessageBatch,  ///< a plan's send or receive batch; args carry the totals
  kBarrier,       ///< barrier enter -> exit (count == sim.barriers)
  kRequest,       ///< one svc submit outcome (count == svc.requests at 1-in-1)
  kStage,         ///< a lifecycle stage inside a request (queue, plan, ...)
  kCell,          ///< one sweep cell (wall)
  kOther,
};

[[nodiscard]] const char* to_string(Timebase timebase) noexcept;
[[nodiscard]] const char* to_string(SpanKind kind) noexcept;

/// One named integer argument ("attempts", 9). Integers only, by design:
/// args participate in byte-stable exports and in exact counter
/// reconciliation, neither of which wants doubles.
struct SpanArg {
  std::string name;
  std::int64_t value = 0;

  friend bool operator==(const SpanArg&, const SpanArg&) = default;
  friend auto operator<=>(const SpanArg&, const SpanArg&) = default;
};

namespace detail {

struct SpanRecord {
  std::string track;
  std::string name;
  SpanKind kind = SpanKind::kOther;
  Timebase timebase = Timebase::kVirtual;
  double begin = 0.0;
  double end = 0.0;
  std::int64_t parent = -1;  ///< within-shard index; -1 = no parent
  std::vector<SpanArg> args;
  bool open = false;  ///< begin_span'd but not yet end_span'd
};

/// One thread's private slice of the recorder.
struct TraceShard {
  std::vector<SpanRecord> spans;
  std::vector<std::size_t> stack;  ///< open-span indices, innermost last
  std::vector<std::string> context;  ///< TraceContext pieces, outermost first
};

}  // namespace detail

/// One merged span in a TraceSnapshot. `parent` is the index of the parent
/// span within the same snapshot (-1 for roots), stable across thread and
/// shard counts because the snapshot order is.
struct SpanView {
  std::string track;
  std::string name;
  SpanKind kind = SpanKind::kOther;
  Timebase timebase = Timebase::kVirtual;
  double begin = 0.0;
  double end = 0.0;
  std::int64_t parent = -1;
  std::vector<SpanArg> args;

  [[nodiscard]] double duration() const noexcept { return end - begin; }
};

/// A point-in-time merge of every shard's *completed* spans, canonically
/// sorted (see the file comment) with parent links resolved.
struct TraceSnapshot {
  std::vector<SpanView> spans;
  std::vector<std::string> tracks;  ///< sorted unique track names

  /// Number of spans of one kind (any timebase).
  [[nodiscard]] std::size_t count(SpanKind kind) const noexcept;
  /// Sum of the named integer arg over all spans of `kind`; absent args
  /// contribute 0. The reconciliation suite's workhorse.
  [[nodiscard]] std::int64_t arg_total(SpanKind kind,
                                       const std::string& arg) const noexcept;
};

/// Thread-sharded span recorder. One process-wide instance (global());
/// instances are independent, so tests can use private recorders.
class TraceRecorder {
 public:
  TraceRecorder();
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  /// The recorder every instrumented layer writes to.
  static TraceRecorder& global();

  /// Master switch. Instrumentation sites must check enabled() before
  /// building track strings; with the recorder disabled a traced binary
  /// behaves byte-identically to an untraced one.
  void set_enabled(bool on) noexcept;
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed) && mute_depth() == 0;
  }

  /// Opens a span on the calling thread at `begin` (caller-supplied seconds
  /// on `timebase`); spans recorded until the matching end_span become its
  /// children. Begin/end pairs nest strictly per thread.
  void begin_span(std::string track, std::string name, SpanKind kind,
                  Timebase timebase, double begin);

  /// Closes the innermost open span at `end`, attaching `args`. No-op when
  /// nothing is open (a site that raced the enable switch).
  void end_span(double end, std::vector<SpanArg> args = {});

  /// Records a complete span in one call; parent is the innermost span
  /// currently open on this thread, if any.
  void record_span(std::string track, std::string name, SpanKind kind,
                   Timebase timebase, double begin, double end,
                   std::vector<SpanArg> args = {});

  /// Thread-local track-name prefix, composed with '/'. Sweeps push the
  /// cell index, svc pushes the request ordinal, so the DES can name tracks
  /// deterministically without knowing who is driving it.
  void push_context(const std::string& piece);
  void pop_context();
  [[nodiscard]] std::string context() const;

  /// Merges every shard's completed spans (see the class comment). Safe to
  /// call at quiescent points; spans still open are excluded.
  [[nodiscard]] TraceSnapshot snapshot() const;

  /// Drops every recorded span and resets the open stacks. Call between
  /// workloads, like Registry::reset().
  void clear();

  /// Completed spans recorded since the last clear().
  [[nodiscard]] std::size_t span_count() const;

  /// Deterministic 1-in-`every` sampling decision for (seed, ordinal):
  /// seeded, reproducible, and uniform-ish over ordinals. every <= 1 always
  /// samples; the decision never depends on threads or wall time.
  [[nodiscard]] static bool sampled(std::uint64_t seed, std::uint64_t ordinal,
                                    std::uint64_t every) noexcept;

 private:
  friend class TraceMute;
  detail::TraceShard& local_shard();
  static int& mute_depth() noexcept;

  const std::uint64_t id_;  ///< process-unique; keys the thread-local cache
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<detail::TraceShard>> shards_;
};

/// RAII context piece: pushes on construction, pops on destruction. No-op
/// when the recorder is disabled at construction time.
class TraceContext {
 public:
  TraceContext(TraceRecorder& recorder, std::string piece);
  explicit TraceContext(std::string piece)
      : TraceContext(TraceRecorder::global(), std::move(piece)) {}
  ~TraceContext();
  TraceContext(const TraceContext&) = delete;
  TraceContext& operator=(const TraceContext&) = delete;

 private:
  TraceRecorder* recorder_ = nullptr;  ///< null when disabled at construction
};

/// RAII thread-local mute: while alive, enabled() reports false on this
/// thread. The serving layer wraps *unsampled* request computes in a mute so
/// a 1-in-N sampled load trace contains exactly the sampled requests' spans.
class TraceMute {
 public:
  TraceMute() noexcept { ++TraceRecorder::mute_depth(); }
  ~TraceMute() { --TraceRecorder::mute_depth(); }
  TraceMute(const TraceMute&) = delete;
  TraceMute& operator=(const TraceMute&) = delete;
};

/// RAII wall-clock span: reads the obs monotonic clock (obs is outside the
/// determinism zones precisely so instrumentation can) at construction and
/// destruction. No-op when the recorder is disabled at construction.
class WallScope {
 public:
  WallScope(TraceRecorder& recorder, std::string track, std::string name,
            SpanKind kind, std::vector<SpanArg> args = {});
  WallScope(std::string track, std::string name, SpanKind kind,
            std::vector<SpanArg> args = {})
      : WallScope(TraceRecorder::global(), std::move(track), std::move(name),
                  kind, std::move(args)) {}
  ~WallScope();
  WallScope(const WallScope&) = delete;
  WallScope& operator=(const WallScope&) = delete;

 private:
  TraceRecorder* recorder_ = nullptr;
  std::string track_;
  std::string name_;
  SpanKind kind_ = SpanKind::kOther;
  std::vector<SpanArg> args_;
  double begin_ = 0.0;
};

}  // namespace hbsp::obs
