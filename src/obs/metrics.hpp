#pragma once
// Metrics registry: thread-safe counters, gauges and histograms for the
// simulator, the planners, the fault path and the sweep engine.
//
// Design: every writing thread owns a private *shard* per registry — a map
// from metric name to cells it alone mutates — so the hot path (a counter
// increment through a cached handle) is a plain non-atomic add with no
// cross-thread traffic. snapshot() merges all shards *by metric name* with
// order-independent combine rules, so the reported totals never depend on
// which worker did which cell or on the number of workers:
//
//   counter    u64 sum            (integer adds commute)
//   gauge      max                (the only order-free "set"-like merge)
//   histogram  bucket-count sums; value sums accumulated in sorted order
//
// Counters therefore carry the *deterministic* totals the CI perf gate
// exact-matches across thread counts (messages sent, cells run, plans
// built); wall-clock style measurements belong in histograms or gauges,
// which the gate reports but never gates.
//
// Handles (Counter/Gauge/Histogram) are bound to the shard of the thread
// that fetched them and must not be shared across threads; fetching the
// same name from another thread yields that thread's own cell. reset() and
// snapshot() may race with writers only in the trivial sense of missing
// in-flight increments; call them at quiescent points (between workloads).

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace hbsp::obs {

/// Number of exponential histogram buckets; bucket i spans
/// [bucket_lower_bound(i), bucket_lower_bound(i + 1)).
inline constexpr std::size_t kHistogramBuckets = 40;

/// Lower bound of bucket i: 0 for i = 0, else 1e-9 * 4^(i-1). The range
/// covers nanoseconds to ~10^4 seconds, enough for every virtual or wall
/// time this repository measures.
[[nodiscard]] double bucket_lower_bound(std::size_t i) noexcept;

/// Bucket index of `value` (values < bound(1) land in bucket 0, values past
/// the last bound land in the last bucket).
[[nodiscard]] std::size_t bucket_index(double value) noexcept;

namespace detail {

struct CounterCell {
  std::uint64_t value = 0;
};

struct GaugeCell {
  double value = 0.0;
  bool set = false;  ///< distinguishes "never set" from "set to 0"
};

struct HistogramCell {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::uint64_t buckets[kHistogramBuckets] = {};

  void record(double value) noexcept;
};

/// One thread's private slice of a registry. Map nodes have stable
/// addresses, so handles can cache raw cell pointers.
struct Shard {
  std::map<std::string, CounterCell> counters;
  std::map<std::string, GaugeCell> gauges;
  std::map<std::string, HistogramCell> histograms;
};

}  // namespace detail

/// Monotonic event tally. Handle into one thread's shard; not shareable
/// across threads.
class Counter {
 public:
  void add(std::uint64_t delta) noexcept { cell_->value += delta; }
  void increment() noexcept { ++cell_->value; }

 private:
  friend class Registry;
  explicit Counter(detail::CounterCell* cell) noexcept : cell_(cell) {}
  detail::CounterCell* cell_;
};

/// Last-known-value metric; shards merge by max, so use it for quantities
/// where "the largest any thread saw" is the meaningful aggregate (widths,
/// high-water marks) or that only one thread ever sets.
class Gauge {
 public:
  void set(double value) noexcept {
    cell_->value = value;
    cell_->set = true;
  }

 private:
  friend class Registry;
  explicit Gauge(detail::GaugeCell* cell) noexcept : cell_(cell) {}
  detail::GaugeCell* cell_;
};

/// Distribution of a measured value (virtual seconds, wall seconds, sizes).
class Histogram {
 public:
  void record(double value) noexcept { cell_->record(value); }

 private:
  friend class Registry;
  explicit Histogram(detail::HistogramCell* cell) noexcept : cell_(cell) {}
  detail::HistogramCell* cell_;
};

/// Merged view of one counter.
struct CounterValue {
  std::string name;
  std::uint64_t value = 0;
};

/// Merged view of one gauge (max over the shards that set it).
struct GaugeValue {
  std::string name;
  double value = 0.0;
};

/// Merged view of one histogram. `buckets` holds only the non-empty tail up
/// to the last occupied bucket, to keep snapshots small.
struct HistogramValue {
  std::string name;
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  std::vector<std::uint64_t> buckets;

  [[nodiscard]] double mean() const noexcept {
    return count > 0 ? sum / static_cast<double>(count) : 0.0;
  }
};

/// A point-in-time merge of every shard, each section sorted by name.
struct MetricsSnapshot {
  std::vector<CounterValue> counters;
  std::vector<GaugeValue> gauges;
  std::vector<HistogramValue> histograms;

  /// Value of a counter by name; 0 when absent.
  [[nodiscard]] std::uint64_t counter(const std::string& name) const noexcept;
  /// Pointer to a gauge by name; nullptr when absent (distinguishes "never
  /// set" from "set to 0").
  [[nodiscard]] const GaugeValue* gauge(const std::string& name) const noexcept;
  /// Pointer to a histogram by name; nullptr when absent.
  [[nodiscard]] const HistogramValue* histogram(
      const std::string& name) const noexcept;
};

/// Owns the shards and hands out thread-bound metric handles.
class Registry {
 public:
  Registry();
  ~Registry();
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// The process-wide registry the instrumented layers write to.
  static Registry& global();

  /// Handles bound to the calling thread's shard. Cheap enough to fetch
  /// once per phase/plan; cache them for per-message hot loops.
  [[nodiscard]] Counter counter(const std::string& name);
  [[nodiscard]] Gauge gauge(const std::string& name);
  [[nodiscard]] Histogram histogram(const std::string& name);

  /// Merges all shards by name (see the merge rules above).
  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every cell in every shard. Call only while no thread is
  /// writing (between workloads, between tests).
  void reset();

  /// Number of thread shards created so far (monotone; for tests).
  [[nodiscard]] std::size_t shard_count() const;

 private:
  detail::Shard& local_shard();

  const std::uint64_t id_;  ///< process-unique; keys the thread-local cache
  mutable std::mutex mutex_;
  std::vector<std::unique_ptr<detail::Shard>> shards_;
};

/// Merges shard views of one histogram into a HistogramValue. Exposed so
/// tests can check order-independence directly; `name` is copied into the
/// result. Contributions are combined in a canonical internal order, so any
/// permutation of `parts` yields a bit-identical result.
[[nodiscard]] HistogramValue merge_histograms(
    const std::string& name,
    const std::vector<detail::HistogramCell>& parts);

}  // namespace hbsp::obs
