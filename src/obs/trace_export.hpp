#pragma once
// Exporters for span-trace snapshots: byte-stable Chrome trace-event JSON
// (loadable in https://ui.perfetto.dev and chrome://tracing) and a top-N
// self-time table for quick console profiling.
//
// Byte stability is the contract: the snapshot is canonically sorted
// (obs/trace.hpp), tracks get their tids from the sorted track list, every
// event carries an explicit "id" equal to its position, and numbers use the
// same shortest-round-trip encoding as obs/export.hpp. Two snapshots with
// equal content therefore serialise to byte-identical text — which is what
// lets CI pin the virtual-time traces of fig3a/fig4a as golden files, the
// same way it pins the sweep CSVs.

#include <cstddef>
#include <iosfwd>
#include <string>

#include "obs/trace.hpp"
#include "util/table.hpp"

namespace hbsp::obs {

/// Which spans an export includes. Golden traces use kVirtualOnly (wall
/// spans are machine-dependent by definition); profiling artifacts use kAll.
enum class TraceFilter : std::uint8_t { kAll, kVirtualOnly, kWallOnly };

/// The snapshot as Chrome trace-event JSON:
///   {"displayTimeUnit": "ms",
///    "traceEvents": [
///      {"ph":"M", ... thread_name metadata, one per track, tid sorted},
///      {"ph":"X","pid":0,"tid":t,"ts":us,"dur":us,"name":...,
///       "cat":"virtual"|"wall",
///       "args":{"id":i,"parent":p,"kind":...,<integer span args>}}, ...]}
/// Seconds map to microseconds (the format's native unit). A parent outside
/// the filter is omitted from the child's args.
[[nodiscard]] std::string chrome_trace_json(const TraceSnapshot& snapshot,
                                            TraceFilter filter = TraceFilter::kAll);

/// Writes chrome_trace_json to `path`; throws std::runtime_error when the
/// file cannot be written.
void write_chrome_trace(const TraceSnapshot& snapshot, const std::string& path,
                        TraceFilter filter = TraceFilter::kAll);

/// Top-`top_n` (timebase, name) rows by *self* time — span duration minus
/// the durations of same-timebase children — with count, total and self
/// seconds. The console answer to "where did this run spend its time?".
[[nodiscard]] util::Table self_time_table(const TraceSnapshot& snapshot,
                                          std::size_t top_n = 10);

}  // namespace hbsp::obs
