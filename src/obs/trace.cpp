#include "obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <tuple>
#include <utility>

#include "util/rng.hpp"

namespace hbsp::obs {

const char* to_string(Timebase timebase) noexcept {
  switch (timebase) {
    case Timebase::kVirtual:
      return "virtual";
    case Timebase::kWall:
      return "wall";
  }
  return "unknown";
}

const char* to_string(SpanKind kind) noexcept {
  switch (kind) {
    case SpanKind::kPhase:
      return "phase";
    case SpanKind::kSuperstep:
      return "superstep";
    case SpanKind::kMessageBatch:
      return "message_batch";
    case SpanKind::kBarrier:
      return "barrier";
    case SpanKind::kRequest:
      return "request";
    case SpanKind::kStage:
      return "stage";
    case SpanKind::kCell:
      return "cell";
    case SpanKind::kOther:
      return "other";
  }
  return "unknown";
}

namespace {

std::uint64_t next_recorder_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local shard cache, same discipline as obs::Registry: ids are
/// process-unique and never reused, shards are owned by their recorder.
struct ShardCache {
  std::vector<std::pair<std::uint64_t, detail::TraceShard*>> entries;

  [[nodiscard]] detail::TraceShard* find(std::uint64_t id) const noexcept {
    for (const auto& [entry_id, shard] : entries) {
      if (entry_id == id) return shard;
    }
    return nullptr;
  }
};

ShardCache& shard_cache() {
  thread_local ShardCache cache;
  return cache;
}

/// Content-only ordering of span records; the within-shard index is the
/// final tiebreak (deterministic under the one-writer-per-track contract).
bool span_less(const detail::SpanRecord& a, std::size_t a_index,
               const detail::SpanRecord& b, std::size_t b_index) {
  const auto key = [](const detail::SpanRecord& s) {
    return std::tuple<int, const std::string&, double, double, int,
                      const std::string&>(
        static_cast<int>(s.timebase), s.track, s.begin, s.end,
        static_cast<int>(s.kind), s.name);
  };
  const auto ka = key(a);
  const auto kb = key(b);
  if (ka != kb) return ka < kb;
  if (a.args != b.args) return a.args < b.args;
  return a_index < b_index;
}

}  // namespace

TraceRecorder::TraceRecorder() : id_(next_recorder_id()) {}

TraceRecorder::~TraceRecorder() = default;

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder recorder;
  return recorder;
}

int& TraceRecorder::mute_depth() noexcept {
  thread_local int depth = 0;
  return depth;
}

void TraceRecorder::set_enabled(bool on) noexcept {
  enabled_.store(on, std::memory_order_relaxed);
}

detail::TraceShard& TraceRecorder::local_shard() {
  ShardCache& cache = shard_cache();
  if (detail::TraceShard* shard = cache.find(id_)) return *shard;
  std::lock_guard lock{mutex_};
  shards_.push_back(std::make_unique<detail::TraceShard>());
  detail::TraceShard* shard = shards_.back().get();
  cache.entries.emplace_back(id_, shard);
  return *shard;
}

void TraceRecorder::begin_span(std::string track, std::string name,
                               SpanKind kind, Timebase timebase, double begin) {
  detail::TraceShard& shard = local_shard();
  detail::SpanRecord record;
  record.track = std::move(track);
  record.name = std::move(name);
  record.kind = kind;
  record.timebase = timebase;
  record.begin = begin;
  record.end = begin;
  record.parent = shard.stack.empty()
                      ? -1
                      : static_cast<std::int64_t>(shard.stack.back());
  record.open = true;
  shard.stack.push_back(shard.spans.size());
  shard.spans.push_back(std::move(record));
}

void TraceRecorder::end_span(double end, std::vector<SpanArg> args) {
  detail::TraceShard& shard = local_shard();
  if (shard.stack.empty()) return;
  detail::SpanRecord& record = shard.spans[shard.stack.back()];
  shard.stack.pop_back();
  record.end = end;
  record.args = std::move(args);
  record.open = false;
}

void TraceRecorder::record_span(std::string track, std::string name,
                                SpanKind kind, Timebase timebase, double begin,
                                double end, std::vector<SpanArg> args) {
  detail::TraceShard& shard = local_shard();
  detail::SpanRecord record;
  record.track = std::move(track);
  record.name = std::move(name);
  record.kind = kind;
  record.timebase = timebase;
  record.begin = begin;
  record.end = end;
  record.parent = shard.stack.empty()
                      ? -1
                      : static_cast<std::int64_t>(shard.stack.back());
  record.args = std::move(args);
  shard.spans.push_back(std::move(record));
}

void TraceRecorder::push_context(const std::string& piece) {
  local_shard().context.push_back(piece);
}

void TraceRecorder::pop_context() {
  auto& context = local_shard().context;
  if (!context.empty()) context.pop_back();
}

std::string TraceRecorder::context() const {
  // const_cast-free read path: the shard may not exist yet on this thread.
  detail::TraceShard* shard = shard_cache().find(id_);
  if (shard == nullptr) return {};
  std::string joined;
  for (const std::string& piece : shard->context) {
    if (!joined.empty()) joined += '/';
    joined += piece;
  }
  return joined;
}

TraceSnapshot TraceRecorder::snapshot() const {
  std::lock_guard lock{mutex_};

  // Gather (shard, index) handles of every completed span, then sort them
  // by content. The handle survives the sort so parent links (within-shard
  // indices) can be remapped to canonical snapshot positions afterwards.
  struct Handle {
    const detail::TraceShard* shard;
    std::size_t shard_number;
    std::size_t index;
  };
  std::vector<Handle> handles;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const detail::TraceShard& shard = *shards_[s];
    for (std::size_t i = 0; i < shard.spans.size(); ++i) {
      if (!shard.spans[i].open) handles.push_back({&shard, s, i});
    }
  }
  std::stable_sort(handles.begin(), handles.end(),
                   [](const Handle& a, const Handle& b) {
                     return span_less(a.shard->spans[a.index], a.index,
                                      b.shard->spans[b.index], b.index);
                   });

  // (shard, within-shard index) -> canonical position, for parent links.
  // One dense table per shard, so resolution is O(spans) overall; a parent
  // that never closed (or is still open) maps to -1.
  std::vector<std::vector<std::int64_t>> positions(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    positions[s].assign(shards_[s]->spans.size(), -1);
  }
  for (std::size_t pos = 0; pos < handles.size(); ++pos) {
    positions[handles[pos].shard_number][handles[pos].index] =
        static_cast<std::int64_t>(pos);
  }

  TraceSnapshot snap;
  snap.spans.reserve(handles.size());
  for (const Handle& handle : handles) {
    const detail::SpanRecord& record = handle.shard->spans[handle.index];
    SpanView view;
    view.track = record.track;
    view.name = record.name;
    view.kind = record.kind;
    view.timebase = record.timebase;
    view.begin = record.begin;
    view.end = record.end;
    view.parent =
        record.parent >= 0
            ? positions[handle.shard_number]
                       [static_cast<std::size_t>(record.parent)]
            : -1;
    view.args = record.args;
    snap.spans.push_back(std::move(view));
  }

  for (const SpanView& span : snap.spans) {
    if (snap.tracks.empty() || snap.tracks.back() != span.track) {
      snap.tracks.push_back(span.track);
    }
  }
  std::sort(snap.tracks.begin(), snap.tracks.end());
  snap.tracks.erase(std::unique(snap.tracks.begin(), snap.tracks.end()),
                    snap.tracks.end());
  return snap;
}

void TraceRecorder::clear() {
  std::lock_guard lock{mutex_};
  for (const auto& shard : shards_) {
    shard->spans.clear();
    shard->stack.clear();
  }
}

std::size_t TraceRecorder::span_count() const {
  std::lock_guard lock{mutex_};
  std::size_t count = 0;
  for (const auto& shard : shards_) {
    for (const detail::SpanRecord& span : shard->spans) {
      if (!span.open) ++count;
    }
  }
  return count;
}

bool TraceRecorder::sampled(std::uint64_t seed, std::uint64_t ordinal,
                            std::uint64_t every) noexcept {
  if (every <= 1) return true;
  std::uint64_t state = seed ^ (ordinal * 0x9e3779b97f4a7c15ULL);
  return util::splitmix64(state) % every == 0;
}

std::size_t TraceSnapshot::count(SpanKind kind) const noexcept {
  std::size_t total = 0;
  for (const SpanView& span : spans) {
    if (span.kind == kind) ++total;
  }
  return total;
}

std::int64_t TraceSnapshot::arg_total(SpanKind kind,
                                      const std::string& arg) const noexcept {
  std::int64_t total = 0;
  for (const SpanView& span : spans) {
    if (span.kind != kind) continue;
    for (const SpanArg& a : span.args) {
      if (a.name == arg) total += a.value;
    }
  }
  return total;
}

TraceContext::TraceContext(TraceRecorder& recorder, std::string piece) {
  if (!recorder.enabled()) return;
  recorder_ = &recorder;
  recorder_->push_context(piece);
}

TraceContext::~TraceContext() {
  if (recorder_ != nullptr) recorder_->pop_context();
}

namespace {

// obs is excluded from the determinism zones (layers.toml) precisely so
// instrumentation can read the monotonic clock; wall spans are reported,
// never compared.
double wall_now() noexcept {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

WallScope::WallScope(TraceRecorder& recorder, std::string track,
                     std::string name, SpanKind kind, std::vector<SpanArg> args)
    : track_(std::move(track)),
      name_(std::move(name)),
      kind_(kind),
      args_(std::move(args)) {
  if (!recorder.enabled()) return;
  recorder_ = &recorder;
  begin_ = wall_now();
  recorder_->begin_span(track_, name_, kind_, Timebase::kWall, begin_);
}

WallScope::~WallScope() {
  if (recorder_ == nullptr) return;
  recorder_->end_span(wall_now(), std::move(args_));
}

}  // namespace hbsp::obs
