#include "obs/metrics.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>

namespace hbsp::obs {

double bucket_lower_bound(std::size_t i) noexcept {
  if (i == 0) return 0.0;
  double bound = 1e-9;
  for (std::size_t k = 1; k < i; ++k) bound *= 4.0;
  return bound;
}

std::size_t bucket_index(double value) noexcept {
  std::size_t i = 0;
  double bound = 1e-9;
  while (i + 1 < kHistogramBuckets && value >= bound) {
    ++i;
    bound *= 4.0;
  }
  return i;
}

namespace detail {

void HistogramCell::record(double value) noexcept {
  if (count == 0) {
    min = max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  ++buckets[bucket_index(value)];
}

}  // namespace detail

namespace {

std::uint64_t next_registry_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Thread-local shard cache: (registry id, shard) pairs for every registry
/// this thread has written to. Ids are process-unique and never reused, so
/// a stale entry for a destroyed registry can never be mistaken for a live
/// one. Shards are owned by their registry, not by this cache.
struct ShardCache {
  std::vector<std::pair<std::uint64_t, detail::Shard*>> entries;

  [[nodiscard]] detail::Shard* find(std::uint64_t id) const noexcept {
    for (const auto& [entry_id, shard] : entries) {
      if (entry_id == id) return shard;
    }
    return nullptr;
  }
};

ShardCache& shard_cache() {
  thread_local ShardCache cache;
  return cache;
}

}  // namespace

Registry::Registry() : id_(next_registry_id()) {}

Registry::~Registry() = default;

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

detail::Shard& Registry::local_shard() {
  ShardCache& cache = shard_cache();
  if (detail::Shard* shard = cache.find(id_)) return *shard;
  std::lock_guard lock{mutex_};
  shards_.push_back(std::make_unique<detail::Shard>());
  detail::Shard* shard = shards_.back().get();
  cache.entries.emplace_back(id_, shard);
  return *shard;
}

Counter Registry::counter(const std::string& name) {
  return Counter{&local_shard().counters[name]};
}

Gauge Registry::gauge(const std::string& name) {
  return Gauge{&local_shard().gauges[name]};
}

Histogram Registry::histogram(const std::string& name) {
  return Histogram{&local_shard().histograms[name]};
}

HistogramValue merge_histograms(const std::string& name,
                                const std::vector<detail::HistogramCell>& parts) {
  HistogramValue merged;
  merged.name = name;
  std::uint64_t buckets[kHistogramBuckets] = {};
  // Double sums accumulate in sorted order so the merged sum is a pure
  // function of the multiset of per-shard sums, not of shard order.
  std::vector<double> sums;
  sums.reserve(parts.size());
  bool first = true;
  for (const detail::HistogramCell& part : parts) {
    if (part.count == 0) continue;
    merged.count += part.count;
    sums.push_back(part.sum);
    if (first) {
      merged.min = part.min;
      merged.max = part.max;
      first = false;
    } else {
      merged.min = std::min(merged.min, part.min);
      merged.max = std::max(merged.max, part.max);
    }
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      buckets[i] += part.buckets[i];
    }
  }
  std::sort(sums.begin(), sums.end());
  for (const double s : sums) merged.sum += s;
  std::size_t last = 0;
  for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
    if (buckets[i] > 0) last = i + 1;
  }
  merged.buckets.assign(buckets, buckets + last);
  return merged;
}

MetricsSnapshot Registry::snapshot() const {
  std::lock_guard lock{mutex_};
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeValue> gauges;
  std::map<std::string, std::vector<detail::HistogramCell>> histograms;
  for (const auto& shard : shards_) {
    for (const auto& [name, cell] : shard->counters) {
      counters[name] += cell.value;
    }
    for (const auto& [name, cell] : shard->gauges) {
      if (!cell.set) continue;
      auto [it, inserted] = gauges.try_emplace(name, GaugeValue{name, cell.value});
      if (!inserted) it->second.value = std::max(it->second.value, cell.value);
    }
    for (const auto& [name, cell] : shard->histograms) {
      if (cell.count > 0) histograms[name].push_back(cell);
    }
  }
  MetricsSnapshot snap;
  snap.counters.reserve(counters.size());
  for (const auto& [name, value] : counters) {
    snap.counters.push_back({name, value});
  }
  snap.gauges.reserve(gauges.size());
  for (const auto& [name, value] : gauges) snap.gauges.push_back(value);
  snap.histograms.reserve(histograms.size());
  for (const auto& [name, parts] : histograms) {
    snap.histograms.push_back(merge_histograms(name, parts));
  }
  return snap;
}

void Registry::reset() {
  std::lock_guard lock{mutex_};
  for (const auto& shard : shards_) {
    for (auto& [name, cell] : shard->counters) cell = detail::CounterCell{};
    for (auto& [name, cell] : shard->gauges) cell = detail::GaugeCell{};
    for (auto& [name, cell] : shard->histograms) cell = detail::HistogramCell{};
  }
}

std::size_t Registry::shard_count() const {
  std::lock_guard lock{mutex_};
  return shards_.size();
}

std::uint64_t MetricsSnapshot::counter(const std::string& name) const noexcept {
  for (const CounterValue& c : counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

const GaugeValue* MetricsSnapshot::gauge(const std::string& name) const noexcept {
  for (const GaugeValue& g : gauges) {
    if (g.name == name) return &g;
  }
  return nullptr;
}

const HistogramValue* MetricsSnapshot::histogram(
    const std::string& name) const noexcept {
  for (const HistogramValue& h : histograms) {
    if (h.name == name) return &h;
  }
  return nullptr;
}

}  // namespace hbsp::obs
