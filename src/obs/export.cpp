#include "obs/export.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace hbsp::obs {
namespace {

/// Indentation unit inside the snapshot object.
constexpr int kStep = 2;

std::string pad(int spaces) {
  return std::string(static_cast<std::size_t>(spaces), ' ');
}

/// Renders {"name": value, ...} for one metric section, one entry per line.
template <typename Range, typename Format>
void append_object(std::string& out, const Range& entries, int indent,
                   Format&& format) {
  if (entries.empty()) {
    out += "{}";
    return;
  }
  out += "{\n";
  bool first = true;
  for (const auto& entry : entries) {
    if (!first) out += ",\n";
    first = false;
    out += pad(indent + kStep);
    out += '"';
    out += json_escape(entry.name);
    out += "\": ";
    out += format(entry);
  }
  out += '\n';
  out += pad(indent);
  out += '}';
}

}  // namespace

std::string json_escape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double value) {
  if (!std::isfinite(value)) return "null";
  char buf[64];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, value);
  if (ec != std::errc{}) return "null";
  return std::string{buf, end};
}

util::Table metrics_table(const MetricsSnapshot& snapshot,
                          const std::string& title) {
  util::Table table{title};
  table.set_header({"metric", "kind", "value", "mean", "min", "max"});
  for (const CounterValue& c : snapshot.counters) {
    table.add_row({c.name, "counter",
                   std::to_string(c.value), "", "", ""});
  }
  for (const GaugeValue& g : snapshot.gauges) {
    table.add_row({g.name, "gauge", util::Table::num(g.value, 6), "", "", ""});
  }
  for (const HistogramValue& h : snapshot.histograms) {
    table.add_row({h.name, "histogram", std::to_string(h.count),
                   util::Table::num(h.mean(), 6), util::Table::num(h.min, 6),
                   util::Table::num(h.max, 6)});
  }
  return table;
}

std::string snapshot_json(const MetricsSnapshot& snapshot, int indent) {
  std::string out = "{\n";
  out += pad(indent + kStep);
  out += "\"counters\": ";
  append_object(out, snapshot.counters, indent + kStep,
                [](const CounterValue& c) { return std::to_string(c.value); });
  out += ",\n";
  out += pad(indent + kStep);
  out += "\"gauges\": ";
  append_object(out, snapshot.gauges, indent + kStep,
                [](const GaugeValue& g) { return json_number(g.value); });
  out += ",\n";
  out += pad(indent + kStep);
  out += "\"histograms\": ";
  append_object(
      out, snapshot.histograms, indent + kStep,
      [indent](const HistogramValue& h) {
        std::string obj = "{\"count\": " + std::to_string(h.count) +
                          ", \"sum\": " + json_number(h.sum) +
                          ", \"min\": " + json_number(h.min) +
                          ", \"max\": " + json_number(h.max) +
                          ", \"mean\": " + json_number(h.mean()) +
                          ", \"buckets\": [";
        for (std::size_t i = 0; i < h.buckets.size(); ++i) {
          if (i > 0) obj += ", ";
          obj += std::to_string(h.buckets[i]);
        }
        obj += "]}";
        (void)indent;
        return obj;
      });
  out += '\n';
  out += pad(indent);
  out += '}';
  return out;
}

void write_snapshot_json(const MetricsSnapshot& snapshot,
                         const std::string& path) {
  std::ofstream out{path};
  if (!out) {
    throw std::runtime_error{"write_snapshot_json: cannot open " + path};
  }
  out << snapshot_json(snapshot) << '\n';
  if (!out) {
    throw std::runtime_error{"write_snapshot_json: write failed: " + path};
  }
}

}  // namespace hbsp::obs
