#pragma once
// The HBSP^k cost model (§3.4).
//
// The execution time of super^i-step λ is
//
//     T_i(λ) = w_i + g·h + L_{i,j}
//
// where w_i is the largest local computation by a participant, h is the size
// of the *heterogeneous h-relation* h = max_j { r_{i,j} · h_{i,j} } with
// h_{i,j} the largest number of items sent or received by M_{i,j}, and
// L_{i,j} the barrier cost of the synchronised subtree. The overall cost of a
// schedule is the sum of its superstep times.

#include <cstddef>
#include <algorithm>
#include <span>
#include <string>
#include <vector>

#include "core/machine.hpp"
#include "core/schedule.hpp"

namespace hbsp {

/// Priced components of one superstep.
struct SuperstepCost {
  double w = 0.0;   ///< computation term, seconds
  double h = 0.0;   ///< heterogeneous h-relation, items
  double gh = 0.0;  ///< communication term g·h, seconds
  double L = 0.0;   ///< synchronisation term, seconds

  [[nodiscard]] double total() const noexcept { return w + gh + L; }
};

/// Priced phase: the concurrent plans' costs; the phase costs their maximum.
struct PhaseCost {
  std::vector<SuperstepCost> plans;

  [[nodiscard]] double total() const noexcept {
    double worst = 0.0;
    for (const auto& p : plans) worst = std::max(worst, p.total());
    return worst;
  }
};

/// Priced schedule: phases are sequential, so the total is their sum.
struct ScheduleCost {
  std::vector<PhaseCost> phases;

  [[nodiscard]] double total() const noexcept {
    double sum = 0.0;
    for (const auto& p : phases) sum += p.total();
    return sum;
  }
};

class DestinationCosts;

/// Prices SuperstepPlans/CommSchedules against a machine.
class CostModel {
 public:
  /// `seconds_per_op` converts ComputeWork ops into time for the fastest
  /// machine; a negative value (the default) uses g, i.e. one op costs the
  /// same as injecting one item.
  explicit CostModel(const MachineTree& tree, double seconds_per_op = -1.0);

  /// Enables the §6 destination-cost extension: items are weighted by
  /// λ(src,dst) inside the h-relation. The object must outlive this model.
  /// Passing nullptr restores the base model.
  void set_destination_costs(const DestinationCosts* costs) noexcept {
    destination_costs_ = costs;
  }

  /// h = max_j { r_j · max(items sent by j, items received by j) } over the
  /// step's processors (self-sends excluded, as in the implementation the
  /// paper measures — §5.2 "a processor does not send data to itself").
  /// With destination costs enabled, each item is weighted by λ(src,dst).
  [[nodiscard]] double h_relation(const SuperstepPlan& step) const;

  /// Full §3.4 pricing of one superstep.
  [[nodiscard]] SuperstepCost cost(const SuperstepPlan& step) const;

  /// Sum over supersteps.
  [[nodiscard]] ScheduleCost cost(const CommSchedule& schedule) const;

  [[nodiscard]] const MachineTree& tree() const noexcept { return *tree_; }
  [[nodiscard]] double seconds_per_op() const noexcept { return seconds_per_op_; }

 private:
  const MachineTree* tree_;
  double seconds_per_op_;
  const DestinationCosts* destination_costs_ = nullptr;
};

}  // namespace hbsp
