#pragma once
// Closed-form HBSP^k costs of the paper's collective operations (§4).
//
// These are derived independently from the schedule-based CostModel so tests
// can cross-check the two: for every algorithm, planner schedule priced by
// CostModel must equal the closed form here (exactly, same max() structure).
//
// Conventions follow §4: within a cluster the coordinator is the fastest
// machine (so its r is the cluster minimum), shares are either equal (n/m,
// the "unbalanced" heterogeneous case) or balanced (x_j = c_j·n), and a
// machine never sends to itself (§5.2).

#include <cstddef>
#include <optional>
#include <string>
#include <vector>

#include "core/dest_costs.hpp"
#include "core/machine.hpp"

namespace hbsp::analysis {

/// How a collective splits data over a cluster's members.
enum class Shares {
  kEqual,     ///< x_j = n/m for every member (homogeneous-style split)
  kBalanced,  ///< x_j = c_j·n (ability-proportional split, §3.3)
};

/// One priced superstep of a closed-form analysis.
struct StepCost {
  std::string label;
  double cost = 0.0;
};

/// A priced algorithm: per-superstep breakdown plus the total.
struct AlgoCost {
  std::vector<StepCost> steps;

  [[nodiscard]] double total() const noexcept {
    double sum = 0.0;
    for (const auto& s : steps) sum += s.cost;
    return sum;
  }
};

// --- §4.2: HBSP^1 gather ----------------------------------------------------

/// Gather n items to `root_pid` within `cluster` (one super^1-step):
/// g·max{ max_j r_j·x_j , r_root·(n − x_root) } + L. Passing kBalanced uses
/// x_j = c_j·n, which simplifies to gn + L when the root is the coordinator
/// (the paper's "HBSP^1 gather cost is gn + L_{1,0}").
[[nodiscard]] AlgoCost hbsp1_gather(const MachineTree& tree, MachineId cluster,
                                    int root_pid, std::size_t n, Shares shares);

// --- §4.3: HBSP^2 gather ----------------------------------------------------

/// Each level-1 cluster gathers its share to its coordinator (super^1-step,
/// cost = slowest cluster), then coordinators forward to the root coordinator
/// (super^2-step: g·max{ r_{1,j}·x_{1,j} , r_{2,0}·(n − x_root-cluster) } +
/// L_{2,0}).
[[nodiscard]] AlgoCost hbsp2_gather(const MachineTree& tree, std::size_t n,
                                    Shares shares);

// --- §4.4: HBSP^1 broadcast --------------------------------------------------

/// Two-phase (scatter + total exchange): gn(1 + r_{0,s}) + 2L in the paper's
/// simplified form; the exact max() form is returned. `shares` controls the
/// phase-1 split (§5.3 notes the analysis also holds when P_j receives c_j·n).
[[nodiscard]] AlgoCost hbsp1_broadcast_two_phase(const MachineTree& tree,
                                                 MachineId cluster, int root_pid,
                                                 std::size_t n, Shares shares);

/// One-phase: the root sends n items to every other member;
/// g·max{ r_root·n·(m−1), r_s·n } + L (the paper's gnm + L when the root's
/// fan-out dominates).
[[nodiscard]] AlgoCost hbsp1_broadcast_one_phase(const MachineTree& tree,
                                                 MachineId cluster, int root_pid,
                                                 std::size_t n);

// --- §4.4: HBSP^2 broadcast --------------------------------------------------

/// Top-level strategy for moving the n items across the level-2 network.
enum class TopPhase {
  kOnePhase,  ///< root coordinator sends n to every level-1 coordinator
  kTwoPhase,  ///< root scatters n/m_{2,0}, coordinators total-exchange
};

/// HBSP^2 broadcast: super^2-step(s) among level-1 coordinators per
/// `top_phase`, then every cluster runs the two-phase HBSP^1 broadcast
/// internally (cost of the slowest cluster).
[[nodiscard]] AlgoCost hbsp2_broadcast(const MachineTree& tree, std::size_t n,
                                       TopPhase top_phase);

// --- Crossovers ---------------------------------------------------------------

/// Smallest n in [1, n_max] where the two-phase HBSP^1 broadcast is at least
/// as cheap as the one-phase (the L term favours one-phase for small n);
/// nullopt if one-phase wins everywhere in range.
[[nodiscard]] std::optional<std::size_t> broadcast_crossover_n(
    const MachineTree& tree, MachineId cluster, int root_pid, std::size_t n_max);

/// Smallest n in [1, n_max] where the two-phase top level of the HBSP^2
/// broadcast beats the one-phase top level; nullopt if never in range.
[[nodiscard]] std::optional<std::size_t> hbsp2_broadcast_crossover_n(
    const MachineTree& tree, std::size_t n_max);

// --- Extra collectives ([20], §1 "additional HBSP^k collective algorithms") ---

/// Scatter from `root_pid` (mirror of gather):
/// g·max{ r_root·(n − x_root), max_j r_j·x_j } + L.
[[nodiscard]] AlgoCost hbsp1_scatter(const MachineTree& tree, MachineId cluster,
                                     int root_pid, std::size_t n, Shares shares);

/// All-gather (total exchange of shares): g·max_j r_j·max{ x_j·(m−1),
/// n − x_j } + L.
[[nodiscard]] AlgoCost hbsp1_allgather(const MachineTree& tree, MachineId cluster,
                                       std::size_t n, Shares shares);

/// Reduce to `root_pid`: local combine (w = x_j ops), gather of one partial
/// item per member, root combine (m−1 ops).
[[nodiscard]] AlgoCost hbsp1_reduce(const MachineTree& tree, MachineId cluster,
                                    int root_pid, std::size_t n, Shares shares);

/// Exclusive scan: local prefix (x_j ops), 1-item partials to the root, root
/// prefix over m partials, 1-item offsets back, local add (x_j ops).
[[nodiscard]] AlgoCost hbsp1_scan(const MachineTree& tree, MachineId cluster,
                                  std::size_t n, Shares shares);

/// All-to-all personalised exchange of per-pair blocks of size x_j/m:
/// g·max_j r_j·max{ sent_j, received_j } + L.
[[nodiscard]] AlgoCost hbsp1_alltoall(const MachineTree& tree, MachineId cluster,
                                      std::size_t n, Shares shares);


/// HBSP^k reduction closed form: one super^i-step per level (clusters fold
/// concurrently, each charging local combines owed since the previous level
/// and forwarding 1-item partials to its target), plus the root's final
/// combine. Matches CostModel(plan_reduce_tree(...)) exactly.
[[nodiscard]] AlgoCost hbspk_reduce(const MachineTree& tree, std::size_t n,
                                    Shares shares, int root_pid = -1);

// --- §6 future-work extension: destination-dependent costs ---------------------

/// Gather closed form under the destination-cost extension:
/// h = max{ max_j r_j·λ(j,root)·x_j , r_root·Σ_j λ(j,root)·x_j } — both the
/// senders' outbound volumes and the root's inbound total are weighted by
/// each message's λ. Reduces to hbsp1_gather when λ ≡ 1.
[[nodiscard]] AlgoCost hbsp1_gather_dest(const MachineTree& tree,
                                         MachineId cluster, int root_pid,
                                         std::size_t n, Shares shares,
                                         const DestinationCosts& costs);

// --- Helpers shared with the planners -----------------------------------------

/// Member shares of a cluster under the given policy, indexed by child
/// ordinal of `cluster` and apportioned to sum to n exactly. kEqual splits
/// per *processor* (each child gets a share proportional to its processor
/// count, so a flat cluster gets the paper's n/m); kBalanced splits by c.
[[nodiscard]] std::vector<std::size_t> member_shares(const MachineTree& tree,
                                                     MachineId cluster,
                                                     std::size_t n, Shares shares);

/// A cluster's members resolved to communication endpoints: child ids, their
/// endpoint pids (a child's coordinator; the child itself when a processor),
/// and their shares of n. The planners and the closed forms both build this,
/// which is what makes them agree exactly.
struct Members {
  std::vector<MachineId> children;
  std::vector<int> pids;              ///< endpoint pid per child
  std::vector<std::size_t> shares;    ///< items per child, sums to n
};

/// Builds Members for `cluster`; throws std::invalid_argument if `cluster`
/// is a processor.
[[nodiscard]] Members cluster_members(const MachineTree& tree, MachineId cluster,
                                      std::size_t n, Shares shares);

/// Phase-1 pieces of a two-phase broadcast within `cluster`. Unlike workload
/// shares, broadcast pieces are transient material: kEqual is an equal split
/// per *member* — the paper's "root sends n/m_{2,0} to the level 1
/// coordinators" — not per processor. kBalanced still splits by c. Indexed
/// by child ordinal; sums to n.
[[nodiscard]] std::vector<std::size_t> broadcast_pieces(const MachineTree& tree,
                                                        MachineId cluster,
                                                        std::size_t n,
                                                        Shares shares);

/// Ordinal of the child of `cluster` whose subtree contains `pid`; throws
/// std::invalid_argument if `pid` is outside the cluster.
[[nodiscard]] int member_of_pid(const MachineTree& tree, MachineId cluster,
                                int pid);

}  // namespace hbsp::analysis
