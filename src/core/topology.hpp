#pragma once
// Ready-made HBSP^k topologies: the paper's testbed, Figure 1's two-level
// cluster, and generators for tests and sweeps.

#include <cstdint>
#include <span>
#include <vector>

#include "core/machine.hpp"

namespace hbsp {

/// Default bandwidth indicator used by the presets (seconds per item for the
/// fastest machine). The absolute value only scales virtual time.
inline constexpr double kDefaultG = 1e-6;

/// Default level-1 synchronisation overhead (seconds) for the presets,
/// roughly a LAN barrier over PVM in the paper's era.
inline constexpr double kDefaultL1 = 2e-3;

/// A flat (k = 1) heterogeneous workstation cluster: one coordinator network,
/// one processor per entry of `leaf_r` (r values, fastest must be 1).
[[nodiscard]] MachineTree make_hbsp1_cluster(std::span<const double> leaf_r,
                                             double g = kDefaultG,
                                             double L = kDefaultL1);

/// The relative speeds of the reproduction's stand-in for the paper's
/// ten-workstation SUN/SGI testbed, in inventory (not sorted) order. The
/// fastest machine is first and the slowest second, so the p = 2 subset
/// exhibits the paper's fast/slow pairing discussed in §5.2.
[[nodiscard]] std::span<const double> paper_testbed_speeds();

/// The first `p` machines (2 <= p <= 10) of the stand-in testbed as an
/// HBSP^1 cluster; the paper's experiments sweep p this way.
[[nodiscard]] MachineTree make_paper_testbed(int p, double g = kDefaultG,
                                             double L = kDefaultL1);

/// Figure 1's HBSP^2 machine: a 4-way SMP (fast bus, tiny L), a bare SGI
/// workstation (a childless level-1 node), and a 4-workstation LAN, joined
/// by a campus network with barrier cost `L2`.
[[nodiscard]] MachineTree make_figure1_cluster(double g = kDefaultG,
                                               double L2 = 10 * kDefaultL1);

/// A 3-level (HBSP^3) machine: a wide-area link joining two campuses, each
/// campus a mix of labs (flat clusters) and a standalone server, per-level
/// barrier costs growing by `L_scale` per level. Exercises the paper's "one
/// can generalize the approach given here" claim for k >= 3.
[[nodiscard]] MachineTree make_wide_area_grid(double g = kDefaultG,
                                              double L_scale = 10.0);

/// Parameters for the random-tree generator used by property tests.
struct RandomTreeOptions {
  int levels = 2;            ///< k >= 1
  int min_fanout = 2;
  int max_fanout = 4;
  double max_r = 8.0;        ///< leaf r drawn uniformly from [1, max_r]
  double leaf_degenerate_probability = 0.15;  ///< childless node above level 0
  double g = kDefaultG;
  double L_base = kDefaultL1;  ///< level-i barrier costs L_base * 10^(i-1)
};

/// A random valid HBSP^k machine (always at least one r == 1 processor).
[[nodiscard]] MachineTree make_random_tree(const RandomTreeOptions& options,
                                           std::uint64_t seed);

/// A symmetric k-level machine: every interior node has `fanout` children,
/// leaf r values cycle through `leaf_r_cycle` (must contain 1).
[[nodiscard]] MachineTree make_uniform_tree(int levels, int fanout,
                                            std::span<const double> leaf_r_cycle,
                                            double g = kDefaultG,
                                            double L_base = kDefaultL1);

}  // namespace hbsp
