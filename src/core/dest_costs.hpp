#pragma once
// The paper's §6 future-work extension, implemented: destination-dependent
// communication costs.
//
// In the base model a machine's r is one number, so sending to a sibling on
// the same bus costs the same per item as sending across a wide-area link.
// The extension weights every (src, dst) pair with a factor λ(src,dst) >= 1;
// the heterogeneous h-relation generalises to
//
//     h_j = max( Σ_out λ(j,d)·items , Σ_in λ(s,j)·items ),   h = max_j r_j·h_j
//
// which reduces to §3.4 exactly when λ ≡ 1. The natural instantiation
// derives λ from the network hierarchy: λ = level_factor[ℓ−1] when the
// endpoints' lowest common ancestor sits at level ℓ — crossing the campus
// backbone costs more per item than crossing an SMP bus, which is the
// asymmetry the base model loses and the substrate (latency + per-level
// wire) actually exhibits.

#include <span>
#include <vector>

#include "core/machine.hpp"

namespace hbsp {

/// Pairwise per-item cost multipliers λ(src,dst), materialised as a dense
/// matrix over processor ids (clusters are small). λ(j,j) is unused
/// (self-sends are free).
class DestinationCosts {
 public:
  /// λ ≡ 1: the base model.
  [[nodiscard]] static DestinationCosts uniform(const MachineTree& tree);

  /// λ(a,b) = level_factors[lca_level(a,b) − 1]. `level_factors` must have
  /// one entry per network level (size == tree.height()) with every factor
  /// >= 1 and factors non-decreasing with level; throws std::invalid_argument
  /// otherwise.
  [[nodiscard]] static DestinationCosts by_level(
      const MachineTree& tree, std::span<const double> level_factors);

  /// Fully explicit λ matrix (p × p, entries >= 1 off the diagonal).
  [[nodiscard]] static DestinationCosts from_matrix(
      std::vector<std::vector<double>> matrix);

  /// λ(src,dst); 1.0 for src == dst.
  [[nodiscard]] double factor(int src_pid, int dst_pid) const;

  [[nodiscard]] int num_processors() const noexcept {
    return static_cast<int>(matrix_.size());
  }

  /// True when λ ≡ 1 (lets cost paths skip the weighting).
  [[nodiscard]] bool is_uniform() const noexcept { return uniform_; }

 private:
  DestinationCosts() = default;

  std::vector<std::vector<double>> matrix_;
  bool uniform_ = true;
};

}  // namespace hbsp
