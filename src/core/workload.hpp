#pragma once
// Workload partitioning (§3.3's c_{i,j} and §4.1's "faster machines should
// receive more data items").
//
// Balanced shares give each machine a fraction proportional to its ability
// (c_j ∝ 1/r_j within a cluster), which yields the paper's efficiency
// condition r_j·c_j < 1 whenever more than one machine participates. Integer
// apportionment uses the largest-remainder method so shares always sum to n
// exactly.

#include <cstddef>
#include <span>
#include <vector>

#include "core/machine.hpp"

namespace hbsp {

/// Fractions proportional to 1/r, normalised to sum to 1.
/// Throws std::invalid_argument on an empty span or any r <= 0.
[[nodiscard]] std::vector<double> balanced_fractions(std::span<const double> r);

/// Largest-remainder apportionment of n items over `fractions` (which must be
/// non-negative and sum to ~1); the result sums to exactly n.
[[nodiscard]] std::vector<std::size_t> apportion(std::span<const double> fractions,
                                                 std::size_t n);

/// Equal split with the first n % p processors receiving one extra item.
[[nodiscard]] std::vector<std::size_t> equal_partition(std::size_t n,
                                                       std::size_t p);

/// Balanced split of n items over machines with slownesses `r`.
[[nodiscard]] std::vector<std::size_t> balanced_partition(std::span<const double> r,
                                                          std::size_t n);

/// Per-processor balanced shares over a whole HBSP^k machine: apportions n by
/// each processor's global_c (product of c down the tree), so every cluster's
/// aggregate share also matches its c. Indexed by pid.
[[nodiscard]] std::vector<std::size_t> tree_partition(const MachineTree& tree,
                                                      std::size_t n);

/// Shares for the processors of one subtree only (indexed from the subtree's
/// first pid), apportioning n by c ratios *within* the subtree.
[[nodiscard]] std::vector<std::size_t> subtree_partition(const MachineTree& tree,
                                                         MachineId subtree,
                                                         std::size_t n);

}  // namespace hbsp
