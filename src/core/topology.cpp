#include "core/topology.hpp"

#include <array>
#include <cmath>
#include <stdexcept>
#include <string>

#include "util/rng.hpp"

namespace hbsp {

MachineTree make_hbsp1_cluster(std::span<const double> leaf_r, double g,
                               double L) {
  if (leaf_r.empty()) {
    throw std::invalid_argument{"make_hbsp1_cluster: need at least one processor"};
  }
  MachineSpec root;
  root.name = "cluster";
  root.sync_L = L;
  int id = 0;
  for (const double r : leaf_r) {
    MachineSpec leaf;
    leaf.name = "ws" + std::to_string(id++);
    leaf.r = r;
    root.children.push_back(std::move(leaf));
  }
  return MachineTree::build(root, g);
}

std::span<const double> paper_testbed_speeds() {
  // BYTEmark-style relative slowness of ten 2000-era SUN/SGI workstations.
  // Inventory order: fastest first, slowest second (see header).
  static constexpr std::array<double, 10> kSpeeds = {
      1.0, 2.5, 1.2, 1.9, 1.45, 2.2, 1.1, 2.0, 1.35, 1.7};
  return kSpeeds;
}

MachineTree make_paper_testbed(int p, double g, double L) {
  const auto speeds = paper_testbed_speeds();
  if (p < 2 || p > static_cast<int>(speeds.size())) {
    throw std::invalid_argument{"make_paper_testbed: p must be in [2, 10]"};
  }
  return make_hbsp1_cluster(speeds.subspan(0, static_cast<std::size_t>(p)), g, L);
}

MachineTree make_figure1_cluster(double g, double L2) {
  MachineSpec smp;
  smp.name = "smp";
  smp.sync_L = kDefaultL1 / 20;  // shared-memory barrier: far cheaper than a LAN
  for (int i = 0; i < 4; ++i) {
    MachineSpec cpu;
    cpu.name = "smp-cpu" + std::to_string(i);
    cpu.r = 1.0;
    smp.children.push_back(std::move(cpu));
  }

  MachineSpec sgi;  // a bare workstation directly on the campus network
  sgi.name = "sgi";
  sgi.r = 1.4;

  MachineSpec lan;
  lan.name = "lan";
  lan.sync_L = kDefaultL1;
  const std::array<double, 4> lan_r = {1.6, 2.2, 2.8, 3.6};
  for (int i = 0; i < 4; ++i) {
    MachineSpec ws;
    ws.name = "lan-ws" + std::to_string(i);
    ws.r = lan_r[static_cast<std::size_t>(i)];
    lan.children.push_back(std::move(ws));
  }

  MachineSpec root;
  root.name = "campus";
  root.sync_L = L2;
  root.children.push_back(std::move(smp));
  root.children.push_back(std::move(sgi));
  root.children.push_back(std::move(lan));
  return MachineTree::build(root, g);
}

MachineTree make_wide_area_grid(double g, double L_scale) {
  const auto lab = [](const char* name, std::initializer_list<double> rs,
                      double L) {
    MachineSpec cluster;
    cluster.name = name;
    cluster.sync_L = L;
    int i = 0;
    for (const double r : rs) {
      MachineSpec ws;
      ws.name = std::string{name} + "-ws" + std::to_string(i++);
      ws.r = r;
      cluster.children.push_back(std::move(ws));
    }
    return cluster;
  };

  const double L1 = kDefaultL1;
  MachineSpec campus_a;
  campus_a.name = "campus-a";
  campus_a.sync_L = L1 * L_scale;
  campus_a.children.push_back(lab("a-lab0", {1.0, 1.3, 1.8}, L1));
  campus_a.children.push_back(lab("a-lab1", {1.2, 1.5, 2.1, 2.6}, L1));
  MachineSpec a_server;
  a_server.name = "a-server";
  a_server.r = 1.1;
  campus_a.children.push_back(std::move(a_server));

  MachineSpec campus_b;
  campus_b.name = "campus-b";
  campus_b.sync_L = L1 * L_scale;
  campus_b.children.push_back(lab("b-lab0", {1.4, 1.9, 2.4}, L1));
  campus_b.children.push_back(lab("b-lab1", {1.6, 2.0}, L1));

  MachineSpec root;
  root.name = "wide-area";
  root.sync_L = L1 * L_scale * L_scale;
  root.children.push_back(std::move(campus_a));
  root.children.push_back(std::move(campus_b));
  return MachineTree::build(root, g);
}

MachineTree make_random_tree(const RandomTreeOptions& options,
                             std::uint64_t seed) {
  if (options.levels < 1) {
    throw std::invalid_argument{"make_random_tree: levels must be >= 1"};
  }
  if (options.min_fanout < 1 || options.max_fanout < options.min_fanout) {
    throw std::invalid_argument{"make_random_tree: bad fanout range"};
  }
  util::Rng rng{seed};
  bool placed_fastest = false;

  const auto grow = [&](auto&& self, int depth) -> MachineSpec {
    MachineSpec spec;
    spec.name = "n" + std::to_string(depth) + "_" +
                std::to_string(rng.uniform_u64(0, 9999));
    const bool at_bottom = depth == options.levels;
    const bool degenerate =
        depth > 0 && !at_bottom &&
        rng.uniform01() < options.leaf_degenerate_probability;
    if (at_bottom || degenerate) {
      spec.r = rng.uniform(1.0, options.max_r);
      return spec;
    }
    const int level = options.levels - depth;
    spec.sync_L = options.L_base * std::pow(10.0, level - 1);
    const auto fanout = static_cast<int>(rng.uniform_u64(
        static_cast<std::uint64_t>(options.min_fanout),
        static_cast<std::uint64_t>(options.max_fanout)));
    for (int i = 0; i < fanout; ++i) {
      spec.children.push_back(self(self, depth + 1));
    }
    return spec;
  };
  MachineSpec root = grow(grow, 0);

  // Force the normalisation invariant: pin the first processor found to r = 1.
  const auto pin_fastest = [&](auto&& self, MachineSpec& spec) -> void {
    if (placed_fastest) return;
    if (spec.children.empty()) {
      spec.r = 1.0;
      placed_fastest = true;
      return;
    }
    for (auto& child : spec.children) self(self, child);
  };
  pin_fastest(pin_fastest, root);
  return MachineTree::build(root, options.g);
}

MachineTree make_uniform_tree(int levels, int fanout,
                              std::span<const double> leaf_r_cycle, double g,
                              double L_base) {
  if (levels < 1 || fanout < 1) {
    throw std::invalid_argument{"make_uniform_tree: bad shape"};
  }
  if (leaf_r_cycle.empty()) {
    throw std::invalid_argument{"make_uniform_tree: empty r cycle"};
  }
  std::size_t next_r = 0;
  const auto grow = [&](auto&& self, int depth) -> MachineSpec {
    MachineSpec spec;
    if (depth == levels) {
      spec.r = leaf_r_cycle[next_r % leaf_r_cycle.size()];
      spec.name = "p" + std::to_string(next_r);
      ++next_r;
      return spec;
    }
    const int level = levels - depth;
    spec.name = "c" + std::to_string(level);
    spec.sync_L = L_base * std::pow(10.0, level - 1);
    for (int i = 0; i < fanout; ++i) spec.children.push_back(self(self, depth + 1));
    return spec;
  };
  return MachineTree::build(grow(grow, 0), g);
}

}  // namespace hbsp
