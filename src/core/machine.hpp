#pragma once
// The HBSP^k machine representation (paper §3.1).
//
// An HBSP^k machine is a tree T of height k. The root (level k) is the whole
// machine; children of a level-i node sit at level i-1; level-0 nodes — and,
// more generally, childless nodes at any level (the paper's "single processor
// systems are HBSP^1 computers", Fig. 1's bare SGI workstation at level 1) —
// are physical processors. Interior nodes are clusters; their coordinator is
// by default the fastest processor in their subtree ("they may represent the
// fastest machine in their subtree", §3.1).
//
// Per-node parameters (Table 1):
//   r    relative communication slowness (fastest machine in the whole tree
//        has r = 1; larger is slower),
//   L    barrier-synchronisation overhead for the node's subtree,
//   c    fraction of its parent's problem share this node receives.
// The whole machine additionally carries g, the bandwidth indicator of the
// fastest machine. Compute slowness defaults to r but can be set separately
// (the paper ranks machines with one BYTEmark score covering both).

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

namespace hbsp {

/// Identity M_{i,j}: machine j on level i (paper §3.1 indexing).
struct MachineId {
  int level = 0;
  int index = 0;

  friend bool operator==(const MachineId&, const MachineId&) = default;
};

/// Per-node model parameters supplied at construction.
struct MachineSpec {
  std::string name;               ///< optional human-readable label
  double r = 1.0;                 ///< communication slowness, >= 1
  double compute_r = -1.0;        ///< compute slowness; < 0 means "same as r"
  double sync_L = 0.0;            ///< barrier cost of this node's subtree
  std::optional<double> c;        ///< share of parent's data; defaults balanced
  std::vector<MachineSpec> children;
};

/// Immutable HBSP^k machine tree with precomputed processor/topology queries.
///
/// Construction validates the model invariants (see `Builder::build`). All
/// query methods are O(1) unless noted; the tree is laid out level-major so a
/// node is addressed exactly as the paper addresses it, by (level, index).
class MachineTree {
 public:
  /// One node of the tree after validation/derivation.
  struct Node {
    std::string name;
    double r = 1.0;            ///< communication slowness (fastest == 1)
    double compute_r = 1.0;    ///< compute slowness
    double sync_L = 0.0;       ///< L_{i,j}
    double c = 1.0;            ///< fraction of parent's share (siblings sum to 1)
    double global_c = 1.0;     ///< product of c along the root path
    int parent = -1;           ///< index at level+1; -1 for the root
    std::vector<int> children; ///< indices at level-1
    int pid = -1;              ///< processor id if childless, else -1
    int coordinator_pid = -1;  ///< fastest processor in this subtree
    int leaf_begin = 0;        ///< subtree processors occupy [leaf_begin,
    int leaf_end = 0;          ///<   leaf_end) in pid order
  };

  /// Builds and validates a tree from a recursive spec; `g` is the bandwidth
  /// indicator of the fastest machine (Table 1).
  ///
  /// Throws std::invalid_argument when: g <= 0; any r < 1; no machine has
  /// r == 1 (the model normalises the fastest machine to 1, §3.3); any
  /// explicit sibling c set does not sum to 1 (mixing explicit and defaulted
  /// c among siblings is also rejected); L < 0; or the tree is empty.
  static MachineTree build(const MachineSpec& root, double g);

  // --- shape ---------------------------------------------------------------

  /// k: the height of the tree / the machine's class (§3.1).
  [[nodiscard]] int height() const noexcept { return static_cast<int>(levels_.size()) - 1; }

  /// Number of levels, k + 1.
  [[nodiscard]] int num_levels() const noexcept { return static_cast<int>(levels_.size()); }

  /// m_i: number of machines on level i.
  [[nodiscard]] int machines_at(int level) const;

  /// m_{i,j}: number of children of M_{i,j}.
  [[nodiscard]] int num_children(MachineId id) const { return static_cast<int>(node(id).children.size()); }

  [[nodiscard]] MachineId root() const noexcept { return {height(), 0}; }
  [[nodiscard]] std::optional<MachineId> parent(MachineId id) const;
  [[nodiscard]] MachineId child(MachineId id, int nth) const;
  [[nodiscard]] bool is_processor(MachineId id) const { return node(id).children.empty(); }

  /// Direct access to the validated node record.
  [[nodiscard]] const Node& node(MachineId id) const;

  // --- model parameters ----------------------------------------------------

  [[nodiscard]] double g() const noexcept { return g_; }
  [[nodiscard]] double r(MachineId id) const { return node(id).r; }
  [[nodiscard]] double compute_r(MachineId id) const { return node(id).compute_r; }
  [[nodiscard]] double sync_L(MachineId id) const { return node(id).sync_L; }
  /// c_{i,j} relative to the node's parent.
  [[nodiscard]] double c(MachineId id) const { return node(id).c; }
  /// Fraction of the *whole* problem this subtree receives under balanced
  /// workloads (product of c along the root path).
  [[nodiscard]] double global_c(MachineId id) const { return node(id).global_c; }

  // --- processors ----------------------------------------------------------

  /// Total number of physical processors (childless nodes), in pid order.
  [[nodiscard]] int num_processors() const noexcept { return static_cast<int>(processors_.size()); }

  /// The tree node of processor `pid`.
  [[nodiscard]] MachineId processor(int pid) const;

  /// r of processor `pid` (shorthand used heavily by the simulator).
  [[nodiscard]] double processor_r(int pid) const { return node(processor(pid)).r; }
  [[nodiscard]] double processor_compute_r(int pid) const { return node(processor(pid)).compute_r; }

  /// Processors of the subtree rooted at `id` as the contiguous pid range
  /// [first, last).
  [[nodiscard]] std::pair<int, int> processor_range(MachineId id) const;

  /// The coordinator processor of `id`'s subtree: its fastest processor
  /// (lowest r; ties broken by lowest pid). For a childless node, itself.
  [[nodiscard]] int coordinator_pid(MachineId id) const { return node(id).coordinator_pid; }

  /// The slowest processor in `id`'s subtree (highest r, ties by lowest pid).
  [[nodiscard]] int slowest_pid(MachineId id) const;

  /// Level of the lowest common ancestor of two processors: the network level
  /// a message between them must cross (1 = same cluster, ..., k = top).
  /// Returns 0 when a == b. O(k).
  [[nodiscard]] int lca_level(int pid_a, int pid_b) const;

  /// The ancestor of processor `pid` at `level` (the cluster containing it).
  [[nodiscard]] MachineId ancestor_at(int pid, int level) const;

  /// All machine ids on one level, in index order.
  [[nodiscard]] std::vector<MachineId> level_ids(int level) const;

  /// Stable structural fingerprint of the machine: a pure function of g and
  /// every node's (name, r, compute_r, sync_L, c, shape) in level-major
  /// order, computed once at build time. Two trees with equal fingerprints
  /// are (up to hash collision) the same machine, so plan and scenario
  /// caches key on this value. Distinct trees built from the same spec and g
  /// always agree.
  [[nodiscard]] std::uint64_t fingerprint() const noexcept {
    return fingerprint_;
  }

 private:
  MachineTree() = default;
  [[nodiscard]] Node& mutable_node(MachineId id);

  double g_ = 1.0;
  std::uint64_t fingerprint_ = 0;          ///< structural hash, set by build()
  std::vector<std::vector<Node>> levels_;  ///< levels_[i][j] == M_{i,j}
  std::vector<MachineId> processors_;      ///< pid -> node id
};

}  // namespace hbsp
