#include "core/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace hbsp {

std::vector<double> balanced_fractions(std::span<const double> r) {
  if (r.empty()) throw std::invalid_argument{"balanced_fractions: empty r"};
  double total = 0.0;
  for (const double value : r) {
    if (value <= 0.0) throw std::invalid_argument{"balanced_fractions: r <= 0"};
    total += 1.0 / value;
  }
  std::vector<double> fractions;
  fractions.reserve(r.size());
  for (const double value : r) fractions.push_back((1.0 / value) / total);
  return fractions;
}

std::vector<std::size_t> apportion(std::span<const double> fractions,
                                   std::size_t n) {
  if (fractions.empty()) throw std::invalid_argument{"apportion: empty fractions"};
  double total = 0.0;
  for (const double f : fractions) {
    if (f < 0.0) throw std::invalid_argument{"apportion: negative fraction"};
    total += f;
  }
  if (std::abs(total - 1.0) > 1e-6) {
    throw std::invalid_argument{"apportion: fractions must sum to 1"};
  }

  std::vector<std::size_t> shares(fractions.size());
  std::vector<std::pair<double, std::size_t>> remainders;  // {-frac, index}
  remainders.reserve(fractions.size());
  std::size_t assigned = 0;
  for (std::size_t i = 0; i < fractions.size(); ++i) {
    const double exact = fractions[i] * static_cast<double>(n);
    shares[i] = static_cast<std::size_t>(exact);
    assigned += shares[i];
    remainders.emplace_back(-(exact - std::floor(exact)), i);
  }
  // Hand out the leftover items to the largest fractional parts; ties go to
  // the lowest index so the result is deterministic.
  std::sort(remainders.begin(), remainders.end());
  for (std::size_t k = 0; assigned < n; ++k) {
    ++shares[remainders[k % remainders.size()].second];
    ++assigned;
  }
  return shares;
}

std::vector<std::size_t> equal_partition(std::size_t n, std::size_t p) {
  if (p == 0) throw std::invalid_argument{"equal_partition: p == 0"};
  std::vector<std::size_t> shares(p, n / p);
  for (std::size_t i = 0; i < n % p; ++i) ++shares[i];
  return shares;
}

std::vector<std::size_t> balanced_partition(std::span<const double> r,
                                            std::size_t n) {
  return apportion(balanced_fractions(r), n);
}

std::vector<std::size_t> tree_partition(const MachineTree& tree, std::size_t n) {
  std::vector<double> fractions;
  fractions.reserve(static_cast<std::size_t>(tree.num_processors()));
  for (int pid = 0; pid < tree.num_processors(); ++pid) {
    fractions.push_back(tree.global_c(tree.processor(pid)));
  }
  return apportion(fractions, n);
}

std::vector<std::size_t> subtree_partition(const MachineTree& tree,
                                           MachineId subtree, std::size_t n) {
  const auto [first, last] = tree.processor_range(subtree);
  const double scope_c = tree.global_c(subtree);
  std::vector<double> fractions;
  fractions.reserve(static_cast<std::size_t>(last - first));
  for (int pid = first; pid < last; ++pid) {
    fractions.push_back(tree.global_c(tree.processor(pid)) / scope_c);
  }
  return apportion(fractions, n);
}

}  // namespace hbsp
