#include "core/schedule.hpp"

#include <stdexcept>

#include "util/hash.hpp"

namespace hbsp {

std::size_t SuperstepPlan::items_sent(int pid) const {
  std::size_t total = 0;
  for (const auto& t : transfers) {
    if (t.src_pid == pid && t.dst_pid != pid) total += t.items;
  }
  return total;
}

std::size_t SuperstepPlan::items_received(int pid) const {
  std::size_t total = 0;
  for (const auto& t : transfers) {
    if (t.dst_pid == pid && t.src_pid != pid) total += t.items;
  }
  return total;
}

SuperstepPlan& CommSchedule::add_step(std::string label, int level,
                                      MachineId sync_scope) {
  Phase& phase = phases.emplace_back();
  SuperstepPlan& plan = phase.plans.emplace_back();
  plan.label = std::move(label);
  plan.level = level;
  plan.sync_scope = sync_scope;
  return plan;
}

Phase& CommSchedule::add_phase() { return phases.emplace_back(); }

std::size_t CommSchedule::total_items() const {
  std::size_t total = 0;
  for (const auto& phase : phases) {
    for (const auto& plan : phase.plans) {
      for (const auto& t : plan.transfers) {
        if (t.src_pid != t.dst_pid) total += t.items;
      }
    }
  }
  return total;
}

std::uint64_t CommSchedule::fingerprint() const {
  util::Hash64 hash;
  hash.add_string(name);
  hash.add(phases.size());
  for (const auto& phase : phases) {
    hash.add(phase.plans.size());
    for (const auto& plan : phase.plans) {
      hash.add_string(plan.label);
      hash.add_int(plan.level);
      hash.add_int(plan.sync_scope.level);
      hash.add_int(plan.sync_scope.index);
      hash.add(plan.transfers.size());
      for (const auto& t : plan.transfers) {
        hash.add_int(t.src_pid);
        hash.add_int(t.dst_pid);
        hash.add(t.items);
      }
      hash.add(plan.compute.size());
      for (const auto& w : plan.compute) {
        hash.add_int(w.pid);
        hash.add_double(w.ops);
      }
    }
  }
  return hash.digest();
}

std::size_t CommSchedule::total_messages() const {
  std::size_t total = 0;
  for (const auto& phase : phases) {
    for (const auto& plan : phase.plans) {
      for (const auto& t : plan.transfers) {
        if (t.src_pid != t.dst_pid) ++total;
      }
    }
  }
  return total;
}

void validate_schedule(const MachineTree& tree, const CommSchedule& schedule) {
  const int p = tree.num_processors();
  const auto check_pid = [&](int pid, const std::string& where) {
    if (pid < 0 || pid >= p) {
      throw std::invalid_argument{"schedule '" + schedule.name + "', step '" +
                                  where + "': pid " + std::to_string(pid) +
                                  " out of range"};
    }
  };
  for (const auto& phase : schedule.phases) {
    std::vector<std::pair<int, int>> scopes;
    for (const auto& plan : phase.plans) {
      if (plan.level < 1 && tree.height() > 0) {
        throw std::invalid_argument{"schedule '" + schedule.name + "', step '" +
                                    plan.label + "': bad level " +
                                    std::to_string(plan.level)};
      }
      const auto [first, last] = tree.processor_range(plan.sync_scope);
      for (const auto& [begin, end] : scopes) {
        if (first < end && begin < last) {
          throw std::invalid_argument{
              "schedule '" + schedule.name + "', step '" + plan.label +
              "': sync scopes within a phase must be disjoint"};
        }
      }
      scopes.emplace_back(first, last);
      for (const auto& t : plan.transfers) {
        check_pid(t.src_pid, plan.label);
        check_pid(t.dst_pid, plan.label);
        if (t.src_pid < first || t.src_pid >= last || t.dst_pid < first ||
            t.dst_pid >= last) {
          throw std::invalid_argument{
              "schedule '" + schedule.name + "', step '" + plan.label +
              "': transfer endpoint outside the synchronised subtree"};
        }
      }
      for (const auto& w : plan.compute) {
        check_pid(w.pid, plan.label);
        if (w.ops < 0.0) {
          throw std::invalid_argument{"schedule '" + schedule.name +
                                      "', step '" + plan.label +
                                      "': negative compute"};
        }
      }
    }
  }
}

}  // namespace hbsp
