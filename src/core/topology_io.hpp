#pragma once
// Text serialisation of HBSP^k machine descriptions.
//
// The format is line-oriented and nest-by-braces:
//
//     # ten-workstation cluster
//     g 1e-6
//     machine cluster L=2e-3 {
//       machine ws0 r=1
//       machine ws1 r=4 cr=3.5
//       machine sub L=1e-3 c=0.5 {
//         machine a r=2
//       }
//     }
//
// Attributes: r (communication slowness), cr (compute slowness, defaults to
// r), L (barrier cost), c (explicit share of the parent's data). Exactly one
// top-level `machine` block and one `g` line are required. `#` starts a
// comment; blank lines are ignored.

#include <iosfwd>
#include <string>
#include <string_view>

#include "core/machine.hpp"

namespace hbsp {

/// Parses a machine description; throws std::invalid_argument with a line
/// number on malformed input, and propagates MachineTree::build validation
/// errors.
[[nodiscard]] MachineTree parse_topology(std::string_view text);

/// Reads and parses a topology file; throws std::runtime_error if unreadable.
[[nodiscard]] MachineTree load_topology(const std::string& path);

/// Serialises a tree to the same format (round-trips through parse_topology).
[[nodiscard]] std::string serialize_topology(const MachineTree& tree);

}  // namespace hbsp
