#include "core/machine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>
#include <string>

#include "util/hash.hpp"

namespace hbsp {
namespace {

constexpr double kEps = 1e-9;

int max_depth(const MachineSpec& spec) {
  int deepest = 0;
  for (const auto& child : spec.children) {
    deepest = std::max(deepest, 1 + max_depth(child));
  }
  return deepest;
}

void validate_spec(const MachineSpec& spec, const std::string& path) {
  if (spec.r < 1.0 - kEps) {
    throw std::invalid_argument{"machine '" + path +
                                "': r must be >= 1 (fastest machine is 1)"};
  }
  if (spec.sync_L < 0.0) {
    throw std::invalid_argument{"machine '" + path + "': L must be >= 0"};
  }
  if (spec.c && (*spec.c <= 0.0 || *spec.c > 1.0)) {
    throw std::invalid_argument{"machine '" + path + "': c must be in (0, 1]"};
  }
  const bool first_explicit =
      !spec.children.empty() && spec.children.front().c.has_value();
  double c_sum = 0.0;
  for (const auto& child : spec.children) {
    if (child.c.has_value() != first_explicit) {
      throw std::invalid_argument{
          "machine '" + path +
          "': sibling c values must be all explicit or all defaulted"};
    }
    if (child.c) c_sum += *child.c;
    validate_spec(child, path + "/" + (child.name.empty() ? "?" : child.name));
  }
  if (first_explicit && std::abs(c_sum - 1.0) > 1e-6) {
    throw std::invalid_argument{"machine '" + path +
                                "': sibling c values must sum to 1"};
  }
}

/// Aggregate "ability" of a subtree: 1/r for a processor, sum over children
/// otherwise. Used to default c so shares are proportional to speed (§3.3).
double capacity(const MachineSpec& spec) {
  if (spec.children.empty()) return 1.0 / spec.r;
  double total = 0.0;
  for (const auto& child : spec.children) total += capacity(child);
  return total;
}

}  // namespace

MachineTree MachineTree::build(const MachineSpec& root, double g) {
  if (g <= 0.0) throw std::invalid_argument{"g must be > 0"};
  validate_spec(root, root.name.empty() ? "root" : root.name);

  MachineTree tree;
  tree.g_ = g;
  const int k = max_depth(root);
  tree.levels_.resize(static_cast<std::size_t>(k) + 1);

  // Depth-first placement keeps each subtree's processors contiguous in pid
  // order and numbers each level left to right, matching the paper's
  // M_{i,0..m_i-1} labelling.
  const auto place = [&](auto&& self, const MachineSpec& spec, int depth,
                         int parent_index) -> int {
    const int level = k - depth;
    auto& row = tree.levels_[static_cast<std::size_t>(level)];
    const int index = static_cast<int>(row.size());
    row.emplace_back();
    {
      Node& n = row.back();
      n.name = spec.name;
      n.r = spec.r;
      n.compute_r = spec.compute_r < 0.0 ? spec.r : spec.compute_r;
      n.sync_L = spec.sync_L;
      n.parent = parent_index;
    }

    if (spec.children.empty()) {
      const int pid = static_cast<int>(tree.processors_.size());
      tree.processors_.push_back(MachineId{level, index});
      Node& n = tree.levels_[static_cast<std::size_t>(level)]
                           [static_cast<std::size_t>(index)];
      n.pid = pid;
      n.coordinator_pid = pid;
      n.leaf_begin = pid;
      n.leaf_end = pid + 1;
      return index;
    }

    const double total_capacity = capacity(spec);
    std::vector<int> child_indices;
    child_indices.reserve(spec.children.size());
    for (const auto& child_spec : spec.children) {
      const int ci = self(self, child_spec, depth + 1, index);
      child_indices.push_back(ci);
      // Fill in the child's share of this node's data (Table 1's c_{i,j}).
      Node& child_node = tree.levels_[static_cast<std::size_t>(level - 1)]
                                     [static_cast<std::size_t>(ci)];
      child_node.c = child_spec.c ? *child_spec.c
                                  : capacity(child_spec) / total_capacity;
    }

    // Vector may have reallocated during recursion: re-resolve the node.
    Node& n = tree.levels_[static_cast<std::size_t>(level)]
                         [static_cast<std::size_t>(index)];
    n.children = std::move(child_indices);
    n.leaf_begin = std::numeric_limits<int>::max();
    n.leaf_end = 0;
    double best_r = std::numeric_limits<double>::infinity();
    int best_pid = -1;
    for (const int ci : n.children) {
      const Node& child = tree.levels_[static_cast<std::size_t>(level - 1)]
                                      [static_cast<std::size_t>(ci)];
      n.leaf_begin = std::min(n.leaf_begin, child.leaf_begin);
      n.leaf_end = std::max(n.leaf_end, child.leaf_end);
      // child.r already equals its own coordinator's r (set below for
      // interior children, which recursion has completed).
      if (child.r < best_r - kEps) {
        best_r = child.r;
        best_pid = child.coordinator_pid;
      }
    }
    n.coordinator_pid = best_pid;
    // A cluster's r is its coordinator's: "coordinators may represent the
    // fastest machine in their subtree" (§3.1), hence r_{1,0} = r_{2,0} = 1
    // in the paper's analyses.
    n.r = tree.node(tree.processor(best_pid)).r;
    n.compute_r = tree.node(tree.processor(best_pid)).compute_r;
    return index;
  };
  place(place, root, 0, -1);

  // The model normalises the fastest machine's r to 1 (§3.3).
  double min_r = std::numeric_limits<double>::infinity();
  for (const MachineId id : tree.processors_) min_r = std::min(min_r, tree.r(id));
  if (std::abs(min_r - 1.0) > 1e-6) {
    throw std::invalid_argument{
        "the fastest processor must have r == 1 (found min r = " +
        std::to_string(min_r) + ")"};
  }

  // global_c: product of c along the path from the root.
  for (int level = tree.height(); level >= 0; --level) {
    for (auto& n : tree.levels_[static_cast<std::size_t>(level)]) {
      if (n.parent < 0) {
        n.global_c = 1.0;
      } else {
        const Node& p = tree.levels_[static_cast<std::size_t>(level) + 1]
                                    [static_cast<std::size_t>(n.parent)];
        n.global_c = p.global_c * n.c;
      }
    }
  }

  // Structural fingerprint: every model parameter and the full shape in
  // level-major order. Derived fields (global_c, coordinator_pid, leaf
  // ranges) are pure functions of what is hashed, so they add nothing.
  util::Hash64 hash;
  hash.add_double(tree.g_);
  hash.add(tree.levels_.size());
  for (const auto& row : tree.levels_) {
    hash.add(row.size());
    for (const Node& n : row) {
      hash.add_string(n.name);
      hash.add_double(n.r);
      hash.add_double(n.compute_r);
      hash.add_double(n.sync_L);
      hash.add_double(n.c);
      hash.add_int(n.parent);
      hash.add(n.children.size());
      hash.add_int(n.pid);
    }
  }
  tree.fingerprint_ = hash.digest();
  return tree;
}

int MachineTree::machines_at(int level) const {
  if (level < 0 || level >= num_levels()) {
    throw std::out_of_range{"machines_at: bad level " + std::to_string(level)};
  }
  return static_cast<int>(levels_[static_cast<std::size_t>(level)].size());
}

const MachineTree::Node& MachineTree::node(MachineId id) const {
  if (id.level < 0 || id.level >= num_levels()) {
    throw std::out_of_range{"node: bad level " + std::to_string(id.level)};
  }
  const auto& row = levels_[static_cast<std::size_t>(id.level)];
  if (id.index < 0 || id.index >= static_cast<int>(row.size())) {
    throw std::out_of_range{"node: bad index " + std::to_string(id.index) +
                            " at level " + std::to_string(id.level)};
  }
  return row[static_cast<std::size_t>(id.index)];
}

std::optional<MachineId> MachineTree::parent(MachineId id) const {
  const Node& n = node(id);
  if (n.parent < 0) return std::nullopt;
  return MachineId{id.level + 1, n.parent};
}

MachineId MachineTree::child(MachineId id, int nth) const {
  const Node& n = node(id);
  if (nth < 0 || nth >= static_cast<int>(n.children.size())) {
    throw std::out_of_range{"child: bad ordinal " + std::to_string(nth)};
  }
  return MachineId{id.level - 1, n.children[static_cast<std::size_t>(nth)]};
}

MachineId MachineTree::processor(int pid) const {
  if (pid < 0 || pid >= num_processors()) {
    throw std::out_of_range{"processor: bad pid " + std::to_string(pid)};
  }
  return processors_[static_cast<std::size_t>(pid)];
}

std::pair<int, int> MachineTree::processor_range(MachineId id) const {
  const Node& n = node(id);
  return {n.leaf_begin, n.leaf_end};
}

int MachineTree::slowest_pid(MachineId id) const {
  const auto [first, last] = processor_range(id);
  int slowest = first;
  for (int pid = first + 1; pid < last; ++pid) {
    if (processor_r(pid) > processor_r(slowest) + kEps) slowest = pid;
  }
  return slowest;
}

int MachineTree::lca_level(int pid_a, int pid_b) const {
  if (pid_a == pid_b) return processor(pid_a).level;
  MachineId a = processor(pid_a);
  MachineId b = processor(pid_b);
  while (!(a == b)) {
    if (a.level <= b.level) {
      const auto pa = parent(a);
      if (!pa) break;
      a = *pa;
    } else {
      const auto pb = parent(b);
      if (!pb) break;
      b = *pb;
    }
  }
  return a.level;
}

MachineId MachineTree::ancestor_at(int pid, int level) const {
  MachineId id = processor(pid);
  if (level < id.level) {
    throw std::invalid_argument{"ancestor_at: processor sits above level"};
  }
  while (id.level < level) {
    const auto p = parent(id);
    if (!p) throw std::invalid_argument{"ancestor_at: level above the root"};
    id = *p;
  }
  return id;
}

std::vector<MachineId> MachineTree::level_ids(int level) const {
  const int count = machines_at(level);
  std::vector<MachineId> ids;
  ids.reserve(static_cast<std::size_t>(count));
  for (int j = 0; j < count; ++j) ids.push_back(MachineId{level, j});
  return ids;
}

}  // namespace hbsp
