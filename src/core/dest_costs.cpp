#include "core/dest_costs.hpp"

#include <cmath>
#include <stdexcept>
#include <string>

namespace hbsp {

DestinationCosts DestinationCosts::uniform(const MachineTree& tree) {
  DestinationCosts costs;
  const auto p = static_cast<std::size_t>(tree.num_processors());
  costs.matrix_.assign(p, std::vector<double>(p, 1.0));
  costs.uniform_ = true;
  return costs;
}

DestinationCosts DestinationCosts::by_level(
    const MachineTree& tree, std::span<const double> level_factors) {
  if (static_cast<int>(level_factors.size()) != tree.height()) {
    throw std::invalid_argument{
        "DestinationCosts::by_level: need one factor per network level (" +
        std::to_string(tree.height()) + ")"};
  }
  double previous = 1.0;
  for (const double factor : level_factors) {
    if (factor < 1.0) {
      throw std::invalid_argument{
          "DestinationCosts::by_level: factors must be >= 1"};
    }
    if (factor < previous) {
      throw std::invalid_argument{
          "DestinationCosts::by_level: factors must be non-decreasing with "
          "level"};
    }
    previous = factor;
  }

  DestinationCosts costs;
  const int p = tree.num_processors();
  costs.matrix_.assign(static_cast<std::size_t>(p),
                       std::vector<double>(static_cast<std::size_t>(p), 1.0));
  bool all_one = true;
  for (int a = 0; a < p; ++a) {
    for (int b = 0; b < p; ++b) {
      if (a == b) continue;
      const int lca = tree.lca_level(a, b);
      const double factor = level_factors[static_cast<std::size_t>(lca - 1)];
      costs.matrix_[static_cast<std::size_t>(a)][static_cast<std::size_t>(b)] =
          factor;
      all_one = all_one && std::abs(factor - 1.0) < 1e-15;
    }
  }
  costs.uniform_ = all_one;
  return costs;
}

DestinationCosts DestinationCosts::from_matrix(
    std::vector<std::vector<double>> matrix) {
  const std::size_t p = matrix.size();
  bool all_one = true;
  for (std::size_t a = 0; a < p; ++a) {
    if (matrix[a].size() != p) {
      throw std::invalid_argument{"DestinationCosts::from_matrix: not square"};
    }
    for (std::size_t b = 0; b < p; ++b) {
      if (a == b) continue;
      if (matrix[a][b] < 1.0) {
        throw std::invalid_argument{
            "DestinationCosts::from_matrix: entries must be >= 1"};
      }
      all_one = all_one && std::abs(matrix[a][b] - 1.0) < 1e-15;
    }
  }
  DestinationCosts costs;
  costs.matrix_ = std::move(matrix);
  costs.uniform_ = all_one;
  return costs;
}

double DestinationCosts::factor(int src_pid, int dst_pid) const {
  if (src_pid == dst_pid) return 1.0;
  if (src_pid < 0 || dst_pid < 0 || src_pid >= num_processors() ||
      dst_pid >= num_processors()) {
    throw std::out_of_range{"DestinationCosts::factor: bad pid"};
  }
  return matrix_[static_cast<std::size_t>(src_pid)]
                [static_cast<std::size_t>(dst_pid)];
}

}  // namespace hbsp
