#pragma once
// Communication schedules: the shared contract between the collective
// planners, the analytic cost model, and the execution engines.
//
// A planner turns (topology, root, n) into a CommSchedule — a sequence of
// superstep plans listing every point-to-point transfer in items plus local
// computation. The cost model prices a schedule with the HBSP^k formula
// (§3.4); the runtime executes the same schedule, so predicted and simulated
// costs are two views of one object and can be cross-checked in tests.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "core/machine.hpp"

namespace hbsp {

/// One point-to-point message: `items` data items from src to dst processor.
struct Transfer {
  int src_pid = 0;
  int dst_pid = 0;
  std::size_t items = 0;

  friend bool operator==(const Transfer&, const Transfer&) = default;
};

/// Local computation charged to one processor within a superstep, measured in
/// abstract item-operations.
struct ComputeWork {
  int pid = 0;
  double ops = 0.0;

  friend bool operator==(const ComputeWork&, const ComputeWork&) = default;
};

/// One super^i-step (§3.2): transfers plus computation, closed by a barrier
/// over `sync_scope`'s subtree (whose L_{i,j} applies).
struct SuperstepPlan {
  std::string label;
  int level = 1;             ///< i of the super^i-step
  MachineId sync_scope;      ///< subtree synchronised at the end
  std::vector<Transfer> transfers;
  std::vector<ComputeWork> compute;

  /// Total items sent by `pid` in this plan (self-sends excluded).
  [[nodiscard]] std::size_t items_sent(int pid) const;
  /// Total items received by `pid` in this plan (self-sends excluded).
  [[nodiscard]] std::size_t items_received(int pid) const;

  friend bool operator==(const SuperstepPlan&, const SuperstepPlan&) = default;
};

/// Superstep plans that run *concurrently* on disjoint subtrees — e.g. the
/// HBSP^2 gather's per-cluster super^1-steps, each closed by its own cluster
/// barrier. A phase completes when all of its plans have completed.
struct Phase {
  std::vector<SuperstepPlan> plans;

  friend bool operator==(const Phase&, const Phase&) = default;
};

/// A full algorithm: an ordered sequence of phases. Phases are sequential;
/// plans within a phase are concurrent.
struct CommSchedule {
  std::string name;
  std::vector<Phase> phases;

  /// Appends a phase containing a single plan and returns it for filling in.
  SuperstepPlan& add_step(std::string label, int level, MachineId sync_scope);

  /// Appends an empty phase (for concurrent plans) and returns it.
  Phase& add_phase();

  /// Total items moved across all supersteps (self-sends excluded).
  [[nodiscard]] std::size_t total_items() const;
  /// Total number of point-to-point messages (self-sends excluded).
  [[nodiscard]] std::size_t total_messages() const;

  /// Stable structural hash of the whole schedule (name, labels, scopes,
  /// transfers, compute — everything operator== compares). Equal schedules
  /// have equal fingerprints; the scenario cache keys simulation results on
  /// it together with the machine fingerprint.
  [[nodiscard]] std::uint64_t fingerprint() const;

  friend bool operator==(const CommSchedule&, const CommSchedule&) = default;
};

/// Throws std::invalid_argument unless every pid in the schedule exists in
/// `tree`, every sync_scope contains all of its plan's endpoints, and the
/// sync scopes within each phase are pairwise disjoint.
void validate_schedule(const MachineTree& tree, const CommSchedule& schedule);

}  // namespace hbsp
