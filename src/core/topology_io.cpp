#include "core/topology_io.hpp"

#include <cstdio>
#include <fstream>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <vector>

namespace hbsp {
namespace {

struct Token {
  std::string text;
  int line = 0;
};

[[noreturn]] void fail(int line, const std::string& message) {
  throw std::invalid_argument{"topology line " + std::to_string(line) + ": " +
                              message};
}

std::vector<Token> tokenize(std::string_view text) {
  std::vector<Token> tokens;
  int line = 1;
  std::string current;
  const auto flush = [&] {
    if (!current.empty()) {
      tokens.push_back({current, line});
      current.clear();
    }
  };
  for (std::size_t i = 0; i < text.size(); ++i) {
    const char ch = text[i];
    if (ch == '#') {
      flush();
      while (i < text.size() && text[i] != '\n') ++i;
      ++line;
      continue;
    }
    if (ch == '\n') {
      flush();
      ++line;
    } else if (ch == ' ' || ch == '\t' || ch == '\r') {
      flush();
    } else if (ch == '{' || ch == '}') {
      flush();
      tokens.push_back({std::string(1, ch), line});
    } else {
      current += ch;
    }
  }
  flush();
  return tokens;
}

double parse_number(const Token& token) {
  char* end = nullptr;
  const double value = std::strtod(token.text.c_str(), &end);
  if (end == token.text.c_str() || *end != '\0') {
    fail(token.line, "expected a number, got '" + token.text + "'");
  }
  return value;
}

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  MachineTree parse() {
    std::optional<double> g;
    std::optional<MachineSpec> root;
    while (!at_end()) {
      const Token& head = peek();
      if (head.text == "g") {
        if (g) fail(head.line, "duplicate g");
        advance();
        g = parse_number(expect_any("value for g"));
      } else if (head.text == "machine") {
        if (root) fail(head.line, "only one top-level machine block allowed");
        root = parse_machine();
      } else {
        fail(head.line, "expected 'g' or 'machine', got '" + head.text + "'");
      }
    }
    if (!g) throw std::invalid_argument{"topology: missing 'g' line"};
    if (!root) throw std::invalid_argument{"topology: missing 'machine' block"};
    return MachineTree::build(*root, *g);
  }

 private:
  MachineSpec parse_machine() {
    const Token keyword = expect("machine");
    MachineSpec spec;
    spec.name = expect_any("machine name").text;
    while (!at_end() && peek().text != "{" && peek().text != "}" &&
           peek().text != "machine" && peek().text != "g") {
      const Token attr = advance();
      const auto eq = attr.text.find('=');
      if (eq == std::string::npos) {
        fail(attr.line, "expected key=value attribute, got '" + attr.text + "'");
      }
      const std::string key = attr.text.substr(0, eq);
      const Token value_token{attr.text.substr(eq + 1), attr.line};
      const double value = parse_number(value_token);
      if (key == "r") {
        spec.r = value;
      } else if (key == "cr") {
        spec.compute_r = value;
      } else if (key == "L") {
        spec.sync_L = value;
      } else if (key == "c") {
        spec.c = value;
      } else {
        fail(attr.line, "unknown attribute '" + key + "'");
      }
    }
    if (!at_end() && peek().text == "{") {
      advance();
      while (!at_end() && peek().text != "}") {
        if (peek().text != "machine") {
          fail(peek().line, "expected nested 'machine' or '}'");
        }
        spec.children.push_back(parse_machine());
      }
      if (at_end()) fail(keyword.line, "unterminated '{'");
      advance();  // consume '}'
    }
    return spec;
  }

  [[nodiscard]] bool at_end() const { return pos_ >= tokens_.size(); }
  [[nodiscard]] const Token& peek() const { return tokens_[pos_]; }
  Token advance() { return tokens_[pos_++]; }

  Token expect(const std::string& text) {
    if (at_end() || peek().text != text) {
      fail(at_end() ? 0 : peek().line, "expected '" + text + "'");
    }
    return advance();
  }

  Token expect_any(const std::string& what) {
    if (at_end()) fail(0, "expected " + what + ", got end of input");
    return advance();
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

void serialize_node(const MachineTree& tree, MachineId id, int indent,
                    std::ostringstream& out) {
  const auto& n = tree.node(id);
  out << std::string(static_cast<std::size_t>(indent) * 2, ' ') << "machine "
      << (n.name.empty() ? "m" + std::to_string(id.level) + "_" +
                               std::to_string(id.index)
                         : n.name);
  char buffer[64];
  // Interior r/compute_r are derived from the coordinator, so only leaves
  // carry them in the file.
  if (tree.is_processor(id)) {
    std::snprintf(buffer, sizeof buffer, " r=%.17g", n.r);
    out << buffer;
    if (n.compute_r != n.r) {
      std::snprintf(buffer, sizeof buffer, " cr=%.17g", n.compute_r);
      out << buffer;
    }
  }
  if (n.sync_L != 0.0) {
    std::snprintf(buffer, sizeof buffer, " L=%.17g", n.sync_L);
    out << buffer;
  }
  if (n.parent >= 0) {
    std::snprintf(buffer, sizeof buffer, " c=%.17g", n.c);
    out << buffer;
  }
  if (!tree.is_processor(id)) {
    out << " {\n";
    for (int i = 0; i < tree.num_children(id); ++i) {
      serialize_node(tree, tree.child(id, i), indent + 1, out);
    }
    out << std::string(static_cast<std::size_t>(indent) * 2, ' ') << "}";
  }
  out << '\n';
}

}  // namespace

MachineTree parse_topology(std::string_view text) {
  return Parser{tokenize(text)}.parse();
}

MachineTree load_topology(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error{"load_topology: cannot open " + path};
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_topology(buffer.str());
}

std::string serialize_topology(const MachineTree& tree) {
  std::ostringstream out;
  char buffer[64];
  std::snprintf(buffer, sizeof buffer, "g %.17g\n", tree.g());
  out << buffer;
  serialize_node(tree, tree.root(), 0, out);
  return out.str();
}

}  // namespace hbsp
