#include "core/cost_model.hpp"

#include <algorithm>
#include <map>

#include "core/dest_costs.hpp"

namespace hbsp {

CostModel::CostModel(const MachineTree& tree, double seconds_per_op)
    : tree_(&tree),
      seconds_per_op_(seconds_per_op < 0.0 ? tree.g() : seconds_per_op) {}

double CostModel::h_relation(const SuperstepPlan& step) const {
  // Accumulate per-processor sent/received volumes in one pass; with the §6
  // extension enabled, each transfer's items are weighted by λ(src,dst).
  const bool weighted =
      destination_costs_ != nullptr && !destination_costs_->is_uniform();
  std::map<int, std::pair<double, double>> traffic;  // pid -> {out, in}
  for (const auto& t : step.transfers) {
    if (t.src_pid == t.dst_pid) continue;
    const double weight =
        weighted ? destination_costs_->factor(t.src_pid, t.dst_pid) : 1.0;
    const double volume = weight * static_cast<double>(t.items);
    traffic[t.src_pid].first += volume;
    traffic[t.dst_pid].second += volume;
  }
  double h = 0.0;
  for (const auto& [pid, volumes] : traffic) {
    const double h_j = std::max(volumes.first, volumes.second);
    h = std::max(h, tree_->processor_r(pid) * h_j);
  }
  return h;
}

SuperstepCost CostModel::cost(const SuperstepPlan& step) const {
  SuperstepCost priced;
  for (const auto& work : step.compute) {
    priced.w = std::max(
        priced.w, work.ops * tree_->processor_compute_r(work.pid) * seconds_per_op_);
  }
  priced.h = h_relation(step);
  priced.gh = tree_->g() * priced.h;
  priced.L = tree_->sync_L(step.sync_scope);
  return priced;
}

ScheduleCost CostModel::cost(const CommSchedule& schedule) const {
  ScheduleCost priced;
  priced.phases.reserve(schedule.phases.size());
  for (const auto& phase : schedule.phases) {
    PhaseCost& pc = priced.phases.emplace_back();
    pc.plans.reserve(phase.plans.size());
    for (const auto& plan : phase.plans) pc.plans.push_back(cost(plan));
  }
  return priced;
}

}  // namespace hbsp
