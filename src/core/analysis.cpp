#include "core/analysis.hpp"

#include <algorithm>
#include <functional>
#include <map>
#include <stdexcept>
#include <string>

#include "core/workload.hpp"

namespace hbsp::analysis {
namespace {

double items(std::size_t n) { return static_cast<double>(n); }

/// g·h + L for one superstep, labelled.
StepCost comm_step(const MachineTree& tree, MachineId scope, std::string label,
                   double h) {
  return {std::move(label), tree.g() * h + tree.sync_L(scope)};
}

}  // namespace

std::vector<std::size_t> member_shares(const MachineTree& tree,
                                       MachineId cluster, std::size_t n,
                                       Shares shares) {
  const int m = tree.num_children(cluster);
  if (m == 0) {
    throw std::invalid_argument{"member_shares: cluster is a processor"};
  }
  std::vector<double> fractions;
  fractions.reserve(static_cast<std::size_t>(m));
  if (shares == Shares::kBalanced) {
    for (int j = 0; j < m; ++j) fractions.push_back(tree.c(tree.child(cluster, j)));
  } else {
    const auto [first, last] = tree.processor_range(cluster);
    const double total = items(static_cast<std::size_t>(last - first));
    for (int j = 0; j < m; ++j) {
      const auto [cf, cl] = tree.processor_range(tree.child(cluster, j));
      fractions.push_back(items(static_cast<std::size_t>(cl - cf)) / total);
    }
  }
  return apportion(fractions, n);
}

Members cluster_members(const MachineTree& tree, MachineId cluster,
                        std::size_t n, Shares shares) {
  Members members;
  const int m = tree.num_children(cluster);
  if (m == 0) {
    throw std::invalid_argument{"cluster_members: cluster is a processor"};
  }
  members.children.reserve(static_cast<std::size_t>(m));
  members.pids.reserve(static_cast<std::size_t>(m));
  for (int j = 0; j < m; ++j) {
    const MachineId child = tree.child(cluster, j);
    members.children.push_back(child);
    members.pids.push_back(tree.coordinator_pid(child));
  }
  members.shares = member_shares(tree, cluster, n, shares);
  return members;
}


std::vector<std::size_t> broadcast_pieces(const MachineTree& tree,
                                          MachineId cluster, std::size_t n,
                                          Shares shares) {
  const int m = tree.num_children(cluster);
  if (m == 0) {
    throw std::invalid_argument{"broadcast_pieces: cluster is a processor"};
  }
  if (shares == Shares::kEqual) {
    return equal_partition(n, static_cast<std::size_t>(m));
  }
  return member_shares(tree, cluster, n, shares);
}

int member_of_pid(const MachineTree& tree, MachineId cluster, int pid) {
  for (int j = 0; j < tree.num_children(cluster); ++j) {
    const auto [first, last] = tree.processor_range(tree.child(cluster, j));
    if (pid >= first && pid < last) return j;
  }
  throw std::invalid_argument{"member_of_pid: pid " + std::to_string(pid) +
                              " not in cluster"};
}

AlgoCost hbsp1_gather(const MachineTree& tree, MachineId cluster, int root_pid,
                      std::size_t n, Shares shares) {
  const Members members = cluster_members(tree, cluster, n, shares);
  const int root_member = member_of_pid(tree, cluster, root_pid);
  // h = max{ max_j r_j·x_j (senders), r_root·(n − x_root) (receiver) }.
  double h = tree.processor_r(root_pid) *
             items(n - members.shares[static_cast<std::size_t>(root_member)]);
  for (std::size_t j = 0; j < members.pids.size(); ++j) {
    if (static_cast<int>(j) == root_member) continue;
    h = std::max(h, tree.processor_r(members.pids[j]) * items(members.shares[j]));
  }
  AlgoCost cost;
  cost.steps.push_back(comm_step(tree, cluster, "gather", h));
  return cost;
}


AlgoCost hbsp1_gather_dest(const MachineTree& tree, MachineId cluster,
                           int root_pid, std::size_t n, Shares shares,
                           const DestinationCosts& costs) {
  const Members members = cluster_members(tree, cluster, n, shares);
  const int root_member = member_of_pid(tree, cluster, root_pid);
  double inbound = 0.0;
  double h = 0.0;
  for (std::size_t j = 0; j < members.pids.size(); ++j) {
    if (static_cast<int>(j) == root_member) continue;
    const double lambda = costs.factor(members.pids[j], root_pid);
    const double volume = lambda * items(members.shares[j]);
    inbound += volume;
    h = std::max(h, tree.processor_r(members.pids[j]) * volume);
  }
  h = std::max(h, tree.processor_r(root_pid) * inbound);
  AlgoCost cost;
  cost.steps.push_back(comm_step(tree, cluster, "gather (dest-weighted)", h));
  return cost;
}

AlgoCost hbsp2_gather(const MachineTree& tree, std::size_t n, Shares shares) {
  const MachineId root = tree.root();
  if (tree.num_children(root) == 0) {
    throw std::invalid_argument{"hbsp2_gather: single-processor machine"};
  }
  const Members top = cluster_members(tree, root, n, shares);
  const int root_coord = tree.coordinator_pid(root);
  const int root_member = member_of_pid(tree, root, root_coord);

  // super^1: every (non-degenerate) cluster gathers its share to its
  // coordinator concurrently; the step costs what the slowest cluster costs.
  double super1 = 0.0;
  for (std::size_t j = 0; j < top.children.size(); ++j) {
    if (tree.is_processor(top.children[j])) continue;
    const AlgoCost inner =
        hbsp1_gather(tree, top.children[j], tree.coordinator_pid(top.children[j]),
                     top.shares[j], shares);
    super1 = std::max(super1, inner.total());
  }

  // super^2: coordinators forward their cluster's items to the root
  // coordinator: g·max{ r_{1,j}·x_{1,j}, r_{2,0}·(n − x_root-cluster) } + L.
  double h2 = tree.processor_r(root_coord) *
              items(n - top.shares[static_cast<std::size_t>(root_member)]);
  for (std::size_t j = 0; j < top.pids.size(); ++j) {
    if (static_cast<int>(j) == root_member) continue;
    h2 = std::max(h2, tree.processor_r(top.pids[j]) * items(top.shares[j]));
  }

  AlgoCost cost;
  cost.steps.push_back({"super1: cluster gathers", super1});
  cost.steps.push_back(comm_step(tree, root, "super2: forward to root", h2));
  return cost;
}

AlgoCost hbsp1_broadcast_two_phase(const MachineTree& tree, MachineId cluster,
                                   int root_pid, std::size_t n, Shares shares) {
  Members members = cluster_members(tree, cluster, n, shares);
  members.shares = broadcast_pieces(tree, cluster, n, shares);
  const std::size_t m = members.pids.size();
  const int root_member = member_of_pid(tree, cluster, root_pid);

  // Phase 1 — scatter: the root keeps its own share, sends the rest.
  double h1 = tree.processor_r(root_pid) *
              items(n - members.shares[static_cast<std::size_t>(root_member)]);
  for (std::size_t j = 0; j < m; ++j) {
    if (static_cast<int>(j) == root_member) continue;
    h1 = std::max(h1, tree.processor_r(members.pids[j]) * items(members.shares[j]));
  }

  // Phase 2 — total exchange: j sends its share to the other m−1 members and
  // receives everyone else's, n − x_j items.
  double h2 = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    const double sent = items(members.shares[j]) * items(m - 1);
    const double received = items(n - members.shares[j]);
    h2 = std::max(h2, tree.processor_r(members.pids[j]) * std::max(sent, received));
  }

  AlgoCost cost;
  cost.steps.push_back(comm_step(tree, cluster, "scatter", h1));
  cost.steps.push_back(comm_step(tree, cluster, "total exchange", h2));
  return cost;
}

AlgoCost hbsp1_broadcast_one_phase(const MachineTree& tree, MachineId cluster,
                                   int root_pid, std::size_t n) {
  const Members members = cluster_members(tree, cluster, n, Shares::kEqual);
  const std::size_t m = members.pids.size();
  const int root_member = member_of_pid(tree, cluster, root_pid);
  double h = tree.processor_r(root_pid) * items(n) * items(m - 1);
  for (std::size_t j = 0; j < m; ++j) {
    if (static_cast<int>(j) == root_member) continue;
    h = std::max(h, tree.processor_r(members.pids[j]) * items(n));
  }
  AlgoCost cost;
  cost.steps.push_back(comm_step(tree, cluster, "one-phase broadcast", h));
  return cost;
}

AlgoCost hbsp2_broadcast(const MachineTree& tree, std::size_t n,
                         TopPhase top_phase) {
  const MachineId root = tree.root();
  if (tree.num_children(root) == 0) {
    throw std::invalid_argument{"hbsp2_broadcast: single-processor machine"};
  }
  AlgoCost cost;
  const int root_coord = tree.coordinator_pid(root);

  if (top_phase == TopPhase::kOnePhase) {
    const AlgoCost top =
        hbsp1_broadcast_one_phase(tree, root, root_coord, n);
    cost.steps.push_back({"super2: one-phase to coordinators",
                          top.steps.front().cost});
  } else {
    // The paper's two-phase super^2: scatter n/m_{2,0} then total exchange,
    // with equal per-coordinator pieces.
    const AlgoCost top = hbsp1_broadcast_two_phase(tree, root, root_coord, n,
                                                   Shares::kEqual);
    for (const auto& step : top.steps) {
      cost.steps.push_back({"super2: " + step.label, step.cost});
    }
  }

  // super^1: each cluster broadcasts the n items internally with the
  // two-phase HBSP^1 algorithm; degenerate (single-processor) children are
  // already done. §3.2 closes every super^1-step with a synchronisation of
  // all level-1 nodes, so each of the two internal supersteps costs the
  // maximum over the clusters (not the maximum of per-cluster sums).
  double scatter_step = 0.0;
  double exchange_step = 0.0;
  for (int j = 0; j < tree.num_children(root); ++j) {
    const MachineId child = tree.child(root, j);
    if (tree.is_processor(child)) continue;
    const AlgoCost inner = hbsp1_broadcast_two_phase(
        tree, child, tree.coordinator_pid(child), n, Shares::kEqual);
    scatter_step = std::max(scatter_step, inner.steps[0].cost);
    exchange_step = std::max(exchange_step, inner.steps[1].cost);
  }
  cost.steps.push_back({"super1: cluster scatters", scatter_step});
  cost.steps.push_back({"super1: cluster exchanges", exchange_step});
  return cost;
}

namespace {

/// Binary search for the first n in [1, n_max] satisfying `two_no_worse`
/// (monotone: two-phase's advantage grows with n, the L penalty is fixed).
std::optional<std::size_t> first_crossover(
    std::size_t n_max, const std::function<bool(std::size_t)>& two_no_worse) {
  if (!two_no_worse(n_max)) return std::nullopt;
  std::size_t lo = 1, hi = n_max;
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (two_no_worse(mid)) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

}  // namespace

std::optional<std::size_t> broadcast_crossover_n(const MachineTree& tree,
                                                 MachineId cluster, int root_pid,
                                                 std::size_t n_max) {
  return first_crossover(n_max, [&](std::size_t n) {
    return hbsp1_broadcast_two_phase(tree, cluster, root_pid, n, Shares::kEqual)
               .total() <=
           hbsp1_broadcast_one_phase(tree, cluster, root_pid, n).total();
  });
}

std::optional<std::size_t> hbsp2_broadcast_crossover_n(const MachineTree& tree,
                                                       std::size_t n_max) {
  return first_crossover(n_max, [&](std::size_t n) {
    return hbsp2_broadcast(tree, n, TopPhase::kTwoPhase).total() <=
           hbsp2_broadcast(tree, n, TopPhase::kOnePhase).total();
  });
}

AlgoCost hbsp1_scatter(const MachineTree& tree, MachineId cluster, int root_pid,
                       std::size_t n, Shares shares) {
  const Members members = cluster_members(tree, cluster, n, shares);
  const int root_member = member_of_pid(tree, cluster, root_pid);
  double h = tree.processor_r(root_pid) *
             items(n - members.shares[static_cast<std::size_t>(root_member)]);
  for (std::size_t j = 0; j < members.pids.size(); ++j) {
    if (static_cast<int>(j) == root_member) continue;
    h = std::max(h, tree.processor_r(members.pids[j]) * items(members.shares[j]));
  }
  AlgoCost cost;
  cost.steps.push_back(comm_step(tree, cluster, "scatter", h));
  return cost;
}

AlgoCost hbsp1_allgather(const MachineTree& tree, MachineId cluster,
                         std::size_t n, Shares shares) {
  const Members members = cluster_members(tree, cluster, n, shares);
  const std::size_t m = members.pids.size();
  double h = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    const double sent = items(members.shares[j]) * items(m - 1);
    const double received = items(n - members.shares[j]);
    h = std::max(h, tree.processor_r(members.pids[j]) * std::max(sent, received));
  }
  AlgoCost cost;
  cost.steps.push_back(comm_step(tree, cluster, "allgather", h));
  return cost;
}

AlgoCost hbsp1_reduce(const MachineTree& tree, MachineId cluster, int root_pid,
                      std::size_t n, Shares shares) {
  const Members members = cluster_members(tree, cluster, n, shares);
  const std::size_t m = members.pids.size();
  const int root_member = member_of_pid(tree, cluster, root_pid);
  const double op_cost = tree.g();  // matches CostModel's default seconds_per_op

  // Step 1: local combine (x_j − 1 ops) + one partial item to the root.
  double w1 = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    const double ops = members.shares[j] > 0 ? items(members.shares[j]) - 1.0 : 0.0;
    w1 = std::max(w1,
                  ops * tree.processor_compute_r(members.pids[j]) * op_cost);
  }
  double h1 = tree.processor_r(root_pid) * items(m - 1);
  for (std::size_t j = 0; j < m; ++j) {
    if (static_cast<int>(j) == root_member) continue;
    h1 = std::max(h1, tree.processor_r(members.pids[j]) * 1.0);
  }

  // Step 2: the root combines the m partials (m − 1 ops), no communication.
  const double w2 =
      items(m - 1) * tree.processor_compute_r(root_pid) * op_cost;

  AlgoCost cost;
  cost.steps.push_back({"combine + send partials",
                        w1 + tree.g() * h1 + tree.sync_L(cluster)});
  cost.steps.push_back({"root combine", w2 + tree.sync_L(cluster)});
  return cost;
}


AlgoCost hbspk_reduce(const MachineTree& tree, std::size_t n, Shares shares,
                      int root_pid) {
  if (tree.num_children(tree.root()) == 0) {
    throw std::invalid_argument{"hbspk_reduce: single-processor machine"};
  }
  const int root = root_pid < 0 ? tree.coordinator_pid(tree.root()) : root_pid;
  const double op_cost = tree.g();

  // Per-leaf shares via the same recursive split the planners use.
  std::vector<std::size_t> leaf(static_cast<std::size_t>(tree.num_processors()), 0);
  {
    // Walk node shares top-down.
    std::vector<std::vector<std::size_t>> per_node(
        static_cast<std::size_t>(tree.num_levels()));
    for (int level = 0; level < tree.num_levels(); ++level) {
      per_node[static_cast<std::size_t>(level)].resize(
          static_cast<std::size_t>(tree.machines_at(level)), 0);
    }
    per_node[static_cast<std::size_t>(tree.height())][0] = n;
    for (int level = tree.height(); level >= 1; --level) {
      for (int j = 0; j < tree.machines_at(level); ++j) {
        const MachineId id{level, j};
        if (tree.is_processor(id)) continue;
        const auto split = member_shares(
            tree, id,
            per_node[static_cast<std::size_t>(level)][static_cast<std::size_t>(j)],
            shares);
        for (int child = 0; child < tree.num_children(id); ++child) {
          const MachineId cid = tree.child(id, child);
          per_node[static_cast<std::size_t>(cid.level)]
                  [static_cast<std::size_t>(cid.index)] =
                      split[static_cast<std::size_t>(child)];
        }
      }
    }
    for (int pid = 0; pid < tree.num_processors(); ++pid) {
      const MachineId id = tree.processor(pid);
      leaf[static_cast<std::size_t>(pid)] =
          per_node[static_cast<std::size_t>(id.level)]
                  [static_cast<std::size_t>(id.index)];
    }
  }

  const auto site_of = [&](MachineId id) {
    if (tree.is_processor(id)) return tree.node(id).pid;
    const auto [first, last] = tree.processor_range(id);
    if (root >= first && root < last) return root;
    return tree.coordinator_pid(id);
  };

  std::map<int, double> pending;
  for (int pid = 0; pid < tree.num_processors(); ++pid) {
    const std::size_t share = leaf[static_cast<std::size_t>(pid)];
    pending[pid] = share > 0 ? static_cast<double>(share) - 1.0 : 0.0;
  }

  AlgoCost cost;
  for (int level = 1; level <= tree.height(); ++level) {
    double phase_cost = 0.0;
    bool any_cluster = false;
    for (int j = 0; j < tree.machines_at(level); ++j) {
      const MachineId cluster{level, j};
      if (tree.is_processor(cluster)) continue;
      any_cluster = true;
      const int target = site_of(cluster);
      double w = 0.0;
      double sender_h = 0.0;
      double partials = 0.0;
      for (int child = 0; child < tree.num_children(cluster); ++child) {
        const int site = site_of(tree.child(cluster, child));
        if (auto owed = pending.find(site);
            owed != pending.end() && owed->second > 0.0) {
          w = std::max(w, owed->second * tree.processor_compute_r(site) * op_cost);
          owed->second = 0.0;
        }
        if (site != target) {
          sender_h = std::max(sender_h, tree.processor_r(site) * 1.0);
          partials += 1.0;
        }
      }
      pending[target] += partials;
      const double h = std::max(sender_h, tree.processor_r(target) * partials);
      phase_cost = std::max(phase_cost, w + tree.g() * h + tree.sync_L(cluster));
    }
    if (any_cluster) {
      cost.steps.push_back({"reduce L" + std::to_string(level), phase_cost});
    }
  }

  const int root_target = site_of(tree.root());
  const double w_final = pending[root_target] *
                         tree.processor_compute_r(root_target) * op_cost;
  cost.steps.push_back({"root combine", w_final + tree.sync_L(tree.root())});
  return cost;
}

AlgoCost hbsp1_scan(const MachineTree& tree, MachineId cluster, std::size_t n,
                    Shares shares) {
  const Members members = cluster_members(tree, cluster, n, shares);
  const std::size_t m = members.pids.size();
  const int root_pid = tree.coordinator_pid(cluster);
  const int root_member = member_of_pid(tree, cluster, root_pid);
  const double op_cost = tree.g();

  const auto max_local_ops = [&]() {
    double w = 0.0;
    for (std::size_t j = 0; j < m; ++j) {
      w = std::max(w, items(members.shares[j]) *
                          tree.processor_compute_r(members.pids[j]) * op_cost);
    }
    return w;
  };

  // Step 1: local inclusive prefix + 1-item partial totals to the coordinator.
  const double w1 = max_local_ops();
  double h1 = tree.processor_r(root_pid) * items(m - 1);
  for (std::size_t j = 0; j < m; ++j) {
    if (static_cast<int>(j) == root_member) continue;
    h1 = std::max(h1, tree.processor_r(members.pids[j]) * 1.0);
  }

  // Step 2: coordinator prefixes the m partials, sends 1-item offsets back.
  const double w2 = items(m) * tree.processor_compute_r(root_pid) * op_cost;
  const double h2 = h1;  // mirror image of step 1's traffic

  // Step 3: local add of the offset.
  const double w3 = max_local_ops();

  AlgoCost cost;
  cost.steps.push_back({"local prefix + partials",
                        w1 + tree.g() * h1 + tree.sync_L(cluster)});
  cost.steps.push_back({"offsets back", w2 + tree.g() * h2 + tree.sync_L(cluster)});
  cost.steps.push_back({"apply offsets", w3 + tree.sync_L(cluster)});
  return cost;
}

AlgoCost hbsp1_alltoall(const MachineTree& tree, MachineId cluster,
                        std::size_t n, Shares shares) {
  const Members members = cluster_members(tree, cluster, n, shares);
  const std::size_t m = members.pids.size();

  // j splits its x_j items into m equal blocks (largest-first remainder) and
  // keeps block j; received_j = sum over i != j of block_{i,j}.
  std::vector<std::vector<std::size_t>> blocks(m);
  for (std::size_t j = 0; j < m; ++j) {
    blocks[j] = equal_partition(members.shares[j], m);
  }
  double h = 0.0;
  for (std::size_t j = 0; j < m; ++j) {
    const double sent = items(members.shares[j] - blocks[j][j]);
    double received = 0.0;
    for (std::size_t i = 0; i < m; ++i) {
      if (i != j) received += items(blocks[i][j]);
    }
    h = std::max(h, tree.processor_r(members.pids[j]) * std::max(sent, received));
  }
  AlgoCost cost;
  cost.steps.push_back(comm_step(tree, cluster, "all-to-all", h));
  return cost;
}

}  // namespace hbsp::analysis
