#pragma once
// Deterministic parallel sweep engine for the §5 grid experiments.
//
// The paper's protocol is a p × problem-size grid whose cells are mutually
// independent: each cell builds its own machine tree, plans its own
// schedules, and runs its own simulation. SweepRunner shards those cells
// across a util::ThreadPool and hands every cell a private util::Rng stream
// whose seed is split from the sweep's master seed by the cell's *position*
// (row-major index) — never by execution order — so the resulting table is
// bit-for-bit identical at any thread count and under any work-stealing
// schedule. The determinism regression tests in tests/test_sweep_determinism
// enforce exactly that.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"

namespace hbsp::exp {

/// The axes of a sweep plus the master seed per-cell streams are split from.
struct SweepGrid {
  std::vector<int> processors;
  std::vector<std::size_t> kbytes;
  std::uint64_t master_seed = 0;
};

/// One grid cell, as presented to the cell function. `seed` is
/// util::split_seed(master_seed, index), so it depends only on the cell's
/// position in the grid.
struct SweepCell {
  std::size_t row = 0;    ///< index into SweepGrid::processors
  std::size_t col = 0;    ///< index into SweepGrid::kbytes
  std::size_t index = 0;  ///< row-major position, row * #kbytes + col
  int p = 0;              ///< processors[row]
  std::size_t kbytes = 0; ///< kbytes[col]
  std::size_t n = 0;      ///< problem size in 4-byte ints
  std::uint64_t seed = 0; ///< split from the master seed by `index`

  /// The cell's private generator stream.
  [[nodiscard]] util::Rng rng() const noexcept { return util::Rng{seed}; }
};

/// Improvement factors, factor[i][j] for processors[i] x kbytes[j].
struct ImprovementTable {
  std::vector<int> processors;
  std::vector<std::size_t> kbytes;
  std::vector<std::vector<double>> factor;

  /// Renders with one row per p and one column per problem size.
  [[nodiscard]] util::Table to_table(const std::string& title) const;
};

/// Renders an ImprovementTable in the benches' CSV format: a "p",<sizes>
/// header row, then one row per p with 4-decimal factors. This exact text is
/// what the golden-file tests pin, so benches and tests share it.
[[nodiscard]] std::string improvement_csv(const ImprovementTable& table);

/// Writes improvement_csv(table) to `path` (RFC-4180, via util::CsvWriter).
void write_improvement_csv(const ImprovementTable& table,
                           const std::string& path);

/// Throughput counters from the last SweepRunner::run, reported through
/// util::stats so benches can print observable cells/sec and per-cell wall
/// clock distributions.
struct SweepCounters {
  std::size_t cells = 0;
  int threads = 1;
  std::size_t steals = 0;      ///< cells executed by a thief worker
  double wall_seconds = 0.0;
  double cells_per_second = 0.0;
  util::Summary cell_seconds;  ///< per-cell wall clock distribution

  [[nodiscard]] util::Table to_table(const std::string& title) const;
};

/// Work-stealing executor for sweep grids. Reusable across runs; reuse it
/// when a bench runs many sweeps so the pool is spawned once.
class SweepRunner {
 public:
  /// `threads` < 1 selects the hardware thread count.
  explicit SweepRunner(int threads = 1) : pool_{threads} {}

  [[nodiscard]] int threads() const noexcept { return pool_.threads(); }

  /// Evaluates `cell` for every grid cell in parallel and assembles the
  /// table in grid order. `cell` must depend only on its SweepCell argument
  /// (plus immutable config) — never on shared mutable state. Run totals
  /// land in the `sweep.*` metric family of obs::Registry::global():
  /// counters sweep.runs / sweep.cells (deterministic), gauges
  /// sweep.threads / sweep.steals, histograms sweep.cell_seconds /
  /// sweep.run_seconds (wall clock, never gated).
  ImprovementTable run(const SweepGrid& grid,
                       const std::function<double(const SweepCell&)>& cell);

  /// Counters from the most recent run().
  [[nodiscard]] const SweepCounters& counters() const noexcept {
    return counters_;
  }

  /// The underlying pool, for benches that shard non-grid work.
  [[nodiscard]] util::ThreadPool& pool() noexcept { return pool_; }

 private:
  util::ThreadPool pool_;
  SweepCounters counters_;
};

}  // namespace hbsp::exp
