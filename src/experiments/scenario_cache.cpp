#include "experiments/scenario_cache.hpp"

#include <iterator>
#include <utility>

#include "obs/metrics.hpp"
#include "util/hash.hpp"

namespace hbsp::exp {

ScenarioCache& ScenarioCache::global() {
  static ScenarioCache cache;
  return cache;
}

ScenarioKey ScenarioCache::key_for(const MachineTree& tree,
                                   const CommSchedule& schedule,
                                   const sim::SimParams& params,
                                   const faults::FaultInjector* injector) {
  util::Hash64 fault;
  fault.add(injector != nullptr ? 1u : 0u);
  fault.add(injector != nullptr ? injector->plan().fingerprint() : 0u);
  return ScenarioKey{
      .tree_fingerprint = tree.fingerprint(),
      .schedule_fingerprint = schedule.fingerprint(),
      .params_fingerprint = params.fingerprint(),
      .fault_fingerprint = fault.digest(),
  };
}

double ScenarioCache::makespan(const MachineTree& tree,
                               const CommSchedule& schedule,
                               const sim::SimParams& params,
                               const faults::FaultInjector* injector) {
  const ScenarioKey key = key_for(tree, schedule, params, injector);
  auto& registry = obs::Registry::global();

  std::unique_lock lock{mutex_};
  for (;;) {
    auto it = entries_.find(key);
    if (it == entries_.end()) break;  // absent: this thread simulates
    if (it->second.result != nullptr) {
      it->second.stamp = ++next_stamp_;
      const auto result = it->second.result;
      lock.unlock();
      registry.counter("scenario.hits").increment();
      // Replay the builder's registry contribution so totals are identical
      // to an uncached re-simulation.
      sim::replay_run_metrics(result->metrics);
      return result->makespan;
    }
    // Another thread is simulating this key: compute-once blocking keeps the
    // miss count a pure function of the distinct scenarios requested.
    ready_.wait(lock);
  }

  entries_[key] = Entry{nullptr, ++next_stamp_};
  lock.unlock();
  registry.counter("scenario.misses").increment();

  std::shared_ptr<const ScenarioResult> result;
  try {
    auto built = std::make_shared<ScenarioResult>();
    sim::ClusterSim simulator{tree, params};
    simulator.set_fault_injector(injector);
    built->makespan = simulator.run(schedule).makespan;
    built->metrics = simulator.run_metrics();
    result = std::move(built);
  } catch (...) {
    // The simulator rejected the scenario (e.g. schedule fails validation):
    // remove the placeholder so waiters retry instead of hanging, and let
    // the caller see the error.
    lock.lock();
    entries_.erase(key);
    ready_.notify_all();
    throw;
  }

  lock.lock();
  Entry& entry = entries_[key];
  entry.result = result;
  entry.stamp = ++next_stamp_;
  evict_locked();
  registry.gauge("scenario.size").set(static_cast<double>(entries_.size()));
  ready_.notify_all();
  return result->makespan;
}

void ScenarioCache::evict_locked() {
  if (max_entries_ == 0) return;
  while (entries_.size() > max_entries_) {
    auto victim = entries_.end();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.result == nullptr) continue;  // simulation in flight
      if (victim == entries_.end() || it->second.stamp < victim->second.stamp) {
        victim = it;
      }
    }
    if (victim == entries_.end()) return;  // everything is being simulated
    entries_.erase(victim);
    obs::Registry::global().counter("scenario.evictions").increment();
  }
}

void ScenarioCache::clear() {
  std::lock_guard lock{mutex_};
  for (auto it = entries_.begin(); it != entries_.end();) {
    it = it->second.result != nullptr ? entries_.erase(it) : std::next(it);
  }
}

std::size_t ScenarioCache::size() const {
  std::lock_guard lock{mutex_};
  return entries_.size();
}

}  // namespace hbsp::exp
