#pragma once
// The paper's §5 experimental protocol, reused by the bench binaries and the
// integration tests.
//
// Experiments sweep p = 2..10 workstations of the stand-in testbed and
// problem sizes of 100..1000 KBytes of uniformly distributed integers, and
// report *improvement factors* T_A/T_B between two configurations of the
// same collective:
//
//   Fig 3(a)  gather:    T_s/T_f — root slowest vs root fastest, equal shares
//   Fig 3(b)  gather:    T_u/T_b — equal shares vs BYTEmark-balanced shares,
//                                  root fastest
//   Fig 4(a)  broadcast: T_s/T_f — two-phase, root slowest vs fastest
//   Fig 4(b)  broadcast: T_u/T_b — equal vs balanced phase-1 pieces
//
// Times come from the deterministic cluster simulator. Balanced shares use
// c_j estimated from a simulated BYTEmark run (with measurement noise, as on
// the paper's non-dedicated cluster), not the true r values.
//
// All four sweeps execute on the SweepRunner engine (sweep.hpp): grid cells
// are independent, so they shard across `threads` workers, and each cell's
// BYTEmark noise stream is split from `noise.seed` (the master seed) by the
// cell's grid position — the table is bit-identical at any thread count.

#include <cstddef>
#include <vector>

#include "bytemark/ranking.hpp"
#include "core/machine.hpp"
#include "core/schedule.hpp"
#include "experiments/sweep.hpp"
#include "sim/sim_params.hpp"
#include "util/table.hpp"

namespace hbsp::exp {

/// Sweep configuration; defaults mirror §5.1.
struct FigureConfig {
  std::vector<int> processors = {2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<std::size_t> kbytes = {100, 200, 300, 400, 500,
                                     600, 700, 800, 900, 1000};
  sim::SimParams sim;
  /// `noise.seed` is the sweep's master seed; each cell derives its own
  /// stream from it via util::split_seed.
  bytemark::NoiseOptions noise{.stddev = 0.05, .seed = 2001};
  double g = 1e-6;
  double L = 2e-3;
  int threads = 1;  ///< sweep worker threads; < 1 uses the hardware count
};

/// Simulated makespan of a schedule on a machine, served through
/// exp::ScenarioCache::global(): the first request for a (machine, schedule,
/// params) scenario simulates; repeats return the memoized makespan and
/// replay the identical sim.* registry contribution.
[[nodiscard]] double simulate_makespan(const MachineTree& tree,
                                       const CommSchedule& schedule,
                                       const sim::SimParams& params);

/// The first p testbed machines with workload fractions re-estimated from a
/// noisy simulated BYTEmark run (true r values, estimated c values) — the
/// machine description a practitioner following §5.1 would actually have.
/// `noise` is the per-cell stream inside sweeps, config.noise elsewhere.
[[nodiscard]] MachineTree make_ranked_testbed(int p, const FigureConfig& config);
[[nodiscard]] MachineTree make_ranked_testbed(
    int p, const FigureConfig& config, const bytemark::NoiseOptions& noise);

// Each experiment comes in two forms: the one-shot form spins up a private
// runner with config.threads workers; the runner form reuses a caller-owned
// runner (and its pool) so benches can observe counters and amortise thread
// startup across sweeps.
[[nodiscard]] ImprovementTable gather_root_experiment(const FigureConfig& config);
[[nodiscard]] ImprovementTable gather_root_experiment(const FigureConfig& config,
                                                      SweepRunner& runner);
[[nodiscard]] ImprovementTable gather_balance_experiment(const FigureConfig& config);
[[nodiscard]] ImprovementTable gather_balance_experiment(
    const FigureConfig& config, SweepRunner& runner);
[[nodiscard]] ImprovementTable broadcast_root_experiment(const FigureConfig& config);
[[nodiscard]] ImprovementTable broadcast_root_experiment(
    const FigureConfig& config, SweepRunner& runner);
[[nodiscard]] ImprovementTable broadcast_balance_experiment(
    const FigureConfig& config);
[[nodiscard]] ImprovementTable broadcast_balance_experiment(
    const FigureConfig& config, SweepRunner& runner);

}  // namespace hbsp::exp
