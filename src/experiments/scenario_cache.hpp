#pragma once
// Memoized scenario simulation: the simulator half of the scenario-throughput
// layer (the planner half is coll::PlanCache).
//
// Profiling the figure sweeps shows the discrete-event simulation dominating
// each cell (~3/4 of cell time), and sweeps repeat scenarios heavily: every
// warm perf_snapshot repetition re-simulates the identical (machine,
// schedule, params, faults) tuple, and the chaos grid's two placements per
// cell recur across reps. ScenarioCache memoizes
//
//   (machine fingerprint, schedule fingerprint, params fingerprint,
//    fault-plan fingerprint)  →  (makespan, captured sim.* metrics)
//
// with the same compute-once blocking discipline as PlanCache, so hit/miss
// counters are a pure function of the distinct scenarios requested at any
// thread count.
//
// Observability invariant: a hit replays the builder's captured RunMetrics
// into obs::Registry::global() (sim::replay_run_metrics), so every counter
// and histogram in the sim.* family ends up exactly as if the scenario had
// been re-simulated. Registry totals therefore depend only on the multiset
// of scenarios requested — never on which requests were hits — which is what
// lets the perf gate keep exact-matching counters while warm wall time
// drops.
//
// The cache is sound because the simulator is a pure function of the four
// fingerprinted inputs: ClusterSim::run resets all state first, and every
// random draw (load factors, message loss) is keyed by seeds inside
// SimParams / FaultPlan that the fingerprints cover.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>

#include "core/machine.hpp"
#include "core/schedule.hpp"
#include "faults/injector.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/sim_params.hpp"

namespace hbsp::exp {

/// Identity of one simulation scenario. All four components are stable
/// 64-bit content hashes; `fault_fingerprint` also encodes whether an
/// injector was attached at all.
struct ScenarioKey {
  std::uint64_t tree_fingerprint = 0;
  std::uint64_t schedule_fingerprint = 0;
  std::uint64_t params_fingerprint = 0;
  std::uint64_t fault_fingerprint = 0;

  friend auto operator<=>(const ScenarioKey&, const ScenarioKey&) = default;
};

/// What one simulated scenario produced: the makespan plus the run's entire
/// obs-registry contribution, kept so hits can replay it.
struct ScenarioResult {
  double makespan = 0.0;
  sim::RunMetrics metrics;
};

class ScenarioCache {
 public:
  /// `max_entries` == 0 means unbounded (no eviction ever).
  explicit ScenarioCache(std::size_t max_entries = 0)
      : max_entries_(max_entries) {}

  /// The process-wide cache behind exp::simulate_makespan and
  /// exp::simulate_makespan_with_faults. Unbounded; clear() it at workload
  /// boundaries when cold timings matter.
  static ScenarioCache& global();

  [[nodiscard]] static ScenarioKey key_for(
      const MachineTree& tree, const CommSchedule& schedule,
      const sim::SimParams& params, const faults::FaultInjector* injector);

  /// The memoized makespan of the scenario, simulating on first use.
  /// A hit replays the captured sim.* metrics into the global registry; a
  /// miss simulates (the simulator flushes its own metrics as usual).
  /// Concurrent requests for the same key block until the builder finishes.
  double makespan(const MachineTree& tree, const CommSchedule& schedule,
                  const sim::SimParams& params,
                  const faults::FaultInjector* injector = nullptr);

  /// Drops every completed entry (builds in flight finish normally).
  void clear();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }

 private:
  struct Entry {
    std::shared_ptr<const ScenarioResult> result;  ///< null while simulating
    std::uint64_t stamp = 0;                       ///< last access, monotone
  };

  /// Must hold mutex_. Evicts least-recently-used completed entries until
  /// the size bound holds; in-flight builds are never victims.
  void evict_locked();

  std::size_t max_entries_;
  mutable std::mutex mutex_;
  std::condition_variable ready_;
  std::map<ScenarioKey, Entry> entries_;
  std::uint64_t next_stamp_ = 0;
};

}  // namespace hbsp::exp
