#include "experiments/chaos.hpp"

#include <stdexcept>

#include "collectives/plan_cache.hpp"
#include "collectives/planners.hpp"
#include "core/topology.hpp"
#include "experiments/scenario_cache.hpp"
#include "obs/metrics.hpp"
#include "sim/cluster_sim.hpp"
#include "util/csv.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace hbsp::exp {
namespace {

using coll::CollectiveKind;
using coll::PlanCache;
using coll::PlanRequest;
using coll::Shares;
using coll::TopPhase;

/// The memoized gather / two-phase broadcast plans the fault cells compare.
std::shared_ptr<const coll::CachedPlan> cached_plan(const MachineTree& tree,
                                                    CollectiveKind kind,
                                                    std::size_t n,
                                                    int root_pid) {
  return PlanCache::global().get(tree,
                                 PlanRequest{.kind = kind,
                                             .n = n,
                                             .root_pid = root_pid,
                                             .shares = Shares::kEqual,
                                             .top_phase = TopPhase::kTwoPhase});
}

std::size_t count_inversions(
    const std::vector<std::vector<double>>& factor) noexcept {
  std::size_t count = 0;
  for (const auto& row : factor) {
    for (const double f : row) count += f < 1.0 ? 1 : 0;
  }
  return count;
}

/// Row cells of the CSV/console formats share one 4-decimal format.
std::vector<std::string> factor_row(std::string collective, double rate,
                                    const std::vector<double>& factors) {
  std::vector<std::string> row{std::move(collective),
                               util::Table::num(rate, 2)};
  for (const double f : factors) row.push_back(util::Table::num(f, 4));
  return row;
}

}  // namespace

std::size_t ChaosTable::gather_inversions() const noexcept {
  return count_inversions(gather_factor);
}

std::size_t ChaosTable::broadcast_inversions() const noexcept {
  return count_inversions(broadcast_factor);
}

util::Table ChaosTable::to_table(const std::string& title,
                                 bool broadcast) const {
  util::Table table{title};
  std::vector<std::string> header{"fault rate"};
  for (const double loss : loss_probs) {
    header.push_back("loss " + util::Table::num(loss, 4));
  }
  table.set_header(std::move(header));
  const auto& factor = broadcast ? broadcast_factor : gather_factor;
  for (std::size_t i = 0; i < fault_rates.size(); ++i) {
    std::vector<std::string> row{util::Table::num(fault_rates[i], 2)};
    for (const double f : factor[i]) row.push_back(util::Table::num(f, 4));
    table.add_row(std::move(row));
  }
  return table;
}

std::string chaos_csv(const ChaosTable& table) {
  std::string text = "collective,fault_rate";
  for (const double loss : table.loss_probs) {
    text += "," + util::Table::num(loss, 4);
  }
  text += '\n';
  const auto emit = [&](const char* name,
                        const std::vector<std::vector<double>>& factor) {
    for (std::size_t i = 0; i < table.fault_rates.size(); ++i) {
      text += name;
      text += "," + util::Table::num(table.fault_rates[i], 2);
      for (const double f : factor[i]) text += "," + util::Table::num(f, 4);
      text += '\n';
    }
  };
  emit("gather", table.gather_factor);
  emit("broadcast", table.broadcast_factor);
  return text;
}

void write_chaos_csv(const ChaosTable& table, const std::string& path) {
  util::CsvWriter csv{path};
  std::vector<std::string> header{"collective", "fault_rate"};
  for (const double loss : table.loss_probs) {
    header.push_back(util::Table::num(loss, 4));
  }
  csv.write_row(header);
  for (std::size_t i = 0; i < table.fault_rates.size(); ++i) {
    csv.write_row(factor_row("gather", table.fault_rates[i],
                             table.gather_factor[i]));
  }
  for (std::size_t i = 0; i < table.fault_rates.size(); ++i) {
    csv.write_row(factor_row("broadcast", table.fault_rates[i],
                             table.broadcast_factor[i]));
  }
}

double simulate_makespan_with_faults(const MachineTree& tree,
                                     const CommSchedule& schedule,
                                     const sim::SimParams& params,
                                     const faults::FaultInjector* injector) {
  return ScenarioCache::global().makespan(tree, schedule, params, injector);
}

ImprovementTable gather_root_experiment_with_faults(
    const FigureConfig& config, const faults::FaultPlan& plan,
    SweepRunner& runner) {
  const faults::FaultInjector injector{plan};
  return runner.run(
      {config.processors, config.kbytes, config.noise.seed},
      [&config, &injector](const SweepCell& cell) {
        const MachineTree tree =
            make_paper_testbed(cell.p, config.g, config.L);
        const int fast = tree.coordinator_pid(tree.root());
        const int slow = tree.slowest_pid(tree.root());
        const auto plan_f =
            cached_plan(tree, CollectiveKind::kGather, cell.n, fast);
        const auto plan_s =
            cached_plan(tree, CollectiveKind::kGather, cell.n, slow);
        const double t_f = simulate_makespan_with_faults(
            tree, plan_f->schedule, config.sim, &injector);
        const double t_s = simulate_makespan_with_faults(
            tree, plan_s->schedule, config.sim, &injector);
        return t_s / t_f;
      });
}

ImprovementTable broadcast_root_experiment_with_faults(
    const FigureConfig& config, const faults::FaultPlan& plan,
    SweepRunner& runner) {
  const faults::FaultInjector injector{plan};
  return runner.run(
      {config.processors, config.kbytes, config.noise.seed},
      [&config, &injector](const SweepCell& cell) {
        const MachineTree tree =
            make_paper_testbed(cell.p, config.g, config.L);
        const int fast = tree.coordinator_pid(tree.root());
        const int slow = tree.slowest_pid(tree.root());
        const auto plan_f =
            cached_plan(tree, CollectiveKind::kBroadcast, cell.n, fast);
        const auto plan_s =
            cached_plan(tree, CollectiveKind::kBroadcast, cell.n, slow);
        const double t_f = simulate_makespan_with_faults(
            tree, plan_f->schedule, config.sim, &injector);
        const double t_s = simulate_makespan_with_faults(
            tree, plan_s->schedule, config.sim, &injector);
        return t_s / t_f;
      });
}

ChaosTable chaos_sweep(const ChaosConfig& config, SweepRunner& runner) {
  if (config.fault_rates.empty() || config.loss_probs.empty()) {
    throw std::invalid_argument{"chaos grid must have both axes non-empty"};
  }
  if (config.p < 2) {
    throw std::invalid_argument{"chaos sweep needs at least two processors"};
  }
  const std::size_t rows = config.fault_rates.size();
  const std::size_t cols = config.loss_probs.size();

  ChaosTable table;
  table.fault_rates = config.fault_rates;
  table.loss_probs = config.loss_probs;
  table.gather_factor.assign(rows, std::vector<double>(cols, 0.0));
  table.broadcast_factor.assign(rows, std::vector<double>(cols, 0.0));

  const std::size_t n = util::ints_in_kbytes(config.kbytes);
  runner.pool().parallel_for(rows * cols, [&](std::size_t index) {
    const std::size_t row = index / cols;
    const std::size_t col = index % cols;

    // The cell's disturbance: rate/loss from the grid position, seed split
    // from the master by position — never by execution order.
    faults::ChaosOptions options = config.disturbance;
    options.slowdown_rate = config.fault_rates[row];
    options.message_loss_probability = config.loss_probs[col];
    options.drop_probability = 0.0;  // both placements must run to completion
    const faults::FaultPlan plan = faults::make_chaos_plan(
        config.p, options, util::split_seed(config.master_seed, index));
    const faults::FaultInjector injector{plan};

    const MachineTree tree = make_paper_testbed(config.p, config.g, config.L);
    const int fast = tree.coordinator_pid(tree.root());
    const int slow = tree.slowest_pid(tree.root());

    const auto gather_plan_f = cached_plan(tree, CollectiveKind::kGather, n, fast);
    const auto gather_plan_s = cached_plan(tree, CollectiveKind::kGather, n, slow);
    const double gather_f = simulate_makespan_with_faults(
        tree, gather_plan_f->schedule, config.sim, &injector);
    const double gather_s = simulate_makespan_with_faults(
        tree, gather_plan_s->schedule, config.sim, &injector);
    table.gather_factor[row][col] = gather_s / gather_f;

    const auto bcast_plan_f =
        cached_plan(tree, CollectiveKind::kBroadcast, n, fast);
    const auto bcast_plan_s =
        cached_plan(tree, CollectiveKind::kBroadcast, n, slow);
    const double bcast_f = simulate_makespan_with_faults(
        tree, bcast_plan_f->schedule, config.sim, &injector);
    const double bcast_s = simulate_makespan_with_faults(
        tree, bcast_plan_s->schedule, config.sim, &injector);
    table.broadcast_factor[row][col] = bcast_s / bcast_f;
  });
  // The chaos grid shards through the pool directly (two collectives per
  // cell), so it keeps its own cell accounting beside the sweep.* family.
  auto& registry = obs::Registry::global();
  registry.counter("chaos.grid_runs").increment();
  registry.counter("chaos.cells").add(rows * cols);
  registry.gauge("chaos.steals").set(
      static_cast<double>(runner.pool().last_steals()));
  return table;
}

ChaosTable chaos_sweep(const ChaosConfig& config) {
  SweepRunner runner{config.threads};
  return chaos_sweep(config, runner);
}

}  // namespace hbsp::exp
