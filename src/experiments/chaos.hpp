#pragma once
// Chaos sweeps: the §5 improvement-factor experiments re-run under injected
// disturbances.
//
// The paper measures on a non-dedicated cluster and argues its advice is
// what a practitioner should follow there. The chaos sweep stress-tests that
// claim: it re-runs the Fig 3(a)/4(a) root-placement experiments while a
// seeded FaultPlan perturbs the machine — transient slowdown windows (the
// background load of a shared workstation pool) and message loss (re-sent
// with timeout/backoff) — over a fault-rate × loss-probability grid, and
// reports where the advisor's fault-free ordering *inverts* (T_s/T_f < 1:
// rooting at the nominally slowest machine became the better plan because
// chaos degraded the nominal fastest).
//
// Determinism contract: each grid cell derives its FaultPlan from
// util::split_seed(master_seed, cell index), so the whole table is
// bit-identical at any thread count — the property ci/check.sh pins.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "experiments/figures.hpp"
#include "experiments/sweep.hpp"
#include "faults/fault_plan.hpp"
#include "faults/injector.hpp"
#include "sim/sim_params.hpp"
#include "util/table.hpp"

namespace hbsp::exp {

/// Axes and fixed parameters of a chaos sweep.
struct ChaosConfig {
  /// Expected slowdown windows per processor over the disturbance horizon.
  std::vector<double> fault_rates = {0.0, 1.0, 2.0, 4.0};
  /// Per-attempt message-loss probabilities.
  std::vector<double> loss_probs = {0.0, 0.01, 0.05, 0.10};
  int p = 6;                  ///< testbed size (fixed; the grid varies faults)
  std::size_t kbytes = 500;   ///< problem size (mid-range of the §5 sweeps)
  sim::SimParams sim;
  double g = 1e-6;
  double L = 2e-3;
  /// Window shape bounds (rate and loss are overwritten per cell; drops are
  /// disabled so every plan runs to completion). The horizon is matched to
  /// the experiments' ~0.1-0.3 s makespans so windows actually overlap the
  /// runs they disturb.
  faults::ChaosOptions disturbance{.horizon = 0.25,
                                   .slowdown_max_factor = 8.0,
                                   .slowdown_max_duration = 0.1};
  std::uint64_t master_seed = 7001;
  int threads = 1;  ///< sweep worker threads; < 1 uses the hardware count
};

/// T_s/T_f factors over the fault grid, [fault_rate][loss_prob].
struct ChaosTable {
  std::vector<double> fault_rates;
  std::vector<double> loss_probs;
  std::vector<std::vector<double>> gather_factor;     ///< Fig 3(a) under chaos
  std::vector<std::vector<double>> broadcast_factor;  ///< Fig 4(a) under chaos

  /// Cells where chaos inverted the fault-free ordering (factor < 1).
  [[nodiscard]] std::size_t gather_inversions() const noexcept;
  [[nodiscard]] std::size_t broadcast_inversions() const noexcept;

  /// One rendered table per collective.
  [[nodiscard]] util::Table to_table(const std::string& title,
                                     bool broadcast) const;
};

/// Renders the chaos table in the bench's CSV format: a
/// "collective,fault_rate,<loss...>" header, then one row per
/// (collective, fault rate) with 4-decimal factors. tests/golden pins this
/// exact text.
[[nodiscard]] std::string chaos_csv(const ChaosTable& table);

/// Writes chaos_csv(table) to `path` (RFC-4180, via util::CsvWriter).
void write_chaos_csv(const ChaosTable& table, const std::string& path);

/// Simulated makespan of a schedule with a fault injector attached
/// (nullptr runs fault-free, identical to simulate_makespan). Served through
/// exp::ScenarioCache::global(), keyed additionally by the injector's
/// fault-plan fingerprint; hits replay the captured sim.* metrics.
[[nodiscard]] double simulate_makespan_with_faults(
    const MachineTree& tree, const CommSchedule& schedule,
    const sim::SimParams& params, const faults::FaultInjector* injector);

/// Fig 3(a)/4(a) sweeps with a caller-supplied fault plan applied to every
/// cell (entries for pids outside a cell's machine are inert). With an empty
/// plan the tables equal gather_root_experiment / broadcast_root_experiment
/// bit for bit — the injection layer is cost-free when disabled.
[[nodiscard]] ImprovementTable gather_root_experiment_with_faults(
    const FigureConfig& config, const faults::FaultPlan& plan,
    SweepRunner& runner);
[[nodiscard]] ImprovementTable broadcast_root_experiment_with_faults(
    const FigureConfig& config, const faults::FaultPlan& plan,
    SweepRunner& runner);

/// Runs the chaos grid: each cell draws its FaultPlan from the master seed
/// and its grid position, then prices both root placements for gather and
/// broadcast under that shared disturbance.
[[nodiscard]] ChaosTable chaos_sweep(const ChaosConfig& config);
[[nodiscard]] ChaosTable chaos_sweep(const ChaosConfig& config,
                                     SweepRunner& runner);

}  // namespace hbsp::exp
