#include "experiments/figures.hpp"

#include <string>

#include "collectives/planners.hpp"
#include "core/topology.hpp"
#include "sim/cluster_sim.hpp"
#include "util/units.hpp"

namespace hbsp::exp {
namespace {

using coll::BroadcastOptions;
using coll::RootedOptions;
using coll::Shares;
using coll::TopPhase;

/// Runs `make_times` over the sweep and fills the improvement table.
template <typename TimesFn>
ImprovementTable sweep(const FigureConfig& config, TimesFn&& make_times) {
  ImprovementTable table;
  table.processors = config.processors;
  table.kbytes = config.kbytes;
  for (const int p : config.processors) {
    std::vector<double> row;
    row.reserve(config.kbytes.size());
    for (const std::size_t kb : config.kbytes) {
      const std::size_t n = util::ints_in_kbytes(kb);
      const auto [t_num, t_den] = make_times(p, n);
      row.push_back(t_num / t_den);
    }
    table.factor.push_back(std::move(row));
  }
  return table;
}

}  // namespace

util::Table ImprovementTable::to_table(const std::string& title) const {
  util::Table table{title};
  std::vector<std::string> header{"p"};
  for (const std::size_t kb : kbytes) {
    header.push_back(std::to_string(kb) + " KB");
  }
  table.set_header(std::move(header));
  for (std::size_t i = 0; i < processors.size(); ++i) {
    std::vector<std::string> row{std::to_string(processors[i])};
    for (const double f : factor[i]) row.push_back(util::Table::num(f, 3));
    table.add_row(std::move(row));
  }
  return table;
}

double simulate_makespan(const MachineTree& tree, const CommSchedule& schedule,
                         const sim::SimParams& params) {
  sim::ClusterSim simulator{tree, params};
  return simulator.run(schedule).makespan;
}

MachineTree make_ranked_testbed(int p, const FigureConfig& config) {
  const MachineTree truth = make_paper_testbed(p, config.g, config.L);
  const bytemark::Ranking ranking = bytemark::rank_simulated(truth, config.noise);

  // True r values (the hardware doesn't change), estimated c fractions (the
  // practitioner only has benchmark scores to balance with, §5.1).
  MachineSpec root;
  root.name = "testbed";
  root.sync_L = config.L;
  const auto speeds = paper_testbed_speeds();
  for (int pid = 0; pid < p; ++pid) {
    MachineSpec leaf;
    leaf.name = "ws" + std::to_string(pid);
    leaf.r = speeds[static_cast<std::size_t>(pid)];
    leaf.c = ranking.fractions[static_cast<std::size_t>(pid)];
    root.children.push_back(std::move(leaf));
  }
  return MachineTree::build(root, config.g);
}

ImprovementTable gather_root_experiment(const FigureConfig& config) {
  return sweep(config, [&](int p, std::size_t n) {
    const MachineTree tree = make_paper_testbed(p, config.g, config.L);
    const int fast = tree.coordinator_pid(tree.root());
    const int slow = tree.slowest_pid(tree.root());
    const double t_f = simulate_makespan(
        tree, coll::plan_gather(tree, n, {.root_pid = fast, .shares = Shares::kEqual}),
        config.sim);
    const double t_s = simulate_makespan(
        tree, coll::plan_gather(tree, n, {.root_pid = slow, .shares = Shares::kEqual}),
        config.sim);
    return std::pair{t_s, t_f};
  });
}

ImprovementTable gather_balance_experiment(const FigureConfig& config) {
  return sweep(config, [&](int p, std::size_t n) {
    const MachineTree tree = make_ranked_testbed(p, config);
    const int fast = tree.coordinator_pid(tree.root());
    const double t_u = simulate_makespan(
        tree, coll::plan_gather(tree, n, {.root_pid = fast, .shares = Shares::kEqual}),
        config.sim);
    const double t_b = simulate_makespan(
        tree,
        coll::plan_gather(tree, n, {.root_pid = fast, .shares = Shares::kBalanced}),
        config.sim);
    return std::pair{t_u, t_b};
  });
}

ImprovementTable broadcast_root_experiment(const FigureConfig& config) {
  return sweep(config, [&](int p, std::size_t n) {
    const MachineTree tree = make_paper_testbed(p, config.g, config.L);
    const int fast = tree.coordinator_pid(tree.root());
    const int slow = tree.slowest_pid(tree.root());
    const BroadcastOptions from_fast{.root_pid = fast,
                                     .top_phase = TopPhase::kTwoPhase,
                                     .shares = Shares::kEqual};
    BroadcastOptions from_slow = from_fast;
    from_slow.root_pid = slow;
    const double t_f = simulate_makespan(
        tree, coll::plan_broadcast(tree, n, from_fast), config.sim);
    const double t_s = simulate_makespan(
        tree, coll::plan_broadcast(tree, n, from_slow), config.sim);
    return std::pair{t_s, t_f};
  });
}

ImprovementTable broadcast_balance_experiment(const FigureConfig& config) {
  return sweep(config, [&](int p, std::size_t n) {
    const MachineTree tree = make_ranked_testbed(p, config);
    const int fast = tree.coordinator_pid(tree.root());
    const BroadcastOptions equal{.root_pid = fast,
                                 .top_phase = TopPhase::kTwoPhase,
                                 .shares = Shares::kEqual};
    BroadcastOptions balanced = equal;
    balanced.shares = Shares::kBalanced;
    const double t_u = simulate_makespan(
        tree, coll::plan_broadcast(tree, n, equal), config.sim);
    const double t_b = simulate_makespan(
        tree, coll::plan_broadcast(tree, n, balanced), config.sim);
    return std::pair{t_u, t_b};
  });
}

}  // namespace hbsp::exp
