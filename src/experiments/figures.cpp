#include "experiments/figures.hpp"

#include <string>

#include "collectives/planners.hpp"
#include "core/topology.hpp"
#include "sim/cluster_sim.hpp"
#include "util/units.hpp"

namespace hbsp::exp {
namespace {

using coll::BroadcastOptions;
using coll::RootedOptions;
using coll::Shares;
using coll::TopPhase;

SweepGrid grid_of(const FigureConfig& config) {
  return {config.processors, config.kbytes, config.noise.seed};
}

/// The cell's private BYTEmark noise stream: same sigma as the config, seed
/// split from the master by the cell's grid position.
bytemark::NoiseOptions cell_noise(const FigureConfig& config,
                                  const SweepCell& cell) {
  return {.stddev = config.noise.stddev, .seed = cell.seed};
}

}  // namespace

double simulate_makespan(const MachineTree& tree, const CommSchedule& schedule,
                         const sim::SimParams& params) {
  sim::ClusterSim simulator{tree, params};
  return simulator.run(schedule).makespan;
}

MachineTree make_ranked_testbed(int p, const FigureConfig& config) {
  return make_ranked_testbed(p, config, config.noise);
}

MachineTree make_ranked_testbed(int p, const FigureConfig& config,
                                const bytemark::NoiseOptions& noise) {
  const MachineTree truth = make_paper_testbed(p, config.g, config.L);
  const bytemark::Ranking ranking = bytemark::rank_simulated(truth, noise);

  // True r values (the hardware doesn't change), estimated c fractions (the
  // practitioner only has benchmark scores to balance with, §5.1).
  MachineSpec root;
  root.name = "testbed";
  root.sync_L = config.L;
  const auto speeds = paper_testbed_speeds();
  for (int pid = 0; pid < p; ++pid) {
    MachineSpec leaf;
    leaf.name = "ws" + std::to_string(pid);
    leaf.r = speeds[static_cast<std::size_t>(pid)];
    leaf.c = ranking.fractions[static_cast<std::size_t>(pid)];
    root.children.push_back(std::move(leaf));
  }
  return MachineTree::build(root, config.g);
}

ImprovementTable gather_root_experiment(const FigureConfig& config,
                                        SweepRunner& runner) {
  return runner.run(grid_of(config), [&config](const SweepCell& cell) {
    const MachineTree tree = make_paper_testbed(cell.p, config.g, config.L);
    const int fast = tree.coordinator_pid(tree.root());
    const int slow = tree.slowest_pid(tree.root());
    const double t_f = simulate_makespan(
        tree,
        coll::plan_gather(tree, cell.n,
                          {.root_pid = fast, .shares = Shares::kEqual}),
        config.sim);
    const double t_s = simulate_makespan(
        tree,
        coll::plan_gather(tree, cell.n,
                          {.root_pid = slow, .shares = Shares::kEqual}),
        config.sim);
    return t_s / t_f;
  });
}

ImprovementTable gather_balance_experiment(const FigureConfig& config,
                                           SweepRunner& runner) {
  return runner.run(grid_of(config), [&config](const SweepCell& cell) {
    const MachineTree tree =
        make_ranked_testbed(cell.p, config, cell_noise(config, cell));
    const int fast = tree.coordinator_pid(tree.root());
    const double t_u = simulate_makespan(
        tree,
        coll::plan_gather(tree, cell.n,
                          {.root_pid = fast, .shares = Shares::kEqual}),
        config.sim);
    const double t_b = simulate_makespan(
        tree,
        coll::plan_gather(tree, cell.n,
                          {.root_pid = fast, .shares = Shares::kBalanced}),
        config.sim);
    return t_u / t_b;
  });
}

ImprovementTable broadcast_root_experiment(const FigureConfig& config,
                                           SweepRunner& runner) {
  return runner.run(grid_of(config), [&config](const SweepCell& cell) {
    const MachineTree tree = make_paper_testbed(cell.p, config.g, config.L);
    const int fast = tree.coordinator_pid(tree.root());
    const int slow = tree.slowest_pid(tree.root());
    const BroadcastOptions from_fast{.root_pid = fast,
                                     .top_phase = TopPhase::kTwoPhase,
                                     .shares = Shares::kEqual};
    BroadcastOptions from_slow = from_fast;
    from_slow.root_pid = slow;
    const double t_f = simulate_makespan(
        tree, coll::plan_broadcast(tree, cell.n, from_fast), config.sim);
    const double t_s = simulate_makespan(
        tree, coll::plan_broadcast(tree, cell.n, from_slow), config.sim);
    return t_s / t_f;
  });
}

ImprovementTable broadcast_balance_experiment(const FigureConfig& config,
                                              SweepRunner& runner) {
  return runner.run(grid_of(config), [&config](const SweepCell& cell) {
    const MachineTree tree =
        make_ranked_testbed(cell.p, config, cell_noise(config, cell));
    const int fast = tree.coordinator_pid(tree.root());
    const BroadcastOptions equal{.root_pid = fast,
                                 .top_phase = TopPhase::kTwoPhase,
                                 .shares = Shares::kEqual};
    BroadcastOptions balanced = equal;
    balanced.shares = Shares::kBalanced;
    const double t_u = simulate_makespan(
        tree, coll::plan_broadcast(tree, cell.n, equal), config.sim);
    const double t_b = simulate_makespan(
        tree, coll::plan_broadcast(tree, cell.n, balanced), config.sim);
    return t_u / t_b;
  });
}

ImprovementTable gather_root_experiment(const FigureConfig& config) {
  SweepRunner runner{config.threads};
  return gather_root_experiment(config, runner);
}

ImprovementTable gather_balance_experiment(const FigureConfig& config) {
  SweepRunner runner{config.threads};
  return gather_balance_experiment(config, runner);
}

ImprovementTable broadcast_root_experiment(const FigureConfig& config) {
  SweepRunner runner{config.threads};
  return broadcast_root_experiment(config, runner);
}

ImprovementTable broadcast_balance_experiment(const FigureConfig& config) {
  SweepRunner runner{config.threads};
  return broadcast_balance_experiment(config, runner);
}

}  // namespace hbsp::exp
