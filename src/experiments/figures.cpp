#include "experiments/figures.hpp"

#include <string>

#include "collectives/plan_cache.hpp"
#include "collectives/planners.hpp"
#include "core/topology.hpp"
#include "experiments/scenario_cache.hpp"
#include "sim/cluster_sim.hpp"
#include "util/units.hpp"

namespace hbsp::exp {
namespace {

using coll::CollectiveKind;
using coll::PlanCache;
using coll::PlanRequest;
using coll::Shares;
using coll::TopPhase;

/// The memoized plan for a gather request (the cells' most common shape).
std::shared_ptr<const coll::CachedPlan> cached_gather(const MachineTree& tree,
                                                      std::size_t n,
                                                      int root_pid,
                                                      Shares shares) {
  return PlanCache::global().get(tree,
                                 PlanRequest{.kind = CollectiveKind::kGather,
                                             .n = n,
                                             .root_pid = root_pid,
                                             .shares = shares});
}

/// The memoized plan for a two-phase broadcast request.
std::shared_ptr<const coll::CachedPlan> cached_broadcast(
    const MachineTree& tree, std::size_t n, int root_pid, Shares shares) {
  return PlanCache::global().get(tree,
                                 PlanRequest{.kind = CollectiveKind::kBroadcast,
                                             .n = n,
                                             .root_pid = root_pid,
                                             .shares = shares,
                                             .top_phase = TopPhase::kTwoPhase});
}

SweepGrid grid_of(const FigureConfig& config) {
  return {config.processors, config.kbytes, config.noise.seed};
}

/// The cell's private BYTEmark noise stream: same sigma as the config, seed
/// split from the master by the cell's grid position.
bytemark::NoiseOptions cell_noise(const FigureConfig& config,
                                  const SweepCell& cell) {
  return {.stddev = config.noise.stddev, .seed = cell.seed};
}

}  // namespace

double simulate_makespan(const MachineTree& tree, const CommSchedule& schedule,
                         const sim::SimParams& params) {
  return ScenarioCache::global().makespan(tree, schedule, params);
}

MachineTree make_ranked_testbed(int p, const FigureConfig& config) {
  return make_ranked_testbed(p, config, config.noise);
}

MachineTree make_ranked_testbed(int p, const FigureConfig& config,
                                const bytemark::NoiseOptions& noise) {
  const MachineTree truth = make_paper_testbed(p, config.g, config.L);
  const bytemark::Ranking ranking = bytemark::rank_simulated(truth, noise);

  // True r values (the hardware doesn't change), estimated c fractions (the
  // practitioner only has benchmark scores to balance with, §5.1).
  MachineSpec root;
  root.name = "testbed";
  root.sync_L = config.L;
  const auto speeds = paper_testbed_speeds();
  for (int pid = 0; pid < p; ++pid) {
    MachineSpec leaf;
    leaf.name = "ws" + std::to_string(pid);
    leaf.r = speeds[static_cast<std::size_t>(pid)];
    leaf.c = ranking.fractions[static_cast<std::size_t>(pid)];
    root.children.push_back(std::move(leaf));
  }
  return MachineTree::build(root, config.g);
}

ImprovementTable gather_root_experiment(const FigureConfig& config,
                                        SweepRunner& runner) {
  return runner.run(grid_of(config), [&config](const SweepCell& cell) {
    const MachineTree tree = make_paper_testbed(cell.p, config.g, config.L);
    const int fast = tree.coordinator_pid(tree.root());
    const int slow = tree.slowest_pid(tree.root());
    const auto plan_f = cached_gather(tree, cell.n, fast, Shares::kEqual);
    const auto plan_s = cached_gather(tree, cell.n, slow, Shares::kEqual);
    const double t_f = simulate_makespan(tree, plan_f->schedule, config.sim);
    const double t_s = simulate_makespan(tree, plan_s->schedule, config.sim);
    return t_s / t_f;
  });
}

ImprovementTable gather_balance_experiment(const FigureConfig& config,
                                           SweepRunner& runner) {
  return runner.run(grid_of(config), [&config](const SweepCell& cell) {
    const MachineTree tree =
        make_ranked_testbed(cell.p, config, cell_noise(config, cell));
    const int fast = tree.coordinator_pid(tree.root());
    const auto plan_u = cached_gather(tree, cell.n, fast, Shares::kEqual);
    const auto plan_b = cached_gather(tree, cell.n, fast, Shares::kBalanced);
    const double t_u = simulate_makespan(tree, plan_u->schedule, config.sim);
    const double t_b = simulate_makespan(tree, plan_b->schedule, config.sim);
    return t_u / t_b;
  });
}

ImprovementTable broadcast_root_experiment(const FigureConfig& config,
                                           SweepRunner& runner) {
  return runner.run(grid_of(config), [&config](const SweepCell& cell) {
    const MachineTree tree = make_paper_testbed(cell.p, config.g, config.L);
    const int fast = tree.coordinator_pid(tree.root());
    const int slow = tree.slowest_pid(tree.root());
    const auto plan_f = cached_broadcast(tree, cell.n, fast, Shares::kEqual);
    const auto plan_s = cached_broadcast(tree, cell.n, slow, Shares::kEqual);
    const double t_f = simulate_makespan(tree, plan_f->schedule, config.sim);
    const double t_s = simulate_makespan(tree, plan_s->schedule, config.sim);
    return t_s / t_f;
  });
}

ImprovementTable broadcast_balance_experiment(const FigureConfig& config,
                                              SweepRunner& runner) {
  return runner.run(grid_of(config), [&config](const SweepCell& cell) {
    const MachineTree tree =
        make_ranked_testbed(cell.p, config, cell_noise(config, cell));
    const int fast = tree.coordinator_pid(tree.root());
    const auto plan_u = cached_broadcast(tree, cell.n, fast, Shares::kEqual);
    const auto plan_b = cached_broadcast(tree, cell.n, fast, Shares::kBalanced);
    const double t_u = simulate_makespan(tree, plan_u->schedule, config.sim);
    const double t_b = simulate_makespan(tree, plan_b->schedule, config.sim);
    return t_u / t_b;
  });
}

ImprovementTable gather_root_experiment(const FigureConfig& config) {
  SweepRunner runner{config.threads};
  return gather_root_experiment(config, runner);
}

ImprovementTable gather_balance_experiment(const FigureConfig& config) {
  SweepRunner runner{config.threads};
  return gather_balance_experiment(config, runner);
}

ImprovementTable broadcast_root_experiment(const FigureConfig& config) {
  SweepRunner runner{config.threads};
  return broadcast_root_experiment(config, runner);
}

ImprovementTable broadcast_balance_experiment(const FigureConfig& config) {
  SweepRunner runner{config.threads};
  return broadcast_balance_experiment(config, runner);
}

}  // namespace hbsp::exp
