#include "experiments/sweep.hpp"

#include <chrono>
#include <stdexcept>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/csv.hpp"
#include "util/units.hpp"

namespace hbsp::exp {
namespace {

// hbsp-lint: allow(wall-clock) SweepRunner cell timers feed the
// cell_seconds gauge/histogram only — instrumentation that is reported but
// never compared, so it cannot break cross-thread-count byte identity.
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

/// "cell0042": the cell's trace context piece. Indexed, not thread-named, so
/// the virtual-time tracks under it are identical at any pool width.
std::string cell_context(std::size_t index) {
  std::string digits = std::to_string(index);
  std::string piece = "cell";
  if (digits.size() < 4) piece.append(4 - digits.size(), '0');
  piece += digits;
  return piece;
}

}  // namespace

util::Table ImprovementTable::to_table(const std::string& title) const {
  util::Table table{title};
  std::vector<std::string> header{"p"};
  for (const std::size_t kb : kbytes) {
    header.push_back(std::to_string(kb) + " KB");
  }
  table.set_header(std::move(header));
  for (std::size_t i = 0; i < processors.size(); ++i) {
    std::vector<std::string> row{std::to_string(processors[i])};
    for (const double f : factor[i]) row.push_back(util::Table::num(f, 3));
    table.add_row(std::move(row));
  }
  return table;
}

std::string improvement_csv(const ImprovementTable& table) {
  std::string text = "p";
  for (const std::size_t kb : table.kbytes) {
    text += "," + std::to_string(kb);
  }
  text += '\n';
  for (std::size_t i = 0; i < table.processors.size(); ++i) {
    text += std::to_string(table.processors[i]);
    for (const double f : table.factor[i]) {
      text += "," + util::Table::num(f, 4);
    }
    text += '\n';
  }
  return text;
}

void write_improvement_csv(const ImprovementTable& table,
                           const std::string& path) {
  util::CsvWriter csv{path};
  std::vector<std::string> header{"p"};
  for (const std::size_t kb : table.kbytes) header.push_back(std::to_string(kb));
  csv.write_row(header);
  for (std::size_t i = 0; i < table.processors.size(); ++i) {
    std::vector<std::string> row{std::to_string(table.processors[i])};
    for (const double f : table.factor[i]) {
      row.push_back(util::Table::num(f, 4));
    }
    csv.write_row(row);
  }
}

util::Table SweepCounters::to_table(const std::string& title) const {
  util::Table table{title};
  table.set_header({"threads", "cells", "steals", "wall", "cells/sec",
                    "cell mean", "cell max"});
  table.add_row({std::to_string(threads), std::to_string(cells),
                 std::to_string(steals), util::format_time(wall_seconds),
                 util::Table::num(cells_per_second, 0),
                 util::format_time(cell_seconds.mean),
                 util::format_time(cell_seconds.max)});
  return table;
}

ImprovementTable SweepRunner::run(
    const SweepGrid& grid, const std::function<double(const SweepCell&)>& cell) {
  if (grid.processors.empty() || grid.kbytes.empty()) {
    throw std::invalid_argument{"sweep grid must have both axes non-empty"};
  }
  const std::size_t rows = grid.processors.size();
  const std::size_t cols = grid.kbytes.size();
  const std::size_t count = rows * cols;

  ImprovementTable table;
  table.processors = grid.processors;
  table.kbytes = grid.kbytes;
  table.factor.assign(rows, std::vector<double>(cols, 0.0));
  std::vector<double> cell_seconds(count, 0.0);

  const Clock::time_point start = Clock::now();
  pool_.parallel_for(count, [&](std::size_t index) {
    SweepCell c;
    c.index = index;
    c.row = index / cols;
    c.col = index % cols;
    c.p = grid.processors[c.row];
    c.kbytes = grid.kbytes[c.col];
    c.n = util::ints_in_kbytes(c.kbytes);
    c.seed = util::split_seed(grid.master_seed, index);
    // Deterministic per-cell trace context: the simulator's virtual spans
    // land on "cellNNNN/..." tracks; the wall-clock cell span itself is
    // profiling-only.
    const obs::TraceContext trace_context{cell_context(index)};
    const obs::WallScope cell_span{
        "sweep/" + cell_context(index),
        "cell",
        obs::SpanKind::kCell,
        {{"p", static_cast<std::int64_t>(c.p)},
         {"kbytes", static_cast<std::int64_t>(c.kbytes)}}};
    const Clock::time_point cell_start = Clock::now();
    table.factor[c.row][c.col] = cell(c);
    const double seconds = seconds_since(cell_start);
    cell_seconds[index] = seconds;
    // Recorded on the worker: each sweep thread fills its own shard.
    obs::Registry::global().histogram("sweep.cell_seconds").record(seconds);
  });

  counters_.cells = count;
  counters_.threads = threads();
  counters_.steals = pool_.last_steals();
  counters_.wall_seconds = seconds_since(start);
  counters_.cells_per_second =
      counters_.wall_seconds > 0.0
          ? static_cast<double>(count) / counters_.wall_seconds
          : 0.0;
  counters_.cell_seconds = util::summarize(cell_seconds);

  auto& registry = obs::Registry::global();
  registry.counter("sweep.runs").increment();
  registry.counter("sweep.cells").add(count);
  registry.gauge("sweep.threads").set(static_cast<double>(threads()));
  registry.gauge("sweep.steals").set(static_cast<double>(counters_.steals));
  registry.histogram("sweep.run_seconds").record(counters_.wall_seconds);
  return table;
}

}  // namespace hbsp::exp
