#include "svc/load_harness.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <span>
#include <stdexcept>
#include <vector>

#include "collectives/advisor.hpp"
#include "collectives/plan_cache.hpp"
#include "core/topology.hpp"
#include "sim/sim_params.hpp"
#include "svc/service.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace hbsp::svc {

const char* to_string(LoadMode mode) noexcept {
  switch (mode) {
    case LoadMode::kOpenLoop:
      return "open_loop";
    case LoadMode::kClosedLoop:
      return "closed_loop";
  }
  return "unknown";
}

namespace {

/// Distinct scenario contents the mix can draw; small enough that a batch
/// contains repeats (coalescing traffic), large enough to exercise every
/// machine and request kind.
constexpr std::uint64_t kScenarioSpace = 64;

/// Width of one open-loop arrival window in virtual seconds. Requests
/// arriving within a window are submitted as one batch and drained together.
constexpr double kTickSeconds = 0.05;

/// Seed-stream tags so the scenario table, the arrival draws and nothing
/// else ever share an Rng stream.
constexpr std::uint64_t kScenarioStream = 0x5ce7a910ULL;
constexpr std::uint64_t kArrivalStream = 0xa77afa1ULL;

/// The standard machines every load run mixes over (ISSUE acceptance set).
struct Machines {
  std::vector<std::shared_ptr<const MachineTree>> trees;

  Machines() {
    trees.push_back(std::make_shared<const MachineTree>(make_paper_testbed(10)));
    trees.push_back(std::make_shared<const MachineTree>(make_figure1_cluster()));
    trees.push_back(std::make_shared<const MachineTree>(make_wide_area_grid()));
  }
};

/// Collectives valid on a machine of the given height (scan and alltoall
/// require a flat HBSP^1 machine, as their planners do).
std::span<const coll::CollectiveKind> valid_collectives(int height) {
  static constexpr coll::CollectiveKind kFlat[] = {
      coll::CollectiveKind::kGather,    coll::CollectiveKind::kBroadcast,
      coll::CollectiveKind::kScatter,   coll::CollectiveKind::kReduce,
      coll::CollectiveKind::kAllgather, coll::CollectiveKind::kScan,
      coll::CollectiveKind::kAlltoall,
  };
  static constexpr coll::CollectiveKind kHierarchical[] = {
      coll::CollectiveKind::kGather,  coll::CollectiveKind::kBroadcast,
      coll::CollectiveKind::kScatter, coll::CollectiveKind::kReduce,
      coll::CollectiveKind::kAllgather,
  };
  if (height <= 1) return std::span<const coll::CollectiveKind>{kFlat};
  return std::span<const coll::CollectiveKind>{kHierarchical};
}

bool is_rootless(coll::CollectiveKind kind) noexcept {
  return kind == coll::CollectiveKind::kAllgather ||
         kind == coll::CollectiveKind::kScan ||
         kind == coll::CollectiveKind::kAlltoall;
}

/// One generated request, ready to submit. Exactly one of the three
/// request members is populated, selected by `kind`.
struct GeneratedRequest {
  RequestKind kind = RequestKind::kPlan;
  AdviseRequest advise;
  PlanRequest plan;
  SimulateRequest simulate;
};

/// Expands scenario `id` into a request — a pure function of (seed, id), so
/// every appearance of one scenario id in a run is content-identical.
GeneratedRequest make_scenario(const Machines& machines, std::uint64_t seed,
                               std::uint64_t id) {
  util::Rng rng{util::split_seed(util::split_seed(seed, kScenarioStream), id)};
  GeneratedRequest request;

  const auto tree_index = static_cast<std::size_t>(
      rng.uniform_u64(0, machines.trees.size() - 1));
  const std::shared_ptr<const MachineTree>& tree = machines.trees[tree_index];
  const auto collectives = valid_collectives(tree->height());
  const coll::CollectiveKind collective = collectives[static_cast<std::size_t>(
      rng.uniform_u64(0, collectives.size() - 1))];
  const std::size_t n = std::size_t{1}
                        << rng.uniform_u64(8, 14);  // 256 .. 16384 items

  request.kind = static_cast<RequestKind>(rng.uniform_u64(0, 2));
  if (request.kind == RequestKind::kAdvise) {
    request.advise.tree = tree;
    request.advise.collective = collective;
    request.advise.n = n;
    request.advise.params = sim::SimParams{};
    return request;
  }

  coll::PlanRequest spec;
  spec.kind = collective;
  spec.n = n;
  spec.root_pid = is_rootless(collective)
                      ? -1
                      : static_cast<int>(rng.uniform_u64(
                            0, static_cast<std::uint64_t>(
                                   tree->num_processors() - 1)));
  spec.shares = rng.uniform_u64(0, 1) == 0 ? coll::Shares::kEqual
                                           : coll::Shares::kBalanced;
  spec.top_phase = rng.uniform_u64(0, 1) == 0 ? coll::TopPhase::kOnePhase
                                              : coll::TopPhase::kTwoPhase;
  if (request.kind == RequestKind::kPlan) {
    request.plan.tree = tree;
    request.plan.spec = spec;
  } else {
    request.simulate.tree = tree;
    request.simulate.spec = spec;
    request.simulate.params = sim::SimParams{};
  }
  return request;
}

/// A submitted request awaiting its response.
struct Pending {
  Ticket ticket;
  double submitted_at = 0.0;
};

void submit_one(Service& service, const Machines& machines,
                const LoadConfig& config, std::uint64_t index,
                std::vector<Pending>& pending, LoadReport& report) {
  util::Rng rng{
      util::split_seed(util::split_seed(config.seed, kArrivalStream), index)};
  // Quadratic skew toward low scenario ids: popular scenarios recur within a
  // batch, so coalescing and cache warmth carry realistic weight.
  const double u = rng.uniform01();
  const auto scenario = static_cast<std::uint64_t>(
      u * u * static_cast<double>(kScenarioSpace));
  const Deadline deadline = rng.uniform01() < config.expired_fraction
                                ? Deadline::expired()
                                : Deadline::never();

  GeneratedRequest request = make_scenario(machines, config.seed, scenario);
  Pending entry;
  entry.submitted_at = now_seconds();
  switch (request.kind) {
    case RequestKind::kAdvise:
      entry.ticket = service.submit(std::move(request.advise), deadline);
      break;
    case RequestKind::kPlan:
      entry.ticket = service.submit(std::move(request.plan), deadline);
      break;
    case RequestKind::kSimulate:
      entry.ticket = service.submit(std::move(request.simulate), deadline);
      break;
  }
  ++report.submitted;
  if (entry.ticket.coalesced) ++report.coalesced;
  pending.push_back(std::move(entry));
}

void collect(std::vector<Pending>& pending, LoadReport& report,
             std::vector<double>& latencies) {
  for (Pending& entry : pending) {
    try {
      const Response& response = entry.ticket.response.get();
      switch (response.outcome) {
        case Outcome::kCompleted:
          ++report.completed;
          report.content_checksum += response.body.content_fingerprint();
          latencies.push_back(std::max(
              0.0, response.provenance.completed_at - entry.submitted_at));
          break;
        case Outcome::kRejectedQueueFull:
          ++report.shed_queue_full;
          break;
        case Outcome::kRejectedDeadlineExceeded:
          ++report.shed_deadline;
          break;
      }
    } catch (...) {
      ++report.failed;
    }
  }
  pending.clear();
}

}  // namespace

LoadReport run_load(const LoadConfig& config) {
  if (!(config.qps > 0.0)) {
    throw std::invalid_argument{"LoadConfig::qps must be positive"};
  }
  if (!(config.duration > 0.0)) {
    throw std::invalid_argument{"LoadConfig::duration must be positive"};
  }
  if (config.clients < 1) {
    throw std::invalid_argument{"LoadConfig::clients must be >= 1"};
  }
  if (config.threads < 1 || config.shards < 1) {
    throw std::invalid_argument{
        "LoadConfig::threads and shards must be >= 1"};
  }
  if (!(config.expired_fraction >= 0.0) || config.expired_fraction >= 1.0) {
    throw std::invalid_argument{
        "LoadConfig::expired_fraction must be in [0, 1)"};
  }

  const Machines machines;
  Service service{ServiceConfig{config.threads, config.shards,
                                config.queue_capacity}};

  const auto total = std::max<std::uint64_t>(
      1, static_cast<std::uint64_t>(std::llround(config.qps * config.duration)));
  const std::uint64_t batch =
      config.mode == LoadMode::kOpenLoop
          ? std::max<std::uint64_t>(1, static_cast<std::uint64_t>(std::llround(
                                           config.qps * kTickSeconds)))
          : static_cast<std::uint64_t>(config.clients);

  LoadReport report;
  std::vector<Pending> pending;
  std::vector<double> latencies;
  pending.reserve(batch);
  latencies.reserve(total);

  const double wall_start = now_seconds();
  std::uint64_t next = 0;
  while (next < total) {
    const std::uint64_t round_end = std::min(total, next + batch);
    for (; next < round_end; ++next) {
      submit_one(service, machines, config, next, pending, report);
    }
    service.pump();
    collect(pending, report, latencies);
  }
  report.wall_seconds = std::max(1e-9, now_seconds() - wall_start);
  report.throughput_rps =
      static_cast<double>(report.completed) / report.wall_seconds;

  std::sort(latencies.begin(), latencies.end());
  report.latency_p50 = util::quantile(latencies, 0.50);
  report.latency_p95 = util::quantile(latencies, 0.95);
  report.latency_p99 = util::quantile(latencies, 0.99);
  return report;
}

}  // namespace hbsp::svc
