#include "svc/service.hpp"

#include <algorithm>
#include <optional>
#include <stdexcept>
#include <utility>

#include "collectives/advisor.hpp"
#include "experiments/chaos.hpp"
#include "experiments/figures.hpp"
#include "faults/injector.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"

namespace hbsp::svc {

const char* to_string(RequestKind kind) noexcept {
  switch (kind) {
    case RequestKind::kAdvise:
      return "advise";
    case RequestKind::kPlan:
      return "plan";
    case RequestKind::kSimulate:
      return "simulate";
  }
  return "unknown";
}

const char* to_string(Outcome outcome) noexcept {
  switch (outcome) {
    case Outcome::kCompleted:
      return "completed";
    case Outcome::kRejectedQueueFull:
      return "rejected_queue_full";
    case Outcome::kRejectedDeadlineExceeded:
      return "rejected_deadline_exceeded";
  }
  return "unknown";
}

std::uint64_t ResponseBody::content_fingerprint() const noexcept {
  util::Hash64 hash;
  hash.add(coll::plan_request_fingerprint(spec));
  hash.add(plan != nullptr ? plan->schedule.fingerprint() : 0u);
  hash.add_double(plan != nullptr ? plan->predicted_cost : 0.0);
  hash.add_int(simulated ? 1 : 0);
  hash.add_double(simulated_makespan);
  hash.add_string(rationale);
  return hash.digest();
}

std::uint64_t Service::Canonical::key() const noexcept {
  util::Hash64 hash;
  hash.add_int(static_cast<int>(kind));
  hash.add(tree_fingerprint);
  switch (kind) {
    case RequestKind::kAdvise:
      hash.add_int(static_cast<int>(collective));
      hash.add(static_cast<std::uint64_t>(n));
      hash.add(params_fingerprint);
      break;
    case RequestKind::kPlan:
      hash.add(coll::plan_request_fingerprint(spec));
      break;
    case RequestKind::kSimulate:
      hash.add(coll::plan_request_fingerprint(spec));
      hash.add(params_fingerprint);
      hash.add_int(fault_plan != nullptr ? 1 : 0);
      hash.add(fault_fingerprint);
      break;
  }
  return hash.digest();
}

bool Service::Canonical::same_content(const Canonical& other) const noexcept {
  if (kind != other.kind || tree_fingerprint != other.tree_fingerprint) {
    return false;
  }
  switch (kind) {
    case RequestKind::kAdvise:
      return collective == other.collective && n == other.n &&
             params_fingerprint == other.params_fingerprint;
    case RequestKind::kPlan:
      return spec == other.spec;
    case RequestKind::kSimulate:
      return spec == other.spec &&
             params_fingerprint == other.params_fingerprint &&
             (fault_plan != nullptr) == (other.fault_plan != nullptr) &&
             fault_fingerprint == other.fault_fingerprint;
  }
  return false;
}

namespace {

/// A future that is already resolved — what rejected submissions hand back.
std::shared_future<Response> ready_future(Response response) {
  std::promise<Response> promise;
  promise.set_value(std::move(response));
  return promise.get_future().share();
}

/// One trace track per submit ordinal ("req000042"): deterministic in the
/// submit sequence, and written only by whichever thread owns the ordinal's
/// span — the recorder's one-writer-per-track contract.
std::string request_track(std::uint64_t ordinal) {
  std::string digits = std::to_string(ordinal);
  std::string track = "req";
  if (digits.size() < 6) track.append(6 - digits.size(), '0');
  track += digits;
  return track;
}

}  // namespace

Service::Service(ServiceConfig config)
    : config_{config.threads,
              std::max(1, config.shards),
              config.queue_capacity,
              std::max<std::uint64_t>(1, config.trace_sample_every),
              config.trace_seed},
      pool_(config.threads),
      queues_(static_cast<std::size_t>(std::max(1, config.shards))) {}

Service::~Service() { stop(); }

Ticket Service::submit(AdviseRequest request, Deadline deadline) {
  if (request.tree == nullptr) {
    throw std::invalid_argument{"svc::AdviseRequest requires a machine tree"};
  }
  Canonical canonical;
  canonical.kind = RequestKind::kAdvise;
  canonical.tree = std::move(request.tree);
  canonical.tree_fingerprint = canonical.tree->fingerprint();
  canonical.collective = request.collective;
  canonical.n = request.n;
  canonical.params = request.params;
  canonical.params_fingerprint = request.params.fingerprint();
  return admit(std::move(canonical), deadline);
}

Ticket Service::submit(PlanRequest request, Deadline deadline) {
  if (request.tree == nullptr) {
    throw std::invalid_argument{"svc::PlanRequest requires a machine tree"};
  }
  Canonical canonical;
  canonical.kind = RequestKind::kPlan;
  canonical.tree = std::move(request.tree);
  canonical.tree_fingerprint = canonical.tree->fingerprint();
  canonical.spec = request.spec;
  return admit(std::move(canonical), deadline);
}

Ticket Service::submit(SimulateRequest request, Deadline deadline) {
  if (request.tree == nullptr) {
    throw std::invalid_argument{"svc::SimulateRequest requires a machine tree"};
  }
  Canonical canonical;
  canonical.kind = RequestKind::kSimulate;
  canonical.tree = std::move(request.tree);
  canonical.tree_fingerprint = canonical.tree->fingerprint();
  canonical.spec = request.spec;
  canonical.params = request.params;
  canonical.params_fingerprint = request.params.fingerprint();
  canonical.fault_plan = std::move(request.fault_plan);
  canonical.fault_fingerprint = canonical.fault_plan != nullptr
                                    ? canonical.fault_plan->fingerprint()
                                    : 0u;
  return admit(std::move(canonical), deadline);
}

Ticket Service::admit(Canonical request, Deadline deadline) {
  const std::uint64_t key = request.key();
  const int shard = static_cast<int>(
      key % static_cast<std::uint64_t>(config_.shards));
  const double now = now_seconds();

  obs::Registry& registry = obs::Registry::global();
  obs::TraceRecorder& recorder = obs::TraceRecorder::global();
  std::lock_guard lock{mutex_};
  registry.counter("svc.requests").increment();
  registry.counter(std::string{"svc.requests."} + to_string(request.kind))
      .increment();
  // Every submit owns an ordinal; at trace_sample_every == 1 each sampled
  // ordinal yields exactly one kRequest span, so span count == svc.requests.
  const std::uint64_t ordinal = next_ordinal_++;
  const bool traced =
      recorder.enabled() &&
      obs::TraceRecorder::sampled(config_.trace_seed, ordinal,
                                  config_.trace_sample_every);

  // 1. Coalesce: an in-flight twin (queued or executing, promise not yet
  //    fulfilled) answers for us. Checked before the deadline so an expired
  //    request whose twin is still wanted gets served rather than shed.
  if (const auto it = inflight_.find(key); it != inflight_.end()) {
    for (const std::shared_ptr<Job>& job : it->second) {
      if (!job->request.same_content(request)) continue;  // hash collision
      job->member_submits.push_back(now);
      job->effective_deadline = std::max(job->effective_deadline, deadline.at);
      registry.counter("svc.coalesced").increment();
      if (traced) {
        recorder.record_span(
            request_track(ordinal), "coalesced", obs::SpanKind::kRequest,
            obs::Timebase::kWall, now, now,
            {{"leader", static_cast<std::int64_t>(job->ordinal)}});
      }
      return Ticket{job->future, key, true};
    }
  }

  // 2. Deadline: an already-expired request with no twin never executes.
  if (deadline.passed(now)) {
    registry.counter("svc.shed.deadline").increment();
    if (traced) {
      recorder.record_span(request_track(ordinal), "shed.deadline",
                           obs::SpanKind::kRequest, obs::Timebase::kWall, now,
                           now);
    }
    Response response;
    response.outcome = Outcome::kRejectedDeadlineExceeded;
    response.provenance = Provenance{key, shard, 1, now};
    return Ticket{ready_future(std::move(response)), key, false};
  }

  // 3. Capacity: the admission queue is bounded across all shards.
  if (config_.queue_capacity > 0 && queued_ >= config_.queue_capacity) {
    registry.counter("svc.shed.queue_full").increment();
    if (traced) {
      recorder.record_span(request_track(ordinal), "shed.queue_full",
                           obs::SpanKind::kRequest, obs::Timebase::kWall, now,
                           now);
    }
    Response response;
    response.outcome = Outcome::kRejectedQueueFull;
    response.provenance = Provenance{key, shard, 1, now};
    return Ticket{ready_future(std::move(response)), key, false};
  }

  auto job = std::make_shared<Job>();
  job->request = std::move(request);
  job->key = key;
  job->shard = shard;
  job->ordinal = ordinal;
  job->traced = traced;
  job->effective_deadline = deadline.at;
  job->member_submits.push_back(now);
  job->future = job->promise.get_future().share();

  queues_[static_cast<std::size_t>(shard)].push_back(job);
  inflight_[key].push_back(job);
  ++queued_;
  if (queued_ > depth_high_water_) {
    depth_high_water_ = queued_;
    registry.gauge("svc.queue_depth").set(static_cast<double>(queued_));
  }
  work_cv_.notify_one();
  return Ticket{job->future, key, false};
}

Response Service::compute(const Canonical& request) {
  // Stage spans land on the request's own track (the TraceContext the
  // executor pushed); the simulator nests its virtual spans under the same
  // context. Muted (unsampled) computes skip all of this via enabled().
  obs::TraceRecorder& recorder = obs::TraceRecorder::global();
  const bool tracing = recorder.enabled();
  const std::string track = tracing ? recorder.context() : std::string{};
  const auto stage = [&](const char* name, double begin) {
    if (tracing) {
      recorder.record_span(track, name, obs::SpanKind::kStage,
                           obs::Timebase::kWall, begin, now_seconds());
    }
  };

  Response response;
  response.outcome = Outcome::kCompleted;
  switch (request.kind) {
    case RequestKind::kAdvise: {
      double t0 = tracing ? now_seconds() : 0.0;
      const coll::CollectiveAdvice advice =
          coll::advise(*request.tree, request.collective, request.n);
      response.body.spec = advice.request(request.n);
      stage("advise", t0);
      t0 = tracing ? now_seconds() : 0.0;
      response.body.plan =
          coll::PlanCache::global().get(*request.tree, response.body.spec);
      stage("plan", t0);
      response.body.simulated = true;
      t0 = tracing ? now_seconds() : 0.0;
      response.body.simulated_makespan = exp::simulate_makespan(
          *request.tree, response.body.plan->schedule, request.params);
      stage("simulate", t0);
      response.body.rationale = advice.rationale;
      break;
    }
    case RequestKind::kPlan: {
      response.body.spec = request.spec;
      const double t0 = tracing ? now_seconds() : 0.0;
      response.body.plan =
          coll::PlanCache::global().get(*request.tree, request.spec);
      stage("plan", t0);
      break;
    }
    case RequestKind::kSimulate: {
      response.body.spec = request.spec;
      double t0 = tracing ? now_seconds() : 0.0;
      response.body.plan =
          coll::PlanCache::global().get(*request.tree, request.spec);
      stage("plan", t0);
      response.body.simulated = true;
      t0 = tracing ? now_seconds() : 0.0;
      if (request.fault_plan != nullptr) {
        const faults::FaultInjector injector{*request.fault_plan};
        response.body.simulated_makespan = exp::simulate_makespan_with_faults(
            *request.tree, response.body.plan->schedule, request.params,
            &injector);
      } else {
        response.body.simulated_makespan = exp::simulate_makespan(
            *request.tree, response.body.plan->schedule, request.params);
      }
      stage("simulate", t0);
      break;
    }
  }
  return response;
}

void Service::execute(const std::shared_ptr<Job>& job) {
  obs::Registry& registry = obs::Registry::global();
  const double start = now_seconds();

  // A job every member of whom has given up is shed, not computed. The check
  // and the in-flight removal are atomic so a late twin can never attach to
  // a job that has already decided to shed.
  {
    std::lock_guard lock{mutex_};
    if (start > job->effective_deadline) {
      auto it = inflight_.find(job->key);
      if (it != inflight_.end()) {
        std::erase(it->second, job);
        if (it->second.empty()) inflight_.erase(it);
      }
      const std::uint64_t members = job->member_submits.size();
      registry.counter("svc.shed.deadline").add(members);
      if (job->traced && obs::TraceRecorder::global().enabled()) {
        // The leader's one kRequest span: its twins already recorded theirs
        // when they attached.
        obs::TraceRecorder::global().record_span(
            request_track(job->ordinal), "shed.dispatch",
            obs::SpanKind::kRequest, obs::Timebase::kWall, start, start,
            {{"served", static_cast<std::int64_t>(members)}});
      }
      Response response;
      response.outcome = Outcome::kRejectedDeadlineExceeded;
      response.provenance = Provenance{job->key, job->shard, members, start};
      job->promise.set_value(std::move(response));
      return;
    }
  }

  obs::TraceRecorder& recorder = obs::TraceRecorder::global();
  const bool traced = job->traced && recorder.enabled();
  // An unsampled compute is muted so it cannot leak simulator spans onto the
  // sampled trace; a sampled one opens the request's root lifecycle span and
  // pushes its track as context for the stage and simulator spans below.
  std::optional<obs::TraceMute> mute;
  if (!job->traced && recorder.enabled()) mute.emplace();
  std::optional<obs::TraceContext> context;
  std::string track;
  if (traced) {
    track = request_track(job->ordinal);
    recorder.begin_span(track, to_string(job->request.kind),
                        obs::SpanKind::kRequest, obs::Timebase::kWall, start);
    recorder.record_span(track, "queue", obs::SpanKind::kStage,
                         obs::Timebase::kWall, job->member_submits.front(),
                         start);
    context.emplace(recorder, track);
  }

  Response response;
  std::exception_ptr error;
  try {
    response = compute(job->request);
  } catch (...) {
    error = std::current_exception();
  }
  const double end = now_seconds();

  // Detach from the in-flight table *before* fulfilling the promise: twins
  // found in the table always attach before the member snapshot below, so
  // every served request gets a latency sample and the served count is
  // exact.
  std::vector<double> members;
  {
    std::lock_guard lock{mutex_};
    auto it = inflight_.find(job->key);
    if (it != inflight_.end()) {
      std::erase(it->second, job);
      if (it->second.empty()) inflight_.erase(it);
    }
    members = std::move(job->member_submits);
  }

  if (traced) {
    context.reset();
    recorder.end_span(end,
                      {{"served", static_cast<std::int64_t>(members.size())},
                       {"coalesced",
                        static_cast<std::int64_t>(members.size() - 1)},
                       {"error", error != nullptr ? 1 : 0}});
  }

  if (error != nullptr) {
    job->promise.set_exception(error);
    return;
  }

  registry.counter("svc.completed").add(members.size());
  obs::Histogram latency = registry.histogram("svc.latency_seconds");
  for (const double submitted : members) {
    latency.record(std::max(0.0, end - submitted));
  }
  registry.histogram("svc.exec_seconds").record(std::max(0.0, end - start));

  response.provenance =
      Provenance{job->key, job->shard, members.size(), end};
  job->promise.set_value(std::move(response));
}

void Service::drain_shard(std::size_t shard) {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::lock_guard lock{mutex_};
      std::deque<std::shared_ptr<Job>>& queue = queues_[shard];
      if (queue.empty()) return;
      job = queue.front();
      queue.pop_front();
      --queued_;
    }
    execute(job);
  }
}

void Service::pump() {
  {
    std::lock_guard lock{mutex_};
    if (running_) {
      throw std::logic_error{
          "svc::Service::pump: background executor is running"};
    }
  }
  pool_.parallel_for(static_cast<std::size_t>(config_.shards),
                     [this](std::size_t shard) { drain_shard(shard); });
}

std::shared_ptr<Service::Job> Service::pop_locked(std::size_t preferred_shard) {
  const std::size_t shards = queues_.size();
  for (std::size_t i = 0; i < shards; ++i) {
    std::deque<std::shared_ptr<Job>>& queue =
        queues_[(preferred_shard + i) % shards];
    if (queue.empty()) continue;
    std::shared_ptr<Job> job = queue.front();
    queue.pop_front();
    --queued_;
    return job;
  }
  return nullptr;
}

void Service::worker_loop(std::size_t worker) {
  const std::size_t preferred = worker % queues_.size();
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock lock{mutex_};
      work_cv_.wait(lock, [this] { return stopping_ || queued_ > 0; });
      if (queued_ == 0) return;  // stopping_ and fully drained
      job = pop_locked(preferred);
    }
    if (job != nullptr) execute(job);
  }
}

void Service::start() {
  {
    std::lock_guard lock{mutex_};
    if (running_) return;
    running_ = true;
    stopping_ = false;
  }
  const auto width = static_cast<std::size_t>(pool_.threads());
  executor_ = std::thread{[this, width] {
    pool_.parallel_for(width, [this](std::size_t i) { worker_loop(i); });
  }};
}

void Service::stop() {
  {
    std::lock_guard lock{mutex_};
    if (!running_) return;
    stopping_ = true;
  }
  work_cv_.notify_all();
  executor_.join();
  std::lock_guard lock{mutex_};
  running_ = false;
  stopping_ = false;
}

bool Service::running() const {
  std::lock_guard lock{mutex_};
  return running_;
}

std::size_t Service::queue_depth() const {
  std::lock_guard lock{mutex_};
  return queued_;
}

}  // namespace hbsp::svc
