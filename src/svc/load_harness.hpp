#pragma once
// Seeded load generator for svc::Service — the measurement half of the
// serving layer.
//
// The harness drives a Service with a reproducible request mix over the
// three standard machines (the 10-workstation testbed, Figure 1's campus
// hierarchy, the wide-area grid) and reports two kinds of results:
//
//   deterministic   the outcome tally (submitted / completed / coalesced /
//                   shed) and a commutative checksum over the completed
//                   responses' content fingerprints. These are pure
//                   functions of (config.seed, mix parameters): the harness
//                   submits each round's batch from one thread (admission
//                   outcomes are decided synchronously in submit order) and
//                   then pump()s the service to drain it, so thread count
//                   and shard count can change *where* work runs but never
//                   what happens to any request. The perf gate exact-matches
//                   these, and the svc tests assert them across shard/thread
//                   sweeps.
//
//   measured        wall-clock throughput and p50/p95/p99 latency, computed
//                   from client-side submit stamps and response completion
//                   stamps. Reported, never gated.
//
// The arrival model is virtual-time: --qps and --duration size the request
// schedule (total ≈ qps × duration, carved into per-tick batches), they do
// not pace real sleeps — a load run completes as fast as the service can
// serve it, which is exactly what makes it usable as a perf workload.
//
// Request mix: each request draws a scenario id with a quadratic skew toward
// popular scenarios (so coalescing has real work to do within a batch), and
// each scenario id expands deterministically into one request — machine,
// request kind (advise / plan / simulate), collective (flat-only collectives
// are only drawn for the flat testbed), problem size, root, shares, phase
// structure. A configurable fraction of requests carries an already-expired
// deadline, exercising deterministic load shedding.

#include <cstddef>
#include <cstdint>

namespace hbsp::svc {

/// How the generator offers load to the service.
enum class LoadMode : std::uint8_t {
  kOpenLoop,    ///< arrivals follow the qps schedule regardless of progress
  kClosedLoop,  ///< `clients` outstanding requests, next sent on completion
};

[[nodiscard]] const char* to_string(LoadMode mode) noexcept;

struct LoadConfig {
  LoadMode mode = LoadMode::kOpenLoop;
  int threads = 1;   ///< service executor width
  int shards = 1;    ///< service admission shards
  std::size_t queue_capacity = 64;  ///< service admission bound; 0 = unbounded
  double qps = 200.0;     ///< arrival rate of the virtual schedule (> 0)
  double duration = 1.0;  ///< virtual seconds of arrivals (> 0)
  int clients = 8;        ///< closed-loop concurrency (>= 1)
  std::uint64_t seed = 0x1db15eedULL;
  /// Fraction of requests submitted with an already-expired deadline —
  /// deterministic svc.shed.deadline traffic (coalescing onto a live twin
  /// still rescues such a request, as in production).
  double expired_fraction = 0.0;
};

/// One load run's results. The tally block and `content_checksum` are
/// deterministic (see the header comment); the latency/throughput block is
/// measured wall time.
struct LoadReport {
  // --- deterministic tally --------------------------------------------------
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;        ///< requests whose future carried a body
  std::uint64_t coalesced = 0;        ///< submits attached to an in-flight twin
  std::uint64_t shed_queue_full = 0;
  std::uint64_t shed_deadline = 0;
  std::uint64_t failed = 0;           ///< futures that surfaced an exception
  /// Wrapping sum of content_fingerprint() over completed responses: one
  /// number that differs if any response body differs anywhere.
  std::uint64_t content_checksum = 0;

  // --- measured (reported, never gated) -------------------------------------
  double wall_seconds = 0.0;
  double throughput_rps = 0.0;  ///< completed / wall_seconds
  double latency_p50 = 0.0;
  double latency_p95 = 0.0;
  double latency_p99 = 0.0;
};

/// Runs the full load schedule against a fresh Service built from `config`
/// and returns the report. Throws std::invalid_argument for non-positive
/// qps/duration or clients < 1.
[[nodiscard]] LoadReport run_load(const LoadConfig& config);

}  // namespace hbsp::svc
