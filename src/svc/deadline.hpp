#pragma once
// The serving layer's wall-time primitives: a monotonic timebase and the
// admission deadline carried by every request.
//
// svc is a determinism zone (tools/hbsp_lint/layers.toml), but deadlines and
// latency are wall-time concepts by definition, so the zone needs exactly one
// sanctioned clock read: now_seconds(), implemented in deadline.cpp behind the
// module's single lint allow(wall-clock) escape. Everything else in
// svc expresses time as doubles on that timebase — this header mentions no
// clock type at all, which is what keeps the escape singular.
//
// Wall-time values never enter response *content* (the determinism contract
// covers schedules, costs and makespans); they only decide admission (shed an
// expired request without executing it) and feed latency histograms, which
// the perf gate reports but never compares.

#include <limits>

namespace hbsp::svc {

/// Monotonic seconds on an arbitrary (per-process) epoch. Strictly for
/// deadline arithmetic and latency measurement — never simulated time.
[[nodiscard]] double now_seconds() noexcept;

/// When a request stops being worth computing, on the now_seconds()
/// timebase. The default is "never": requests without latency budgets are
/// always admitted.
struct Deadline {
  /// Absolute expiry; +infinity means no deadline.
  double at = std::numeric_limits<double>::infinity();

  /// No deadline at all (the default).
  [[nodiscard]] static Deadline never() noexcept { return {}; }

  /// Expires `seconds` from now (values <= 0 are already expired).
  [[nodiscard]] static Deadline after(double seconds) noexcept {
    return Deadline{now_seconds() + seconds};
  }

  /// A deadline that has already passed, for deterministic shedding: a
  /// request carrying it is rejected with kRejectedDeadlineExceeded without
  /// executing, independent of wall-clock speed.
  [[nodiscard]] static Deadline expired() noexcept {
    return Deadline{-std::numeric_limits<double>::infinity()};
  }

  [[nodiscard]] bool passed(double now) const noexcept { return now > at; }
};

}  // namespace hbsp::svc
