#include "svc/deadline.hpp"

#include <chrono>

namespace hbsp::svc {

double now_seconds() noexcept {
  // hbsp-lint: allow(wall-clock) the serving layer's one sanctioned clock
  //     read: deadlines and latency are wall-time by definition. The value
  //     feeds admission decisions and latency histograms only — it never
  //     reaches response content, which stays bit-identical regardless of
  //     wall-clock speed.
  const auto tick = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(tick).count();
}

}  // namespace hbsp::svc
