#pragma once
// Embedded scenario-advisory service: the repo's first request path.
//
// Every consumer of the HBSP^k planner/simulator so far is a batch binary;
// the ROADMAP's north star is a shared advisor serving heavy concurrent
// traffic. Service turns the PR 5 caches and the PR 1 thread pool into that
// serving layer: clients submit typed requests (AdviseRequest / PlanRequest /
// SimulateRequest) and receive a shared future for a Response carrying the
// plan, its predicted (§3.4 CostModel) cost, the simulated makespan, and
// provenance metadata.
//
// Three serving mechanisms, all decided synchronously at submit() in call
// order (which is what makes the load harness's outcome tally a pure
// function of the arrival sequence):
//
//   coalescing    requests are keyed on the PR 5 content fingerprints
//                 (machine tree, planner request, SimParams, fault plan). A
//                 request whose key matches an in-flight twin attaches to
//                 the twin's future instead of consuming a queue slot — N
//                 identical concurrent requests trigger exactly one compute.
//                 Keys are hashes, so the in-flight table keeps the full
//                 request content and verifies equality before attaching; a
//                 hash collision degrades to a separate compute, never to a
//                 wrong response.
//
//   admission     the queue is bounded (ServiceConfig::queue_capacity, total
//                 across shards). A request that finds the queue full is
//                 rejected immediately with Outcome::kRejectedQueueFull —
//                 explicit backpressure, never a silent drop.
//
//   deadlines     a request may carry a Deadline. Already-expired deadlines
//                 are rejected at submit with kRejectedDeadlineExceeded
//                 without executing; a queued job re-checks at dispatch. A
//                 coalesced group computes if *any* member's deadline is
//                 still live (the work is wanted, so late members share the
//                 result rather than wasting it).
//
// Execution runs on a util::ThreadPool, sharded by key across
// ServiceConfig::shards FIFO queues. Two drive modes:
//
//   pump()        drains every queued job on the calling thread plus the
//                 pool (one parallel_for, shard i drained in FIFO order by
//                 index i). With submissions batched between pumps, every
//                 outcome and counter is deterministic at any thread or
//                 shard count — the mode the load harness, the perf
//                 snapshot and the differential tests use.
//
//   start()/stop() spawns a background pump: pool workers park on the
//                 admission condvar and serve submissions as they arrive —
//                 the embedded-server mode. Outcome metadata (who coalesced
//                 with whom) then depends on timing, but response *content*
//                 never does.
//
// Determinism contract: ResponseBody is a pure function of request content.
// Plans come through coll::PlanCache and makespans through
// exp::ScenarioCache, so for a given request the schedule, predicted cost
// and simulated makespan are bit-identical regardless of thread count, queue
// order, shard count, or cache warmth — the differential suite in
// tests/test_svc.cpp pins Service responses against direct advisor /
// planner / simulator calls.
//
// Observability (obs::Registry::global()):
//   counters    svc.requests (+ .advise/.plan/.simulate), svc.completed,
//               svc.coalesced, svc.shed.queue_full, svc.shed.deadline —
//               deterministic totals under pump()-batched driving
//   gauge       svc.queue_depth — admission-queue high-water mark
//   histograms  svc.latency_seconds (submit -> response ready, per served
//               request), svc.exec_seconds (compute only) — wall time,
//               reported but never gated
//
// Tracing (obs::TraceRecorder::global(), when enabled): every sampled submit
// yields exactly one kRequest span on its own "req<ordinal>" track — a root
// lifecycle span for leaders that compute, an instant span for coalesced
// twins and shed requests — plus kStage children (queue, plan, simulate) on
// svc's sanctioned clock and, nested under the request context, the
// simulator's virtual-time spans. At trace_sample_every == 1 the kRequest
// span count reconciles exactly with the svc.requests counter.

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "collectives/advisor.hpp"
#include "collectives/plan_cache.hpp"
#include "core/machine.hpp"
#include "faults/fault_plan.hpp"
#include "sim/sim_params.hpp"
#include "svc/deadline.hpp"
#include "util/thread_pool.hpp"

namespace hbsp::svc {

/// The three request types the service understands, in increasing depth:
/// plan only, plan + simulate, full §4 advice + plan + simulate.
enum class RequestKind : std::uint8_t { kAdvise, kPlan, kSimulate };

[[nodiscard]] const char* to_string(RequestKind kind) noexcept;

/// Full advisory: run the §4 decision procedure for `collective` moving `n`
/// items on `tree`, plan the chosen configuration, and simulate it under
/// `params`. The response carries the advisor's rationale.
struct AdviseRequest {
  std::shared_ptr<const MachineTree> tree;
  coll::CollectiveKind collective = coll::CollectiveKind::kGather;
  std::size_t n = 0;
  sim::SimParams params;
};

/// Plan a caller-specified configuration (no advisor, no simulation):
/// the serving-path equivalent of coll::PlanCache::get.
struct PlanRequest {
  std::shared_ptr<const MachineTree> tree;
  coll::PlanRequest spec;
};

/// Plan a caller-specified configuration and simulate it, optionally under
/// a fault plan (null = fault-free): "what would this cost me right now?".
struct SimulateRequest {
  std::shared_ptr<const MachineTree> tree;
  coll::PlanRequest spec;
  sim::SimParams params;
  std::shared_ptr<const faults::FaultPlan> fault_plan;  ///< null = fault-free
};

/// How a request left the service. Rejections are always explicit — the
/// service never drops a request silently.
enum class Outcome : std::uint8_t {
  kCompleted,
  kRejectedQueueFull,         ///< bounded admission queue was full at submit
  kRejectedDeadlineExceeded,  ///< deadline passed before the compute started
};

[[nodiscard]] const char* to_string(Outcome outcome) noexcept;

/// The deterministic half of a response: a pure function of request content,
/// bit-identical at any thread count, shard count, queue order or cache
/// warmth. Only meaningful when the outcome is kCompleted.
struct ResponseBody {
  /// The configuration that was planned: the caller's spec for kPlan /
  /// kSimulate, the advisor's choice for kAdvise.
  coll::PlanRequest spec;
  /// The schedule realising `spec` plus its §3.4 predicted cost, shared
  /// with coll::PlanCache (immutable; safe to hold past cache clears).
  std::shared_ptr<const coll::CachedPlan> plan;
  bool simulated = false;           ///< kAdvise and kSimulate runs only
  double simulated_makespan = 0.0;  ///< exp::ScenarioCache makespan
  std::string rationale;            ///< advisor runs only

  /// Stable content digest (spec, schedule fingerprint, costs, rationale) —
  /// what the differential tests and the load harness checksum.
  [[nodiscard]] std::uint64_t content_fingerprint() const noexcept;
};

/// Execution metadata: legitimately run-dependent (which shard computed,
/// how many twins were served, when it finished). Never part of the
/// determinism contract.
struct Provenance {
  std::uint64_t key = 0;       ///< coalescing key (request content hash)
  int shard = -1;              ///< admission shard, key % shards
  std::uint64_t served = 1;    ///< requests answered by this one compute
  double completed_at = 0.0;   ///< now_seconds() when the response was ready
};

struct Response {
  Outcome outcome = Outcome::kCompleted;
  ResponseBody body;  ///< valid only when outcome == kCompleted
  Provenance provenance;
};

/// What submit() hands back: the (possibly shared) response future plus the
/// submit-time facts the caller may want without blocking.
struct Ticket {
  std::shared_future<Response> response;
  std::uint64_t key = 0;
  bool coalesced = false;  ///< attached to an in-flight twin's future
};

struct ServiceConfig {
  int threads = 1;  ///< executor pool width; < 1 uses the hardware count
  int shards = 1;   ///< admission-queue shards (>= 1), jobs land on key % shards
  /// Total queued-job bound across all shards; 0 = unbounded (never sheds).
  std::size_t queue_capacity = 64;
  /// Request-lifecycle tracing (active only while the global TraceRecorder
  /// is enabled): spans are recorded for 1-in-`trace_sample_every` submits,
  /// decided by obs::TraceRecorder::sampled(trace_seed, submit ordinal, N) —
  /// seeded and reproducible, so the load harness can trace under full load.
  /// 1 traces every request; unsampled computes are muted so they leak no
  /// simulator spans either.
  std::uint64_t trace_sample_every = 1;
  std::uint64_t trace_seed = 0;
};

class Service {
 public:
  explicit Service(ServiceConfig config);
  ~Service();

  Service(const Service&) = delete;
  Service& operator=(const Service&) = delete;

  [[nodiscard]] const ServiceConfig& config() const noexcept { return config_; }

  /// Admits, coalesces, or rejects the request — synchronously, in call
  /// order — and returns a ticket whose future completes when the compute
  /// does (immediately, for rejections). Throws std::invalid_argument on a
  /// null machine tree; planner/simulator errors surface through the future.
  Ticket submit(AdviseRequest request, Deadline deadline = Deadline::never());
  Ticket submit(PlanRequest request, Deadline deadline = Deadline::never());
  Ticket submit(SimulateRequest request, Deadline deadline = Deadline::never());

  /// Drains every currently queued job on the calling thread plus the pool
  /// (shard i is drained in FIFO order by parallel_for index i). The
  /// deterministic drive mode: submissions batched between pump() calls
  /// yield outcome tallies that are pure functions of the submit sequence.
  /// Must not be called while the background executor is running.
  void pump();

  /// Spawns the background executor: pool workers park on the admission
  /// queue and serve submissions as they arrive. Idempotent.
  void start();

  /// Drains the remaining queue, stops the workers, and joins. Idempotent;
  /// the destructor calls it.
  void stop();

  [[nodiscard]] bool running() const;

  /// Jobs admitted but not yet dispatched (excludes executing jobs).
  [[nodiscard]] std::size_t queue_depth() const;

 private:
  /// A request normalised to one shape, with every fingerprint the
  /// coalescing key needs precomputed.
  struct Canonical {
    RequestKind kind = RequestKind::kPlan;
    std::shared_ptr<const MachineTree> tree;
    std::uint64_t tree_fingerprint = 0;
    coll::CollectiveKind collective = coll::CollectiveKind::kGather;  // advise
    std::size_t n = 0;                                                // advise
    coll::PlanRequest spec;           // plan / simulate
    sim::SimParams params;            // advise / simulate
    std::uint64_t params_fingerprint = 0;
    std::shared_ptr<const faults::FaultPlan> fault_plan;  // simulate
    std::uint64_t fault_fingerprint = 0;

    [[nodiscard]] std::uint64_t key() const noexcept;
    /// Full content equality (trees compare by fingerprint, like the plan
    /// cache): the collision check behind every coalescing attach.
    [[nodiscard]] bool same_content(const Canonical& other) const noexcept;
  };

  /// One admitted compute plus everyone waiting on it.
  struct Job {
    Canonical request;
    std::uint64_t key = 0;
    int shard = 0;
    std::uint64_t ordinal = 0;  ///< submit ordinal of the leading member
    bool traced = false;        ///< sampled for lifecycle spans at admit time
    /// max over all members' deadlines: compute while anyone still wants it.
    double effective_deadline = 0.0;
    /// submit times of every member (leader first), for latency histograms.
    std::vector<double> member_submits;
    std::promise<Response> promise;
    std::shared_future<Response> future;
  };

  Ticket admit(Canonical request, Deadline deadline);
  void execute(const std::shared_ptr<Job>& job);
  [[nodiscard]] Response compute(const Canonical& request);
  void drain_shard(std::size_t shard);
  void worker_loop(std::size_t worker);

  /// Pops the oldest job of the preferred shard, else steals the oldest
  /// queued job from any shard. Must hold mutex_. Null when empty.
  std::shared_ptr<Job> pop_locked(std::size_t preferred_shard);

  ServiceConfig config_;
  util::ThreadPool pool_;
  mutable std::mutex mutex_;
  std::condition_variable work_cv_;
  std::vector<std::deque<std::shared_ptr<Job>>> queues_;  ///< one per shard
  /// In-flight jobs (queued or executing) by key; vectors chain the
  /// hash-collision case.
  std::map<std::uint64_t, std::vector<std::shared_ptr<Job>>> inflight_;
  std::size_t queued_ = 0;   ///< jobs admitted, not yet dispatched
  std::size_t depth_high_water_ = 0;
  std::uint64_t next_ordinal_ = 0;  ///< submit ordinal; keys trace sampling
  bool stopping_ = false;
  bool running_ = false;
  std::thread executor_;  ///< drives pool_.parallel_for in background mode
};

}  // namespace hbsp::svc
