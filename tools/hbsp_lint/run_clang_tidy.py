#!/usr/bin/env python3
"""Differential clang-tidy gate for the HBSP^k tree (stdlib-only).

Runs clang-tidy (with the repo's .clang-tidy check set) over every
translation unit in src/, fingerprints each finding, and compares the set
against the committed baseline. Only *new* fingerprints fail, so the gate
can land on a codebase with known findings and still stop regressions.

A fingerprint is `relative-file | check-name | message` — deliberately no
line number, so unrelated edits that shift code don't churn the baseline.
Adding a second identical finding in the same file is therefore invisible
to the gate; that is the accepted cost of a stable baseline (same trade-off
clang-tidy's own --export-fixes diffing makes).

Usage:
  run_clang_tidy.py --build-dir build-ci-lint            # gate vs baseline
  run_clang_tidy.py --build-dir build-ci-lint --update-baseline
  run_clang_tidy.py --build-dir build-ci-lint --json report.json

The build dir must contain compile_commands.json (configure with
-DCMAKE_EXPORT_COMPILE_COMMANDS=ON). If no clang-tidy binary is found the
script prints a notice and exits 0 — the hbsp-lint rules still gate, and CI
installs clang-tidy so the differential check always runs there.

Exit codes: 0 clean/skipped, 1 new findings, 2 bad usage.
"""

import argparse
import concurrent.futures
import json
import os
import pathlib
import re
import shutil
import subprocess
import sys

CANDIDATES = ("clang-tidy", "clang-tidy-19", "clang-tidy-18",
              "clang-tidy-17", "clang-tidy-16", "clang-tidy-15",
              "clang-tidy-14")

# clang-tidy diagnostic line:  /path/file.cpp:12:3: warning: msg [check]
DIAG_RE = re.compile(
    r"^(?P<file>[^:\n]+):(?P<line>\d+):(?P<col>\d+): "
    r"(?:warning|error): (?P<message>.*?) \[(?P<check>[\w.,-]+)\]$"
)


def find_clang_tidy():
    override = os.environ.get("CLANG_TIDY")
    if override:
        return override if shutil.which(override) else None
    for name in CANDIDATES:
        if shutil.which(name):
            return name
    return None


def list_sources(build_dir):
    db_path = build_dir / "compile_commands.json"
    if not db_path.is_file():
        raise FileNotFoundError(
            f"{db_path} not found; configure with "
            "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON"
        )
    with open(db_path, encoding="utf-8") as fh:
        db = json.load(fh)
    sources = set()
    for entry in db:
        path = pathlib.Path(entry["directory"], entry["file"]).resolve()
        if "/src/" in str(path):
            sources.add(path)
    return sorted(sources)


def run_one(binary, build_dir, source):
    proc = subprocess.run(
        [binary, "--quiet", "-p", str(build_dir), str(source)],
        capture_output=True, text=True, check=False,
    )
    findings = []
    for line in proc.stdout.splitlines():
        match = DIAG_RE.match(line)
        if match and "/src/" in match.group("file"):
            findings.append({
                "file": match.group("file"),
                "line": int(match.group("line")),
                "check": match.group("check"),
                "message": match.group("message"),
            })
    return findings


def fingerprint(item, root):
    try:
        rel = str(pathlib.Path(item["file"]).resolve().relative_to(root))
    except ValueError:
        rel = item["file"]
    return f"{rel} | {item['check']} | {item['message']}"


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--build-dir", required=True)
    parser.add_argument("--baseline", default=None,
                        help="default: tools/hbsp_lint/"
                             "clang_tidy_baseline.txt next to this script")
    parser.add_argument("--update-baseline", action="store_true")
    parser.add_argument("--json", default=None, metavar="OUT")
    parser.add_argument("--jobs", type=int,
                        default=max(1, (os.cpu_count() or 2) - 1))
    args = parser.parse_args(argv)

    root = pathlib.Path(__file__).parents[2].resolve()
    build_dir = pathlib.Path(args.build_dir).resolve()
    baseline_path = pathlib.Path(
        args.baseline or pathlib.Path(__file__).parent /
        "clang_tidy_baseline.txt"
    )

    binary = find_clang_tidy()
    if binary is None:
        print("run_clang_tidy: no clang-tidy binary found (set CLANG_TIDY "
              "to override); skipping the differential gate")
        return 0

    try:
        sources = list_sources(build_dir)
    except FileNotFoundError as exc:
        print(f"run_clang_tidy: {exc}", file=sys.stderr)
        return 2
    if not sources:
        print("run_clang_tidy: compile_commands.json lists no src/ "
              "translation units", file=sys.stderr)
        return 2

    print(f"run_clang_tidy: {binary} over {len(sources)} TU(s), "
          f"-j{args.jobs}")
    findings = []
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        futures = [pool.submit(run_one, binary, build_dir, s)
                   for s in sources]
        for future in futures:
            findings.extend(future.result())

    seen = {}
    for item in findings:
        seen.setdefault(fingerprint(item, root), item)

    if args.update_baseline:
        baseline_path.parent.mkdir(parents=True, exist_ok=True)
        body = "".join(f"{fp}\n" for fp in sorted(seen))
        baseline_path.write_text(
            "# clang-tidy suppression baseline — one fingerprint per line\n"
            "# (file | check | message). Regenerate with "
            "ci/regen_lint_baseline.sh.\n" + body, encoding="utf-8")
        print(f"run_clang_tidy: baseline re-pinned with {len(seen)} "
              f"fingerprint(s) at {baseline_path}")
        return 0

    baseline = set()
    if baseline_path.is_file():
        for line in baseline_path.read_text(encoding="utf-8").splitlines():
            line = line.strip()
            if line and not line.startswith("#"):
                baseline.add(line)

    new = {fp: item for fp, item in seen.items() if fp not in baseline}
    fixed = baseline - set(seen)

    if args.json:
        out = pathlib.Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps({
            "tool": "run_clang_tidy",
            "binary": binary,
            "sources": len(sources),
            "findings": sorted(seen),
            "new": sorted(new),
            "fixed_from_baseline": sorted(fixed),
        }, indent=2) + "\n", encoding="utf-8")

    for fp, item in sorted(new.items()):
        print(f"{item['file']}:{item['line']}: [{item['check']}] "
              f"{item['message']}", file=sys.stderr)
    if fixed:
        print(f"run_clang_tidy: {len(fixed)} baseline entr(ies) no longer "
              "fire — re-pin with ci/regen_lint_baseline.sh to shrink the "
              "baseline")
    print(f"run_clang_tidy: {len(seen)} finding(s), {len(new)} new vs "
          f"baseline ({len(baseline)} baselined)")
    return 1 if new else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
