#!/usr/bin/env python3
"""hbsp-lint: project-specific static analysis for the HBSP^k tree.

Two rule families, independently invocable (stdlib-only, like
ci/validate_bench.py):

  layering      parse `#include "module/..."` edges across src/ and enforce
                the module dependency DAG declared in layers.toml. Back-edges
                (the target layer already depends on the source layer) and
                undeclared edges both fail, with file:line diagnostics.

  determinism   inside the declared determinism zones, ban constructs that
                silently break the bit-identical-across-thread-counts
                guarantee: std::random_device, C rand()/srand(), wall-clock
                reads, unordered_map/unordered_set (iteration order varies by
                libc++ and address layout), pointer-value ordering, and
                `float` in cost arithmetic (double everywhere, or narrowing
                truncates differently across FPU settings).

Escape hatch, counted and reported, justification mandatory:

    // hbsp-lint: allow(wall-clock) SweepRunner cell timers are
    //                              instrumentation, never compared

An allow pragma suppresses its rule on the same line and on the next code
line, so it can sit above the offending statement.

Usage:
  tools/hbsp_lint/hbsp_lint.py                      # both families, src/
  tools/hbsp_lint/hbsp_lint.py --rules layering
  tools/hbsp_lint/hbsp_lint.py --rules determinism
  tools/hbsp_lint/hbsp_lint.py --json report.json
  tools/hbsp_lint/hbsp_lint.py --root DIR --config layers.toml   # fixtures

Exit codes: 0 clean, 1 findings, 2 bad usage / bad config.
"""

import argparse
import json
import pathlib
import re
import sys
import tomllib

RULE_FAMILIES = ("layering", "determinism")

# Determinism rules: id -> (compiled regex, message). Applied to code text
# only (comments and string literals are stripped first). The wall-clock
# pattern uses a lookbehind so member calls (`ctx.time()`) and identifiers
# ending in `time` (`drop_time(`) don't false-positive.
DETERMINISM_RULES = {
    "random-device": (
        re.compile(r"\brandom_device\b"),
        "std::random_device is nondeterministic; derive streams from the "
        "master seed via util::split_seed",
    ),
    "c-rand": (
        re.compile(r"(?<![\w.>])s?rand\s*\("),
        "C rand()/srand() is hidden global state; use util::rng seeded "
        "streams",
    ),
    "wall-clock": (
        re.compile(
            r"(?<![\w.>])time\s*\(|\bsystem_clock\b|\bsteady_clock\b"
            r"|\bhigh_resolution_clock\b|\bgettimeofday\b|\bclock_gettime\b"
            r"|\bstd::clock\b"
        ),
        "wall-clock read in a deterministic zone; simulated time comes from "
        "the virtual clock (allow only for instrumentation that is never "
        "compared)",
    ),
    "unordered-container": (
        re.compile(r"\bunordered_(?:multi)?(?:map|set)\b"),
        "unordered containers iterate in address-dependent order; use "
        "std::map/std::set or a sorted vector",
    ),
    "pointer-ordering": (
        re.compile(
            r"std::less<[^<>]*\*\s*>|\buintptr_t\b|\bintptr_t\b"
            r"|std::(?:map|set)<\s*[\w:]+\s*\*"
        ),
        "ordering by pointer value depends on the allocator; key on a stable "
        "id instead",
    ),
    "float-narrowing": (
        re.compile(r"\bfloat\b"),
        "cost arithmetic stays in double; float narrowing truncates "
        "differently across FPU modes",
    ),
}

ALLOW_RE = re.compile(r"hbsp-lint:\s*allow\(([\w-]+)\)\s*(.*)")
INCLUDE_RE = re.compile(r'^\s*#\s*include\s*"([^"]+)"')

STRING_RE = re.compile(
    r"\"(?:[^\"\\\n]|\\.)*\"|'(?:[^'\\\n]|\\.)*'"
)


class ConfigError(Exception):
    pass


def load_config(path):
    try:
        with open(path, "rb") as fh:
            raw = tomllib.load(fh)
    except (OSError, tomllib.TOMLDecodeError) as exc:
        raise ConfigError(f"{path}: {exc}") from exc
    modules = raw.get("modules")
    if not isinstance(modules, dict) or not modules:
        raise ConfigError(f"{path}: missing [modules] table")
    for name, deps in modules.items():
        if not isinstance(deps, list):
            raise ConfigError(f"{path}: modules.{name} must be a list")
        for dep in deps:
            if dep not in modules:
                raise ConfigError(
                    f"{path}: modules.{name} depends on undeclared "
                    f"module '{dep}'"
                )
        if name in deps:
            raise ConfigError(f"{path}: modules.{name} depends on itself")
    cycle = find_cycle(modules)
    if cycle:
        raise ConfigError(
            f"{path}: declared edges contain a cycle: {' -> '.join(cycle)}"
        )
    zones = raw.get("determinism", {}).get("zones", [])
    for zone in zones:
        if zone not in modules:
            raise ConfigError(
                f"{path}: determinism zone '{zone}' is not a declared module"
            )
    return modules, zones


def find_cycle(modules):
    """Return one cycle as a node list (closed), or None if the DAG is sound."""
    WHITE, GREY, BLACK = 0, 1, 2
    color = {m: WHITE for m in modules}
    stack = []

    def visit(node):
        color[node] = GREY
        stack.append(node)
        for dep in modules[node]:
            if color[dep] == GREY:
                return stack[stack.index(dep):] + [dep]
            if color[dep] == WHITE:
                found = visit(dep)
                if found:
                    return found
        stack.pop()
        color[node] = BLACK
        return None

    for name in sorted(modules):
        if color[name] == WHITE:
            found = visit(name)
            if found:
                return found
    return None


def transitive_deps(modules):
    closure = {}

    def deps_of(name):
        if name not in closure:
            acc = set()
            closure[name] = acc  # config is acyclic, so no re-entry
            for dep in modules[name]:
                acc.add(dep)
                acc |= deps_of(dep)
        return closure[name]

    for name in modules:
        deps_of(name)
    return closure


def strip_code(lines):
    """Yield (code, comment) per line, with strings blanked and block
    comments tracked across lines. The comment part feeds the allow-pragma
    scanner; the code part feeds the rule regexes."""
    in_block = False
    for line in lines:
        code, comment = [], []
        i = 0
        if in_block:
            end = line.find("*/")
            if end < 0:
                yield "", line
                continue
            comment.append(line[:end])
            i = end + 2
            in_block = False
        line = line[i:]
        line = STRING_RE.sub(lambda m: '""', line)
        while True:
            slash = line.find("//")
            block = line.find("/*")
            if slash >= 0 and (block < 0 or slash < block):
                code.append(line[:slash])
                comment.append(line[slash + 2:])
                break
            if block >= 0:
                code.append(line[:block])
                end = line.find("*/", block + 2)
                if end < 0:
                    comment.append(line[block + 2:])
                    in_block = True
                    break
                comment.append(line[block + 2:end])
                line = line[end + 2:]
                continue
            code.append(line)
            break
        yield "".join(code), " ".join(comment)


def scan_source_files(src_root):
    for path in sorted(src_root.rglob("*")):
        if path.suffix in (".cpp", ".hpp", ".h", ".cc", ".cxx"):
            yield path


def module_of(path, src_root, modules):
    rel = path.relative_to(src_root)
    if len(rel.parts) < 2:
        return None
    top = rel.parts[0]
    return top if top in modules else None


def check_layering(src_root, modules, findings):
    closure = transitive_deps(modules)
    known_tops = set(modules)
    for path in scan_source_files(src_root):
        rel = path.relative_to(src_root)
        if rel.parts[0] not in known_tops:
            findings.append(
                finding(path, 1, "layering",
                        f"module '{rel.parts[0]}' is not declared in the "
                        "layer config; add it to [modules]")
            )
            continue
        source_mod = rel.parts[0]
        for lineno, line in enumerate(read_lines(path), start=1):
            match = INCLUDE_RE.match(line)
            if not match:
                continue
            target = match.group(1).split("/")[0]
            if target not in known_tops:
                continue  # quoted non-module include (e.g. generated header)
            if target == source_mod or target in modules[source_mod]:
                continue
            if source_mod in closure.get(target, set()):
                kind = (f"back-edge: '{target}' already depends on "
                        f"'{source_mod}'")
            else:
                kind = "undeclared edge"
            findings.append(
                finding(path, lineno, "layering",
                        f"{kind}; '{source_mod}' may not include "
                        f"'{match.group(1)}' (declared deps: "
                        f"{', '.join(modules[source_mod]) or 'none'})")
            )


def check_determinism(src_root, modules, zones, rule_ids, findings, allows):
    for path in scan_source_files(src_root):
        mod = module_of(path, src_root, modules)
        if mod not in zones:
            continue
        lines = read_lines(path)
        # A pragma covers its own line plus the next non-empty code line
        # (blank and comment-only lines in between don't consume it), so it
        # can trail the statement or sit in a comment block directly above.
        # pending: rule -> [justification, pragma_line, code_lines_left, used]
        pending = {}
        for lineno, (code, comment) in enumerate(strip_code(lines), start=1):
            for pragma in ALLOW_RE.finditer(comment):
                rule, justification = pragma.group(1), pragma.group(2).strip()
                if rule not in DETERMINISM_RULES:
                    findings.append(
                        finding(path, lineno, "allow-unknown-rule",
                                f"allow() names unknown rule '{rule}'")
                    )
                    continue
                if not justification:
                    findings.append(
                        finding(path, lineno, "allow-missing-justification",
                                f"allow({rule}) needs a justification after "
                                "the closing parenthesis")
                    )
                    continue
                budget = 2 if code.strip() else 1
                pending[rule] = [justification, lineno, budget, False]
            if not code.strip():
                continue
            for rule in rule_ids:
                regex, message = DETERMINISM_RULES[rule]
                match = regex.search(code)
                if not match:
                    continue
                allow = pending.get(rule)
                if allow:
                    allow[3] = True
                    allows.append({
                        "file": str(path), "line": lineno, "rule": rule,
                        "justification": allow[0],
                    })
                else:
                    findings.append(
                        finding(path, lineno, rule,
                                f"{message} (matched '{match.group(0)}')")
                    )
            for rule in list(pending):
                allow = pending[rule]
                allow[2] -= 1
                if allow[2] <= 0:
                    del pending[rule]
                    if not allow[3] and rule in rule_ids:
                        findings.append(
                            finding(path, allow[1], "allow-unused",
                                    f"allow({rule}) suppresses nothing; "
                                    "remove it")
                        )
        for rule, allow in pending.items():
            if not allow[3] and rule in rule_ids:
                findings.append(
                    finding(path, allow[1], "allow-unused",
                            f"allow({rule}) suppresses nothing; remove it")
                )


def read_lines(path):
    return path.read_text(encoding="utf-8", errors="replace").splitlines()


def finding(path, lineno, rule, message):
    return {"file": str(path), "line": lineno, "rule": rule,
            "message": message}


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=None,
                        help="repository root (default: two dirs up)")
    parser.add_argument("--config", default=None,
                        help="layer config (default: ROOT/tools/hbsp_lint/"
                             "layers.toml)")
    parser.add_argument("--rules", default="layering,determinism",
                        help="comma list: rule families (layering, "
                             "determinism) and/or individual determinism "
                             "rule ids")
    parser.add_argument("--json", default=None, metavar="OUT",
                        help="write a machine-readable report")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-finding stderr lines")
    args = parser.parse_args(argv)

    root = pathlib.Path(args.root or pathlib.Path(__file__).parents[2])
    src_root = root / "src"
    if not src_root.is_dir():
        print(f"hbsp-lint: no src/ under {root}", file=sys.stderr)
        return 2
    config_path = pathlib.Path(args.config or
                               root / "tools" / "hbsp_lint" / "layers.toml")

    run_layering = False
    det_rules = set()
    for token in filter(None, (t.strip() for t in args.rules.split(","))):
        if token == "layering":
            run_layering = True
        elif token == "determinism":
            det_rules |= set(DETERMINISM_RULES)
        elif token in DETERMINISM_RULES:
            det_rules.add(token)
        else:
            print(f"hbsp-lint: unknown rule '{token}' (families: "
                  f"{', '.join(RULE_FAMILIES)}; determinism rules: "
                  f"{', '.join(sorted(DETERMINISM_RULES))})", file=sys.stderr)
            return 2

    try:
        modules, zones = load_config(config_path)
    except ConfigError as exc:
        print(f"hbsp-lint: bad config: {exc}", file=sys.stderr)
        return 2

    findings, allows = [], []
    if run_layering:
        check_layering(src_root, modules, findings)
    if det_rules:
        check_determinism(src_root, modules, zones, det_rules, findings,
                          allows)
    findings.sort(key=lambda f: (f["file"], f["line"], f["rule"]))

    files_scanned = sum(1 for _ in scan_source_files(src_root))
    report = {
        "tool": "hbsp-lint",
        "root": str(root),
        "rules": sorted(({"layering"} if run_layering else set()) |
                        det_rules),
        "findings": findings,
        "allowed": allows,
        "summary": {
            "findings": len(findings),
            "allowed": len(allows),
            "files_scanned": files_scanned,
        },
    }
    if args.json:
        out = pathlib.Path(args.json)
        out.parent.mkdir(parents=True, exist_ok=True)
        out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n",
                       encoding="utf-8")

    if not args.quiet:
        for item in findings:
            print(f"{item['file']}:{item['line']}: [{item['rule']}] "
                  f"{item['message']}", file=sys.stderr)
    status = "FAIL" if findings else "ok"
    print(f"hbsp-lint: {status} — {len(findings)} finding(s), "
          f"{len(allows)} allowed, {files_scanned} files scanned")
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
