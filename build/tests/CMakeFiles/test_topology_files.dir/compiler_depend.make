# Empty compiler generated dependencies file for test_topology_files.
# This may be replaced when dependencies are built.
