file(REMOVE_RECURSE
  "CMakeFiles/test_topology_files.dir/test_topology_files.cpp.o"
  "CMakeFiles/test_topology_files.dir/test_topology_files.cpp.o.d"
  "test_topology_files"
  "test_topology_files.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_topology_files.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
