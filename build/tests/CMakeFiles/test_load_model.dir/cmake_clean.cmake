file(REMOVE_RECURSE
  "CMakeFiles/test_load_model.dir/test_load_model.cpp.o"
  "CMakeFiles/test_load_model.dir/test_load_model.cpp.o.d"
  "test_load_model"
  "test_load_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_load_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
