# Empty dependencies file for test_load_model.
# This may be replaced when dependencies are built.
