# Empty compiler generated dependencies file for test_bytemark.
# This may be replaced when dependencies are built.
