file(REMOVE_RECURSE
  "CMakeFiles/test_bytemark.dir/test_bytemark.cpp.o"
  "CMakeFiles/test_bytemark.dir/test_bytemark.cpp.o.d"
  "test_bytemark"
  "test_bytemark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_bytemark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
