file(REMOVE_RECURSE
  "CMakeFiles/test_allgather_tree.dir/test_allgather_tree.cpp.o"
  "CMakeFiles/test_allgather_tree.dir/test_allgather_tree.cpp.o.d"
  "test_allgather_tree"
  "test_allgather_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_allgather_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
