# Empty compiler generated dependencies file for test_allgather_tree.
# This may be replaced when dependencies are built.
