
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_allgather_tree.cpp" "tests/CMakeFiles/test_allgather_tree.dir/test_allgather_tree.cpp.o" "gcc" "tests/CMakeFiles/test_allgather_tree.dir/test_allgather_tree.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/experiments/CMakeFiles/hbspk_experiments.dir/DependInfo.cmake"
  "/root/repo/build/src/apps/CMakeFiles/hbspk_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/collectives/CMakeFiles/hbspk_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hbspk_runtime.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hbspk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hbspk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bytemark/CMakeFiles/hbspk_bytemark.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hbspk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
