# Empty dependencies file for test_executors.
# This may be replaced when dependencies are built.
