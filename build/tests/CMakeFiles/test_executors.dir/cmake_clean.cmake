file(REMOVE_RECURSE
  "CMakeFiles/test_executors.dir/test_executors.cpp.o"
  "CMakeFiles/test_executors.dir/test_executors.cpp.o.d"
  "test_executors"
  "test_executors.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_executors.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
