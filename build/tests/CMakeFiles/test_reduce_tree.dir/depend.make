# Empty dependencies file for test_reduce_tree.
# This may be replaced when dependencies are built.
