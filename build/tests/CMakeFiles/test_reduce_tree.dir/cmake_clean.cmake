file(REMOVE_RECURSE
  "CMakeFiles/test_reduce_tree.dir/test_reduce_tree.cpp.o"
  "CMakeFiles/test_reduce_tree.dir/test_reduce_tree.cpp.o.d"
  "test_reduce_tree"
  "test_reduce_tree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_reduce_tree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
