# Empty dependencies file for test_integration_figures.
# This may be replaced when dependencies are built.
