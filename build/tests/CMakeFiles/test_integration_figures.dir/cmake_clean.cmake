file(REMOVE_RECURSE
  "CMakeFiles/test_integration_figures.dir/test_integration_figures.cpp.o"
  "CMakeFiles/test_integration_figures.dir/test_integration_figures.cpp.o.d"
  "test_integration_figures"
  "test_integration_figures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_integration_figures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
