# Empty dependencies file for test_agreement_sim_runtime.
# This may be replaced when dependencies are built.
