file(REMOVE_RECURSE
  "CMakeFiles/test_agreement_sim_runtime.dir/test_agreement_sim_runtime.cpp.o"
  "CMakeFiles/test_agreement_sim_runtime.dir/test_agreement_sim_runtime.cpp.o.d"
  "test_agreement_sim_runtime"
  "test_agreement_sim_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_agreement_sim_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
