file(REMOVE_RECURSE
  "CMakeFiles/test_dest_costs.dir/test_dest_costs.cpp.o"
  "CMakeFiles/test_dest_costs.dir/test_dest_costs.cpp.o.d"
  "test_dest_costs"
  "test_dest_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dest_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
