# Empty compiler generated dependencies file for test_dest_costs.
# This may be replaced when dependencies are built.
