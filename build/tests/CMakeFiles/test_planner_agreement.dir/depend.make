# Empty dependencies file for test_planner_agreement.
# This may be replaced when dependencies are built.
