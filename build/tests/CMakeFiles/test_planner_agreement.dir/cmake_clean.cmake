file(REMOVE_RECURSE
  "CMakeFiles/test_planner_agreement.dir/test_planner_agreement.cpp.o"
  "CMakeFiles/test_planner_agreement.dir/test_planner_agreement.cpp.o.d"
  "test_planner_agreement"
  "test_planner_agreement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_planner_agreement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
