# Empty dependencies file for heterogeneity_report.
# This may be replaced when dependencies are built.
