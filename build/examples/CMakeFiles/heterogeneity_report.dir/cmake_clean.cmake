file(REMOVE_RECURSE
  "CMakeFiles/heterogeneity_report.dir/heterogeneity_report.cpp.o"
  "CMakeFiles/heterogeneity_report.dir/heterogeneity_report.cpp.o.d"
  "heterogeneity_report"
  "heterogeneity_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/heterogeneity_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
