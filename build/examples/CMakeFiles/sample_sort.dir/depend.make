# Empty dependencies file for sample_sort.
# This may be replaced when dependencies are built.
