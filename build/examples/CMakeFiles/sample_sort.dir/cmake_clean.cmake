file(REMOVE_RECURSE
  "CMakeFiles/sample_sort.dir/sample_sort.cpp.o"
  "CMakeFiles/sample_sort.dir/sample_sort.cpp.o.d"
  "sample_sort"
  "sample_sort.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sample_sort.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
