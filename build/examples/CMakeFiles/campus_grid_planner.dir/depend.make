# Empty dependencies file for campus_grid_planner.
# This may be replaced when dependencies are built.
