file(REMOVE_RECURSE
  "CMakeFiles/campus_grid_planner.dir/campus_grid_planner.cpp.o"
  "CMakeFiles/campus_grid_planner.dir/campus_grid_planner.cpp.o.d"
  "campus_grid_planner"
  "campus_grid_planner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/campus_grid_planner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
