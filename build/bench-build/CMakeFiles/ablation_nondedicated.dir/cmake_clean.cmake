file(REMOVE_RECURSE
  "../bench/ablation_nondedicated"
  "../bench/ablation_nondedicated.pdb"
  "CMakeFiles/ablation_nondedicated.dir/ablation_nondedicated.cpp.o"
  "CMakeFiles/ablation_nondedicated.dir/ablation_nondedicated.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nondedicated.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
