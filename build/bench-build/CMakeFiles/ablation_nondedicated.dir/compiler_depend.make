# Empty compiler generated dependencies file for ablation_nondedicated.
# This may be replaced when dependencies are built.
