file(REMOVE_RECURSE
  "../bench/applications"
  "../bench/applications.pdb"
  "CMakeFiles/applications.dir/applications.cpp.o"
  "CMakeFiles/applications.dir/applications.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/applications.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
