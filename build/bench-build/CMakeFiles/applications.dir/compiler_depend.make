# Empty compiler generated dependencies file for applications.
# This may be replaced when dependencies are built.
