file(REMOVE_RECURSE
  "../bench/ablation_substrate"
  "../bench/ablation_substrate.pdb"
  "CMakeFiles/ablation_substrate.dir/ablation_substrate.cpp.o"
  "CMakeFiles/ablation_substrate.dir/ablation_substrate.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_substrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
