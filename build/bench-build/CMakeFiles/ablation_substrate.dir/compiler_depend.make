# Empty compiler generated dependencies file for ablation_substrate.
# This may be replaced when dependencies are built.
