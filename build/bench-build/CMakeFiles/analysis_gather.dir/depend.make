# Empty dependencies file for analysis_gather.
# This may be replaced when dependencies are built.
