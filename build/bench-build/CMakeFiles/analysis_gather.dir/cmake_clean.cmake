file(REMOVE_RECURSE
  "../bench/analysis_gather"
  "../bench/analysis_gather.pdb"
  "CMakeFiles/analysis_gather.dir/analysis_gather.cpp.o"
  "CMakeFiles/analysis_gather.dir/analysis_gather.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_gather.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
