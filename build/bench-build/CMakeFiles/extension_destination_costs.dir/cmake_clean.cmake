file(REMOVE_RECURSE
  "../bench/extension_destination_costs"
  "../bench/extension_destination_costs.pdb"
  "CMakeFiles/extension_destination_costs.dir/extension_destination_costs.cpp.o"
  "CMakeFiles/extension_destination_costs.dir/extension_destination_costs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_destination_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
