# Empty dependencies file for extension_destination_costs.
# This may be replaced when dependencies are built.
