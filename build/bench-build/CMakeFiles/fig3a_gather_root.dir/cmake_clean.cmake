file(REMOVE_RECURSE
  "../bench/fig3a_gather_root"
  "../bench/fig3a_gather_root.pdb"
  "CMakeFiles/fig3a_gather_root.dir/fig3a_gather_root.cpp.o"
  "CMakeFiles/fig3a_gather_root.dir/fig3a_gather_root.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3a_gather_root.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
