# Empty compiler generated dependencies file for fig3a_gather_root.
# This may be replaced when dependencies are built.
