# Empty compiler generated dependencies file for extra_collectives.
# This may be replaced when dependencies are built.
