file(REMOVE_RECURSE
  "../bench/extra_collectives"
  "../bench/extra_collectives.pdb"
  "CMakeFiles/extra_collectives.dir/extra_collectives.cpp.o"
  "CMakeFiles/extra_collectives.dir/extra_collectives.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extra_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
