file(REMOVE_RECURSE
  "../bench/model_accuracy"
  "../bench/model_accuracy.pdb"
  "CMakeFiles/model_accuracy.dir/model_accuracy.cpp.o"
  "CMakeFiles/model_accuracy.dir/model_accuracy.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
