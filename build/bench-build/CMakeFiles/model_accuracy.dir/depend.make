# Empty dependencies file for model_accuracy.
# This may be replaced when dependencies are built.
