
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/micro_engine.cpp" "bench-build/CMakeFiles/micro_engine.dir/micro_engine.cpp.o" "gcc" "bench-build/CMakeFiles/micro_engine.dir/micro_engine.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/collectives/CMakeFiles/hbspk_collectives.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hbspk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/hbspk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hbspk_util.dir/DependInfo.cmake"
  "/root/repo/build/src/runtime/CMakeFiles/hbspk_runtime.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
