# Empty compiler generated dependencies file for ablation_ranking_noise.
# This may be replaced when dependencies are built.
