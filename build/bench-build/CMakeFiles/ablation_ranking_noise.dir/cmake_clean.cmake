file(REMOVE_RECURSE
  "../bench/ablation_ranking_noise"
  "../bench/ablation_ranking_noise.pdb"
  "CMakeFiles/ablation_ranking_noise.dir/ablation_ranking_noise.cpp.o"
  "CMakeFiles/ablation_ranking_noise.dir/ablation_ranking_noise.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_ranking_noise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
