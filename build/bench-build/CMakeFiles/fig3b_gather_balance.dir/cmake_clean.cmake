file(REMOVE_RECURSE
  "../bench/fig3b_gather_balance"
  "../bench/fig3b_gather_balance.pdb"
  "CMakeFiles/fig3b_gather_balance.dir/fig3b_gather_balance.cpp.o"
  "CMakeFiles/fig3b_gather_balance.dir/fig3b_gather_balance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3b_gather_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
