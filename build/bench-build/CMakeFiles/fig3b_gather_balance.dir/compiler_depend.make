# Empty compiler generated dependencies file for fig3b_gather_balance.
# This may be replaced when dependencies are built.
