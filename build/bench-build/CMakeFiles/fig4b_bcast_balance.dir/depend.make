# Empty dependencies file for fig4b_bcast_balance.
# This may be replaced when dependencies are built.
