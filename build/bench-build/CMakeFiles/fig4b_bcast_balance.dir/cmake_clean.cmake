file(REMOVE_RECURSE
  "../bench/fig4b_bcast_balance"
  "../bench/fig4b_bcast_balance.pdb"
  "CMakeFiles/fig4b_bcast_balance.dir/fig4b_bcast_balance.cpp.o"
  "CMakeFiles/fig4b_bcast_balance.dir/fig4b_bcast_balance.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4b_bcast_balance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
