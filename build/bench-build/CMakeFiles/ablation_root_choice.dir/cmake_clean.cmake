file(REMOVE_RECURSE
  "../bench/ablation_root_choice"
  "../bench/ablation_root_choice.pdb"
  "CMakeFiles/ablation_root_choice.dir/ablation_root_choice.cpp.o"
  "CMakeFiles/ablation_root_choice.dir/ablation_root_choice.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_root_choice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
