# Empty dependencies file for ablation_root_choice.
# This may be replaced when dependencies are built.
