# Empty compiler generated dependencies file for table1_cost_model.
# This may be replaced when dependencies are built.
