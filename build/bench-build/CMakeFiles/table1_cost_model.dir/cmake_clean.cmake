file(REMOVE_RECURSE
  "../bench/table1_cost_model"
  "../bench/table1_cost_model.pdb"
  "CMakeFiles/table1_cost_model.dir/table1_cost_model.cpp.o"
  "CMakeFiles/table1_cost_model.dir/table1_cost_model.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_cost_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
