# Empty compiler generated dependencies file for fig4a_bcast_root.
# This may be replaced when dependencies are built.
