file(REMOVE_RECURSE
  "../bench/fig4a_bcast_root"
  "../bench/fig4a_bcast_root.pdb"
  "CMakeFiles/fig4a_bcast_root.dir/fig4a_bcast_root.cpp.o"
  "CMakeFiles/fig4a_bcast_root.dir/fig4a_bcast_root.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4a_bcast_root.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
