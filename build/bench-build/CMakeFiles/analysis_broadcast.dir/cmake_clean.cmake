file(REMOVE_RECURSE
  "../bench/analysis_broadcast"
  "../bench/analysis_broadcast.pdb"
  "CMakeFiles/analysis_broadcast.dir/analysis_broadcast.cpp.o"
  "CMakeFiles/analysis_broadcast.dir/analysis_broadcast.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/analysis_broadcast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
