# Empty compiler generated dependencies file for analysis_broadcast.
# This may be replaced when dependencies are built.
