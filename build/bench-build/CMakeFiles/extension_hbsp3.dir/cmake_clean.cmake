file(REMOVE_RECURSE
  "../bench/extension_hbsp3"
  "../bench/extension_hbsp3.pdb"
  "CMakeFiles/extension_hbsp3.dir/extension_hbsp3.cpp.o"
  "CMakeFiles/extension_hbsp3.dir/extension_hbsp3.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/extension_hbsp3.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
