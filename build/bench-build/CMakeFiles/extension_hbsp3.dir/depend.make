# Empty dependencies file for extension_hbsp3.
# This may be replaced when dependencies are built.
