file(REMOVE_RECURSE
  "libhbspk_sim.a"
)
