
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/cluster_sim.cpp" "src/sim/CMakeFiles/hbspk_sim.dir/cluster_sim.cpp.o" "gcc" "src/sim/CMakeFiles/hbspk_sim.dir/cluster_sim.cpp.o.d"
  "/root/repo/src/sim/dest_calibration.cpp" "src/sim/CMakeFiles/hbspk_sim.dir/dest_calibration.cpp.o" "gcc" "src/sim/CMakeFiles/hbspk_sim.dir/dest_calibration.cpp.o.d"
  "/root/repo/src/sim/network.cpp" "src/sim/CMakeFiles/hbspk_sim.dir/network.cpp.o" "gcc" "src/sim/CMakeFiles/hbspk_sim.dir/network.cpp.o.d"
  "/root/repo/src/sim/sim_params.cpp" "src/sim/CMakeFiles/hbspk_sim.dir/sim_params.cpp.o" "gcc" "src/sim/CMakeFiles/hbspk_sim.dir/sim_params.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/sim/CMakeFiles/hbspk_sim.dir/trace.cpp.o" "gcc" "src/sim/CMakeFiles/hbspk_sim.dir/trace.cpp.o.d"
  "/root/repo/src/sim/trace_export.cpp" "src/sim/CMakeFiles/hbspk_sim.dir/trace_export.cpp.o" "gcc" "src/sim/CMakeFiles/hbspk_sim.dir/trace_export.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hbspk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hbspk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
