file(REMOVE_RECURSE
  "CMakeFiles/hbspk_sim.dir/cluster_sim.cpp.o"
  "CMakeFiles/hbspk_sim.dir/cluster_sim.cpp.o.d"
  "CMakeFiles/hbspk_sim.dir/dest_calibration.cpp.o"
  "CMakeFiles/hbspk_sim.dir/dest_calibration.cpp.o.d"
  "CMakeFiles/hbspk_sim.dir/network.cpp.o"
  "CMakeFiles/hbspk_sim.dir/network.cpp.o.d"
  "CMakeFiles/hbspk_sim.dir/sim_params.cpp.o"
  "CMakeFiles/hbspk_sim.dir/sim_params.cpp.o.d"
  "CMakeFiles/hbspk_sim.dir/trace.cpp.o"
  "CMakeFiles/hbspk_sim.dir/trace.cpp.o.d"
  "CMakeFiles/hbspk_sim.dir/trace_export.cpp.o"
  "CMakeFiles/hbspk_sim.dir/trace_export.cpp.o.d"
  "libhbspk_sim.a"
  "libhbspk_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbspk_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
