# Empty dependencies file for hbspk_sim.
# This may be replaced when dependencies are built.
