# Empty dependencies file for hbspk_collectives.
# This may be replaced when dependencies are built.
