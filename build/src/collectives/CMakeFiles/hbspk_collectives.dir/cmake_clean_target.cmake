file(REMOVE_RECURSE
  "libhbspk_collectives.a"
)
