file(REMOVE_RECURSE
  "CMakeFiles/hbspk_collectives.dir/advisor.cpp.o"
  "CMakeFiles/hbspk_collectives.dir/advisor.cpp.o.d"
  "CMakeFiles/hbspk_collectives.dir/planners.cpp.o"
  "CMakeFiles/hbspk_collectives.dir/planners.cpp.o.d"
  "CMakeFiles/hbspk_collectives.dir/schedule_replay.cpp.o"
  "CMakeFiles/hbspk_collectives.dir/schedule_replay.cpp.o.d"
  "libhbspk_collectives.a"
  "libhbspk_collectives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbspk_collectives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
