# Empty dependencies file for hbspk_core.
# This may be replaced when dependencies are built.
