file(REMOVE_RECURSE
  "libhbspk_core.a"
)
