
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/analysis.cpp" "src/core/CMakeFiles/hbspk_core.dir/analysis.cpp.o" "gcc" "src/core/CMakeFiles/hbspk_core.dir/analysis.cpp.o.d"
  "/root/repo/src/core/cost_model.cpp" "src/core/CMakeFiles/hbspk_core.dir/cost_model.cpp.o" "gcc" "src/core/CMakeFiles/hbspk_core.dir/cost_model.cpp.o.d"
  "/root/repo/src/core/dest_costs.cpp" "src/core/CMakeFiles/hbspk_core.dir/dest_costs.cpp.o" "gcc" "src/core/CMakeFiles/hbspk_core.dir/dest_costs.cpp.o.d"
  "/root/repo/src/core/machine.cpp" "src/core/CMakeFiles/hbspk_core.dir/machine.cpp.o" "gcc" "src/core/CMakeFiles/hbspk_core.dir/machine.cpp.o.d"
  "/root/repo/src/core/schedule.cpp" "src/core/CMakeFiles/hbspk_core.dir/schedule.cpp.o" "gcc" "src/core/CMakeFiles/hbspk_core.dir/schedule.cpp.o.d"
  "/root/repo/src/core/topology.cpp" "src/core/CMakeFiles/hbspk_core.dir/topology.cpp.o" "gcc" "src/core/CMakeFiles/hbspk_core.dir/topology.cpp.o.d"
  "/root/repo/src/core/topology_io.cpp" "src/core/CMakeFiles/hbspk_core.dir/topology_io.cpp.o" "gcc" "src/core/CMakeFiles/hbspk_core.dir/topology_io.cpp.o.d"
  "/root/repo/src/core/workload.cpp" "src/core/CMakeFiles/hbspk_core.dir/workload.cpp.o" "gcc" "src/core/CMakeFiles/hbspk_core.dir/workload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/hbspk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
