file(REMOVE_RECURSE
  "CMakeFiles/hbspk_core.dir/analysis.cpp.o"
  "CMakeFiles/hbspk_core.dir/analysis.cpp.o.d"
  "CMakeFiles/hbspk_core.dir/cost_model.cpp.o"
  "CMakeFiles/hbspk_core.dir/cost_model.cpp.o.d"
  "CMakeFiles/hbspk_core.dir/dest_costs.cpp.o"
  "CMakeFiles/hbspk_core.dir/dest_costs.cpp.o.d"
  "CMakeFiles/hbspk_core.dir/machine.cpp.o"
  "CMakeFiles/hbspk_core.dir/machine.cpp.o.d"
  "CMakeFiles/hbspk_core.dir/schedule.cpp.o"
  "CMakeFiles/hbspk_core.dir/schedule.cpp.o.d"
  "CMakeFiles/hbspk_core.dir/topology.cpp.o"
  "CMakeFiles/hbspk_core.dir/topology.cpp.o.d"
  "CMakeFiles/hbspk_core.dir/topology_io.cpp.o"
  "CMakeFiles/hbspk_core.dir/topology_io.cpp.o.d"
  "CMakeFiles/hbspk_core.dir/workload.cpp.o"
  "CMakeFiles/hbspk_core.dir/workload.cpp.o.d"
  "libhbspk_core.a"
  "libhbspk_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbspk_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
