file(REMOVE_RECURSE
  "CMakeFiles/hbspk_util.dir/cli.cpp.o"
  "CMakeFiles/hbspk_util.dir/cli.cpp.o.d"
  "CMakeFiles/hbspk_util.dir/csv.cpp.o"
  "CMakeFiles/hbspk_util.dir/csv.cpp.o.d"
  "CMakeFiles/hbspk_util.dir/rng.cpp.o"
  "CMakeFiles/hbspk_util.dir/rng.cpp.o.d"
  "CMakeFiles/hbspk_util.dir/stats.cpp.o"
  "CMakeFiles/hbspk_util.dir/stats.cpp.o.d"
  "CMakeFiles/hbspk_util.dir/table.cpp.o"
  "CMakeFiles/hbspk_util.dir/table.cpp.o.d"
  "CMakeFiles/hbspk_util.dir/units.cpp.o"
  "CMakeFiles/hbspk_util.dir/units.cpp.o.d"
  "libhbspk_util.a"
  "libhbspk_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbspk_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
