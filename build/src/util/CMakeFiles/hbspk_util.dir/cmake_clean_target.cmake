file(REMOVE_RECURSE
  "libhbspk_util.a"
)
