# Empty dependencies file for hbspk_util.
# This may be replaced when dependencies are built.
