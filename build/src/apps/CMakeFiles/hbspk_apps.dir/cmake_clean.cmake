file(REMOVE_RECURSE
  "CMakeFiles/hbspk_apps.dir/histogram.cpp.o"
  "CMakeFiles/hbspk_apps.dir/histogram.cpp.o.d"
  "CMakeFiles/hbspk_apps.dir/matvec.cpp.o"
  "CMakeFiles/hbspk_apps.dir/matvec.cpp.o.d"
  "CMakeFiles/hbspk_apps.dir/sample_sort.cpp.o"
  "CMakeFiles/hbspk_apps.dir/sample_sort.cpp.o.d"
  "libhbspk_apps.a"
  "libhbspk_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbspk_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
