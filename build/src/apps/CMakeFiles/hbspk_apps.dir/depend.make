# Empty dependencies file for hbspk_apps.
# This may be replaced when dependencies are built.
