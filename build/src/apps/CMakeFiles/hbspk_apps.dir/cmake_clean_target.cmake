file(REMOVE_RECURSE
  "libhbspk_apps.a"
)
