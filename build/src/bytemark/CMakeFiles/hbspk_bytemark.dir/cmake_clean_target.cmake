file(REMOVE_RECURSE
  "libhbspk_bytemark.a"
)
