file(REMOVE_RECURSE
  "CMakeFiles/hbspk_bytemark.dir/kernels.cpp.o"
  "CMakeFiles/hbspk_bytemark.dir/kernels.cpp.o.d"
  "CMakeFiles/hbspk_bytemark.dir/ranking.cpp.o"
  "CMakeFiles/hbspk_bytemark.dir/ranking.cpp.o.d"
  "libhbspk_bytemark.a"
  "libhbspk_bytemark.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbspk_bytemark.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
