
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bytemark/kernels.cpp" "src/bytemark/CMakeFiles/hbspk_bytemark.dir/kernels.cpp.o" "gcc" "src/bytemark/CMakeFiles/hbspk_bytemark.dir/kernels.cpp.o.d"
  "/root/repo/src/bytemark/ranking.cpp" "src/bytemark/CMakeFiles/hbspk_bytemark.dir/ranking.cpp.o" "gcc" "src/bytemark/CMakeFiles/hbspk_bytemark.dir/ranking.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hbspk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hbspk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
