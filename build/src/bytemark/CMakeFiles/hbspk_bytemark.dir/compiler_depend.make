# Empty compiler generated dependencies file for hbspk_bytemark.
# This may be replaced when dependencies are built.
