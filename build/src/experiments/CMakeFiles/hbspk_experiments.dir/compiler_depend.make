# Empty compiler generated dependencies file for hbspk_experiments.
# This may be replaced when dependencies are built.
