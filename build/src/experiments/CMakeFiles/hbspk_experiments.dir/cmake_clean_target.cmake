file(REMOVE_RECURSE
  "libhbspk_experiments.a"
)
