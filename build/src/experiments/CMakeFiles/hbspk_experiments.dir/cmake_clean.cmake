file(REMOVE_RECURSE
  "CMakeFiles/hbspk_experiments.dir/figures.cpp.o"
  "CMakeFiles/hbspk_experiments.dir/figures.cpp.o.d"
  "libhbspk_experiments.a"
  "libhbspk_experiments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbspk_experiments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
