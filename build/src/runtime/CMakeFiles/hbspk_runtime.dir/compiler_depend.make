# Empty compiler generated dependencies file for hbspk_runtime.
# This may be replaced when dependencies are built.
