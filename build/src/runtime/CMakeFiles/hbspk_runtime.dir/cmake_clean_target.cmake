file(REMOVE_RECURSE
  "libhbspk_runtime.a"
)
