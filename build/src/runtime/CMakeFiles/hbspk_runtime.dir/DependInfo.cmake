
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/runtime/runtime.cpp" "src/runtime/CMakeFiles/hbspk_runtime.dir/runtime.cpp.o" "gcc" "src/runtime/CMakeFiles/hbspk_runtime.dir/runtime.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/hbspk_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/hbspk_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/hbspk_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
