file(REMOVE_RECURSE
  "CMakeFiles/hbspk_runtime.dir/runtime.cpp.o"
  "CMakeFiles/hbspk_runtime.dir/runtime.cpp.o.d"
  "libhbspk_runtime.a"
  "libhbspk_runtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hbspk_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
