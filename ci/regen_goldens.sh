#!/usr/bin/env bash
# Rebuilds every golden CSV under tests/golden/ in one command, so a
# deliberate change to the simulator, the planners, or the seed-splitting
# scheme updates all pins consistently (then review the diff and commit).
#
#   ci/regen_goldens.sh             # build into ./build and regenerate
#   BUILD_DIR=build-ci ci/regen_goldens.sh
#   OUT_DIR=/tmp/goldens ci/regen_goldens.sh   # write elsewhere (drift check)
#
# Every golden is produced by the corresponding bench binary at --threads 8 —
# the same tables at any thread count, which is the point of pinning them.
# CI's golden-drift step regenerates into a temp OUT_DIR and diffs against
# the committed files, so a behaviour change that forgot to re-pin fails.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT_DIR="${OUT_DIR:-tests/golden}"
JOBS="${JOBS:-$(nproc)}"

mkdir -p "${OUT_DIR}"

cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}" \
  --target fig3a_gather_root fig4a_bcast_root chaos_sweep >/dev/null

"${BUILD_DIR}/bench/fig3a_gather_root" --threads 8 \
  --csv "${OUT_DIR}/fig3a.csv" >/dev/null
echo "regenerated ${OUT_DIR}/fig3a.csv"

"${BUILD_DIR}/bench/fig4a_bcast_root" --threads 8 \
  --csv "${OUT_DIR}/fig4a.csv" >/dev/null
echo "regenerated ${OUT_DIR}/fig4a.csv"

# Virtual-time trace goldens use the small 3x3 grid so the committed JSON
# stays reviewable (~18 KB). Byte-identical at any --threads by design —
# the trace determinism suite and CI's trace gate both lean on that.
"${BUILD_DIR}/bench/fig3a_gather_root" --threads 8 --grid small \
  --trace-out "${OUT_DIR}/fig3a_trace.json" >/dev/null
echo "regenerated ${OUT_DIR}/fig3a_trace.json"

"${BUILD_DIR}/bench/fig4a_bcast_root" --threads 8 --grid small \
  --trace-out "${OUT_DIR}/fig4a_trace.json" >/dev/null
echo "regenerated ${OUT_DIR}/fig4a_trace.json"

"${BUILD_DIR}/bench/chaos_sweep" --threads 8 \
  --csv "${OUT_DIR}/chaos_sweep.csv" >/dev/null
echo "regenerated ${OUT_DIR}/chaos_sweep.csv"

if [ "${OUT_DIR}" = "tests/golden" ]; then
  git --no-pager diff --stat -- tests/golden || true
fi
