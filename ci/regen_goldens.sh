#!/usr/bin/env bash
# Rebuilds every golden CSV under tests/golden/ in one command, so a
# deliberate change to the simulator, the planners, or the seed-splitting
# scheme updates all pins consistently (then review the diff and commit).
#
#   ci/regen_goldens.sh             # build into ./build and regenerate
#   BUILD_DIR=build-ci ci/regen_goldens.sh
#
# Every golden is produced by the corresponding bench binary at --threads 8 —
# the same tables at any thread count, which is the point of pinning them.

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j "${JOBS}" \
  --target fig3a_gather_root fig4a_bcast_root chaos_sweep >/dev/null

"${BUILD_DIR}/bench/fig3a_gather_root" --threads 8 \
  --csv tests/golden/fig3a.csv >/dev/null
echo "regenerated tests/golden/fig3a.csv"

"${BUILD_DIR}/bench/fig4a_bcast_root" --threads 8 \
  --csv tests/golden/fig4a.csv >/dev/null
echo "regenerated tests/golden/fig4a.csv"

"${BUILD_DIR}/bench/chaos_sweep" --threads 8 \
  --csv tests/golden/chaos_sweep.csv >/dev/null
echo "regenerated tests/golden/chaos_sweep.csv"

git --no-pager diff --stat -- tests/golden || true
