#!/usr/bin/env bash
# CI perf-regression gate: build Release, run the bench/perf_snapshot
# workload basket, and fail on any drift in the deterministic counters.
#
#   ci/perf_gate.sh                    # validate + gate against BENCH_3.json
#   UPDATE_BASELINE=1 ci/perf_gate.sh  # re-pin BENCH_3.json (then review+commit)
#   JOBS=8 BUILD_DIR=build-ci-perf ci/perf_gate.sh
#
# What is gated and what is not:
#   * counters   deterministic event totals (messages, plans, cells) —
#                exact-match against the committed BENCH_<pr>.json, and
#                byte-identical between --threads 1 and --threads 4
#   * timing     the per-workload cold/warm monotonic-clock stats —
#                ratio-gated by ci/check_timing.py: warm-cache sweeps must
#                stay >= 25% faster than cold, and warm medians must stay
#                within PERF_GATE_RATIO (default 1.5x) of the baseline's
#   * the rest   wall_seconds, gauges, histograms — machine-dependent,
#                reported in the snapshot but never compared
#
# The gate emits the fresh snapshot at ${SNAPSHOT_OUT} (default
# ${BUILD_DIR}/BENCH_3.new.json — inside the build tree, so a local run
# never drops files at the repo root) and CI uploads it as an artifact next
# to the baseline.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
BUILD_DIR="${BUILD_DIR:-build-ci-perf}"
BASELINE="${BASELINE:-BENCH_3.json}"
SNAPSHOT_OUT="${SNAPSHOT_OUT:-${BUILD_DIR}/BENCH_3.new.json}"

echo "== configure ${BUILD_DIR} (Release)"
cmake -B "${BUILD_DIR}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
echo "== build perf_snapshot"
cmake --build "${BUILD_DIR}" -j "${JOBS}" --target perf_snapshot >/dev/null

tmp="$(mktemp -d)"
trap 'rm -rf "${tmp}"' EXIT

echo "== run workload basket (--threads 1)"
"${BUILD_DIR}/bench/perf_snapshot" --threads 1 --out "${SNAPSHOT_OUT}"
echo "== run workload basket (--threads 4)"
"${BUILD_DIR}/bench/perf_snapshot" --threads 4 --out "${tmp}/t4.json"

echo "== schema validation"
python3 ci/validate_bench.py "${SNAPSHOT_OUT}" ci/bench_schema.json
python3 ci/validate_bench.py "${tmp}/t4.json" ci/bench_schema.json

echo "== thread-count determinism (counters at --threads 1 vs 4)"
python3 ci/diff_bench_counters.py "${SNAPSHOT_OUT}" "${tmp}/t4.json"

echo "== warm-cache speedup (plan/scenario caches)"
python3 ci/check_timing.py "${SNAPSHOT_OUT}"

# Profiling artifact: one traced pass of the basket, exported as Chrome
# trace JSON (load in Perfetto) and validated. Its counters are not gated —
# the relperf leg separately proves tracing leaves them byte-identical.
echo "== traced profiling run (artifact only)"
"${BUILD_DIR}/bench/perf_snapshot" --threads 4 --reps 1 \
  --out "${tmp}/traced_snapshot.json" \
  --trace-out "${BUILD_DIR}/BENCH_3.trace.json"
python3 ci/validate_trace.py "${BUILD_DIR}/BENCH_3.trace.json"

if [ "${UPDATE_BASELINE:-0}" = "1" ]; then
  mv "${SNAPSHOT_OUT}" "${BASELINE}"
  echo "baseline re-pinned: ${BASELINE} (review the diff and commit)"
  exit 0
fi

if [ ! -f "${BASELINE}" ]; then
  echo "missing baseline ${BASELINE}; run UPDATE_BASELINE=1 ci/perf_gate.sh" >&2
  exit 1
fi

echo "== counter drift vs committed ${BASELINE}"
python3 ci/diff_bench_counters.py "${BASELINE}" "${SNAPSHOT_OUT}"

echo "== timing non-regression vs committed ${BASELINE}"
python3 ci/check_timing.py "${SNAPSHOT_OUT}" "${BASELINE}"

echo "ci/perf_gate.sh: all green"
