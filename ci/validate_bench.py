#!/usr/bin/env python3
"""Validate a BENCH_*.json perf snapshot against ci/bench_schema.json.

Stdlib-only miniature JSON-Schema checker covering exactly the subset the
bench schema uses: type, const, minimum, required, properties,
additionalProperties (schema form), items, minItems. Unknown schema keywords
are an error so the schema cannot silently rot.

Usage: ci/validate_bench.py BENCH_3.json [schema.json]
"""

import json
import sys

KNOWN_KEYWORDS = {
    "type", "const", "minimum", "required", "properties",
    "additionalProperties", "items", "minItems",
}

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}


class SchemaError(Exception):
    pass


def check(value, schema, path):
    unknown = set(schema) - KNOWN_KEYWORDS
    if unknown:
        raise SchemaError(f"schema uses unsupported keywords {sorted(unknown)}")

    if "const" in schema:
        if value != schema["const"]:
            fail(path, f"expected {schema['const']!r}, got {value!r}")
        return

    if "type" in schema:
        expected = TYPES[schema["type"]]
        ok = isinstance(value, expected)
        if schema["type"] in ("number", "integer") and isinstance(value, bool):
            ok = False  # bool is an int subclass; never a valid number here
        if not ok:
            fail(path, f"expected {schema['type']}, got {type(value).__name__}")

    if "minimum" in schema and value < schema["minimum"]:
        fail(path, f"{value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                fail(path, f"missing required key {name!r}")
        properties = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for name, item in value.items():
            if name in properties:
                check(item, properties[name], f"{path}.{name}")
            elif isinstance(extra, dict):
                check(item, extra, f"{path}.{name}")
            elif extra is False:
                fail(path, f"unexpected key {name!r}")

    if isinstance(value, list):
        if len(value) < schema.get("minItems", 0):
            fail(path, f"{len(value)} items < minItems {schema['minItems']}")
        if "items" in schema:
            for i, item in enumerate(value):
                check(item, schema["items"], f"{path}[{i}]")


def fail(path, message):
    raise SchemaError(f"{path}: {message}")


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    schema_path = argv[2] if len(argv) == 3 else "ci/bench_schema.json"
    with open(argv[1]) as f:
        document = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)
    try:
        check(document, schema, "$")
    except SchemaError as error:
        print(f"{argv[1]}: INVALID — {error}", file=sys.stderr)
        return 1
    names = [w["name"] for w in document["workloads"]]
    print(f"{argv[1]}: valid ({len(names)} workloads: {', '.join(names)})")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
