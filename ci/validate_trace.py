#!/usr/bin/env python3
"""Validate an exported Chrome trace-event JSON (obs/trace_export) against
ci/trace_schema.json plus the semantic invariants the exporter guarantees:

  * metadata (ph "M") thread_name events declare tids 0..T-1 with
    lexicographically sorted track names, before any span event;
  * span events are ph "X" complete events with numeric ts/dur >= 0, a cat of
    "virtual" or "wall", and args carrying a "kind" string plus an "id" equal
    to the event's position among span events;
  * a "parent" arg, when present, references another span's id (parents may
    serialise after their children — the canonical order sorts by track, and
    a parent often lives on a different track than its children);
  * every span's tid references a declared track.

The schema half reuses the same stdlib miniature JSON-Schema subset as
ci/validate_bench.py (type, const, minimum, required, properties,
additionalProperties, items, minItems).

Usage: ci/validate_trace.py trace.json [schema.json]
"""

import json
import os
import sys

KNOWN_KEYWORDS = {
    "type", "const", "minimum", "required", "properties",
    "additionalProperties", "items", "minItems",
}

TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "number": (int, float),
    "integer": int,
    "boolean": bool,
}

KINDS = {
    "phase", "superstep", "message_batch", "barrier", "request", "stage",
    "cell", "other",
}


class TraceError(Exception):
    pass


def check(value, schema, path):
    unknown = set(schema) - KNOWN_KEYWORDS
    if unknown:
        raise TraceError(f"schema uses unsupported keywords {sorted(unknown)}")

    if "const" in schema:
        if value != schema["const"]:
            fail(path, f"expected {schema['const']!r}, got {value!r}")
        return

    if "type" in schema:
        expected = TYPES[schema["type"]]
        ok = isinstance(value, expected)
        if schema["type"] in ("number", "integer") and isinstance(value, bool):
            ok = False  # bool is an int subclass; never a valid number here
        if not ok:
            fail(path, f"expected {schema['type']}, got {type(value).__name__}")

    if "minimum" in schema and value < schema["minimum"]:
        fail(path, f"{value} < minimum {schema['minimum']}")

    if isinstance(value, dict):
        for name in schema.get("required", ()):
            if name not in value:
                fail(path, f"missing required key {name!r}")
        properties = schema.get("properties", {})
        extra = schema.get("additionalProperties")
        for name, item in value.items():
            if name in properties:
                check(item, properties[name], f"{path}.{name}")
            elif isinstance(extra, dict):
                check(item, extra, f"{path}.{name}")
            elif extra is False:
                fail(path, f"unexpected key {name!r}")

    if isinstance(value, list):
        if len(value) < schema.get("minItems", 0):
            fail(path, f"{len(value)} items < minItems {schema['minItems']}")
        if "items" in schema:
            for i, item in enumerate(value):
                check(item, schema["items"], f"{path}[{i}]")


def fail(path, message):
    raise TraceError(f"{path}: {message}")


def check_semantics(document):
    events = document["traceEvents"]
    total_spans = sum(1 for event in events if event.get("ph") == "X")
    tracks = []
    span_seen = False
    span_count = 0
    cats = {"virtual": 0, "wall": 0}

    for i, event in enumerate(events):
        path = f"$.traceEvents[{i}]"
        ph = event["ph"]
        if ph == "M":
            if event["name"] == "process_name":
                continue
            if event["name"] != "thread_name":
                fail(path, f"unexpected metadata event {event['name']!r}")
            if span_seen:
                fail(path, "thread_name metadata after span events")
            if event["tid"] != len(tracks):
                fail(path, f"tid {event['tid']} != declaration order "
                           f"{len(tracks)}")
            tracks.append(event["args"]["name"])
        elif ph == "X":
            span_seen = True
            args = event["args"]
            if not isinstance(event["ts"], (int, float)) or \
               not isinstance(event["dur"], (int, float)):
                fail(path, "ts/dur must be numbers")
            if event["dur"] < 0:
                fail(path, f"negative dur {event['dur']}")
            if event.get("cat") not in cats:
                fail(path, f"cat must be virtual|wall, got {event.get('cat')!r}")
            cats[event["cat"]] += 1
            if args.get("kind") not in KINDS:
                fail(path, f"unknown span kind {args.get('kind')!r}")
            if args.get("id") != span_count:
                fail(path, f"id {args.get('id')} != position {span_count}")
            if "parent" in args:
                parent = args["parent"]
                if not isinstance(parent, int) or isinstance(parent, bool) or \
                   not 0 <= parent < total_spans or parent == span_count:
                    fail(path, f"parent {parent!r} does not reference "
                               f"another span")
            if not 0 <= event["tid"] < len(tracks):
                fail(path, f"tid {event['tid']} references no declared track")
            span_count += 1
        else:
            fail(path, f"unexpected ph {ph!r}")

    if tracks != sorted(tracks):
        fail("$.traceEvents", "track names are not sorted")
    if len(set(tracks)) != len(tracks):
        fail("$.traceEvents", "duplicate track names")
    return span_count, len(tracks), cats


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    default_schema = os.path.join(os.path.dirname(os.path.abspath(argv[0])),
                                  "trace_schema.json")
    schema_path = argv[2] if len(argv) == 3 else default_schema
    with open(argv[1]) as f:
        document = json.load(f)
    with open(schema_path) as f:
        schema = json.load(f)
    try:
        check(document, schema, "$")
        spans, tracks, cats = check_semantics(document)
    except TraceError as error:
        print(f"{argv[1]}: INVALID — {error}", file=sys.stderr)
        return 1
    print(f"{argv[1]}: valid ({spans} spans on {tracks} tracks, "
          f"{cats['virtual']} virtual / {cats['wall']} wall)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
