#!/usr/bin/env python3
"""Gate the wall-time half of a BENCH_*.json perf snapshot.

Two checks, both over the per-workload "timing" objects (schema v2):

1. Warm-cache speedup (always, needs reps >= 2): for the cache-heavy sweep
   workloads the warm-cache median must be at least 25% faster than the cold
   pass (warm_median <= 0.75 * cold). This is the scenario-throughput layer's
   acceptance criterion; it is machine-independent because both numbers come
   from the same process on the same machine.

2. Non-regression vs a baseline snapshot (when one is given): each
   workload's warm_median must stay within PERF_GATE_RATIO (default 1.5x) of
   the baseline's. The ratio is deliberately generous — CI machines vary —
   while counters are exact-matched separately by diff_bench_counters.py.
   A baseline without timing fields (schema v1) skips this check.

Usage: ci/check_timing.py CANDIDATE.json [BASELINE.json]
Exit 0 when every check passes, 1 otherwise.
"""

import json
import os
import sys

# Workloads whose warm reps run almost entirely from the plan/scenario
# caches; the others (micro loops, resilience) are legitimately cache-light.
CACHED_WORKLOADS = ("fig3a", "fig4a", "chaos")
WARM_OVER_COLD_MAX = 0.75
DEFAULT_RATIO = 1.5


def timings_by_workload(path):
    with open(path) as f:
        document = json.load(f)
    return {w["name"]: w.get("timing") for w in document["workloads"]}


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    candidate = timings_by_workload(argv[1])
    failed = False

    for name in CACHED_WORKLOADS:
        timing = candidate.get(name)
        if timing is None:
            print(f"{name}: no timing object in {argv[1]}")
            failed = True
            continue
        if timing["reps"] < 2:
            print(f"{name}: reps={timing['reps']} < 2, warm-vs-cold skipped")
            continue
        cold, warm = timing["cold_seconds"], timing["warm_median_seconds"]
        bound = WARM_OVER_COLD_MAX * cold
        verdict = "ok" if warm <= bound else "FAIL"
        print(f"{name}: warm {warm:.6f}s vs cold {cold:.6f}s "
              f"(need <= {bound:.6f}s) {verdict}")
        if warm > bound:
            failed = True

    if len(argv) == 3:
        baseline = timings_by_workload(argv[2])
        ratio = float(os.environ.get("PERF_GATE_RATIO", DEFAULT_RATIO))
        if any(t is None for t in baseline.values()):
            print(f"baseline {argv[2]} predates timing fields; "
                  "non-regression check skipped")
        else:
            for name in sorted(candidate):
                if candidate[name] is None or name not in baseline:
                    continue
                old = baseline[name]["warm_median_seconds"]
                new = candidate[name]["warm_median_seconds"]
                bound = ratio * old
                verdict = "ok" if new <= bound else "FAIL"
                print(f"{name}: warm {new:.6f}s vs baseline {old:.6f}s "
                      f"(need <= {ratio:.2f}x = {bound:.6f}s) {verdict}")
                if new > bound:
                    failed = True

    if failed:
        print(f"timing gate failed for {argv[1]}", file=sys.stderr)
        return 1
    print(f"timing gate passed for {argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
