#!/usr/bin/env python3
"""Gate the wall-time half of a BENCH_*.json perf snapshot.

Three checks over the snapshot (schema v3):

0. Build-configuration guard: a snapshot whose "meta" block reports a
   non-Release build or an active sanitizer is refused outright — its
   timings are meaningless and must never be gated (or worse, pinned as a
   baseline). Snapshots without a meta block (schema <= 2) predate the
   stamp and are accepted as legacy.

1. Warm-cache speedup (always, needs reps >= 2): for the cache-heavy sweep
   workloads the warm-cache median must be at least 25% faster than the cold
   pass (warm_median <= 0.75 * cold). This is the scenario-throughput layer's
   acceptance criterion; it is machine-independent because both numbers come
   from the same process on the same machine.

2. Non-regression vs a baseline snapshot (when one is given): each
   workload's warm_median must stay within PERF_GATE_RATIO (default 1.5x) of
   the baseline's. The ratio is deliberately generous — CI machines vary —
   while counters are exact-matched separately by diff_bench_counters.py.
   A baseline without timing fields (schema v1) skips this check.

Usage: ci/check_timing.py CANDIDATE.json [BASELINE.json]
Exit 0 when every check passes, 1 otherwise.
"""

import json
import os
import sys

# Workloads whose warm reps run almost entirely from the plan/scenario
# caches; the others (micro loops, resilience) are legitimately cache-light.
# "service" qualifies: warm load runs replan and re-simulate nothing.
CACHED_WORKLOADS = ("fig3a", "fig4a", "chaos", "service")
WARM_OVER_COLD_MAX = 0.75
DEFAULT_RATIO = 1.5


def load(path):
    with open(path) as f:
        return json.load(f)


def timings_by_workload(document):
    return {w["name"]: w.get("timing") for w in document["workloads"]}


def refuse_ungateable(path, document):
    """Returns True when the snapshot's build configuration disqualifies its
    timings. Missing meta (schema <= 2) is tolerated as legacy."""
    meta = document.get("meta")
    if meta is None:
        print(f"{path}: no meta block (schema <= 2 snapshot), "
              "build-configuration guard skipped")
        return False
    build_type = meta.get("build_type", "unknown")
    sanitizer = meta.get("sanitizer", "")
    if build_type != "Release" or sanitizer != "":
        print(f"{path}: refusing to gate timings from build_type="
              f"'{build_type}' sanitizer='{sanitizer}' "
              "(need a plain Release build)", file=sys.stderr)
        return True
    return False


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__.strip(), file=sys.stderr)
        return 2
    candidate_doc = load(argv[1])
    if refuse_ungateable(argv[1], candidate_doc):
        return 1
    candidate = timings_by_workload(candidate_doc)
    failed = False

    for name in CACHED_WORKLOADS:
        timing = candidate.get(name)
        if timing is None:
            print(f"{name}: no timing object in {argv[1]}")
            failed = True
            continue
        if timing["reps"] < 2:
            print(f"{name}: reps={timing['reps']} < 2, warm-vs-cold skipped")
            continue
        cold, warm = timing["cold_seconds"], timing["warm_median_seconds"]
        bound = WARM_OVER_COLD_MAX * cold
        verdict = "ok" if warm <= bound else "FAIL"
        print(f"{name}: warm {warm:.6f}s vs cold {cold:.6f}s "
              f"(need <= {bound:.6f}s) {verdict}")
        if warm > bound:
            failed = True

    if len(argv) == 3:
        baseline_doc = load(argv[2])
        if refuse_ungateable(argv[2], baseline_doc):
            return 1
        baseline = timings_by_workload(baseline_doc)
        ratio = float(os.environ.get("PERF_GATE_RATIO", DEFAULT_RATIO))
        if any(t is None for t in baseline.values()):
            print(f"baseline {argv[2]} predates timing fields; "
                  "non-regression check skipped")
        else:
            for name in sorted(candidate):
                if candidate[name] is None or name not in baseline:
                    continue
                old = baseline[name]["warm_median_seconds"]
                new = candidate[name]["warm_median_seconds"]
                bound = ratio * old
                verdict = "ok" if new <= bound else "FAIL"
                print(f"{name}: warm {new:.6f}s vs baseline {old:.6f}s "
                      f"(need <= {ratio:.2f}x = {bound:.6f}s) {verdict}")
                if new > bound:
                    failed = True

    if failed:
        print(f"timing gate failed for {argv[1]}", file=sys.stderr)
        return 1
    print(f"timing gate passed for {argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
