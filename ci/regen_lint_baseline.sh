#!/usr/bin/env bash
# Re-pin the clang-tidy suppression baseline, analogous to regen_goldens.sh:
# configure a compile-commands build, run the full check set, and rewrite
# tools/hbsp_lint/clang_tidy_baseline.txt with every current fingerprint
# (then review the diff and commit).
#
#   ci/regen_lint_baseline.sh
#   BUILD_DIR=build-ci-lint JOBS=8 ci/regen_lint_baseline.sh
#   CLANG_TIDY=clang-tidy-18 ci/regen_lint_baseline.sh

set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-ci-lint}"
JOBS="${JOBS:-$(nproc)}"

cmake -B "${BUILD_DIR}" -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null

python3 tools/hbsp_lint/run_clang_tidy.py \
  --build-dir "${BUILD_DIR}" --jobs "${JOBS}" --update-baseline

git --no-pager diff --stat -- tools/hbsp_lint/clang_tidy_baseline.txt || true
