#!/usr/bin/env bash
# CI gate: plain build + full ctest, then sanitizer builds + the tier1 suite
# to guard the thread pool, the parallel sweep engine and the metrics
# registry.
#
#   ci/check.sh                 # everything: plain + TSan + ASan/UBSan
#   CONFIG=plain ci/check.sh    # one leg only (the GitHub Actions matrix
#   CONFIG=tsan  ci/check.sh    #   runs each leg as its own job)
#   CONFIG=asan  ci/check.sh
#   JOBS=8 ci/check.sh          # parallel build/test width
#
# Each configuration builds into its own tree (build-ci, build-ci-tsan,
# build-ci-asan) so the developer's ./build is never touched.
#
# Test tiers: every test is labelled tier1 or slow (tests/CMakeLists.txt).
# The plain leg runs the full suite plus the end-to-end determinism and
# golden-drift checks; the sanitizer legs run `ctest -L tier1` — instrumented
# builds are ~10x slower and their value is concurrency coverage, which the
# tier1 set (thread pool, sweep engine, obs registry) already provides.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
CONFIG="${CONFIG:-all}"

run_suite() {
  local dir="$1"
  local label="$2"
  shift 2
  echo "== configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "== build ${dir}"
  cmake --build "${dir}" -j "${JOBS}" >/dev/null
  echo "== ctest ${dir}${label:+ (-L ${label})}"
  ctest --test-dir "${dir}" -j "${JOBS}" --output-on-failure \
    ${label:+-L "${label}"}
}

plain_leg() {
  run_suite build-ci "" -DHBSPK_WERROR=ON

  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN

  # The headline determinism claim, end to end on the real binary: the
  # Fig 3(a) CSV must be byte-identical at 1 and 4 threads.
  local fig3a=build-ci/bench/fig3a_gather_root
  "${fig3a}" --threads 1 --csv "${tmp}/t1.csv" >/dev/null
  "${fig3a}" --threads 4 --csv "${tmp}/t4.csv" >/dev/null
  cmp "${tmp}/t1.csv" "${tmp}/t4.csv"
  echo "fig3a CSV byte-identical at 1 and 4 threads"

  # Same claim for the fault-injection path: the chaos sweep draws every
  # fault plan from (master seed, grid position), so its CSV must also be
  # byte-identical at any thread count.
  local chaos=build-ci/bench/chaos_sweep
  "${chaos}" --threads 1 --csv "${tmp}/c1.csv" >/dev/null
  "${chaos}" --threads 4 --csv "${tmp}/c4.csv" >/dev/null
  cmp "${tmp}/c1.csv" "${tmp}/c4.csv"
  echo "chaos_sweep CSV byte-identical at 1 and 4 threads"

  # Golden drift: regenerate every pinned CSV into a temp dir and diff
  # against the committed files. A behaviour change that forgot to run
  # ci/regen_goldens.sh (and review the new tables) fails here.
  BUILD_DIR=build-ci OUT_DIR="${tmp}/golden" JOBS="${JOBS}" \
    ci/regen_goldens.sh >/dev/null
  local golden drift=0
  for golden in tests/golden/*.csv; do
    if ! diff -u "${golden}" "${tmp}/golden/$(basename "${golden}")"; then
      drift=1
    fi
  done
  if [ "${drift}" -ne 0 ]; then
    echo "golden drift: regenerate with ci/regen_goldens.sh and commit" >&2
    return 1
  fi
  echo "goldens match regenerated tables"
}

case "${CONFIG}" in
  all)
    plain_leg
    run_suite build-ci-tsan tier1 -DHBSP_SANITIZE=thread
    run_suite build-ci-asan tier1 -DHBSP_SANITIZE=address
    ;;
  plain) plain_leg ;;
  tsan)  run_suite build-ci-tsan tier1 -DHBSP_SANITIZE=thread ;;
  asan)  run_suite build-ci-asan tier1 -DHBSP_SANITIZE=address ;;
  *) echo "unknown CONFIG '${CONFIG}' (want all|plain|tsan|asan)" >&2; exit 2 ;;
esac

echo "ci/check.sh: ${CONFIG} green"
