#!/usr/bin/env bash
# CI gate: static analysis (hbsp-lint + clang-tidy), plain build + full
# ctest, then sanitizer builds + the tier1 suite to guard the thread pool,
# the parallel sweep engine and the metrics registry.
#
#   ci/check.sh                 # everything: lint + plain + all sanitizers
#   CONFIG=plain ci/check.sh    # one leg only (the GitHub Actions matrix
#   CONFIG=tsan  ci/check.sh    #   runs each leg as its own job)
#   CONFIG=asan  ci/check.sh
#   CONFIG=ubsan ci/check.sh    # standalone strict UBSan (no recover)
#   CONFIG=lint  ci/check.sh    # hbsp-lint + clang-tidy-vs-baseline, no tests
#   CONFIG=svc   ci/check.sh    # serving-layer smoke: svc tests + load_gen
#                               #   tally shard/thread-invariance
#   CONFIG=relperf ci/check.sh  # Release: perf_snapshot twice (process-level
#                               #   counter determinism) + warm-cache timing
#   JOBS=8 ci/check.sh          # parallel build/test width
#
# Each configuration builds into its own tree (build-ci, build-ci-tsan,
# build-ci-asan, build-ci-ubsan, build-ci-lint) so the developer's ./build
# is never touched.
#
# Test tiers: every test is labelled tier1 or slow (tests/CMakeLists.txt).
# The plain leg runs the full suite plus the end-to-end determinism and
# golden-drift checks; the sanitizer legs run `ctest -L tier1` — instrumented
# builds are ~10x slower and their value is concurrency coverage, which the
# tier1 set (thread pool, sweep engine, obs registry) already provides.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
CONFIG="${CONFIG:-all}"

# Static analysis: the hbsp-lint layering DAG + determinism rules always
# run (stdlib python3 only); the clang-tidy differential gate runs when a
# clang-tidy binary is available (CI installs one; run_clang_tidy.py skips
# cleanly otherwise). JSON findings land in build-ci-lint/lint-report/ so CI
# can upload them as an artifact.
lint_leg() {
  local report_dir=build-ci-lint/lint-report
  mkdir -p "${report_dir}"

  echo "== hbsp-lint (layering DAG + determinism zones)"
  python3 tools/hbsp_lint/hbsp_lint.py --json "${report_dir}/hbsp_lint.json"

  echo "== clang-tidy vs committed baseline"
  cmake -B build-ci-lint -S . -DCMAKE_EXPORT_COMPILE_COMMANDS=ON >/dev/null
  python3 tools/hbsp_lint/run_clang_tidy.py \
    --build-dir build-ci-lint --jobs "${JOBS}" \
    --json "${report_dir}/clang_tidy.json"
}

run_suite() {
  local dir="$1"
  local label="$2"
  shift 2
  echo "== configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "== build ${dir}"
  cmake --build "${dir}" -j "${JOBS}" >/dev/null
  echo "== ctest ${dir}${label:+ (-L ${label})}"
  ctest --test-dir "${dir}" -j "${JOBS}" --output-on-failure \
    ${label:+-L "${label}"}
}

plain_leg() {
  run_suite build-ci "" -DHBSPK_WERROR=ON

  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN

  # The headline determinism claim, end to end on the real binary: the
  # Fig 3(a) CSV must be byte-identical at 1 and 4 threads.
  local fig3a=build-ci/bench/fig3a_gather_root
  "${fig3a}" --threads 1 --csv "${tmp}/t1.csv" >/dev/null
  "${fig3a}" --threads 4 --csv "${tmp}/t4.csv" >/dev/null
  cmp "${tmp}/t1.csv" "${tmp}/t4.csv"
  echo "fig3a CSV byte-identical at 1 and 4 threads"

  # Same claim for the fault-injection path: the chaos sweep draws every
  # fault plan from (master seed, grid position), so its CSV must also be
  # byte-identical at any thread count.
  local chaos=build-ci/bench/chaos_sweep
  "${chaos}" --threads 1 --csv "${tmp}/c1.csv" >/dev/null
  "${chaos}" --threads 4 --csv "${tmp}/c4.csv" >/dev/null
  cmp "${tmp}/c1.csv" "${tmp}/c4.csv"
  echo "chaos_sweep CSV byte-identical at 1 and 4 threads"

  # The same claim for the span-tracing layer: the exported virtual-time
  # trace sorts spans by content (never by arrival thread), so the JSON must
  # be byte-identical at any worker count — and schema/semantically valid.
  "${fig3a}" --threads 1 --grid small --trace-out "${tmp}/trace1.json" \
    >/dev/null
  "${fig3a}" --threads 4 --grid small --trace-out "${tmp}/trace4.json" \
    >/dev/null
  cmp "${tmp}/trace1.json" "${tmp}/trace4.json"
  python3 ci/validate_trace.py "${tmp}/trace1.json"
  echo "fig3a virtual trace byte-identical at 1 and 4 threads"

  # Golden drift: regenerate every pinned CSV and trace JSON into a temp dir
  # and diff against the committed files. A behaviour change that forgot to
  # run ci/regen_goldens.sh (and review the new tables) fails here.
  BUILD_DIR=build-ci OUT_DIR="${tmp}/golden" JOBS="${JOBS}" \
    ci/regen_goldens.sh >/dev/null
  local golden drift=0
  for golden in tests/golden/*.csv tests/golden/*_trace.json; do
    if ! diff -u "${golden}" "${tmp}/golden/$(basename "${golden}")"; then
      drift=1
    fi
  done
  if [ "${drift}" -ne 0 ]; then
    echo "golden drift: regenerate with ci/regen_goldens.sh and commit" >&2
    return 1
  fi
  echo "goldens match regenerated tables and traces"
}

# Serving-layer smoke leg: builds the svc-labelled tests plus the load
# generator, runs them, then drives one fixed-seed load_gen schedule at
# (1 shard, 1 thread) and (8 shards, 4 threads) and requires the
# deterministic tally blocks byte-identical — the ISSUE's shard-invariance
# acceptance criterion, end to end on the real binary. The sanitizer legs
# additionally run the same tests via their tier1 label.
svc_leg() {
  run_suite build-ci-svc svc -DHBSPK_WERROR=ON

  local tmp
  tmp="$(mktemp -d)"
  trap 'rm -rf "${tmp}"' RETURN

  echo "== build load_gen"
  cmake --build build-ci-svc -j "${JOBS}" --target load_gen >/dev/null

  local gen=build-ci-svc/bench/load_gen
  "${gen}" --qps 200 --duration 0.5 --expired 0.1 --capacity 8 \
    --shards 1 --threads 1 --tally "${tmp}/s1.tally" >/dev/null
  "${gen}" --qps 200 --duration 0.5 --expired 0.1 --capacity 8 \
    --shards 8 --threads 4 --tally "${tmp}/s8.tally" >/dev/null
  cmp "${tmp}/s1.tally" "${tmp}/s8.tally"
  echo "load_gen tally byte-identical at (1 shard, 1 thread) vs (8 shards, 4 threads)"
}

# Release-mode scenario-throughput leg: runs the perf_snapshot basket twice
# in fresh processes and requires byte-identical counters (each run is
# cache-cold at rep 0, so totals must agree run-to-run, not just
# thread-to-thread), then gates the warm-cache speedup. Timing snapshots
# land in build-ci-relperf/ for CI to upload as artifacts.
relperf_leg() {
  local dir=build-ci-relperf
  echo "== configure ${dir} (Release)"
  cmake -B "${dir}" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
  echo "== build perf_snapshot"
  cmake --build "${dir}" -j "${JOBS}" --target perf_snapshot >/dev/null

  echo "== perf_snapshot run A"
  "${dir}/bench/perf_snapshot" --threads 4 --out "${dir}/BENCH_relperf_a.json"
  # Run B records spans (wall scopes, request lifecycles, every sim span):
  # diffing its counters against the untraced run A proves tracing enabled
  # perturbs no counter, not merely tracing compiled-in-but-off.
  echo "== perf_snapshot run B (traced)"
  "${dir}/bench/perf_snapshot" --threads 4 --out "${dir}/BENCH_relperf_b.json" \
    --trace-out "${dir}/BENCH_relperf_trace.json"

  echo "== schema validation"
  python3 ci/validate_bench.py "${dir}/BENCH_relperf_a.json" ci/bench_schema.json
  python3 ci/validate_trace.py "${dir}/BENCH_relperf_trace.json"

  echo "== run-to-run counter determinism (untraced A vs traced B)"
  python3 ci/diff_bench_counters.py \
    "${dir}/BENCH_relperf_a.json" "${dir}/BENCH_relperf_b.json"

  echo "== warm-cache speedup"
  python3 ci/check_timing.py "${dir}/BENCH_relperf_a.json"
}

case "${CONFIG}" in
  all)
    lint_leg
    plain_leg
    svc_leg
    run_suite build-ci-tsan tier1 -DHBSP_SANITIZE=thread
    run_suite build-ci-asan tier1 -DHBSP_SANITIZE=address
    run_suite build-ci-ubsan tier1 -DHBSP_SANITIZE=undefined
    relperf_leg
    ;;
  lint)  lint_leg ;;
  plain) plain_leg ;;
  svc)   svc_leg ;;
  tsan)  run_suite build-ci-tsan tier1 -DHBSP_SANITIZE=thread ;;
  asan)  run_suite build-ci-asan tier1 -DHBSP_SANITIZE=address ;;
  ubsan) run_suite build-ci-ubsan tier1 -DHBSP_SANITIZE=undefined ;;
  relperf) relperf_leg ;;
  *)
    echo "unknown CONFIG '${CONFIG}' (want all|lint|plain|svc|tsan|asan|ubsan|relperf)" >&2
    exit 2
    ;;
esac

echo "ci/check.sh: ${CONFIG} green"
