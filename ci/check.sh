#!/usr/bin/env bash
# CI gate: plain build + full ctest, then sanitizer builds + ctest to guard
# the thread pool and the parallel sweep engine.
#
#   ci/check.sh                 # plain + TSan + ASan/UBSan, full suite each
#   SANITIZERS=thread ci/check.sh     # restrict the sanitizer passes
#   JOBS=8 ci/check.sh                # parallel build/test width
#
# Each configuration builds into its own tree (build-ci, build-ci-tsan,
# build-ci-asan) so the developer's ./build is never touched.

set -euo pipefail
cd "$(dirname "$0")/.."

JOBS="${JOBS:-$(nproc)}"
SANITIZERS="${SANITIZERS:-thread address}"

run_suite() {
  local dir="$1"
  shift
  echo "== configure ${dir} ($*)"
  cmake -B "${dir}" -S . "$@" >/dev/null
  echo "== build ${dir}"
  cmake --build "${dir}" -j "${JOBS}" >/dev/null
  echo "== ctest ${dir}"
  ctest --test-dir "${dir}" -j "${JOBS}" --output-on-failure
}

run_suite build-ci -DHBSPK_WERROR=ON

for sanitizer in ${SANITIZERS}; do
  case "${sanitizer}" in
    thread)  run_suite build-ci-tsan -DHBSP_SANITIZE=thread ;;
    address) run_suite build-ci-asan -DHBSP_SANITIZE=address ;;
    *) echo "unknown sanitizer '${sanitizer}'" >&2; exit 2 ;;
  esac
done

# The headline determinism claim, end to end on the real binary: the Fig 3(a)
# CSV must be byte-identical at 1 and 4 threads.
fig3a=build-ci/bench/fig3a_gather_root
tmp="$(mktemp -d)"
trap 'rm -rf "${tmp}"' EXIT
"${fig3a}" --threads 1 --csv "${tmp}/t1.csv" >/dev/null
"${fig3a}" --threads 4 --csv "${tmp}/t4.csv" >/dev/null
cmp "${tmp}/t1.csv" "${tmp}/t4.csv"
echo "fig3a CSV byte-identical at 1 and 4 threads"

# Same claim for the fault-injection path: the chaos sweep draws every fault
# plan from (master seed, grid position), so its CSV must also be
# byte-identical at any thread count.
chaos=build-ci/bench/chaos_sweep
"${chaos}" --threads 1 --csv "${tmp}/c1.csv" >/dev/null
"${chaos}" --threads 4 --csv "${tmp}/c4.csv" >/dev/null
cmp "${tmp}/c1.csv" "${tmp}/c4.csv"
echo "chaos_sweep CSV byte-identical at 1 and 4 threads"

echo "ci/check.sh: all green"
