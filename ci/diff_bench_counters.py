#!/usr/bin/env python3
"""Compare the deterministic counters of two BENCH_*.json snapshots.

The perf gate's drift check: per workload, the counter maps must match
*exactly* (names and values). Wall-clock, gauges and histograms are
machine-dependent and are deliberately ignored — timings are reported, never
gated.

Usage: ci/diff_bench_counters.py BASELINE.json CANDIDATE.json
Exit 0 when every workload's counters match, 1 with a per-key diff otherwise.
"""

import json
import sys


def counters_by_workload(path):
    with open(path) as f:
        document = json.load(f)
    return {w["name"]: w["metrics"]["counters"] for w in document["workloads"]}


def main(argv):
    if len(argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2
    baseline = counters_by_workload(argv[1])
    candidate = counters_by_workload(argv[2])

    drift = False
    for name in sorted(set(baseline) | set(candidate)):
        if name not in baseline:
            print(f"workload {name!r}: only in {argv[2]}")
            drift = True
            continue
        if name not in candidate:
            print(f"workload {name!r}: only in {argv[1]}")
            drift = True
            continue
        a, b = baseline[name], candidate[name]
        if a == b:
            continue
        drift = True
        print(f"workload {name!r}: counter drift")
        for key in sorted(set(a) | set(b)):
            if a.get(key) != b.get(key):
                print(f"  {key}: {a.get(key)} -> {b.get(key)}")

    if drift:
        print(f"counter drift between {argv[1]} and {argv[2]}", file=sys.stderr)
        return 1
    print(f"counters identical across {len(baseline)} workloads")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
