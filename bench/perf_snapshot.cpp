// Perf snapshot driver: runs a fixed workload basket and emits
// BENCH_<pr>.json — the machine-readable performance record the CI perf
// gate (ci/perf_gate.sh) validates and diffs across PRs.
//
// The basket exercises every instrumented layer:
//   fig3a / fig4a    the §5 root-placement sweeps (sim + planners + sweep)
//   chaos            the fault-rate × loss grid (faults + retry transport)
//   resilience       one degraded-mode re-planning run (advisor + replans)
//   micro_sim        a BM-style loop re-running one gather schedule
//   micro_planner    a BM-style loop re-planning gather/broadcast
//   micro_advisor    a BM-style loop of full advise() calls
//   service          a seeded load run against the svc advisory service
//                    (coalescing, admission control, deadline shedding)
//
// Each workload runs --reps times (default 5) with the global plan and
// scenario caches cleared once up front: repetition 0 is the cold pass,
// repetitions 1.. run against warm caches. Every repetition resets the
// metrics registry first; the snapshot and wall_seconds in the JSON are the
// cold pass's (byte-identical to a standalone run), and the "timing" object
// carries cold vs median/min/max warm monotonic-clock seconds — the wall-time
// half of the perf gate (ci/check_timing.py).
//
// Counters are deterministic totals (byte-identical at any --threads);
// gauges, histograms and timings carry the wall-clock/scheduling side.
// Counters are exact-matched by the gate, timings are ratio-gated.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "collectives/advisor.hpp"
#include "collectives/plan_cache.hpp"
#include "collectives/planners.hpp"
#include "collectives/resilience.hpp"
#include "core/topology.hpp"
#include "experiments/chaos.hpp"
#include "experiments/figures.hpp"
#include "experiments/scenario_cache.hpp"
#include "obs/export.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "sim/cluster_sim.hpp"
#include "obs/metrics.hpp"
#include "svc/load_harness.hpp"
#include "util/cli.hpp"
#include "util/units.hpp"

// Resolved build configuration, stamped into the snapshot's "meta" block by
// bench/CMakeLists.txt. check_timing.py refuses to gate timings unless the
// block says Release with no sanitizer.
#ifndef HBSPK_BUILD_TYPE
#define HBSPK_BUILD_TYPE "unknown"
#endif
#ifndef HBSPK_SANITIZE
#define HBSPK_SANITIZE ""
#endif

namespace {

using namespace hbsp;

struct TimingStats {
  std::int64_t reps = 1;
  double cold_seconds = 0.0;         ///< repetition 0, cache-cold
  double warm_median_seconds = 0.0;  ///< median of repetitions 1..reps-1
  double warm_min_seconds = 0.0;
  double warm_max_seconds = 0.0;
};

struct WorkloadResult {
  std::string name;
  double wall_seconds = 0.0;  ///< == timing.cold_seconds (back-compat field)
  TimingStats timing;
  obs::MetricsSnapshot snapshot;  ///< cold repetition's metrics
};

WorkloadResult run_workload(const std::string& name, std::int64_t reps,
                            const std::function<void()>& body) {
  auto& registry = obs::Registry::global();
  // Cold start: both process-wide caches empty, exactly like a fresh
  // process. Repetitions after the first then measure the warm path.
  coll::PlanCache::global().clear();
  exp::ScenarioCache::global().clear();

  WorkloadResult result;
  result.name = name;
  // With --trace-out the recorder is live: every span this workload records
  // (wall rep spans here, virtual sim spans below) lands under its name.
  const obs::TraceContext trace_context{name};
  std::vector<double> warm;
  for (std::int64_t rep = 0; rep < reps; ++rep) {
    registry.reset();
    const auto start = std::chrono::steady_clock::now();
    {
      const obs::WallScope rep_span{"bench/" + name, name,
                                    obs::SpanKind::kOther, {{"rep", rep}}};
      body();
    }
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    if (rep == 0) {
      result.wall_seconds = wall;
      result.timing.cold_seconds = wall;
      result.snapshot = registry.snapshot();
    } else {
      warm.push_back(wall);
    }
  }
  // With --reps 1 there is no warm pass; report the cold time so the fields
  // stay populated (the gate's warm-vs-cold check needs reps >= 2 anyway).
  if (warm.empty()) warm.push_back(result.timing.cold_seconds);
  std::sort(warm.begin(), warm.end());
  const std::size_t mid = warm.size() / 2;
  result.timing.reps = reps;
  result.timing.warm_median_seconds =
      warm.size() % 2 == 1 ? warm[mid] : 0.5 * (warm[mid - 1] + warm[mid]);
  result.timing.warm_min_seconds = warm.front();
  result.timing.warm_max_seconds = warm.back();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{argc, argv};
  cli.allow("out", "output JSON path (default BENCH_3.json)")
      .allow("pr", "PR number stamped into the snapshot (default 3)")
      .allow("threads", "sweep worker threads (default 1)")
      .allow("iters", "micro-loop iterations (default 40)")
      .allow("reps", "repetitions per workload: 1 cold + reps-1 warm (default 5)")
      .allow("table", "also print the per-workload metric tables")
      .allow("trace-out",
             "record spans and write the Chrome trace to this JSON path");
  cli.validate();

  const std::string out_path = cli.get("out", "BENCH_3.json");
  const auto pr = cli.get_int("pr", 3);
  const int threads = static_cast<int>(cli.get_positive_int("threads", 1));
  const auto iters = cli.get_positive_int("iters", 40);
  const auto reps = cli.get_positive_int("reps", 5);
  const bool print_tables = cli.get_bool("table", false);
  const bool tracing = cli.has("trace-out");
  if (tracing) {
    obs::TraceRecorder::global().clear();
    obs::TraceRecorder::global().set_enabled(true);
  }

  exp::SweepRunner runner{threads};
  std::vector<WorkloadResult> results;

  exp::FigureConfig fig;
  fig.threads = threads;
  results.push_back(run_workload(
      "fig3a", reps, [&] { (void)exp::gather_root_experiment(fig, runner); }));
  results.push_back(run_workload("fig4a", reps, [&] {
    (void)exp::broadcast_root_experiment(fig, runner);
  }));

  exp::ChaosConfig chaos;
  chaos.threads = threads;
  results.push_back(
      run_workload("chaos", reps, [&] { (void)exp::chaos_sweep(chaos, runner); }));

  results.push_back(run_workload("resilience", reps, [&] {
    // The chaos bench's demo scenario: drop the fastest machine mid-gather
    // with 2% message loss, forcing at least one advisor re-plan round.
    const MachineTree tree = make_paper_testbed(chaos.p, chaos.g, chaos.L);
    faults::FaultPlan plan;
    plan.drops.push_back({tree.coordinator_pid(tree.root()), 5e-3});
    plan.message_loss_probability = 0.02;
    plan.loss_seed = chaos.master_seed;
    (void)coll::run_with_replanning(tree, coll::CollectiveKind::kGather,
                                    util::ints_in_kbytes(chaos.kbytes),
                                    chaos.sim, plan);
  }));

  results.push_back(run_workload("micro_sim", reps, [&] {
    const MachineTree tree = make_paper_testbed(10);
    const CommSchedule schedule = coll::plan_gather(tree, 250000, {});
    sim::ClusterSim sim{tree, sim::SimParams{}};
    for (std::int64_t i = 0; i < iters; ++i) (void)sim.run(schedule);
  }));

  results.push_back(run_workload("micro_planner", reps, [&] {
    const MachineTree tree = make_paper_testbed(10);
    for (std::int64_t i = 0; i < iters; ++i) {
      (void)coll::plan_gather(tree, 250000, {});
      (void)coll::plan_broadcast(tree, 250000, {});
    }
  }));

  results.push_back(run_workload("micro_advisor", reps, [&] {
    const MachineTree tree = make_paper_testbed(8);
    for (std::int64_t i = 0; i < iters; ++i) {
      (void)coll::advise(tree, coll::CollectiveKind::kGather, 250000);
      (void)coll::advise(tree, coll::CollectiveKind::kBroadcast, 250000);
    }
  }));

  results.push_back(run_workload("service", reps, [&] {
    // One deterministic load run against the embedded advisory service:
    // 200 open-loop arrivals in 20-request windows against a 12-slot
    // admission queue, 1/8 of them carrying already-expired deadlines. The
    // svc.* counters (requests, coalesced, both shed families, completed)
    // are pure functions of the seed and mix, so the gate exact-matches
    // them across thread counts and runs like every other counter.
    svc::LoadConfig load;
    load.mode = svc::LoadMode::kOpenLoop;
    load.threads = threads;
    load.shards = 4;
    load.queue_capacity = 12;
    load.qps = 400.0;
    load.duration = 0.5;
    load.expired_fraction = 0.125;
    (void)svc::run_load(load);
  }));

  // Assemble BENCH_<pr>.json. Workload order is fixed by the basket above;
  // every map inside a snapshot is name-sorted, so two runs with equal
  // counters produce byte-identical "counters" objects.
  std::string json = "{\n";
  json += "  \"schema_version\": 3,\n";
  json += "  \"bench\": \"perf_snapshot\",\n";
  json += "  \"meta\": {\n";
  json += "    \"build_type\": \"" + obs::json_escape(HBSPK_BUILD_TYPE) +
          "\",\n";
  json += "    \"sanitizer\": \"" + obs::json_escape(HBSPK_SANITIZE) + "\"\n";
  json += "  },\n";
  json += "  \"pr\": " + std::to_string(pr) + ",\n";
  json += "  \"threads\": " + std::to_string(threads) + ",\n";
  json += "  \"iters\": " + std::to_string(iters) + ",\n";
  json += "  \"reps\": " + std::to_string(reps) + ",\n";
  json += "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    json += "    {\n";
    json += "      \"name\": \"" + obs::json_escape(r.name) + "\",\n";
    json += "      \"wall_seconds\": " + obs::json_number(r.wall_seconds) +
            ",\n";
    json += "      \"timing\": {\n";
    json += "        \"reps\": " + std::to_string(r.timing.reps) + ",\n";
    json += "        \"cold_seconds\": " +
            obs::json_number(r.timing.cold_seconds) + ",\n";
    json += "        \"warm_median_seconds\": " +
            obs::json_number(r.timing.warm_median_seconds) + ",\n";
    json += "        \"warm_min_seconds\": " +
            obs::json_number(r.timing.warm_min_seconds) + ",\n";
    json += "        \"warm_max_seconds\": " +
            obs::json_number(r.timing.warm_max_seconds) + "\n";
    json += "      },\n";
    json += "      \"metrics\": " + obs::snapshot_json(r.snapshot, 6) + "\n";
    json += i + 1 < results.size() ? "    },\n" : "    }\n";
  }
  json += "  ]\n";
  json += "}\n";

  {
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "perf_snapshot: cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), out);
    std::fclose(out);
  }

  if (tracing) {
    auto& recorder = obs::TraceRecorder::global();
    recorder.set_enabled(false);
    const obs::TraceSnapshot snapshot = recorder.snapshot();
    obs::write_chrome_trace(snapshot, cli.get("trace-out", ""));
    obs::self_time_table(snapshot).print();
    std::printf("perf_snapshot: %zu spans -> %s\n", snapshot.spans.size(),
                cli.get("trace-out", "").c_str());
  }

  if (print_tables) {
    for (const WorkloadResult& r : results) {
      obs::metrics_table(r.snapshot,
                         r.name + " (" + obs::json_number(r.wall_seconds) +
                             " s wall)")
          .print();
    }
  }
  std::printf(
      "perf_snapshot: %zu workloads -> %s (threads=%d, iters=%lld, reps=%lld)\n",
      results.size(), out_path.c_str(), threads,
      static_cast<long long>(iters), static_cast<long long>(reps));
  return 0;
}
