// Perf snapshot driver: runs a fixed workload basket and emits
// BENCH_<pr>.json — the machine-readable performance record the CI perf
// gate (ci/perf_gate.sh) validates and diffs across PRs.
//
// The basket exercises every instrumented layer:
//   fig3a / fig4a    the §5 root-placement sweeps (sim + planners + sweep)
//   chaos            the fault-rate × loss grid (faults + retry transport)
//   resilience       one degraded-mode re-planning run (advisor + replans)
//   micro_sim        a BM-style loop re-running one gather schedule
//   micro_planner    a BM-style loop re-planning gather/broadcast
//   micro_advisor    a BM-style loop of full advise() calls
//
// Before each workload the global metrics registry is reset; after it the
// merged snapshot plus the workload's wall-clock time goes into the JSON.
// Counters are deterministic totals (byte-identical at any --threads);
// gauges and histograms carry the wall-clock/scheduling side and are
// reported, never gated.

#include <chrono>
#include <cstdio>
#include <functional>
#include <string>
#include <vector>

#include "collectives/advisor.hpp"
#include "collectives/planners.hpp"
#include "collectives/resilience.hpp"
#include "core/topology.hpp"
#include "experiments/chaos.hpp"
#include "experiments/figures.hpp"
#include "obs/export.hpp"
#include "sim/cluster_sim.hpp"
#include "obs/metrics.hpp"
#include "util/cli.hpp"
#include "util/units.hpp"

namespace {

using namespace hbsp;

struct WorkloadResult {
  std::string name;
  double wall_seconds = 0.0;
  obs::MetricsSnapshot snapshot;
};

WorkloadResult run_workload(const std::string& name,
                            const std::function<void()>& body) {
  auto& registry = obs::Registry::global();
  registry.reset();
  const auto start = std::chrono::steady_clock::now();
  body();
  const double wall =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  WorkloadResult result;
  result.name = name;
  result.wall_seconds = wall;
  result.snapshot = registry.snapshot();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{argc, argv};
  cli.allow("out", "output JSON path (default BENCH_3.json)")
      .allow("pr", "PR number stamped into the snapshot (default 3)")
      .allow("threads", "sweep worker threads (default 1)")
      .allow("iters", "micro-loop iterations (default 40)")
      .allow("table", "also print the per-workload metric tables");
  cli.validate();

  const std::string out_path = cli.get("out", "BENCH_3.json");
  const auto pr = cli.get_int("pr", 3);
  const int threads = static_cast<int>(cli.get_positive_int("threads", 1));
  const auto iters = cli.get_positive_int("iters", 40);
  const bool print_tables = cli.get_bool("table", false);

  exp::SweepRunner runner{threads};
  std::vector<WorkloadResult> results;

  exp::FigureConfig fig;
  fig.threads = threads;
  results.push_back(run_workload(
      "fig3a", [&] { (void)exp::gather_root_experiment(fig, runner); }));
  results.push_back(run_workload(
      "fig4a", [&] { (void)exp::broadcast_root_experiment(fig, runner); }));

  exp::ChaosConfig chaos;
  chaos.threads = threads;
  results.push_back(
      run_workload("chaos", [&] { (void)exp::chaos_sweep(chaos, runner); }));

  results.push_back(run_workload("resilience", [&] {
    // The chaos bench's demo scenario: drop the fastest machine mid-gather
    // with 2% message loss, forcing at least one advisor re-plan round.
    const MachineTree tree = make_paper_testbed(chaos.p, chaos.g, chaos.L);
    faults::FaultPlan plan;
    plan.drops.push_back({tree.coordinator_pid(tree.root()), 5e-3});
    plan.message_loss_probability = 0.02;
    plan.loss_seed = chaos.master_seed;
    (void)coll::run_with_replanning(tree, coll::CollectiveKind::kGather,
                                    util::ints_in_kbytes(chaos.kbytes),
                                    chaos.sim, plan);
  }));

  results.push_back(run_workload("micro_sim", [&] {
    const MachineTree tree = make_paper_testbed(10);
    const CommSchedule schedule = coll::plan_gather(tree, 250000, {});
    sim::ClusterSim sim{tree, sim::SimParams{}};
    for (std::int64_t i = 0; i < iters; ++i) (void)sim.run(schedule);
  }));

  results.push_back(run_workload("micro_planner", [&] {
    const MachineTree tree = make_paper_testbed(10);
    for (std::int64_t i = 0; i < iters; ++i) {
      (void)coll::plan_gather(tree, 250000, {});
      (void)coll::plan_broadcast(tree, 250000, {});
    }
  }));

  results.push_back(run_workload("micro_advisor", [&] {
    const MachineTree tree = make_paper_testbed(8);
    for (std::int64_t i = 0; i < iters; ++i) {
      (void)coll::advise(tree, coll::CollectiveKind::kGather, 250000);
      (void)coll::advise(tree, coll::CollectiveKind::kBroadcast, 250000);
    }
  }));

  // Assemble BENCH_<pr>.json. Workload order is fixed by the basket above;
  // every map inside a snapshot is name-sorted, so two runs with equal
  // counters produce byte-identical "counters" objects.
  std::string json = "{\n";
  json += "  \"schema_version\": 1,\n";
  json += "  \"bench\": \"perf_snapshot\",\n";
  json += "  \"pr\": " + std::to_string(pr) + ",\n";
  json += "  \"threads\": " + std::to_string(threads) + ",\n";
  json += "  \"iters\": " + std::to_string(iters) + ",\n";
  json += "  \"workloads\": [\n";
  for (std::size_t i = 0; i < results.size(); ++i) {
    const WorkloadResult& r = results[i];
    json += "    {\n";
    json += "      \"name\": \"" + obs::json_escape(r.name) + "\",\n";
    json += "      \"wall_seconds\": " + obs::json_number(r.wall_seconds) +
            ",\n";
    json += "      \"metrics\": " + obs::snapshot_json(r.snapshot, 6) + "\n";
    json += i + 1 < results.size() ? "    },\n" : "    }\n";
  }
  json += "  ]\n";
  json += "}\n";

  {
    std::FILE* out = std::fopen(out_path.c_str(), "w");
    if (out == nullptr) {
      std::fprintf(stderr, "perf_snapshot: cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(json.c_str(), out);
    std::fclose(out);
  }

  if (print_tables) {
    for (const WorkloadResult& r : results) {
      obs::metrics_table(r.snapshot,
                         r.name + " (" + obs::json_number(r.wall_seconds) +
                             " s wall)")
          .print();
    }
  }
  std::printf("perf_snapshot: %zu workloads -> %s (threads=%d, iters=%lld)\n",
              results.size(), out_path.c_str(), threads,
              static_cast<long long>(iters));
  return 0;
}
