// Chaos sweep: the Fig 3(a)/4(a) root-placement experiments re-run under a
// seeded fault plan, over a fault-rate × message-loss grid (fixed p = 6,
// 500 KB — the mid-range of the §5 sweeps).
//
// The question the grid answers: how much disturbance does it take before
// the advisor's fault-free ordering inverts (T_s/T_f < 1, i.e. rooting at
// the nominally slowest machine wins because chaos degraded the fastest)?
// The zero-fault row equals the corresponding fig3a/fig4a cells — the
// injection layer is cost-free when disabled.
//
// Also demonstrates degraded-mode re-planning: a machine drop mid-gather is
// detected, the survivors are re-ranked, and the collective restarts, with
// the ResilienceReport quantifying the makespan inflation.

#include <cstdio>

#include "collectives/resilience.hpp"
#include "core/topology.hpp"
#include "experiments/chaos.hpp"
#include "util/cli.hpp"
#include "util/units.hpp"

int main(int argc, char** argv) {
  using namespace hbsp;
  util::Cli cli{argc, argv};
  cli.allow("csv", "write the chaos grid to this CSV path")
      .allow("seed", "chaos master seed (default 7001)")
      .allow("threads", "sweep worker threads (default 1)");
  cli.validate();

  exp::ChaosConfig config;
  config.master_seed = static_cast<std::uint64_t>(cli.get_int("seed", 7001));
  config.threads = static_cast<int>(cli.get_positive_int("threads", 1));

  exp::SweepRunner runner{config.threads};
  const exp::ChaosTable table = exp::chaos_sweep(config, runner);
  table
      .to_table("gather T_s/T_f under chaos (p=6, 500 KB; < 1 = ordering inverts)",
                /*broadcast=*/false)
      .print();
  table
      .to_table(
          "broadcast T_s/T_f under chaos (p=6, 500 KB; < 1 = ordering inverts)",
          /*broadcast=*/true)
      .print();
  std::printf(
      "\nordering inversions: gather %zu/%zu cells, broadcast %zu/%zu cells\n",
      table.gather_inversions(),
      table.fault_rates.size() * table.loss_probs.size(),
      table.broadcast_inversions(),
      table.fault_rates.size() * table.loss_probs.size());

  if (cli.has("csv")) {
    exp::write_chaos_csv(table, cli.get("csv", ""));
  }

  // Degraded-mode re-planning demo: drop the testbed's fastest machine a
  // third of the way into a 500 KB gather and lose 2% of send attempts.
  const MachineTree tree = make_paper_testbed(config.p, config.g, config.L);
  faults::FaultPlan plan;
  plan.drops.push_back({tree.coordinator_pid(tree.root()), 5e-3});
  plan.message_loss_probability = 0.02;
  plan.loss_seed = config.master_seed;
  const coll::ResilienceReport report = coll::run_with_replanning(
      tree, coll::CollectiveKind::kGather, util::ints_in_kbytes(config.kbytes),
      config.sim, plan);
  report.to_table("re-planned gather after dropping the fastest machine")
      .print();

  std::puts(
      "\nModel: mild chaos leaves the fault-free advice intact; heavy "
      "slowdowns on the fast root invert it.");
  return 0;
}
