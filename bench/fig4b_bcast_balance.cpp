// Reproduces Figure 4(b): one-to-all broadcast improvement factor T_u/T_b —
// equal versus balanced phase-1 pieces, root = fastest (§5.3).
//
// Paper shape to match: no benefit at all ("clearly demonstrates that there
// is no benefit to balanced workloads since each processor must receive all
// of the items").

#include <cstdio>

#include "experiments/figures.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hbsp;
  util::Cli cli{argc, argv};
  cli.allow("csv", "write the sweep to this CSV path")
      .allow("seed", "sweep master seed (default 2001)")
      .allow("threads", "sweep worker threads (default 1)");
  cli.validate();

  exp::FigureConfig config;
  config.noise.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2001));
  config.threads = static_cast<int>(cli.get_positive_int("threads", 1));

  exp::SweepRunner runner{config.threads};
  const exp::ImprovementTable table =
      exp::broadcast_balance_experiment(config, runner);
  table
      .to_table(
          "Figure 4(b) - broadcast improvement factor T_u/T_b (equal vs "
          "balanced pieces, root = fastest)")
      .print();
  runner.counters().to_table("sweep throughput").print();

  if (cli.has("csv")) {
    exp::write_improvement_csv(table, cli.get("csv", ""));
  }
  std::puts("\nPaper: no benefit -- every processor still receives all n items.");
  return 0;
}
