// Reproduces Figure 4(b): one-to-all broadcast improvement factor T_u/T_b —
// equal versus balanced phase-1 pieces, root = fastest (§5.3).
//
// Paper shape to match: no benefit at all ("clearly demonstrates that there
// is no benefit to balanced workloads since each processor must receive all
// of the items").

#include <cstdio>

#include "experiments/figures.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace hbsp;
  util::Cli cli{argc, argv};
  cli.allow("csv", "write the sweep to this CSV path")
      .allow("seed", "BYTEmark noise seed (default 2001)");
  cli.validate();

  exp::FigureConfig config;
  config.noise.seed = static_cast<std::uint64_t>(cli.get_int("seed", 2001));

  const exp::ImprovementTable table = exp::broadcast_balance_experiment(config);
  table
      .to_table(
          "Figure 4(b) - broadcast improvement factor T_u/T_b (equal vs "
          "balanced pieces, root = fastest)")
      .print();

  if (cli.has("csv")) {
    util::CsvWriter csv{cli.get("csv", "")};
    std::vector<std::string> header{"p"};
    for (const auto kb : table.kbytes) header.push_back(std::to_string(kb));
    csv.write_row(header);
    for (std::size_t i = 0; i < table.processors.size(); ++i) {
      std::vector<std::string> row{std::to_string(table.processors[i])};
      for (const double f : table.factor[i]) {
        row.push_back(util::Table::num(f, 4));
      }
      csv.write_row(row);
    }
  }
  std::puts("\nPaper: no benefit -- every processor still receives all n items.");
  return 0;
}
