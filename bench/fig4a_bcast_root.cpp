// Reproduces Figure 4(a): one-to-all broadcast improvement factor T_s/T_f —
// two-phase broadcast with the slowest versus the fastest processor as root
// (§5.3).
//
// Paper shape to match: negligible improvement at every p and problem size;
// what little there is comes from the fast root distributing the n/p pieces
// in the first phase. The slowest machine must still receive all n items, so
// broadcast cannot exploit heterogeneity (§4.4's conclusion).

#include <cstdio>

#include "experiments/figures.hpp"
#include "util/cli.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace hbsp;
  util::Cli cli{argc, argv};
  cli.allow("csv", "write the sweep to this CSV path");
  cli.validate();

  exp::FigureConfig config;
  const exp::ImprovementTable table = exp::broadcast_root_experiment(config);
  table
      .to_table(
          "Figure 4(a) - broadcast improvement factor T_s/T_f (root slowest vs "
          "fastest, two-phase)")
      .print();

  if (cli.has("csv")) {
    util::CsvWriter csv{cli.get("csv", "")};
    std::vector<std::string> header{"p"};
    for (const auto kb : table.kbytes) header.push_back(std::to_string(kb));
    csv.write_row(header);
    for (std::size_t i = 0; i < table.processors.size(); ++i) {
      std::vector<std::string> row{std::to_string(table.processors[i])};
      for (const double f : table.factor[i]) {
        row.push_back(util::Table::num(f, 4));
      }
      csv.write_row(row);
    }
  }
  std::puts(
      "\nPaper: negligible improvement -- every processor must receive all n\n"
      "items, so the slowest machine dictates the cost regardless of root.");
  return 0;
}
