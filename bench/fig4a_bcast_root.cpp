// Reproduces Figure 4(a): one-to-all broadcast improvement factor T_s/T_f —
// two-phase broadcast with the slowest versus the fastest processor as root
// (§5.3).
//
// Paper shape to match: negligible improvement at every p and problem size;
// what little there is comes from the fast root distributing the n/p pieces
// in the first phase. The slowest machine must still receive all n items, so
// broadcast cannot exploit heterogeneity (§4.4's conclusion).

#include <cstdio>
#include <stdexcept>

#include "experiments/figures.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"
#include "util/cli.hpp"

int main(int argc, char** argv) {
  using namespace hbsp;
  util::Cli cli{argc, argv};
  cli.allow("csv", "write the sweep to this CSV path")
      .allow("threads", "sweep worker threads (default 1)")
      .allow("grid", "paper (default, 9x10 cells) or small (3x3, trace goldens)")
      .allow("trace-out",
             "write the virtual-time span trace to this JSON path");
  cli.validate();

  exp::FigureConfig config;
  config.threads = static_cast<int>(cli.get_positive_int("threads", 1));
  const std::string grid = cli.get("grid", "paper");
  if (grid == "small") {
    config.processors = {2, 6, 10};
    config.kbytes = {100, 500, 1000};
  } else if (grid != "paper") {
    throw std::invalid_argument{"--grid must be 'paper' or 'small'"};
  }

  const bool tracing = cli.has("trace-out");
  auto& recorder = obs::TraceRecorder::global();
  if (tracing) {
    recorder.clear();
    recorder.set_enabled(true);
  }

  exp::SweepRunner runner{config.threads};
  const exp::ImprovementTable table =
      exp::broadcast_root_experiment(config, runner);
  table
      .to_table(
          "Figure 4(a) - broadcast improvement factor T_s/T_f (root slowest vs "
          "fastest, two-phase)")
      .print();
  runner.counters().to_table("sweep throughput").print();

  if (tracing) {
    recorder.set_enabled(false);
    const obs::TraceSnapshot snapshot = recorder.snapshot();
    obs::write_chrome_trace(snapshot, cli.get("trace-out", ""),
                            obs::TraceFilter::kVirtualOnly);
    obs::self_time_table(snapshot).print();
  }
  if (cli.has("csv")) {
    exp::write_improvement_csv(table, cli.get("csv", ""));
  }
  std::puts(
      "\nPaper: negligible improvement -- every processor must receive all n\n"
      "items, so the slowest machine dictates the cost regardless of root.");
  return 0;
}
