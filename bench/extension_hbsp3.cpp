// E15 (extension): HBSP^3 — the generalisation the paper sketches but never
// builds ("We do not specify algorithms for higher-level machines (i.e.
// k >= 3). However, one can generalize the approach given here").
//
// Our planners recurse over the machine tree, so the same code runs on a
// 3-level wide-area grid. This bench prints the super^i-step decomposition
// of gather and broadcast on that machine, the hierarchy-vs-flat comparison
// at each scale, and where the extra levels start paying for themselves.
//
// Each table's size points are independent (every point builds its own
// schedules and simulator), so they shard across a util::ThreadPool into
// per-point slots; rows assemble in size order.

#include <cstdio>
#include <vector>

#include "collectives/planners.hpp"
#include "core/cost_model.hpp"
#include "core/topology.hpp"
#include "experiments/figures.hpp"
#include "sim/cluster_sim.hpp"
#include "util/cli.hpp"
#include "util/table.hpp"
#include "util/thread_pool.hpp"
#include "util/units.hpp"

namespace {

using namespace hbsp;

/// A flat fan-in/fan-out alternative that ignores the hierarchy (what a
/// BSP-minded port would do): every processor exchanges directly with the
/// root in one superstep at the top network level.
CommSchedule flat_gather(const MachineTree& tree, std::size_t n) {
  CommSchedule schedule;
  schedule.name = "flat gather";
  SuperstepPlan& plan = schedule.add_step("flat fan-in", tree.height(),
                                          tree.root());
  const int root = tree.coordinator_pid(tree.root());
  const auto shares = coll::leaf_shares(tree, n, coll::Shares::kBalanced);
  for (int pid = 0; pid < tree.num_processors(); ++pid) {
    if (pid != root && shares[static_cast<std::size_t>(pid)] > 0) {
      plan.transfers.push_back({pid, root, shares[static_cast<std::size_t>(pid)]});
    }
  }
  return schedule;
}

}  // namespace

int main(int argc, char** argv) {
  util::Cli cli{argc, argv};
  cli.allow("threads", "worker threads for the size sweeps (default 1)");
  cli.validate();
  util::ThreadPool pool{static_cast<int>(cli.get_positive_int("threads", 1))};

  const MachineTree tree = make_wide_area_grid();
  const CostModel model{tree};
  std::printf(
      "HBSP^3 machine: %d processors in 4 labs + 1 server across 2 campuses\n"
      "joined by a wide-area link (k = %d).\n",
      tree.num_processors(), tree.height());

  {
    const std::vector<std::size_t> sizes = {10, 100, 1000};
    struct Row {
      ScheduleCost cost;
      ScheduleCost flat;
    };
    std::vector<Row> rows(sizes.size());
    pool.parallel_for(sizes.size(), [&](std::size_t i) {
      const std::size_t n = util::ints_in_kbytes(sizes[i]);
      rows[i] = {model.cost(coll::plan_gather(tree, n, {})),
                 model.cost(flat_gather(tree, n))};
    });

    util::Table table{"Gather on the HBSP^3 grid: super^i-step decomposition"};
    table.set_header({"n (KB)", "super^1 (labs)", "super^2 (campuses)",
                      "super^3 (wide-area)", "total", "flat fan-in"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      table.add_row({std::to_string(sizes[i]),
                     util::format_time(rows[i].cost.phases[0].total()),
                     util::format_time(rows[i].cost.phases[1].total()),
                     util::format_time(rows[i].cost.phases[2].total()),
                     util::format_time(rows[i].cost.total()),
                     util::format_time(rows[i].flat.total())});
    }
    table.print();
  }

  {
    const std::vector<std::size_t> sizes = {10, 100, 1000};
    struct Row {
      double hier = 0.0;
      double flat = 0.0;
      std::size_t hier_msgs = 0;
      std::size_t flat_msgs = 0;
    };
    std::vector<Row> rows(sizes.size());
    pool.parallel_for(sizes.size(), [&](std::size_t i) {
      const std::size_t n = util::ints_in_kbytes(sizes[i]);
      sim::ClusterSim simulator{tree, sim::SimParams{}};
      rows[i].hier = simulator.run(coll::plan_gather(tree, n, {})).makespan;
      rows[i].hier_msgs = simulator.network().stats(tree.root()).messages_crossed;
      simulator.reset();
      rows[i].flat = simulator.run(flat_gather(tree, n)).makespan;
      rows[i].flat_msgs = simulator.network().stats(tree.root()).messages_crossed;
    });

    util::Table table{
        "Simulated substrate: hierarchical vs flat gather, and wide-area "
        "message counts"};
    table.set_header({"n (KB)", "hier. simulated", "flat simulated",
                      "hier. WAN msgs", "flat WAN msgs"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      table.add_row({std::to_string(sizes[i]), util::format_time(rows[i].hier),
                     util::format_time(rows[i].flat),
                     std::to_string(rows[i].hier_msgs),
                     std::to_string(rows[i].flat_msgs)});
    }
    table.print();
  }

  {
    const std::vector<std::size_t> sizes = {1, 10, 100, 1000};
    struct Row {
      double one = 0.0;
      double two = 0.0;
    };
    std::vector<Row> rows(sizes.size());
    pool.parallel_for(sizes.size(), [&](std::size_t i) {
      const std::size_t n = util::ints_in_kbytes(sizes[i]);
      rows[i].one = model
                        .cost(coll::plan_broadcast(
                            tree, n,
                            {.root_pid = -1,
                             .top_phase = coll::TopPhase::kOnePhase,
                             .shares = coll::Shares::kEqual}))
                        .total();
      rows[i].two = model
                        .cost(coll::plan_broadcast(
                            tree, n,
                            {.root_pid = -1,
                             .top_phase = coll::TopPhase::kTwoPhase,
                             .shares = coll::Shares::kEqual}))
                        .total();
    });

    util::Table table{"Broadcast on the HBSP^3 grid: top-level strategy"};
    table.set_header({"n (KB)", "one-phase top", "two-phase top", "winner"});
    for (std::size_t i = 0; i < sizes.size(); ++i) {
      table.add_row({std::to_string(sizes[i]), util::format_time(rows[i].one),
                     util::format_time(rows[i].two),
                     rows[i].two <= rows[i].one ? "two-phase" : "one-phase"});
    }
    table.print();
  }

  std::puts(
      "\nThe recursion the paper sketches works unchanged at k = 3: each level\n"
      "adds one super^i-step whose L and link costs must be amortised, and\n"
      "the hierarchy keeps wide-area traffic at one message per campus.");
  return 0;
}
