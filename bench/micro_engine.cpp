// E12: google-benchmark microbenchmarks of the reproduction's own machinery
// (simulator event throughput, planning, pricing, partitioning, pack/unpack)
// so regressions in the substrate itself are visible.

#include <benchmark/benchmark.h>

#include "collectives/planners.hpp"
#include "core/cost_model.hpp"
#include "core/topology.hpp"
#include "core/topology_io.hpp"
#include "core/workload.hpp"
#include "runtime/message.hpp"
#include "sim/cluster_sim.hpp"
#include "util/rng.hpp"

namespace {

using namespace hbsp;

void BM_SimGatherSuperstep(benchmark::State& state) {
  const MachineTree tree = make_paper_testbed(static_cast<int>(state.range(0)));
  const auto schedule = coll::plan_gather(tree, 250000, {});
  sim::ClusterSim sim{tree, sim::SimParams{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(schedule).makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(schedule.total_messages()));
}
BENCHMARK(BM_SimGatherSuperstep)->Arg(2)->Arg(5)->Arg(10);

void BM_SimManyMessages(benchmark::State& state) {
  const MachineTree tree = make_paper_testbed(10);
  CommSchedule schedule;
  SuperstepPlan& plan = schedule.add_step("mesh", 1, tree.root());
  for (int s = 0; s < 10; ++s) {
    for (int d = 0; d < 10; ++d) {
      if (s != d) plan.transfers.push_back({s, d, 100});
    }
  }
  sim::ClusterSim sim{tree, sim::SimParams{}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.run(schedule).makespan);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 90);
}
BENCHMARK(BM_SimManyMessages);

void BM_PlanBroadcast(benchmark::State& state) {
  const MachineTree tree = make_figure1_cluster();
  for (auto _ : state) {
    benchmark::DoNotOptimize(coll::plan_broadcast(tree, 250000, {}));
  }
}
BENCHMARK(BM_PlanBroadcast);

void BM_CostModelPricing(benchmark::State& state) {
  const MachineTree tree = make_paper_testbed(10);
  const CostModel model{tree};
  const auto schedule = coll::plan_alltoall(tree, 250000);
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.cost(schedule).total());
  }
}
BENCHMARK(BM_CostModelPricing);

void BM_BalancedPartition(benchmark::State& state) {
  util::Rng rng{7};
  std::vector<double> r;
  for (int i = 0; i < static_cast<int>(state.range(0)); ++i) {
    r.push_back(rng.uniform(1.0, 8.0));
  }
  r[0] = 1.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(balanced_partition(r, 1000000));
  }
}
BENCHMARK(BM_BalancedPartition)->Arg(10)->Arg(100)->Arg(1000);

void BM_PackUnpackRoundTrip(benchmark::State& state) {
  const auto values = util::uniform_int_workload(
      static_cast<std::size_t>(state.range(0)), 3);
  for (auto _ : state) {
    rt::PackBuffer buffer;
    buffer.pack_span<std::int32_t>(values);
    rt::Message message;
    message.payload = buffer.take();
    rt::UnpackBuffer reader{message};
    benchmark::DoNotOptimize(reader.unpack_span<std::int32_t>(values.size()));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(values.size() * 4));
}
BENCHMARK(BM_PackUnpackRoundTrip)->Arg(1000)->Arg(250000);

void BM_TopologyParse(benchmark::State& state) {
  const std::string text = serialize_topology(make_figure1_cluster());
  for (auto _ : state) {
    benchmark::DoNotOptimize(parse_topology(text));
  }
}
BENCHMARK(BM_TopologyParse);

void BM_RngWorkload(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(util::uniform_int_workload(25000, 99));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 25000);
}
BENCHMARK(BM_RngWorkload);

}  // namespace

BENCHMARK_MAIN();
