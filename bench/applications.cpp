// E14 (extension): the paper's future-work applications, evaluated with the
// §5 methodology. For sample sort, histogram and matrix–vector multiply,
// reports the balanced-over-equal improvement factor T_u/T_b across p — the
// end-to-end payoff of the model's design rules on real algorithms, beyond
// single collectives.

#include <cstdio>

#include "apps/histogram.hpp"
#include "apps/matvec.hpp"
#include "apps/sample_sort.hpp"
#include "core/topology.hpp"
#include "util/rng.hpp"
#include "util/table.hpp"

namespace {

using namespace hbsp;

double sort_factor(int p, std::size_t n) {
  const MachineTree machine = make_paper_testbed(p);
  const auto input = util::uniform_int_workload(n, 2024);
  const auto balanced =
      apps::run_sample_sort(machine, input, coll::Shares::kBalanced);
  const auto equal = apps::run_sample_sort(machine, input, coll::Shares::kEqual);
  if (!balanced.valid || !equal.valid) return -1.0;
  return equal.virtual_seconds / balanced.virtual_seconds;
}

double histogram_factor(int p, std::size_t n) {
  const MachineTree machine = make_paper_testbed(p);
  util::Rng rng{2025};
  std::vector<double> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) samples.push_back(rng.uniform01());
  const apps::HistogramSpec spec{.bins = 128, .lo = 0.0, .hi = 1.0};
  const auto balanced =
      apps::run_histogram(machine, samples, spec, coll::Shares::kBalanced);
  const auto equal =
      apps::run_histogram(machine, samples, spec, coll::Shares::kEqual);
  if (!balanced.valid || !equal.valid) return -1.0;
  return equal.virtual_seconds / balanced.virtual_seconds;
}

double matvec_factor(int p, std::size_t order) {
  const MachineTree machine = make_paper_testbed(p);
  apps::DenseMatrix a;
  a.rows = order;
  a.cols = order;
  a.values.assign(order * order, 0.5);
  const std::vector<double> x(order, 2.0);
  const auto balanced =
      apps::run_matvec(machine, a, x, coll::Shares::kBalanced);
  const auto equal = apps::run_matvec(machine, a, x, coll::Shares::kEqual);
  if (!balanced.valid || !equal.valid) return -1.0;
  return equal.virtual_seconds / balanced.virtual_seconds;
}

}  // namespace

int main() {
  util::Table table{
      "HBSP^k applications: balanced-over-equal improvement factor T_u/T_b"};
  table.set_header({"p", "sample sort (100 KB)", "histogram (400 KB)",
                    "matvec (300x300)"});
  for (const int p : {2, 4, 6, 8, 10}) {
    table.add_row({std::to_string(p),
                   util::Table::num(sort_factor(p, 25000), 3),
                   util::Table::num(histogram_factor(p, 50000), 3),
                   util::Table::num(matvec_factor(p, 300), 3)});
  }
  table.print();
  std::puts(
      "\nCompute-heavy phases (sorting, binning, dot products) are where the\n"
      "model's balanced workloads pay: the slowest machine stops being the\n"
      "straggler. Communication-bound phases cap the gain, as SS4 predicts.");
  return 0;
}
