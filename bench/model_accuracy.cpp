// E16 (extension): predictive value of heterogeneity-awareness.
//
// HBSP (the 1-level precursor paper) distinguishes itself from HCGM by
// aiming to be "an accurate predictor of execution times". This bench
// quantifies that on our substrate: predict collective times with
//
//   (a) plain BSP        — every processor assumed as fast as the fastest
//                          (r ≡ 1, the homogeneous model's view),
//   (b) HBSP^k           — the §3.4 cost model with true r values,
//   (c) HBSP^k + §6 λ    — destination-weighted on hierarchical machines,
//
// and report each model's error against the simulated cluster. The ordering
// (a) > (b) > (c) in error is the quantitative case for the model.

#include <cmath>
#include <cstdio>

#include "collectives/planners.hpp"
#include "core/cost_model.hpp"
#include "core/topology.hpp"
#include "sim/cluster_sim.hpp"
#include "sim/dest_calibration.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/units.hpp"

namespace {

using namespace hbsp;

/// The same machine with every r (and compute_r) forced to 1 — what a
/// homogeneous BSP model believes about the cluster.
MachineTree homogenised(const MachineTree& tree) {
  const auto strip = [&](auto&& self, MachineId id) -> MachineSpec {
    MachineSpec spec;
    const auto& node = tree.node(id);
    spec.name = node.name;
    spec.sync_L = node.sync_L;
    if (tree.is_processor(id)) {
      spec.r = 1.0;
      return spec;
    }
    for (int j = 0; j < tree.num_children(id); ++j) {
      spec.children.push_back(self(self, tree.child(id, j)));
    }
    return spec;
  };
  return MachineTree::build(strip(strip, tree.root()), tree.g());
}

struct Errors {
  util::Accumulator bsp;
  util::Accumulator hbsp;
  util::Accumulator extended;
};

void evaluate(const MachineTree& tree, Errors& errors, util::Table& table,
              const char* machine_name) {
  const MachineTree flat_view = homogenised(tree);
  const CostModel bsp_model{flat_view};
  const CostModel hbsp_model{tree};
  CostModel extended_model{tree};
  const auto lambda = sim::calibrate_destination_costs(tree, sim::SimParams{});
  extended_model.set_destination_costs(&lambda);

  const auto run_case = [&](const char* name, const CommSchedule& schedule) {
    sim::ClusterSim sim{tree, sim::SimParams{}};
    const double actual = sim.run(schedule).makespan;
    const double bsp = bsp_model.cost(schedule).total();
    const double hbsp = hbsp_model.cost(schedule).total();
    const double extended = extended_model.cost(schedule).total();
    const auto rel = [&](double prediction) {
      return std::abs(prediction - actual) / actual;
    };
    errors.bsp.add(rel(bsp));
    errors.hbsp.add(rel(hbsp));
    errors.extended.add(rel(extended));
    table.add_row({std::string{machine_name} + " " + name,
                   util::format_time(actual),
                   util::Table::num(100 * rel(bsp), 1) + "%",
                   util::Table::num(100 * rel(hbsp), 1) + "%",
                   util::Table::num(100 * rel(extended), 1) + "%"});
  };

  for (const std::size_t kb : {100u, 1000u}) {
    const std::size_t n = util::ints_in_kbytes(kb);
    const std::string size = std::to_string(kb) + "KB";
    run_case(("gather " + size).c_str(), coll::plan_gather(tree, n, {}));
    run_case(("gather-slowroot " + size).c_str(),
             coll::plan_gather(tree, n,
                               {.root_pid = tree.slowest_pid(tree.root()),
                                .shares = coll::Shares::kEqual}));
    run_case(("bcast " + size).c_str(), coll::plan_broadcast(tree, n, {}));
    run_case(("scatter " + size).c_str(), coll::plan_scatter(tree, n, {}));
    run_case(("reduce " + size).c_str(), coll::plan_reduce_tree(tree, n, {}));
  }
}

}  // namespace

int main() {
  util::Table table{
      "Prediction error vs the simulated cluster: BSP / HBSP^k / HBSP^k+lambda"};
  table.set_header({"case", "simulated", "BSP err", "HBSP^k err",
                    "+dest-costs err"});
  Errors errors;
  evaluate(make_paper_testbed(10), errors, table, "testbed");
  evaluate(make_figure1_cluster(), errors, table, "campus");
  evaluate(make_wide_area_grid(), errors, table, "wan-grid");
  table.print();

  util::Table summary{"Mean relative error over all cases"};
  summary.set_header({"model", "mean error"});
  summary.add_row({"BSP (homogeneous r=1)",
                   util::Table::num(100 * errors.bsp.summary().mean, 1) + "%"});
  summary.add_row({"HBSP^k (SS3.4)",
                   util::Table::num(100 * errors.hbsp.summary().mean, 1) + "%"});
  summary.add_row({"HBSP^k + SS6 destination costs",
                   util::Table::num(100 * errors.extended.summary().mean, 1) +
                       "%"});
  summary.print();

  std::puts(
      "\nIgnoring heterogeneity (BSP) underpredicts whenever slow machines\n"
      "sit on the critical path; the HBSP^k model recovers most of that, and\n"
      "the destination-cost extension recovers the per-level link penalty the\n"
      "single-r model still misses on hierarchies.");
  return 0;
}
